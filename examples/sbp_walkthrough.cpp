// Walkthrough of the paper's Figure 1: how each instance-independent SBP
// construction filters the color assignments of a 4-vertex example.
//
// Prints, for a handful of assignments highlighted in the figure, which
// constructions permit them and why — a narrative companion to
// bench_figure1's exhaustive table.

#include <cstdio>
#include <vector>

#include "coloring/encoder.h"
#include "coloring/sbp.h"
#include "pb/optimizer.h"

using namespace symcolor;

namespace {

Graph figure1_graph() {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.finalize();
  return g;
}

bool permitted(const Graph& g, const SbpOptions& sbps,
               const std::vector<int>& colors) {
  ColoringEncoding enc = encode_k_coloring(g, 4, sbps);
  for (int i = 0; i < g.num_vertices(); ++i) {
    enc.formula.add_unit(
        Lit::positive(enc.x(i, colors[static_cast<std::size_t>(i)])));
  }
  return solve_decision(enc.formula, {}, {}).status == OptStatus::Optimal;
}

void show(const Graph& g, const char* label, const std::vector<int>& colors) {
  std::printf("%-34s NU=%-3s CA=%-3s LI=%-3s SC=%s\n", label,
              permitted(g, SbpOptions::nu_only(), colors) ? "ok" : "ban",
              permitted(g, SbpOptions::ca_only(), colors) ? "ok" : "ban",
              permitted(g, SbpOptions::li_only(), colors) ? "ok" : "ban",
              permitted(g, SbpOptions::sc_only(), colors) ? "ok" : "ban");
}

}  // namespace

int main() {
  const Graph g = figure1_graph();
  std::printf(
      "Figure 1 graph: V1-V2-V3 triangle, V4 attached to V3.\n"
      "Assignments written (V1,V2,V3,V4) with 1-based colors.\n\n");

  std::printf("The two 3-class partitions: {V1,V4}{V2}{V3} and "
              "{V1}{V2,V4}{V3}.\n\n");

  show(g, "(1,2,3,1)  canonical, partition A", {0, 1, 2, 0});
  show(g, "(1,3,2,1)  colors 2,3 swapped", {0, 2, 1, 0});
  show(g, "(1,3,4,1)  uses a gap (no color 2)", {0, 2, 3, 0});
  show(g, "(3,1,2,3)  big class on color 3", {2, 0, 1, 2});
  show(g, "(1,2,3,2)  canonical, partition B", {0, 1, 2, 1});
  show(g, "(2,3,1,3)  V3 on color 1 (SC pin)", {1, 2, 0, 2});

  std::printf(
      "\nReading the columns:\n"
      " NU bans only the gap assignment (null color 2 before used 3/4).\n"
      " CA additionally pins the size-2 class on color 1.\n"
      " LI keeps exactly one assignment per partition — the one whose\n"
      "    lowest vertex indices ascend with the color number.\n"
      " SC pins V3 (max degree) on color 1 and V1 on color 2, so only\n"
      "    assignments of the last row's shape survive it.\n");
  return 0;
}
