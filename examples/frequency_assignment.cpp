// Radio frequency assignment via graph coloring (paper Section 2.1).
//
// Each geographic region needs a number of frequencies; it becomes a
// clique of that size. Adjacent regions may not share frequencies, so
// all bipartite edges are added between their cliques — exactly the
// reduction the paper describes, including its warning that the
// construction itself introduces extra instance-independent symmetries
// (the vertices inside a region's clique are interchangeable). We verify
// that claim by measuring the symmetry group of the encoded instance.

#include <cstdio>
#include <string>
#include <vector>

#include "coloring/exact_colorer.h"

using namespace symcolor;

namespace {

struct Region {
  std::string name;
  int frequencies = 0;
};

}  // namespace

int main() {
  const std::vector<Region> regions{
      {"North", 3}, {"East", 2}, {"South", 3}, {"West", 2}, {"Center", 4}};
  // Adjacency between regions (Center touches everything; the ring
  // touches its neighbours).
  const std::vector<std::pair<int, int>> adjacent{
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {1, 4}, {2, 4}, {3, 4}};

  // Reduction: one vertex per needed frequency, region-internal cliques,
  // full bipartite edges between adjacent regions.
  std::vector<int> first(regions.size() + 1, 0);
  for (std::size_t r = 0; r < regions.size(); ++r) {
    first[r + 1] = first[r] + regions[r].frequencies;
  }
  Graph g(first.back());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    for (int a = first[r]; a < first[r + 1]; ++a) {
      for (int b = a + 1; b < first[r + 1]; ++b) g.add_edge(a, b);
    }
  }
  for (const auto& [r1, r2] : adjacent) {
    for (int a = first[static_cast<std::size_t>(r1)];
         a < first[static_cast<std::size_t>(r1) + 1]; ++a) {
      for (int b = first[static_cast<std::size_t>(r2)];
           b < first[static_cast<std::size_t>(r2) + 1]; ++b) {
        g.add_edge(a, b);
      }
    }
  }
  g.finalize();
  std::printf("reduction: %d frequency slots, %d interference edges\n",
              g.num_vertices(), g.num_edges());

  ColoringOptions options;
  options.max_colors = 12;
  options.sbps = SbpOptions::nu_sc();
  options.instance_dependent_sbps = true;
  const ColoringOutcome result = solve_coloring(g, options);
  if (result.status != OptStatus::Optimal) {
    std::printf("no assignment within %d frequencies\n", options.max_colors);
    return 1;
  }
  std::printf("minimum spectrum: %d frequencies\n", result.num_colors);
  for (std::size_t r = 0; r < regions.size(); ++r) {
    std::printf("  %-7s:", regions[r].name.c_str());
    for (int v = first[r]; v < first[r + 1]; ++v) {
      std::printf(" f%d", result.coloring[static_cast<std::size_t>(v)] + 1);
    }
    std::printf("\n");
  }
  if (result.symmetry) {
    std::printf(
        "symmetry group of the encoded instance: 10^%.1f —\n"
        "color permutations times the within-region vertex symmetries the\n"
        "reduction introduced, all broken before solving (paper Section 3).\n",
        result.symmetry->log10_order);
  }
  return 0;
}
