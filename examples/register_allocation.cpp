// Register allocation via exact graph coloring (paper Section 2.1).
//
// A tiny SSA-like function is modelled as a list of virtual registers
// with live ranges [def, last_use). Two ranges that overlap interfere
// and must live in different hardware registers, so a K-coloring of the
// interference graph is a conflict-free assignment to K registers. We
// find the minimum register count exactly and print the allocation, then
// rerun with a tighter register file to show the infeasibility answer a
// compiler would use to trigger spilling.

#include <cstdio>
#include <string>
#include <vector>

#include "coloring/exact_colorer.h"

using namespace symcolor;

namespace {

struct LiveRange {
  std::string name;
  int def = 0;
  int end = 0;  // exclusive
};

Graph interference_graph(const std::vector<LiveRange>& ranges) {
  Graph g(static_cast<int>(ranges.size()));
  for (std::size_t a = 0; a < ranges.size(); ++a) {
    for (std::size_t b = a + 1; b < ranges.size(); ++b) {
      const bool overlap =
          ranges[a].def < ranges[b].end && ranges[b].def < ranges[a].end;
      if (overlap) g.add_edge(static_cast<int>(a), static_cast<int>(b));
    }
  }
  g.finalize();
  return g;
}

}  // namespace

int main() {
  // Live ranges of the virtual registers in a small loop body.
  const std::vector<LiveRange> ranges{
      {"base", 0, 14},  {"len", 0, 6},    {"i", 2, 14},    {"tmp0", 3, 5},
      {"addr", 4, 8},   {"val", 6, 10},   {"sum", 1, 14},  {"tmp1", 8, 11},
      {"cmp", 10, 13},  {"step", 11, 14}, {"mask", 5, 9},
  };
  const Graph g = interference_graph(ranges);
  std::printf("interference graph: %d virtual registers, %d conflicts\n",
              g.num_vertices(), g.num_edges());

  ColoringOptions options;
  options.max_colors = 8;
  options.sbps = SbpOptions::nu_sc();
  options.instance_dependent_sbps = true;
  const ColoringOutcome result = solve_coloring(g, options);
  if (result.status != OptStatus::Optimal) {
    std::printf("allocation failed within %d registers\n", options.max_colors);
    return 1;
  }
  std::printf("minimum registers needed: %d\n", result.num_colors);
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    std::printf("  %-5s [%2d,%2d) -> r%d\n", ranges[i].name.c_str(),
                ranges[i].def, ranges[i].end, result.coloring[i]);
  }

  // An embedded target with fewer registers than the chromatic number:
  // the exact infeasibility answer tells the compiler it must spill.
  ColoringOptions tight = options;
  tight.max_colors = result.num_colors - 1;
  const ColoringOutcome spill = solve_coloring(g, tight);
  std::printf("with only %d registers: %s\n", tight.max_colors,
              spill.status == OptStatus::Infeasible
                  ? "provably infeasible -> spill required"
                  : "unexpectedly feasible");
  return spill.status == OptStatus::Infeasible ? 0 : 1;
}
