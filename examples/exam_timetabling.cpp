// Exam timetabling via exact graph coloring (paper Section 2.1:
// time-tabling and scheduling).
//
// Courses sharing at least one student cannot sit their exams in the
// same slot. Vertices are courses, edges are student conflicts, colors
// are exam slots; the chromatic number is the minimum-length timetable.
// Demonstrates the decision variant too: "does a 4-slot timetable
// exist?" maps to K-coloring.

#include <cstdio>
#include <string>
#include <vector>

#include "coloring/exact_colorer.h"

using namespace symcolor;

int main() {
  const std::vector<std::string> courses{
      "Algebra", "Calculus", "Compilers", "Databases", "Geometry",
      "Logic",   "Networks", "OS",        "Physics",   "Statistics"};
  // Student enrolments: each list is one student's course load.
  const std::vector<std::vector<int>> students{
      {0, 1, 4},  {0, 5, 9},   {1, 8, 9}, {2, 3, 7}, {2, 6, 7},
      {3, 6, 9},  {4, 5, 8},   {0, 2, 9}, {1, 3, 5}, {6, 8, 9},
      {2, 5, 8},  {0, 3, 4},
  };

  Graph g(static_cast<int>(courses.size()));
  for (const auto& load : students) {
    for (std::size_t a = 0; a < load.size(); ++a) {
      for (std::size_t b = a + 1; b < load.size(); ++b) {
        g.add_edge(load[a], load[b]);
      }
    }
  }
  g.finalize();
  std::printf("conflict graph: %d courses, %d pairwise conflicts\n",
              g.num_vertices(), g.num_edges());

  ColoringOptions options;
  options.max_colors = 8;
  options.sbps = SbpOptions::nu_only();
  options.instance_dependent_sbps = true;
  const ColoringOutcome result = solve_coloring(g, options);
  if (result.status != OptStatus::Optimal) {
    std::printf("no timetable found within %d slots\n", options.max_colors);
    return 1;
  }
  std::printf("minimum exam slots: %d\n", result.num_colors);
  for (int slot = 0; slot < result.num_colors; ++slot) {
    std::printf("  slot %d:", slot + 1);
    for (std::size_t c = 0; c < courses.size(); ++c) {
      if (result.coloring[c] == slot) std::printf(" %s", courses[c].c_str());
    }
    std::printf("\n");
  }

  // Decision query: can the registrar fit everything into 4 slots?
  ColoringOptions decision;
  decision.max_colors = 4;
  const ColoringOutcome fits = solve_k_coloring(g, decision);
  std::printf("4-slot timetable exists: %s\n",
              fits.status == OptStatus::Optimal ? "yes" : "no");
  return 0;
}
