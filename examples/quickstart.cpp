// Quickstart: color a graph optimally in a dozen lines.
//
// Builds the Petersen graph, asks the exact colorer for its chromatic
// number (with the paper's best-performing configuration: selective
// coloring plus instance-dependent symmetry breaking), and prints the
// coloring.

#include <cstdio>

#include "coloring/exact_colorer.h"

using namespace symcolor;

int main() {
  // The Petersen graph: outer 5-cycle, inner pentagram, spokes.
  Graph g(10);
  for (int i = 0; i < 5; ++i) {
    g.add_edge(i, (i + 1) % 5);
    g.add_edge(5 + i, 5 + (i + 2) % 5);
    g.add_edge(i, 5 + i);
  }
  g.finalize();

  ColoringOptions options;
  options.max_colors = 6;                  // upper bound on colors to try
  options.sbps = SbpOptions::sc_only();    // instance-independent SBPs
  options.instance_dependent_sbps = true;  // Shatter flow
  options.solver = SolverKind::PbsII;

  const ColoringOutcome result = solve_coloring(g, options);
  if (result.status != OptStatus::Optimal) {
    std::printf("no optimal coloring found within the bound\n");
    return 1;
  }
  std::printf("chromatic number: %d\n", result.num_colors);
  std::printf("coloring:");
  for (int v = 0; v < g.num_vertices(); ++v) {
    std::printf(" v%d=%d", v, result.coloring[static_cast<std::size_t>(v)]);
  }
  std::printf("\n");
  std::printf("formula: %d vars, %d clauses, %d PB constraints\n",
              result.formula_vars, result.formula_clauses, result.formula_pb);
  if (result.symmetry) {
    std::printf("symmetries detected: 10^%.1f (in %d generators)\n",
                result.symmetry->log10_order,
                static_cast<int>(result.symmetry->generators.size()));
  }
  std::printf("solved in %.3f s (%lld conflicts, %lld decisions)\n",
              result.total_seconds,
              static_cast<long long>(result.solver_stats.conflicts),
              static_cast<long long>(result.solver_stats.decisions));
  return 0;
}
