#!/usr/bin/env python3
"""Diff two BENCH_micro.json runs and print a speedup table.

Usage:
    tools/bench_compare.py OLD.json NEW.json [--fail-below RATIO]
                           [--filter SUBSTRING ...]

Each input is the flat JSON array bench_micro emits (see bench/bench_micro.cpp):
    [{"name": ..., "n": ..., "reps": ..., "ns_per_op": ...,
      "propagations_per_sec": ...}, ...]

Benchmarks are matched by name. The speedup column is old/new for
ns_per_op (higher is better; 1.10x means the new run is 10% faster) and
new/old for propagations_per_sec where both runs report it. Benchmarks
present in only one file are listed separately so a renamed or dropped
benchmark never silently vanishes from the comparison.

--filter may be repeated; a benchmark is compared when its name contains
ANY of the given substrings (no --filter compares everything), so a CI
smoke step can gate all its benchmarks in one invocation and one table.
The table ends with a geometric-mean summary row over the matched
speedups — the single headline number for "did this change pay off".

With --fail-below R the exit status is 1 if any matched benchmark's
time-based speedup falls below R (e.g. --fail-below 0.9 fails the run on
a >10% regression), which lets CI gate on it directly. The geomean row is
informational only; the gate stays on the worst case.
"""

import argparse
import json
import math
import sys


def load(path):
    with open(path) as f:
        rows = json.load(f)
    table = {}
    for row in rows:
        table[row["name"]] = row
    return table


def fmt_time(ns):
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def fmt_rate(per_sec):
    if per_sec >= 1e6:
        return f"{per_sec / 1e6:.2f}M/s"
    if per_sec >= 1e3:
        return f"{per_sec / 1e3:.1f}k/s"
    return f"{per_sec:.0f}/s"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_micro.json")
    parser.add_argument("new", help="candidate BENCH_micro.json")
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit 1 if any time speedup (old/new) is below RATIO",
    )
    parser.add_argument(
        "--filter",
        action="append",
        default=None,
        help="only compare benchmarks whose name contains this substring; "
        "repeatable (a name matching ANY pattern is kept)",
    )
    args = parser.parse_args()

    def matches(name):
        return args.filter is None or any(p in name for p in args.filter)

    old = load(args.old)
    new = load(args.new)
    names = [n for n in old if n in new and matches(n)]
    only_old = [n for n in old if n not in new and matches(n)]
    only_new = [n for n in new if n not in old and matches(n)]

    if not names:
        print("no matching benchmarks between the two files", file=sys.stderr)
        return 2

    width = max(len(n) for n in names)
    print(f"{'benchmark':<{width}}  {'old':>10}  {'new':>10}  {'speedup':>8}")
    worst = None
    speedups = []
    for name in names:
        o, n = old[name], new[name]
        speedup = o["ns_per_op"] / n["ns_per_op"] if n["ns_per_op"] else 0.0
        worst = speedup if worst is None else min(worst, speedup)
        if speedup > 0.0:
            speedups.append(speedup)
        line = (
            f"{name:<{width}}  {fmt_time(o['ns_per_op']):>10}  "
            f"{fmt_time(n['ns_per_op']):>10}  {speedup:>7.2f}x"
        )
        if o.get("propagations_per_sec") and n.get("propagations_per_sec"):
            rate = n["propagations_per_sec"] / o["propagations_per_sec"]
            line += (
                f"   props {fmt_rate(o['propagations_per_sec'])}"
                f" -> {fmt_rate(n['propagations_per_sec'])} ({rate:.2f}x)"
            )
        print(line)

    if speedups:
        geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        print(
            f"{'geomean (' + str(len(speedups)) + ' benchmarks)':<{width}}  "
            f"{'':>10}  {'':>10}  {geomean:>7.2f}x"
        )

    for name in only_old:
        print(f"{name:<{width}}  only in {args.old}")
    for name in only_new:
        print(f"{name:<{width}}  only in {args.new}")

    if args.fail_below is not None and worst is not None:
        if worst < args.fail_below:
            print(
                f"FAIL: worst speedup {worst:.2f}x below "
                f"--fail-below {args.fail_below}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
