#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# Usage: tools/run_tier1.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
