// symcolor_serve — long-lived solve service speaking newline-delimited
// JSON on stdin/stdout (point a socket at it with `socat` or run it as a
// child process; the protocol is transport-agnostic line framing).
//
//   symcolor_serve [--workers N] [--queue N] [--grace S] [--timeout S]
//                  [--default-timeout S] [--stats]
//
//   --workers N          pool workers (default 4)
//   --queue N            admission bound on queued requests (default 64)
//   --grace S            drain grace for in-flight sessions at shutdown
//   --timeout S          service-wide wall budget; when it expires every
//                        session degrades gracefully and the process
//                        exits with code 2 (same convention as the CLI)
//   --default-timeout S  per-request deadline when a request names none
//   --stats              print aggregate --stats lines to stderr on exit
//                        (same line formats as symcolor_cli; util/report.h)
//
// Requests (one JSON object per line):
//   {"op":"solve","id":"r1","instance":"queen5_5","k":5}
//   {"op":"solve","id":"r2","instance":"myciel4","k":5,"minimize":true,
//    "search":"binary","timeout":1.5,"conflicts":100000,"threads":2}
//   {"op":"solve","id":"r3","vars":2,"clauses":[[1,2],[-1],[-2]]}
//   {"op":"cancel","id":"r1"}
//   {"op":"stats"}
//   {"op":"quit"}
//
// Solve-request fields: a formula source — either `instance` (a member of
// the built-in DIMACS-style suite) with color bound `k` (decision
// encoding; `"minimize":true` switches to the optimization encoding and
// minimizes the color count), or raw `clauses` as DIMACS literal arrays
// with `vars` — plus optional `timeout`/`conflicts`/`props` budgets,
// `threads`, `cube_depth` (> 0 solves via cube-and-conquer: the search
// space is split into assumption cubes dealt to `threads` workers),
// `search` ("linear"|"binary"|"core"), `cache` (warm-start
// instance encodings via the service engine cache), and the fault hook
// `fault_conflicts` (throw after N conflicts; the per-session barrier
// turns it into outcome "failed").
//
// Responses (one JSON object per line, in completion order):
//   {"id":"r1","outcome":"sat","solve_s":0.01,...}
//   {"id":"r9","outcome":"rejected","reason":"queue_full","retry_after":0.2}
//   {"op":"cancel","id":"r1","ok":true}        (acks, in request order)
//   {"error":"parse error"}                    (malformed input lines)
//
// Exit code: 0 clean quit, 2 when the service budget tripped or SIGINT
// stopped the server, 3 usage error — shared with symcolor_cli.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "coloring/encoder.h"
#include "graph/generators.h"
#include "service/solve_service.h"
#include "util/json.h"
#include "util/report.h"

using namespace symcolor;

namespace {

// SIGINT wiring: interrupt the service-wide budget (async-signal-safe
// atomic store) and remember that we were signalled. Installed with
// sigaction WITHOUT SA_RESTART so the blocking stdin read returns EINTR
// and the main loop can drain instead of blocking forever.
const SolveBudget* g_serve_budget = nullptr;
volatile std::sig_atomic_t g_sigint = 0;

void on_sigint(int) {
  g_sigint = 1;
  if (g_serve_budget != nullptr) g_serve_budget->interrupt();
}

void install_sigint() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_sigint;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  sigaction(SIGINT, &sa, nullptr);
}

// stdout is shared by the main thread (acks, errors) and the collector
// thread (session results); every line is written atomically under this
// lock and flushed so a piped client sees responses promptly.
std::mutex g_out_mutex;

void emit(const Json& line) {
  const std::string text = line.dump();
  std::lock_guard<std::mutex> lock(g_out_mutex);
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

// Client-request-id bookkeeping between submit and delivery. The submit
// itself must happen UNDER this lock: a session can finish and reach the
// collector before the submitting thread runs another statement, and
// take_session blocking on the lock is what guarantees the mapping is in
// place by the time the collector looks it up.
std::mutex g_ids_mutex;
std::unordered_map<SessionId, std::string> g_session_client;
std::unordered_map<std::string, SessionId> g_client_session;

void submit_session(SolveService& service, SolveRequest request,
                    const std::string& client_id) {
  std::lock_guard<std::mutex> lock(g_ids_mutex);
  const SessionId sid = service.submit(std::move(request));
  g_session_client[sid] = client_id;
  g_client_session[client_id] = sid;
}

std::string take_session(SessionId sid) {
  std::lock_guard<std::mutex> lock(g_ids_mutex);
  const auto it = g_session_client.find(sid);
  if (it == g_session_client.end()) return {};
  std::string client = it->second;
  g_session_client.erase(it);
  const auto back = g_client_session.find(client);
  if (back != g_client_session.end() && back->second == sid) {
    g_client_session.erase(back);
  }
  return client;
}

SessionId lookup_client(const std::string& client_id) {
  std::lock_guard<std::mutex> lock(g_ids_mutex);
  const auto it = g_client_session.find(client_id);
  return it != g_client_session.end() ? it->second : kInvalidSession;
}

// Base formulas built from `instance` requests are immutable and shared;
// one entry per (instance, k, minimize) so repeated requests reuse the
// encoding AND give the service cache a stable identity to warm-start on.
std::mutex g_formula_mutex;
std::map<std::string, std::shared_ptr<const Formula>> g_formulas;

std::shared_ptr<const Formula> instance_formula(const std::string& name, int k,
                                                bool minimize,
                                                std::string* cache_key) {
  *cache_key = name + "/k=" + std::to_string(k) + (minimize ? "/min" : "/dec");
  std::lock_guard<std::mutex> lock(g_formula_mutex);
  const auto it = g_formulas.find(*cache_key);
  if (it != g_formulas.end()) return it->second;
  for (const Instance& inst : dimacs_suite()) {
    if (inst.name != name) continue;
    ColoringEncoding enc = minimize ? encode_coloring(inst.graph, k)
                                    : encode_k_coloring(inst.graph, k);
    auto formula = std::make_shared<Formula>(std::move(enc.formula));
    g_formulas[*cache_key] = formula;
    return formula;
  }
  return nullptr;
}

std::shared_ptr<const Formula> clause_formula(const Json& msg,
                                              std::string* error) {
  const std::int64_t vars = msg.get_int("vars", 0);
  const Json* clauses = msg.find("clauses");
  if (vars <= 0 || vars > 10'000'000 || clauses == nullptr ||
      !clauses->is_array()) {
    *error = "clause requests need \"vars\" (1..1e7) and \"clauses\"";
    return nullptr;
  }
  auto formula = std::make_shared<Formula>();
  formula->new_vars(static_cast<int>(vars));
  for (const Json& row : clauses->as_array()) {
    if (!row.is_array()) {
      *error = "each clause must be an array of DIMACS literals";
      return nullptr;
    }
    Clause clause;
    for (const Json& lit : row.as_array()) {
      const std::int64_t code = lit.as_int(0);
      if (code == 0 || code > vars || code < -vars) {
        *error = "literal out of range";
        return nullptr;
      }
      const Var v = static_cast<Var>(code > 0 ? code - 1 : -code - 1);
      clause.push_back(code > 0 ? Lit::positive(v) : Lit::negative(v));
    }
    formula->add_clause(std::move(clause));
  }
  return formula;
}

Json result_to_json(const std::string& client_id, const SessionResult& r) {
  Json out;
  out["id"] = client_id;
  out["outcome"] = session_outcome_name(r.outcome);
  if (r.trip != BudgetTrip::None) out["trip"] = budget_trip_name(r.trip);
  if (r.outcome == SessionOutcome::Rejected) {
    out["reason"] = reject_reason_name(r.reject_reason);
    if (r.retry_after_seconds > 0.0) {
      out["retry_after"] = r.retry_after_seconds;
    }
  }
  if (!r.model.empty()) {
    out["model_vars"] = static_cast<std::int64_t>(r.model.size());
    if (r.best_value != 0 || r.lower_bound != 0) {
      out["best_value"] = r.best_value;
    }
  }
  if (r.lower_bound != 0) out["lower_bound"] = r.lower_bound;
  if (!r.error.empty()) out["error"] = r.error;
  out["conflicts"] = r.stats.conflicts;
  out["queue_s"] = r.queue_seconds;
  out["solve_s"] = r.solve_seconds;
  return out;
}

Json stats_to_json(const ServiceStats& s) {
  Json out;
  out["op"] = "stats";
  out["submitted"] = s.submitted;
  out["completed"] = s.completed();
  out["sat"] = s.sat;
  out["unsat"] = s.unsat;
  out["feasible"] = s.feasible;
  out["degraded"] = s.degraded;
  out["cancelled"] = s.cancelled;
  out["rejected"] = s.rejected;
  out["failed"] = s.failed;
  out["shed_on_arrival"] = s.shed_on_arrival;
  out["cache_hits"] = s.cache_hits;
  out["cache_misses"] = s.cache_misses;
  out["queued_now"] = static_cast<std::int64_t>(s.queued_now);
  out["running_now"] = static_cast<std::int64_t>(s.running_now);
  out["conflicts"] = s.solver_totals.conflicts;
  out["inprocess_rounds"] = s.solver_totals.inprocess_rounds;
  out["vivified_clauses"] = s.solver_totals.vivified_clauses;
  out["replaced_vars"] = s.solver_totals.replaced_vars;
  return out;
}

void handle_solve(SolveService& service, const Json& msg,
                  const std::string& client_id) {
  SolveRequest request;
  std::string error;
  const std::string instance = msg.get_string("instance");
  const bool minimize = msg.get_bool("minimize", false);
  if (!instance.empty()) {
    const int k = static_cast<int>(msg.get_int("k", 8));
    if (k < 1 || k > 256) {
      error = "\"k\" out of range (1..256)";
    } else {
      std::string cache_key;
      request.formula = instance_formula(instance, k, minimize, &cache_key);
      if (request.formula == nullptr) {
        error = "unknown instance \"" + instance + "\"";
      } else if (msg.get_bool("cache", false) && !minimize) {
        request.cache_key = cache_key;
      }
    }
  } else {
    request.formula = clause_formula(msg, &error);
  }
  if (!error.empty()) {
    Json out;
    out["id"] = client_id;
    out["outcome"] = "failed";
    out["error"] = error;
    emit(out);
    return;
  }

  request.minimize = minimize;
  const std::string search = msg.get_string("search", "linear");
  if (search == "binary") request.strategy = SearchStrategy::Binary;
  else if (search == "core") request.strategy = SearchStrategy::CoreGuided;
  request.timeout_seconds = msg.get_double("timeout", 0.0);
  request.conflict_budget = msg.get_int("conflicts", 0);
  request.prop_budget = msg.get_int("props", 0);
  const int threads = static_cast<int>(msg.get_int("threads", 1));
  request.config.portfolio_threads = threads >= 1 && threads <= 64 ? threads : 1;
  const int cube_depth = static_cast<int>(msg.get_int("cube_depth", 0));
  request.config.cube_depth = cube_depth >= 1 && cube_depth <= 32 ? cube_depth : 0;
  const std::int64_t fault = msg.get_int("fault_conflicts", 0);
  if (fault > 0) {
    request.config.fault_injection.worker = -1;
    request.config.fault_injection.throw_after_conflicts = fault;
  }

  submit_session(service, std::move(request), client_id);
}

void collector_loop(SolveService& service) {
  SessionId sid = kInvalidSession;
  SessionResult result;
  while (service.wait_any(&sid, &result)) {
    std::string client = take_session(sid);
    if (client.empty()) client = "session-" + std::to_string(sid);
    emit(result_to_json(client, result));
  }
}

void usage() {
  std::fprintf(stderr,
               "usage: symcolor_serve [--workers n] [--queue n] [--grace s]\n"
               "                      [--timeout s] [--default-timeout s] "
               "[--stats]\n"
               "speaks newline-delimited JSON on stdin/stdout; see the "
               "header comment\n");
}

}  // namespace

int main(int argc, char** argv) {
  ServiceConfig config;
  bool print_stats = false;
  double serve_timeout = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) < 1) { usage(); return kExitUsage; }
      config.workers = std::atoi(v);
    } else if (arg == "--queue") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) < 1) { usage(); return kExitUsage; }
      config.queue_capacity = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--grace") {
      const char* v = next();
      if (v == nullptr) { usage(); return kExitUsage; }
      config.drain_grace_seconds = std::atof(v);
    } else if (arg == "--timeout") {
      const char* v = next();
      if (v == nullptr) { usage(); return kExitUsage; }
      serve_timeout = std::atof(v);
    } else if (arg == "--default-timeout") {
      const char* v = next();
      if (v == nullptr) { usage(); return kExitUsage; }
      config.default_timeout_seconds = std::atof(v);
    } else if (arg == "--stats") {
      print_stats = true;
    } else {
      usage();
      return kExitUsage;
    }
  }

  // The service budget chains under this run-wide budget; SIGINT and
  // --timeout both preempt every session through it.
  const SolveBudget serve_budget(serve_timeout);
  config.parent_budget = &serve_budget;
  g_serve_budget = &serve_budget;
  install_sigint();

  SolveService service(config);
  std::thread collector(collector_loop, std::ref(service));

  std::string line;
  while (g_sigint == 0) {
    if (!std::getline(std::cin, line)) {
      if (g_sigint == 0 && std::cin.eof()) break;  // clean EOF
      if (g_sigint != 0) break;                    // interrupted read
      std::cin.clear();
      continue;
    }
    if (line.empty()) continue;
    const std::optional<Json> parsed = Json::parse(line);
    if (!parsed || !parsed->is_object()) {
      Json err;
      err["error"] = "parse error";
      emit(err);
      continue;
    }
    const Json& msg = *parsed;
    const std::string op = msg.get_string("op");
    if (op == "quit") {
      Json ack;
      ack["op"] = "quit";
      ack["ok"] = true;
      emit(ack);
      break;
    }
    if (op == "stats") {
      emit(stats_to_json(service.stats()));
      continue;
    }
    const std::string client_id = msg.get_string("id");
    if (client_id.empty()) {
      Json err;
      err["error"] = "request needs a string \"id\"";
      emit(err);
      continue;
    }
    if (op == "solve") {
      handle_solve(service, msg, client_id);
    } else if (op == "cancel") {
      const SessionId sid = lookup_client(client_id);
      const bool ok = sid != kInvalidSession && service.cancel(sid);
      Json ack;
      ack["op"] = "cancel";
      ack["id"] = client_id;
      ack["ok"] = ok;
      emit(ack);
    } else {
      Json err;
      err["id"] = client_id;
      err["error"] = "unknown op \"" + op + "\"";
      emit(err);
    }
  }

  // Drain: queued sessions reject, in-flight ones get the grace budget,
  // and the collector delivers every terminal result before exiting.
  service.shutdown(config.drain_grace_seconds);
  collector.join();

  const ServiceStats final_stats = service.stats();
  const BudgetTrip serve_trip = serve_budget.poll();
  if (print_stats) {
    std::fprintf(stderr, "%s\n",
                 format_solver_line(final_stats.solver_totals).c_str());
    if (final_stats.solver_totals.inprocess_rounds > 0) {
      std::fprintf(
          stderr, "%s\n",
          format_inprocess_line(final_stats.solver_totals).c_str());
    }
    if (final_stats.solver_totals.chrono_backtracks > 0 ||
        final_stats.solver_totals.reused_trail_literals > 0) {
      // Same conditional convention as the CLI: the incremental hot-path
      // line appears only when the feature actually fired.
      std::fprintf(
          stderr, "%s\n",
          format_incremental_line(final_stats.solver_totals).c_str());
    }
    std::fprintf(stderr, "%s\n",
                 format_budget_line(serve_trip, final_stats.solver_totals)
                     .c_str());
  }
  return serve_trip != BudgetTrip::None || g_sigint != 0 ? kExitStopped
                                                         : kExitSolved;
}
