#!/usr/bin/env python3
"""End-to-end smoke test for symcolor_serve's newline-JSON protocol.

Usage: serve_smoke.py <path-to-symcolor_serve>

Run 1 drives a scripted batch over a deliberately small pool
(--workers 1 --queue 1): a SAT solve, an UNSAT solve, an over-budget
solve that must degrade, a mid-flight cancellation, an overload burst
where the newest requests are shed with retry hints, a stats probe, and
a clean quit — asserting every submitted request reaches exactly one
well-formed terminal response and the process exits 0.

Run 2 arms a service-wide --timeout and checks the budget-stop exit
convention shared with symcolor_cli: the in-flight session degrades and
the process exits 2.
"""

import json
import subprocess
import sys
import threading
import time


def php(pigeons, holes):
    """PHP(p, h) in DIMACS literal arrays: SAT iff p <= h."""
    def var(p, h):
        return p * holes + h + 1
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return {"vars": pigeons * holes, "clauses": clauses}


class Server:
    def __init__(self, binary, extra_args=()):
        self.proc = subprocess.Popen(
            [binary, *extra_args],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        self.lines = []
        self.cond = threading.Condition()
        self.reader = threading.Thread(target=self._drain, daemon=True)
        self.reader.start()

    def _drain(self):
        for raw in self.proc.stdout:
            raw = raw.strip()
            if not raw:
                continue
            msg = json.loads(raw)  # every output line must be valid JSON
            with self.cond:
                self.lines.append(msg)
                self.cond.notify_all()

    def send(self, obj):
        self.proc.stdin.write(json.dumps(obj) + "\n")
        self.proc.stdin.flush()

    def mark(self):
        """Cursor for wait_for(start=...): only match lines after now."""
        with self.cond:
            return len(self.lines)

    def wait_for(self, pred, what, timeout=60.0, start=0):
        deadline = time.monotonic() + timeout
        with self.cond:
            while True:
                for msg in self.lines[start:]:
                    if pred(msg):
                        return msg
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise AssertionError(
                        f"timed out waiting for {what}; saw: {self.lines}")
                self.cond.wait(remaining)

    def stats_until(self, pred, what, timeout=30.0):
        """Poll {"op":"stats"} until pred holds on a FRESH response."""
        deadline = time.monotonic() + timeout
        while True:
            start = self.mark()
            self.send({"op": "stats"})
            msg = self.wait_for(lambda m: m.get("op") == "stats",
                                "stats response", timeout=10.0, start=start)
            if pred(msg):
                return msg
            if time.monotonic() > deadline:
                raise AssertionError(f"timed out polling stats for {what}; "
                                     f"last: {msg}")
            time.sleep(0.01)

    def result_of(self, rid, timeout=60.0):
        return self.wait_for(
            lambda m: m.get("id") == rid and "outcome" in m,
            f"result of {rid!r}", timeout)

    def finish(self, close_stdin=True, timeout=60.0):
        if close_stdin and self.proc.stdin and not self.proc.stdin.closed:
            self.proc.stdin.close()
        code = self.proc.wait(timeout=timeout)
        self.reader.join(timeout=10.0)
        return code


def check(cond, message):
    if not cond:
        raise AssertionError(message)


def run_batch(binary):
    srv = Server(binary, ["--workers", "1", "--queue", "1", "--grace", "5"])
    slow = php(10, 9)  # far beyond what fits in the budgets below

    # 1. Plain SAT and UNSAT round trips (sequenced: the pool is a single
    #    worker with a single queue slot, so concurrent submits would be
    #    load-shed — that behaviour is exercised deliberately in step 4).
    srv.send({"op": "solve", "id": "sat", **php(3, 4)})
    check(srv.result_of("sat")["outcome"] == "sat", "expected sat")
    srv.send({"op": "solve", "id": "unsat", **php(4, 3)})
    r = srv.result_of("unsat")
    check(r["outcome"] == "unsat", f"expected unsat, got {r}")

    # 2. Over-budget request degrades gracefully with the trip recorded.
    srv.send({"op": "solve", "id": "capped", "conflicts": 50, **slow})
    r = srv.result_of("capped")
    check(r["outcome"] == "degraded", f"expected degraded, got {r}")
    check(r.get("trip") == "conflicts", f"expected conflicts trip, got {r}")

    # 3. Mid-flight cancellation: the ack comes back true and the session
    #    reaches its one terminal outcome, Cancelled via async interrupt.
    srv.send({"op": "solve", "id": "hog", **slow})
    srv.send({"op": "cancel", "id": "hog"})
    ack = srv.wait_for(
        lambda m: m.get("op") == "cancel" and m.get("id") == "hog",
        "cancel ack")
    check(ack["ok"] is True, f"cancel should land, got {ack}")
    r = srv.result_of("hog")
    check(r["outcome"] == "cancelled", f"expected cancelled, got {r}")

    # 4. Overload: occupy the worker, fill the 1-slot queue, then burst.
    #    The newest requests shed as rejected/queue_full with a retry hint;
    #    everything admitted still completes.
    srv.send({"op": "solve", "id": "hog2", **slow})
    srv.stats_until(lambda s: s["running_now"] >= 1, "hog2 running")
    srv.send({"op": "solve", "id": "q1", **php(3, 4)})
    burst = [f"burst{i}" for i in range(4)]
    for rid in burst:
        srv.send({"op": "solve", "id": rid, **php(3, 4)})
    rejected = 0
    for rid in burst:
        r = srv.result_of(rid)
        if r["outcome"] == "rejected":
            check(r["reason"] == "queue_full", f"bad reject reason: {r}")
            check(r.get("retry_after", 0) > 0, f"missing retry hint: {r}")
            rejected += 1
        else:
            check(r["outcome"] == "sat", f"admitted burst must solve: {r}")
    check(rejected >= 1, "a 4-deep burst over a full 1-slot queue "
                         "must shed at least one request")
    srv.send({"op": "cancel", "id": "hog2"})
    check(srv.result_of("hog2")["outcome"] == "cancelled", "hog2 cancel")
    check(srv.result_of("q1")["outcome"] == "sat", "queued q1 must finish")

    # 5. Stats probe: counters reflect the batch (fresh cursor — step 4's
    #    polling left earlier stats responses in the buffer).
    start = srv.mark()
    srv.send({"op": "stats"})
    stats = srv.wait_for(lambda m: m.get("op") == "stats", "stats",
                         start=start)
    check(stats["submitted"] >= 9, f"submitted counter too low: {stats}")
    check(stats["rejected"] >= 1, f"rejected counter missing: {stats}")
    check(stats["cancelled"] >= 2, f"cancelled counter missing: {stats}")

    # 6. Malformed input is answered, not fatal.
    srv.proc.stdin.write("this is not json\n")
    srv.proc.stdin.flush()
    srv.wait_for(lambda m: m.get("error") == "parse error", "parse error")

    # 7. Clean quit: ack, drain, exit 0.
    srv.send({"op": "quit"})
    srv.wait_for(lambda m: m.get("op") == "quit" and m.get("ok") is True,
                 "quit ack")
    code = srv.finish()
    check(code == 0, f"clean quit must exit 0, got {code}")
    print("batch run ok: exit 0, "
          f"{stats['submitted']} submitted / {stats['completed']} completed")


def run_service_timeout(binary):
    srv = Server(binary, ["--workers", "1", "--timeout", "0.3",
                          "--grace", "0.1"])
    srv.send({"op": "solve", "id": "doomed", **php(10, 9)})
    # The service-wide budget preempts the session...
    r = srv.result_of("doomed")
    check(r["outcome"] in ("degraded", "cancelled"),
          f"service timeout must degrade the session, got {r}")
    time.sleep(0.4)  # make sure the budget is spent before EOF
    # ...and the process reports the stop through its exit code.
    code = srv.finish()
    check(code == 2, f"tripped service budget must exit 2, got {code}")
    print("timeout run ok: session degraded, exit 2")


def main():
    if len(sys.argv) != 2:
        print("usage: serve_smoke.py <symcolor_serve>", file=sys.stderr)
        return 3
    run_batch(sys.argv[1])
    run_service_timeout(sys.argv[1])
    print("serve_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
