// symcolor_cli — command-line front end for the exact coloring pipeline.
//
//   symcolor_cli [options] <graph.col>
//   symcolor_cli [options] --instance <name>     (built-in suite member)
//
// Options:
//   -k <int>        color limit K (default 20)
//   --sbp <row>     none | nu | ca | li | liq | sc | nu+sc  (default none)
//   --shatter       add instance-dependent lex-leader SBPs
//   --solver <s>    pbs | pbs2 | galena | pueblo | generic  (default pbs2)
//   --search <s>    objective search strategy on ONE persistent engine:
//                   linear (strengthen from above), binary (bisect), or
//                   core (UNSAT-core lower-bound lifting); default linear.
//                   Applies to both the native PB and --satloop pipelines
//   --threads <n>   racing portfolio workers per CDCL solve (default 1;
//                   the answer is identical at any thread count)
//   --cube-depth <n> cube-and-conquer: split the search space into
//                   assumption cubes of up to depth n and deal them to
//                   --threads workers (default 0 = race full copies)
//   --inprocess <m> restart-boundary inprocessing: off | viv | full
//                   (default viv; full adds equivalent-literal
//                   substitution — the answer is identical in every mode)
//   --chrono <n>    chronological-backtracking threshold: backjumps
//                   longer than n levels undo only the conflicting level
//                   (0 = always full backjump; default is the solver
//                   profile's, currently 100; answers are identical at
//                   every setting)
//   --decision      K-colorability query instead of minimization
//   --simplify      pre-solve simplification (units, pures, subsumption)
//   --satloop       pure-CNF SAT-loop pipeline instead of native PB
//   --opb <file>    dump the encoded 0-1 ILP instance as OPB and exit
//   --stats         print symmetry/solver statistics
//
// Resource control (every run is preemptible; <= 0 means unlimited):
//   --timeout <s>          wall budget in seconds
//   --conflict-budget <n>  total CDCL conflicts across the whole run
//   --prop-budget <n>      total CDCL propagations across the whole run
//   Ctrl-C (SIGINT)        asynchronous interrupt: the solve stops within a
//                          bounded number of search steps and the run
//                          degrades gracefully — best coloring found so far
//                          plus the tightest PROVEN lower bound are reported
//                          (a second Ctrl-C kills the process as usual).
//
// Exit code: 0 optimal/SAT, 1 infeasible/UNSAT, 2 budget/interrupt stop,
// 3 usage error.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "cnf/writers.h"
#include "coloring/cnf_coloring.h"
#include "coloring/exact_colorer.h"
#include "graph/dimacs_col.h"
#include "graph/generators.h"
#include "util/report.h"

using namespace symcolor;

namespace {

// The run-wide budget SIGINT signals through. interrupt() is a single
// lock-free atomic store, so calling it from the handler is safe; the
// handler is only installed after the pointer is set.
const SolveBudget* g_run_budget = nullptr;

void on_sigint(int) {
  if (g_run_budget != nullptr) {
    g_run_budget->interrupt();
    // Restore the default disposition so a second Ctrl-C kills the
    // process even if the solver is stuck outside its poll cadence.
    std::signal(SIGINT, SIG_DFL);
  }
}

void usage() {
  std::fprintf(stderr,
               "usage: symcolor_cli [-k K] [--sbp row] [--shatter] "
               "[--solver s] [--search linear|binary|core]\n"
               "                    [--threads n] [--cube-depth n] "
               "[--inprocess off|viv|full] [--chrono n]\n"
               "                    [--decision] [--satloop] [--opb file] "
               "[--stats]\n"
               "                    (<graph.col> | --instance <name>)\n"
               "resource control (<= 0 = unlimited; Ctrl-C interrupts and "
               "reports best-so-far):\n"
               "                    [--timeout sec] [--conflict-budget n] "
               "[--prop-budget n]\n");
}

std::optional<SbpOptions> parse_sbp(const std::string& name) {
  if (name == "none") return SbpOptions::none();
  if (name == "nu") return SbpOptions::nu_only();
  if (name == "ca") return SbpOptions::ca_only();
  if (name == "li") return SbpOptions::li_only();
  if (name == "liq") return SbpOptions::li_paper();
  if (name == "sc") return SbpOptions::sc_only();
  if (name == "nu+sc") return SbpOptions::nu_sc();
  return std::nullopt;
}

std::optional<SearchStrategy> parse_search(const std::string& name) {
  if (name == "linear") return SearchStrategy::Linear;
  if (name == "binary") return SearchStrategy::Binary;
  if (name == "core") return SearchStrategy::CoreGuided;
  return std::nullopt;
}

std::optional<InprocessMode> parse_inprocess(const std::string& name) {
  if (name == "off") return InprocessMode::Off;
  if (name == "viv") return InprocessMode::Viv;
  if (name == "full") return InprocessMode::Full;
  return std::nullopt;
}

std::optional<SolverKind> parse_solver(const std::string& name) {
  if (name == "pbs") return SolverKind::PbsOriginal;
  if (name == "pbs2") return SolverKind::PbsII;
  if (name == "galena") return SolverKind::Galena;
  if (name == "pueblo") return SolverKind::Pueblo;
  if (name == "generic") return SolverKind::GenericIlp;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  int k = 20;
  SbpOptions sbps;
  bool shatter_flow = false;
  SolverKind solver = SolverKind::PbsII;
  SearchStrategy search = SearchStrategy::Linear;
  int threads = 1;
  int cube_depth = 0;
  InprocessMode inprocess = InprocessMode::Viv;
  long long chrono = -1;  // < 0 = keep the solver profile's default
  double timeout = 0.0;
  long long conflict_budget = 0;
  long long prop_budget = 0;
  bool decision = false;
  bool satloop = false;
  bool presimplify = false;
  bool stats = false;
  std::string opb_path;
  std::string graph_path;
  std::string instance_name;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "-k") {
      const char* v = next();
      if (v == nullptr) { usage(); return kExitUsage; }
      k = std::atoi(v);
    } else if (arg == "--sbp") {
      const char* v = next();
      const auto parsed = v != nullptr ? parse_sbp(v) : std::nullopt;
      if (!parsed) { usage(); return kExitUsage; }
      sbps = *parsed;
    } else if (arg == "--shatter") {
      shatter_flow = true;
    } else if (arg == "--solver") {
      const char* v = next();
      const auto parsed = v != nullptr ? parse_solver(v) : std::nullopt;
      if (!parsed) { usage(); return kExitUsage; }
      solver = *parsed;
    } else if (arg == "--search") {
      const char* v = next();
      const auto parsed = v != nullptr ? parse_search(v) : std::nullopt;
      if (!parsed) { usage(); return kExitUsage; }
      search = *parsed;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) < 1) { usage(); return kExitUsage; }
      threads = std::atoi(v);
    } else if (arg == "--cube-depth") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) < 0) { usage(); return kExitUsage; }
      cube_depth = std::atoi(v);
    } else if (arg == "--inprocess") {
      const char* v = next();
      const auto parsed = v != nullptr ? parse_inprocess(v) : std::nullopt;
      if (!parsed) { usage(); return kExitUsage; }
      inprocess = *parsed;
    } else if (arg == "--chrono") {
      const char* v = next();
      if (v == nullptr || std::atoll(v) < 0) { usage(); return kExitUsage; }
      chrono = std::atoll(v);
    } else if (arg == "--timeout") {
      const char* v = next();
      if (v == nullptr) { usage(); return kExitUsage; }
      timeout = std::atof(v);
    } else if (arg == "--conflict-budget") {
      const char* v = next();
      if (v == nullptr) { usage(); return kExitUsage; }
      conflict_budget = std::atoll(v);
    } else if (arg == "--prop-budget") {
      const char* v = next();
      if (v == nullptr) { usage(); return kExitUsage; }
      prop_budget = std::atoll(v);
    } else if (arg == "--decision") {
      decision = true;
    } else if (arg == "--simplify") {
      presimplify = true;
    } else if (arg == "--satloop") {
      satloop = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--opb") {
      const char* v = next();
      if (v == nullptr) { usage(); return kExitUsage; }
      opb_path = v;
    } else if (arg == "--instance") {
      const char* v = next();
      if (v == nullptr) { usage(); return kExitUsage; }
      instance_name = v;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return kExitUsage;
    } else {
      graph_path = arg;
    }
  }

  Graph graph;
  try {
    if (!instance_name.empty()) {
      bool found = false;
      for (const Instance& inst : dimacs_suite()) {
        if (inst.name == instance_name) {
          graph = inst.graph;
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "unknown instance '%s'; available:\n",
                     instance_name.c_str());
        for (const Instance& inst : dimacs_suite()) {
          std::fprintf(stderr, "  %s\n", inst.name.c_str());
        }
        return kExitUsage;
      }
    } else if (!graph_path.empty()) {
      graph = read_dimacs_col_file(graph_path);
    } else {
      usage();
      return kExitUsage;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsage;
  }
  std::printf("graph: %d vertices, %d edges\n", graph.num_vertices(),
              graph.num_edges());

  if (!opb_path.empty()) {
    const ColoringEncoding enc = encode_coloring(graph, k, sbps);
    std::ofstream out(opb_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opb_path.c_str());
      return kExitUsage;
    }
    write_opb(out, enc.formula);
    std::printf("wrote %s: %d vars, %d clauses, %d PB constraints\n",
                opb_path.c_str(), enc.formula.num_vars(),
                enc.formula.num_clauses(), enc.formula.num_pb());
    return kExitSolved;
  }

  // One budget covers the whole run; Ctrl-C asynchronously interrupts it
  // and the pipelines degrade gracefully (best-so-far + proven bound).
  const SolveBudget run_budget(timeout, conflict_budget, prop_budget);
  g_run_budget = &run_budget;
  std::signal(SIGINT, on_sigint);

  if (satloop) {
    SatLoopOptions options;
    options.sbps = sbps;
    options.search = search;
    options.solver.portfolio_threads = threads;
    options.solver.cube_depth = cube_depth;
    options.solver.inprocess = inprocess;
    if (chrono >= 0) options.solver.chrono_threshold = chrono;
    options.budget = &run_budget;
    const SatLoopResult r = solve_coloring_sat_loop(graph, options);
    if (r.status == OptStatus::Optimal) {
      std::printf("chromatic number: %d (%d SAT calls, %.3f s)\n",
                  r.num_colors, r.sat_calls, r.seconds);
      return kExitSolved;
    }
    std::printf(
        "stopped (%s); best coloring uses %d colors; "
        "chromatic number >= %d proven (%d SAT calls, %.3f s)\n",
        budget_trip_name(r.tripped), r.num_colors, r.lower_bound, r.sat_calls,
        r.seconds);
    return kExitStopped;
  }

  ColoringOptions options;
  options.max_colors = k;
  options.sbps = sbps;
  options.instance_dependent_sbps = shatter_flow;
  options.solver = solver;
  options.search = search;
  options.threads = threads;
  options.cube_depth = cube_depth;
  options.inprocess = inprocess;
  options.chrono_threshold = chrono;
  options.presimplify = presimplify;
  options.budget = &run_budget;
  const ColoringOutcome r =
      decision ? solve_k_coloring(graph, options) : solve_coloring(graph, options);

  if (stats) {
    std::printf("formula: %d vars, %d clauses, %d PB\n", r.formula_vars,
                r.formula_clauses, r.formula_pb);
    if (r.symmetry) {
      std::printf("symmetries: 10^%.2f in %d generators (%.3f s detection)\n",
                  r.symmetry->log10_order,
                  static_cast<int>(r.symmetry->generators.size()),
                  r.symmetry->detect_seconds);
    }
    // Shared line formats (util/report.h) so tooling parses the CLI and
    // symcolor_serve identically.
    std::printf("%s\n", format_solver_line(r.solver_stats).c_str());
    if (r.solver_stats_all.conflicts != r.solver_stats.conflicts ||
        r.solver_stats_all.propagations != r.solver_stats.propagations) {
      // Parallel run: the winner line above hides the losers' work, so
      // surface the all-workers sum too.
      std::printf("%s\n", format_workers_line(r.solver_stats_all).c_str());
    }
    if (r.solver_stats_all.cubes_dealt > 0) {
      // Cube-and-conquer run: show the schedule (dealt/refuted/pruned/
      // split counts summed over every decision query).
      std::printf("%s\n", format_cubes_line(r.solver_stats_all).c_str());
    }
    if (r.solver_stats_all.inprocess_rounds > 0) {
      std::printf("%s\n",
                  format_inprocess_line(r.solver_stats_all).c_str());
    }
    if (r.solver_stats_all.chrono_backtracks > 0 ||
        r.solver_stats_all.reused_trail_literals > 0) {
      // Incremental hot path: only interesting when it fired (a one-shot
      // solve with --chrono 0 never touches these counters).
      std::printf("%s\n",
                  format_incremental_line(r.solver_stats_all).c_str());
    }
    std::printf("%s\n",
                format_budget_line(r.tripped, r.solver_stats).c_str());
  }

  switch (r.status) {
    case OptStatus::Optimal:
      if (decision) {
        std::printf("%d-colorable: yes (%.3f s)\n", k, r.total_seconds);
      } else {
        std::printf("chromatic number: %d (%.3f s)\n", r.num_colors,
                    r.total_seconds);
      }
      return kExitSolved;
    case OptStatus::Infeasible:
      std::printf("not %d-colorable (%.3f s)\n", k, r.total_seconds);
      return kExitInfeasible;
    case OptStatus::Feasible:
      std::printf(
          "stopped (%s); best coloring uses %d colors; "
          "chromatic number >= %lld proven (%.3f s)\n",
          budget_trip_name(r.tripped), r.num_colors,
          static_cast<long long>(r.lower_bound), r.total_seconds);
      return kExitStopped;
    case OptStatus::Unknown:
      std::printf("stopped (%s) with no coloring found (%.3f s)\n",
                  budget_trip_name(r.tripped), r.total_seconds);
      return kExitStopped;
  }
  return kExitStopped;
}
