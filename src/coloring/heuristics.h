#pragma once
// Coloring heuristics: upper bounds for the exact flow and baselines for
// the related-work comparison (paper Sections 2.1 and 4.1 step 1).

#include <span>
#include <vector>

#include "graph/graph.h"

namespace symcolor {

/// Greedy coloring in the given vertex order; each vertex takes the
/// smallest color unused by its already-colored neighbours.
std::vector<int> greedy_coloring(const Graph& graph, std::span<const int> order);

/// Welsh-Powell: greedy in non-increasing degree order.
std::vector<int> welsh_powell_coloring(const Graph& graph);

/// Brelaz's DSATUR: repeatedly color the vertex with maximal saturation
/// degree (number of distinct neighbour colors), tie-broken by degree.
/// Optimal on bipartite graphs.
std::vector<int> dsatur_coloring(const Graph& graph);

/// Convenience: number of colors used by the best of the heuristics above
/// (an upper bound on the chromatic number).
int heuristic_upper_bound(const Graph& graph);

}  // namespace symcolor
