#include "coloring/dsatur_bnb.h"

#include <algorithm>

#include "coloring/heuristics.h"
#include "graph/clique.h"

namespace symcolor {
namespace {

class BnB {
 public:
  BnB(const Graph& graph, const Deadline& deadline)
      : graph_(graph),
        deadline_(deadline),
        n_(graph.num_vertices()),
        color_stride_(static_cast<std::size_t>(n_) + 2) {
    colors_.assign(static_cast<std::size_t>(n_), -1);
    // Per-vertex color counters live in one flat strided buffer so the
    // assign/unassign inner loops touch a single allocation.
    neighbour_has_.assign(static_cast<std::size_t>(n_) * color_stride_, 0);
    saturation_.assign(static_cast<std::size_t>(n_), 0);
  }

  DsaturBnbResult run() {
    Timer timer;
    DsaturBnbResult result;
    if (n_ == 0) {
      result.proved_optimal = true;
      return result;
    }
    // Incumbent from DSATUR; lower bound from a greedy clique, whose
    // vertices we pre-color (standard and sound: some optimal coloring
    // assigns the clique distinct colors, and clique vertices are fully
    // interchangeable with any recoloring).
    best_coloring_ = dsatur_coloring(graph_);
    best_ = Graph::count_colors(best_coloring_);
    const std::vector<int> clique = greedy_clique(graph_);
    lower_bound_ = std::max<int>(1, static_cast<int>(clique.size()));
    for (std::size_t i = 0; i < clique.size(); ++i) {
      assign(clique[i], static_cast<int>(i));
    }
    used_colors_ = static_cast<int>(clique.size());
    colored_count_ = static_cast<int>(clique.size());

    complete_ = true;
    search();

    result.num_colors = best_;
    result.coloring = best_coloring_;
    // Optimality holds whenever the search ran to completion.
    result.proved_optimal = complete_;
    result.nodes = nodes_;
    result.seconds = timer.seconds();
    return result;
  }

 private:

  [[nodiscard]] int& neighbour_has(int v, int color) {
    return neighbour_has_[static_cast<std::size_t>(v) * color_stride_ +
                          static_cast<std::size_t>(color)];
  }

  void assign(int v, int color) {
    colors_[static_cast<std::size_t>(v)] = color;
    for (const int u : graph_.neighbors(v)) {
      if (++neighbour_has(u, color) == 1) {
        ++saturation_[static_cast<std::size_t>(u)];
      }
    }
  }

  void unassign(int v, int color) {
    colors_[static_cast<std::size_t>(v)] = -1;
    for (const int u : graph_.neighbors(v)) {
      if (--neighbour_has(u, color) == 0) {
        --saturation_[static_cast<std::size_t>(u)];
      }
    }
  }

  [[nodiscard]] int select_vertex() const {
    int best = -1;
    for (int v = 0; v < n_; ++v) {
      if (colors_[static_cast<std::size_t>(v)] >= 0) continue;
      if (best < 0 ||
          saturation_[static_cast<std::size_t>(v)] >
              saturation_[static_cast<std::size_t>(best)] ||
          (saturation_[static_cast<std::size_t>(v)] ==
               saturation_[static_cast<std::size_t>(best)] &&
           graph_.degree(v) > graph_.degree(best))) {
        best = v;
      }
    }
    return best;
  }

  void search() {
    if ((++nodes_ & 0x3FF) == 0 && deadline_.expired()) {
      complete_ = false;
      return;
    }
    if (used_colors_ >= best_) return;  // cannot improve
    if (colored_count_ == n_) {
      best_ = used_colors_;
      best_coloring_ = colors_;
      return;
    }
    const int v = select_vertex();
    // Try existing colors, then (if it stays under the incumbent) one new.
    const int limit = std::min(used_colors_ + 1, best_ - 1);
    for (int c = 0; c < limit; ++c) {
      if (neighbour_has(v, c) > 0) continue;
      const int prev_used = used_colors_;
      if (c == used_colors_) ++used_colors_;
      assign(v, c);
      ++colored_count_;
      search();
      --colored_count_;
      unassign(v, c);
      used_colors_ = prev_used;
      if (!complete_) return;
      if (best_ <= lower_bound_) return;  // proved optimal already
    }
  }

  const Graph& graph_;
  const Deadline& deadline_;
  int n_;
  std::size_t color_stride_;
  std::vector<int> colors_;
  std::vector<int> neighbour_has_;  // flat n_ x color_stride_
  std::vector<int> saturation_;
  int used_colors_ = 0;
  int colored_count_ = 0;
  int best_ = 0;
  int lower_bound_ = 1;
  std::vector<int> best_coloring_;
  long long nodes_ = 0;
  bool complete_ = true;
};

}  // namespace

DsaturBnbResult dsatur_branch_and_bound(const Graph& graph,
                                        const Deadline& deadline) {
  BnB bnb(graph, deadline);
  return bnb.run();
}

}  // namespace symcolor
