#include "coloring/heuristics.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace symcolor {

std::vector<int> greedy_coloring(const Graph& graph,
                                 std::span<const int> order) {
  const int n = graph.num_vertices();
  if (static_cast<int>(order.size()) != n) {
    throw std::invalid_argument("order size mismatch");
  }
  std::vector<int> colors(static_cast<std::size_t>(n), -1);
  std::vector<char> used(static_cast<std::size_t>(n) + 1, 0);
  for (const int v : order) {
    for (const int u : graph.neighbors(v)) {
      const int c = colors[static_cast<std::size_t>(u)];
      if (c >= 0) used[static_cast<std::size_t>(c)] = 1;
    }
    int color = 0;
    while (used[static_cast<std::size_t>(color)]) ++color;
    colors[static_cast<std::size_t>(v)] = color;
    for (const int u : graph.neighbors(v)) {
      const int c = colors[static_cast<std::size_t>(u)];
      if (c >= 0) used[static_cast<std::size_t>(c)] = 0;
    }
  }
  return colors;
}

std::vector<int> welsh_powell_coloring(const Graph& graph) {
  std::vector<int> order(static_cast<std::size_t>(graph.num_vertices()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return graph.degree(a) > graph.degree(b);
  });
  return greedy_coloring(graph, order);
}

std::vector<int> dsatur_coloring(const Graph& graph) {
  const int n = graph.num_vertices();
  std::vector<int> colors(static_cast<std::size_t>(n), -1);
  // Saturation tracked as a bitset of neighbour colors per vertex, stored
  // as one flat strided buffer so the update loops stay in-cache.
  const std::size_t stride = static_cast<std::size_t>(n) + 1;
  std::vector<char> neighbour_has(static_cast<std::size_t>(n) * stride, 0);
  const auto has = [&](int v, int color) -> char& {
    return neighbour_has[static_cast<std::size_t>(v) * stride +
                         static_cast<std::size_t>(color)];
  };
  std::vector<int> saturation(static_cast<std::size_t>(n), 0);

  for (int step = 0; step < n; ++step) {
    // Pick the uncolored vertex with max saturation, tie-break degree,
    // then index.
    int best = -1;
    for (int v = 0; v < n; ++v) {
      if (colors[static_cast<std::size_t>(v)] >= 0) continue;
      if (best < 0 ||
          saturation[static_cast<std::size_t>(v)] >
              saturation[static_cast<std::size_t>(best)] ||
          (saturation[static_cast<std::size_t>(v)] ==
               saturation[static_cast<std::size_t>(best)] &&
           graph.degree(v) > graph.degree(best))) {
        best = v;
      }
    }
    int color = 0;
    while (has(best, color)) ++color;
    colors[static_cast<std::size_t>(best)] = color;
    for (const int u : graph.neighbors(best)) {
      if (!has(u, color)) {
        has(u, color) = 1;
        ++saturation[static_cast<std::size_t>(u)];
      }
    }
  }
  return colors;
}

int heuristic_upper_bound(const Graph& graph) {
  if (graph.num_vertices() == 0) return 0;
  const auto dsatur = dsatur_coloring(graph);
  const auto wp = welsh_powell_coloring(graph);
  return std::min(Graph::count_colors(dsatur), Graph::count_colors(wp));
}

}  // namespace symcolor
