#include "coloring/cnf_coloring.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

#include "cnf/pb_to_cnf.h"
#include "coloring/heuristics.h"
#include "coloring/sbp.h"
#include "graph/clique.h"
#include "sat/portfolio.h"

namespace symcolor {
namespace {

void add_pairwise_amo(Formula& f, const std::vector<Lit>& lits) {
  for (std::size_t a = 0; a < lits.size(); ++a) {
    for (std::size_t b = a + 1; b < lits.size(); ++b) {
      f.add_clause({~lits[a], ~lits[b]});
    }
  }
}

void add_commander_amo(Formula& f, std::vector<Lit> lits) {
  // Groups of three with one commander each; recurse on the commanders.
  constexpr std::size_t kGroup = 3;
  while (lits.size() > kGroup) {
    std::vector<Lit> commanders;
    for (std::size_t start = 0; start < lits.size(); start += kGroup) {
      const std::size_t end = std::min(start + kGroup, lits.size());
      std::vector<Lit> group(lits.begin() + static_cast<long>(start),
                             lits.begin() + static_cast<long>(end));
      if (group.size() == 1) {
        commanders.push_back(group[0]);
        continue;
      }
      const Lit commander = Lit::positive(f.new_var());
      add_pairwise_amo(f, group);
      // Any group member implies its commander; a false commander
      // silences the whole group.
      for (const Lit l : group) f.add_implication(l, commander);
      commanders.push_back(commander);
    }
    lits = std::move(commanders);
  }
  add_pairwise_amo(f, lits);
}

}  // namespace

const char* amo_encoding_name(AmoEncoding encoding) {
  switch (encoding) {
    case AmoEncoding::Pairwise: return "pairwise";
    case AmoEncoding::Sequential: return "sequential";
    case AmoEncoding::Commander: return "commander";
  }
  return "?";
}

ColoringEncoding encode_k_coloring_cnf(const Graph& graph, int max_colors,
                                       AmoEncoding amo,
                                       const SbpOptions& sbps) {
  if (max_colors < 1) throw std::invalid_argument("need at least one color");
  if (!graph.finalized()) throw std::invalid_argument("graph not finalized");

  ColoringEncoding enc;
  enc.num_vertices = graph.num_vertices();
  enc.num_colors = max_colors;
  Formula& f = enc.formula;
  const int n = enc.num_vertices;
  const int k = enc.num_colors;

  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      f.new_var("x_" + std::to_string(i) + "_" + std::to_string(j));
    }
  }
  for (int j = 0; j < k; ++j) f.new_var("y_" + std::to_string(j));

  // Exactly-one per vertex, in CNF.
  for (int i = 0; i < n; ++i) {
    std::vector<Lit> lits;
    lits.reserve(static_cast<std::size_t>(k));
    for (int j = 0; j < k; ++j) lits.push_back(Lit::positive(enc.x(i, j)));
    f.add_clause(Clause(lits.begin(), lits.end()));
    switch (amo) {
      case AmoEncoding::Pairwise:
        add_pairwise_amo(f, lits);
        break;
      case AmoEncoding::Sequential:
        encode_cardinality_at_most(f, lits, 1);
        break;
      case AmoEncoding::Commander:
        add_commander_amo(f, lits);
        break;
    }
  }

  for (const Edge& e : graph.edges()) {
    for (int j = 0; j < k; ++j) {
      f.add_clause({Lit::negative(enc.x(e.u, j)), Lit::negative(enc.x(e.v, j))});
    }
  }

  for (int j = 0; j < k; ++j) {
    Clause some_user{Lit::negative(enc.y(j))};
    for (int i = 0; i < n; ++i) {
      f.add_implication(Lit::positive(enc.x(i, j)), Lit::positive(enc.y(j)));
      some_user.push_back(Lit::positive(enc.x(i, j)));
    }
    f.add_clause(std::move(some_user));
  }

  add_instance_independent_sbps(graph, &enc, sbps);
  if (enc.formula.num_pb() > 0) {
    // CA added PB inequalities: compile them away to stay pure CNF.
    enc.formula = to_pure_cnf(enc.formula);
  }
  return enc;
}

SatLoopResult solve_coloring_sat_loop(const Graph& graph,
                                      const SatLoopOptions& options) {
  Timer timer;
  // The whole loop runs under one budget: a child of the caller's when one
  // is supplied (inheriting its deadline/interrupt and clamped to its
  // counted caps), a fresh one otherwise. A ledger spreads the counted
  // caps across the individual SAT calls.
  const SolveBudget budget =
      options.budget != nullptr
          ? options.budget->child(options.time_budget_seconds,
                                  options.conflict_budget, options.prop_budget)
          : SolveBudget(options.time_budget_seconds, options.conflict_budget,
                        options.prop_budget);
  BudgetLedger ledger(budget);
  SatLoopResult result;

  if (graph.num_vertices() == 0) {
    result.status = OptStatus::Optimal;
    result.num_colors = 0;
    result.seconds = timer.seconds();
    return result;
  }

  // Bounds: a feasible DSATUR coloring above, a greedy clique below
  // (Section 4.1's procedure).
  std::vector<int> best_coloring = dsatur_coloring(graph);
  int upper = Graph::count_colors(best_coloring);  // feasible
  int lower = std::max<int>(1, static_cast<int>(greedy_clique(graph).size()));

  bool timed_out = false;
  // One search loop serves both pipelines; only the query differs (an
  // assumption probe against one persistent engine, or a per-K rebuild).
  // `query(k)` answers "is the graph <= k-colorable?" and on Sat pulls
  // `upper` down via the decoded coloring.
  const auto run_search = [&](auto&& query) {
    switch (options.search) {
      case SearchStrategy::Linear:
        while (upper > lower) {
          const SolveResult r = query(upper - 1);
          if (r == SolveResult::Unknown) {
            timed_out = true;
            break;
          }
          if (r == SolveResult::Unsat) break;  // upper proved optimal
        }
        break;
      case SearchStrategy::Binary:
        while (lower < upper) {
          const int mid = lower + (upper - lower) / 2;
          const SolveResult r = query(mid);
          if (r == SolveResult::Unknown) {
            timed_out = true;
            break;
          }
          if (r == SolveResult::Unsat) lower = mid + 1;
          // Sat updates `upper` via the decoded coloring.
        }
        break;
      case SearchStrategy::CoreGuided:
        // Ascend from the clique bound; every UNSAT answer lifts it.
        // Sat at k == lower pulls `upper` down to it: loop exits.
        while (lower < upper) {
          const SolveResult r = query(lower);
          if (r == SolveResult::Unknown) {
            timed_out = true;
            break;
          }
          if (r == SolveResult::Unsat) ++lower;
        }
        break;
    }
  };

  // Shared probe wrapper: refuse once the ledger is spent (so a budget trip
  // inside one query ends the whole loop), hand each SAT call a remainder
  // slice, and charge back what it consumed.
  const auto budgeted_solve = [&](SolverEngine& solver,
                                  std::span<const Lit> assume) -> SolveResult {
    const BudgetTrip pre = ledger.trip();
    if (pre != BudgetTrip::None) {
      result.tripped = pre;
      return SolveResult::Unknown;
    }
    ++result.sat_calls;
    const SolveBudget slice = ledger.probe();
    const std::int64_t conflicts_before = solver.stats().conflicts;
    const std::int64_t props_before = solver.stats().propagations;
    const SolveResult r = solver.solve(slice, assume);
    ledger.charge(solver.stats().conflicts - conflicts_before,
                  solver.stats().propagations - props_before);
    if (r == SolveResult::Unknown) {
      const BudgetTrip trip = solver.last_trip();
      result.tripped = trip != BudgetTrip::None ? trip : ledger.trip();
    }
    return r;
  };

  if (options.incremental) {
    // One encoding at the upper bound; NU makes color usage a prefix, so
    // assuming ~y(k) asserts "at most k colors" — the y block IS a
    // selector ladder, and all three strategies drive the same persistent
    // engine through it (learned clauses survive every probe, in both
    // directions of the binary search). solver.portfolio_threads is the
    // one thread knob; the factory picks the backend from it.
    SbpOptions sbps = options.sbps;
    sbps.nu = true;
    ColoringEncoding enc =
        encode_k_coloring_cnf(graph, upper, options.amo, sbps);
    const std::unique_ptr<SolverEngine> solver =
        make_solver_engine(enc.formula, options.solver);
    run_search([&](int k) {
      const std::vector<Lit> assume{Lit::negative(enc.y(k))};
      const SolveResult r = budgeted_solve(*solver, assume);
      if (r == SolveResult::Sat) {
        best_coloring = enc.decode(solver->model());
        upper = Graph::count_colors(best_coloring);
      } else if (r == SolveResult::Unsat) {
        // The failed-assumption core certifies an Unsat came from the
        // ~y(k) bound rather than the formula itself (an empty core
        // would mean the encoding is unsatisfiable outright, which the
        // feasible DSATUR coloring rules out).
        assert(!solver->last_core().empty());
      }
      return r;
    });
  } else {
    run_search([&](int k) {
      ColoringEncoding enc =
          encode_k_coloring_cnf(graph, k, options.amo, options.sbps);
      const std::unique_ptr<SolverEngine> solver =
          make_solver_engine(enc.formula, options.solver);
      const SolveResult r = budgeted_solve(*solver, {});
      if (r == SolveResult::Sat) {
        best_coloring = enc.decode(solver->model());
        upper = Graph::count_colors(best_coloring);
      }
      return r;
    });
  }

  result.num_colors = upper;
  result.coloring = best_coloring;
  // Graceful degradation: the DSATUR seed guarantees a feasible coloring,
  // so a budgeted exit is always Feasible with the best one found and the
  // tightest PROVEN lower bound (clique seed, lifted by Unsat queries).
  result.status = timed_out ? OptStatus::Feasible : OptStatus::Optimal;
  result.lower_bound = timed_out ? lower : upper;
  result.budget_exhausted = timed_out;
  if (!timed_out) result.tripped = BudgetTrip::None;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace symcolor
