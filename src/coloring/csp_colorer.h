#pragma once
// A not-equals CSP backtracking colorer with *dynamic* value-symmetry
// breaking — the Benhamou-style baseline of the paper's Section 4.3 and
// the counterpart to its static SBPs.
//
// Graph coloring as a CSP has one variable per vertex with domain
// 1..K and a not-equals constraint per edge (NECSP). Color values are
// interchangeable, and a dynamic solver can exploit that *during
// search*: when extending a partial assignment, trying more than one
// so-far-unused color is redundant — all fresh colors are symmetric.
// The `break_value_symmetry` toggle turns that rule on and off, giving
// a clean measurement of dynamic symmetry breaking against the paper's
// static predicates (bench_ablation_dynamic).

#include <vector>

#include "graph/graph.h"
#include "util/timer.h"

namespace symcolor {

struct CspColorerOptions {
  int max_colors = 0;  ///< K; must be >= 1
  /// Dynamic value-symmetry breaking: a vertex may try at most one
  /// fresh (so-far-unused) color per node.
  bool break_value_symmetry = true;
  /// Vertex order to assign along; empty = natural order.
  std::vector<int> order;
};

struct CspColorerResult {
  bool satisfiable = false;
  bool completed = false;  ///< search finished within the deadline
  std::vector<int> coloring;
  long long nodes = 0;
  double seconds = 0.0;
};

/// Decide K-colorability by chronological backtracking.
CspColorerResult csp_k_coloring(const Graph& graph,
                                const CspColorerOptions& options,
                                const Deadline& deadline = {});

/// Minimize colors by descending K queries (the NECSP optimization loop).
/// Returns the chromatic number in `coloring`'s color count when
/// `completed`.
CspColorerResult csp_min_coloring(const Graph& graph,
                                  bool break_value_symmetry = true,
                                  const Deadline& deadline = {});

}  // namespace symcolor
