#pragma once
// The library's main entry point: optimal graph coloring by reduction to
// 0-1 ILP with configurable symmetry breaking — the full experimental
// pipeline of the paper in one call.
//
//   graph --encode(K, instance-independent SBPs)--> 0-1 ILP formula
//         --[optional: Shatter instance-dependent SBPs]-->
//         --solver personality (PBS II / Galena / Pueblo / generic ILP)-->
//         minimum-coloring model --> per-vertex colors.

#include <optional>
#include <string>
#include <vector>

#include "coloring/encoder.h"
#include "pb/generic_ilp.h"
#include "pb/optimizer.h"
#include "pb/solver_profiles.h"
#include "symmetry/shatter.h"

namespace symcolor {

struct ColoringOptions {
  /// Color bound K of the encoding (paper uses 20 and 30). A graph whose
  /// chromatic number exceeds this is reported Infeasible.
  int max_colors = 20;
  /// Instance-independent SBPs added during formulation.
  SbpOptions sbps;
  /// Run the Shatter flow (detect + lex-leader SBPs) before solving.
  bool instance_dependent_sbps = false;
  /// Truncate lex-leader chains (0 = full support).
  int sbp_max_support = 0;
  SolverKind solver = SolverKind::PbsII;
  /// Per-instance wall budget in seconds (0 = unlimited), covering
  /// symmetry detection plus solving.
  double time_budget_seconds = 0.0;
  /// Objective search strategy (pb/optimizer.h): linear strengthening,
  /// binary search, or core-guided lower-bound lifting — all three run on
  /// one persistent engine and reach the same optimum.
  SearchStrategy search = SearchStrategy::Linear;
  /// Run the pre-solve simplifier (root propagation, pure literals,
  /// subsumption) after SBPs are in place.
  bool presimplify = false;
  /// Racing portfolio workers inside every CDCL solve (sat/portfolio.h);
  /// 1 = the plain sequential engine. The reported optimum is identical
  /// at any thread count. Ignored by SolverKind::GenericIlp.
  int threads = 1;
  /// > 0 switches the backend to cube-and-conquer (sat/cube_solver.h):
  /// the search space is split into assumption cubes of up to this depth
  /// and dealt to `threads` workers. Answers stay exact; 0 = off.
  int cube_depth = 0;
  /// Restart-boundary inprocessing of every CDCL engine in the run
  /// (sat/inprocess.h): Off, Viv (budgeted clause vivification, the
  /// default) or Full (vivification + equivalent-literal substitution).
  /// Answers are identical in every mode. Ignored by GenericIlp.
  InprocessMode inprocess = InprocessMode::Viv;
  /// Chronological-backtracking threshold of every CDCL engine
  /// (SolverConfig::chrono_threshold): < 0 keeps the solver profile's
  /// default, 0 disables, > 0 overrides the backjump-distance cutoff.
  /// Answers are identical at every setting. Ignored by GenericIlp.
  std::int64_t chrono_threshold = -1;
  /// Whole-pipeline conflict / propagation budgets across all CDCL probes
  /// (<= 0 = unlimited; ignored by SolverKind::GenericIlp, whose search
  /// has no comparable counters).
  std::int64_t conflict_budget = 0;
  std::int64_t prop_budget = 0;
  /// Optional external budget (not owned; must outlive the call). The
  /// pipeline runs under a child of it: the caller's deadline, counted
  /// caps, and async interrupt() all preempt the run. The per-run knobs
  /// above still apply on top (tightest wins).
  const SolveBudget* budget = nullptr;
};

struct ColoringOutcome {
  /// Optimal: `num_colors` is the chromatic number (within max_colors).
  /// Infeasible: chromatic number exceeds max_colors.
  /// Feasible: timeout with a valid (not proved optimal) coloring.
  /// Unknown: timeout without any coloring.
  OptStatus status = OptStatus::Unknown;
  int num_colors = -1;
  std::vector<int> coloring;  ///< per-vertex colors, empty unless found
  /// Tightest PROVEN lower bound on the objective (optimization runs):
  /// equals num_colors when Optimal; on a budgeted Feasible exit the
  /// chromatic number lies in [lower_bound, num_colors].
  std::int64_t lower_bound = 0;
  /// Which resource bound cut the run short (None on a proof), and
  /// whether the exit was budget-driven rather than a proof.
  BudgetTrip tripped = BudgetTrip::None;
  bool budget_exhausted = false;

  // Pipeline statistics.
  int formula_vars = 0;
  int formula_clauses = 0;
  int formula_pb = 0;
  std::optional<SymmetryInfo> symmetry;  ///< set when Shatter ran
  int inst_dep_sbp_clauses = 0;
  SolverStats solver_stats;
  /// All-workers sum (engine aggregated_stats()); equals solver_stats on
  /// a sequential run, the whole pool's work on portfolio/cube runs.
  SolverStats solver_stats_all;
  double encode_seconds = 0.0;
  double solve_seconds = 0.0;
  double total_seconds = 0.0;

  [[nodiscard]] bool solved() const noexcept {
    return status == OptStatus::Optimal || status == OptStatus::Infeasible;
  }
};

/// Minimize the number of colors of `graph` under `options`.
ColoringOutcome solve_coloring(const Graph& graph,
                               const ColoringOptions& options = {});

/// Decision query: is `graph` colorable with at most `options.max_colors`
/// colors? Uses the same pipeline without an objective.
ColoringOutcome solve_k_coloring(const Graph& graph,
                                 const ColoringOptions& options = {});

}  // namespace symcolor
