#pragma once
// Pure-CNF K-coloring and the SAT-loop optimizer.
//
// The paper solves the optimization problem natively in 0-1 ILP but
// notes (Section 2.3) that "it is possible to solve the optimization
// version by repeatedly solving instances of the K-coloring using a SAT
// solver, with the value of K being updated after each call" — at the
// cost of the extra loop. This module implements that alternative
// pipeline end to end so the trade-off can be measured:
//
//  * a pure-CNF encoding of K-coloring with a choice of at-most-one
//    encodings for the per-vertex exactly-one constraint (pairwise,
//    sequential counter, commander), instance-independent SBPs included
//    (CA's PB inequalities are compiled to CNF via pb_to_cnf);
//  * a descending / binary search over K driven by DSATUR upper bounds
//    and clique lower bounds (the per-instance procedure the paper
//    sketches in Section 4.1).
//
// Every SAT call goes through the SolverEngine factory, so the loop runs
// unchanged on the sequential CDCL engine (portfolio_threads = 1) or on
// the clone-based parallel portfolio (portfolio_threads > 1).

#include "coloring/encoder.h"
#include "pb/optimizer.h"
#include "sat/cdcl.h"
#include "util/timer.h"

namespace symcolor {

enum class AmoEncoding {
  Pairwise,    ///< K(K-1)/2 binary clauses per vertex, no auxiliaries
  Sequential,  ///< Sinz counter: ~3K clauses, K-1 auxiliaries per vertex
  Commander,   ///< grouped commanders: ~flat hierarchy of group AMOs
};

const char* amo_encoding_name(AmoEncoding encoding);

/// Pure-CNF decision encoding: is `graph` max_colors-colorable?
/// The returned encoding's formula contains no PB constraints.
ColoringEncoding encode_k_coloring_cnf(const Graph& graph, int max_colors,
                                       AmoEncoding amo,
                                       const SbpOptions& sbps = {});

struct SatLoopOptions {
  AmoEncoding amo = AmoEncoding::Sequential;
  SbpOptions sbps;
  /// Solver configuration, including the ONE thread knob:
  /// solver.portfolio_threads > 1 races the clone-based portfolio inside
  /// every SAT call (sat/portfolio.h). The minimum color count is
  /// identical at any thread count — only the wall-clock changes. In the
  /// incremental pipeline the portfolio master carries learned clauses
  /// (its own and imported core clauses) across the K queries.
  SolverConfig solver;
  double time_budget_seconds = 0.0;
  /// Search strategy over K (the same enum the PB optimizer uses):
  ///   * Linear — descend from the DSATUR upper bound until UNSAT;
  ///   * Binary — bisect [clique, DSATUR];
  ///   * CoreGuided — ascend from the clique lower bound, each UNSAT
  ///     lifting it (in the incremental pipeline the y(k) assumption's
  ///     failed core certifies the lift).
  SearchStrategy search = SearchStrategy::Linear;
  /// Keep ONE solver across all K queries: encode once at the upper
  /// bound with NU forced on, and query "<= k colors" by assuming
  /// ~y(k) (null-color elimination makes the usage prefix-closed, so a
  /// single assumption caps the color count — the same retractable-bound
  /// machinery the PB optimizer's selector ladder generalizes). Learned
  /// clauses survive across queries, under every search strategy.
  bool incremental = false;
  /// Whole-run conflict / propagation budgets across ALL SAT calls
  /// (<= 0 = unlimited); spread over the queries by a BudgetLedger.
  std::int64_t conflict_budget = 0;
  std::int64_t prop_budget = 0;
  /// Optional external budget (not owned; must outlive the call). The run
  /// executes under a child of it, so the caller's deadline and
  /// interrupt() preempt the whole loop and the caller's counted caps
  /// bound it. The per-run knobs above still apply (tightest wins).
  const SolveBudget* budget = nullptr;
};

struct SatLoopResult {
  OptStatus status = OptStatus::Unknown;
  int num_colors = -1;
  std::vector<int> coloring;
  /// Tightest PROVEN lower bound on the chromatic number: the greedy
  /// clique, lifted by every Unsat K-query. Equals num_colors when status
  /// is Optimal; on a budgeted exit chi lies in [lower_bound, num_colors].
  int lower_bound = 0;
  int sat_calls = 0;
  double seconds = 0.0;
  /// Which resource bound cut the loop short (None when Optimal).
  BudgetTrip tripped = BudgetTrip::None;
  bool budget_exhausted = false;
};

/// Minimize the number of colors by repeated CNF K-coloring queries.
SatLoopResult solve_coloring_sat_loop(const Graph& graph,
                                      const SatLoopOptions& options = {});

}  // namespace symcolor
