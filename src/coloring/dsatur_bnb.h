#pragma once
// Exact DSATUR-based branch and bound — the problem-specific implicit-
// enumeration baseline (Brown 1972 / Brelaz 1979 family the paper reviews
// in Section 2.1 and compares against in Section 4.3).
//
// Branches on the most-saturated uncolored vertex, trying every color
// already in use plus one fresh color, pruning when the used-color count
// reaches the incumbent. A greedy clique provides the initial lower bound.

#include <vector>

#include "graph/graph.h"
#include "util/timer.h"

namespace symcolor {

struct DsaturBnbResult {
  int num_colors = 0;            ///< best coloring found
  std::vector<int> coloring;     ///< a witness with num_colors colors
  bool proved_optimal = false;   ///< search exhausted within the deadline
  long long nodes = 0;
  double seconds = 0.0;
};

/// Compute the chromatic number exactly (subject to the deadline).
DsaturBnbResult dsatur_branch_and_bound(const Graph& graph,
                                        const Deadline& deadline = {});

}  // namespace symcolor
