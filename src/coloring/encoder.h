#pragma once
// Reduction of minimum graph coloring to 0-1 ILP (Section 2.5 of the
// paper) plus the four instance-independent SBP constructions (Section 3).
//
// For a graph G(V,E) and color bound K the encoding uses:
//   * indicator x(i,j): vertex i has color j              [nK variables]
//   * per vertex: sum_j x(i,j) == 1                       [n PB equalities]
//   * per edge (a,b), per color j: (~x(a,j) | ~x(b,j))    [mK clauses]
//   * usage y(j) <-> OR_i x(i,j):
//       x(i,j) -> y(j)                                    [nK clauses]
//       y(j) -> OR_i x(i,j)                               [K clauses]
//   * objective MIN sum_j y(j).
//
// Variable order is x-block (vertex-major), then y-block, then SBP
// auxiliaries — the lowest-index ordering the LI construction and the
// lex-leader SBPs both key off.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cnf/formula.h"
#include "graph/graph.h"

namespace symcolor {

/// Which instance-independent SBP constructions to add at encode time.
struct SbpOptions {
  bool nu = false;  ///< null-color elimination (Section 3.1)
  bool ca = false;  ///< cardinality-based color ordering (Section 3.2)
  bool li = false;  ///< lowest-index color ordering (Section 3.3)
  bool sc = false;  ///< selective coloring (Section 3.4)
  /// Use the paper's literal LI construction (quadratic, existentially
  /// chosen V indicators, weak propagation) instead of this library's
  /// arc-consistent chained LI. Only meaningful with li = true; kept as
  /// a separate knob because the two differ sharply in solver behaviour
  /// (see EXPERIMENTS.md on the Table 3 LI row).
  bool li_paper_literal = false;

  [[nodiscard]] bool any() const noexcept { return nu || ca || li || sc; }
  [[nodiscard]] std::string label() const;

  static SbpOptions none() { return {}; }
  static SbpOptions nu_only() { return {.nu = true}; }
  static SbpOptions ca_only() { return {.ca = true}; }
  static SbpOptions li_only() { return {.li = true}; }
  static SbpOptions li_paper() { return {.li = true, .li_paper_literal = true}; }
  static SbpOptions sc_only() { return {.sc = true}; }
  static SbpOptions nu_sc() { return {.nu = true, .sc = true}; }
};

/// The paper's Table 2/3 construction rows, in order, with the
/// paper-literal LI variant appended as a seventh row.
std::vector<SbpOptions> paper_sbp_rows();

struct ColoringEncoding {
  Formula formula;
  int num_vertices = 0;
  int num_colors = 0;

  /// x(i,j): vertex i uses color j.
  [[nodiscard]] Var x(int vertex, int color) const noexcept {
    return vertex * num_colors + color;
  }
  /// y(j): color j is used by some vertex.
  [[nodiscard]] Var y(int color) const noexcept {
    return num_vertices * num_colors + color;
  }

  /// Count of vertex "exactly one color" equalities — the paper's #PB
  /// statistic counts each equality as one 0-1 ILP constraint.
  int ilp_equalities = 0;
  /// Clauses contributed by instance-independent SBPs.
  int sbp_clauses = 0;
  /// PB constraints contributed by instance-independent SBPs (CA).
  int sbp_pb_constraints = 0;
  /// Auxiliary variables contributed by instance-independent SBPs (LI).
  int sbp_vars = 0;

  /// Extract the per-vertex coloring (values in 0..num_colors-1) from a
  /// satisfying model. Throws if some vertex has no color set.
  [[nodiscard]] std::vector<int> decode(std::span<const LBool> model) const;
};

/// Build the optimization encoding (with objective). `sbps` selects
/// instance-independent SBPs added during formulation.
ColoringEncoding encode_coloring(const Graph& graph, int max_colors,
                                 const SbpOptions& sbps = {});

/// Decision variant: identical constraints but no objective; asks whether
/// the graph is max_colors-colorable.
ColoringEncoding encode_k_coloring(const Graph& graph, int max_colors,
                                   const SbpOptions& sbps = {});

}  // namespace symcolor
