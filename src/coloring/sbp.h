#pragma once
// Instance-independent symmetry-breaking predicates (paper Section 3).
//
// All four constructions restrict *color permutations* only — the
// symmetries present in every instance of the 0-1 ILP reduction:
//
//   NU  null-color elimination: unused colors sink to the end
//       (K-1 binary clauses  y_{k+1} -> y_k; correct by re-sorting any
//       solution's colors).
//   CA  cardinality-based ordering: color class sizes are non-increasing
//       (K-1 PB constraints  sum_i x(i,k) >= sum_i x(i,k+1); subsumes NU).
//   LI  lowest-index ordering: the minimal vertex index using color k is
//       increasing in k — a complete value-symmetry break that also
//       destroys vertex symmetries (the paper's key negative finding).
//       Auxiliary "seen" chain s(i,k) (= some vertex <= i has color k)
//       and "lowest" indicators V(i,k), ~5nK short clauses + 2nK vars.
//   SC  selective coloring: pin color 0 on a maximum-degree vertex and
//       color 1 on its maximum-degree neighbour (2 unit clauses; breaks
//       few symmetries at essentially zero cost).

#include "graph/graph.h"

namespace symcolor {

struct SbpOptions;
struct ColoringEncoding;

/// Append the selected constructions to `enc->formula`, updating the
/// encoding's SBP statistics. Called by encode_coloring.
void add_instance_independent_sbps(const Graph& graph, ColoringEncoding* enc,
                                   const SbpOptions& sbps);

/// The two vertices pinned by selective coloring: the maximum-degree
/// vertex and its maximum-degree neighbour (smallest index on ties).
/// second == -1 when the graph has no edges.
std::pair<int, int> selective_coloring_pins(const Graph& graph);

}  // namespace symcolor
