#include "coloring/set_cover_formulation.h"

#include <stdexcept>

#include "graph/clique.h"

namespace symcolor {

std::optional<SetCoverEncoding> encode_set_cover_coloring(
    const Graph& graph, std::size_t max_sets) {
  bool truncated = false;
  std::vector<std::vector<int>> sets =
      maximal_independent_sets(graph, max_sets, &truncated);
  if (truncated) return std::nullopt;

  SetCoverEncoding enc;
  enc.set_members = std::move(sets);
  Formula& f = enc.formula;
  const int num_sets = static_cast<int>(enc.set_members.size());
  f.new_vars(num_sets);

  // Covering constraint per vertex.
  std::vector<Clause> covers(static_cast<std::size_t>(graph.num_vertices()));
  for (int s = 0; s < num_sets; ++s) {
    for (const int v : enc.set_members[static_cast<std::size_t>(s)]) {
      covers[static_cast<std::size_t>(v)].push_back(Lit::positive(s));
    }
  }
  for (Clause& cover : covers) {
    if (cover.empty()) {
      throw std::logic_error("vertex in no maximal independent set");
    }
    f.add_clause(std::move(cover));
  }

  Objective objective;
  for (int s = 0; s < num_sets; ++s) {
    objective.terms.push_back({1, Lit::positive(s)});
  }
  f.set_objective(std::move(objective));
  return enc;
}

std::vector<int> SetCoverEncoding::decode(std::span<const LBool> model,
                                          int num_vertices) const {
  std::vector<int> colors(static_cast<std::size_t>(num_vertices), -1);
  int color = 0;
  for (std::size_t s = 0; s < set_members.size(); ++s) {
    if (model[s] != LBool::True) continue;
    for (const int v : set_members[s]) {
      if (colors[static_cast<std::size_t>(v)] == -1) {
        colors[static_cast<std::size_t>(v)] = color;
      }
    }
    ++color;
  }
  for (const int c : colors) {
    if (c == -1) throw std::runtime_error("set cover left a vertex uncovered");
  }
  return colors;
}

}  // namespace symcolor
