#include "coloring/sbp.h"

#include <string>

#include "coloring/encoder.h"

namespace symcolor {
namespace {

/// NU (3.1): y_{k+1} -> y_k for 1 <= k < K. A solution using a null color
/// before a non-null one can always be re-sorted, so optimality is
/// preserved; only the all-nulls-last representative survives.
void add_nu(ColoringEncoding* enc) {
  Formula& f = enc->formula;
  const int before = f.num_clauses();
  for (int k = 0; k + 1 < enc->num_colors; ++k) {
    f.add_implication(Lit::positive(enc->y(k + 1)), Lit::positive(enc->y(k)));
  }
  enc->sbp_clauses += f.num_clauses() - before;
}

/// CA (3.2): |class k| >= |class k+1| as K-1 PB constraints
/// sum_i x(i,k) - sum_i x(i,k+1) >= 0. Subsumes NU (a null color has
/// cardinality 0 and must trail every non-null one).
void add_ca(const Graph& graph, ColoringEncoding* enc) {
  Formula& f = enc->formula;
  const int n = graph.num_vertices();
  for (int k = 0; k + 1 < enc->num_colors; ++k) {
    std::vector<PbTerm> terms;
    terms.reserve(static_cast<std::size_t>(2 * n));
    for (int i = 0; i < n; ++i) {
      terms.push_back({1, Lit::positive(enc->x(i, k))});
      terms.push_back({-1, Lit::positive(enc->x(i, k + 1))});
    }
    f.add_pb(PbConstraint::at_least(std::move(terms), 0));
    ++enc->sbp_pb_constraints;
  }
}

/// LI (3.3): complete value-symmetry breaking. The lowest vertex index
/// colored k must increase with k (ascending convention, matching the
/// paper's Figure 1(e): the class containing the smallest vertex gets
/// color 1).
///
/// Auxiliary variables:
///   s(i,k) — some vertex with index <= i has color k (monotone chain);
///   V(i,k) — vertex i is the lowest-index vertex with color k.
/// Clauses per (i,k):
///   x(i,k) -> s(i,k)
///   s(i-1,k) -> s(i,k)                                  [i > 0]
///   V(i,k) -> x(i,k)
///   V(i,k) -> ~s(i-1,k)                                 [i > 0]
///   x(i,k) & ~s(i-1,k) -> V(i,k)
///   V(i,k) -> s(i-1,k-1)    (ordering: color k-1 seen strictly earlier)
/// plus y(k) -> OR_i V(i,k) per color (paper parity; redundant given the
/// definitions but harmless).
void add_li(ColoringEncoding* enc) {
  Formula& f = enc->formula;
  const int n = enc->num_vertices;
  const int k_colors = enc->num_colors;

  const int vars_before = f.num_vars();
  const int clauses_before = f.num_clauses();

  // Allocate s and V blocks (vertex-major like the x block).
  const Var s0 = f.new_vars(n * k_colors);
  const Var v0 = f.new_vars(n * k_colors);
  auto s = [&](int i, int k) { return s0 + i * k_colors + k; };
  auto v = [&](int i, int k) { return v0 + i * k_colors + k; };

  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < k_colors; ++k) {
      const Lit x_ik = Lit::positive(enc->x(i, k));
      const Lit s_ik = Lit::positive(s(i, k));
      const Lit v_ik = Lit::positive(v(i, k));
      f.add_implication(x_ik, s_ik);
      f.add_implication(v_ik, x_ik);
      if (i > 0) {
        const Lit s_prev = Lit::positive(s(i - 1, k));
        f.add_implication(s_prev, s_ik);
        // Exact semantics both ways: without the upper bound the solver
        // could set s spuriously true and slip past the ordering clause.
        f.add_clause({~s_ik, x_ik, s_prev});
        f.add_clause({~v_ik, ~s_prev});
        f.add_clause({~x_ik, s_prev, v_ik});
      } else {
        f.add_clause({~s_ik, x_ik});
        // Vertex 0: lowest for its color by definition.
        f.add_clause({~x_ik, v_ik});
      }
      if (k > 0) {
        if (i > 0) {
          f.add_implication(v_ik, Lit::positive(s(i - 1, k - 1)));
        } else {
          // No vertex precedes vertex 0: it can only take color 0.
          f.add_clause({~v_ik});
        }
      }
    }
  }
  for (int k = 0; k < k_colors; ++k) {
    Clause lowest_exists{Lit::negative(enc->y(k))};
    for (int i = 0; i < n; ++i) {
      lowest_exists.push_back(Lit::positive(v(i, k)));
    }
    f.add_clause(std::move(lowest_exists));
  }

  enc->sbp_vars += f.num_vars() - vars_before;
  enc->sbp_clauses += f.num_clauses() - clauses_before;
}

/// LI, paper-literal variant: the construction exactly as Section 3.3
/// states it — nK existentially-chosen "lowest index" indicators V(i,k)
/// with pairwise exclusions instead of seen-chains, and the paper's
/// descending ordering clause V(i,k) -> OR_{j>i} V(j,k-1) (the lowest
/// index of color k-1 lies strictly *after* that of color k). Complete
/// per-partition value-symmetry breaking like the chained version, but
/// quadratic in size and weak under unit propagation — the shape the
/// paper measured.
void add_li_paper_literal(ColoringEncoding* enc) {
  Formula& f = enc->formula;
  const int n = enc->num_vertices;
  const int k_colors = enc->num_colors;

  const int vars_before = f.num_vars();
  const int clauses_before = f.num_clauses();

  const Var v0 = f.new_vars(n * k_colors);
  auto v = [&](int i, int k) { return v0 + i * k_colors + k; };

  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < k_colors; ++k) {
      const Lit v_ik = Lit::positive(v(i, k));
      f.add_implication(v_ik, Lit::positive(enc->x(i, k)));
      // No earlier vertex carries color k (pairwise, the quadratic part).
      for (int j = 0; j < i; ++j) {
        f.add_clause({~v_ik, Lit::negative(enc->x(j, k))});
      }
      // Ordering (descending): some later vertex is lowest for color k-1.
      if (k > 0) {
        Clause later{~v_ik};
        for (int j = i + 1; j < n; ++j) {
          later.push_back(Lit::positive(v(j, k - 1)));
        }
        f.add_clause(std::move(later));
      }
    }
  }
  for (int k = 0; k < k_colors; ++k) {
    Clause lowest_exists{Lit::negative(enc->y(k))};
    for (int i = 0; i < n; ++i) lowest_exists.push_back(Lit::positive(v(i, k)));
    f.add_clause(std::move(lowest_exists));
  }

  enc->sbp_vars += f.num_vars() - vars_before;
  enc->sbp_clauses += f.num_clauses() - clauses_before;
}

/// SC (3.4): two unit clauses pinning colors on the highest-degree vertex
/// and its highest-degree neighbour.
void add_sc(const Graph& graph, ColoringEncoding* enc) {
  const auto [first, second] = selective_coloring_pins(graph);
  if (first < 0) return;
  Formula& f = enc->formula;
  const int before = f.num_clauses();
  f.add_unit(Lit::positive(enc->x(first, 0)));
  if (second >= 0 && enc->num_colors >= 2) {
    f.add_unit(Lit::positive(enc->x(second, 1)));
  }
  enc->sbp_clauses += f.num_clauses() - before;
}

}  // namespace

std::pair<int, int> selective_coloring_pins(const Graph& graph) {
  const int n = graph.num_vertices();
  if (n == 0) return {-1, -1};
  int first = 0;
  for (int v = 1; v < n; ++v) {
    if (graph.degree(v) > graph.degree(first)) first = v;
  }
  int second = -1;
  for (const int u : graph.neighbors(first)) {
    if (second < 0 || graph.degree(u) > graph.degree(second)) second = u;
  }
  return {first, second};
}

void add_instance_independent_sbps(const Graph& graph, ColoringEncoding* enc,
                                   const SbpOptions& sbps) {
  if (sbps.nu) add_nu(enc);
  if (sbps.ca) add_ca(graph, enc);
  if (sbps.li) {
    if (sbps.li_paper_literal) {
      add_li_paper_literal(enc);
    } else {
      add_li(enc);
    }
  }
  if (sbps.sc) add_sc(graph, enc);
}

}  // namespace symcolor
