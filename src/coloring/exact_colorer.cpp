#include "coloring/exact_colorer.h"

#include <stdexcept>

#include "cnf/simplify.h"

namespace symcolor {
namespace {

ColoringOutcome run_pipeline(const Graph& graph, const ColoringOptions& options,
                             bool optimization) {
  Timer total;
  Deadline deadline(options.time_budget_seconds);

  ColoringOutcome outcome;
  Timer encode_timer;
  ColoringEncoding enc = optimization
                             ? encode_coloring(graph, options.max_colors,
                                               options.sbps)
                             : encode_k_coloring(graph, options.max_colors,
                                                 options.sbps);
  outcome.encode_seconds = encode_timer.seconds();

  if (options.instance_dependent_sbps) {
    const ShatterStats stats =
        shatter(enc.formula, deadline, options.sbp_max_support);
    outcome.symmetry = stats.symmetry;
    outcome.inst_dep_sbp_clauses = stats.sbp.clauses_added;
  }

  if (options.presimplify) {
    enc.formula = simplify(enc.formula);
  }

  outcome.formula_vars = enc.formula.num_vars();
  outcome.formula_clauses = enc.formula.num_clauses();
  outcome.formula_pb = enc.formula.num_pb();

  Timer solve_timer;
  OptResult result;
  if (options.solver == SolverKind::GenericIlp) {
    result = solve_generic_ilp(enc.formula, deadline);
  } else {
    SolverConfig config = profile_config(options.solver);
    config.portfolio_threads = options.threads;
    result = optimization
                 ? minimize(enc.formula, config, deadline, options.search)
                 : solve_decision(enc.formula, config, deadline);
  }
  outcome.solve_seconds = solve_timer.seconds();
  outcome.solver_stats = result.stats;
  outcome.status = result.status;

  if (!result.model.empty()) {
    outcome.coloring = enc.decode(result.model);
    if (!graph.is_proper_coloring(outcome.coloring)) {
      throw std::logic_error("solver returned an improper coloring");
    }
    outcome.num_colors = Graph::count_colors(outcome.coloring);
    if (optimization &&
        outcome.num_colors != static_cast<int>(result.best_value)) {
      throw std::logic_error("objective value disagrees with coloring");
    }
  }
  outcome.total_seconds = total.seconds();
  return outcome;
}

}  // namespace

ColoringOutcome solve_coloring(const Graph& graph,
                               const ColoringOptions& options) {
  return run_pipeline(graph, options, /*optimization=*/true);
}

ColoringOutcome solve_k_coloring(const Graph& graph,
                                 const ColoringOptions& options) {
  return run_pipeline(graph, options, /*optimization=*/false);
}

}  // namespace symcolor
