#include "coloring/exact_colorer.h"

#include <algorithm>
#include <stdexcept>

#include "cnf/simplify.h"
#include "graph/clique.h"

namespace symcolor {
namespace {

ColoringOutcome run_pipeline(const Graph& graph, const ColoringOptions& options,
                             bool optimization) {
  Timer total;
  // One budget covers the pipeline end to end — symmetry detection AND
  // solving. A child of the caller's budget when one is supplied (so an
  // external interrupt() or tighter cap preempts us), fresh otherwise.
  const SolveBudget budget =
      options.budget != nullptr
          ? options.budget->child(options.time_budget_seconds,
                                  options.conflict_budget, options.prop_budget)
          : SolveBudget(options.time_budget_seconds, options.conflict_budget,
                        options.prop_budget);

  ColoringOutcome outcome;
  Timer encode_timer;
  ColoringEncoding enc = optimization
                             ? encode_coloring(graph, options.max_colors,
                                               options.sbps)
                             : encode_k_coloring(graph, options.max_colors,
                                                 options.sbps);
  outcome.encode_seconds = encode_timer.seconds();

  if (options.instance_dependent_sbps) {
    const ShatterStats stats =
        shatter(enc.formula, budget.deadline(), options.sbp_max_support);
    outcome.symmetry = stats.symmetry;
    outcome.inst_dep_sbp_clauses = stats.sbp.clauses_added;
  }

  if (options.presimplify) {
    enc.formula = simplify(enc.formula);
  }

  outcome.formula_vars = enc.formula.num_vars();
  outcome.formula_clauses = enc.formula.num_clauses();
  outcome.formula_pb = enc.formula.num_pb();

  Timer solve_timer;
  OptResult result;
  if (options.solver == SolverKind::GenericIlp) {
    result = solve_generic_ilp(enc.formula, budget);
  } else {
    SolverConfig config = profile_config(options.solver);
    config.portfolio_threads = options.threads;
    config.cube_depth = options.cube_depth;
    config.inprocess = options.inprocess;
    if (options.chrono_threshold >= 0) {
      config.chrono_threshold = options.chrono_threshold;
    }
    result = optimization
                 ? minimize(enc.formula, config, budget, options.search)
                 : solve_decision(enc.formula, config, budget);
  }
  outcome.solve_seconds = solve_timer.seconds();
  outcome.solver_stats = result.stats;
  outcome.solver_stats_all = result.agg_stats;
  outcome.status = result.status;
  outcome.lower_bound = result.lower_bound;
  if (optimization && result.budget_exhausted) {
    // A clique is a chromatic-number proof too: a budgeted exit before the
    // objective search proved anything would otherwise degrade to the
    // trivial bound 0 even on graphs with large obvious cliques.
    outcome.lower_bound =
        std::max(outcome.lower_bound,
                 static_cast<std::int64_t>(greedy_clique(graph).size()));
  }
  outcome.tripped = result.tripped;
  outcome.budget_exhausted = result.budget_exhausted;

  if (!result.model.empty()) {
    outcome.coloring = enc.decode(result.model);
    if (!graph.is_proper_coloring(outcome.coloring)) {
      throw std::logic_error("solver returned an improper coloring");
    }
    outcome.num_colors = Graph::count_colors(outcome.coloring);
    if (optimization &&
        outcome.num_colors != static_cast<int>(result.best_value)) {
      throw std::logic_error("objective value disagrees with coloring");
    }
  }
  outcome.total_seconds = total.seconds();
  return outcome;
}

}  // namespace

ColoringOutcome solve_coloring(const Graph& graph,
                               const ColoringOptions& options) {
  return run_pipeline(graph, options, /*optimization=*/true);
}

ColoringOutcome solve_k_coloring(const Graph& graph,
                                 const ColoringOptions& options) {
  return run_pipeline(graph, options, /*optimization=*/false);
}

}  // namespace symcolor
