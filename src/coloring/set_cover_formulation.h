#pragma once
// The Mehrotra-Trick independent-set formulation of minimum coloring.
//
// The paper (Section 2.1) contrasts its assignment-style 0-1 ILP with
// Mehrotra & Trick's formulation, where "each independent set in a graph
// is represented by a variable" and which "inherently breaks problem
// symmetries, and thus rules out the use of SBPs". This module builds
// that formulation — one Boolean per maximal independent set, a covering
// constraint per vertex, MIN the number of chosen sets — so the
// symmetry-content claim and the size trade-off can be measured against
// the assignment encoding (bench_ablation_formulation).
//
// A minimum cover by maximal independent sets has the same optimum as
// minimum coloring: any proper coloring's classes extend to maximal
// sets (still a cover of equal size), and any cover of size k yields a
// k-coloring by assigning each vertex to one covering set.
//
// The variable count is the number of maximal independent sets, which is
// exponential in general — Mehrotra & Trick manage it with column
// generation; we enumerate up to a cap and report failure beyond it,
// which is ample for the benchmark-sized instances this is measured on.

#include <optional>

#include "cnf/formula.h"
#include "graph/graph.h"

namespace symcolor {

struct SetCoverEncoding {
  Formula formula;
  /// set_members[i] lists the vertices of the independent set behind
  /// variable i.
  std::vector<std::vector<int>> set_members;

  /// Extract a proper coloring from a model: each vertex takes the color
  /// of the first chosen set containing it.
  [[nodiscard]] std::vector<int> decode(std::span<const LBool> model,
                                        int num_vertices) const;
};

/// Build the formulation, or nullopt when the graph has more than
/// `max_sets` maximal independent sets.
std::optional<SetCoverEncoding> encode_set_cover_coloring(
    const Graph& graph, std::size_t max_sets = 100000);

}  // namespace symcolor
