#include "coloring/csp_colorer.h"

#include <algorithm>
#include <stdexcept>

#include "coloring/heuristics.h"
#include "graph/clique.h"

namespace symcolor {
namespace {

class CspSearch {
 public:
  CspSearch(const Graph& graph, const CspColorerOptions& options,
            const Deadline& deadline)
      : graph_(graph), options_(options), deadline_(deadline) {
    if (options.max_colors < 1) {
      throw std::invalid_argument("csp colorer needs max_colors >= 1");
    }
    order_ = options.order.empty() ? std::vector<int>() : options.order;
    if (order_.empty()) {
      order_.resize(static_cast<std::size_t>(graph.num_vertices()));
      for (int v = 0; v < graph.num_vertices(); ++v) {
        order_[static_cast<std::size_t>(v)] = v;
      }
    }
    colors_.assign(static_cast<std::size_t>(graph.num_vertices()), -1);
  }

  CspColorerResult run() {
    Timer timer;
    CspColorerResult result;
    result.completed = true;
    result.satisfiable = extend(0, 0, &result);
    if (!completed_) result.completed = false;
    if (result.satisfiable) result.coloring = colors_;
    result.nodes = nodes_;
    result.seconds = timer.seconds();
    return result;
  }

 private:
  bool extend(std::size_t position, int used_colors, CspColorerResult* result) {
    if ((++nodes_ & 0x3FF) == 0 && deadline_.expired()) {
      completed_ = false;
      return false;
    }
    if (position == order_.size()) return true;
    const int v = order_[position];
    // With dynamic value-symmetry breaking only one fresh color is
    // tried; all fresh colors are interchangeable under any partial
    // assignment, so this loses no solutions.
    const int limit = options_.break_value_symmetry
                          ? std::min(options_.max_colors, used_colors + 1)
                          : options_.max_colors;
    for (int c = 0; c < limit; ++c) {
      bool feasible = true;
      for (const int u : graph_.neighbors(v)) {
        if (colors_[static_cast<std::size_t>(u)] == c) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      colors_[static_cast<std::size_t>(v)] = c;
      const int next_used = std::max(used_colors, c + 1);
      if (extend(position + 1, next_used, result)) return true;
      colors_[static_cast<std::size_t>(v)] = -1;
      if (!completed_) return false;
    }
    return false;
  }

  const Graph& graph_;
  const CspColorerOptions& options_;
  const Deadline& deadline_;
  std::vector<int> order_;
  std::vector<int> colors_;
  long long nodes_ = 0;
  bool completed_ = true;
};

}  // namespace

CspColorerResult csp_k_coloring(const Graph& graph,
                                const CspColorerOptions& options,
                                const Deadline& deadline) {
  CspSearch search(graph, options, deadline);
  return search.run();
}

CspColorerResult csp_min_coloring(const Graph& graph,
                                  bool break_value_symmetry,
                                  const Deadline& deadline) {
  CspColorerResult best;
  best.completed = true;
  if (graph.num_vertices() == 0) {
    best.satisfiable = true;
    return best;
  }
  const std::vector<int> heuristic = dsatur_coloring(graph);
  int upper = Graph::count_colors(heuristic);
  const int lower =
      std::max<int>(1, static_cast<int>(greedy_clique(graph).size()));
  best.satisfiable = true;
  best.coloring = heuristic;

  Timer timer;
  while (upper > lower) {
    CspColorerOptions options;
    options.max_colors = upper - 1;
    options.break_value_symmetry = break_value_symmetry;
    const CspColorerResult probe = csp_k_coloring(graph, options, deadline);
    best.nodes += probe.nodes;
    if (!probe.completed) {
      best.completed = false;
      break;
    }
    if (!probe.satisfiable) break;  // upper is optimal
    best.coloring = probe.coloring;
    upper = Graph::count_colors(best.coloring);
  }
  best.seconds = timer.seconds();
  return best;
}

}  // namespace symcolor
