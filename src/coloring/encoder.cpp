#include "coloring/encoder.h"

#include <stdexcept>

#include "coloring/sbp.h"

namespace symcolor {

std::string SbpOptions::label() const {
  if (!any()) return "none";
  std::string out;
  auto append = [&out](const char* tag) {
    if (!out.empty()) out += "+";
    out += tag;
  };
  if (nu) append("NU");
  if (ca) append("CA");
  if (li) append(li_paper_literal ? "LIq" : "LI");
  if (sc) append("SC");
  return out;
}

std::vector<SbpOptions> paper_sbp_rows() {
  return {SbpOptions::none(),    SbpOptions::nu_only(), SbpOptions::ca_only(),
          SbpOptions::li_only(), SbpOptions::sc_only(), SbpOptions::nu_sc(),
          SbpOptions::li_paper()};
}

namespace {

ColoringEncoding encode_impl(const Graph& graph, int max_colors,
                             const SbpOptions& sbps, bool with_objective) {
  if (max_colors < 1) throw std::invalid_argument("need at least one color");
  if (!graph.finalized()) throw std::invalid_argument("graph not finalized");

  ColoringEncoding enc;
  enc.num_vertices = graph.num_vertices();
  enc.num_colors = max_colors;
  Formula& f = enc.formula;

  const int n = enc.num_vertices;
  const int k = enc.num_colors;

  // x block, vertex-major, then y block (must match x()/y() arithmetic).
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      f.new_var("x_" + std::to_string(i) + "_" + std::to_string(j));
    }
  }
  for (int j = 0; j < k; ++j) f.new_var("y_" + std::to_string(j));

  // Each vertex gets exactly one color.
  for (int i = 0; i < n; ++i) {
    std::vector<Lit> lits;
    lits.reserve(static_cast<std::size_t>(k));
    for (int j = 0; j < k; ++j) lits.push_back(Lit::positive(enc.x(i, j)));
    f.add_exactly(lits, 1);
    ++enc.ilp_equalities;
  }

  // Adjacent vertices differ in color.
  for (const Edge& e : graph.edges()) {
    for (int j = 0; j < k; ++j) {
      f.add_clause({Lit::negative(enc.x(e.u, j)), Lit::negative(enc.x(e.v, j))});
    }
  }

  // Usage indicators: y(j) <-> OR_i x(i,j).
  for (int j = 0; j < k; ++j) {
    Clause some_user{Lit::negative(enc.y(j))};
    for (int i = 0; i < n; ++i) {
      f.add_implication(Lit::positive(enc.x(i, j)), Lit::positive(enc.y(j)));
      some_user.push_back(Lit::positive(enc.x(i, j)));
    }
    f.add_clause(std::move(some_user));
  }

  if (with_objective) {
    Objective objective;
    for (int j = 0; j < k; ++j) {
      objective.terms.push_back({1, Lit::positive(enc.y(j))});
    }
    f.set_objective(std::move(objective));
  }

  add_instance_independent_sbps(graph, &enc, sbps);
  return enc;
}

}  // namespace

ColoringEncoding encode_coloring(const Graph& graph, int max_colors,
                                 const SbpOptions& sbps) {
  return encode_impl(graph, max_colors, sbps, /*with_objective=*/true);
}

ColoringEncoding encode_k_coloring(const Graph& graph, int max_colors,
                                   const SbpOptions& sbps) {
  return encode_impl(graph, max_colors, sbps, /*with_objective=*/false);
}

std::vector<int> ColoringEncoding::decode(std::span<const LBool> model) const {
  std::vector<int> colors(static_cast<std::size_t>(num_vertices), -1);
  for (int i = 0; i < num_vertices; ++i) {
    for (int j = 0; j < num_colors; ++j) {
      if (model[static_cast<std::size_t>(x(i, j))] == LBool::True) {
        if (colors[static_cast<std::size_t>(i)] != -1) {
          throw std::runtime_error("decode: vertex with two colors");
        }
        colors[static_cast<std::size_t>(i)] = j;
      }
    }
    if (colors[static_cast<std::size_t>(i)] == -1) {
      throw std::runtime_error("decode: uncolored vertex");
    }
  }
  return colors;
}

}  // namespace symcolor
