#pragma once
// The Shatter flow: detect symmetries of a CNF+PB formula by reduction to
// graph automorphism, then break them with lex-leader SBPs appended as
// CNF clauses (the pre-processing pipeline of Aloul et al. that the paper
// uses for all instance-dependent symmetry breaking).

#include "automorphism/perm.h"
#include "automorphism/search.h"
#include "cnf/formula.h"
#include "symmetry/lexleader.h"
#include "util/timer.h"

namespace symcolor {

struct SymmetryInfo {
  /// Generators as literal permutations (closed under negation).
  std::vector<Perm> generators;
  /// log10 of the detected symmetry-group order (0 = rigid formula).
  double log10_order = 0.0;
  double detect_seconds = 0.0;
  bool complete = true;
  /// Graph automorphisms discarded as spurious (failed the formula-level
  /// verification); expected to be 0 for this library's encodings.
  int spurious_rejected = 0;
};

/// Detect the symmetries of `formula` (Saucy stand-in on the colored
/// formula graph). Each returned generator is verified to be a true
/// formula symmetry; failures are counted and dropped.
SymmetryInfo detect_symmetries(const Formula& formula,
                               const Deadline& deadline = {});

struct ShatterStats {
  SymmetryInfo symmetry;
  LexLeaderStats sbp;
};

/// Full flow: detect symmetries, then append lex-leader SBPs to `formula`.
ShatterStats shatter(Formula& formula, const Deadline& detect_deadline = {},
                     int max_support = 0);

}  // namespace symcolor
