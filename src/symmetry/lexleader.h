#pragma once
// Lex-leader symmetry-breaking predicates (instance-dependent SBPs).
//
// Implements the linear-size, tautology-free chained construction of
// Aloul, Sakallah & Markov: for a symmetry generator pi ordered by
// variable index over its support x_1..x_k with images y_i = pi(x_i),
//
//     e_0 := true
//     e_{i-1} -> (x_i <= y_i)                 [one clause]
//     e_{i-1} /\ (x_i = y_i) -> e_i           [two clauses, e_i fresh]
//
// An assignment satisfies the predicate iff it is lexicographically no
// larger than its image under pi, so exactly the lex-leaders (per
// generator) survive. 3 clauses and 1 auxiliary variable per support
// element; no tautologies. Per-generator breaking is partial, which the
// paper shows is the practical sweet spot.
//
// Two variants back the SBP ablation benchmark:
//   * truncated chains (break only on the first `max_support` support
//     variables — Shatter's own efficiency lever), and
//   * an auxiliary-variable-free quadratic weakening in the spirit of the
//     earlier Crawford et al. construction: clause i is
//         (~x_1 | ... | ~x_{i-1} | ~x_i | y_i),
//     sound because a lex-leader with all of x_1..x_{i-1} true has an
//     all-true image prefix, forcing x_i <= y_i; weaker because prefixes
//     containing a 0 escape the constraint.

#include <span>

#include "automorphism/perm.h"
#include "cnf/formula.h"

namespace symcolor {

struct LexLeaderStats {
  int clauses_added = 0;
  int vars_added = 0;
  int generators_used = 0;
};

/// Append linear lex-leader SBPs for each literal permutation (a
/// permutation of literal codes closed under negation). Identity
/// generators are skipped. `max_support` > 0 truncates each chain.
LexLeaderStats add_lex_leader_sbps(Formula& formula,
                                   std::span<const Perm> literal_perms,
                                   int max_support = 0);

/// The quadratic auxiliary-free weakening described above.
LexLeaderStats add_lex_leader_sbps_quadratic(Formula& formula,
                                             std::span<const Perm> literal_perms,
                                             int max_support = 0);

}  // namespace symcolor
