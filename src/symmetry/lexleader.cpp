#include "symmetry/lexleader.h"

#include <vector>

namespace symcolor {
namespace {

/// Support of a literal permutation as variable indices, ascending: the
/// variables whose positive literal moves.
std::vector<Var> support_vars(const Perm& lit_perm) {
  std::vector<Var> vars;
  for (int code = 0; code < static_cast<int>(lit_perm.size()); code += 2) {
    if (lit_perm[static_cast<std::size_t>(code)] != code) {
      vars.push_back(code >> 1);
    }
  }
  return vars;
}

}  // namespace

LexLeaderStats add_lex_leader_sbps(Formula& formula,
                                   std::span<const Perm> literal_perms,
                                   int max_support) {
  LexLeaderStats stats;
  for (const Perm& pi : literal_perms) {
    std::vector<Var> vars = support_vars(pi);
    if (vars.empty()) continue;
    if (max_support > 0 && static_cast<int>(vars.size()) > max_support) {
      vars.resize(static_cast<std::size_t>(max_support));
    }
    ++stats.generators_used;

    const int before_clauses = formula.num_clauses();
    Lit prev_e = kUndefLit;  // e_0 == true is represented by "no literal"
    for (std::size_t i = 0; i < vars.size(); ++i) {
      const Lit x = Lit::positive(vars[i]);
      const Lit y = Lit::from_code(pi[static_cast<std::size_t>(x.code())]);
      // e_{i-1} -> (x <= y)
      Clause ordering{~x, y};
      if (prev_e.valid()) ordering.push_back(~prev_e);
      formula.add_clause(std::move(ordering));

      if (i + 1 == vars.size()) break;  // no successor needs e_i
      const Lit e = Lit::positive(formula.new_var());
      ++stats.vars_added;
      // e_{i-1} /\ x /\ y -> e   and   e_{i-1} /\ ~x /\ ~y -> e.
      // (Tautological instances, e.g. phase-shift images y == ~x, are
      // dropped by Formula::add_clause; e then floats free, which is
      // sound: the prefix can never be equal past a phase-shifted
      // variable.)
      Clause both_true{~x, ~y, e};
      Clause both_false{x, y, e};
      if (prev_e.valid()) {
        both_true.push_back(~prev_e);
        both_false.push_back(~prev_e);
      }
      formula.add_clause(std::move(both_true));
      formula.add_clause(std::move(both_false));
      prev_e = e;
    }
    stats.clauses_added += formula.num_clauses() - before_clauses;
  }
  return stats;
}

LexLeaderStats add_lex_leader_sbps_quadratic(Formula& formula,
                                             std::span<const Perm> literal_perms,
                                             int max_support) {
  LexLeaderStats stats;
  for (const Perm& pi : literal_perms) {
    std::vector<Var> vars = support_vars(pi);
    if (vars.empty()) continue;
    if (max_support > 0 && static_cast<int>(vars.size()) > max_support) {
      vars.resize(static_cast<std::size_t>(max_support));
    }
    ++stats.generators_used;

    const int before_clauses = formula.num_clauses();
    Clause prefix;  // accumulates ~x_1 .. ~x_{i-1}
    for (std::size_t i = 0; i < vars.size(); ++i) {
      const Lit x = Lit::positive(vars[i]);
      const Lit y = Lit::from_code(pi[static_cast<std::size_t>(x.code())]);
      Clause clause = prefix;
      clause.push_back(~x);
      clause.push_back(y);
      formula.add_clause(std::move(clause));
      prefix.push_back(~x);
    }
    stats.clauses_added += formula.num_clauses() - before_clauses;
  }
  return stats;
}

}  // namespace symcolor
