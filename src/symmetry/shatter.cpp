#include "symmetry/shatter.h"

#include "symmetry/formula_graph.h"
#include "util/logging.h"

namespace symcolor {

SymmetryInfo detect_symmetries(const Formula& formula,
                               const Deadline& deadline) {
  SymmetryInfo info;
  Timer timer;
  const FormulaGraph fg = build_formula_graph(formula);
  const AutomorphismResult result =
      find_automorphisms(fg.graph, fg.vertex_colors, deadline);
  info.complete = result.complete;
  info.log10_order = result.log10_order;
  for (const Perm& graph_perm : result.generators) {
    Perm lit_perm = literal_permutation(fg, graph_perm);
    if (lit_perm.empty() || !is_formula_symmetry(formula, lit_perm)) {
      ++info.spurious_rejected;
      SYMCOLOR_WARN() << "discarding spurious symmetry generator";
      continue;
    }
    info.generators.push_back(std::move(lit_perm));
  }
  info.detect_seconds = timer.seconds();
  return info;
}

ShatterStats shatter(Formula& formula, const Deadline& detect_deadline,
                     int max_support) {
  ShatterStats stats;
  stats.symmetry = detect_symmetries(formula, detect_deadline);
  stats.sbp =
      add_lex_leader_sbps(formula, stats.symmetry.generators, max_support);
  return stats;
}

}  // namespace symcolor
