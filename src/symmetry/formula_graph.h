#pragma once
// Reduction of a CNF+PB formula to a vertex-colored graph whose
// automorphisms are exactly the formula's symmetries (Section 2.4 of the
// paper; the construction of Aloul, Ramani, Markov & Sakallah with the
// PB extension of their ASP-DAC'04 paper).
//
// Layout:
//   * one vertex per literal, all sharing color 0; an edge joins the two
//     literals of each variable (Boolean consistency). Giving both phases
//     one color permits phase-shift symmetries;
//   * a binary clause is an edge between its two literal vertices
//     (the paper's optimization — see the caveat about circular
//     implication chains, which our encodings do not produce);
//   * a longer clause is a vertex of color 1 joined to its literals;
//   * a PB constraint is a vertex colored by its bound class (distinct
//     bounds get distinct colors, so constraints with different bounds
//     can never map to each other); unit-coefficient terms attach
//     directly, non-unit coefficients go through intermediate vertices
//     colored by coefficient class;
//   * the objective is a vertex with its own unique color.

#include <vector>

#include "automorphism/perm.h"
#include "cnf/formula.h"
#include "graph/graph.h"

namespace symcolor {

struct FormulaGraph {
  Graph graph;
  std::vector<int> vertex_colors;
  /// Literal with code c occupies graph vertex c; vertices >= 2*num_vars
  /// are constraint/coefficient vertices.
  int num_literal_vertices = 0;

  [[nodiscard]] int literal_vertex(Lit l) const noexcept { return l.code(); }
};

/// Build the colored symmetry graph of `formula`.
FormulaGraph build_formula_graph(const Formula& formula);

/// Restrict a graph automorphism to the literal vertices. Returns an
/// empty vector if the permutation is "spurious": it fails Boolean
/// consistency (perm(~l) != ~perm(l)) or moves literal vertices onto
/// constraint vertices.
Perm literal_permutation(const FormulaGraph& fg, std::span<const int> perm);

/// True iff `lit_perm` (a permutation of literal codes) maps the formula
/// onto itself: clauses to clauses, PB constraints to PB constraints with
/// equal bound, objective terms to objective terms with equal coefficient.
bool is_formula_symmetry(const Formula& formula, std::span<const int> lit_perm);

}  // namespace symcolor
