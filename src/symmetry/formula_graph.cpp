#include "symmetry/formula_graph.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace symcolor {
namespace {

constexpr int kLiteralColor = 0;
constexpr int kClauseColor = 1;
constexpr int kObjectiveColor = 2;
constexpr int kFirstDynamicColor = 3;

/// Builder that counts vertices first, then materializes the graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(const Formula& formula) : formula_(formula) {
    const int lits = 2 * formula.num_vars();
    next_vertex_ = lits;
    // Count extra vertices: one per clause of size >= 3, one per
    // non-clausal PB constraint (plus coefficient groups), objective.
    for (const Clause& c : formula.clauses()) {
      if (c.size() >= 3 || c.size() == 1) ++extra_;  // unit clauses get markers
    }
    for (const PbConstraint& pb : formula.pb_constraints()) {
      if (pb.is_clause()) {
        if (pb.terms().size() >= 3 || pb.terms().size() == 1) ++extra_;
      } else {
        ++extra_;
        extra_ += coeff_vertex_count(coeff_groups(pb));
      }
    }
    if (formula.objective()) {
      ++extra_;
      extra_ += coeff_vertex_count(
          term_coeff_groups(formula.objective()->terms));
    }
  }

  FormulaGraph build() {
    FormulaGraph fg;
    const int lits = 2 * formula_.num_vars();
    fg.num_literal_vertices = lits;
    fg.graph.reset(lits + extra_);
    fg.vertex_colors.assign(static_cast<std::size_t>(lits + extra_),
                            kLiteralColor);
    graph_ = &fg.graph;
    colors_ = &fg.vertex_colors;

    // Boolean consistency edges.
    for (Var v = 0; v < formula_.num_vars(); ++v) {
      graph_->add_edge(Lit::positive(v).code(), Lit::negative(v).code());
    }
    for (const Clause& c : formula_.clauses()) add_clause_structure(c);
    for (const PbConstraint& pb : formula_.pb_constraints()) {
      if (pb.is_clause()) {
        Clause c;
        for (const PbTerm& t : pb.terms()) c.push_back(t.lit);
        add_clause_structure(c);
      } else {
        add_pb_structure(pb);
      }
    }
    if (formula_.objective()) add_objective_structure(*formula_.objective());
    // Every counted slot must have been used: leftover default-colored
    // vertices would masquerade as interchangeable literals and inject
    // spurious symmetries.
    assert(next_vertex_ == lits + extra_);
    fg.graph.finalize();
    return fg;
  }

 private:
  /// Terms grouped by coefficient value, keyed ascending.
  static std::map<std::int64_t, std::vector<Lit>> term_coeff_groups(
      std::span<const PbTerm> terms) {
    std::map<std::int64_t, std::vector<Lit>> groups;
    for (const PbTerm& t : terms) groups[t.coeff].push_back(t.lit);
    return groups;
  }
  static std::map<std::int64_t, std::vector<Lit>> coeff_groups(
      const PbConstraint& pb) {
    return term_coeff_groups(pb.terms());
  }

  /// Number of intermediate coefficient vertices the build step will
  /// create: none when all coefficients are 1 (terms attach directly).
  static int coeff_vertex_count(
      const std::map<std::int64_t, std::vector<Lit>>& groups) {
    if (groups.size() == 1 && groups.begin()->first == 1) return 0;
    return static_cast<int>(groups.size());
  }

  int fresh_vertex(int color) {
    (*colors_)[static_cast<std::size_t>(next_vertex_)] = color;
    return next_vertex_++;
  }

  int dynamic_color(const std::string& key) {
    const auto [it, inserted] =
        color_keys_.try_emplace(key, kFirstDynamicColor +
                                         static_cast<int>(color_keys_.size()));
    (void)inserted;
    return it->second;
  }

  void add_clause_structure(const Clause& c) {
    if (c.size() == 1) {
      // Unit clause: a private marker vertex pins the literal's identity
      // (a unit-constrained literal must not swap with a free one).
      const int marker = fresh_vertex(dynamic_color("unit"));
      graph_->add_edge(marker, c[0].code());
      return;
    }
    if (c.size() == 2) {
      graph_->add_edge(c[0].code(), c[1].code());
      return;
    }
    const int clause_vertex = fresh_vertex(kClauseColor);
    for (const Lit l : c) graph_->add_edge(clause_vertex, l.code());
  }

  void add_pb_structure(const PbConstraint& pb) {
    const int constraint_vertex =
        fresh_vertex(dynamic_color("pb:" + std::to_string(pb.bound())));
    const auto groups = coeff_groups(pb);
    if (groups.size() == 1 && groups.begin()->first == 1) {
      for (const Lit l : groups.begin()->second) {
        graph_->add_edge(constraint_vertex, l.code());
      }
      return;
    }
    for (const auto& [coeff, lits] : groups) {
      const int coeff_vertex =
          fresh_vertex(dynamic_color("coeff:" + std::to_string(coeff)));
      graph_->add_edge(constraint_vertex, coeff_vertex);
      for (const Lit l : lits) graph_->add_edge(coeff_vertex, l.code());
    }
  }

  void add_objective_structure(const Objective& objective) {
    const int objective_vertex = fresh_vertex(kObjectiveColor);
    const auto groups = term_coeff_groups(objective.terms);
    if (groups.size() == 1 && groups.begin()->first == 1) {
      for (const Lit l : groups.begin()->second) {
        graph_->add_edge(objective_vertex, l.code());
      }
      return;
    }
    for (const auto& [coeff, lits] : groups) {
      const int coeff_vertex =
          fresh_vertex(dynamic_color("objcoeff:" + std::to_string(coeff)));
      graph_->add_edge(objective_vertex, coeff_vertex);
      for (const Lit l : lits) graph_->add_edge(coeff_vertex, l.code());
    }
  }

  const Formula& formula_;
  Graph* graph_ = nullptr;
  std::vector<int>* colors_ = nullptr;
  int next_vertex_ = 0;
  int extra_ = 0;
  std::map<std::string, int> color_keys_;
};

}  // namespace

FormulaGraph build_formula_graph(const Formula& formula) {
  // Count unit clauses as extra vertices too (see add_clause_structure).
  GraphBuilder builder(formula);
  return builder.build();
}

Perm literal_permutation(const FormulaGraph& fg, std::span<const int> perm) {
  const int lits = fg.num_literal_vertices;
  Perm lit_perm(static_cast<std::size_t>(lits));
  for (int code = 0; code < lits; ++code) {
    const int image = perm[static_cast<std::size_t>(code)];
    if (image >= lits) return {};  // literal mapped onto a constraint vertex
    lit_perm[static_cast<std::size_t>(code)] = image;
  }
  // Boolean consistency: negation must commute with the permutation.
  for (int code = 0; code < lits; ++code) {
    if ((lit_perm[static_cast<std::size_t>(code)] ^ 1) !=
        lit_perm[static_cast<std::size_t>(code ^ 1)]) {
      return {};
    }
  }
  return lit_perm;
}

bool is_formula_symmetry(const Formula& formula,
                         std::span<const int> lit_perm) {
  if (static_cast<int>(lit_perm.size()) != 2 * formula.num_vars()) return false;
  auto map_lit = [&](Lit l) {
    return Lit::from_code(lit_perm[static_cast<std::size_t>(l.code())]);
  };

  // Clauses: permuted clause must be an existing clause.
  std::set<Clause> clause_set;
  for (const Clause& c : formula.clauses()) {
    Clause sorted = c;
    std::sort(sorted.begin(), sorted.end());
    clause_set.insert(std::move(sorted));
  }
  for (const Clause& c : formula.clauses()) {
    Clause image;
    image.reserve(c.size());
    for (const Lit l : c) image.push_back(map_lit(l));
    std::sort(image.begin(), image.end());
    if (!clause_set.contains(image)) return false;
  }

  // PB constraints: permuted constraint must exist (canonical form).
  using CanonicalPb = std::pair<std::int64_t, std::vector<std::pair<std::int64_t, int>>>;
  auto canonical = [](std::int64_t bound, std::vector<PbTerm> terms) {
    std::vector<std::pair<std::int64_t, int>> body;
    body.reserve(terms.size());
    for (const PbTerm& t : terms) body.emplace_back(t.coeff, t.lit.code());
    std::sort(body.begin(), body.end());
    return CanonicalPb{bound, std::move(body)};
  };
  std::set<CanonicalPb> pb_set;
  for (const PbConstraint& pb : formula.pb_constraints()) {
    pb_set.insert(canonical(pb.bound(),
                            {pb.terms().begin(), pb.terms().end()}));
  }
  for (const PbConstraint& pb : formula.pb_constraints()) {
    std::vector<PbTerm> image;
    for (const PbTerm& t : pb.terms()) image.push_back({t.coeff, map_lit(t.lit)});
    if (!pb_set.contains(canonical(pb.bound(), std::move(image)))) return false;
  }

  // Objective: the multiset of (coeff, literal) terms must be preserved.
  if (formula.objective()) {
    std::set<std::pair<std::int64_t, int>> terms;
    for (const PbTerm& t : formula.objective()->terms) {
      terms.insert({t.coeff, t.lit.code()});
    }
    for (const PbTerm& t : formula.objective()->terms) {
      if (!terms.contains({t.coeff, map_lit(t.lit).code()})) return false;
    }
  }
  return true;
}

}  // namespace symcolor
