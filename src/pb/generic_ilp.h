#pragma once
// Generic branch-and-bound 0-1 ILP solver — the CPLEX stand-in.
//
// The paper contrasts its CDCL-based academic solvers with CPLEX 7.0, a
// *generic* ILP solver whose search has no conflict learning and whose
// behaviour on symmetry-breaking predicates is qualitatively different
// (it is slowed down by them). We model that class of solver with a
// depth-first branch and bound that
//   * propagates units over clauses and PB constraints (counter-based),
//   * prunes on the objective incumbent,
//   * branches by a static most-occurrences order computed once from the
//     full constraint matrix — added SBP constraints therefore *distort*
//     the branching order, reproducing the paper's observation that SBPs
//     hamper the generic solver,
//   * learns nothing and never restarts.
// See DESIGN.md "Substitutions" for what this stand-in does and does not
// reproduce of CPLEX's behaviour.

#include "cnf/formula.h"
#include "pb/optimizer.h"
#include "util/budget.h"
#include "util/timer.h"

namespace symcolor {

/// Minimize the formula's objective (or just decide satisfiability when no
/// objective is present). Stats fields for learning stay zero. The budget's
/// wall clock and interrupt() are polled on the decision cadence; conflict/
/// propagation caps are not enforced here (this solver models a generic
/// ILP engine, whose "conflicts" are not comparable). A budgeted exit
/// degrades gracefully: Feasible with the incumbent, Unknown without one.
OptResult solve_generic_ilp(const Formula& formula, const SolveBudget& budget);

}  // namespace symcolor
