#include "pb/generic_ilp.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

namespace symcolor {
namespace {

/// Depth-first branch and bound without learning. Clause propagation uses
/// per-clause non-false counters (no watched literals — generic solvers
/// pay for every constraint on every assignment, which is exactly the
/// behaviour we want to model for the SBP-overhead experiments).
class BnbSearch {
 public:
  BnbSearch(const Formula& formula, const SolveBudget& budget)
      : budget_(budget), num_vars_(formula.num_vars()) {
    values_.assign(static_cast<std::size_t>(num_vars_), LBool::Undef);
    occurrences_.assign(static_cast<std::size_t>(2 * num_vars_), {});
    occurrence_count_.assign(static_cast<std::size_t>(num_vars_), 0);

    for (const Clause& clause : formula.clauses()) add_row(clause);
    for (const PbConstraint& pb : formula.pb_constraints()) {
      // The row representation assumes unit coefficients. Every constraint
      // this library emits is a cardinality constraint after
      // normalization; reject anything else loudly rather than mis-solve.
      if (!pb.is_cardinality()) {
        throw std::invalid_argument(
            "generic_ilp: non-cardinality PB constraints unsupported");
      }
      std::vector<Lit> lits;
      for (const PbTerm& t : pb.terms()) lits.push_back(t.lit);
      add_row(lits, pb.bound(), &pb);
    }

    if (formula.objective()) {
      objective_terms_ = formula.objective()->terms;
      for (const PbTerm& t : objective_terms_) {
        objective_upper_ += t.coeff;
      }
      obj_coeff_.assign(static_cast<std::size_t>(num_vars_), 0);
      obj_negated_.assign(static_cast<std::size_t>(num_vars_), 0);
      for (const PbTerm& t : objective_terms_) {
        obj_coeff_[static_cast<std::size_t>(t.lit.var())] = t.coeff;
        obj_negated_[static_cast<std::size_t>(t.lit.var())] =
            t.lit.negated() ? 1 : 0;
      }
      has_objective_ = true;
    }

    // Static branching order: most constrained first. SBPs added to the
    // formula shift these counts — deliberately.
    branch_order_.resize(static_cast<std::size_t>(num_vars_));
    std::iota(branch_order_.begin(), branch_order_.end(), 0);
    std::stable_sort(branch_order_.begin(), branch_order_.end(),
                     [&](Var a, Var b) {
                       return occurrence_count_[static_cast<std::size_t>(a)] >
                              occurrence_count_[static_cast<std::size_t>(b)];
                     });
  }

  OptResult run() {
    OptResult result;
    Timer timer;
    incumbent_ = objective_upper_ + 1;
    if (!root_propagate()) {
      result.status = OptStatus::Infeasible;
      result.seconds = timer.seconds();
      result.stats = stats_;
      return result;
    }
    const bool complete = search(0);
    result.stats = stats_;
    result.seconds = timer.seconds();
    if (best_model_.empty()) {
      result.status = complete ? OptStatus::Infeasible : OptStatus::Unknown;
    } else {
      result.status = complete ? OptStatus::Optimal : OptStatus::Feasible;
      result.best_value = incumbent_;
      result.model = best_model_;
      if (complete) result.lower_bound = incumbent_;
    }
    if (!complete) {
      // The exhaustive DFS was cut short: record what preempted it. (The
      // condition that stopped search() still holds here.)
      result.tripped = budget_.poll();
      result.budget_exhausted = true;
    }
    return result;
  }

 private:
  // One linear row: sum of listed literals >= bound (clauses have bound 1).
  struct Row {
    std::vector<Lit> lits;
    std::int64_t bound = 1;
    std::int64_t slack = 0;  // non-false count minus bound
  };
  struct Occ {
    int row = -1;
  };

  void add_row(const std::vector<Lit>& lits, std::int64_t bound = 1,
               const PbConstraint* pb = nullptr) {
    Row row;
    row.lits = lits;
    row.bound = bound;
    row.slack = static_cast<std::int64_t>(lits.size()) - bound;
    (void)pb;
    const int index = static_cast<int>(rows_.size());
    for (const Lit l : lits) {
      occurrences_[static_cast<std::size_t>(l.code())].push_back({index});
      ++occurrence_count_[static_cast<std::size_t>(l.var())];
    }
    rows_.push_back(std::move(row));
  }

  [[nodiscard]] LBool value(Lit l) const noexcept {
    return lit_value(values_[static_cast<std::size_t>(l.var())], l.negated());
  }

  /// Assign l true; update row slacks; queue for propagation.
  bool assign(Lit l) {
    const auto v = static_cast<std::size_t>(l.var());
    if (values_[v] != LBool::Undef) return value(l) == LBool::True;
    values_[v] = lbool_of(!l.negated());
    trail_.push_back(l);
    if (has_objective_ && obj_coeff_[v] != 0) {
      const bool counts = (obj_negated_[v] != 0) == l.negated();
      if (counts) objective_now_ += obj_coeff_[v];
    }
    const Lit falsified = ~l;
    for (const Occ occ : occurrences_[static_cast<std::size_t>(falsified.code())]) {
      Row& row = rows_[static_cast<std::size_t>(occ.row)];
      if (--row.slack < 0) {
        conflict_ = true;
      }
    }
    return !conflict_;
  }

  void undo_to(std::size_t mark) {
    while (trail_.size() > mark) {
      const Lit l = trail_.back();
      trail_.pop_back();
      const auto v = static_cast<std::size_t>(l.var());
      if (has_objective_ && obj_coeff_[v] != 0) {
        const bool counts = (obj_negated_[v] != 0) == l.negated();
        if (counts) objective_now_ -= obj_coeff_[v];
      }
      const Lit falsified = ~l;
      for (const Occ occ :
           occurrences_[static_cast<std::size_t>(falsified.code())]) {
        ++rows_[static_cast<std::size_t>(occ.row)].slack;
      }
      values_[v] = LBool::Undef;
    }
    conflict_ = false;
  }

  /// Exhaustive unit propagation: any row whose slack equals 0 forces all
  /// its unassigned literals true. Quadratic-ish rescans — generic-solver
  /// flavoured on purpose (cost grows with every added constraint).
  bool propagate_from(std::size_t trail_start) {
    std::size_t head = trail_start;
    while (head < trail_.size()) {
      if (conflict_) return false;
      const Lit p = trail_[head++];
      ++stats_.propagations;
      const Lit falsified = ~p;
      for (const Occ occ :
           occurrences_[static_cast<std::size_t>(falsified.code())]) {
        Row& row = rows_[static_cast<std::size_t>(occ.row)];
        if (row.slack < 0) {
          conflict_ = true;
          return false;
        }
        if (row.slack == 0) {
          for (const Lit l : row.lits) {
            if (value(l) == LBool::Undef) {
              if (!assign(l)) return false;
            }
          }
        }
      }
    }
    return !conflict_;
  }

  bool root_propagate() {
    // Rows that are unit (or violated) from the start.
    for (Row& row : rows_) {
      if (row.slack < 0) return false;
      if (row.slack == 0) {
        for (const Lit l : row.lits) {
          if (value(l) == LBool::Undef && !assign(l)) return false;
        }
      }
    }
    return propagate_from(0);
  }

  [[nodiscard]] Var next_branch_var() const {
    for (const Var v : branch_order_) {
      if (values_[static_cast<std::size_t>(v)] == LBool::Undef) return v;
    }
    return kNoVar;
  }

  /// Returns true if the subtree was exhausted (false on a budget trip).
  bool search(int depth) {
    if ((++stats_.decisions & 0x3FF) == 0 &&
        budget_.poll() != BudgetTrip::None) {
      return false;
    }
    if (has_objective_ && objective_now_ >= incumbent_) return true;  // bound

    const Var v = next_branch_var();
    if (v == kNoVar) {
      // Complete assignment: candidate solution.
      if (!has_objective_) {
        incumbent_ = 0;
        best_model_ = values_;
        found_without_objective_ = true;
        return true;
      }
      if (objective_now_ < incumbent_) {
        incumbent_ = objective_now_;
        best_model_ = values_;
      }
      return true;
    }

    // Value order: objective literals branch "cheap direction" first; all
    // other variables branch true first (first-fit), which on coloring
    // encodings greedily builds an incumbent quickly.
    const bool is_obj = has_objective_ && obj_coeff_[static_cast<std::size_t>(v)] != 0;
    const bool first_true = is_obj ? (obj_negated_[static_cast<std::size_t>(v)] != 0)
                                   : true;
    for (int branch = 0; branch < 2; ++branch) {
      const bool try_true = (branch == 0) ? first_true : !first_true;
      const std::size_t mark = trail_.size();
      if (assign(Lit(v, !try_true)) && propagate_from(mark)) {
        if (!search(depth + 1)) return false;
        if (found_without_objective_) return true;  // decision mode: stop
      } else {
        ++stats_.conflicts;
      }
      undo_to(mark);
    }
    return true;
  }

  const SolveBudget& budget_;
  int num_vars_;
  std::vector<Row> rows_;
  std::vector<std::vector<Occ>> occurrences_;
  std::vector<int> occurrence_count_;
  std::vector<LBool> values_;
  std::vector<Lit> trail_;
  std::vector<Var> branch_order_;

  bool has_objective_ = false;
  std::vector<PbTerm> objective_terms_;
  std::vector<std::int64_t> obj_coeff_;
  std::vector<char> obj_negated_;
  std::int64_t objective_upper_ = 0;
  std::int64_t objective_now_ = 0;
  std::int64_t incumbent_ = 0;
  std::vector<LBool> best_model_;
  bool found_without_objective_ = false;
  bool conflict_ = false;

  SolverStats stats_;
};

}  // namespace

OptResult solve_generic_ilp(const Formula& formula,
                            const SolveBudget& budget) {
  if (formula.trivially_unsat()) {
    OptResult result;
    result.status = OptStatus::Infeasible;
    return result;
  }
  BnbSearch search(formula, budget);
  return search.run();
}

}  // namespace symcolor
