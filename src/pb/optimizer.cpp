#include "pb/optimizer.h"

#include <cassert>
#include <memory>

#include "sat/portfolio.h"

namespace symcolor {
namespace {

/// objective <= bound as a normalized PB constraint.
PbConstraint objective_at_most(const Objective& objective, std::int64_t bound) {
  std::vector<PbTerm> terms(objective.terms.begin(), objective.terms.end());
  return PbConstraint::at_most(std::move(terms), bound);
}

}  // namespace

OptResult solve_decision(const Formula& formula, const SolverConfig& config,
                         const Deadline& deadline) {
  OptResult result;
  Timer timer;
  const std::unique_ptr<SolverEngine> solver =
      make_solver_engine(formula, config);
  const SolveResult sat = solver->solve(deadline);
  result.stats = solver->stats();
  result.seconds = timer.seconds();
  switch (sat) {
    case SolveResult::Sat:
      result.status = OptStatus::Optimal;
      result.model = solver->model();
      if (formula.objective()) {
        result.best_value = formula.objective()->value(result.model);
        result.status = OptStatus::Feasible;  // value not proved minimal
      }
      return result;
    case SolveResult::Unsat:
      result.status = OptStatus::Infeasible;
      return result;
    case SolveResult::Unknown:
      result.status = OptStatus::Unknown;
      return result;
  }
  return result;
}

OptResult minimize_linear(const Formula& formula, const SolverConfig& config,
                          const Deadline& deadline) {
  if (!formula.objective()) return solve_decision(formula, config, deadline);
  const Objective& objective = *formula.objective();

  OptResult result;
  Timer timer;
  const std::unique_ptr<SolverEngine> solver =
      make_solver_engine(formula, config);
  bool have_model = false;
  for (;;) {
    const SolveResult sat = solver->solve(deadline);
    if (sat == SolveResult::Sat) {
      result.model = solver->model();
      result.best_value = objective.value(result.model);
      have_model = true;
      // Strengthen: demand a strictly better objective value. Adding the
      // bound can immediately make the instance trivially unsat, which
      // the next solve() reports.
      solver->add_pb(objective_at_most(objective, result.best_value - 1));
      continue;
    }
    if (sat == SolveResult::Unsat) {
      result.status = have_model ? OptStatus::Optimal : OptStatus::Infeasible;
      break;
    }
    result.status = have_model ? OptStatus::Feasible : OptStatus::Unknown;
    break;
  }
  result.stats = solver->stats();
  result.seconds = timer.seconds();
  return result;
}

OptResult minimize_binary(const Formula& formula, const SolverConfig& config,
                          const Deadline& deadline, std::int64_t lower_hint) {
  if (!formula.objective()) return solve_decision(formula, config, deadline);
  const Objective& objective = *formula.objective();

  OptResult result;
  Timer timer;

  // Probe with no bound first to obtain an incumbent.
  {
    const std::unique_ptr<SolverEngine> solver =
        make_solver_engine(formula, config);
    const SolveResult sat = solver->solve(deadline);
    result.stats = solver->stats();
    if (sat == SolveResult::Unsat) {
      result.status = OptStatus::Infeasible;
      result.seconds = timer.seconds();
      return result;
    }
    if (sat == SolveResult::Unknown) {
      result.status = OptStatus::Unknown;
      result.seconds = timer.seconds();
      return result;
    }
    result.model = solver->model();
    result.best_value = objective.value(result.model);
  }

  std::int64_t lo = lower_hint;
  std::int64_t hi = result.best_value - 1;  // probe range for better values
  while (lo <= hi) {
    if (deadline.expired()) {
      result.status = OptStatus::Feasible;
      result.seconds = timer.seconds();
      return result;
    }
    const std::int64_t mid = lo + (hi - lo) / 2;
    Formula probe = formula;
    probe.add_pb(objective_at_most(objective, mid));
    const std::unique_ptr<SolverEngine> solver =
        make_solver_engine(probe, config);
    const SolveResult sat = solver->solve(deadline);
    result.stats.conflicts += solver->stats().conflicts;
    result.stats.decisions += solver->stats().decisions;
    result.stats.propagations += solver->stats().propagations;
    if (sat == SolveResult::Sat) {
      result.model = solver->model();
      result.best_value = objective.value(result.model);
      hi = result.best_value - 1;
    } else if (sat == SolveResult::Unsat) {
      lo = mid + 1;
    } else {
      result.status = OptStatus::Feasible;
      result.seconds = timer.seconds();
      return result;
    }
  }
  result.status = OptStatus::Optimal;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace symcolor
