#include "pb/optimizer.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <memory>

#include "cnf/objective_ladder.h"
#include "sat/portfolio.h"

namespace symcolor {
namespace {

/// objective <= bound as a normalized PB constraint (the permanent-row
/// fallback used when the selector ladder was refused).
PbConstraint objective_at_most(const Objective& objective, std::int64_t bound) {
  std::vector<PbTerm> terms(objective.terms.begin(), objective.terms.end());
  return PbConstraint::at_most(std::move(terms), bound);
}

/// Shared state of one minimization run: the persistent engine, the
/// ladder, and the result being assembled.
struct MinimizeRun {
  const Formula& formula;
  const Objective& objective;
  const SolveBudget& budget;
  BudgetLedger ledger;
  OptResult result;
  Timer timer;
  Formula working;
  ObjectiveLadder ladder;
  std::unique_ptr<SolverEngine> engine;

  MinimizeRun(const Formula& f, const SolverConfig& config,
              const SolveBudget& b)
      : formula(f),
        objective(*f.objective()),
        budget(b),
        ledger(b),
        working(f),
        ladder(&working, objective) {
    engine = make_solver_engine(working, config);
    // The ladder floor (objective value with every normalized term off) is
    // proven by construction; mining and Unsat probes only lift it.
    result.lower_bound = ladder.min_value();
  }

  /// One solve against the persistent engine, charged to the run ledger.
  /// The run's conflict/propagation caps are whole-run budgets: each probe
  /// gets a child budget carrying only the unspent remainder, and a probe
  /// is refused outright (Unknown) once the ledger is exhausted. Every
  /// Unknown records which bound tripped in result.tripped.
  ///
  /// Incremental note: the engine may retain the trail prefix of this
  /// probe's assumptions across the return (SolverConfig::reuse_trail),
  /// so consecutive probes sharing an assumption prefix — the ladder
  /// walks below — skip re-propagating it. commit_upper_bound()'s
  /// add_clause()/add_pb() between probes triggers the engine's lazy
  /// root backtrack, which keeps that retention sound.
  SolveResult probe(std::span<const Lit> assumptions = {}) {
    const BudgetTrip pre = ledger.trip();
    if (pre != BudgetTrip::None) {
      result.tripped = pre;
      return SolveResult::Unknown;
    }
    ++result.probes;
    const SolveBudget slice = ledger.probe();
    const std::int64_t conflicts_before = engine->stats().conflicts;
    const std::int64_t props_before = engine->stats().propagations;
    const SolveResult r = engine->solve(slice, assumptions);
    ledger.charge(engine->stats().conflicts - conflicts_before,
                  engine->stats().propagations - props_before);
    if (r == SolveResult::Unknown) {
      const BudgetTrip trip = engine->last_trip();
      result.tripped = trip != BudgetTrip::None ? trip : ledger.trip();
    }
    return r;
  }

  void record_incumbent() {
    result.model = engine->model();
    result.best_value = objective.value(result.model);
    commit_upper_bound();
  }

  /// Permanently assert objective <= best_value - 1. Sound for the rest
  /// of THIS run: the upper bound only tightens, every later probe asks
  /// for a bound at or below it, and all optimal models survive (when
  /// best_value IS the optimum the engine goes root-Unsat, which is
  /// exactly what the closing probe must prove). Committed in BOTH
  /// representations — a ladder output unit (level-0 chain propagation)
  /// and a PB row (the counting form cutting-planes conflict analysis
  /// can resolve with; a CNF ladder alone costs Galena its pigeonhole
  /// power on the closing UNSAT proof). Only the MOVING probe bound
  /// rides on a retractable assumption.
  void commit_upper_bound() {
    if (!ladder.ok()) return;  // the fallback path adds permanent PB rows
    const std::int64_t target = result.best_value - 1;
    if (target >= committed_ub) return;
    committed_ub = target;
    const ObjectiveLadder::Bound bound = ladder.at_most(target);
    if (bound.kind == ObjectiveLadder::Bound::Kind::Assume) {
      engine->add_clause({bound.lit});
    }
    engine->add_pb(objective_at_most(objective, target));
  }
  std::int64_t committed_ub = std::numeric_limits<std::int64_t>::max();

  OptResult finish(OptStatus status) {
    result.status = status;
    result.stats = engine->stats();
    result.agg_stats = engine->aggregated_stats();
    result.seconds = timer.seconds();
    // Surface the model over the ORIGINAL variables only; the ladder
    // auxiliaries are an implementation detail of the search.
    if (!result.model.empty()) {
      result.model.resize(static_cast<std::size_t>(formula.num_vars()));
    }
    // Status/bound consistency, enforced in one place:
    //  * Feasible PROMISES an incumbent — a budgeted exit that never found
    //    a model must degrade to Unknown, not surface garbage best_value;
    //  * a proof outcome clears the trip marker (a budget may have been
    //    configured, but it is not what ended the run);
    //  * Optimal pins the lower bound to the optimum, and an incumbent
    //    caps it (the bound can never exceed a witnessed value).
    if (result.status == OptStatus::Feasible && result.model.empty()) {
      result.status = OptStatus::Unknown;
    }
    if (result.solved()) result.tripped = BudgetTrip::None;
    if (result.status == OptStatus::Optimal) {
      result.lower_bound = result.best_value;
    } else if (!result.model.empty() &&
               result.lower_bound > result.best_value) {
      result.lower_bound = result.best_value;
    }
    result.budget_exhausted = result.tripped != BudgetTrip::None;
    return result;
  }

  /// Bisect [lo, best_value - 1] with ladder assumptions on the one
  /// engine, starting from a recorded incumbent. `lo` must be a proven
  /// lower bound; every Unsat probe raises it (and result.lower_bound)
  /// further. Returns the final status (Optimal, or Feasible once the
  /// budget trips — the incumbent and the proven bound both survive).
  OptStatus bisect(std::int64_t lo) {
    if (lo > result.lower_bound) result.lower_bound = lo;
    std::int64_t hi = result.best_value - 1;
    while (lo <= hi) {
      const BudgetTrip trip = ledger.trip();
      if (trip != BudgetTrip::None) {
        result.tripped = trip;
        return OptStatus::Feasible;
      }
      const std::int64_t mid = lo + (hi - lo) / 2;
      const ObjectiveLadder::Bound bound = ladder.at_most(mid);
      if (bound.kind == ObjectiveLadder::Bound::Kind::Infeasible) {
        lo = mid + 1;  // below the objective's floor (defensive)
        continue;
      }
      std::span<const Lit> assume;
      if (bound.kind == ObjectiveLadder::Bound::Kind::Assume) {
        assume = {&bound.lit, 1};
      }
      const SolveResult r = probe(assume);
      if (r == SolveResult::Sat) {
        record_incumbent();
        hi = result.best_value - 1;
      } else if (r == SolveResult::Unsat) {
        // No model at or below mid: the optimum is proven > mid.
        lo = mid + 1;
        if (lo > result.lower_bound) result.lower_bound = lo;
      } else {
        return OptStatus::Feasible;  // probe() recorded the trip
      }
    }
    return OptStatus::Optimal;
  }

  /// Linear strengthening from a recorded incumbent: repeatedly assume
  /// objective <= best - 1 until UNSAT. Used by SearchStrategy::Linear
  /// and as the ladder-less fallback (permanent rows) for every strategy.
  OptStatus strengthen() {
    for (;;) {
      const std::int64_t target = result.best_value - 1;
      if (ladder.ok()) {
        const ObjectiveLadder::Bound bound = ladder.at_most(target);
        if (bound.kind == ObjectiveLadder::Bound::Kind::Infeasible) {
          return OptStatus::Optimal;  // incumbent sits on the floor
        }
        std::span<const Lit> assume;
        if (bound.kind == ObjectiveLadder::Bound::Kind::Assume) {
          assume = {&bound.lit, 1};
        }
        const SolveResult r = probe(assume);
        if (r == SolveResult::Sat) {
          record_incumbent();
          continue;
        }
        return r == SolveResult::Unsat ? OptStatus::Optimal
                                       : OptStatus::Feasible;
      }
      // Ladder refused (adversarial weight pattern): strengthen with
      // permanent PB rows on the same persistent engine — still zero
      // rebuilds, just no retraction, so Binary/CoreGuided degrade to
      // linear strengthening here.
      engine->add_pb(objective_at_most(objective, target));
      const SolveResult r = probe();
      if (r == SolveResult::Sat) {
        record_incumbent();
        continue;
      }
      return r == SolveResult::Unsat ? OptStatus::Optimal
                                     : OptStatus::Feasible;
    }
  }
};

}  // namespace

const char* search_strategy_name(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::Linear: return "linear";
    case SearchStrategy::Binary: return "binary";
    case SearchStrategy::CoreGuided: return "core";
  }
  return "?";
}

OptResult solve_decision(const Formula& formula, const SolverConfig& config,
                         const SolveBudget& budget) {
  OptResult result;
  Timer timer;
  const std::unique_ptr<SolverEngine> solver =
      make_solver_engine(formula, config);
  const SolveResult sat = solver->solve(budget);
  result.probes = 1;
  result.stats = solver->stats();
  result.agg_stats = solver->aggregated_stats();
  result.seconds = timer.seconds();
  switch (sat) {
    case SolveResult::Sat:
      result.status = OptStatus::Optimal;
      result.model = solver->model();
      if (formula.objective()) {
        result.best_value = formula.objective()->value(result.model);
        result.status = OptStatus::Feasible;  // value not proved minimal
      }
      return result;
    case SolveResult::Unsat:
      result.status = OptStatus::Infeasible;
      return result;
    case SolveResult::Unknown:
      // A budgeted exit with no model is Unknown, full stop — never
      // Feasible with an uninitialized bound.
      result.status = OptStatus::Unknown;
      result.tripped = solver->last_trip();
      result.budget_exhausted = true;
      return result;
  }
  return result;
}

OptResult minimize(const Formula& formula, const SolverConfig& config,
                   const SolveBudget& budget, SearchStrategy strategy,
                   std::int64_t lower_hint) {
  if (!formula.objective()) return solve_decision(formula, config, budget);
  MinimizeRun run(formula, config, budget);

  // Every strategy opens with an unconstrained probe: Infeasible is
  // decided once, and the incumbent immediately commits the permanent
  // upper bound that all later probes benefit from.
  const SolveResult first = run.probe();
  if (first == SolveResult::Unsat) return run.finish(OptStatus::Infeasible);
  if (first == SolveResult::Unknown) return run.finish(OptStatus::Unknown);
  run.record_incumbent();

  std::int64_t lb = run.ladder.min_value();
  // Core mining needs the committed incumbent bound (ladder path) for two
  // reasons: the mined lb feeds the ladder bisection only, and without
  // the bound a mining Sat model may be WORSE than the incumbent — the
  // bound guarantees every later model strictly improves, which is what
  // lets record_incumbent overwrite unconditionally.
  if (strategy == SearchStrategy::CoreGuided && run.ladder.ok()) {
    // Disjoint-core mining: assume every objective term contributes
    // nothing; every UNSAT answer's failed-assumption core names terms
    // that cannot all stay off, lifting the lower bound by the core's
    // minimum weight. Mined cores are disjoint (their assumptions
    // retire), so the lifts add up soundly — and because mining runs
    // under the committed incumbent bound, the lifted lb is valid for
    // the bound-restricted problem, whose optimum is the original one.
    std::vector<Lit> assumptions;
    std::map<int, std::int64_t> weight_by_code;
    for (const ObjectiveLadder::SoftTerm& soft : run.ladder.soft_terms()) {
      assumptions.push_back(soft.assume);
      weight_by_code[soft.assume.code()] = soft.weight;
    }
    std::int64_t lifted = 0;
    while (!assumptions.empty()) {
      const SolveResult r = run.probe(assumptions);
      if (r == SolveResult::Unknown) break;  // budget tripped: bisect reports
      if (r == SolveResult::Sat) {
        // A model with every remaining term off — often far below the
        // incumbent; take it before switching to the bound search.
        run.record_incumbent();
        break;
      }
      const std::span<const Lit> core = run.engine->last_core();
      if (core.empty()) {
        // Root-level Unsat: with the incumbent bound committed this
        // means no model beats the incumbent — it is optimal.
        return run.finish(OptStatus::Optimal);
      }
      std::int64_t min_weight = 0;
      for (const Lit l : core) {
        const auto it = weight_by_code.find(l.code());
        assert(it != weight_by_code.end());  // cores are assumption subsets
        if (it == weight_by_code.end()) continue;
        if (min_weight == 0 || it->second < min_weight) {
          min_weight = it->second;
        }
      }
      lifted += min_weight;
      const std::size_t before = assumptions.size();
      std::erase_if(assumptions, [&](Lit a) {
        return std::find(core.begin(), core.end(), a) != core.end();
      });
      if (assumptions.size() == before) {
        // Defensive: a core that retires no assumption would loop
        // forever; drop to the bound search instead.
        break;
      }
    }
    lb += lifted;
    // Mined cores are proofs: even if the budget trips before bisection,
    // the lifted floor is a sound bound to hand back.
    if (lb > run.result.lower_bound) run.result.lower_bound = lb;
  }

  if (strategy != SearchStrategy::Linear && run.ladder.ok()) {
    return run.finish(run.bisect(std::max(lower_hint, lb)));
  }
  return run.finish(run.strengthen());
}

OptResult minimize_linear(const Formula& formula, const SolverConfig& config,
                          const SolveBudget& budget) {
  return minimize(formula, config, budget, SearchStrategy::Linear);
}

OptResult minimize_binary(const Formula& formula, const SolverConfig& config,
                          const SolveBudget& budget, std::int64_t lower_hint) {
  return minimize(formula, config, budget, SearchStrategy::Binary,
                  lower_hint);
}

}  // namespace symcolor
