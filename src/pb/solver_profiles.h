#pragma once
// Named solver personalities mirroring the paper's experimental line-up.
//
// The paper runs four solvers: the academic 0-1 ILP solvers PBS (original),
// PBS II, Galena and Pueblo — all DLL/CDCL-based, differing in learning and
// search heuristics — plus the commercial generic ILP solver CPLEX. We
// reproduce the academic solvers as configurations of one CDCL-PB engine
// (src/sat) whose knobs cover the axes those solvers differ on (restart
// policy, activity decay, learned-clause minimization, diversification),
// and CPLEX as a separate learning-free branch-and-bound (generic_ilp).
// DESIGN.md documents this substitution.

#include <string>

#include "sat/cdcl.h"

namespace symcolor {

enum class SolverKind {
  PbsOriginal,  ///< PBS (ICCAD'02): conservative geometric restarts, no
                ///< learned-clause minimization.
  PbsII,        ///< PBS II with PB learning: the reference configuration.
  Galena,       ///< Cutting-planes PB learning: geometric restarts,
                ///< stronger decay, PbAnalysis::CuttingPlanes.
  Pueblo,       ///< hybrid-learning flavour: aggressive Luby restarts.
  GenericIlp,   ///< CPLEX stand-in: see generic_ilp.h.
};

/// Engine configuration for a CDCL-based personality. Must not be called
/// with SolverKind::GenericIlp (which does not run on the CDCL engine).
SolverConfig profile_config(SolverKind kind);

/// Display name used in benchmark tables ("PBS II", "CPLEX*", ...).
std::string solver_name(SolverKind kind);

/// All personalities in the paper's Table 3/4 column order.
inline constexpr SolverKind kTableSolvers[] = {
    SolverKind::PbsII, SolverKind::GenericIlp, SolverKind::Galena,
    SolverKind::Pueblo};

}  // namespace symcolor
