#pragma once
// Boolean optimization (0-1 ILP) on top of the solve pipeline.
//
// The paper's solvers minimize a linear objective over a CNF+PB formula.
// We implement the standard strengthening loop ("linear search" in the
// paper's Section 4.1 terminology): solve; on SAT with objective value W,
// add  objective <= W - 1  and re-solve with all learned clauses kept;
// repeat until UNSAT, which proves the last model optimal. A binary-search
// variant (fresh solver per probe) backs the search-strategy ablation.
//
// Both loops drive an abstract SolverEngine obtained from
// make_solver_engine, never a concrete solver: setting
// SolverConfig::portfolio_threads > 1 swaps the sequential CDCL backend
// for the clone-based parallel portfolio (sat/portfolio.h) without the
// loops changing shape, and the optima are identical at any thread count
// (the strengthening loops are exact regardless of which model each SAT
// call happens to surface).

#include <cstdint>
#include <vector>

#include "cnf/formula.h"
#include "sat/cdcl.h"
#include "util/timer.h"

namespace symcolor {

enum class OptStatus {
  Optimal,     ///< best_value proved optimal
  Feasible,    ///< timeout with an incumbent; best_value is an upper bound
  Infeasible,  ///< constraints unsatisfiable
  Unknown,     ///< timeout before any model was found
};

struct OptResult {
  OptStatus status = OptStatus::Unknown;
  std::int64_t best_value = 0;
  std::vector<LBool> model;  ///< empty unless a model was found
  SolverStats stats;
  double seconds = 0.0;
  [[nodiscard]] bool solved() const noexcept {
    return status == OptStatus::Optimal || status == OptStatus::Infeasible;
  }
};

/// Decision query: satisfiability only, objective ignored.
OptResult solve_decision(const Formula& formula, const SolverConfig& config,
                         const Deadline& deadline);

/// Minimize the formula's objective by iterative strengthening. A formula
/// without an objective degenerates to solve_decision.
OptResult minimize_linear(const Formula& formula, const SolverConfig& config,
                          const Deadline& deadline);

/// Minimize by binary search on the objective value in [lower_hint, first
/// incumbent]. Rebuilds the solver per probe; used by the ablation bench.
OptResult minimize_binary(const Formula& formula, const SolverConfig& config,
                          const Deadline& deadline,
                          std::int64_t lower_hint = 0);

}  // namespace symcolor
