#pragma once
// Boolean optimization (0-1 ILP) on top of the solve pipeline —
// assumption-native: every search strategy drives ONE persistent
// SolverEngine whose learned state survives all probes.
//
// The paper's solvers minimize a linear objective over a CNF+PB formula;
// its Section 4.1 sketches two search procedures over the objective
// value. We implement three, all on the same machinery — an objective
// selector ladder (cnf/objective_ladder.h) built once next to the
// formula, which turns "objective <= W" into a single retractable
// assumption:
//
//   * SearchStrategy::Linear — iterative strengthening, SAT-to-UNSAT:
//     solve; on SAT with value W re-solve assuming objective <= W-1;
//     repeat until UNSAT, proving the last model optimal. Each probe
//     tightens the previous one, so the assumption ladder loses nothing
//     over the old permanent-row strengthening — and keeps the engine
//     reusable afterwards.
//   * SearchStrategy::Binary — bisect [lower_hint, first incumbent - 1].
//     Historically this rebuilt a fresh solver per probe because a
//     permanent "objective <= mid" row cannot be retracted when the probe
//     answers UNSAT; with ladder assumptions the SAME engine serves both
//     directions of the search and every learned clause carries over
//     (zero rebuilds — see the ROADMAP PR 5 table for the conflict
//     counts this saves).
//   * SearchStrategy::CoreGuided — MaxSAT-style lower-bound lifting:
//     assume every objective term false and mine disjoint UNSAT cores
//     (SolverEngine::last_core()); each core proves some term in it must
//     be true and lifts the lower bound by its minimum weight, after
//     which a ladder-assumption binary search closes the (often already
//     tight) [lb, ub] gap. UNSAT-heavy workloads — MaxSAT-shaped
//     instances where the optimum sits far below the first incumbent —
//     converge from below instead of crawling down from above.
//
// All strategies reach the same optimum; they differ in probe count and
// in which side of the bound their probes are easy on. A formula without
// an objective degenerates to a single decision query under any strategy.
//
// Every loop drives an abstract SolverEngine obtained from
// make_solver_engine, never a concrete solver: setting
// SolverConfig::portfolio_threads > 1 swaps the sequential CDCL backend
// for the clone-based parallel portfolio (sat/portfolio.h) without the
// loops changing shape, and the optima are identical at any thread count.

#include <cstdint>
#include <vector>

#include "cnf/formula.h"
#include "sat/cdcl.h"
#include "util/budget.h"
#include "util/timer.h"

namespace symcolor {

/// Objective search strategy, shared by every optimization caller (the
/// native PB pipeline in coloring/exact_colorer, the SAT-loop colorer in
/// coloring/cnf_coloring, the CLI's --search flag).
enum class SearchStrategy { Linear, Binary, CoreGuided };

const char* search_strategy_name(SearchStrategy strategy);

enum class OptStatus {
  Optimal,     ///< best_value proved optimal
  Feasible,    ///< budget ran out with an incumbent; best_value is an
               ///< upper bound (the model is always non-empty here)
  Infeasible,  ///< constraints unsatisfiable
  Unknown,     ///< budget ran out before any model was found
};

struct OptResult {
  OptStatus status = OptStatus::Unknown;
  std::int64_t best_value = 0;  ///< meaningless unless `model` is non-empty
  std::vector<LBool> model;  ///< empty unless a model was found; indexed by
                             ///< the ORIGINAL formula's variables (ladder
                             ///< auxiliaries are stripped)
  SolverStats stats;         ///< cumulative across all probes (one engine)
  /// All-workers view: the engine's aggregated_stats() — equal to `stats`
  /// on a sequential backend, the sum over every portfolio/cube worker on
  /// a parallel one (the honest cost of the run).
  SolverStats agg_stats;
  /// Number of solve() calls the search issued — all against the same
  /// persistent engine; the strategy comparison statistic.
  int probes = 0;
  double seconds = 0.0;
  /// Tightest PROVEN lower bound on the objective from minimize() runs:
  /// the ladder floor, lifted by core-guided mining and by every Unsat
  /// bisection probe. Equals best_value when status is Optimal; on a
  /// budgeted Feasible exit the optimum lies in [lower_bound, best_value].
  /// Not meaningful for pure decision queries.
  std::int64_t lower_bound = 0;
  /// Which resource bound cut the run short (None on Optimal/Infeasible).
  BudgetTrip tripped = BudgetTrip::None;
  /// True iff the run ended on a budget rather than a proof — i.e. status
  /// is Feasible or Unknown because `tripped` fired.
  bool budget_exhausted = false;
  [[nodiscard]] bool solved() const noexcept {
    return status == OptStatus::Optimal || status == OptStatus::Infeasible;
  }
};

/// Decision query: satisfiability only, objective ignored. A budgeted
/// exit reports Unknown with `tripped` set (never Feasible with garbage).
OptResult solve_decision(const Formula& formula, const SolverConfig& config,
                         const SolveBudget& budget);

/// Minimize the formula's objective with the given strategy on one
/// persistent engine. `lower_hint` seeds the lower bound of the Binary
/// and CoreGuided searches (ignored by Linear); it must itself be a
/// proven bound — it is folded into OptResult::lower_bound. The budget
/// covers the WHOLE run: its conflict/propagation caps are spread across
/// probes by a BudgetLedger, and interrupt()/deadline preempt between and
/// inside probes. Degradation contract: a budgeted exit keeps the best
/// incumbent (status Feasible) and the tightest proven lower bound; only
/// a run with no incumbent at all reports Unknown.
OptResult minimize(const Formula& formula, const SolverConfig& config,
                   const SolveBudget& budget, SearchStrategy strategy,
                   std::int64_t lower_hint = 0);

/// minimize() with SearchStrategy::Linear.
OptResult minimize_linear(const Formula& formula, const SolverConfig& config,
                          const SolveBudget& budget);

/// minimize() with SearchStrategy::Binary.
OptResult minimize_binary(const Formula& formula, const SolverConfig& config,
                          const SolveBudget& budget,
                          std::int64_t lower_hint = 0);

}  // namespace symcolor
