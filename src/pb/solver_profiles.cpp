#include "pb/solver_profiles.h"

#include <stdexcept>

namespace symcolor {

SolverConfig profile_config(SolverKind kind) {
  SolverConfig config;
  switch (kind) {
    case SolverKind::PbsOriginal:
      config.restart_scheme = RestartScheme::Geometric;
      config.restart_base = 200;
      config.restart_growth = 2.0;
      config.var_decay = 0.95;
      config.minimize_learned = false;
      config.random_seed = 0x1B5;
      return config;
    case SolverKind::PbsII:
      config.restart_scheme = RestartScheme::Luby;
      config.restart_base = 100;
      config.var_decay = 0.95;
      config.minimize_learned = true;
      config.random_seed = 0x1B52;
      return config;
    case SolverKind::Galena:
      config.restart_scheme = RestartScheme::Geometric;
      config.restart_base = 100;
      config.restart_growth = 1.5;
      config.var_decay = 0.92;
      config.minimize_learned = true;
      config.random_branch_freq = 0.02;
      config.random_seed = 0x6A1E;
      // Galena's defining feature: native pseudo-Boolean learning via
      // cutting planes rather than weakening PB conflicts to clauses.
      config.pb_analysis = PbAnalysis::CuttingPlanes;
      return config;
    case SolverKind::Pueblo:
      config.restart_scheme = RestartScheme::Luby;
      config.restart_base = 32;
      config.var_decay = 0.98;
      config.minimize_learned = true;
      config.random_branch_freq = 0.01;
      config.random_seed = 0x9EB1;
      return config;
    case SolverKind::GenericIlp:
      break;
  }
  throw std::invalid_argument("profile_config: not a CDCL personality");
}

std::string solver_name(SolverKind kind) {
  switch (kind) {
    case SolverKind::PbsOriginal: return "PBS";
    case SolverKind::PbsII: return "PBS II";
    case SolverKind::Galena: return "Galena";
    case SolverKind::Pueblo: return "Pueblo";
    case SolverKind::GenericIlp: return "GenericILP";
  }
  return "?";
}

}  // namespace symcolor
