#include "graph/orderings.h"

#include <algorithm>
#include <numeric>
#include <queue>

namespace symcolor {

std::vector<int> natural_order(const Graph& graph) {
  std::vector<int> order(static_cast<std::size_t>(graph.num_vertices()));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<int> degree_order(const Graph& graph) {
  std::vector<int> order = natural_order(graph);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return graph.degree(a) > graph.degree(b);
  });
  return order;
}

std::vector<int> degeneracy_order(const Graph& graph, int* degeneracy_out) {
  const int n = graph.num_vertices();
  std::vector<int> remaining_degree(static_cast<std::size_t>(n));
  std::vector<char> removed(static_cast<std::size_t>(n), 0);
  // Bucket queue over degrees for the classic O(n + m) sweep.
  std::vector<std::vector<int>> buckets(static_cast<std::size_t>(n) + 1);
  for (int v = 0; v < n; ++v) {
    remaining_degree[static_cast<std::size_t>(v)] = graph.degree(v);
    buckets[static_cast<std::size_t>(graph.degree(v))].push_back(v);
  }

  std::vector<int> reverse_order;
  reverse_order.reserve(static_cast<std::size_t>(n));
  int max_min_degree = 0;
  int cursor = 0;
  for (int step = 0; step < n; ++step) {
    // Find the lowest non-empty bucket (cursor can decrease by at most
    // one per removal, so track it and rewind a step each time).
    cursor = std::max(0, cursor - 1);
    int v = -1;
    while (v < 0) {
      auto& bucket = buckets[static_cast<std::size_t>(cursor)];
      while (!bucket.empty()) {
        const int candidate = bucket.back();
        bucket.pop_back();
        if (!removed[static_cast<std::size_t>(candidate)] &&
            remaining_degree[static_cast<std::size_t>(candidate)] == cursor) {
          v = candidate;
          break;
        }
      }
      if (v < 0) ++cursor;
    }
    max_min_degree = std::max(max_min_degree, cursor);
    removed[static_cast<std::size_t>(v)] = 1;
    reverse_order.push_back(v);
    for (const int u : graph.neighbors(v)) {
      if (removed[static_cast<std::size_t>(u)]) continue;
      const int d = --remaining_degree[static_cast<std::size_t>(u)];
      buckets[static_cast<std::size_t>(d)].push_back(u);
    }
  }
  if (degeneracy_out != nullptr) *degeneracy_out = max_min_degree;
  // Smallest-last: the removal sequence reversed.
  std::reverse(reverse_order.begin(), reverse_order.end());
  return reverse_order;
}

int degeneracy(const Graph& graph) {
  int d = 0;
  (void)degeneracy_order(graph, &d);
  return d;
}

std::vector<int> bfs_order(const Graph& graph, int root) {
  const int n = graph.num_vertices();
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::queue<int> queue;
  auto push = [&](int v) {
    if (!seen[static_cast<std::size_t>(v)]) {
      seen[static_cast<std::size_t>(v)] = 1;
      queue.push(v);
    }
  };
  if (n > 0) push(std::clamp(root, 0, n - 1));
  for (int v = 0; v <= n; ++v) {
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      order.push_back(u);
      for (const int w : graph.neighbors(u)) push(w);
    }
    if (v < n) push(v);  // next component seed
  }
  return order;
}

int connected_components(const Graph& graph, std::vector<int>* component) {
  const int n = graph.num_vertices();
  std::vector<int> id(static_cast<std::size_t>(n), -1);
  int count = 0;
  for (int start = 0; start < n; ++start) {
    if (id[static_cast<std::size_t>(start)] >= 0) continue;
    std::queue<int> queue;
    queue.push(start);
    id[static_cast<std::size_t>(start)] = count;
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      for (const int w : graph.neighbors(u)) {
        if (id[static_cast<std::size_t>(w)] < 0) {
          id[static_cast<std::size_t>(w)] = count;
          queue.push(w);
        }
      }
    }
    ++count;
  }
  if (component != nullptr) *component = std::move(id);
  return count;
}

bool is_bipartite(const Graph& graph, std::vector<int>* sides) {
  const int n = graph.num_vertices();
  std::vector<int> side(static_cast<std::size_t>(n), -1);
  for (int start = 0; start < n; ++start) {
    if (side[static_cast<std::size_t>(start)] >= 0) continue;
    side[static_cast<std::size_t>(start)] = 0;
    std::queue<int> queue;
    queue.push(start);
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      for (const int w : graph.neighbors(u)) {
        if (side[static_cast<std::size_t>(w)] < 0) {
          side[static_cast<std::size_t>(w)] =
              1 - side[static_cast<std::size_t>(u)];
          queue.push(w);
        } else if (side[static_cast<std::size_t>(w)] ==
                   side[static_cast<std::size_t>(u)]) {
          return false;
        }
      }
    }
  }
  if (sides != nullptr) *sides = std::move(side);
  return true;
}

}  // namespace symcolor
