#include "graph/clique.h"

#include <algorithm>
#include <numeric>

namespace symcolor {
namespace {

/// Branch-and-bound state for max_clique.
class CliqueSearch {
 public:
  CliqueSearch(const Graph& graph, const Deadline& deadline)
      : graph_(graph), deadline_(deadline) {}

  std::vector<int> run(std::vector<int> seed, bool* proved_optimal) {
    best_ = std::move(seed);
    std::vector<int> candidates(static_cast<std::size_t>(graph_.num_vertices()));
    std::iota(candidates.begin(), candidates.end(), 0);
    current_.clear();
    complete_ = true;
    expand(candidates);
    if (proved_optimal != nullptr) *proved_optimal = complete_;
    return best_;
  }

 private:
  // Greedy coloring of the candidate set; returns per-candidate color
  // numbers (1-based). max color bounds the clique extension size.
  std::vector<int> color_bound(const std::vector<int>& candidates) const {
    std::vector<int> color(candidates.size(), 0);
    std::vector<std::vector<int>> classes;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const int v = candidates[i];
      std::size_t c = 0;
      for (; c < classes.size(); ++c) {
        bool conflict = false;
        for (int u : classes[c]) {
          if (graph_.has_edge(u, v)) {
            conflict = true;
            break;
          }
        }
        if (!conflict) break;
      }
      if (c == classes.size()) classes.emplace_back();
      classes[c].push_back(v);
      color[i] = static_cast<int>(c) + 1;
    }
    return color;
  }

  void expand(std::vector<int>& candidates) {
    if (deadline_.expired()) {
      complete_ = false;
      return;
    }
    // Order candidates so higher colors (harder vertices) are tried first,
    // and prune with |current| + color(v) <= |best|.
    std::vector<int> color = color_bound(candidates);
    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return color[a] < color[b]; });

    std::vector<int> sorted(candidates.size());
    std::vector<int> sorted_color(candidates.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      sorted[i] = candidates[order[i]];
      sorted_color[i] = color[order[i]];
    }

    for (std::size_t i = sorted.size(); i-- > 0;) {
      if (current_.size() + static_cast<std::size_t>(sorted_color[i]) <=
          best_.size()) {
        return;  // bound: no extension can beat the incumbent
      }
      const int v = sorted[i];
      current_.push_back(v);
      std::vector<int> next;
      for (std::size_t j = 0; j < i; ++j) {
        if (graph_.has_edge(sorted[j], v)) next.push_back(sorted[j]);
      }
      if (next.empty()) {
        if (current_.size() > best_.size()) best_ = current_;
      } else {
        expand(next);
      }
      current_.pop_back();
    }
  }

  const Graph& graph_;
  const Deadline& deadline_;
  std::vector<int> best_;
  std::vector<int> current_;
  bool complete_ = true;
};

}  // namespace

std::vector<int> greedy_clique(const Graph& graph) {
  const int n = graph.num_vertices();
  if (n == 0) return {};
  std::vector<int> by_degree(static_cast<std::size_t>(n));
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::sort(by_degree.begin(), by_degree.end(), [&](int a, int b) {
    return graph.degree(a) != graph.degree(b) ? graph.degree(a) > graph.degree(b)
                                              : a < b;
  });

  std::vector<int> best;
  const int restarts = std::min(n, 16);
  for (int r = 0; r < restarts; ++r) {
    std::vector<int> clique{by_degree[static_cast<std::size_t>(r)]};
    for (int v : by_degree) {
      bool compatible = true;
      for (int u : clique) {
        if (u == v || !graph.has_edge(u, v)) {
          compatible = false;
          break;
        }
      }
      if (compatible) clique.push_back(v);
    }
    if (clique.size() > best.size()) best = std::move(clique);
  }
  std::sort(best.begin(), best.end());
  return best;
}

std::vector<int> max_clique(const Graph& graph, const Deadline& deadline,
                            bool* proved_optimal) {
  CliqueSearch search(graph, deadline);
  return search.run(greedy_clique(graph), proved_optimal);
}

namespace {

/// Bron-Kerbosch with pivoting on sorted vectors.
class CliqueEnumerator {
 public:
  CliqueEnumerator(const Graph& graph, std::size_t max_count)
      : graph_(graph), max_count_(max_count) {}

  std::vector<std::vector<int>> run(bool* truncated) {
    std::vector<int> candidates(static_cast<std::size_t>(graph_.num_vertices()));
    std::iota(candidates.begin(), candidates.end(), 0);
    std::vector<int> current;
    std::vector<int> excluded;
    expand(current, std::move(candidates), std::move(excluded));
    if (truncated != nullptr) *truncated = truncated_;
    return std::move(results_);
  }

 private:
  [[nodiscard]] bool full() const {
    return max_count_ != 0 && results_.size() >= max_count_;
  }

  std::vector<int> intersect_neighbors(const std::vector<int>& set, int v) {
    std::vector<int> out;
    for (const int u : set) {
      if (graph_.has_edge(u, v)) out.push_back(u);
    }
    return out;
  }

  void expand(std::vector<int>& current, std::vector<int> candidates,
              std::vector<int> excluded) {
    if (full()) {
      truncated_ = true;
      return;
    }
    if (candidates.empty() && excluded.empty()) {
      results_.push_back(current);
      std::sort(results_.back().begin(), results_.back().end());
      return;
    }
    // Pivot: the vertex (from candidates or excluded) with the most
    // neighbours among the candidates minimizes branching.
    int pivot = -1;
    int pivot_degree = -1;
    for (const std::vector<int>* pool : {&candidates, &excluded}) {
      for (const int u : *pool) {
        int degree = 0;
        for (const int w : candidates) {
          if (graph_.has_edge(u, w)) ++degree;
        }
        if (degree > pivot_degree) {
          pivot_degree = degree;
          pivot = u;
        }
      }
    }
    std::vector<int> branch_vertices;
    for (const int v : candidates) {
      if (pivot < 0 || !graph_.has_edge(pivot, v)) branch_vertices.push_back(v);
    }
    for (const int v : branch_vertices) {
      if (full()) {
        truncated_ = true;
        return;
      }
      current.push_back(v);
      expand(current, intersect_neighbors(candidates, v),
             intersect_neighbors(excluded, v));
      current.pop_back();
      candidates.erase(std::find(candidates.begin(), candidates.end(), v));
      excluded.push_back(v);
    }
  }

  const Graph& graph_;
  std::size_t max_count_;
  std::vector<std::vector<int>> results_;
  bool truncated_ = false;
};

}  // namespace

std::vector<std::vector<int>> maximal_cliques(const Graph& graph,
                                              std::size_t max_count,
                                              bool* truncated) {
  CliqueEnumerator enumerator(graph, max_count);
  return enumerator.run(truncated);
}

std::vector<std::vector<int>> maximal_independent_sets(const Graph& graph,
                                                       std::size_t max_count,
                                                       bool* truncated) {
  return maximal_cliques(graph.complement(), max_count, truncated);
}

bool is_clique(const Graph& graph, const std::vector<int>& vertices) {
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      if (!graph.has_edge(vertices[i], vertices[j])) return false;
    }
  }
  return true;
}

}  // namespace symcolor
