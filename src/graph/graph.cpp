#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

namespace symcolor {

void Graph::reset(int num_vertices) {
  if (num_vertices < 0) throw std::invalid_argument("negative vertex count");
  adjacency_.assign(static_cast<std::size_t>(num_vertices), {});
  edges_.clear();
  finalized_ = true;
}

void Graph::add_edge(int u, int v) {
  if (u < 0 || v < 0 || u >= num_vertices() || v >= num_vertices()) {
    throw std::out_of_range("edge endpoint out of range");
  }
  if (u == v) return;  // ignore self-loops: they are uncolorable artifacts
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v});
  finalized_ = false;
}

void Graph::finalize() {
  if (finalized_) return;
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  for (auto& adj : adjacency_) adj.clear();
  for (const Edge& e : edges_) {
    adjacency_[static_cast<std::size_t>(e.u)].push_back(e.v);
    adjacency_[static_cast<std::size_t>(e.v)].push_back(e.u);
  }
  for (auto& adj : adjacency_) std::sort(adj.begin(), adj.end());
  finalized_ = true;
}

std::span<const int> Graph::neighbors(int v) const {
  assert(finalized_);
  return adjacency_.at(static_cast<std::size_t>(v));
}

int Graph::degree(int v) const {
  assert(finalized_);
  return static_cast<int>(adjacency_.at(static_cast<std::size_t>(v)).size());
}

bool Graph::has_edge(int u, int v) const {
  assert(finalized_);
  if (u == v) return false;
  const auto& adj = adjacency_.at(static_cast<std::size_t>(u));
  return std::binary_search(adj.begin(), adj.end(), v);
}

int Graph::max_degree() const {
  assert(finalized_);
  int best = 0;
  for (const auto& adj : adjacency_) {
    best = std::max(best, static_cast<int>(adj.size()));
  }
  return best;
}

double Graph::density() const {
  const double n = num_vertices();
  if (n < 2) return 0.0;
  return static_cast<double>(num_edges()) / (n * (n - 1.0) / 2.0);
}

Graph Graph::relabeled(std::span<const int> perm) const {
  if (static_cast<int>(perm.size()) != num_vertices()) {
    throw std::invalid_argument("permutation size mismatch");
  }
  Graph out(num_vertices());
  for (const Edge& e : edges_) {
    out.add_edge(perm[static_cast<std::size_t>(e.u)],
                 perm[static_cast<std::size_t>(e.v)]);
  }
  out.finalize();
  return out;
}

Graph Graph::complement() const {
  assert(finalized_);
  const int n = num_vertices();
  Graph out(n);
  for (int u = 0; u < n; ++u) {
    const auto& adj = adjacency_[static_cast<std::size_t>(u)];
    std::size_t k = 0;
    for (int v = u + 1; v < n; ++v) {
      while (k < adj.size() && adj[k] < v) ++k;
      const bool adjacent = k < adj.size() && adj[k] == v;
      if (!adjacent) out.add_edge(u, v);
    }
  }
  out.finalize();
  return out;
}

bool Graph::is_proper_coloring(std::span<const int> colors) const {
  if (static_cast<int>(colors.size()) != num_vertices()) return false;
  for (const Edge& e : edges_) {
    if (colors[static_cast<std::size_t>(e.u)] ==
        colors[static_cast<std::size_t>(e.v)]) {
      return false;
    }
  }
  return true;
}

int Graph::count_colors(std::span<const int> colors) {
  std::set<int> used(colors.begin(), colors.end());
  return static_cast<int>(used.size());
}

}  // namespace symcolor
