#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

namespace symcolor {

void Graph::reset(int num_vertices) {
  if (num_vertices < 0) throw std::invalid_argument("negative vertex count");
  num_vertices_ = num_vertices;
  offsets_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  neighbors_.clear();
  edges_.clear();
  finalized_ = true;
}

void Graph::add_edge(int u, int v) {
  if (u < 0 || v < 0 || u >= num_vertices() || v >= num_vertices()) {
    throw std::out_of_range("edge endpoint out of range");
  }
  if (u == v) return;  // ignore self-loops: they are uncolorable artifacts
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v});
  finalized_ = false;
}

void Graph::finalize() {
  if (finalized_) return;
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  // CSR build: count degrees, prefix-sum into offsets, then fill. Edges
  // are sorted by (u, v), so each row comes out sorted ascending: for a
  // vertex w, partners y < w are appended while scanning u = y (ascending
  // y), then partners x > w while scanning u = w (ascending x).
  const auto n = static_cast<std::size_t>(num_vertices_);
  offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++offsets_[static_cast<std::size_t>(e.u) + 1];
    ++offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  neighbors_.resize(2 * edges_.size());
  std::vector<int> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges_) {
    neighbors_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.u)]++)] = e.v;
    neighbors_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.v)]++)] = e.u;
  }
  finalized_ = true;
}

void Graph::check_vertex(int v) const {
  if (v < 0 || v >= num_vertices_) {
    throw std::out_of_range("vertex out of range");
  }
}

std::span<const int> Graph::neighbors(int v) const {
  assert(finalized_);
  check_vertex(v);
  const auto begin = static_cast<std::size_t>(
      offsets_[static_cast<std::size_t>(v)]);
  const auto end = static_cast<std::size_t>(
      offsets_[static_cast<std::size_t>(v) + 1]);
  return {neighbors_.data() + begin, end - begin};
}

int Graph::degree(int v) const {
  assert(finalized_);
  check_vertex(v);
  return offsets_[static_cast<std::size_t>(v) + 1] -
         offsets_[static_cast<std::size_t>(v)];
}

bool Graph::has_edge(int u, int v) const {
  assert(finalized_);
  check_vertex(v);
  if (u == v) return false;
  const std::span<const int> adj = neighbors(u);  // range-checks u
  return std::binary_search(adj.begin(), adj.end(), v);
}

int Graph::max_degree() const {
  assert(finalized_);
  int best = 0;
  for (int v = 0; v < num_vertices_; ++v) {
    best = std::max(best, offsets_[static_cast<std::size_t>(v) + 1] -
                              offsets_[static_cast<std::size_t>(v)]);
  }
  return best;
}

double Graph::density() const {
  const double n = num_vertices();
  if (n < 2) return 0.0;
  return static_cast<double>(num_edges()) / (n * (n - 1.0) / 2.0);
}

Graph Graph::relabeled(std::span<const int> perm) const {
  if (static_cast<int>(perm.size()) != num_vertices()) {
    throw std::invalid_argument("permutation size mismatch");
  }
  Graph out(num_vertices());
  for (const Edge& e : edges_) {
    out.add_edge(perm[static_cast<std::size_t>(e.u)],
                 perm[static_cast<std::size_t>(e.v)]);
  }
  out.finalize();
  return out;
}

Graph Graph::complement() const {
  assert(finalized_);
  const int n = num_vertices();
  Graph out(n);
  for (int u = 0; u < n; ++u) {
    const std::span<const int> adj = neighbors(u);
    std::size_t k = 0;
    for (int v = u + 1; v < n; ++v) {
      while (k < adj.size() && adj[k] < v) ++k;
      const bool adjacent = k < adj.size() && adj[k] == v;
      if (!adjacent) out.add_edge(u, v);
    }
  }
  out.finalize();
  return out;
}

bool Graph::is_proper_coloring(std::span<const int> colors) const {
  if (static_cast<int>(colors.size()) != num_vertices()) return false;
  for (const Edge& e : edges_) {
    if (colors[static_cast<std::size_t>(e.u)] ==
        colors[static_cast<std::size_t>(e.v)]) {
      return false;
    }
  }
  return true;
}

int Graph::count_colors(std::span<const int> colors) {
  std::set<int> used(colors.begin(), colors.end());
  return static_cast<int>(used.size());
}

}  // namespace symcolor
