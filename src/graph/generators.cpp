#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

#include "util/rng.h"

namespace symcolor {
namespace {

/// Canonical undirected pair key for dedup sets.
std::pair<int, int> key(int u, int v) {
  return u < v ? std::pair{u, v} : std::pair{v, u};
}

/// Shared skeleton of the synthetic DIMACS families: vertices are split
/// into `k` groups (round-robin: vertex v belongs to group v % k), vertices
/// 0..k-1 form a planted k-clique (one per group), and all further edges
/// connect *different* groups only. The graph is therefore k-partite with
/// a k-clique: its chromatic number is exactly k, matching the real
/// instances whose chromatic number equals their max clique.
class PartiteBuilder {
 public:
  PartiteBuilder(int n, int k, std::uint64_t seed) : n_(n), k_(k), rng_(seed) {
    if (k < 2 || n < k) throw std::invalid_argument("bad planted clique size");
    for (int u = 0; u < k; ++u) {
      for (int v = u + 1; v < k; ++v) insert(u, v);
    }
  }

  [[nodiscard]] int group(int v) const noexcept { return v % k_; }
  [[nodiscard]] int edge_count() const noexcept {
    return static_cast<int>(edges_.size());
  }
  [[nodiscard]] int degree(int v) const { return degree_[static_cast<std::size_t>(v)]; }
  Rng& rng() noexcept { return rng_; }

  /// Try to add {u, v}; rejected (returns false) for same-group pairs,
  /// loops, and duplicates.
  bool insert(int u, int v) {
    if (u == v || group(u) == group(v)) return false;
    if (!edges_.insert(key(u, v)).second) return false;
    degree_.resize(static_cast<std::size_t>(n_), 0);
    ++degree_[static_cast<std::size_t>(u)];
    ++degree_[static_cast<std::size_t>(v)];
    return true;
  }

  /// Keep proposing edges from `propose` until `m` edges exist. Gives up
  /// (throws) if the proposal stream stalls, which indicates an infeasible
  /// target for the family parameters.
  template <typename Proposer>
  void fill_to(int m, Proposer&& propose) {
    long long stall = 0;
    const long long stall_limit = 200LL * (m + n_ + 16);
    while (edge_count() < m) {
      auto [u, v] = propose();
      if (!insert(u, v)) {
        if (++stall > stall_limit) {
          throw std::runtime_error("generator stalled: edge target infeasible");
        }
      } else {
        stall = 0;
      }
    }
  }

  [[nodiscard]] Graph build() const {
    Graph g(n_);
    for (const auto& [u, v] : edges_) g.add_edge(u, v);
    g.finalize();
    return g;
  }

 private:
  int n_;
  int k_;
  Rng rng_;
  std::set<std::pair<int, int>> edges_;
  std::vector<int> degree_ = std::vector<int>(static_cast<std::size_t>(n_), 0);
};

}  // namespace

Graph make_queen_graph(int rows, int cols) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("empty board");
  const int n = rows * cols;
  Graph g(n);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r1 = 0; r1 < rows; ++r1) {
    for (int c1 = 0; c1 < cols; ++c1) {
      for (int r2 = r1; r2 < rows; ++r2) {
        const int c_start = (r2 == r1) ? c1 + 1 : 0;
        for (int c2 = c_start; c2 < cols; ++c2) {
          const bool same_row = r1 == r2;
          const bool same_col = c1 == c2;
          const bool same_diag = std::abs(r1 - r2) == std::abs(c1 - c2);
          if (same_row || same_col || same_diag) {
            g.add_edge(id(r1, c1), id(r2, c2));
          }
        }
      }
    }
  }
  g.finalize();
  return g;
}

Graph make_mycielski(int k) {
  if (k < 2) throw std::invalid_argument("Mycielski index must be >= 2");
  // M_2 = K2.
  Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  for (int step = 2; step < k; ++step) {
    // Mycielskian of g: vertices v_0..v_{n-1}, shadows u_0..u_{n-1}, apex w.
    const int n = g.num_vertices();
    Graph next(2 * n + 1);
    const int apex = 2 * n;
    for (const Edge& e : g.edges()) {
      next.add_edge(e.u, e.v);          // original edge
      next.add_edge(n + e.u, e.v);      // shadow of u sees neighbours of u
      next.add_edge(n + e.v, e.u);
    }
    for (int v = 0; v < n; ++v) next.add_edge(n + v, apex);
    next.finalize();
    g = std::move(next);
  }
  return g;
}

Graph make_myciel_dimacs(int n) {
  // DIMACS mycielN has chromatic number N + 1 = Mycielski index N + 1.
  return make_mycielski(n + 1);
}

Graph make_random_gnm(int n, int m, std::uint64_t seed) {
  const long long max_edges = static_cast<long long>(n) * (n - 1) / 2;
  if (m < 0 || m > max_edges) throw std::invalid_argument("bad edge count");
  Rng rng(seed);
  std::set<std::pair<int, int>> chosen;
  while (static_cast<int>(chosen.size()) < m) {
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    if (u != v) chosen.insert(key(u, v));
  }
  Graph g(n);
  for (const auto& [u, v] : chosen) g.add_edge(u, v);
  g.finalize();
  return g;
}

Graph make_book_graph(int n, int m, int clique, std::uint64_t seed) {
  PartiteBuilder b(n, clique, seed);
  if (m < b.edge_count()) throw std::invalid_argument("m below planted clique");
  // Preferential attachment: characters that already interact a lot keep
  // acquiring interactions; one endpoint degree-weighted, one uniform.
  std::vector<int> endpoints;
  for (int u = 0; u < clique; ++u) {
    for (int v = u + 1; v < clique; ++v) {
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  b.fill_to(m, [&]() {
    const int u = endpoints[b.rng().below(endpoints.size())];
    const int v = static_cast<int>(b.rng().below(static_cast<std::uint64_t>(n)));
    if (u != v && b.group(u) != b.group(v)) {
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
    return std::pair{u, v};
  });
  return b.build();
}

Graph make_games_graph(int n, int m, int clique, std::uint64_t seed) {
  PartiteBuilder b(n, clique, seed);
  if (m < b.edge_count()) throw std::invalid_argument("m below planted clique");
  // Near-regular: bias the first endpoint toward minimum current degree,
  // like a round-robin schedule filling every team's fixture list evenly.
  b.fill_to(m, [&]() {
    int u = static_cast<int>(b.rng().below(static_cast<std::uint64_t>(n)));
    for (int probe = 0; probe < 3; ++probe) {
      const int c = static_cast<int>(b.rng().below(static_cast<std::uint64_t>(n)));
      if (b.degree(c) < b.degree(u)) u = c;
    }
    const int v = static_cast<int>(b.rng().below(static_cast<std::uint64_t>(n)));
    return std::pair{u, v};
  });
  return b.build();
}

Graph make_geometric_graph(int n, int m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = rng.uniform();
    y[static_cast<std::size_t>(i)] = rng.uniform();
  }
  auto count_edges = [&](double radius) {
    const double r2 = radius * radius;
    int count = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double dx = x[static_cast<std::size_t>(i)] - x[static_cast<std::size_t>(j)];
        const double dy = y[static_cast<std::size_t>(i)] - y[static_cast<std::size_t>(j)];
        if (dx * dx + dy * dy <= r2) ++count;
      }
    }
    return count;
  };
  // Bisect the connection radius until the edge count brackets m tightly.
  double lo = 0.0, hi = 1.5;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (count_edges(mid) < m) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double radius = hi;
  const double r2 = radius * radius;
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double dx = x[static_cast<std::size_t>(i)] - x[static_cast<std::size_t>(j)];
      const double dy = y[static_cast<std::size_t>(i)] - y[static_cast<std::size_t>(j)];
      if (dx * dx + dy * dy <= r2) g.add_edge(i, j);
    }
  }
  g.finalize();
  return g;
}

Graph make_register_graph(int n, int m, int pressure, std::uint64_t seed) {
  PartiteBuilder b(n, pressure, seed);
  if (m < b.edge_count()) throw std::invalid_argument("m below pressure clique");
  // Fringe live ranges overlap a *contiguous window* of the long-lived
  // clique ranges, modelling short temporaries inside the hot region;
  // a fraction of edges joins two overlapping fringe ranges directly so
  // that dense targets beyond the fringe-to-clique capacity stay feasible.
  b.fill_to(m, [&]() {
    const int v = pressure + static_cast<int>(b.rng().below(
                                 static_cast<std::uint64_t>(n - pressure)));
    if (b.rng().chance(0.25) && n - pressure >= 2) {
      const int w = pressure + static_cast<int>(b.rng().below(
                                   static_cast<std::uint64_t>(n - pressure)));
      return std::pair{v, w};
    }
    const int window = 2 + static_cast<int>(b.rng().below(
                               static_cast<std::uint64_t>(pressure - 1)));
    const int start = static_cast<int>(
        b.rng().below(static_cast<std::uint64_t>(pressure)));
    const int offset = static_cast<int>(b.rng().below(
        static_cast<std::uint64_t>(window)));
    const int u = (start + offset) % pressure;
    return std::pair{v, u};
  });
  return b.build();
}

std::vector<Instance> dimacs_suite() {
  // Edge counts follow the undirected edge counts of the real DIMACS files
  // (the paper's Table 1 lists doubled counts for the DSJC instances; we
  // use the defining G(125, p) densities). Chromatic numbers are the
  // generator-pinned values where the construction guarantees them.
  std::vector<Instance> suite;
  suite.push_back({"anna", make_book_graph(138, 986, 11, 0xA11A), 11});
  suite.push_back({"david", make_book_graph(87, 812, 11, 0xDA71D), 11});
  suite.push_back({"DSJC125.1", make_random_gnm(125, 736, 0xD51), -1});
  suite.push_back({"DSJC125.9", make_random_gnm(125, 6961, 0xD59), -1});
  suite.push_back({"games120", make_games_graph(120, 1276, 9, 0x6A3E5), 9});
  suite.push_back({"huck", make_book_graph(74, 602, 11, 0x4C8), 11});
  suite.push_back({"jean", make_book_graph(80, 508, 10, 0x1EA4), 10});
  suite.push_back({"miles250", make_geometric_graph(128, 774, 0x313E5), -1});
  suite.push_back({"mulsol.i.2", make_register_graph(188, 3885, 31, 0x3012), 31});
  suite.push_back({"mulsol.i.4", make_register_graph(185, 3946, 31, 0x3014), 31});
  suite.push_back({"myciel3", make_myciel_dimacs(3), 4});
  suite.push_back({"myciel4", make_myciel_dimacs(4), 5});
  suite.push_back({"myciel5", make_myciel_dimacs(5), 6});
  suite.push_back({"queen5_5", make_queen_graph(5, 5), 5});
  suite.push_back({"queen6_6", make_queen_graph(6, 6), 7});
  suite.push_back({"queen7_7", make_queen_graph(7, 7), 7});
  suite.push_back({"queen8_12", make_queen_graph(8, 12), 12});
  suite.push_back({"zeroin.i.1", make_register_graph(211, 4100, 49, 0x2E01), 49});
  suite.push_back({"zeroin.i.2", make_register_graph(211, 3541, 30, 0x2E02), 30});
  suite.push_back({"zeroin.i.3", make_register_graph(206, 3540, 30, 0x2E03), 30});
  return suite;
}

std::vector<Instance> queens_suite() {
  std::vector<Instance> suite;
  suite.push_back({"queen5_5", make_queen_graph(5, 5), 5});
  suite.push_back({"queen6_6", make_queen_graph(6, 6), 7});
  suite.push_back({"queen7_7", make_queen_graph(7, 7), 7});
  suite.push_back({"queen8_12", make_queen_graph(8, 12), 12});
  return suite;
}

}  // namespace symcolor
