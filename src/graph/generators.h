#pragma once
// Benchmark graph generators.
//
// The paper evaluates on 20 DIMACS coloring instances. Two of its families
// are mathematically defined and reproduced here *exactly*:
//   * queens  — queen graphs on an n x m chessboard
//   * myciel  — Mycielski's triangle-free construction
// The remaining families (books, football games, mileage, random DSJC,
// register allocation) are distributed as data files we cannot ship, so we
// provide deterministic synthetic generators that preserve each family's
// structural character (size, density, clique structure and hence
// chromatic number). See DESIGN.md "Substitutions" for the rationale.

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace symcolor {

/// Queen graph: one vertex per square of a rows x cols board; two squares
/// are adjacent iff a queen on one attacks the other (same row, column, or
/// diagonal). queenN_N asks whether N non-attacking coloring classes exist.
Graph make_queen_graph(int rows, int cols);

/// Mycielski graph M_k: M_2 = K2 (an edge); M_{k+1} is the Mycielskian of
/// M_k. M_k is triangle-free with chromatic number exactly k.
/// myciel3 = M_4 (11 vertices), myciel4 = M_5 (23), myciel5 = M_6 (47)
/// in DIMACS naming; use make_myciel_dimacs for that convention.
Graph make_mycielski(int k);

/// DIMACS "mycielN": the Mycielski graph with chromatic number N + 1.
Graph make_myciel_dimacs(int n);

/// Erdos-Renyi G(n, m): exactly m distinct edges chosen uniformly.
/// Stand-in for the DSJC random family.
Graph make_random_gnm(int n, int m, std::uint64_t seed);

/// Book-style co-occurrence graph (anna/david/huck/jean stand-in): a
/// planted clique of `clique` "main characters" plus preferential-
/// attachment edges until exactly `m` edges exist. The planted clique
/// pins the chromatic number at >= clique, matching the real instances
/// whose chromatic number equals their max clique.
Graph make_book_graph(int n, int m, int clique, std::uint64_t seed);

/// Football-schedule-style graph (games120 stand-in): near-regular random
/// graph with a planted clique; mirrors the real instance's tight degree
/// distribution.
Graph make_games_graph(int n, int m, int clique, std::uint64_t seed);

/// Random geometric graph (miles stand-in): n points uniform in the unit
/// square, edge when Euclidean distance <= radius; the radius is tuned by
/// bisection until the edge count is as close to `m` as possible.
Graph make_geometric_graph(int n, int m, std::uint64_t seed);

/// Register-allocation interference graph (mulsol/zeroin stand-in): a
/// central clique of `pressure` simultaneously-live ranges (the register
/// pressure peak) plus short fringe live ranges overlapping a random
/// window of the clique. Chromatic number equals `pressure` exactly.
Graph make_register_graph(int n, int m, int pressure, std::uint64_t seed);

/// The 20-instance suite mirroring the paper's Table 1, in table order.
/// Deterministic: same seeds every call. `chromatic_number` holds the
/// generator's ground truth where it is pinned (planted clique or exact
/// family) and -1 where only measurement can tell.
std::vector<Instance> dimacs_suite();

/// The queens subfamily used by the paper's Appendix (Table 5).
std::vector<Instance> queens_suite();

}  // namespace symcolor
