#include "graph/dimacs_col.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/text.h"

namespace symcolor {
namespace {

[[noreturn]] void fail(int line_number, const std::string& why) {
  std::ostringstream msg;
  msg << "dimacs col parse error at line " << line_number << ": " << why;
  throw std::runtime_error(msg.str());
}

}  // namespace

Graph read_dimacs_col(std::istream& in) {
  Graph graph;
  bool saw_header = false;
  int declared_edges = 0;
  int line_number = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view body = trim(line);
    if (body.empty()) continue;
    switch (body.front()) {
      case 'c':
        break;  // comment
      case 'p': {
        if (saw_header) fail(line_number, "duplicate problem line");
        const auto tokens = split_tokens(body);
        if (tokens.size() != 4 || (tokens[1] != "edge" && tokens[1] != "edges")) {
          fail(line_number, "expected 'p edge <n> <m>'");
        }
        int n = 0;
        try {
          n = std::stoi(tokens[2]);
          declared_edges = std::stoi(tokens[3]);
        } catch (const std::exception&) {
          fail(line_number, "non-numeric problem line");
        }
        if (n < 0 || declared_edges < 0) fail(line_number, "negative size");
        graph.reset(n);
        saw_header = true;
        break;
      }
      case 'e': {
        if (!saw_header) fail(line_number, "edge before problem line");
        const auto tokens = split_tokens(body);
        if (tokens.size() != 3) fail(line_number, "expected 'e <u> <v>'");
        int u = 0, v = 0;
        try {
          u = std::stoi(tokens[1]);
          v = std::stoi(tokens[2]);
        } catch (const std::exception&) {
          fail(line_number, "non-numeric edge endpoints");
        }
        if (u < 1 || v < 1 || u > graph.num_vertices() ||
            v > graph.num_vertices()) {
          fail(line_number, "edge endpoint out of declared range");
        }
        graph.add_edge(u - 1, v - 1);
        break;
      }
      default:
        fail(line_number, std::string("unknown directive '") +
                              std::string(1, body.front()) + "'");
    }
  }
  if (!saw_header) throw std::runtime_error("dimacs col: missing problem line");
  graph.finalize();
  (void)declared_edges;  // tolerated: real benchmark files often misstate m
  return graph;
}

Graph read_dimacs_col_string(const std::string& text) {
  std::istringstream in(text);
  return read_dimacs_col(in);
}

Graph read_dimacs_col_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_dimacs_col(in);
}

void write_dimacs_col(std::ostream& out, const Graph& graph,
                      const std::string& comment) {
  if (!comment.empty()) out << "c " << comment << '\n';
  out << "p edge " << graph.num_vertices() << ' ' << graph.num_edges() << '\n';
  for (const Edge& e : graph.edges()) {
    out << "e " << (e.u + 1) << ' ' << (e.v + 1) << '\n';
  }
}

std::string write_dimacs_col_string(const Graph& graph,
                                    const std::string& comment) {
  std::ostringstream out;
  write_dimacs_col(out, graph, comment);
  return out.str();
}

}  // namespace symcolor
