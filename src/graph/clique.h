#pragma once
// Clique computation: a fast greedy heuristic (lower bound for the
// chromatic number, used to seed the exact colorer) and a small exact
// branch-and-bound maximum-clique solver for validation on benchmark-sized
// graphs.

#include <vector>

#include "graph/graph.h"
#include "util/timer.h"

namespace symcolor {

/// Greedy clique: repeatedly add the highest-degree vertex compatible with
/// the clique so far, restarting from each of the top-degree vertices and
/// keeping the best. Deterministic. Returns vertex ids of the clique.
std::vector<int> greedy_clique(const Graph& graph);

/// Exact maximum clique via branch and bound with greedy-coloring bounds
/// (a compact Tomita-style MCS). `deadline` caps the search; on timeout the
/// best clique found so far is returned and `*proved_optimal` (if non-null)
/// is set to false.
std::vector<int> max_clique(const Graph& graph, const Deadline& deadline = {},
                            bool* proved_optimal = nullptr);

/// True iff `vertices` are pairwise adjacent in `graph`.
bool is_clique(const Graph& graph, const std::vector<int>& vertices);

/// All maximal cliques (Bron-Kerbosch with pivoting), each sorted
/// ascending. Enumeration stops after `max_count` cliques (0 = no limit)
/// and sets `*truncated` when the cutoff was hit.
std::vector<std::vector<int>> maximal_cliques(const Graph& graph,
                                              std::size_t max_count = 0,
                                              bool* truncated = nullptr);

/// All maximal independent sets = maximal cliques of the complement.
std::vector<std::vector<int>> maximal_independent_sets(
    const Graph& graph, std::size_t max_count = 0, bool* truncated = nullptr);

}  // namespace symcolor
