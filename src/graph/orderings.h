#pragma once
// Vertex orderings and related structural utilities.
//
// Orderings matter twice in this system: greedy heuristics color along
// them, and the LI construction breaks symmetries relative to "the
// pre-existing sequential numbering of vertices" (paper Section 2.2) —
// so relabeling a graph by a better ordering changes what LI does. The
// degeneracy (smallest-last) ordering in particular bounds the greedy
// color count by degeneracy+1.

#include <vector>

#include "graph/graph.h"

namespace symcolor {

/// Natural order 0..n-1.
std::vector<int> natural_order(const Graph& graph);

/// Non-increasing degree (Welsh-Powell order), ties by index.
std::vector<int> degree_order(const Graph& graph);

/// Smallest-last / degeneracy ordering (Matula-Beck): repeatedly remove
/// a minimum-degree vertex; the returned order lists vertices so that
/// every vertex has at most `degeneracy` neighbours *earlier* in the
/// order. Greedy coloring along it uses at most degeneracy+1 colors.
std::vector<int> degeneracy_order(const Graph& graph, int* degeneracy = nullptr);

/// Breadth-first order from vertex `root` (unreached vertices appended
/// in index order).
std::vector<int> bfs_order(const Graph& graph, int root = 0);

/// The degeneracy (maximum over subgraphs of the minimum degree).
int degeneracy(const Graph& graph);

/// Connected components; returns component id per vertex and the count.
int connected_components(const Graph& graph, std::vector<int>* component = nullptr);

/// True iff the graph is bipartite (2-colorable); when it is and
/// `sides` is non-null, a witness 0/1 assignment is stored.
bool is_bipartite(const Graph& graph, std::vector<int>* sides = nullptr);

}  // namespace symcolor
