#pragma once
// Simple undirected graph used throughout the library.
//
// Vertices are dense integers 0..n-1; self-loops are rejected and
// duplicate edges are deduplicated on finalize(). This matches the needs
// of the coloring encoder (iterate edges), the automorphism engine
// (neighbour queries), and the heuristics (degree queries).
//
// Storage is CSR (compressed sparse row): finalize() builds two flat
// arrays, offsets_ (n+1 entries) and neighbors_ (2|E| entries), with
// vertex v's neighbours at neighbors_[offsets_[v] .. offsets_[v+1])
// sorted ascending. neighbors(v) returns a span directly into that
// buffer, so scans over adjacent vertices (partition refinement, DSATUR,
// clique search) walk one contiguous allocation instead of chasing
// per-vertex heap blocks. degree() is an offset subtraction and
// has_edge() a binary search within the row. Mutation goes through the
// edge list only: add_edge() invalidates the CSR view until the next
// finalize(), and accessors assert on a non-finalized graph.

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace symcolor {

/// An undirected edge as an ordered pair (u < v after finalize()).
struct Edge {
  int u = 0;
  int v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_vertices) { reset(num_vertices); }

  /// Discard all vertices and edges and allocate `num_vertices` vertices.
  void reset(int num_vertices);

  /// Add an undirected edge {u, v}. Self-loops are ignored. Duplicate
  /// edges may be added freely; finalize() removes them.
  void add_edge(int u, int v);

  /// Sort adjacency lists and deduplicate edges. Idempotent. Most
  /// accessors below require the graph to be finalized.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] int num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] int num_edges() const noexcept {
    return static_cast<int>(edges_.size());
  }

  /// Neighbours of `v`, sorted ascending. Requires finalize().
  [[nodiscard]] std::span<const int> neighbors(int v) const;

  /// All edges with u < v, sorted lexicographically. Requires finalize().
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  /// Degree of `v`. Requires finalize().
  [[nodiscard]] int degree(int v) const;

  /// True iff {u, v} is an edge (binary search). Requires finalize().
  [[nodiscard]] bool has_edge(int u, int v) const;

  /// Maximum degree over all vertices; 0 for an empty graph.
  [[nodiscard]] int max_degree() const;

  /// Edge density |E| / (n choose 2); 0 when n < 2.
  [[nodiscard]] double density() const;

  /// The graph obtained by renaming vertex v to perm[v]. `perm` must be a
  /// permutation of 0..n-1. Used heavily by symmetry tests.
  [[nodiscard]] Graph relabeled(std::span<const int> perm) const;

  /// The complement graph (edges flipped), useful for clique<->independent
  /// set duality tests.
  [[nodiscard]] Graph complement() const;

  /// True if `colors[v]` (size n) is a proper coloring: adjacent vertices
  /// always receive different values.
  [[nodiscard]] bool is_proper_coloring(std::span<const int> colors) const;

  /// Number of distinct values used in `colors`.
  static int count_colors(std::span<const int> colors);

 private:
  void check_vertex(int v) const;

  int num_vertices_ = 0;
  std::vector<int> offsets_;    // CSR row offsets, num_vertices_ + 1 entries
  std::vector<int> neighbors_;  // CSR column indices, sorted per row
  std::vector<Edge> edges_;
  bool finalized_ = true;  // an empty graph is trivially finalized
};

/// A named benchmark instance: the graph plus catalog metadata.
struct Instance {
  std::string name;
  Graph graph;
  /// Known chromatic number, or -1 when unknown / above the catalog bound.
  int chromatic_number = -1;
};

}  // namespace symcolor
