#pragma once
// DIMACS ".col" graph coloring format reader/writer.
//
// The standard format used by the DIMACS coloring benchmarks the paper
// evaluates on:
//   c <comment>
//   p edge <num_vertices> <num_edges>
//   e <u> <v>           (1-based vertex ids)
//
// read_dimacs_col is tolerant of duplicate edges, both edge orders, and a
// missing/underestimated edge count (common in the wild), but rejects
// structurally invalid input with a descriptive exception.

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace symcolor {

/// Parse a DIMACS .col document from a stream. Throws std::runtime_error
/// with a line-numbered message on malformed input.
Graph read_dimacs_col(std::istream& in);

/// Parse a DIMACS .col document from a string (convenience for tests).
Graph read_dimacs_col_string(const std::string& text);

/// Load from a file path. Throws std::runtime_error if unreadable.
Graph read_dimacs_col_file(const std::string& path);

/// Serialize a graph in DIMACS .col format (1-based ids, "p edge" header).
void write_dimacs_col(std::ostream& out, const Graph& graph,
                      const std::string& comment = {});

/// Serialize to a string (convenience for tests and tools).
std::string write_dimacs_col_string(const Graph& graph,
                                    const std::string& comment = {});

}  // namespace symcolor
