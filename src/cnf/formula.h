#pragma once
// A mixed CNF + pseudo-Boolean formula with an optional linear objective —
// the paper's "0-1 ILP" instance representation (Section 2.3): CNF clauses
// for disjunctive structure, PB constraints for counting structure, and a
// MIN objective over literals.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cnf/literals.h"
#include "cnf/pb_constraint.h"

namespace symcolor {

using Clause = std::vector<Lit>;

/// Linear minimization objective: MIN sum coeff_i * lit_i.
struct Objective {
  std::vector<PbTerm> terms;

  /// Objective value under a complete assignment.
  [[nodiscard]] std::int64_t value(std::span<const LBool> values) const;
};

class Formula {
 public:
  Formula() = default;

  /// Allocate a fresh variable; optionally record a debug name.
  Var new_var(std::string name = {});
  /// Allocate `count` fresh variables; returns the first.
  Var new_vars(int count);

  [[nodiscard]] int num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] const std::string& var_name(Var v) const;

  /// Append a clause. Tautological clauses (l and ~l) are dropped;
  /// duplicate literals are merged. Empty clauses are recorded and make
  /// the formula trivially unsat.
  void add_clause(Clause clause);
  void add_unit(Lit l) { add_clause({l}); }
  void add_binary(Lit a, Lit b) { add_clause({a, b}); }
  /// a -> b, i.e. (~a | b).
  void add_implication(Lit a, Lit b) { add_clause({~a, b}); }

  /// Append a PB constraint (already-normalized tautologies are dropped).
  void add_pb(PbConstraint constraint);
  /// sum(lits) >= bound with unit coefficients.
  void add_at_least(const std::vector<Lit>& lits, std::int64_t bound);
  /// sum(lits) <= bound with unit coefficients.
  void add_at_most(const std::vector<Lit>& lits, std::int64_t bound);
  /// sum(lits) == bound (one >= plus one <=).
  void add_exactly(const std::vector<Lit>& lits, std::int64_t bound);

  void set_objective(Objective objective) { objective_ = std::move(objective); }
  [[nodiscard]] const std::optional<Objective>& objective() const noexcept {
    return objective_;
  }

  [[nodiscard]] std::span<const Clause> clauses() const noexcept {
    return clauses_;
  }
  [[nodiscard]] std::span<const PbConstraint> pb_constraints() const noexcept {
    return pb_constraints_;
  }
  [[nodiscard]] int num_clauses() const noexcept {
    return static_cast<int>(clauses_.size());
  }
  [[nodiscard]] int num_pb() const noexcept {
    return static_cast<int>(pb_constraints_.size());
  }
  /// True when an empty clause or contradictory PB constraint was added.
  [[nodiscard]] bool trivially_unsat() const noexcept { return trivially_unsat_; }

  /// Check a complete assignment against every clause and PB constraint.
  [[nodiscard]] bool satisfied_by(std::span<const LBool> values) const;

 private:
  int num_vars_ = 0;
  std::vector<Clause> clauses_;
  std::vector<PbConstraint> pb_constraints_;
  std::optional<Objective> objective_;
  std::vector<std::string> names_;
  bool trivially_unsat_ = false;
};

}  // namespace symcolor
