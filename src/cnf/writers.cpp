#include "cnf/writers.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/text.h"

namespace symcolor {
namespace {

int dimacs_code(Lit l) {
  return l.negated() ? -(l.var() + 1) : (l.var() + 1);
}

void write_opb_terms(std::ostream& out, std::span<const PbTerm> terms) {
  for (const PbTerm& t : terms) {
    out << (t.coeff >= 0 ? "+" : "") << t.coeff << ' '
        << (t.lit.negated() ? "~x" : "x") << (t.lit.var() + 1) << ' ';
  }
}

}  // namespace

void write_dimacs_cnf(std::ostream& out, const Formula& formula) {
  for (const PbConstraint& c : formula.pb_constraints()) {
    if (!c.is_clause()) {
      throw std::invalid_argument(
          "write_dimacs_cnf: formula has non-clausal PB constraints");
    }
  }
  out << "p cnf " << formula.num_vars() << ' '
      << formula.num_clauses() + formula.num_pb() << '\n';
  for (const Clause& clause : formula.clauses()) {
    for (Lit l : clause) out << dimacs_code(l) << ' ';
    out << "0\n";
  }
  for (const PbConstraint& c : formula.pb_constraints()) {
    for (const PbTerm& t : c.terms()) out << dimacs_code(t.lit) << ' ';
    out << "0\n";
  }
}

std::string write_dimacs_cnf_string(const Formula& formula) {
  std::ostringstream out;
  write_dimacs_cnf(out, formula);
  return out.str();
}

void write_opb(std::ostream& out, const Formula& formula) {
  out << "* #variable= " << formula.num_vars()
      << " #constraint= " << formula.num_clauses() + formula.num_pb() << '\n';
  if (formula.objective()) {
    out << "min: ";
    write_opb_terms(out, formula.objective()->terms);
    out << ";\n";
  }
  for (const PbConstraint& c : formula.pb_constraints()) {
    write_opb_terms(out, c.terms());
    out << ">= " << c.bound() << " ;\n";
  }
  for (const Clause& clause : formula.clauses()) {
    for (Lit l : clause) {
      out << "+1 " << (l.negated() ? "~x" : "x") << (l.var() + 1) << ' ';
    }
    out << ">= 1 ;\n";
  }
}

std::string write_opb_string(const Formula& formula) {
  std::ostringstream out;
  write_opb(out, formula);
  return out.str();
}

namespace {

Lit parse_opb_literal(const std::string& token, int* max_var) {
  std::size_t i = 0;
  bool negated = false;
  if (i < token.size() && token[i] == '~') {
    negated = true;
    ++i;
  }
  if (i >= token.size() || token[i] != 'x') {
    throw std::runtime_error("opb: expected literal, got '" + token + "'");
  }
  const int var1 = std::stoi(token.substr(i + 1));
  if (var1 < 1) throw std::runtime_error("opb: bad variable index");
  *max_var = std::max(*max_var, var1);
  return Lit(var1 - 1, negated);
}

struct ParsedLine {
  std::vector<PbTerm> terms;
  bool is_objective = false;
  bool at_most = false;  // constraint comparator was <=
  bool equality = false;
  std::int64_t bound = 0;
};

ParsedLine parse_opb_line(const std::string& line, int* max_var) {
  ParsedLine parsed;
  std::string body = line;
  if (starts_with(trim(body), "min:")) {
    parsed.is_objective = true;
    body = std::string(trim(body).substr(4));
  }
  auto tokens = split_tokens(body);
  if (!tokens.empty() && tokens.back() == ";") tokens.pop_back();
  std::size_t i = 0;
  while (i < tokens.size()) {
    std::string tok = tokens[i];
    if (!tok.empty() && tok.back() == ';') tok.pop_back();
    if (tok == ">=" || tok == "<=" || tok == "=") {
      if (parsed.is_objective || i + 1 >= tokens.size()) {
        throw std::runtime_error("opb: misplaced comparator");
      }
      parsed.at_most = (tok == "<=");
      parsed.equality = (tok == "=");
      std::string bound_tok = tokens[i + 1];
      if (!bound_tok.empty() && bound_tok.back() == ';') bound_tok.pop_back();
      parsed.bound = std::stoll(bound_tok);
      return parsed;
    }
    if (tok.empty()) {
      ++i;
      continue;
    }
    const std::int64_t coeff = std::stoll(tok);
    if (i + 1 >= tokens.size()) throw std::runtime_error("opb: dangling coeff");
    std::string lit_tok = tokens[i + 1];
    if (!lit_tok.empty() && lit_tok.back() == ';') lit_tok.pop_back();
    parsed.terms.push_back({coeff, parse_opb_literal(lit_tok, max_var)});
    i += 2;
  }
  if (!parsed.is_objective) {
    throw std::runtime_error("opb: constraint line missing comparator");
  }
  return parsed;
}

}  // namespace

Formula read_opb(std::istream& in) {
  std::vector<ParsedLine> lines;
  int max_var = 0;
  std::string line;
  while (std::getline(in, line)) {
    const auto body = trim(line);
    if (body.empty() || body.front() == '*') continue;
    lines.push_back(parse_opb_line(std::string(body), &max_var));
  }
  Formula formula;
  formula.new_vars(max_var);
  for (ParsedLine& parsed : lines) {
    if (parsed.is_objective) {
      formula.set_objective(Objective{std::move(parsed.terms)});
    } else if (parsed.equality) {
      formula.add_pb(PbConstraint::at_least(parsed.terms, parsed.bound));
      formula.add_pb(PbConstraint::at_most(std::move(parsed.terms), parsed.bound));
    } else if (parsed.at_most) {
      formula.add_pb(PbConstraint::at_most(std::move(parsed.terms), parsed.bound));
    } else {
      formula.add_pb(PbConstraint::at_least(std::move(parsed.terms), parsed.bound));
    }
  }
  return formula;
}

Formula read_opb_string(const std::string& text) {
  std::istringstream in(text);
  return read_opb(in);
}

}  // namespace symcolor
