#pragma once
// Objective selector ladder: a CNF counting circuit over the objective
// terms whose output literals turn "objective <= W" into a SINGLE
// retractable assumption — the encoding-layer half of assumption-native
// optimization (pb/optimizer drives one persistent SolverEngine through
// these selectors instead of mutating the formula with permanent
// "objective <= W" PB rows).
//
// Construction: a generalized totalizer (Joshi/Martins/Manquinho lineage;
// the unit-weight case degenerates to the classic Bailleux-Boutsidis
// totalizer). Terms are first normalized like PbConstraint does —
// negative weights flip the literal and shift a constant offset, same-var
// terms merge — then counted by a balanced merge tree. Every node owns
// one output literal O_v per achievable partial sum v with the SOUND
// direction only:
//     sum of the node's terms >= v   implies   O_v,
// via merge clauses (~A_a | ~B_b | C_{a+b}) over the children's value
// pairs plus a per-node ordering chain (O_v -> O_pred(v)), which makes
// the outputs a monotone unary ladder. Assuming ~O_v therefore forces
// objective < v, while leaving the outputs unconstrained (no assumption)
// costs nothing: the reverse implication is deliberately not encoded, so
// any model extends by setting each output to "sum reached v".
//
// One ladder serves every probe: "<= W" for any W is the negation of the
// single output at the smallest achievable value above W, so linear
// strengthening, binary search (both directions!) and core-guided search
// all retract and re-assert bounds without touching the clause database —
// learned clauses survive every probe.
//
// The ladder is built into the Formula BEFORE the solver is constructed
// (the engine's variable count is fixed at construction). Distinct-sum
// sets can explode for adversarial weight patterns, so construction dry-
// runs the value sets first and refuses (ok() == false, formula left
// untouched) past `max_values`; callers fall back to permanent-row
// strengthening in that case.

#include <cstdint>
#include <vector>

#include "cnf/formula.h"

namespace symcolor {

class ObjectiveLadder {
 public:
  /// What at_most() asks the caller to do for a given bound.
  struct Bound {
    enum class Kind {
      Free,        ///< bound >= max achievable value: assume nothing
      Assume,      ///< assume `lit` to assert the bound
      Infeasible,  ///< bound < min achievable value: unsatisfiable outright
    };
    Kind kind = Kind::Free;
    Lit lit;  ///< valid iff kind == Assume
  };

  /// A soft view of one normalized objective term for core-guided search:
  /// assuming `assume` says "this term contributes nothing"; violating it
  /// costs `weight`.
  struct SoftTerm {
    std::int64_t weight = 0;
    Lit assume;
  };

  static constexpr std::size_t kDefaultMaxValues = 1 << 16;

  /// Build the ladder for `objective` into `formula` (fresh auxiliary
  /// variables + clauses). When the distinct-sum census would exceed
  /// `max_values`, nothing is added and ok() reports false.
  ObjectiveLadder(Formula* formula, const Objective& objective,
                  std::size_t max_values = kDefaultMaxValues);

  /// False when construction was refused (value census above the cap).
  [[nodiscard]] bool ok() const noexcept { return ok_; }

  /// Objective value with every normalized term false (the constant
  /// offset contributed by negative-weight terms).
  [[nodiscard]] std::int64_t min_value() const noexcept { return offset_; }
  /// Objective value with every normalized term true.
  [[nodiscard]] std::int64_t max_value() const noexcept {
    return offset_ + sum_;
  }

  /// The single assumption asserting "objective <= bound" (in original
  /// objective units). Requires ok().
  [[nodiscard]] Bound at_most(std::int64_t bound) const;

  /// Normalized terms as soft assumptions for core-guided search (always
  /// available, even when the ladder itself was refused).
  [[nodiscard]] const std::vector<SoftTerm>& soft_terms() const noexcept {
    return soft_terms_;
  }

 private:
  bool ok_ = true;
  std::int64_t offset_ = 0;  // constant shift from negative-weight terms
  std::int64_t sum_ = 0;     // sum of normalized (positive) weights
  /// Root outputs: ascending achievable values paired with their O_v.
  std::vector<std::pair<std::int64_t, Lit>> outputs_;
  std::vector<SoftTerm> soft_terms_;
};

}  // namespace symcolor
