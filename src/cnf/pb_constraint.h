#pragma once
// Normalized pseudo-Boolean constraints.
//
// The paper's 0-1 ILP component uses linear inequalities over Boolean
// literals. We normalize everything to the "at least" form
//     a_1*l_1 + a_2*l_2 + ... + a_n*l_n >= bound,   a_i > 0,
// using the identities  -a*x == a*(~x) - a  and  (<=) == -(>=).
// Duplicate/opposing literals are merged so each variable appears at most
// once; this is the invariant every consumer (solver propagation, graph
// construction for symmetry detection) relies on.
//
// Overflow policy: normalization arithmetic is checked. A constraint whose
// normal form (any merged coefficient, the shifted bound, or the total
// coefficient sum) does not fit in int64 is rejected at construction with
// std::overflow_error rather than silently wrapping — downstream slack
// bookkeeping in the CDCL engine depends on sum(coeffs) and bound being
// exact, representable values.

#include <cstdint>
#include <ostream>
#include <span>
#include <vector>

#include "cnf/literals.h"

namespace symcolor {

/// One weighted literal a*l with a > 0 after normalization.
struct PbTerm {
  std::int64_t coeff = 0;
  Lit lit;
  friend bool operator==(const PbTerm&, const PbTerm&) = default;
};

class PbConstraint {
 public:
  PbConstraint() = default;

  /// Build sum(terms) >= bound and normalize. Terms may carry negative or
  /// duplicate coefficients; they are rewritten. Throws std::overflow_error
  /// when the normal form does not fit in int64 (see the header comment).
  static PbConstraint at_least(std::vector<PbTerm> terms, std::int64_t bound);

  /// Build sum(terms) <= bound and normalize into the >= form. Same
  /// overflow policy as at_least.
  static PbConstraint at_most(std::vector<PbTerm> terms, std::int64_t bound);

  /// Terms in normalized form, sorted by descending coefficient then
  /// literal code (a canonical order so equal constraints compare equal).
  [[nodiscard]] std::span<const PbTerm> terms() const noexcept { return terms_; }
  [[nodiscard]] std::int64_t bound() const noexcept { return bound_; }

  /// Sum of all coefficients; slack when nothing is assigned.
  [[nodiscard]] std::int64_t coeff_sum() const noexcept { return coeff_sum_; }

  /// Trivially satisfied (bound <= 0 after normalization).
  [[nodiscard]] bool is_tautology() const noexcept { return bound_ <= 0; }
  /// Unsatisfiable even with every literal true.
  [[nodiscard]] bool is_contradiction() const noexcept {
    return bound_ > coeff_sum_;
  }
  /// All coefficients equal 1 — a cardinality constraint.
  [[nodiscard]] bool is_cardinality() const noexcept;
  /// Cardinality with bound 1 — semantically a clause.
  [[nodiscard]] bool is_clause() const noexcept {
    return bound_ == 1 && is_cardinality();
  }

  /// Evaluate under a complete assignment (values indexed by variable).
  [[nodiscard]] bool satisfied_by(std::span<const LBool> values) const;

  friend bool operator==(const PbConstraint&, const PbConstraint&) = default;
  friend std::ostream& operator<<(std::ostream& os, const PbConstraint& c);

 private:
  std::vector<PbTerm> terms_;
  std::int64_t bound_ = 0;
  std::int64_t coeff_sum_ = 0;

  void normalize();
};

}  // namespace symcolor
