#include "cnf/pb_constraint.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

namespace symcolor {
namespace {

/// a + b with overflow rejection. Normalization arithmetic (per-variable
/// merges, the negation shift, the coefficient sum) runs over caller-
/// supplied 64-bit weights; silent wraparound here once flipped a
/// satisfiable constraint into is_contradiction() == true, so any
/// overflow rejects the construction instead.
std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    throw std::overflow_error(
        "PbConstraint: coefficient arithmetic exceeds int64 range");
  }
  return out;
}

/// -a with the one unrepresentable case (INT64_MIN) rejected — negating
/// it is signed-overflow UB, not merely a wrong value.
std::int64_t checked_neg(std::int64_t a) {
  if (a == std::numeric_limits<std::int64_t>::min()) {
    throw std::overflow_error(
        "PbConstraint: coefficient arithmetic exceeds int64 range");
  }
  return -a;
}

}  // namespace

PbConstraint PbConstraint::at_least(std::vector<PbTerm> terms,
                                    std::int64_t bound) {
  PbConstraint c;
  c.terms_ = std::move(terms);
  c.bound_ = bound;
  c.normalize();
  return c;
}

PbConstraint PbConstraint::at_most(std::vector<PbTerm> terms,
                                   std::int64_t bound) {
  // sum a_i l_i <= b  <=>  sum (-a_i) l_i >= -b
  for (PbTerm& t : terms) t.coeff = checked_neg(t.coeff);
  return at_least(std::move(terms), checked_neg(bound));
}

void PbConstraint::normalize() {
  // Step 1: merge per-variable contributions. Represent each variable's
  // net effect as coefficient-on-positive-literal plus a constant shift
  // (from a*~x == a - a*x). Every accumulation is overflow-checked: the
  // solver's slack bookkeeping (and is_contradiction/is_tautology) relies
  // on the normalized coefficients, bound and coefficient sum all being
  // exact int64 values, so an input whose normal form cannot be
  // represented is rejected at construction with std::overflow_error.
  std::map<Var, std::int64_t> positive_coeff;
  std::int64_t shift = 0;
  for (const PbTerm& t : terms_) {
    if (t.coeff == 0 || !t.lit.valid()) continue;
    if (t.lit.negated()) {
      // a*~x = a - a*x
      shift = checked_add(shift, t.coeff);
      std::int64_t& c = positive_coeff[t.lit.var()];
      c = checked_add(c, checked_neg(t.coeff));
    } else {
      std::int64_t& c = positive_coeff[t.lit.var()];
      c = checked_add(c, t.coeff);
    }
  }
  bound_ = checked_add(bound_, checked_neg(shift));

  // Step 2: flip negative coefficients back onto negated literals.
  terms_.clear();
  for (const auto& [var, coeff] : positive_coeff) {
    if (coeff > 0) {
      terms_.push_back({coeff, Lit::positive(var)});
    } else if (coeff < 0) {
      // -a*x = a*~x - a
      const std::int64_t flipped = checked_neg(coeff);
      terms_.push_back({flipped, Lit::negative(var)});
      bound_ = checked_add(bound_, flipped);
    }
  }

  // Step 3: coefficients larger than the bound act like the bound
  // (saturation); keeps numbers small and detects clauses.
  if (bound_ > 0) {
    for (PbTerm& t : terms_) t.coeff = std::min(t.coeff, bound_);
  }

  // Canonical order: descending coefficient, then literal code.
  std::sort(terms_.begin(), terms_.end(), [](const PbTerm& a, const PbTerm& b) {
    if (a.coeff != b.coeff) return a.coeff > b.coeff;
    return a.lit.code() < b.lit.code();
  });

  coeff_sum_ = 0;
  for (const PbTerm& t : terms_) {
    coeff_sum_ = checked_add(coeff_sum_, t.coeff);
  }
}

bool PbConstraint::is_cardinality() const noexcept {
  return std::all_of(terms_.begin(), terms_.end(),
                     [](const PbTerm& t) { return t.coeff == 1; });
}

bool PbConstraint::satisfied_by(std::span<const LBool> values) const {
  std::int64_t total = 0;
  for (const PbTerm& t : terms_) {
    const LBool v = lit_value(values[static_cast<std::size_t>(t.lit.var())],
                              t.lit.negated());
    if (v == LBool::True) total += t.coeff;
  }
  return total >= bound_;
}

std::ostream& operator<<(std::ostream& os, const PbConstraint& c) {
  bool first = true;
  for (const PbTerm& t : c.terms_) {
    if (!first) os << " + ";
    os << t.coeff << '*' << t.lit;
    first = false;
  }
  if (first) os << '0';
  return os << " >= " << c.bound_;
}

}  // namespace symcolor
