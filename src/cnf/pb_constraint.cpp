#include "cnf/pb_constraint.h"

#include <algorithm>
#include <map>

namespace symcolor {

PbConstraint PbConstraint::at_least(std::vector<PbTerm> terms,
                                    std::int64_t bound) {
  PbConstraint c;
  c.terms_ = std::move(terms);
  c.bound_ = bound;
  c.normalize();
  return c;
}

PbConstraint PbConstraint::at_most(std::vector<PbTerm> terms,
                                   std::int64_t bound) {
  // sum a_i l_i <= b  <=>  sum (-a_i) l_i >= -b
  for (PbTerm& t : terms) t.coeff = -t.coeff;
  return at_least(std::move(terms), -bound);
}

void PbConstraint::normalize() {
  // Step 1: merge per-variable contributions. Represent each variable's
  // net effect as coefficient-on-positive-literal plus a constant shift
  // (from a*~x == a - a*x).
  std::map<Var, std::int64_t> positive_coeff;
  std::int64_t shift = 0;
  for (const PbTerm& t : terms_) {
    if (t.coeff == 0 || !t.lit.valid()) continue;
    if (t.lit.negated()) {
      // a*~x = a - a*x
      shift += t.coeff;
      positive_coeff[t.lit.var()] -= t.coeff;
    } else {
      positive_coeff[t.lit.var()] += t.coeff;
    }
  }
  bound_ -= shift;

  // Step 2: flip negative coefficients back onto negated literals.
  terms_.clear();
  for (const auto& [var, coeff] : positive_coeff) {
    if (coeff > 0) {
      terms_.push_back({coeff, Lit::positive(var)});
    } else if (coeff < 0) {
      // -a*x = a*~x - a
      terms_.push_back({-coeff, Lit::negative(var)});
      bound_ += -coeff;
    }
  }

  // Step 3: coefficients larger than the bound act like the bound
  // (saturation); keeps numbers small and detects clauses.
  if (bound_ > 0) {
    for (PbTerm& t : terms_) t.coeff = std::min(t.coeff, bound_);
  }

  // Canonical order: descending coefficient, then literal code.
  std::sort(terms_.begin(), terms_.end(), [](const PbTerm& a, const PbTerm& b) {
    if (a.coeff != b.coeff) return a.coeff > b.coeff;
    return a.lit.code() < b.lit.code();
  });

  coeff_sum_ = 0;
  for (const PbTerm& t : terms_) coeff_sum_ += t.coeff;
}

bool PbConstraint::is_cardinality() const noexcept {
  return std::all_of(terms_.begin(), terms_.end(),
                     [](const PbTerm& t) { return t.coeff == 1; });
}

bool PbConstraint::satisfied_by(std::span<const LBool> values) const {
  std::int64_t total = 0;
  for (const PbTerm& t : terms_) {
    const LBool v = lit_value(values[static_cast<std::size_t>(t.lit.var())],
                              t.lit.negated());
    if (v == LBool::True) total += t.coeff;
  }
  return total >= bound_;
}

std::ostream& operator<<(std::ostream& os, const PbConstraint& c) {
  bool first = true;
  for (const PbTerm& t : c.terms_) {
    if (!first) os << " + ";
    os << t.coeff << '*' << t.lit;
    first = false;
  }
  if (first) os << '0';
  return os << " >= " << c.bound_;
}

}  // namespace symcolor
