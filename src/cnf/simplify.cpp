#include "cnf/simplify.h"

#include <algorithm>
#include <map>

namespace symcolor {
namespace {

class Simplifier {
 public:
  Simplifier(const Formula& formula, const SimplifyOptions& options)
      : formula_(formula), options_(options) {
    values_.assign(static_cast<std::size_t>(formula.num_vars()), LBool::Undef);
  }

  Formula run(SimplifyStats* stats) {
    clauses_.assign(formula_.clauses().begin(), formula_.clauses().end());
    pbs_.assign(formula_.pb_constraints().begin(),
                formula_.pb_constraints().end());
    if (formula_.trivially_unsat()) stats_.unsatisfiable = true;

    bool changed = true;
    while (changed && !stats_.unsatisfiable) {
      changed = false;
      if (options_.propagate_units) changed |= propagate_round();
      if (options_.pure_literals && !stats_.unsatisfiable) {
        changed |= pure_round();
      }
    }
    if (options_.subsumption && !stats_.unsatisfiable) subsume();

    Formula out;
    out.new_vars(formula_.num_vars());
    if (stats_.unsatisfiable) {
      out.add_clause({});
      if (stats != nullptr) *stats = stats_;
      return out;
    }
    // Fixed variables become units, keeping the variable space intact.
    for (Var v = 0; v < formula_.num_vars(); ++v) {
      if (values_[static_cast<std::size_t>(v)] != LBool::Undef) {
        out.add_unit(Lit(v, values_[static_cast<std::size_t>(v)] ==
                                LBool::False));
      }
    }
    for (const Clause& c : clauses_) {
      if (!c.empty()) out.add_clause(c);
    }
    for (const PbConstraint& pb : pbs_) out.add_pb(pb);
    if (formula_.objective()) out.set_objective(*formula_.objective());
    if (stats != nullptr) *stats = stats_;
    return out;
  }

 private:
  [[nodiscard]] LBool value(Lit l) const {
    return lit_value(values_[static_cast<std::size_t>(l.var())], l.negated());
  }

  void fix(Lit l, bool pure) {
    if (value(l) == LBool::True) return;
    if (value(l) == LBool::False) {
      stats_.unsatisfiable = true;
      return;
    }
    values_[static_cast<std::size_t>(l.var())] = lbool_of(!l.negated());
    if (pure) {
      ++stats_.pure_literals;
    } else {
      ++stats_.fixed_variables;
    }
  }

  /// One sweep of root-level propagation; true if anything changed.
  bool propagate_round() {
    bool changed = false;
    // Clauses: drop satisfied, strip false literals, detect units.
    std::vector<Clause> kept;
    kept.reserve(clauses_.size());
    for (Clause& c : clauses_) {
      Clause reduced;
      bool satisfied = false;
      for (const Lit l : c) {
        const LBool v = value(l);
        if (v == LBool::True) {
          satisfied = true;
          break;
        }
        if (v == LBool::Undef) reduced.push_back(l);
      }
      if (satisfied) {
        ++stats_.removed_clauses;
        changed = true;
        continue;
      }
      if (reduced.size() < c.size()) {
        ++stats_.shortened_clauses;
        changed = true;
      }
      if (reduced.empty()) {
        stats_.unsatisfiable = true;
        return true;
      }
      if (reduced.size() == 1) {
        fix(reduced[0], /*pure=*/false);
        changed = true;
        continue;
      }
      kept.push_back(std::move(reduced));
    }
    clauses_ = std::move(kept);
    if (stats_.unsatisfiable) return true;

    // PB constraints: fold in assigned literals, detect forced terms.
    std::vector<PbConstraint> kept_pb;
    kept_pb.reserve(pbs_.size());
    for (const PbConstraint& pb : pbs_) {
      std::vector<PbTerm> open;
      std::int64_t bound = pb.bound();
      bool touched = false;
      for (const PbTerm& t : pb.terms()) {
        const LBool v = value(t.lit);
        if (v == LBool::True) {
          bound -= t.coeff;
          touched = true;
        } else if (v == LBool::False) {
          touched = true;
        } else {
          open.push_back(t);
        }
      }
      if (!touched) {
        // Still check for forcing below via the rebuilt constraint.
        open.assign(pb.terms().begin(), pb.terms().end());
      }
      PbConstraint reduced = PbConstraint::at_least(std::move(open), bound);
      if (reduced.is_tautology()) {
        ++stats_.removed_pb;
        changed |= touched;
        continue;
      }
      if (reduced.is_contradiction()) {
        stats_.unsatisfiable = true;
        return true;
      }
      // Forced terms: coefficient exceeds slack.
      const std::int64_t slack = reduced.coeff_sum() - reduced.bound();
      bool forced_any = false;
      for (const PbTerm& t : reduced.terms()) {
        if (t.coeff > slack) {
          fix(t.lit, /*pure=*/false);
          forced_any = true;
        }
      }
      if (forced_any) {
        changed = true;
        kept_pb.push_back(std::move(reduced));  // re-reduced next round
        continue;
      }
      if (reduced.is_clause()) {
        Clause c;
        for (const PbTerm& t : reduced.terms()) c.push_back(t.lit);
        clauses_.push_back(std::move(c));
        ++stats_.removed_pb;
        changed = true;
        continue;
      }
      changed |= touched;
      kept_pb.push_back(std::move(reduced));
    }
    pbs_ = std::move(kept_pb);
    return changed;
  }

  /// Fix variables appearing with a single polarity (and not in the
  /// objective, whose variables must stay free for minimization).
  bool pure_round() {
    const auto n = static_cast<std::size_t>(formula_.num_vars());
    std::vector<char> pos(n, 0), neg(n, 0), shielded(n, 0);
    if (formula_.objective()) {
      for (const PbTerm& t : formula_.objective()->terms) {
        shielded[static_cast<std::size_t>(t.lit.var())] = 1;
      }
    }
    auto mark = [&](Lit l) {
      (l.negated() ? neg : pos)[static_cast<std::size_t>(l.var())] = 1;
    };
    for (const Clause& c : clauses_) {
      for (const Lit l : c) mark(l);
    }
    for (const PbConstraint& pb : pbs_) {
      for (const PbTerm& t : pb.terms()) mark(t.lit);
    }
    bool changed = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (values_[v] != LBool::Undef || shielded[v]) continue;
      if (pos[v] && !neg[v]) {
        fix(Lit::positive(static_cast<Var>(v)), /*pure=*/true);
        changed = true;
      } else if (neg[v] && !pos[v]) {
        fix(Lit::negative(static_cast<Var>(v)), /*pure=*/true);
        changed = true;
      }
    }
    return changed;
  }

  /// Drop clauses subsumed by a (short) other clause. Occurrence-indexed:
  /// a subsuming clause is checked only against clauses sharing its
  /// least-frequent literal.
  void subsume() {
    for (Clause& c : clauses_) std::sort(c.begin(), c.end());
    std::map<int, std::vector<std::size_t>> occurrences;  // lit code -> ids
    for (std::size_t i = 0; i < clauses_.size(); ++i) {
      for (const Lit l : clauses_[i]) {
        occurrences[l.code()].push_back(i);
      }
    }
    std::vector<char> dead(clauses_.size(), 0);
    for (std::size_t i = 0; i < clauses_.size(); ++i) {
      const Clause& small = clauses_[i];
      if (dead[i] ||
          static_cast<int>(small.size()) > options_.max_subsumption_width) {
        continue;
      }
      // Least-frequent literal of the subsuming clause.
      const Lit* anchor = nullptr;
      std::size_t best = SIZE_MAX;
      for (const Lit& l : small) {
        const std::size_t count = occurrences[l.code()].size();
        if (count < best) {
          best = count;
          anchor = &l;
        }
      }
      if (anchor == nullptr) continue;
      for (const std::size_t j : occurrences[anchor->code()]) {
        if (j == i || dead[j]) continue;
        const Clause& big = clauses_[j];
        if (big.size() < small.size()) continue;
        if (std::includes(big.begin(), big.end(), small.begin(), small.end())) {
          dead[j] = 1;
          ++stats_.removed_clauses;
        }
      }
    }
    std::vector<Clause> kept;
    kept.reserve(clauses_.size());
    for (std::size_t i = 0; i < clauses_.size(); ++i) {
      if (!dead[i]) kept.push_back(std::move(clauses_[i]));
    }
    clauses_ = std::move(kept);
  }

  const Formula& formula_;
  const SimplifyOptions& options_;
  std::vector<LBool> values_;
  std::vector<Clause> clauses_;
  std::vector<PbConstraint> pbs_;
  SimplifyStats stats_;
};

}  // namespace

Formula simplify(const Formula& formula, SimplifyStats* stats,
                 const SimplifyOptions& options) {
  Simplifier simplifier(formula, options);
  return simplifier.run(stats);
}

}  // namespace symcolor
