#include "cnf/simplify.h"

#include <algorithm>
#include <map>
#include <utility>

#include "sat/inprocess.h"

namespace symcolor {
namespace {

class Simplifier {
 public:
  Simplifier(const Formula& formula, const SimplifyOptions& options)
      : formula_(formula), options_(options) {
    values_.assign(static_cast<std::size_t>(formula.num_vars()), LBool::Undef);
  }

  Formula run(SimplifyStats* stats) {
    clauses_.assign(formula_.clauses().begin(), formula_.clauses().end());
    pbs_.assign(formula_.pb_constraints().begin(),
                formula_.pb_constraints().end());
    if (formula_.trivially_unsat()) stats_.unsatisfiable = true;

    bool changed = true;
    while (changed && !stats_.unsatisfiable) {
      changed = false;
      if (options_.propagate_units) changed |= propagate_round();
      if (options_.pure_literals && !stats_.unsatisfiable) {
        changed |= pure_round();
      }
    }
    if (options_.subsumption && !stats_.unsatisfiable) subsume();

    Formula out;
    out.new_vars(formula_.num_vars());
    if (stats_.unsatisfiable) {
      out.add_clause({});
      if (stats != nullptr) *stats = stats_;
      return out;
    }
    // Fixed variables become units, keeping the variable space intact.
    for (Var v = 0; v < formula_.num_vars(); ++v) {
      if (values_[static_cast<std::size_t>(v)] != LBool::Undef) {
        out.add_unit(Lit(v, values_[static_cast<std::size_t>(v)] ==
                                LBool::False));
      }
    }
    for (const Clause& c : clauses_) {
      if (!c.empty()) out.add_clause(c);
    }
    for (const PbConstraint& pb : pbs_) out.add_pb(pb);
    if (formula_.objective()) out.set_objective(*formula_.objective());
    if (stats != nullptr) *stats = stats_;
    return out;
  }

 private:
  [[nodiscard]] LBool value(Lit l) const {
    return lit_value(values_[static_cast<std::size_t>(l.var())], l.negated());
  }

  void fix(Lit l, bool pure) {
    if (value(l) == LBool::True) return;
    if (value(l) == LBool::False) {
      stats_.unsatisfiable = true;
      return;
    }
    values_[static_cast<std::size_t>(l.var())] = lbool_of(!l.negated());
    if (pure) {
      ++stats_.pure_literals;
    } else {
      ++stats_.fixed_variables;
    }
  }

  /// One sweep of root-level propagation; true if anything changed. The
  /// per-constraint reduction logic is the restart-boundary inprocessor's
  /// (sat/inprocess.h reduce_clause_at_root / reduce_pb_at_root) — this
  /// preprocessor is a thin wrapper that routes the shared verdicts into
  /// its own bookkeeping.
  bool propagate_round() {
    bool changed = false;
    // Clauses: drop satisfied, strip false literals, detect units.
    std::vector<Clause> kept;
    kept.reserve(clauses_.size());
    for (Clause& c : clauses_) {
      Clause reduced;
      switch (reduce_clause_at_root(c, values_, &reduced)) {
        case RootClauseStatus::Satisfied:
          ++stats_.removed_clauses;
          changed = true;
          continue;
        case RootClauseStatus::Empty:
          stats_.unsatisfiable = true;
          return true;
        case RootClauseStatus::Unit:
          ++stats_.shortened_clauses;
          fix(reduced[0], /*pure=*/false);
          changed = true;
          continue;
        case RootClauseStatus::Shortened:
          ++stats_.shortened_clauses;
          changed = true;
          kept.push_back(std::move(reduced));
          continue;
        case RootClauseStatus::Unchanged:
          // Unchanged covers the no-assigned-literal degenerate shapes
          // too: an original empty clause and an original unit.
          if (c.empty()) {
            stats_.unsatisfiable = true;
            return true;
          }
          if (c.size() == 1) {
            fix(c[0], /*pure=*/false);
            changed = true;
            continue;
          }
          kept.push_back(std::move(c));
          continue;
      }
    }
    clauses_ = std::move(kept);
    if (stats_.unsatisfiable) return true;

    // PB constraints: fold in assigned literals, detect forced terms.
    std::vector<PbConstraint> kept_pb;
    kept_pb.reserve(pbs_.size());
    for (const PbConstraint& pb : pbs_) {
      const bool touched =
          std::any_of(pb.terms().begin(), pb.terms().end(),
                      [&](const PbTerm& t) {
                        return value(t.lit) != LBool::Undef;
                      });
      RootPbReduction r = reduce_pb_at_root(pb.terms(), pb.bound(), values_);
      switch (r.status) {
        case RootPbStatus::Satisfied:
          ++stats_.removed_pb;
          changed |= touched;
          continue;
        case RootPbStatus::Contradiction:
          stats_.unsatisfiable = true;
          return true;
        case RootPbStatus::Clause: {
          Clause c;
          for (const PbTerm& t : r.constraint.terms()) c.push_back(t.lit);
          clauses_.push_back(std::move(c));
          ++stats_.removed_pb;
          changed = true;
          continue;
        }
        case RootPbStatus::Open:
          if (!r.forced.empty()) {
            for (const Lit l : r.forced) fix(l, /*pure=*/false);
            changed = true;  // re-reduced next round
          } else {
            changed |= touched;
          }
          kept_pb.push_back(std::move(r.constraint));
          continue;
      }
    }
    pbs_ = std::move(kept_pb);
    return changed;
  }

  /// Fix variables appearing with a single polarity (and not in the
  /// objective, whose variables must stay free for minimization).
  bool pure_round() {
    const auto n = static_cast<std::size_t>(formula_.num_vars());
    std::vector<char> pos(n, 0), neg(n, 0), shielded(n, 0);
    if (formula_.objective()) {
      for (const PbTerm& t : formula_.objective()->terms) {
        shielded[static_cast<std::size_t>(t.lit.var())] = 1;
      }
    }
    auto mark = [&](Lit l) {
      (l.negated() ? neg : pos)[static_cast<std::size_t>(l.var())] = 1;
    };
    for (const Clause& c : clauses_) {
      for (const Lit l : c) mark(l);
    }
    for (const PbConstraint& pb : pbs_) {
      for (const PbTerm& t : pb.terms()) mark(t.lit);
    }
    bool changed = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (values_[v] != LBool::Undef || shielded[v]) continue;
      if (pos[v] && !neg[v]) {
        fix(Lit::positive(static_cast<Var>(v)), /*pure=*/true);
        changed = true;
      } else if (neg[v] && !pos[v]) {
        fix(Lit::negative(static_cast<Var>(v)), /*pure=*/true);
        changed = true;
      }
    }
    return changed;
  }

  /// Drop clauses subsumed by a (short) other clause. Occurrence-indexed:
  /// a subsuming clause is checked only against clauses sharing its
  /// least-frequent literal.
  void subsume() {
    for (Clause& c : clauses_) std::sort(c.begin(), c.end());
    std::map<int, std::vector<std::size_t>> occurrences;  // lit code -> ids
    for (std::size_t i = 0; i < clauses_.size(); ++i) {
      for (const Lit l : clauses_[i]) {
        occurrences[l.code()].push_back(i);
      }
    }
    std::vector<char> dead(clauses_.size(), 0);
    for (std::size_t i = 0; i < clauses_.size(); ++i) {
      const Clause& small = clauses_[i];
      if (dead[i] ||
          static_cast<int>(small.size()) > options_.max_subsumption_width) {
        continue;
      }
      // Least-frequent literal of the subsuming clause.
      const Lit* anchor = nullptr;
      std::size_t best = SIZE_MAX;
      for (const Lit& l : small) {
        const std::size_t count = occurrences[l.code()].size();
        if (count < best) {
          best = count;
          anchor = &l;
        }
      }
      if (anchor == nullptr) continue;
      for (const std::size_t j : occurrences[anchor->code()]) {
        if (j == i || dead[j]) continue;
        const Clause& big = clauses_[j];
        if (big.size() < small.size()) continue;
        if (std::includes(big.begin(), big.end(), small.begin(), small.end())) {
          dead[j] = 1;
          ++stats_.removed_clauses;
        }
      }
    }
    std::vector<Clause> kept;
    kept.reserve(clauses_.size());
    for (std::size_t i = 0; i < clauses_.size(); ++i) {
      if (!dead[i]) kept.push_back(std::move(clauses_[i]));
    }
    clauses_ = std::move(kept);
  }

  const Formula& formula_;
  const SimplifyOptions& options_;
  std::vector<LBool> values_;
  std::vector<Clause> clauses_;
  std::vector<PbConstraint> pbs_;
  SimplifyStats stats_;
};

}  // namespace

Formula simplify(const Formula& formula, SimplifyStats* stats,
                 const SimplifyOptions& options) {
  Simplifier simplifier(formula, options);
  return simplifier.run(stats);
}

}  // namespace symcolor
