#include "cnf/pb_to_cnf.h"

#include <map>
#include <vector>

namespace symcolor {
namespace {

/// Sinz sequential counter for "at most `bound` of `lits`".
PbToCnfStats sequential_at_most(Formula& formula, const std::vector<Lit>& lits,
                                int bound) {
  PbToCnfStats stats;
  const int n = static_cast<int>(lits.size());
  const int vars_before = formula.num_vars();
  const int clauses_before = formula.num_clauses();
  if (bound < 0) {
    formula.add_clause({});
    stats.clauses = formula.num_clauses() - clauses_before;
    return stats;
  }
  if (bound == 0) {
    for (const Lit l : lits) formula.add_unit(~l);
    stats.clauses = formula.num_clauses() - clauses_before;
    return stats;
  }
  if (bound >= n) return stats;  // trivially satisfied

  // s(i, j): at least j+1 of lits[0..i] are true (j is 0-based here).
  auto s = [&, first = formula.new_vars(n * bound)](int i, int j) {
    return Lit::positive(first + i * bound + j);
  };
  formula.add_implication(lits[0], s(0, 0));
  for (int j = 1; j < bound; ++j) formula.add_unit(~s(0, j));
  for (int i = 1; i < n; ++i) {
    formula.add_implication(lits[static_cast<std::size_t>(i)], s(i, 0));
    formula.add_implication(s(i - 1, 0), s(i, 0));
    for (int j = 1; j < bound; ++j) {
      formula.add_clause(
          {~lits[static_cast<std::size_t>(i)], ~s(i - 1, j - 1), s(i, j)});
      formula.add_implication(s(i - 1, j), s(i, j));
    }
    // Overflow: the (bound+1)-th true literal is forbidden.
    formula.add_clause({~lits[static_cast<std::size_t>(i)], ~s(i - 1, bound - 1)});
  }
  stats.aux_vars = formula.num_vars() - vars_before;
  stats.clauses = formula.num_clauses() - clauses_before;
  return stats;
}

/// Tseitin-encoded BDD for a general "sum a_i l_i >= bound" constraint.
class BddEncoder {
 public:
  BddEncoder(Formula& formula, std::vector<PbTerm> terms, std::int64_t bound)
      : formula_(formula), terms_(std::move(terms)), bound_(bound) {
    suffix_sum_.resize(terms_.size() + 1, 0);
    for (std::size_t i = terms_.size(); i-- > 0;) {
      suffix_sum_[i] = suffix_sum_[i + 1] + terms_[i].coeff;
    }
  }

  PbToCnfStats run() {
    const int vars_before = formula_.num_vars();
    const int clauses_before = formula_.num_clauses();
    const Node root = build(0, bound_);
    if (root.kind == NodeKind::False) {
      formula_.add_clause({});
    } else if (root.kind == NodeKind::Var) {
      formula_.add_unit(root.lit);
    }  // True: nothing to assert
    PbToCnfStats stats;
    stats.aux_vars = formula_.num_vars() - vars_before;
    stats.clauses = formula_.num_clauses() - clauses_before;
    return stats;
  }

 private:
  enum class NodeKind { False, True, Var };
  struct Node {
    NodeKind kind = NodeKind::False;
    Lit lit;  // valid when kind == Var
  };

  Node build(std::size_t index, std::int64_t needed) {
    if (needed <= 0) return {NodeKind::True, kUndefLit};
    if (suffix_sum_[index] < needed) return {NodeKind::False, kUndefLit};
    const auto key = std::pair{index, needed};
    if (const auto it = memo_.find(key); it != memo_.end()) return it->second;

    const Lit branch = terms_[index].lit;
    const Node hi = build(index + 1, needed - terms_[index].coeff);
    const Node lo = build(index + 1, needed);
    const Node result = materialize(branch, hi, lo);
    memo_.emplace(key, result);
    return result;
  }

  /// Encode t <-> ITE(branch, hi, lo) with constant simplification.
  Node materialize(Lit branch, const Node& hi, const Node& lo) {
    if (hi.kind == lo.kind && hi.kind != NodeKind::Var) return hi;
    if (hi.kind == NodeKind::Var && lo.kind == NodeKind::Var &&
        hi.lit == lo.lit) {
      return hi;
    }
    const Lit t = Lit::positive(formula_.new_var());
    // branch-true side.
    switch (hi.kind) {
      case NodeKind::True:
        formula_.add_clause({~branch, t});
        break;
      case NodeKind::False:
        formula_.add_clause({~branch, ~t});
        break;
      case NodeKind::Var:
        formula_.add_clause({~branch, ~t, hi.lit});
        formula_.add_clause({~branch, t, ~hi.lit});
        break;
    }
    // branch-false side.
    switch (lo.kind) {
      case NodeKind::True:
        formula_.add_clause({branch, t});
        break;
      case NodeKind::False:
        formula_.add_clause({branch, ~t});
        break;
      case NodeKind::Var:
        formula_.add_clause({branch, ~t, lo.lit});
        formula_.add_clause({branch, t, ~lo.lit});
        break;
    }
    return {NodeKind::Var, t};
  }

  Formula& formula_;
  std::vector<PbTerm> terms_;
  std::int64_t bound_;
  std::vector<std::int64_t> suffix_sum_;
  std::map<std::pair<std::size_t, std::int64_t>, Node> memo_;
};

}  // namespace

PbToCnfStats encode_cardinality_at_most(Formula& formula,
                                        const std::vector<Lit>& lits,
                                        int bound) {
  return sequential_at_most(formula, lits, bound);
}

PbToCnfStats encode_cardinality_at_least(Formula& formula,
                                         const std::vector<Lit>& lits,
                                         int bound) {
  if (bound <= 0) return {};
  // at-least-k(x) == at-most-(n-k)(~x).
  std::vector<Lit> negated;
  negated.reserve(lits.size());
  for (const Lit l : lits) negated.push_back(~l);
  return sequential_at_most(formula, negated,
                            static_cast<int>(lits.size()) - bound);
}

PbToCnfStats encode_pb_as_cnf(Formula& formula, const PbConstraint& pb) {
  if (pb.is_tautology()) return {};
  if (pb.is_clause()) {
    Clause clause;
    for (const PbTerm& t : pb.terms()) clause.push_back(t.lit);
    const int before = formula.num_clauses();
    formula.add_clause(std::move(clause));
    return {0, formula.num_clauses() - before};
  }
  if (pb.is_cardinality()) {
    std::vector<Lit> lits;
    for (const PbTerm& t : pb.terms()) lits.push_back(t.lit);
    return encode_cardinality_at_least(formula, lits,
                                       static_cast<int>(pb.bound()));
  }
  BddEncoder encoder(formula, {pb.terms().begin(), pb.terms().end()},
                     pb.bound());
  return encoder.run();
}

Formula to_pure_cnf(const Formula& formula, PbToCnfStats* stats) {
  Formula cnf;
  cnf.new_vars(formula.num_vars());
  for (const Clause& clause : formula.clauses()) cnf.add_clause(clause);
  PbToCnfStats total;
  for (const PbConstraint& pb : formula.pb_constraints()) {
    const PbToCnfStats s = encode_pb_as_cnf(cnf, pb);
    total.aux_vars += s.aux_vars;
    total.clauses += s.clauses;
  }
  if (formula.objective()) cnf.set_objective(*formula.objective());
  if (stats != nullptr) *stats = total;
  return cnf;
}

}  // namespace symcolor
