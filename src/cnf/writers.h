#pragma once
// Serialization of formulas to the two standard interchange formats:
//  * DIMACS CNF ("p cnf"), clauses only — rejects formulas with PB parts
//    unless they are clauses in disguise;
//  * OPB (pseudo-Boolean competition format), the natural format for the
//    paper's 0-1 ILP instances including the objective.
// A matching OPB reader supports round-trip tests and external tooling.

#include <iosfwd>
#include <string>

#include "cnf/formula.h"

namespace symcolor {

/// Write DIMACS CNF. Throws std::invalid_argument if the formula has PB
/// constraints that are not plain clauses.
void write_dimacs_cnf(std::ostream& out, const Formula& formula);
std::string write_dimacs_cnf_string(const Formula& formula);

/// Write OPB: objective ("min: ..."), then one line per constraint.
/// Clauses are emitted as cardinality >= 1 constraints.
void write_opb(std::ostream& out, const Formula& formula);
std::string write_opb_string(const Formula& formula);

/// Parse OPB produced by write_opb (plus common syntactic variations).
Formula read_opb(std::istream& in);
Formula read_opb_string(const std::string& text);

}  // namespace symcolor
