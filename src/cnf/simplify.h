#pragma once
// Pre-solve formula simplification.
//
// Applied between encoding and search (the niche SatELite-style
// preprocessors occupy in a SAT pipeline): root-level unit propagation
// over clauses and PB constraints, pure-literal fixing, and clause
// subsumption. The simplified formula lives on the SAME variable space —
// fixed variables are kept as unit clauses — so models, decoders and
// objectives carry over unchanged, and the transformation preserves the
// full model set over non-pure variables (pure fixing preserves
// satisfiability and never worsens the objective because objective
// variables are exempt from it).

#include "cnf/formula.h"

namespace symcolor {

struct SimplifyStats {
  int fixed_variables = 0;     ///< by unit propagation
  int pure_literals = 0;       ///< fixed by purity
  int removed_clauses = 0;     ///< satisfied at root or subsumed
  int shortened_clauses = 0;   ///< false literals stripped
  int removed_pb = 0;          ///< PB constraints satisfied or clausified
  bool unsatisfiable = false;  ///< root conflict found
};

struct SimplifyOptions {
  bool propagate_units = true;
  bool pure_literals = true;
  bool subsumption = true;
  /// Cap on subsumption source-clause length (longer clauses are still
  /// eligible targets); bounds the quadratic corner.
  int max_subsumption_width = 12;
};

/// Simplify `formula`; returns the reduced formula and fills `stats`.
Formula simplify(const Formula& formula, SimplifyStats* stats = nullptr,
                 const SimplifyOptions& options = {});

}  // namespace symcolor
