#include "cnf/formula.h"

#include <algorithm>
#include <stdexcept>

namespace symcolor {

std::int64_t Objective::value(std::span<const LBool> values) const {
  std::int64_t total = 0;
  for (const PbTerm& t : terms) {
    const LBool v = lit_value(values[static_cast<std::size_t>(t.lit.var())],
                              t.lit.negated());
    if (v == LBool::True) total += t.coeff;
  }
  return total;
}

Var Formula::new_var(std::string name) {
  names_.push_back(std::move(name));
  return num_vars_++;
}

Var Formula::new_vars(int count) {
  if (count < 0) throw std::invalid_argument("negative variable count");
  const Var first = num_vars_;
  names_.resize(names_.size() + static_cast<std::size_t>(count));
  num_vars_ += count;
  return first;
}

const std::string& Formula::var_name(Var v) const {
  return names_.at(static_cast<std::size_t>(v));
}

void Formula::add_clause(Clause clause) {
  for (Lit l : clause) {
    if (!l.valid() || l.var() >= num_vars_) {
      throw std::out_of_range("clause literal out of range");
    }
  }
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  // Tautology check: after sorting, x and ~x are adjacent.
  for (std::size_t i = 0; i + 1 < clause.size(); ++i) {
    if (clause[i].var() == clause[i + 1].var()) return;
  }
  if (clause.empty()) trivially_unsat_ = true;
  clauses_.push_back(std::move(clause));
}

void Formula::add_pb(PbConstraint constraint) {
  for (const PbTerm& t : constraint.terms()) {
    if (!t.lit.valid() || t.lit.var() >= num_vars_) {
      throw std::out_of_range("pb literal out of range");
    }
  }
  if (constraint.is_tautology()) return;
  if (constraint.is_contradiction()) trivially_unsat_ = true;
  pb_constraints_.push_back(std::move(constraint));
}

namespace {
std::vector<PbTerm> unit_terms(const std::vector<Lit>& lits) {
  std::vector<PbTerm> terms;
  terms.reserve(lits.size());
  for (Lit l : lits) terms.push_back({1, l});
  return terms;
}
}  // namespace

void Formula::add_at_least(const std::vector<Lit>& lits, std::int64_t bound) {
  add_pb(PbConstraint::at_least(unit_terms(lits), bound));
}

void Formula::add_at_most(const std::vector<Lit>& lits, std::int64_t bound) {
  add_pb(PbConstraint::at_most(unit_terms(lits), bound));
}

void Formula::add_exactly(const std::vector<Lit>& lits, std::int64_t bound) {
  add_at_least(lits, bound);
  add_at_most(lits, bound);
}

bool Formula::satisfied_by(std::span<const LBool> values) const {
  if (trivially_unsat_) return false;
  for (const Clause& clause : clauses_) {
    bool sat = false;
    for (Lit l : clause) {
      if (lit_value(values[static_cast<std::size_t>(l.var())], l.negated()) ==
          LBool::True) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  for (const PbConstraint& c : pb_constraints_) {
    if (!c.satisfied_by(values)) return false;
  }
  return true;
}

}  // namespace symcolor
