#pragma once
// Boolean variables, literals and three-valued assignments.
//
// MiniSat-style encoding: a variable is a dense non-negative integer; a
// literal packs (variable, sign) as 2*var + sign, so literals index arrays
// directly (watch lists, saved phases). sign == 1 means negated.

#include <cstdint>
#include <functional>
#include <ostream>

namespace symcolor {

using Var = int;
constexpr Var kNoVar = -1;

class Lit {
 public:
  constexpr Lit() noexcept : code_(-2) {}
  constexpr Lit(Var var, bool negated) noexcept
      : code_(2 * var + (negated ? 1 : 0)) {}

  /// The positive literal of `var`.
  static constexpr Lit positive(Var var) noexcept { return Lit(var, false); }
  /// The negative literal of `var`.
  static constexpr Lit negative(Var var) noexcept { return Lit(var, true); }
  /// Rebuild from the packed code (watch-list indexing round trip).
  static constexpr Lit from_code(int code) noexcept {
    Lit l;
    l.code_ = code;
    return l;
  }

  [[nodiscard]] constexpr Var var() const noexcept { return code_ >> 1; }
  [[nodiscard]] constexpr bool negated() const noexcept { return code_ & 1; }
  [[nodiscard]] constexpr int code() const noexcept { return code_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return code_ >= 0; }

  /// Complement literal.
  constexpr Lit operator~() const noexcept { return from_code(code_ ^ 1); }

  friend constexpr bool operator==(Lit a, Lit b) noexcept = default;
  friend constexpr auto operator<=>(Lit a, Lit b) noexcept = default;

 private:
  int code_;
};

constexpr Lit kUndefLit{};

inline std::ostream& operator<<(std::ostream& os, Lit l) {
  if (!l.valid()) return os << "<undef>";
  if (l.negated()) os << '~';
  return os << 'x' << l.var();
}

/// Three-valued assignment state.
enum class LBool : std::int8_t { False = 0, True = 1, Undef = 2 };

constexpr LBool lbool_of(bool b) noexcept {
  return b ? LBool::True : LBool::False;
}

/// Value of a literal under a variable value: flips for negated literals.
constexpr LBool lit_value(LBool var_value, bool negated) noexcept {
  if (var_value == LBool::Undef) return LBool::Undef;
  const bool v = (var_value == LBool::True) != negated;
  return lbool_of(v);
}

}  // namespace symcolor

template <>
struct std::hash<symcolor::Lit> {
  std::size_t operator()(symcolor::Lit l) const noexcept {
    return std::hash<int>{}(l.code());
  }
};
