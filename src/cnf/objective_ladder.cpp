#include "cnf/objective_ladder.h"

#include <algorithm>
#include <map>
#include <utility>

namespace symcolor {
namespace {

/// One totalizer node: achievable nonzero partial sums, ascending, each
/// with the literal that the sum reaching it implies.
using Node = std::vector<std::pair<std::int64_t, Lit>>;

/// Distinct-sum census of a merge, values only (the construction dry-run).
std::vector<std::int64_t> merge_values(const std::vector<std::int64_t>& a,
                                       const std::vector<std::int64_t>& b) {
  std::map<std::int64_t, char> seen;
  for (const std::int64_t x : a) seen.emplace(x, 0);
  for (const std::int64_t y : b) seen.emplace(y, 0);
  for (const std::int64_t x : a) {
    for (const std::int64_t y : b) seen.emplace(x + y, 0);
  }
  std::vector<std::int64_t> out;
  out.reserve(seen.size());
  for (const auto& [v, _] : seen) out.push_back(v);
  return out;
}

}  // namespace

ObjectiveLadder::ObjectiveLadder(Formula* formula, const Objective& objective,
                                 std::size_t max_values) {
  // Normalize exactly like PbConstraint: merge same-var terms, flip
  // negative weights onto the complement literal (offset absorbs the
  // constant), drop zeros. The map is keyed by variable so each var
  // contributes one term.
  std::map<Var, std::pair<std::int64_t, Lit>> by_var;  // var -> (w, lit)
  for (const PbTerm& t : objective.terms) {
    if (t.coeff == 0) continue;
    auto [it, inserted] = by_var.emplace(t.lit.var(), std::pair{t.coeff, t.lit});
    if (inserted) continue;
    // Same variable again: convert to this entry's orientation and add.
    it->second.first += it->second.second == t.lit ? t.coeff : -t.coeff;
    if (it->second.second != t.lit) offset_ += t.coeff;
  }
  std::vector<std::pair<std::int64_t, Lit>> terms;
  for (auto& [var, wl] : by_var) {
    auto [w, lit] = wl;
    if (w == 0) continue;
    if (w < 0) {
      // w*l == -w*(~l) + w: count the complement, shift the offset.
      offset_ += w;
      w = -w;
      lit = ~lit;
    }
    terms.push_back({w, lit});
    soft_terms_.push_back({w, ~lit});
    sum_ += w;
  }

  // Dry-run the balanced merge tree on value sets alone; refuse before
  // touching the formula if any node would exceed the cap. The per-level
  // merged value sets are kept (same order as the real pass below) so
  // the enumeration is not repeated when literals are assigned.
  std::vector<std::vector<std::vector<std::int64_t>>> census_levels;
  {
    std::vector<std::vector<std::int64_t>> leaves;
    for (const auto& [w, lit] : terms) leaves.push_back({w});
    census_levels.push_back(std::move(leaves));
    while (census_levels.back().size() > 1) {
      const std::vector<std::vector<std::int64_t>>& level =
          census_levels.back();
      std::vector<std::vector<std::int64_t>> next;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        std::vector<std::int64_t> merged =
            merge_values(level[i], level[i + 1]);
        if (merged.size() > max_values) {
          ok_ = false;
          return;
        }
        next.push_back(std::move(merged));
      }
      if (level.size() % 2 == 1) next.push_back(level.back());
      census_levels.push_back(std::move(next));
    }
  }

  // Real pass: leaves are the term literals themselves (sum >= w iff the
  // literal is true), internal nodes get fresh outputs — one per value
  // the census already enumerated — plus the merge clauses and the
  // ordering chain.
  std::vector<Node> level;
  for (const auto& [w, lit] : terms) level.push_back({{w, lit}});
  for (std::size_t depth = 1; level.size() > 1; ++depth) {
    const std::vector<std::vector<std::int64_t>>& census =
        census_levels[depth];
    std::vector<Node> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const Node& a = level[i];
      const Node& b = level[i + 1];
      Node c;
      for (const std::int64_t v : census[i / 2]) {
        c.push_back({v, Lit::positive(formula->new_var())});
      }
      const auto output = [&c](std::int64_t v) {
        const auto it = std::lower_bound(
            c.begin(), c.end(), v,
            [](const auto& entry, std::int64_t x) { return entry.first < x; });
        return it->second;  // v is in the set by construction
      };
      // sum_A >= va  ->  C_va   (and symmetrically for B)
      for (const auto& [va, la] : a) formula->add_implication(la, output(va));
      for (const auto& [vb, lb] : b) formula->add_implication(lb, output(vb));
      // sum_A >= va and sum_B >= vb  ->  C_{va+vb}
      for (const auto& [va, la] : a) {
        for (const auto& [vb, lb] : b) {
          formula->add_clause({~la, ~lb, output(va + vb)});
        }
      }
      // Ordering chain: reaching a value implies reaching every smaller
      // one, so ONE negated output caps the sum from above.
      for (std::size_t j = 1; j < c.size(); ++j) {
        formula->add_implication(c[j].second, c[j - 1].second);
      }
      next.push_back(std::move(c));
    }
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  if (!level.empty()) outputs_ = std::move(level.front());
}

ObjectiveLadder::Bound ObjectiveLadder::at_most(std::int64_t bound) const {
  const std::int64_t norm = bound - offset_;  // bound on the positive sum
  if (norm < 0) return {Bound::Kind::Infeasible, kUndefLit};
  if (norm >= sum_) return {Bound::Kind::Free, kUndefLit};
  // Smallest achievable value strictly above the bound; assuming its
  // output false forbids every sum at or beyond it (ordering chain).
  const auto it = std::upper_bound(
      outputs_.begin(), outputs_.end(), norm,
      [](std::int64_t x, const auto& entry) { return x < entry.first; });
  // norm < sum_ and sum_ is achievable, so some output lies above norm.
  return {Bound::Kind::Assume, ~it->second};
}

}  // namespace symcolor
