#pragma once
// Conversion of pseudo-Boolean constraints to CNF.
//
// The paper (Section 2.3) contrasts the native-PB route with CNF
// conversions, citing Warners' linear-overhead transformation. This
// module provides two converters used by the pure-CNF coloring pipeline:
//
//  * cardinality constraints — the sequential-counter encoding
//    (Sinz 2005 style): s(i,j) = "at least j of the first i+1 literals
//    are true", O(n*bound) auxiliary variables and clauses, arc-
//    consistent under unit propagation;
//  * general PB constraints — a Tseitin-encoded reduced ordered BDD over
//    the weighted sum, linear in the number of distinct (index, residual
//    bound) pairs; polynomial for the coefficient patterns that occur in
//    practice.
//
// Both preserve equisatisfiability over the original variables: every
// model of the original constraint extends to exactly one assignment of
// the auxiliaries, and no new models over the original variables appear.

#include "cnf/formula.h"
#include "cnf/pb_constraint.h"

namespace symcolor {

struct PbToCnfStats {
  int aux_vars = 0;
  int clauses = 0;
};

/// Encode "at least `bound` of `lits`" as CNF into `formula` using the
/// sequential-counter construction. bound <= 0 is a no-op; an infeasible
/// bound adds the empty clause.
PbToCnfStats encode_cardinality_at_least(Formula& formula,
                                         const std::vector<Lit>& lits,
                                         int bound);

/// Encode "at most `bound` of `lits`" (dual of the above).
PbToCnfStats encode_cardinality_at_most(Formula& formula,
                                        const std::vector<Lit>& lits,
                                        int bound);

/// Encode an arbitrary normalized PB constraint via a BDD. Dispatches to
/// the sequential counter when the constraint is a cardinality.
PbToCnfStats encode_pb_as_cnf(Formula& formula, const PbConstraint& pb);

/// Rewrite a whole formula into pure CNF: every PB constraint is encoded
/// and removed. The objective (if any) is preserved untouched.
Formula to_pure_cnf(const Formula& formula, PbToCnfStats* stats = nullptr);

}  // namespace symcolor
