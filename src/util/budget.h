#pragma once
// SolveBudget — the unified resource-control handle for the solve pipeline.
//
// A budget bundles every way a caller can bound or preempt a solve:
//   * a wall-clock deadline (seconds),
//   * a conflict budget and a propagation budget (counted per solve call),
//   * an asynchronous interrupt flag, settable from any thread or from a
//     signal handler (it is a single atomic store).
//
// Everywhere in the pipeline a limit of <= 0 means "unlimited" — the same
// convention Deadline already uses — so a default-constructed SolveBudget
// imposes no constraint at all.
//
// Budgets form a parent chain: child() derives a per-probe budget that can
// never exceed what remains of its parent, and interrupt / deadline expiry
// anywhere up the chain preempts every descendant. The chain lets an outer
// run (an optimizer search, a coloring loop, a CLI invocation) hand each
// inner solve a slice while keeping one global kill switch.
//
// SolveBudget is non-copyable (it owns an atomic and is the identity other
// threads signal through); pass it by const reference. All mutating entry
// points are const and thread-safe so that read-only holders — the CDCL
// loop, a SIGINT handler — can poll and signal concurrently.

#include <atomic>
#include <cstdint>

#include "util/timer.h"

namespace symcolor {

/// Which resource bound ended a solve early. `None` means the solve ran to
/// a definitive answer (or has not run yet).
enum class BudgetTrip : std::uint8_t {
  None,
  Deadline,
  Conflicts,
  Propagations,
  Interrupt,
};

/// Short stable name for logs and stats output ("none", "deadline", ...).
[[nodiscard]] const char* budget_trip_name(BudgetTrip trip) noexcept;

class SolveBudget {
 public:
  /// No limits, no parent.
  SolveBudget() noexcept = default;

  /// Arm a wall-clock deadline and/or conflict and propagation budgets.
  /// Any argument <= 0 leaves that dimension unlimited.
  explicit SolveBudget(double seconds, std::int64_t conflicts = 0,
                       std::int64_t propagations = 0) noexcept
      : deadline_(seconds),
        conflicts_(conflicts > 0 ? conflicts : 0),
        propagations_(propagations > 0 ? propagations : 0) {}

  /// Migration shim: every legacy `Deadline` call site is a SolveBudget
  /// with only the wall clock armed. Intentionally implicit — the elapsed
  /// time already consumed by the deadline carries over.
  SolveBudget(const Deadline& deadline) noexcept  // NOLINT(google-explicit-constructor)
      : deadline_(deadline) {}

  SolveBudget(const SolveBudget&) = delete;
  SolveBudget& operator=(const SolveBudget&) = delete;
  SolveBudget(SolveBudget&& other) noexcept
      : deadline_(other.deadline_),
        conflicts_(other.conflicts_),
        propagations_(other.propagations_),
        pre_trip_(other.pre_trip_),
        parent_(other.parent_),
        interrupted_(other.interrupted_.load(std::memory_order_acquire)) {}
  SolveBudget& operator=(SolveBudget&&) = delete;

  /// Request asynchronous preemption. Safe from any thread and from signal
  /// handlers (a single lock-free atomic store); const so that read-only
  /// holders of the budget can still signal through it.
  ///
  /// The flag is STICKY by design: a solve never clears it, so a flag
  /// still set from a previous solve preempts the next one at its entry
  /// poll. That is load-bearing — a run-wide kill switch (SIGINT, a
  /// service drain) must stop every later solve sharing the budget, not
  /// just the one that happened to be in flight. A caller that meant the
  /// interrupt for a single solve and wants to reuse the same budget must
  /// re-arm it explicitly with clear_interrupt() between solves.
  void interrupt() const noexcept {
    interrupted_.store(true, std::memory_order_release);
  }

  /// Re-arm after an interrupt so the same budget can drive another solve
  /// (the owner's half of the sticky-interrupt contract above).
  /// Does not touch ancestors: a parent-level interrupt stays in force.
  void clear_interrupt() const noexcept {
    interrupted_.store(false, std::memory_order_release);
  }

  /// True when this budget or any ancestor has been interrupted.
  [[nodiscard]] bool interrupted() const noexcept {
    for (const SolveBudget* b = this; b != nullptr; b = b->parent_) {
      if (b->interrupted_.load(std::memory_order_acquire)) return true;
    }
    return false;
  }

  /// The wall-clock component of this budget alone (ancestors excluded);
  /// use deadline_expired() / remaining_seconds() for chain-aware checks.
  [[nodiscard]] const Deadline& deadline() const noexcept { return deadline_; }

  /// Conflict / propagation caps for one solve call; 0 = unlimited.
  [[nodiscard]] std::int64_t conflict_budget() const noexcept {
    return conflicts_;
  }
  [[nodiscard]] std::int64_t prop_budget() const noexcept {
    return propagations_;
  }

  /// True when neither this budget nor any ancestor constrains anything.
  [[nodiscard]] bool unlimited() const noexcept;

  /// True when the wall clock has run out here or anywhere up the chain.
  [[nodiscard]] bool deadline_expired() const noexcept;

  /// Seconds left on the tightest deadline in the chain; +inf when every
  /// level is unlimited, clamped at 0 once expired.
  [[nodiscard]] double remaining_seconds() const noexcept;

  /// Combined asynchronous check: a pre-recorded trip (see pre_tripped())
  /// outranks everything, then Interrupt dominates Deadline; conflict and
  /// propagation budgets are counted by the solver itself and are not
  /// visible here. This is the call sitting on the CDCL poll cadence.
  [[nodiscard]] BudgetTrip poll() const noexcept {
    if (pre_trip_ != BudgetTrip::None) return pre_trip_;
    if (interrupted()) return BudgetTrip::Interrupt;
    if (deadline_expired()) return BudgetTrip::Deadline;
    return BudgetTrip::None;
  }

  /// The condition a definitively-exhausted budget was born tripped on
  /// (None for ordinary budgets). A pre-tripped budget preempts a solve at
  /// its entry poll before ANY work happens; BudgetLedger::probe() hands
  /// one out once its counted caps are spent, so a search loop that fails
  /// to check exhausted() gets a zero-work Unknown with the correct trip
  /// kind instead of a drip of extra conflicts (or, on a conflict-free
  /// instance, an effectively unlimited solve).
  [[nodiscard]] BudgetTrip pre_tripped() const noexcept { return pre_trip_; }

  /// Derive a per-probe budget that can never exceed this one: the child's
  /// wall clock is clamped to the parent's remaining seconds and its
  /// conflict/propagation caps to the parent's caps (a parent cap applies
  /// even when the child asks for none). The child keeps a pointer back to
  /// the parent, so parent-level interrupts and deadline expiry preempt it;
  /// the parent must therefore outlive the child.
  [[nodiscard]] SolveBudget child(double seconds = 0.0,
                                  std::int64_t conflicts = 0,
                                  std::int64_t propagations = 0) const noexcept;

  /// A child that is born tripped on `trip`: its poll() — and therefore
  /// the solver's entry poll — reports that condition immediately, so a
  /// solve handed this budget returns Unknown without doing any work,
  /// with last_trip() recording the given kind. This is how an exhausted
  /// BudgetLedger expresses "there is definitively nothing left".
  [[nodiscard]] SolveBudget child_exhausted(BudgetTrip trip) const noexcept {
    SolveBudget b(0.0, 0, 0, this);
    b.pre_trip_ = trip;
    return b;
  }

 private:
  SolveBudget(double seconds, std::int64_t conflicts, std::int64_t propagations,
              const SolveBudget* parent) noexcept
      : SolveBudget(seconds, conflicts, propagations) {
    parent_ = parent;
  }

  Deadline deadline_;
  std::int64_t conflicts_ = 0;
  std::int64_t propagations_ = 0;
  BudgetTrip pre_trip_ = BudgetTrip::None;
  const SolveBudget* parent_ = nullptr;
  mutable std::atomic<bool> interrupted_{false};
};

/// Accounting for a multi-probe search (optimizer strategies, the SAT
/// coloring loop) running many solves under one SolveBudget. The solver
/// counts conflicts/propagations per call, so the search must track the
/// running total itself: charge() each probe's consumption, then probe()
/// emits a child budget carrying only what is left.
class BudgetLedger {
 public:
  explicit BudgetLedger(const SolveBudget& parent) noexcept
      : parent_(parent) {}

  BudgetLedger(const BudgetLedger&) = delete;
  BudgetLedger& operator=(const BudgetLedger&) = delete;

  /// Record resources consumed by a finished probe.
  void charge(std::int64_t conflicts, std::int64_t propagations) noexcept {
    if (conflicts > 0) spent_conflicts_ += conflicts;
    if (propagations > 0) spent_propagations_ += propagations;
  }

  /// The reason the search must stop now, or None to keep going. Counted
  /// budgets report as Conflicts/Propagations; asynchronous conditions
  /// (interrupt, wall clock) defer to the parent's poll().
  [[nodiscard]] BudgetTrip trip() const noexcept {
    const BudgetTrip async = parent_.poll();
    if (async != BudgetTrip::None) return async;
    if (parent_.conflict_budget() > 0 &&
        spent_conflicts_ >= parent_.conflict_budget()) {
      return BudgetTrip::Conflicts;
    }
    if (parent_.prop_budget() > 0 &&
        spent_propagations_ >= parent_.prop_budget()) {
      return BudgetTrip::Propagations;
    }
    return BudgetTrip::None;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return trip() != BudgetTrip::None;
  }

  /// A child budget holding the unspent remainder of each counted budget.
  /// When the ledger is already exhausted — including by a charge() racing
  /// the final trip() check — the probe is born tripped on the exhausted
  /// dimension, so a solve handed it returns Unknown at its entry poll
  /// with zero work instead of receiving a residual (or, worse, an
  /// effectively unlimited) slice. Wall clock and interrupt flow through
  /// the parent link.
  [[nodiscard]] SolveBudget probe() const noexcept {
    if (const BudgetTrip t = trip(); t != BudgetTrip::None) {
      return parent_.child_exhausted(t);
    }
    std::int64_t conflicts = 0;
    if (parent_.conflict_budget() > 0) {
      conflicts = parent_.conflict_budget() - spent_conflicts_;
    }
    std::int64_t propagations = 0;
    if (parent_.prop_budget() > 0) {
      propagations = parent_.prop_budget() - spent_propagations_;
    }
    return parent_.child(0.0, conflicts, propagations);
  }

  [[nodiscard]] std::int64_t spent_conflicts() const noexcept {
    return spent_conflicts_;
  }
  [[nodiscard]] std::int64_t spent_propagations() const noexcept {
    return spent_propagations_;
  }

 private:
  const SolveBudget& parent_;
  std::int64_t spent_conflicts_ = 0;
  std::int64_t spent_propagations_ = 0;
};

}  // namespace symcolor
