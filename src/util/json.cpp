#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace symcolor {
namespace {

// Recursive-descent parser over a string_view cursor. Depth is threaded
// explicitly and capped at Json::kMaxDepth (see the header's robustness
// notes).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run() {
    std::optional<Json> v = value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char expected) {
    if (eof() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Json> value(int depth) {
    if (depth > Json::kMaxDepth) return std::nullopt;
    skip_ws();
    if (eof()) return std::nullopt;
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': {
        std::optional<std::string> s = string();
        if (!s) return std::nullopt;
        return Json(std::move(*s));
      }
      case 't': return consume_word("true") ? std::optional<Json>(Json(true))
                                            : std::nullopt;
      case 'f': return consume_word("false") ? std::optional<Json>(Json(false))
                                             : std::nullopt;
      case 'n': return consume_word("null")
                           ? std::optional<Json>(Json(nullptr))
                           : std::nullopt;
      default: return number();
    }
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    bool digits = false;
    bool integral = true;
    while (!eof()) {
      const char c = peek();
      if (c >= '0' && c <= '9') {
        digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) return std::nullopt;
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t out = 0;
      const auto [ptr, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), out);
      if (ec == std::errc{} && ptr == tok.data() + tok.size()) {
        return Json(out);
      }
      // Out-of-range integer literal: fall through to double.
    }
    double out = 0.0;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), out);
    if (ec != std::errc{} || ptr != tok.data() + tok.size() ||
        !std::isfinite(out)) {
      return std::nullopt;
    }
    return Json(out);
  }

  std::optional<std::string> string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // UTF-8 encode the BMP code point (surrogate pairs are beyond
          // what the protocol needs; lone surrogates encode as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> array(int depth) {
    if (!consume('[')) return std::nullopt;
    Json::Array items;
    skip_ws();
    if (consume(']')) return Json(std::move(items));
    for (;;) {
      std::optional<Json> v = value(depth + 1);
      if (!v) return std::nullopt;
      items.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return Json(std::move(items));
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> object(int depth) {
    if (!consume('{')) return std::nullopt;
    Json::Object members;
    skip_ws();
    if (consume('}')) return Json(std::move(members));
    for (;;) {
      skip_ws();
      std::optional<std::string> key = string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      std::optional<Json> v = value(depth + 1);
      if (!v) return std::nullopt;
      members[std::move(*key)] = std::move(*v);
      skip_ws();
      if (consume('}')) return Json(std::move(members));
      if (!consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

std::string Json::dump() const {
  std::string out;
  if (is_null()) {
    out = "null";
  } else if (is_bool()) {
    out = as_bool() ? "true" : "false";
  } else if (is_int()) {
    out = std::to_string(as_int());
  } else if (is_number()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", as_double());
    out = buf;
  } else if (is_string()) {
    dump_string(as_string(), &out);
  } else if (is_array()) {
    out.push_back('[');
    bool first = true;
    for (const Json& item : as_array()) {
      if (!first) out.push_back(',');
      first = false;
      out += item.dump();
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, item] : as_object()) {
      if (!first) out.push_back(',');
      first = false;
      dump_string(key, &out);
      out.push_back(':');
      out += item.dump();
    }
    out.push_back('}');
  }
  return out;
}

}  // namespace symcolor
