#include "util/timer.h"

#include <limits>

namespace symcolor {

double Deadline::remaining() const noexcept {
  if (unlimited()) return std::numeric_limits<double>::infinity();
  const double left = budget_seconds_ - timer_.seconds();
  return left > 0.0 ? left : 0.0;
}

}  // namespace symcolor
