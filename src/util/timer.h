#pragma once
// Wall-clock timing utilities used by solvers and the benchmark harness.
//
// All solver components that enforce time budgets share a single Timer /
// Deadline abstraction so that "timeout" means the same thing in tests,
// benches, and the public API.

#include <chrono>
#include <cstdint>

namespace symcolor {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  /// Restart the stopwatch from zero.
  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline expressed as a second budget. A budget of <= 0 means
/// "no limit". Cheap to copy; solvers poll expired() at coarse intervals.
class Deadline {
 public:
  Deadline() noexcept : budget_seconds_(0.0) {}
  explicit Deadline(double budget_seconds) noexcept
      : budget_seconds_(budget_seconds) {}

  /// True when a positive budget was set and it has been consumed.
  [[nodiscard]] bool expired() const noexcept {
    return budget_seconds_ > 0.0 && timer_.seconds() >= budget_seconds_;
  }

  /// Seconds remaining; +inf when unlimited, never negative.
  [[nodiscard]] double remaining() const noexcept;

  /// Seconds consumed since the deadline was armed.
  [[nodiscard]] double elapsed() const noexcept { return timer_.seconds(); }

  [[nodiscard]] bool unlimited() const noexcept { return budget_seconds_ <= 0.0; }
  [[nodiscard]] double budget() const noexcept { return budget_seconds_; }

 private:
  Timer timer_;
  double budget_seconds_;
};

}  // namespace symcolor
