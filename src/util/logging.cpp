#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace symcolor {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

const char* tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[symcolor %s] %s\n", tag(level), message.c_str());
}

}  // namespace symcolor
