#pragma once
// Small text helpers shared by parsers and report printers.

#include <string>
#include <string_view>
#include <vector>

namespace symcolor {

/// Split `input` on any run of characters from `delims`; empty tokens are
/// dropped.
std::vector<std::string> split_tokens(std::string_view input,
                                      std::string_view delims = " \t\r\n");

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s) noexcept;

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Render seconds with sensible precision for report tables ("12.3", "0.04",
/// or "T/O" when `timed_out`).
std::string format_seconds(double seconds, bool timed_out = false);

/// Render a large count compactly, e.g. 1.1e+168 style for symmetry-group
/// orders that overflow any integer type (input is log10 of the count).
std::string format_pow10(double log10_count);

}  // namespace symcolor
