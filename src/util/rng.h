#pragma once
// Deterministic pseudo-random number generation.
//
// Every randomized component (benchmark generators, VSIDS tie-breaking,
// property-based tests) takes an explicit Rng so runs are reproducible
// from a seed. The generator is SplitMix64 — tiny, fast, and statistically
// adequate for workload synthesis (not for cryptography).

#include <cstdint>
#include <vector>

namespace symcolor {

/// SplitMix64 generator with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept
      : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of 0..n-1.
  std::vector<int> permutation(int n);

 private:
  std::uint64_t state_;
};

}  // namespace symcolor
