#include "util/report.h"

#include <cstdio>

namespace symcolor {

std::string format_solver_line(const SolverStats& stats) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "solver: %lld conflicts, %lld decisions, %lld propagations",
                static_cast<long long>(stats.conflicts),
                static_cast<long long>(stats.decisions),
                static_cast<long long>(stats.propagations));
  return buf;
}

std::string format_workers_line(const SolverStats& stats) {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "workers: %lld conflicts, %lld decisions, %lld propagations, "
                "%lld exported, %lld imported",
                static_cast<long long>(stats.conflicts),
                static_cast<long long>(stats.decisions),
                static_cast<long long>(stats.propagations),
                static_cast<long long>(stats.exported_clauses),
                static_cast<long long>(stats.imported_clauses));
  return buf;
}

std::string format_cubes_line(const SolverStats& stats) {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "cubes: %lld dealt, %lld refuted, %lld siblings pruned, "
                "%lld splits",
                static_cast<long long>(stats.cubes_dealt),
                static_cast<long long>(stats.cubes_refuted),
                static_cast<long long>(stats.cube_siblings_pruned),
                static_cast<long long>(stats.cube_splits));
  return buf;
}

std::string format_budget_line(BudgetTrip tripped, const SolverStats& stats) {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "budget: tripped=%s exits deadline=%lld conflicts=%lld "
                "propagations=%lld interrupt=%lld",
                budget_trip_name(tripped),
                static_cast<long long>(stats.deadline_exits),
                static_cast<long long>(stats.conflict_budget_exits),
                static_cast<long long>(stats.prop_budget_exits),
                static_cast<long long>(stats.interrupt_exits));
  return buf;
}

std::string format_inprocess_line(const SolverStats& stats) {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "inprocess: %lld rounds, %lld clauses vivified, "
                "%lld literals dropped, %lld clauses removed, "
                "%lld vars replaced",
                static_cast<long long>(stats.inprocess_rounds),
                static_cast<long long>(stats.vivified_clauses),
                static_cast<long long>(stats.vivified_literals),
                static_cast<long long>(stats.viv_removed_clauses),
                static_cast<long long>(stats.replaced_vars));
  return buf;
}

std::string format_incremental_line(const SolverStats& stats) {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "incremental: %lld chrono backtracks, "
                "%lld reused trail literals, %lld saved propagations",
                static_cast<long long>(stats.chrono_backtracks),
                static_cast<long long>(stats.reused_trail_literals),
                static_cast<long long>(stats.saved_propagations));
  return buf;
}

}  // namespace symcolor
