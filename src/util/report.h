#pragma once
// Shared front-end reporting conventions for symcolor_cli and
// symcolor_serve: exit codes and the exact `--stats` line formats. Both
// tools emit the SAME strings and the SAME exit-code mapping so that
// scripts and CI smoke checks can parse either without special cases.

#include <string>

#include "sat/solver_engine.h"
#include "util/budget.h"

namespace symcolor {

/// Process exit codes shared by every front end:
///   0 — optimal / SAT answer proved
///   1 — infeasible / UNSAT proved
///   2 — a resource budget or interrupt stopped the run (degraded output)
///   3 — usage or input error
inline constexpr int kExitSolved = 0;
inline constexpr int kExitInfeasible = 1;
inline constexpr int kExitStopped = 2;
inline constexpr int kExitUsage = 3;

/// "solver: N conflicts, N decisions, N propagations" — the headline
/// search-effort line both tools print under --stats.
[[nodiscard]] std::string format_solver_line(const SolverStats& stats);

/// "workers: N conflicts, N decisions, N propagations, N exported, N
/// imported" — the aggregated all-workers view of a parallel solve
/// (portfolio or cube-and-conquer): the sum over every worker, losers
/// included, where the `solver:` line shows only the winner.
[[nodiscard]] std::string format_workers_line(const SolverStats& stats);

/// "cubes: N dealt, N refuted, N siblings pruned, N splits" — the
/// cube-and-conquer schedule summary, printed only when the solve
/// actually dealt cubes (cubes_dealt > 0).
[[nodiscard]] std::string format_cubes_line(const SolverStats& stats);

/// "budget: tripped=<name> exits deadline=N conflicts=N propagations=N
/// interrupt=N" — the resource-control line, with the trip-counter names
/// shared verbatim between the CLI and the server.
[[nodiscard]] std::string format_budget_line(BudgetTrip tripped,
                                             const SolverStats& stats);

/// "inprocess: N rounds, N clauses vivified, N literals dropped, N
/// clauses removed, N vars replaced" — the restart-boundary inprocessing
/// summary, printed only when at least one round ran (inprocess_rounds >
/// 0, i.e. never under --inprocess off).
[[nodiscard]] std::string format_inprocess_line(const SolverStats& stats);

/// "incremental: N chrono backtracks, N reused trail literals, N saved
/// propagations" — the incremental hot-path summary (chronological
/// backtracking + assumption-trail reuse), printed only when at least one
/// counter is nonzero (e.g. never with --chrono 0 on a one-shot solve).
[[nodiscard]] std::string format_incremental_line(const SolverStats& stats);

}  // namespace symcolor
