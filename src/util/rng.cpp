#include "util/rng.h"

#include <cassert>
#include <numeric>

namespace symcolor {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias for small bounds.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1ULL;
  return lo + static_cast<std::int64_t>(below(span));
}

std::vector<int> Rng::permutation(int n) {
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  shuffle(p);
  return p;
}

}  // namespace symcolor
