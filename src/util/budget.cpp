#include "util/budget.h"

#include <cmath>
#include <limits>

namespace symcolor {

const char* budget_trip_name(BudgetTrip trip) noexcept {
  switch (trip) {
    case BudgetTrip::None: return "none";
    case BudgetTrip::Deadline: return "deadline";
    case BudgetTrip::Conflicts: return "conflicts";
    case BudgetTrip::Propagations: return "propagations";
    case BudgetTrip::Interrupt: return "interrupt";
  }
  return "none";
}

bool SolveBudget::unlimited() const noexcept {
  for (const SolveBudget* b = this; b != nullptr; b = b->parent_) {
    if (!b->deadline_.unlimited() || b->conflicts_ > 0 ||
        b->propagations_ > 0 || b->pre_trip_ != BudgetTrip::None ||
        b->interrupted_.load(std::memory_order_acquire)) {
      return false;
    }
  }
  return true;
}

bool SolveBudget::deadline_expired() const noexcept {
  for (const SolveBudget* b = this; b != nullptr; b = b->parent_) {
    if (b->deadline_.expired()) return true;
  }
  return false;
}

double SolveBudget::remaining_seconds() const noexcept {
  double remaining = std::numeric_limits<double>::infinity();
  for (const SolveBudget* b = this; b != nullptr; b = b->parent_) {
    const double r = b->deadline_.remaining();
    if (r < remaining) remaining = r;
  }
  return remaining;
}

SolveBudget SolveBudget::child(double seconds, std::int64_t conflicts,
                               std::int64_t propagations) const noexcept {
  // Wall clock: the child gets min(requested, chain remaining). When the
  // request is unlimited but an ancestor is not, inherit the remainder so
  // the child's own deadline is armed too (cheap, and keeps deadline()
  // meaningful for callers that only look at the child).
  const double chain_left = remaining_seconds();
  double budget_seconds = seconds > 0.0 ? seconds : chain_left;
  if (budget_seconds > chain_left) budget_seconds = chain_left;
  if (std::isinf(budget_seconds)) budget_seconds = 0.0;  // unlimited

  // Counted budgets: a child request can never exceed the parent's cap,
  // and an uncapped request inherits the parent's cap outright. (Per-call
  // counts reset each solve; callers that need "remaining across probes"
  // semantics track consumption with a BudgetLedger.)
  auto clamp = [](std::int64_t requested, std::int64_t parent) noexcept {
    if (requested <= 0) return parent > 0 ? parent : std::int64_t{0};
    if (parent > 0 && requested > parent) return parent;
    return requested;
  };
  return SolveBudget(budget_seconds, clamp(conflicts, conflicts_),
                     clamp(propagations, propagations_), this);
}

}  // namespace symcolor
