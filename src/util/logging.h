#pragma once
// Minimal leveled logging for library diagnostics.
//
// The library is quiet by default (level Warn); benches and examples raise
// the level explicitly. Logging goes to stderr so it never mixes with
// structured results on stdout.

#include <sstream>
#include <string>

namespace symcolor {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum severity that will be emitted.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit a single log line (severity tag + message) if `level` is enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define SYMCOLOR_LOG(level) ::symcolor::detail::LogLine(level)
#define SYMCOLOR_DEBUG() SYMCOLOR_LOG(::symcolor::LogLevel::Debug)
#define SYMCOLOR_INFO() SYMCOLOR_LOG(::symcolor::LogLevel::Info)
#define SYMCOLOR_WARN() SYMCOLOR_LOG(::symcolor::LogLevel::Warn)

}  // namespace symcolor
