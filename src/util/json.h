#pragma once
// Minimal JSON value type for the newline-delimited protocol spoken by
// symcolor_serve. Self-contained on purpose: the container bakes no JSON
// library, and the protocol needs only scalars, arrays, and objects.
//
// Robustness notes (this parses bytes from untrusted clients):
//   * parse() never throws — malformed input returns std::nullopt;
//   * nesting depth is capped (kMaxDepth) so a hostile "[[[[..." line
//     cannot blow the parser's stack;
//   * objects keep keys in sorted order (std::map), so dump() output is
//     deterministic — tests and the CI smoke script compare strings.
//
// Numbers are stored as int64 when the literal looks integral (no '.',
// 'e', or 'E') and as double otherwise; as_int()/as_double() convert
// across the two freely.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace symcolor {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  /// Maximum array/object nesting parse() accepts.
  static constexpr int kMaxDepth = 64;

  Json() noexcept : value_(nullptr) {}
  Json(std::nullptr_t) noexcept : value_(nullptr) {}  // NOLINT
  Json(bool b) noexcept : value_(b) {}                // NOLINT
  Json(int n) noexcept : value_(std::int64_t{n}) {}   // NOLINT
  Json(std::int64_t n) noexcept : value_(n) {}        // NOLINT
  Json(double d) noexcept : value_(d) {}              // NOLINT
  Json(const char* s) : value_(std::string(s)) {}     // NOLINT
  Json(std::string s) : value_(std::move(s)) {}       // NOLINT
  Json(Array a) : value_(std::move(a)) {}             // NOLINT
  Json(Object o) : value_(std::move(o)) {}            // NOLINT

  /// Parse one JSON document; std::nullopt on any syntax error, trailing
  /// garbage, or nesting beyond kMaxDepth.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text);

  /// Serialize compactly (no whitespace). Deterministic: object keys are
  /// emitted in sorted order.
  [[nodiscard]] std::string dump() const;

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_int() const noexcept {
    return std::holds_alternative<std::int64_t>(value_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return is_int() || std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(value_);
  }

  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    const bool* b = std::get_if<bool>(&value_);
    return b != nullptr ? *b : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const noexcept {
    if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
    if (const auto* d = std::get_if<double>(&value_)) {
      return static_cast<std::int64_t>(*d);
    }
    return fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const noexcept {
    if (const auto* d = std::get_if<double>(&value_)) return *d;
    if (const auto* i = std::get_if<std::int64_t>(&value_)) {
      return static_cast<double>(*i);
    }
    return fallback;
  }
  [[nodiscard]] const std::string& as_string() const noexcept {
    static const std::string kEmpty;
    const std::string* s = std::get_if<std::string>(&value_);
    return s != nullptr ? *s : kEmpty;
  }
  [[nodiscard]] const Array& as_array() const noexcept {
    static const Array kEmpty;
    const Array* a = std::get_if<Array>(&value_);
    return a != nullptr ? *a : kEmpty;
  }
  [[nodiscard]] const Object& as_object() const noexcept {
    static const Object kEmpty;
    const Object* o = std::get_if<Object>(&value_);
    return o != nullptr ? *o : kEmpty;
  }

  /// Object member lookup; nullptr when this is not an object or the key
  /// is absent. The usual protocol accessor:
  ///   if (const Json* op = msg.find("op")) ...
  [[nodiscard]] const Json* find(const std::string& key) const noexcept {
    const Object* o = std::get_if<Object>(&value_);
    if (o == nullptr) return nullptr;
    const auto it = o->find(key);
    return it != o->end() ? &it->second : nullptr;
  }

  // Typed object-member conveniences with fallbacks.
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback = 0) const noexcept {
    const Json* v = find(key);
    return v != nullptr && v->is_number() ? v->as_int() : fallback;
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback = 0.0) const noexcept {
    const Json* v = find(key);
    return v != nullptr && v->is_number() ? v->as_double() : fallback;
  }
  [[nodiscard]] bool get_bool(const std::string& key,
                              bool fallback = false) const noexcept {
    const Json* v = find(key);
    return v != nullptr ? v->as_bool(fallback) : fallback;
  }
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback = {}) const {
    const Json* v = find(key);
    return v != nullptr && v->is_string() ? v->as_string()
                                          : std::move(fallback);
  }

  /// Mutable object member access (creates the object/key as needed);
  /// the builder-side counterpart of find().
  Json& operator[](const std::string& key) {
    if (!is_object()) value_ = Object{};
    return std::get<Object>(value_)[key];
  }

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;
};

}  // namespace symcolor
