#include "util/text.h"

#include <cmath>
#include <cstdio>

namespace symcolor {

std::vector<std::string> split_tokens(std::string_view input,
                                      std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() && delims.find(input[i]) != std::string_view::npos) {
      ++i;
    }
    std::size_t start = i;
    while (i < input.size() && delims.find(input[i]) == std::string_view::npos) {
      ++i;
    }
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  const std::string_view ws = " \t\r\n";
  const std::size_t first = s.find_first_not_of(ws);
  if (first == std::string_view::npos) return {};
  const std::size_t last = s.find_last_not_of(ws);
  return s.substr(first, last - first + 1);
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_seconds(double seconds, bool timed_out) {
  if (timed_out) return "T/O";
  char buf[32];
  if (seconds < 0.0) seconds = 0.0;
  if (seconds < 10.0) {
    std::snprintf(buf, sizeof buf, "%.2f", seconds);
  } else if (seconds < 100.0) {
    std::snprintf(buf, sizeof buf, "%.1f", seconds);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", seconds);
  }
  return buf;
}

std::string format_pow10(double log10_count) {
  if (log10_count < 0.0) log10_count = 0.0;
  // Small orders print exactly (e.g. "20"), large ones in m.me+dd form
  // mirroring the paper's Table 2.
  if (log10_count < 15.0) {
    const double value = std::pow(10.0, log10_count);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3g", value);
    return buf;
  }
  const double exponent = std::floor(log10_count);
  const double mantissa = std::pow(10.0, log10_count - exponent);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1fe+%02.0f", mantissa, exponent);
  return buf;
}

}  // namespace symcolor
