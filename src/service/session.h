#pragma once
// Session vocabulary of the solve service (service/solve_service.h).
//
// A session is one solve request's whole lifetime inside a SolveService:
// admitted (or rejected) at submit, queued FIFO, run on a pool worker
// under its own child SolveBudget, and finished with EXACTLY ONE terminal
// SessionResult. The outcome taxonomy is closed — every path through the
// service, including overload, cancellation, worker crashes, and
// drain/shutdown, lands in one of these:
//
//   Sat       definitive model (decision SAT, or minimize proved optimal —
//             best_value then holds the optimum)
//   Unsat     definitive refutation (decision UNSAT / minimize infeasible)
//   Feasible  budget ran out with an incumbent: `model` holds the best
//             solution found, the optimum lies in [lower_bound, best_value]
//             (PR 6's graceful-degradation contract, surfaced per session)
//   Degraded  budget ran out before any answer; `trip` says which bound
//             (deadline / conflicts / propagations / interrupt) and the
//             model is empty — never fabricated
//   Cancelled cancel() preempted the session (async interrupt); may still
//             carry an incumbent model/bound if one was found first
//   Rejected  admission control refused the request — queue saturated
//             (reject-newest with a retry_after_seconds hint) or the
//             service is shutting down; `reject_reason` says which
//   Failed    the solve threw; the exception is contained by the per-
//             session barrier (`error` carries the message) and the
//             worker and service keep running
//
// SessionResult::well_formed() is the machine-checkable version of the
// contract above; the stress tests assert it on every outcome.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cnf/formula.h"
#include "pb/optimizer.h"
#include "sat/cdcl.h"
#include "util/budget.h"

namespace symcolor {

/// Opaque session handle. Ids are never reused within one service.
using SessionId = std::uint64_t;
inline constexpr SessionId kInvalidSession = 0;

enum class SessionOutcome : std::uint8_t {
  Sat,
  Unsat,
  Feasible,
  Degraded,
  Cancelled,
  Rejected,
  Failed,
};

/// Stable lowercase name for protocol/log output ("sat", "rejected", ...).
[[nodiscard]] const char* session_outcome_name(SessionOutcome outcome) noexcept;

enum class RejectReason : std::uint8_t { None, QueueFull, ShuttingDown };

[[nodiscard]] const char* reject_reason_name(RejectReason reason) noexcept;

/// One solve request. The formula is shared (requests against a cached
/// base formula all point at the same immutable object); everything else
/// is per-request.
struct SolveRequest {
  std::shared_ptr<const Formula> formula;
  /// Per-request solver knobs — including portfolio_threads and the
  /// fault_injection test hook; the service isolates whatever happens
  /// under them to this session.
  SolverConfig config;
  /// Per-request budget dimensions, chained under the service-wide
  /// budget; <= 0 means unlimited (the service default may still apply a
  /// timeout). The deadline starts ticking at SUBMIT time, so time spent
  /// queued counts against the request — that is what makes FIFO
  /// scheduling deadline-fair and lets workers shed dead-on-arrival work.
  double timeout_seconds = 0.0;
  std::int64_t conflict_budget = 0;
  std::int64_t prop_budget = 0;
  /// Minimize the formula's objective instead of a decision query
  /// (ignored, with a decision fallback, when the formula has none).
  bool minimize = false;
  SearchStrategy strategy = SearchStrategy::Linear;
  /// Non-empty: warm-start the decision path from the service's
  /// EngineCache under this key (clone of a resident preprocessed
  /// master). The minimize path ignores it (the optimizer owns its
  /// engine lifecycle).
  std::string cache_key;
};

/// The terminal result of a session. Exactly one of these is delivered
/// per submitted request, via SolveService::wait()/wait_any().
struct SessionResult {
  SessionOutcome outcome = SessionOutcome::Failed;
  RejectReason reject_reason = RejectReason::None;
  /// Backpressure hint accompanying Rejected/QueueFull: an estimate of
  /// when the queue will have drained enough to retry.
  double retry_after_seconds = 0.0;
  /// Which budget dimension ended the session early (Degraded/Cancelled,
  /// and Feasible exits); None on definitive answers.
  BudgetTrip trip = BudgetTrip::None;
  /// Objective value of `model` (minimize sessions with a model only).
  std::int64_t best_value = 0;
  /// Tightest proven lower bound on the objective (minimize sessions).
  std::int64_t lower_bound = 0;
  /// Satisfying/incumbent assignment; empty unless the outcome says
  /// otherwise (never fabricated on Degraded/Rejected/Failed).
  std::vector<LBool> model;
  SolverStats stats;
  /// Failed only: the contained exception's message.
  std::string error;
  double queue_seconds = 0.0;
  double solve_seconds = 0.0;

  /// The machine-checkable outcome contract: models only where promised,
  /// trips recorded on every budgeted exit, reasons on every rejection,
  /// messages on every failure. Stress tests assert this on every
  /// delivered result.
  [[nodiscard]] bool well_formed() const noexcept {
    switch (outcome) {
      case SessionOutcome::Sat:
        return !model.empty();
      case SessionOutcome::Unsat:
        return model.empty();
      case SessionOutcome::Feasible:
        return !model.empty() && trip != BudgetTrip::None;
      case SessionOutcome::Degraded:
        return model.empty() && trip != BudgetTrip::None;
      case SessionOutcome::Cancelled:
        return trip != BudgetTrip::None;
      case SessionOutcome::Rejected:
        return reject_reason != RejectReason::None && model.empty();
      case SessionOutcome::Failed:
        return !error.empty() && model.empty();
    }
    return false;
  }
};

}  // namespace symcolor
