#pragma once
// SolveService — the session manager turning the batch engine into a
// long-lived, fault-tolerant solve service (ROADMAP item 2(c)).
//
// Shape: N pool workers (std::thread) drain ONE bounded FIFO queue of
// sessions. Each session runs under its own child SolveBudget chained
// beneath the service-wide budget, so three kill switches compose:
// per-request deadline/caps, per-session cancel(), and service-level
// interrupt (drain, SIGINT in the front end).
//
// Robustness contract, in order of the things that go wrong in a real
// service:
//
//   * Overload — the queue is bounded (ServiceConfig::queue_capacity).
//     When it is full, submit() load-sheds by rejecting the NEWEST
//     request immediately (terminal outcome Rejected/QueueFull with a
//     retry_after_seconds hint derived from observed service times).
//     Accepted work is never dropped and memory never grows unboundedly.
//   * Starvation — scheduling is strict FIFO over admitted sessions, so
//     a request can wait at most (queue ahead of it) service times; its
//     deadline ticks while it waits, and a session whose budget is
//     already spent when a worker picks it up is shed in O(1) with a
//     well-formed Degraded outcome (dead-on-arrival shedding) instead of
//     occupying an engine.
//   * Stuck sessions — cancel() wires straight to the session budget's
//     async interrupt(); the CDCL poll cadence bounds the latency to a
//     few hundred search steps. The cancelled session still produces its
//     one terminal outcome (Cancelled, carrying any incumbent found).
//   * Crashing sessions — run_session() is an exception barrier: a throw
//     (SolverConfig::fault_injection in tests, a real bug in production)
//     becomes outcome Failed for THAT session only; the worker thread
//     and every other session keep going. Warm-start masters are never
//     exposed to request faults (see service/engine_cache.h).
//   * Shutdown — shutdown(grace) drains cleanly: queued sessions are
//     rejected (ShuttingDown), in-flight ones get `grace` seconds to
//     finish before the service budget interrupts them into graceful
//     degradation, and every session still reaches exactly one terminal
//     outcome before the workers join.
//
// Delivery: wait(id) blocks for one session; wait_any() delivers finished
// sessions in completion order and is the collector loop the serve tool
// runs. Each result is delivered exactly once.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/engine_cache.h"
#include "service/session.h"
#include "util/budget.h"
#include "util/timer.h"

namespace symcolor {

struct ServiceConfig {
  /// Pool workers draining the session queue.
  int workers = 4;
  /// Admission bound on QUEUED (not yet running) sessions; submit()
  /// load-sheds past it.
  std::size_t queue_capacity = 64;
  /// Applied when a request asks for no timeout of its own (<= 0 keeps
  /// such requests unlimited).
  double default_timeout_seconds = 0.0;
  /// Grace given to in-flight sessions by the destructor's shutdown().
  double drain_grace_seconds = 1.0;
  /// Optional budget the service budget is chained under (e.g. the serve
  /// tool's --timeout); must outlive the service.
  const SolveBudget* parent_budget = nullptr;
  /// Resident warm-start masters kept by the engine cache (0 disables).
  std::size_t cache_capacity = 8;
};

/// Aggregate service counters (terminal outcomes sum to completed()).
struct ServiceStats {
  std::int64_t submitted = 0;
  std::int64_t sat = 0;
  std::int64_t unsat = 0;
  std::int64_t feasible = 0;
  std::int64_t degraded = 0;
  std::int64_t cancelled = 0;
  std::int64_t rejected = 0;
  std::int64_t failed = 0;
  /// Sessions shed at dequeue because their budget was already spent
  /// (a subset of degraded/cancelled; zero engine work was done).
  std::int64_t shed_on_arrival = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::size_t queued_now = 0;
  std::size_t running_now = 0;
  /// Solver work summed over every finished session (the service-side
  /// mirror of the CLI's --stats counters, same trip-counter names via
  /// util/report.h).
  SolverStats solver_totals;

  [[nodiscard]] std::int64_t completed() const noexcept {
    return sat + unsat + feasible + degraded + cancelled + rejected + failed;
  }
};

class SolveService {
 public:
  explicit SolveService(ServiceConfig config = {});
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admit (or load-shed) a request. Always returns a valid session id
  /// whose terminal result can be collected — a rejected request is a
  /// session that is born Done with outcome Rejected.
  SessionId submit(SolveRequest request);

  /// Request asynchronous cancellation. True when the session was still
  /// pending or running (its terminal outcome will be Cancelled, or
  /// whatever definitive answer the solve reached first); false when it
  /// had already finished or the id is unknown.
  bool cancel(SessionId id);

  /// Block until session `id` finishes and deliver its result (exactly
  /// once — the session is released). An unknown or already-delivered id
  /// returns a Failed result with an explanatory error.
  SessionResult wait(SessionId id);

  /// Deliver the next finished session in completion order. Blocks while
  /// undelivered sessions exist; returns false once the service is
  /// draining/stopped AND every session has been delivered (the
  /// collector-loop termination condition).
  bool wait_any(SessionId* id, SessionResult* result);

  [[nodiscard]] ServiceStats stats() const;

  /// Drain and stop: reject everything queued, give in-flight sessions
  /// `grace_seconds` to finish, then interrupt the service budget and
  /// wait for them to degrade out. Idempotent; later submits are
  /// rejected with ShuttingDown. Called by the destructor with
  /// config.drain_grace_seconds.
  void shutdown(double grace_seconds);

  /// The budget every session budget is chained under. interrupt() on it
  /// preempts the whole service (the serve tool points SIGINT here).
  [[nodiscard]] const SolveBudget& service_budget() const noexcept {
    return service_budget_;
  }

 private:
  struct Session {
    Session(SessionId id_in, SolveRequest request_in, SolveBudget budget_in)
        : id(id_in),
          request(std::move(request_in)),
          budget(std::move(budget_in)) {}

    SessionId id;
    SolveRequest request;
    /// Child of service_budget_, armed at submit (deadline ticks while
    /// queued). cancel() interrupts it; this session is its only solve
    /// consumer, so the sticky interrupt needs no re-arming.
    SolveBudget budget;
    Timer queue_timer;
    std::atomic<bool> cancel_requested{false};
    enum class State : std::uint8_t { Queued, Running, Done };
    State state = State::Queued;  // guarded by SolveService::mutex_
    bool shed = false;            // written only by the owning worker
    double queued_seconds = 0.0;
    SessionResult result;
  };

  void worker_loop();
  /// The per-session exception barrier; runs without the service lock.
  SessionResult run_session(Session& session);
  void finalize_locked(Session& session, SessionResult result);
  [[nodiscard]] double retry_after_hint_locked() const;

  ServiceConfig config_;
  SolveBudget service_budget_;
  EngineCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  // workers: queue non-empty / stopping
  std::condition_variable done_cv_;   // waiters: a session reached Done
  std::condition_variable drain_cv_;  // shutdown: running_ reached 0
  std::map<SessionId, std::unique_ptr<Session>> sessions_;
  std::deque<SessionId> queue_;     // admitted, waiting for a worker
  std::deque<SessionId> finished_;  // Done, not yet delivered
  ServiceStats stats_;
  double ema_session_seconds_ = 0.0;
  SessionId next_id_ = 1;
  int running_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  std::once_flag join_once_;
  std::vector<std::thread> workers_;
};

}  // namespace symcolor
