#include "service/engine_cache.h"

#include <utility>

#include "cnf/formula.h"
#include "sat/portfolio.h"

namespace symcolor {

std::unique_ptr<SolverEngine> EngineCache::acquire(const std::string& key,
                                                   const Formula& formula,
                                                   const SolverConfig& config) {
  // Residents never carry a fault spec: a request's injected fault must
  // only ever be armed on that request's exclusive clone.
  SolverConfig master_config = config;
  master_config.fault_injection = FaultInjection{};

  if (capacity_ == 0) {
    return make_solver_engine(formula, master_config);
  }

  std::unique_lock<std::mutex> lock(mutex_);
  ++tick_;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    it->second.last_used = tick_;
    return it->second.master->clone();
  }
  ++misses_;

  // Build the master outside the lock: construction can be expensive and
  // must not serialize requests for OTHER keys behind it. A racing build
  // of the same key wastes one construction; last writer wins.
  lock.unlock();
  std::unique_ptr<SolverEngine> master =
      make_solver_engine(formula, master_config);
  // Admission-time inprocessing: one round on the resident master (per
  // the request's inprocess mode; no-op when Off) so every warm-started
  // session — this request's clone included — inherits the shrunk
  // formula and, under Full, the substitution/reconstruction state,
  // instead of each clone re-deriving the same simplification.
  master->inprocess();
  std::unique_ptr<SolverEngine> result = master->clone();
  lock.lock();

  if (entries_.size() >= capacity_) {
    auto victim = entries_.begin();
    for (auto e = entries_.begin(); e != entries_.end(); ++e) {
      if (e->second.last_used < victim->second.last_used) victim = e;
    }
    entries_.erase(victim);
  }
  entries_[key] = Entry{std::move(master), tick_};
  return result;
}

void EngineCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::size_t EngineCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::int64_t EngineCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::int64_t EngineCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace symcolor
