#include "service/solve_service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "sat/portfolio.h"

namespace symcolor {

const char* session_outcome_name(SessionOutcome outcome) noexcept {
  switch (outcome) {
    case SessionOutcome::Sat: return "sat";
    case SessionOutcome::Unsat: return "unsat";
    case SessionOutcome::Feasible: return "feasible";
    case SessionOutcome::Degraded: return "degraded";
    case SessionOutcome::Cancelled: return "cancelled";
    case SessionOutcome::Rejected: return "rejected";
    case SessionOutcome::Failed: return "failed";
  }
  return "failed";
}

const char* reject_reason_name(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::None: return "none";
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::ShuttingDown: return "shutting_down";
  }
  return "none";
}

namespace {

/// Fold one session's solver work into the service-wide totals.
void accumulate(SolverStats* into, const SolverStats& s) {
  into->decisions += s.decisions;
  into->propagations += s.propagations;
  into->conflicts += s.conflicts;
  into->restarts += s.restarts;
  into->learned_clauses += s.learned_clauses;
  into->learned_literals += s.learned_literals;
  into->minimized_literals += s.minimized_literals;
  into->deleted_clauses += s.deleted_clauses;
  into->arena_collections += s.arena_collections;
  into->pb_short_circuits += s.pb_short_circuits;
  into->lbd_sum += s.lbd_sum;
  into->tier_promotions += s.tier_promotions;
  into->tier_demotions += s.tier_demotions;
  into->adaptive_restarts += s.adaptive_restarts;
  into->blocked_restarts += s.blocked_restarts;
  into->exported_clauses += s.exported_clauses;
  into->imported_clauses += s.imported_clauses;
  into->rejected_imports += s.rejected_imports;
  into->exported_pbs += s.exported_pbs;
  into->imported_pbs += s.imported_pbs;
  into->learned_pbs += s.learned_pbs;
  into->deleted_pbs += s.deleted_pbs;
  into->pb_resolutions += s.pb_resolutions;
  into->pb_fallbacks += s.pb_fallbacks;
  into->deadline_exits += s.deadline_exits;
  into->conflict_budget_exits += s.conflict_budget_exits;
  into->prop_budget_exits += s.prop_budget_exits;
  into->interrupt_exits += s.interrupt_exits;
}

}  // namespace

SolveService::SolveService(ServiceConfig config)
    : config_(config),
      service_budget_(config.parent_budget != nullptr
                          ? config.parent_budget->child()
                          : SolveBudget{}),
      cache_(config.cache_capacity) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.queue_capacity < 1) config_.queue_capacity = 1;
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back(&SolveService::worker_loop, this);
  }
}

SolveService::~SolveService() { shutdown(config_.drain_grace_seconds); }

SessionId SolveService::submit(SolveRequest request) {
  std::lock_guard<std::mutex> lock(mutex_);
  const SessionId id = next_id_++;
  ++stats_.submitted;

  auto reject = [&](RejectReason reason, const char* error) {
    auto session =
        std::make_unique<Session>(id, std::move(request), SolveBudget{});
    SessionResult r;
    if (reason != RejectReason::None) {
      r.outcome = SessionOutcome::Rejected;
      r.reject_reason = reason;
      if (reason == RejectReason::QueueFull) {
        r.retry_after_seconds = retry_after_hint_locked();
      }
    } else {
      r.outcome = SessionOutcome::Failed;
      r.error = error;
    }
    Session* raw = session.get();
    sessions_[id] = std::move(session);
    finalize_locked(*raw, std::move(r));
    return id;
  };

  if (request.formula == nullptr) {
    return reject(RejectReason::None, "request has no formula");
  }
  if (draining_ || stopping_) {
    return reject(RejectReason::ShuttingDown, nullptr);
  }
  if (queue_.size() >= config_.queue_capacity) {
    return reject(RejectReason::QueueFull, nullptr);
  }

  const double timeout = request.timeout_seconds > 0.0
                             ? request.timeout_seconds
                             : config_.default_timeout_seconds;
  SolveBudget budget = service_budget_.child(timeout, request.conflict_budget,
                                             request.prop_budget);
  sessions_[id] =
      std::make_unique<Session>(id, std::move(request), std::move(budget));
  queue_.push_back(id);
  queue_cv_.notify_one();
  return id;
}

bool SolveService::cancel(SessionId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second->state == Session::State::Done) {
    return false;
  }
  it->second->cancel_requested.store(true, std::memory_order_release);
  it->second->budget.interrupt();
  return true;
}

SessionResult SolveService::wait(SessionId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      SessionResult r;
      r.outcome = SessionOutcome::Failed;
      r.error = "unknown or already-delivered session id";
      return r;
    }
    if (it->second->state == Session::State::Done) {
      SessionResult r = std::move(it->second->result);
      const auto pos = std::find(finished_.begin(), finished_.end(), id);
      if (pos != finished_.end()) finished_.erase(pos);
      sessions_.erase(it);
      done_cv_.notify_all();  // sessions_ may have just become empty
      return r;
    }
    done_cv_.wait(lock);
  }
}

bool SolveService::wait_any(SessionId* id, SessionResult* result) {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return !finished_.empty() ||
           (sessions_.empty() && (draining_ || stopping_));
  });
  if (finished_.empty()) return false;
  const SessionId done = finished_.front();
  finished_.pop_front();
  const auto it = sessions_.find(done);
  *id = done;
  *result = std::move(it->second->result);
  sessions_.erase(it);
  done_cv_.notify_all();
  return true;
}

ServiceStats SolveService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
    out.queued_now = queue_.size();
    out.running_now = static_cast<std::size_t>(running_);
  }
  out.cache_hits = cache_.hits();
  out.cache_misses = cache_.misses();
  return out;
}

void SolveService::shutdown(double grace_seconds) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!stopping_) {
      draining_ = true;
      // Load-shed everything still queued: each becomes a well-formed
      // Rejected/ShuttingDown terminal, never silently dropped.
      while (!queue_.empty()) {
        const SessionId id = queue_.front();
        queue_.pop_front();
        const auto it = sessions_.find(id);
        if (it == sessions_.end() ||
            it->second->state != Session::State::Queued) {
          continue;
        }
        SessionResult r;
        r.outcome = SessionOutcome::Rejected;
        r.reject_reason = RejectReason::ShuttingDown;
        finalize_locked(*it->second, std::move(r));
      }
      // Grace window for in-flight sessions, then the service-level kill
      // switch: every running solve degrades out at its next budget poll.
      if (running_ > 0 && grace_seconds > 0.0) {
        drain_cv_.wait_for(lock, std::chrono::duration<double>(grace_seconds),
                           [&] { return running_ == 0; });
      }
      if (running_ > 0) service_budget_.interrupt();
      drain_cv_.wait(lock, [&] { return running_ == 0; });
      stopping_ = true;
      queue_cv_.notify_all();
      done_cv_.notify_all();
    }
  }
  std::call_once(join_once_, [this] {
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
  });
}

void SolveService::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    const SessionId id = queue_.front();
    queue_.pop_front();
    const auto it = sessions_.find(id);
    if (it == sessions_.end() || it->second->state != Session::State::Queued) {
      continue;
    }
    Session& session = *it->second;
    session.state = Session::State::Running;
    session.queued_seconds = session.queue_timer.seconds();
    ++running_;
    lock.unlock();

    SessionResult result = run_session(session);

    lock.lock();
    --running_;
    if (session.shed) ++stats_.shed_on_arrival;
    result.queue_seconds = session.queued_seconds;
    finalize_locked(session, std::move(result));
    if (running_ == 0) drain_cv_.notify_all();
  }
}

SessionResult SolveService::run_session(Session& session) {
  SessionResult r;
  Timer timer;

  // Dead-on-arrival shedding: a session whose budget was spent while it
  // queued (deadline, cancel, service interrupt) is finished in O(1)
  // without touching an engine.
  const BudgetTrip entry = session.budget.poll();
  if (entry != BudgetTrip::None) {
    session.shed = true;
    r.trip = entry;
    r.outcome = session.cancel_requested.load(std::memory_order_acquire)
                    ? SessionOutcome::Cancelled
                    : SessionOutcome::Degraded;
    return r;
  }

  const auto cancelled = [&] {
    return session.cancel_requested.load(std::memory_order_acquire);
  };

  try {
    const Formula& formula = *session.request.formula;
    if (session.request.minimize && formula.objective().has_value()) {
      OptResult opt = minimize(formula, session.request.config, session.budget,
                               session.request.strategy);
      r.stats = opt.stats;
      r.best_value = opt.best_value;
      r.lower_bound = opt.lower_bound;
      r.trip = opt.tripped;
      r.model = std::move(opt.model);
      switch (opt.status) {
        case OptStatus::Optimal:
          r.outcome = SessionOutcome::Sat;
          break;
        case OptStatus::Infeasible:
          r.outcome = SessionOutcome::Unsat;
          r.model.clear();
          break;
        case OptStatus::Feasible:
          r.outcome =
              cancelled() ? SessionOutcome::Cancelled : SessionOutcome::Feasible;
          break;
        case OptStatus::Unknown:
          r.outcome =
              cancelled() ? SessionOutcome::Cancelled : SessionOutcome::Degraded;
          r.model.clear();
          break;
      }
    } else {
      std::unique_ptr<SolverEngine> engine;
      if (!session.request.cache_key.empty()) {
        engine = cache_.acquire(session.request.cache_key, formula,
                                session.request.config);
        // The clone carries the MASTER's (sanitized) config; arm the
        // request's real one — personality knobs and, in tests, the
        // fault spec — on this session's exclusive copy only.
        engine->reconfigure(session.request.config);
      } else {
        engine = make_solver_engine(formula, session.request.config);
      }
      const SolveResult sr = engine->solve(session.budget);
      r.stats = engine->stats();
      switch (sr) {
        case SolveResult::Sat:
          r.outcome = SessionOutcome::Sat;
          r.model = engine->model();
          break;
        case SolveResult::Unsat:
          r.outcome = SessionOutcome::Unsat;
          break;
        case SolveResult::Unknown:
          r.trip = engine->last_trip();
          r.outcome =
              cancelled() ? SessionOutcome::Cancelled : SessionOutcome::Degraded;
          break;
      }
    }
  } catch (const std::exception& e) {
    // Per-session exception barrier: the fault is contained here; the
    // worker thread and every other session are unaffected.
    r = SessionResult{};
    r.outcome = SessionOutcome::Failed;
    r.error = e.what();
    if (r.error.empty()) r.error = "exception";
  } catch (...) {
    r = SessionResult{};
    r.outcome = SessionOutcome::Failed;
    r.error = "unknown exception";
  }

  r.solve_seconds = timer.seconds();
  return r;
}

void SolveService::finalize_locked(Session& session, SessionResult result) {
  switch (result.outcome) {
    case SessionOutcome::Sat: ++stats_.sat; break;
    case SessionOutcome::Unsat: ++stats_.unsat; break;
    case SessionOutcome::Feasible: ++stats_.feasible; break;
    case SessionOutcome::Degraded: ++stats_.degraded; break;
    case SessionOutcome::Cancelled: ++stats_.cancelled; break;
    case SessionOutcome::Rejected: ++stats_.rejected; break;
    case SessionOutcome::Failed: ++stats_.failed; break;
  }
  accumulate(&stats_.solver_totals, result.stats);
  if (result.solve_seconds > 0.0) {
    ema_session_seconds_ = ema_session_seconds_ <= 0.0
                               ? result.solve_seconds
                               : 0.75 * ema_session_seconds_ +
                                     0.25 * result.solve_seconds;
  }
  session.result = std::move(result);
  session.state = Session::State::Done;
  finished_.push_back(session.id);
  done_cv_.notify_all();
}

double SolveService::retry_after_hint_locked() const {
  const double per_session =
      ema_session_seconds_ > 0.0 ? ema_session_seconds_ : 0.05;
  const double backlog =
      static_cast<double>(queue_.size()) + static_cast<double>(running_);
  return per_session * (backlog + 1.0) /
         static_cast<double>(std::max(config_.workers, 1));
}

}  // namespace symcolor
