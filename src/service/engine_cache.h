#pragma once
// Warm-start cache of preprocessed master engines, keyed by the caller's
// base-formula identity (e.g. "queen8_8/k=9"). The point: for a hot base
// formula, building the solver — clause arena, watcher pools, PB rows —
// is the dominant per-request cost, while CdclSolver::clone() is a
// handful of memcpys. So the cache keeps ONE resident master per key and
// hands every request an exclusive clone; the request then reconfigure()s
// its clone with its own knobs (personality, fault injection) without
// ever touching the shared master.
//
// Fault isolation composes with this: the master is always built with
// fault_injection DISARMED, so a request whose injected fault kills its
// clone cannot poison the resident engine — the next request under the
// same key clones a healthy master (tests prove this).
//
// Thread-safe; bounded by LRU eviction.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sat/solver_engine.h"

namespace symcolor {

class Formula;
struct SolverConfig;

class EngineCache {
 public:
  explicit EngineCache(std::size_t capacity) : capacity_(capacity) {}

  EngineCache(const EngineCache&) = delete;
  EngineCache& operator=(const EngineCache&) = delete;

  /// An exclusive clone of the resident master for `key`; on a miss the
  /// master is first built from `formula` with `config` (fault injection
  /// stripped) and cached. The caller owns the clone outright and should
  /// reconfigure() it with the request's real config. With capacity 0 the
  /// cache is disabled and this simply builds a fresh engine.
  [[nodiscard]] std::unique_ptr<SolverEngine> acquire(
      const std::string& key, const Formula& formula,
      const SolverConfig& config);

  /// Drop every resident master.
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::int64_t hits() const;
  [[nodiscard]] std::int64_t misses() const;

 private:
  struct Entry {
    std::unique_ptr<SolverEngine> master;
    std::uint64_t last_used = 0;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace symcolor
