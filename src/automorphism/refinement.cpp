#include "automorphism/refinement.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace symcolor {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t value) {
  h ^= value + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

OrderedPartition::OrderedPartition(int n, std::span<const int> colors) {
  if (!colors.empty() && static_cast<int>(colors.size()) != n) {
    throw std::invalid_argument("color vector size mismatch");
  }
  elements_.resize(static_cast<std::size_t>(n));
  std::iota(elements_.begin(), elements_.end(), 0);
  if (!colors.empty()) {
    std::stable_sort(elements_.begin(), elements_.end(), [&](int a, int b) {
      return colors[static_cast<std::size_t>(a)] <
             colors[static_cast<std::size_t>(b)];
    });
  }
  position_.resize(static_cast<std::size_t>(n));
  cell_of_.resize(static_cast<std::size_t>(n));
  count_.assign(static_cast<std::size_t>(n), 0);

  int start = 0;
  while (start < n) {
    int end = start + 1;
    if (!colors.empty()) {
      const int c = colors[static_cast<std::size_t>(elements_[static_cast<std::size_t>(start)])];
      while (end < n &&
             colors[static_cast<std::size_t>(elements_[static_cast<std::size_t>(end)])] == c) {
        ++end;
      }
    } else {
      end = n;
    }
    const int id = static_cast<int>(cells_.size());
    cells_.push_back({start, end - start});
    live_.push_back(1);
    ++num_cells_;
    for (int i = start; i < end; ++i) {
      const int v = elements_[static_cast<std::size_t>(i)];
      position_[static_cast<std::size_t>(v)] = i;
      cell_of_[static_cast<std::size_t>(v)] = id;
    }
    start = end;
  }
}

int OrderedPartition::target_cell() const {
  int best = -1;
  for (int id = 0; id < num_cell_slots(); ++id) {
    if (!cell_live(id)) continue;
    const Cell& c = cells_[static_cast<std::size_t>(id)];
    if (c.size <= 1) continue;
    if (best < 0 || c.size < cells_[static_cast<std::size_t>(best)].size ||
        (c.size == cells_[static_cast<std::size_t>(best)].size &&
         c.start < cells_[static_cast<std::size_t>(best)].start)) {
      best = id;
    }
  }
  return best;
}

int OrderedPartition::individualize(int vertex) {
  const int old_id = cell_of_[static_cast<std::size_t>(vertex)];
  Cell old_cell = cells_[static_cast<std::size_t>(old_id)];
  assert(old_cell.size > 1);

  // Swap the vertex to the front of its cell's range.
  const int pos = position_[static_cast<std::size_t>(vertex)];
  const int front = old_cell.start;
  const int other = elements_[static_cast<std::size_t>(front)];
  std::swap(elements_[static_cast<std::size_t>(pos)],
            elements_[static_cast<std::size_t>(front)]);
  position_[static_cast<std::size_t>(vertex)] = front;
  position_[static_cast<std::size_t>(other)] = pos;

  live_[static_cast<std::size_t>(old_id)] = 0;
  const int singleton_id = static_cast<int>(cells_.size());
  cells_.push_back({old_cell.start, 1});
  live_.push_back(1);
  const int rest_id = static_cast<int>(cells_.size());
  cells_.push_back({old_cell.start + 1, old_cell.size - 1});
  live_.push_back(1);
  ++num_cells_;  // one cell became two

  cell_of_[static_cast<std::size_t>(vertex)] = singleton_id;
  for (int i = old_cell.start + 1; i < old_cell.start + old_cell.size; ++i) {
    cell_of_[static_cast<std::size_t>(elements_[static_cast<std::size_t>(i)])] =
        rest_id;
  }
  return singleton_id;
}

int OrderedPartition::split_cell_by_count(int cell_id,
                                          std::vector<int>* new_cells,
                                          std::uint64_t* trace) {
  const Cell cell = cells_[static_cast<std::size_t>(cell_id)];
  auto begin = elements_.begin() + cell.start;
  auto end = begin + cell.size;
  // Group members by their neighbour count in the splitter.
  std::sort(begin, end, [&](int a, int b) {
    if (count_[static_cast<std::size_t>(a)] != count_[static_cast<std::size_t>(b)]) {
      return count_[static_cast<std::size_t>(a)] < count_[static_cast<std::size_t>(b)];
    }
    return a < b;  // deterministic within equal counts (any order is fine)
  });

  // Detect group boundaries.
  new_cells->clear();
  int group_start = cell.start;
  int largest = -1;
  int largest_size = 0;
  for (int i = cell.start; i < cell.start + cell.size; ++i) {
    const bool last = (i + 1 == cell.start + cell.size);
    const std::int64_t c =
        count_[static_cast<std::size_t>(elements_[static_cast<std::size_t>(i)])];
    const std::int64_t next_c =
        last ? -1
             : count_[static_cast<std::size_t>(
                   elements_[static_cast<std::size_t>(i + 1)])];
    if (last || c != next_c) {
      const int group_size = i + 1 - group_start;
      if (group_start == cell.start && last) {
        // Single group: no split; positions may have been permuted though.
        for (int j = cell.start; j < cell.start + cell.size; ++j) {
          position_[static_cast<std::size_t>(
              elements_[static_cast<std::size_t>(j)])] = j;
        }
        return 0;
      }
      const int id = static_cast<int>(cells_.size());
      cells_.push_back({group_start, group_size});
      live_.push_back(1);
      new_cells->push_back(id);
      *trace = mix(*trace, static_cast<std::uint64_t>(c) * 1315423911ULL +
                               static_cast<std::uint64_t>(group_size));
      if (group_size > largest_size) {
        largest_size = group_size;
        largest = id;
      }
      group_start = i + 1;
    }
  }

  // Commit the split: retire the parent, relabel members.
  live_[static_cast<std::size_t>(cell_id)] = 0;
  num_cells_ += static_cast<int>(new_cells->size()) - 1;
  for (const int id : *new_cells) {
    const Cell& c = cells_[static_cast<std::size_t>(id)];
    for (int i = c.start; i < c.start + c.size; ++i) {
      const int v = elements_[static_cast<std::size_t>(i)];
      position_[static_cast<std::size_t>(v)] = i;
      cell_of_[static_cast<std::size_t>(v)] = id;
    }
  }
  *trace = mix(*trace, static_cast<std::uint64_t>(cell_id));
  return largest;
}

std::uint64_t OrderedPartition::refine(const Graph& graph,
                                       std::vector<int> worklist) {
  std::uint64_t trace = 0x51CA9D;
  std::vector<char> on_worklist(live_.size(), 0);
  for (const int id : worklist) {
    if (id >= 0 && id < static_cast<int>(on_worklist.size())) {
      on_worklist[static_cast<std::size_t>(id)] = 1;
    }
  }
  std::vector<int> splitter_elements;
  std::vector<int> new_cells;

  std::size_t head = 0;
  while (head < worklist.size()) {
    const int splitter = worklist[head++];
    if (splitter >= static_cast<int>(live_.size())) continue;
    on_worklist[static_cast<std::size_t>(splitter)] = 0;
    if (!live_[static_cast<std::size_t>(splitter)]) continue;
    if (discrete()) break;

    splitter_elements.assign(cell_elements(splitter).begin(),
                             cell_elements(splitter).end());

    // Count neighbours in the splitter; remember touched cells.
    touched_.clear();
    for (const int u : splitter_elements) {
      for (const int w : graph.neighbors(u)) {
        if (count_[static_cast<std::size_t>(w)] == 0) {
          const int c = cell_of_[static_cast<std::size_t>(w)];
          if (touched_.empty() || std::find(touched_.begin(), touched_.end(),
                                            c) == touched_.end()) {
            touched_.push_back(c);
          }
        }
        ++count_[static_cast<std::size_t>(w)];
      }
    }
    std::sort(touched_.begin(), touched_.end());

    for (const int cell_id : touched_) {
      if (!live_[static_cast<std::size_t>(cell_id)]) continue;
      if (cells_[static_cast<std::size_t>(cell_id)].size == 1) continue;
      const int largest = split_cell_by_count(cell_id, &new_cells, &trace);
      if (new_cells.empty()) continue;
      on_worklist.resize(live_.size(), 0);
      const bool parent_queued =
          cell_id < static_cast<int>(on_worklist.size()) &&
          on_worklist[static_cast<std::size_t>(cell_id)] != 0;
      if (parent_queued) on_worklist[static_cast<std::size_t>(cell_id)] = 0;
      for (const int id : new_cells) {
        // Hopcroft's trick: when the parent was not pending, the largest
        // part can be skipped as a future splitter.
        if (!parent_queued && id == largest) continue;
        worklist.push_back(id);
        on_worklist[static_cast<std::size_t>(id)] = 1;
      }
    }

    // Clear scratch counts.
    for (const int u : splitter_elements) {
      for (const int w : graph.neighbors(u)) {
        count_[static_cast<std::size_t>(w)] = 0;
      }
    }
  }
  trace = mix(trace, static_cast<std::uint64_t>(num_cells_));
  return trace;
}

std::vector<int> OrderedPartition::labeling() const {
  assert(discrete());
  return elements_;
}

}  // namespace symcolor
