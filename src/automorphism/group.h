#pragma once
// Permutation groups via deterministic Schreier-Sims.
//
// Used to answer membership queries and compute exact group orders from a
// set of generators. The transversals are stored as explicit permutations,
// which is simple and fast for the small-degree groups exercised in tests
// and validation; the production group-order figure reported by the
// automorphism search itself is computed from first-path orbit sizes
// (Nauty's method) and cross-checked against this class in the test suite.

#include <span>
#include <vector>

#include "automorphism/perm.h"

namespace symcolor {

class PermGroup {
 public:
  explicit PermGroup(int degree);

  [[nodiscard]] int degree() const noexcept { return degree_; }

  /// Incorporate a generator. No-op for the identity or members.
  void add_generator(const Perm& g);

  /// Membership test by sifting.
  [[nodiscard]] bool contains(std::span<const int> p) const;

  /// Exact order as long double (exact for orders < ~1e18, and a good
  /// floating approximation beyond).
  [[nodiscard]] long double order() const;

  /// log10 of the group order (0.0 for the trivial group).
  [[nodiscard]] double log10_order() const;

  /// Orbit of a point under the whole group.
  [[nodiscard]] std::vector<int> orbit_of(int point) const;

  [[nodiscard]] const std::vector<Perm>& generators() const noexcept {
    return gens_;
  }

 private:
  struct Level {
    int base_point = -1;
    std::vector<Perm> gens;            // strong generators for this level
    std::vector<int> orbit;            // points reachable from base_point
    std::vector<Perm> transversal;     // indexed like orbit_index_
    std::vector<int> orbit_index_of;   // point -> index into orbit, or -1
  };

  /// Sift p through the chain; returns the residue and the level at which
  /// sifting stopped (== levels_.size() if fully sifted to identity).
  [[nodiscard]] std::pair<Perm, std::size_t> sift(Perm p) const;

  void rebuild_orbit(std::size_t level);

  int degree_;
  std::vector<Level> levels_;
  std::vector<Perm> gens_;  // original generators as given
};

}  // namespace symcolor
