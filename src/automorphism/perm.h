#pragma once
// Permutations on 0..n-1 represented as image vectors: p[i] is the image
// of point i. Free functions only; a permutation is just data.

#include <span>
#include <vector>

namespace symcolor {

using Perm = std::vector<int>;

/// The identity permutation on n points.
Perm identity_perm(int n);

/// True if `p` is a valid permutation (a bijection on 0..n-1).
bool is_permutation(std::span<const int> p);

/// True if p[i] == i for all i.
bool is_identity(std::span<const int> p);

/// Composition (a then b): result[i] = b[a[i]].
Perm compose(std::span<const int> a, std::span<const int> b);

/// Inverse permutation.
Perm inverse(std::span<const int> p);

/// Points moved by p, ascending.
std::vector<int> support(std::span<const int> p);

/// Cycle decomposition, fixed points omitted; each cycle starts with its
/// smallest element and cycles are ordered by that element.
std::vector<std::vector<int>> cycles(std::span<const int> p);

/// Order of the permutation (lcm of cycle lengths), capped at
/// std::numeric_limits<long long>::max() via saturation.
long long perm_order(std::span<const int> p);

}  // namespace symcolor
