#pragma once
// Ordered-partition refinement — the workhorse of graph automorphism
// detection (the core loop of Nauty/Saucy).
//
// A partition of the vertices into ordered cells is refined until it is
// *equitable*: every vertex in a cell has the same number of neighbours in
// every other cell. Refinement is driven by a worklist of splitter cells,
// so re-refining after individualizing a single vertex costs only the
// affected region of the graph. The sequence of splits (the refinement
// trace) is an isomorphism invariant used to prune the search tree.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace symcolor {

class OrderedPartition {
 public:
  /// Build the unit partition of n vertices grouped by `colors` (vertices
  /// with equal color share a cell; cells ordered by color value).
  /// `colors` empty means all vertices share one cell.
  OrderedPartition(int n, std::span<const int> colors);

  struct Cell {
    int start = 0;
    int size = 0;
    [[nodiscard]] bool singleton() const noexcept { return size == 1; }
  };

  [[nodiscard]] int num_vertices() const noexcept {
    return static_cast<int>(elements_.size());
  }
  [[nodiscard]] int num_cells() const noexcept { return num_cells_; }
  [[nodiscard]] bool discrete() const noexcept {
    return num_cells_ == num_vertices();
  }

  /// Ids of live cells are 0..cells_.size()-1 but dead (replaced) cells
  /// are skipped via the live flag. Iterate with for_each_cell.
  [[nodiscard]] const Cell& cell(int id) const {
    return cells_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int num_cell_slots() const noexcept {
    return static_cast<int>(cells_.size());
  }
  [[nodiscard]] bool cell_live(int id) const {
    return live_[static_cast<std::size_t>(id)] != 0;
  }
  [[nodiscard]] int cell_of(int vertex) const {
    return cell_of_[static_cast<std::size_t>(vertex)];
  }
  [[nodiscard]] std::span<const int> cell_elements(int id) const {
    const Cell& c = cells_[static_cast<std::size_t>(id)];
    return {elements_.data() + c.start, static_cast<std::size_t>(c.size)};
  }
  [[nodiscard]] std::span<const int> elements() const noexcept {
    return elements_;
  }

  /// The first smallest non-singleton cell id, or -1 if discrete.
  [[nodiscard]] int target_cell() const;

  /// Split `vertex` out of its (non-singleton) cell into a fresh leading
  /// singleton cell; returns the id of the singleton. The remainder keeps
  /// a new id as well. Call refine() afterwards with the returned id.
  int individualize(int vertex);

  /// Refine to an equitable partition, using `graph` adjacency, starting
  /// from the given splitter worklist (pass all live cells, or just the
  /// cell returned by individualize). Returns a trace hash: an
  /// isomorphism-invariant fingerprint of all splits performed.
  std::uint64_t refine(const Graph& graph, std::vector<int> worklist);

  /// Labeling of a discrete partition: label[i] = vertex in cell position
  /// i; requires discrete().
  [[nodiscard]] std::vector<int> labeling() const;

 private:
  int split_cell_by_count(int cell_id, std::vector<int>* new_cells,
                          std::uint64_t* trace);

  std::vector<int> elements_;   // vertices grouped by cell, cell-contiguous
  std::vector<int> position_;   // vertex -> index in elements_
  std::vector<int> cell_of_;    // vertex -> cell id
  std::vector<Cell> cells_;     // append-only; replaced cells marked dead
  std::vector<char> live_;
  int num_cells_ = 0;

  std::vector<std::int64_t> count_;  // scratch: neighbour counts
  std::vector<int> touched_;         // scratch: cells touched by splitter
};

}  // namespace symcolor
