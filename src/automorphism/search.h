#pragma once
// Graph automorphism search (the Saucy/Nauty stand-in).
//
// Individualization-refinement: descend a search tree whose nodes are
// ordered partitions, individualizing one vertex of the target cell per
// level. The first (leftmost) leaf fixes a base labeling; every other leaf
// whose refinement trace matches the first path is compared against the
// base labeling, and a match yields an automorphism generator. Discovered
// generators drive orbit pruning at first-path nodes (the Schreier
// argument), and the group order is accumulated as the product of
// first-path orbit sizes — Nauty's grpsize method.
//
// The search returns a *generating set*, not the whole group, exactly like
// Saucy; downstream symmetry breaking only consumes generators.

#include <cstdint>
#include <span>
#include <vector>

#include "automorphism/perm.h"
#include "graph/graph.h"
#include "util/timer.h"

namespace symcolor {

struct AutomorphismResult {
  std::vector<Perm> generators;
  /// log10 of |Aut(G)| (0.0 for a rigid graph). Exact when `complete`.
  double log10_order = 0.0;
  std::int64_t nodes = 0;
  std::int64_t leaves = 0;
  std::int64_t bad_leaves = 0;  ///< leaves that failed the adjacency check
  bool complete = true;         ///< false when the deadline cut the search
  double seconds = 0.0;
};

/// Find automorphism-group generators of `graph` respecting the vertex
/// coloring `colors` (vertices may only map to vertices of equal color;
/// pass empty for uncolored). Deterministic for a fixed input.
AutomorphismResult find_automorphisms(const Graph& graph,
                                      std::span<const int> colors = {},
                                      const Deadline& deadline = {});

/// True iff `perm` maps edges to edges and respects `colors`.
bool is_automorphism(const Graph& graph, std::span<const int> perm,
                     std::span<const int> colors = {});

}  // namespace symcolor
