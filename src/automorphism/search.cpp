#include "automorphism/search.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "automorphism/refinement.h"

namespace symcolor {
namespace {

/// Plain union-find over vertices, merged with every discovered generator.
class DisjointSets {
 public:
  explicit DisjointSets(int n) : parent_(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(a)] = b;
  }
  void merge_perm(std::span<const int> p) {
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p[i] != static_cast<int>(i)) unite(static_cast<int>(i), p[i]);
    }
  }

 private:
  std::vector<int> parent_;
};

class Search {
 public:
  Search(const Graph& graph, std::span<const int> colors,
         const Deadline& deadline)
      : graph_(graph),
        colors_(colors.begin(), colors.end()),
        deadline_(deadline),
        theta_(graph.num_vertices()) {}

  AutomorphismResult run() {
    Timer timer;
    const int n = graph_.num_vertices();
    if (n == 0) {
      result_.seconds = timer.seconds();
      return std::move(result_);
    }
    OrderedPartition root(n, colors_);
    std::vector<int> all_cells;
    for (int id = 0; id < root.num_cell_slots(); ++id) {
      if (root.cell_live(id)) all_cells.push_back(id);
    }
    first_traces_.push_back(root.refine(graph_, std::move(all_cells)));
    first_path(root, 0);
    result_.seconds = timer.seconds();
    return std::move(result_);
  }

 private:
  [[nodiscard]] bool budget_exceeded() {
    if ((result_.nodes & 0xFF) == 0 && deadline_.expired()) {
      result_.complete = false;
    }
    return !result_.complete;
  }

  /// Descend the leftmost path; afterwards explore sibling children with
  /// orbit pruning and accumulate the group order.
  void first_path(const OrderedPartition& node, int level) {
    ++result_.nodes;
    if (budget_exceeded()) return;
    if (node.discrete()) {
      base_leaf_ = node.labeling();
      ++result_.leaves;
      return;
    }
    const int target = node.target_cell();
    const std::vector<int> cell(node.cell_elements(target).begin(),
                                node.cell_elements(target).end());
    const int v = cell.front();

    {
      OrderedPartition child = node;
      const int singleton = child.individualize(v);
      const std::uint64_t trace = child.refine(graph_, {singleton});
      if (static_cast<int>(first_traces_.size()) <= level + 1) {
        first_traces_.push_back(trace);
      }
      first_path(child, level + 1);
    }
    if (!result_.complete) return;

    // Explore the remaining children of this first-path node.
    std::vector<int> explored{v};
    for (std::size_t i = 1; i < cell.size(); ++i) {
      if (budget_exceeded()) return;
      const int w = cell[static_cast<std::size_t>(i)];
      bool pruned = false;
      for (const int e : explored) {
        if (theta_.find(w) == theta_.find(e)) {
          pruned = true;
          break;
        }
      }
      if (pruned) continue;
      explored.push_back(w);
      OrderedPartition child = node;
      const int singleton = child.individualize(w);
      const std::uint64_t trace = child.refine(graph_, {singleton});
      if (trace != first_traces_[static_cast<std::size_t>(level + 1)]) continue;
      other_path(child, level + 1);
    }

    // Group order contribution: |orbit of v within the target cell|.
    int orbit_size = 0;
    for (const int w : cell) {
      if (theta_.find(w) == theta_.find(v)) ++orbit_size;
    }
    if (orbit_size > 1) {
      result_.log10_order += std::log10(static_cast<double>(orbit_size));
    }
  }

  /// Search one subtree for a single automorphism (Saucy-style early
  /// exit). Returns true when one was found.
  bool other_path(const OrderedPartition& node, int level) {
    ++result_.nodes;
    if (budget_exceeded()) return false;
    if (node.discrete()) {
      ++result_.leaves;
      return try_leaf(node);
    }
    if (static_cast<int>(first_traces_.size()) <= level + 1) {
      // The first path ended above this depth; structure mismatch.
      ++result_.bad_leaves;
      return false;
    }
    const int target = node.target_cell();
    const std::vector<int> cell(node.cell_elements(target).begin(),
                                node.cell_elements(target).end());
    for (const int w : cell) {
      if (budget_exceeded()) return false;
      OrderedPartition child = node;
      const int singleton = child.individualize(w);
      const std::uint64_t trace = child.refine(graph_, {singleton});
      if (trace != first_traces_[static_cast<std::size_t>(level + 1)]) continue;
      if (other_path(child, level + 1)) return true;
    }
    return false;
  }

  bool try_leaf(const OrderedPartition& leaf) {
    const std::vector<int> labeling = leaf.labeling();
    Perm perm(base_leaf_.size());
    for (std::size_t i = 0; i < base_leaf_.size(); ++i) {
      perm[static_cast<std::size_t>(base_leaf_[i])] = labeling[i];
    }
    if (is_identity(perm)) return false;
    if (!is_automorphism(graph_, perm, colors_)) {
      ++result_.bad_leaves;
      return false;
    }
    theta_.merge_perm(perm);
    result_.generators.push_back(std::move(perm));
    return true;
  }

  const Graph& graph_;
  std::vector<int> colors_;
  const Deadline& deadline_;
  DisjointSets theta_;
  AutomorphismResult result_;
  std::vector<std::uint64_t> first_traces_;
  std::vector<int> base_leaf_;
};

}  // namespace

bool is_automorphism(const Graph& graph, std::span<const int> perm,
                     std::span<const int> colors) {
  if (static_cast<int>(perm.size()) != graph.num_vertices()) return false;
  if (!is_permutation(perm)) return false;
  if (!colors.empty()) {
    for (std::size_t v = 0; v < perm.size(); ++v) {
      if (colors[v] != colors[static_cast<std::size_t>(perm[v])]) return false;
    }
  }
  for (const Edge& e : graph.edges()) {
    if (!graph.has_edge(perm[static_cast<std::size_t>(e.u)],
                        perm[static_cast<std::size_t>(e.v)])) {
      return false;
    }
  }
  return true;
}

AutomorphismResult find_automorphisms(const Graph& graph,
                                      std::span<const int> colors,
                                      const Deadline& deadline) {
  Search search(graph, colors, deadline);
  return search.run();
}

}  // namespace symcolor
