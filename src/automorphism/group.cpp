#include "automorphism/group.h"

#include <cassert>
#include <cmath>
#include <set>
#include <stdexcept>

namespace symcolor {

PermGroup::PermGroup(int degree) : degree_(degree) {
  if (degree < 0) throw std::invalid_argument("negative degree");
}

std::pair<Perm, std::size_t> PermGroup::sift(Perm p) const {
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const Level& level = levels_[l];
    const int image = p[static_cast<std::size_t>(level.base_point)];
    const int idx = level.orbit_index_of[static_cast<std::size_t>(image)];
    if (idx < 0) return {std::move(p), l};
    // Divide out the transversal element mapping base -> image.
    p = compose(p, inverse(level.transversal[static_cast<std::size_t>(idx)]));
  }
  return {std::move(p), levels_.size()};
}

void PermGroup::add_generator(const Perm& g) {
  assert(static_cast<int>(g.size()) == degree_);
  assert(is_permutation(g));
  if (contains(g)) return;
  gens_.push_back(g);

  // Worklist Schreier-Sims: register the new element, then re-verify
  // Schreier generators of every dirty level until a fixpoint.
  std::set<std::size_t> dirty;

  // Registers a (pre-sifted residue of a) group element in the chain.
  auto register_element = [&](Perm p) {
    auto [residue, level] = sift(std::move(p));
    if (is_identity(residue)) return;
    if (level == levels_.size()) {
      Level fresh;
      for (int i = 0; i < degree_; ++i) {
        if (residue[static_cast<std::size_t>(i)] != i) {
          fresh.base_point = i;
          break;
        }
      }
      fresh.orbit_index_of.assign(static_cast<std::size_t>(degree_), -1);
      levels_.push_back(std::move(fresh));
    }
    // The residue fixes base[0..level-1], so it belongs to every
    // stabilizer S_0..S_level — and can enlarge each of those orbits
    // (it may move their non-base points).
    for (std::size_t i = 0; i <= level; ++i) {
      levels_[i].gens.push_back(residue);
      rebuild_orbit(i);
      dirty.insert(i);
    }
  };

  register_element(g);

  while (!dirty.empty()) {
    const std::size_t i = *dirty.begin();
    dirty.erase(dirty.begin());
    // Scan the Schreier generators of level i. On the first failure,
    // register the offender (which re-marks this level dirty) and
    // restart from the worklist — the registration rebuilt our orbit.
    Level& lvl = levels_[i];
    bool failed = false;
    for (std::size_t xi = 0; xi < lvl.orbit.size() && !failed; ++xi) {
      const int x = lvl.orbit[xi];
      for (std::size_t si = 0; si < lvl.gens.size() && !failed; ++si) {
        const Perm& s = lvl.gens[si];
        const int sx = s[static_cast<std::size_t>(x)];
        const int sx_idx = lvl.orbit_index_of[static_cast<std::size_t>(sx)];
        assert(sx_idx >= 0);
        Perm schreier = compose(
            compose(lvl.transversal[xi], s),
            inverse(lvl.transversal[static_cast<std::size_t>(sx_idx)]));
        if (is_identity(schreier)) continue;
        auto [residue, stop] = sift(std::move(schreier));
        (void)stop;
        if (!is_identity(residue)) {
          register_element(std::move(residue));
          dirty.insert(i);
          failed = true;
        }
      }
    }
  }
}


void PermGroup::rebuild_orbit(std::size_t level) {
  Level& lvl = levels_[level];
  lvl.orbit.clear();
  lvl.transversal.clear();
  lvl.orbit_index_of.assign(static_cast<std::size_t>(degree_), -1);
  lvl.orbit.push_back(lvl.base_point);
  lvl.transversal.push_back(identity_perm(degree_));
  lvl.orbit_index_of[static_cast<std::size_t>(lvl.base_point)] = 0;
  for (std::size_t head = 0; head < lvl.orbit.size(); ++head) {
    const int x = lvl.orbit[head];
    for (const Perm& s : lvl.gens) {
      const int y = s[static_cast<std::size_t>(x)];
      if (lvl.orbit_index_of[static_cast<std::size_t>(y)] >= 0) continue;
      lvl.orbit_index_of[static_cast<std::size_t>(y)] =
          static_cast<int>(lvl.orbit.size());
      lvl.orbit.push_back(y);
      lvl.transversal.push_back(compose(lvl.transversal[head], s));
    }
  }
}

bool PermGroup::contains(std::span<const int> p) const {
  if (static_cast<int>(p.size()) != degree_) return false;
  Perm copy(p.begin(), p.end());
  auto [residue, level] = sift(std::move(copy));
  (void)level;
  return is_identity(residue);
}

long double PermGroup::order() const {
  long double total = 1.0L;
  for (const Level& lvl : levels_) {
    total *= static_cast<long double>(lvl.orbit.size());
  }
  return total;
}

double PermGroup::log10_order() const {
  double total = 0.0;
  for (const Level& lvl : levels_) {
    total += std::log10(static_cast<double>(lvl.orbit.size()));
  }
  return total;
}

std::vector<int> PermGroup::orbit_of(int point) const {
  std::vector<int> orbit{point};
  std::vector<char> seen(static_cast<std::size_t>(degree_), 0);
  seen[static_cast<std::size_t>(point)] = 1;
  for (std::size_t head = 0; head < orbit.size(); ++head) {
    for (const Perm& g : gens_) {
      const int y = g[static_cast<std::size_t>(orbit[head])];
      if (!seen[static_cast<std::size_t>(y)]) {
        seen[static_cast<std::size_t>(y)] = 1;
        orbit.push_back(y);
      }
    }
  }
  return orbit;
}

}  // namespace symcolor
