#include "automorphism/perm.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace symcolor {

Perm identity_perm(int n) {
  Perm p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  return p;
}

bool is_permutation(std::span<const int> p) {
  const int n = static_cast<int>(p.size());
  std::vector<char> seen(p.size(), 0);
  for (const int image : p) {
    if (image < 0 || image >= n || seen[static_cast<std::size_t>(image)]) {
      return false;
    }
    seen[static_cast<std::size_t>(image)] = 1;
  }
  return true;
}

bool is_identity(std::span<const int> p) {
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] != static_cast<int>(i)) return false;
  }
  return true;
}

Perm compose(std::span<const int> a, std::span<const int> b) {
  Perm result(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    result[i] = b[static_cast<std::size_t>(a[i])];
  }
  return result;
}

Perm inverse(std::span<const int> p) {
  Perm result(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    result[static_cast<std::size_t>(p[i])] = static_cast<int>(i);
  }
  return result;
}

std::vector<int> support(std::span<const int> p) {
  std::vector<int> moved;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] != static_cast<int>(i)) moved.push_back(static_cast<int>(i));
  }
  return moved;
}

std::vector<std::vector<int>> cycles(std::span<const int> p) {
  std::vector<std::vector<int>> result;
  std::vector<char> seen(p.size(), 0);
  for (std::size_t start = 0; start < p.size(); ++start) {
    if (seen[start] || p[start] == static_cast<int>(start)) continue;
    std::vector<int> cycle;
    int x = static_cast<int>(start);
    do {
      cycle.push_back(x);
      seen[static_cast<std::size_t>(x)] = 1;
      x = p[static_cast<std::size_t>(x)];
    } while (x != static_cast<int>(start));
    result.push_back(std::move(cycle));
  }
  return result;
}

long long perm_order(std::span<const int> p) {
  long long order = 1;
  for (const auto& cycle : cycles(p)) {
    const long long len = static_cast<long long>(cycle.size());
    const long long g = std::gcd(order, len);
    const long long factor = len / g;
    if (order > std::numeric_limits<long long>::max() / factor) {
      return std::numeric_limits<long long>::max();
    }
    order *= factor;
  }
  return order;
}

}  // namespace symcolor
