#include "sat/portfolio.h"

#include <algorithm>
#include <cassert>
#include <exception>
#include <stdexcept>
#include <thread>

#include "sat/cube_solver.h"

namespace symcolor {

std::uint64_t mix_worker_seed(std::uint64_t base_seed, int worker) {
  if (worker == 0) return base_seed;
  // SplitMix64 finalizer over (seed, index): a one-bit change in either
  // input decorrelates the whole output, so consecutive worker indices
  // (and the small hand-picked seeds of the solver profiles) never yield
  // overlapping SplitMix streams.
  std::uint64_t z = base_seed +
                    0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(worker);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

SolverConfig diversify_config(const SolverConfig& base, int index) {
  SolverConfig c = base;
  if (index == 0) return c;
  c.random_seed = mix_worker_seed(base.random_seed, index);
  switch (index % 4) {
    case 1:
      // SAT-dense personality: adaptive restarts guarded by trail-size
      // blocking — hangs on to deep trails instead of restarting them.
      // Also flips to native cutting-planes PB learning, so on PB-heavy
      // instances the portfolio always races both analysis modes
      // (a no-op on purely clausal formulas).
      c.restart_scheme = RestartScheme::Adaptive;
      c.restart_blocking = true;
      c.pb_analysis = PbAnalysis::CuttingPlanes;
      break;
    case 2:
      // Slow-and-steady: gentle geometric restarts with the
      // conflict-interval reduce schedule (keeps more clauses early).
      // Explicitly pins clause-weakening PB analysis so a CuttingPlanes
      // base (the Galena profile) still races a weakening worker.
      c.restart_scheme = RestartScheme::Geometric;
      c.restart_base = 100;
      c.restart_growth = 1.3;
      c.reduce_scheme = ReduceScheme::ConflictInterval;
      c.pb_analysis = PbAnalysis::Weaken;
      break;
    case 3:
      // Scrambler: rapid Luby restarts, positive fixed-phase branching
      // (the opposite of the coloring-tuned negative default), a dash of
      // random decisions.
      c.restart_scheme = RestartScheme::Luby;
      c.restart_base = 32;
      c.phase_saving = false;
      c.default_phase = true;
      c.random_branch_freq = std::max(0.02, base.random_branch_freq);
      break;
    default:
      // index % 4 == 0 (workers 4, 8, ...): the base personality with a
      // tighter reduce cadence and deeper minimization.
      c.max_learnts_init = 512;
      c.minimize_recursive = true;
      break;
  }
  return c;
}

bool ClauseExchange::export_clause(int worker, std::span<const Lit> lits,
                                   int lbd) {
  Shard& shard = shard_for(worker);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  // The sequence number is claimed INSIDE the shard's critical section:
  // an importer that later observes next_seq_ >= seq and locks this shard
  // is therefore guaranteed to see the append below (see the class
  // comment for the full argument).
  const std::size_t seq = next_seq_.fetch_add(1, std::memory_order_acq_rel);
  if (seq >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // The exporter already filtered on its own glue cap; the learn-time LBD
  // rides along so every importer can re-apply its own admission caps.
  shard.entries.push_back({worker, seq, {Clause(lits.begin(), lits.end()), lbd}});
  return true;
}

void ClauseExchange::import_clauses(int worker, std::size_t* cursor,
                                    std::vector<SharedClause>* out) {
  const std::size_t horizon =
      std::min(next_seq_.load(std::memory_order_acquire), capacity_);
  if (*cursor >= horizon) return;
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = std::lower_bound(
        shard.entries.begin(), shard.entries.end(), *cursor,
        [](const Entry& e, std::size_t c) { return e.seq < c; });
    for (; it != shard.entries.end() && it->seq < horizon; ++it) {
      if (it->worker == worker) continue;  // own export
      out->push_back(it->clause);
    }
  }
  *cursor = horizon;
}

bool ClauseExchange::export_pb(int worker, std::span<const PbTerm> terms,
                               std::int64_t degree, int lbd) {
  Shard& shard = shard_for(worker);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const std::size_t seq =
      next_pb_seq_.fetch_add(1, std::memory_order_acq_rel);
  if (seq >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.pb_entries.push_back(
      {worker, seq,
       {std::vector<PbTerm>(terms.begin(), terms.end()), degree, lbd}});
  return true;
}

void ClauseExchange::import_pbs(int worker, std::size_t* cursor,
                                std::vector<SharedPb>* out) {
  const std::size_t horizon =
      std::min(next_pb_seq_.load(std::memory_order_acquire), capacity_);
  if (*cursor >= horizon) return;
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = std::lower_bound(
        shard.pb_entries.begin(), shard.pb_entries.end(), *cursor,
        [](const PbEntry& e, std::size_t c) { return e.seq < c; });
    for (; it != shard.pb_entries.end() && it->seq < horizon; ++it) {
      if (it->worker == worker) continue;  // own export
      out->push_back(it->pb);
    }
  }
  *cursor = horizon;
}

std::size_t ClauseExchange::exported() const {
  return std::min(next_seq_.load(std::memory_order_acquire), capacity_);
}

std::size_t ClauseExchange::exported_pbs() const {
  return std::min(next_pb_seq_.load(std::memory_order_acquire), capacity_);
}

std::size_t ClauseExchange::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

PortfolioSolver::PortfolioSolver(const Formula& formula, SolverConfig config)
    : config_(config), master_(std::make_unique<CdclSolver>(formula, config)) {}

PortfolioSolver::PortfolioSolver(const PortfolioSolver& other)
    : config_(other.config_),
      master_(std::make_unique<CdclSolver>(*other.master_)),
      model_(other.model_),
      core_(other.core_),
      stats_(other.stats_),
      agg_stats_(other.agg_stats_),
      last_winner_(other.last_winner_),
      last_faults_(other.last_faults_),
      last_trip_(other.last_trip_),
      last_exported_(other.last_exported_),
      last_exported_pbs_(other.last_exported_pbs_),
      last_dropped_(other.last_dropped_) {}

bool PortfolioSolver::add_clause(Clause clause) {
  return master_->add_clause(std::move(clause));
}

bool PortfolioSolver::add_pb(PbConstraint constraint) {
  return master_->add_pb(std::move(constraint));
}

SolveResult PortfolioSolver::solve(const SolveBudget& budget,
                                   std::span<const Lit> assumptions) {
  const int n = std::max(1, config_.portfolio_threads);
  last_faults_ = 0;
  // Every clone copies the master's CUMULATIVE counters at spawn, so a
  // worker's own contribution this solve is its final stats minus this
  // snapshot — summed below into the aggregated all-workers view.
  const SolverStats before = master_->stats();
  if (n == 1) {
    // A fault spec aimed at a worker this 1-thread run never spawns must
    // not fire on the master (CdclSolver honours an armed spec regardless
    // of the worker field, so strip it here).
    if (config_.fault_injection.armed() && config_.fault_injection.worker > 0) {
      config_.fault_injection = {};
      master_->reconfigure(config_);
    }
    const SolveResult r = master_->solve(budget, assumptions);
    stats_ = master_->stats();
    accumulate_stats(&agg_stats_, stats_delta(master_->stats(), before));
    if (r == SolveResult::Sat) model_ = master_->model();
    core_.assign(master_->last_core().begin(), master_->last_core().end());
    last_winner_ = r == SolveResult::Unknown ? -1 : 0;
    last_trip_ = master_->last_trip();
    last_exported_ = last_exported_pbs_ = last_dropped_ = 0;
    return r;
  }

  const bool deterministic = config_.portfolio_deterministic;
  const FaultInjection fault = config_.fault_injection;
  ClauseExchange exchange(config_.portfolio_buffer, n);
  std::atomic<bool> stop{false};
  std::atomic<int> first_definitive{-1};

  // Fault targeting: the spec stays armed only on the worker it names
  // (negative = all). The master carries it in its own config, so a spec
  // aimed elsewhere is stripped off the master before cloning.
  if (fault.armed() && fault.worker > 0) {
    SolverConfig clean = config_;
    clean.fault_injection = {};
    master_->reconfigure(clean);
  }

  // Worker 0 is the master; 1..n-1 are diversified clones, rebuilt from
  // the master's current state every solve so constraints added between
  // calls (and clauses the master imported last round) carry over.
  std::vector<std::unique_ptr<CdclSolver>> clones;
  std::vector<CdclSolver*> workers;
  workers.push_back(master_.get());
  clones.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 1; i < n; ++i) {
    clones.push_back(std::make_unique<CdclSolver>(*master_));
    SolverConfig wc = diversify_config(config_, i);
    if (wc.fault_injection.armed() && wc.fault_injection.worker >= 0 &&
        wc.fault_injection.worker != i) {
      wc.fault_injection = {};
    }
    clones.back()->reconfigure(wc);
    workers.push_back(clones.back().get());
  }

  std::vector<SolveResult> results(static_cast<std::size_t>(n),
                                   SolveResult::Unknown);
  std::vector<BudgetTrip> trips(static_cast<std::size_t>(n),
                                BudgetTrip::None);
  std::vector<std::exception_ptr> faults(static_cast<std::size_t>(n));

  const auto run = [&](int i) {
    CdclSolver* worker = workers[static_cast<std::size_t>(i)];
    try {
      if (!deterministic) {
        worker->set_sharing(&exchange, i);
        worker->set_interrupt(&stop);
      }
      const SolveResult r = worker->solve(budget, assumptions);
      results[static_cast<std::size_t>(i)] = r;
      trips[static_cast<std::size_t>(i)] = worker->last_trip();
      if (!deterministic && r != SolveResult::Unknown) {
        int expected = -1;
        if (first_definitive.compare_exchange_strong(expected, i)) {
          stop.store(true);  // cooperative: losers exit at the next poll
        }
      }
    } catch (...) {
      // Exception barrier: record the death and leave the race running —
      // the survivors still own the answer (this worker's result stays
      // Unknown, and the exchange simply stops hearing from it).
      faults[static_cast<std::size_t>(i)] = std::current_exception();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  try {
    for (int i = 0; i < n; ++i) threads.emplace_back(run, i);
  } catch (...) {
    // Thread creation failed (resource exhaustion): wave off the workers
    // already racing and join them before unwinding — destroying a
    // joinable std::thread would terminate the process.
    stop.store(true);
    for (std::thread& t : threads) t.join();
    master_->set_sharing(nullptr, 0);
    master_->set_interrupt(nullptr);
    throw;
  }
  for (std::thread& t : threads) t.join();

  // The exchange and stop flag die with this frame; the master persists.
  master_->set_sharing(nullptr, 0);
  master_->set_interrupt(nullptr);

  // Aggregate every worker's contribution — winners, losers, and dead
  // workers alike (a dead worker's counters are settled once its thread
  // joined, and its partial search was real work).
  for (int i = 0; i < n; ++i) {
    accumulate_stats(
        &agg_stats_,
        stats_delta(workers[static_cast<std::size_t>(i)]->stats(), before));
  }

  int fault_count = 0;
  for (const std::exception_ptr& f : faults) fault_count += f != nullptr;
  last_faults_ = fault_count;
  if (fault_count == n) {
    // No survivors, so nothing can vouch for an answer: surface the
    // lowest-indexed worker's exception. (The master may be left
    // mid-search inconsistent — an all-workers crash is not recoverable.)
    std::rethrow_exception(faults[0]);
  }
  if (fault_count > 0) {
    // Injected faults are one-shot: once a worker has died, later solves
    // on this engine run a fully healthy portfolio again.
    config_.fault_injection = {};
  }
  // Master recovery: if worker 0 died, rebuild the master from a
  // surviving clone before this solve returns. Sound because a quiescent
  // clone holds only consequences of the same shared formula; the copy is
  // re-based onto the master personality. The survivor may have exited
  // its solve with a retained assumption-trail prefix (trail reuse) —
  // reconfigure() performs the lazy root backtrack, so the rebuilt
  // master is quiescent regardless.
  const auto repair_master = [&] {
    if (!faults[0]) return;
    for (int i = 1; i < n; ++i) {
      if (faults[static_cast<std::size_t>(i)]) continue;
      master_ = std::make_unique<CdclSolver>(
          *workers[static_cast<std::size_t>(i)]);
      master_->reconfigure(config_);
      return;
    }
  };

  // Winner selection: the race's first definitive finisher, or — in
  // deterministic mode, where everyone ran to completion — the
  // lowest-indexed definitive answer, which repeated runs reproduce.
  // Dead workers' results stayed Unknown, so they can never win.
  int winner = -1;
  if (deterministic) {
    for (int i = 0; i < n; ++i) {
      if (results[static_cast<std::size_t>(i)] != SolveResult::Unknown) {
        winner = i;
        break;
      }
    }
  } else {
    winner = first_definitive.load();
  }

  last_exported_ = exchange.exported();
  last_exported_pbs_ = exchange.exported_pbs();
  last_dropped_ = exchange.dropped();
  last_winner_ = winner;
  core_.clear();
  if (winner < 0) {
    // Budget expired everywhere: report through the first survivor (all
    // workers share one budget, so survivors trip on the same condition
    // modulo poll-cadence races).
    int reporter = 0;
    while (faults[static_cast<std::size_t>(reporter)]) ++reporter;
    stats_ = workers[static_cast<std::size_t>(reporter)]->stats();
    last_trip_ = trips[static_cast<std::size_t>(reporter)];
    repair_master();
    return SolveResult::Unknown;
  }
  const SolveResult answer = results[static_cast<std::size_t>(winner)];
  // Workers solve one shared formula: definitive answers can only
  // disagree through a soundness bug (e.g. an unsound import), so fail
  // loudly instead of silently surfacing one of them.
  for (int i = 0; i < n; ++i) {
    const SolveResult r = results[static_cast<std::size_t>(i)];
    if (r != SolveResult::Unknown && r != answer) {
      throw std::logic_error("portfolio workers disagree on SAT/UNSAT");
    }
  }
  CdclSolver* win = workers[static_cast<std::size_t>(winner)];
  stats_ = win->stats();
  last_trip_ = BudgetTrip::None;
  if (answer == SolveResult::Sat) model_ = win->model();
  if (answer == SolveResult::Unsat) {
    core_.assign(win->last_core().begin(), win->last_core().end());
  }
  repair_master();
  return answer;
}

std::unique_ptr<SolverEngine> make_solver_engine(const Formula& formula,
                                                 const SolverConfig& config) {
  if (config.cube_depth > 0) {
    // Cube-and-conquer splits the search space instead of racing full
    // copies; it subsumes the thread knob (portfolio_threads workers
    // consume the cube queue) and is worthwhile even single-threaded —
    // sibling pruning and per-cube restarts change the search shape.
    return std::make_unique<CubeAndConquerSolver>(formula, config);
  }
  if (config.portfolio_threads <= 1) {
    return std::make_unique<CdclSolver>(formula, config);
  }
  return std::make_unique<PortfolioSolver>(formula, config);
}

}  // namespace symcolor
