#pragma once
// Contiguous clause storage for the CDCL engine — a MiniSat-style arena.
//
// Every clause lives in one flat vector of 32-bit words as a
//     [header | activity | lit0 lit1 ... litN-1]
// record and is addressed by a `ClauseRef`: the word offset of its header.
// Propagation therefore walks a single allocation in address order instead
// of chasing per-clause heap pointers, and a watcher dereference costs one
// predictable cache line.
//
// Header word layout (low to high bits):
//   bit 0       learnt flag
//   bit 1       deleted flag (set between mark and sweep of a collection)
//   bit 2       relocated flag (set while a collection is in flight)
//   bits 3..26  literal count (clauses are capped at ~16.7M literals)
//   bit 27      "used" flag — set when a learnt clause participates in
//               conflict analysis, cleared by each reduce_db() sweep;
//               mid-tier clauses survive a reduction only while set
//   bits 28..31 LBD (literal block distance — the glue level measured
//               when the clause was learnt, improved monotonically when
//               the clause is touched in conflict analysis). Saturates
//               at 15, which is lossless for retention decisions: the
//               tier thresholds sit far below the cap and anything above
//               them is local-tier regardless of magnitude.
// Packing the search-management metadata into the header keeps clause
// records at the minimal 2 + size words, which matters: propagation
// throughput is memory-bound on large instances and an extra header word
// costs measurable cache traffic. Problem clauses leave used/LBD at 0.
//
// The second word holds the clause activity as raw float bits; during
// garbage collection it is repurposed as the forwarding reference of a
// relocated clause (the activity has already been copied to the new arena
// by then).
//
// ClauseRef invariants:
//   * refs are dense word offsets; `next()` steps a ref to the following
//     clause, so `for (cr = 0; cr != end_ref(); cr = next(cr))` scans every
//     record in layout order,
//   * refs are stable between collections — any collection invalidates all
//     outstanding refs, and the owner must remap watches/reasons through
//     `forward()` before touching the arena again,
//   * kInvalidClauseRef never addresses a clause.
//
// Collection protocol (driven by CdclSolver::garbage_collect):
//   1. mark: set_deleted() on every clause to drop,
//   2. sweep: scan refs in order, relocate() survivors into a fresh arena,
//   3. remap: rewrite every stored ref via relocated()/forward(),
//   4. swap the arenas.

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "cnf/literals.h"

namespace symcolor {

/// Word offset of a clause record inside the arena.
using ClauseRef = std::uint32_t;
constexpr ClauseRef kInvalidClauseRef = 0xFFFFFFFFu;

class ClauseArena {
 public:
  /// Append a clause record; returns its ref. Refs stay valid until the
  /// next collection.
  ClauseRef alloc(std::span<const Lit> lits, bool learnt) {
    assert(lits.size() >= 2);
    // The header holds a 24-bit literal count; an oversized clause would
    // silently spill into the used/LBD bits in a Release build, so fail
    // fast even with asserts compiled out. The cap is not reachable in
    // practice: a 16.7M-literal clause alone would occupy 64 MB of arena.
    if (lits.size() > kSizeMask) {
      throw std::length_error("ClauseArena: clause exceeds 2^24-1 literals");
    }
    // Keep refs comfortably below kInvalidClauseRef (and leave the top
    // bit free for future tagging schemes): 8 GiB of clauses is the cap.
    assert(mem_.size() < (1u << 31));
    const auto cr = static_cast<ClauseRef>(mem_.size());
    mem_.push_back((static_cast<std::uint32_t>(lits.size()) << kSizeShift) |
                   (learnt ? kLearntBit : 0u));
    mem_.push_back(0u);  // activity = 0.0f
    for (const Lit l : lits) {
      mem_.push_back(static_cast<std::uint32_t>(l.code()));
    }
    ++live_clauses_;
    return cr;
  }

  [[nodiscard]] int size(ClauseRef cr) const {
    return static_cast<int>((header(cr) >> kSizeShift) & kSizeMask);
  }
  [[nodiscard]] bool learnt(ClauseRef cr) const {
    return (header(cr) & kLearntBit) != 0;
  }
  [[nodiscard]] bool deleted(ClauseRef cr) const {
    return (header(cr) & kDeletedBit) != 0;
  }
  void set_deleted(ClauseRef cr) {
    assert(!deleted(cr));
    mem_[cr] |= kDeletedBit;
    --live_clauses_;
  }

  // ---- LBD / tier metadata (header bits) ----
  [[nodiscard]] int lbd(ClauseRef cr) const {
    return static_cast<int>(header(cr) >> kLbdShift);
  }
  void set_lbd(ClauseRef cr, int lbd) {
    auto clamped = static_cast<std::uint32_t>(lbd);
    if (clamped > kLbdMax) clamped = kLbdMax;
    mem_[cr] = (mem_[cr] & ~(kLbdMax << kLbdShift)) | (clamped << kLbdShift);
  }
  [[nodiscard]] bool used(ClauseRef cr) const {
    return (header(cr) & kUsedBit) != 0;
  }
  void set_used(ClauseRef cr) { mem_[cr] |= kUsedBit; }
  void clear_used(ClauseRef cr) { mem_[cr] &= ~kUsedBit; }

  [[nodiscard]] float activity(ClauseRef cr) const {
    float a;
    std::memcpy(&a, &mem_[cr + 1], sizeof(a));
    return a;
  }
  void set_activity(ClauseRef cr, float a) {
    std::memcpy(&mem_[cr + 1], &a, sizeof(a));
  }

  [[nodiscard]] Lit lit(ClauseRef cr, int i) const {
    return Lit::from_code(static_cast<int>(mem_[cr + kHeaderWords +
                                                static_cast<ClauseRef>(i)]));
  }
  /// Raw literal codes — the propagation hot loop swaps watches in place.
  [[nodiscard]] std::uint32_t* lit_codes(ClauseRef cr) {
    return mem_.data() + cr + kHeaderWords;
  }
  [[nodiscard]] const std::uint32_t* lit_codes(ClauseRef cr) const {
    return mem_.data() + cr + kHeaderWords;
  }

  // ---- layout-order iteration ----
  [[nodiscard]] ClauseRef end_ref() const {
    return static_cast<ClauseRef>(mem_.size());
  }
  [[nodiscard]] ClauseRef next(ClauseRef cr) const {
    return cr + kHeaderWords + static_cast<ClauseRef>(size(cr));
  }

  // ---- garbage collection ----
  /// Copy a live clause into `to`; marks this record relocated and stores
  /// the forwarding ref. Idempotent per record within one collection.
  ClauseRef relocate(ClauseRef cr, ClauseArena* to) {
    assert(!deleted(cr));
    if (relocated(cr)) return forward(cr);
    const int n = size(cr);
    const auto ncr = static_cast<ClauseRef>(to->mem_.size());
    to->mem_.push_back(mem_[cr] & ~kDeletedBit);
    to->mem_.push_back(mem_[cr + 1]);
    const std::uint32_t* codes = lit_codes(cr);
    to->mem_.insert(to->mem_.end(), codes, codes + n);
    ++to->live_clauses_;
    mem_[cr] |= kRelocatedBit;
    mem_[cr + 1] = ncr;
    return ncr;
  }
  [[nodiscard]] bool relocated(ClauseRef cr) const {
    return (header(cr) & kRelocatedBit) != 0;
  }
  [[nodiscard]] ClauseRef forward(ClauseRef cr) const {
    assert(relocated(cr));
    return mem_[cr + 1];
  }

  void reserve(std::size_t words) { mem_.reserve(words); }
  [[nodiscard]] std::size_t words() const noexcept { return mem_.size(); }
  [[nodiscard]] std::int64_t live_clauses() const noexcept {
    return live_clauses_;
  }

 private:
  static constexpr std::uint32_t kLearntBit = 1u << 0;
  static constexpr std::uint32_t kDeletedBit = 1u << 1;
  static constexpr std::uint32_t kRelocatedBit = 1u << 2;
  static constexpr int kSizeShift = 3;
  static constexpr std::uint32_t kSizeMask = 0xFFFFFFu;
  static constexpr std::uint32_t kUsedBit = 1u << 27;
  static constexpr int kLbdShift = 28;
  static constexpr std::uint32_t kLbdMax = 0xFu;
  static constexpr ClauseRef kHeaderWords = 2;

  [[nodiscard]] std::uint32_t header(ClauseRef cr) const { return mem_[cr]; }

  std::vector<std::uint32_t> mem_;
  std::int64_t live_clauses_ = 0;
};

}  // namespace symcolor
