#pragma once
// Restart-boundary inprocessing for the CDCL(+PB) engine.
//
// The formula a solver carries degrades into an over-description as search
// learns: literals falsified at the root stay in clause bodies, satisfied
// rows keep their watchers, and binary implications accumulate x -> y ->
// x cycles whose variables are distinct in name only. The Inprocessor
// runs at restart boundaries (decision level 0, trail = root units) under
// a SolveBudget child slice and shrinks the live database in place:
//
//  1. Vivification (CryptoMiniSat's ClauseVivifier scheme): each candidate
//     clause is detached and its literals re-propagated one by one on a
//     throwaway decision level. A literal whose complement propagates a
//     conflict ends the clause early (the prefix already implies the
//     formula's constraint — the suffix is dead weight); a literal
//     falsified by the prefix is removed; a root-satisfied clause is
//     deleted outright. Candidates rotate through a per-round churn cap
//     (problem clauses + core/mid-tier learnts), so a round costs a
//     bounded slice of propagation work, not a DB scan.
//
//  2. Equivalent-literal substitution (the VarReplacer scheme; only under
//     InprocessMode::Full): Tarjan SCC over the binary implication graph
//     finds literal classes provably equal in every model. Each class
//     collapses onto its smallest variable; the substitution map rewrites
//     every clause and PB row, activity/phase state migrates to the
//     representative, and a reconstruction stack lets extend_model() give
//     eliminated variables their forced values in model(). Late-arriving
//     literals — assumptions, exchange imports, incremental add_clause/
//     add_pb — are remapped through CdclSolver::map_lit at the boundary.
//
// Soundness scope: everything either pass derives is a consequence of the
// formula alone (level-0 trail literals are never assumption-dependent,
// and learnt binaries never resolve on assumption pseudo-decisions), so
// deletions and substitutions survive across solve() calls with
// different assumptions, across clones, and across the clause exchange.
//
// Degradation semantics: a round polls its budget between clauses and
// stops early at any trip, always finishing the clause in flight — the
// database is consistent (watchers attached, pools coherent, trail
// propagated) after every return, tripped or not.
//
// The root-reduction helpers below are the shared simplification core:
// cnf/simplify.cpp (pre-solve preprocessing) and the inprocessor's
// substitution pass both reduce constraints against a root assignment
// through them, so the two layers cannot drift apart.

#include <cstdint>
#include <span>
#include <vector>

#include "cnf/formula.h"
#include "cnf/literals.h"
#include "cnf/pb_constraint.h"
#include "sat/cdcl.h"
#include "util/budget.h"

namespace symcolor {

// ---- shared root-reduction core (preprocessing + inprocessing) ----

/// What reducing a clause against a root assignment yielded.
enum class RootClauseStatus : std::uint8_t {
  Unchanged,  ///< no literal assigned; `reduced` untouched
  Shortened,  ///< false literals stripped; `reduced` holds >= 2 literals
  Satisfied,  ///< some literal true at root; drop the clause
  Unit,       ///< one literal left; `reduced` holds exactly it
  Empty,      ///< every literal false at root; the formula is unsat
};

/// Reduce `lits` against `values` (indexed by variable): drop false
/// literals, detect satisfaction/unit/empty. Writes the surviving
/// literals into `*reduced` except when Unchanged or Satisfied.
RootClauseStatus reduce_clause_at_root(std::span<const Lit> lits,
                                       std::span<const LBool> values,
                                       Clause* reduced);

/// What reducing a PB row against a root assignment yielded.
enum class RootPbStatus : std::uint8_t {
  Open,           ///< still a proper PB row; see `constraint` and `forced`
  Clause,         ///< degenerated to a clause; see `constraint`
  Satisfied,      ///< tautological after folding; drop the row
  Contradiction,  ///< bound exceeds the attainable sum; unsat
};

struct RootPbReduction {
  RootPbStatus status = RootPbStatus::Satisfied;
  /// The folded row (Open) or its clause form (Clause).
  PbConstraint constraint;
  /// Literals the folded row forces outright (coefficient > slack);
  /// filled for Open rows only.
  std::vector<Lit> forced;
};

/// Fold root-assigned literals out of `terms >= bound` (true terms pay
/// their coefficient off the bound, false terms drop) and classify the
/// remainder. `terms` need not be normalized; duplicate and complementary
/// literals are merged by PbConstraint's own normalization. Throws
/// std::overflow_error when folding overflows int64 (as PbConstraint
/// construction itself would).
RootPbReduction reduce_pb_at_root(std::span<const PbTerm> terms,
                                  std::int64_t bound,
                                  std::span<const LBool> values);

// ---- the restart-boundary inprocessor ----

/// One inprocessing round over a quiescent CdclSolver. Construct fresh
/// per round (it is a cursor-free view; the rotating vivification cursor
/// lives in the solver so it survives between rounds and across clones).
class Inprocessor {
 public:
  explicit Inprocessor(CdclSolver& solver) : s_(solver) {}

  /// Run the passes selected by the solver's InprocessMode under `budget`
  /// (plus the solver's own inprocess_prop_budget). Requires decision
  /// level 0; re-propagates first and refuses to run on an unsat solver.
  /// Returns literals dropped + clauses removed + variables replaced; the
  /// solver's ok_ flag is cleared when a pass derives root-level
  /// unsatisfiability.
  std::int64_t run(const SolveBudget& budget);

 private:
  // -- vivification --
  std::int64_t vivify(const SolveBudget& budget);
  /// Re-propagate one detached clause; returns the change count and
  /// leaves the solver at level 0 with the clause (or its replacement)
  /// attached, or deleted when subsumed. Sets deleted_ on any deletion.
  std::int64_t vivify_one(ClauseRef cref);

  // -- equivalent-literal substitution --
  std::int64_t substitute();
  /// Tarjan SCC over the binary implication graph; fills `merges` with
  /// (variable, representative literal) pairs. Returns false when a
  /// class contains a literal and its complement (the formula is unsat).
  bool find_equivalences(std::vector<std::pair<Var, Lit>>* merges);
  /// Commit a merge set: update subst_/eliminated_/reconstruction_,
  /// migrate activity and phase, rewrite every clause and PB row, rebuild
  /// the watcher and occurrence pools, re-propagate. Returns the change
  /// count; clears ok_ on a derived contradiction.
  std::int64_t apply_substitution(
      const std::vector<std::pair<Var, Lit>>& merges);

  // -- plumbing --
  /// Strip ClauseRef/PbRef reasons off the level-0 trail. Root literals
  /// never need their reasons again (every analysis walk skips level 0),
  /// and a dangling reason to a clause the round deletes would break the
  /// next garbage collection's forwarding remap.
  void clear_root_reasons();
  /// Remove the two watcher entries of `cref` (watched literals are
  /// always clause positions 0/1) from the size-appropriate pool.
  void detach(ClauseRef cref);
  /// Push the two watcher entries of `cref` back (positions 0/1).
  void attach(ClauseRef cref);
  /// Enqueue a root unit if still unassigned; clears ok_ on conflict
  /// with the root assignment. Does not propagate.
  void enqueue_root(Lit l);

  CdclSolver& s_;
  bool deleted_ = false;        ///< any arena deletion this round
  std::vector<Lit> scratch_;    ///< per-clause literal buffer
};

}  // namespace symcolor
