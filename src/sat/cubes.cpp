#include "sat/cubes.h"

#include <algorithm>
#include <utility>

namespace symcolor {

namespace {

/// The literal branching on `v` with phase `phase_true` (pick_branch's
/// encoding: Lit(v, negated)).
Lit phase_lit(Var v, bool phase_true) { return Lit(v, !phase_true); }

/// base + cube.lits + optionally one extension literal, reused across
/// probes to avoid reallocating per candidate.
void build_prefix(std::span<const Lit> base, const Cube& cube,
                  std::vector<Lit>* out) {
  out->clear();
  out->reserve(base.size() + cube.lits.size() + 1);
  out->insert(out->end(), base.begin(), base.end());
  out->insert(out->end(), cube.lits.begin(), cube.lits.end());
}

}  // namespace

SplitResult split_cube(CdclSolver& probe, std::span<const Lit> base,
                       const Cube& cube, const CubeGenOptions& options,
                       CubeGenStats* stats) {
  SplitResult result;
  std::vector<Lit> prefix;
  build_prefix(base, cube, &prefix);

  // Re-check the cube itself first: shared clauses learned since the
  // parent was probed (or the stuck worker's own learning) may refute it
  // by propagation alone now.
  const CdclSolver::ProbeResult parent = probe.probe_assumptions(prefix);
  ++stats->probes;
  if (parent.refuted) {
    ++stats->refuted_branches;
    result.refuted = true;
    return result;
  }

  const std::vector<Var> candidates =
      probe.top_branch_candidates(options.candidates);
  Var best = -1;
  bool best_phase = false;
  int best_pos = 0;
  int best_neg = 0;
  std::int64_t best_score = -1;
  prefix.push_back(kUndefLit);  // slot for the candidate literal
  for (const Var v : candidates) {
    // Skip variables the cube already pins (their probes are no-ops).
    const auto pinned = [v](Lit l) { return l.var() == v; };
    if (std::any_of(cube.lits.begin(), cube.lits.end(), pinned) ||
        std::any_of(base.begin(), base.end(), pinned)) {
      continue;
    }
    prefix.back() = Lit::positive(v);
    const CdclSolver::ProbeResult pos = probe.probe_assumptions(prefix);
    prefix.back() = Lit::negative(v);
    const CdclSolver::ProbeResult neg = probe.probe_assumptions(prefix);
    stats->probes += 2;
    if (pos.refuted && neg.refuted) {
      // Both phases refute: the cube itself is unsatisfiable.
      ++stats->refuted_branches;
      result.refuted = true;
      return result;
    }
    if (pos.refuted || neg.refuted) {
      // Failed literal: the surviving phase is forced — strengthen the
      // cube for free instead of splitting.
      ++stats->failed_literals;
      Cube child = cube;
      child.lits.push_back(pos.refuted ? Lit::negative(v)
                                       : Lit::positive(v));
      child.depth = cube.depth + 1;
      result.children.push_back(std::move(child));
      result.forced.push_back(pos.refuted ? neg.forced : pos.forced);
      return result;
    }
    // Split where BOTH children simplify: maximize min(forced), tie-break
    // on total propagation power.
    const std::int64_t score =
        static_cast<std::int64_t>(std::min(pos.forced, neg.forced)) * 1024 +
        pos.forced + neg.forced;
    if (score > best_score) {
      best_score = score;
      best = v;
      best_phase = probe.saved_phase(v);
      best_pos = pos.forced;
      best_neg = neg.forced;
    }
  }
  if (best < 0) return result;  // no free candidate: unsplittable leaf

  // Saved-phase child first: on satisfiable instances the solver's own
  // phase preference is where a model is most likely, and the scheduler
  // deals cubes in order.
  Cube first = cube;
  first.lits.push_back(phase_lit(best, best_phase));
  first.depth = cube.depth + 1;
  Cube second = cube;
  second.lits.push_back(phase_lit(best, !best_phase));
  second.depth = cube.depth + 1;
  result.children.push_back(std::move(first));
  result.forced.push_back(best_phase ? best_pos : best_neg);
  result.children.push_back(std::move(second));
  result.forced.push_back(best_phase ? best_neg : best_pos);
  return result;
}

std::vector<Cube> generate_cubes(CdclSolver& probe, std::span<const Lit> base,
                                 const CubeGenOptions& options,
                                 CubeGenStats* stats) {
  std::vector<Cube> empty;
  const CdclSolver::ProbeResult root = probe.probe_assumptions(base);
  ++stats->probes;
  if (root.refuted) {
    stats->root_refuted = true;
    return empty;
  }
  const int free_vars = root.free_vars;

  struct Node {
    Cube cube;
    bool leaf = false;
  };
  std::vector<Node> frontier;
  frontier.push_back({Cube{}, false});
  for (int d = 0; d < options.depth; ++d) {
    std::vector<Node> next;
    next.reserve(frontier.size() * 2);
    bool any_split = false;
    for (Node& node : frontier) {
      if (node.leaf || next.size() + 2 > options.max_cubes) {
        next.push_back(std::move(node));
        continue;
      }
      SplitResult split =
          split_cube(probe, base, node.cube, options, stats);
      if (split.refuted) continue;  // branch closed by propagation
      if (split.children.empty()) {
        // Unsplittable (every candidate pinned/assigned): keep as a leaf.
        node.leaf = true;
        next.push_back(std::move(node));
        continue;
      }
      any_split = true;
      for (std::size_t i = 0; i < split.children.size(); ++i) {
        // Estimated-hardness cutoff: a child whose probe already forces a
        // healthy fraction of the free variables is easy — emit as leaf.
        const bool easy =
            free_vars > 0 &&
            static_cast<double>(split.forced[i]) >=
                options.easy_frac * static_cast<double>(free_vars);
        next.push_back({std::move(split.children[i]), easy});
      }
    }
    frontier = std::move(next);
    if (!any_split || frontier.empty()) break;
  }

  std::vector<Cube> cubes;
  cubes.reserve(frontier.size());
  for (Node& node : frontier) cubes.push_back(std::move(node.cube));
  return cubes;
}

}  // namespace symcolor
