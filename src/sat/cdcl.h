#pragma once
// CDCL solver for mixed CNF + pseudo-Boolean formulas.
//
// This is the engine underneath all "specialized 0-1 ILP solver"
// personalities in the paper (PBS / PBS II / Galena / Pueblo): a
// Davis-Logemann-Loveland backtrack search with
//   * two-watched-literal propagation for clauses,
//   * counter-based propagation (slack maintenance) for PB constraints,
//   * first-UIP conflict-driven clause learning — PB reasons are weakened
//     to clausal reasons on demand, the classic PBS scheme — or, under
//     PbAnalysis::CuttingPlanes (the Galena scheme), native pseudo-Boolean
//     conflict analysis: PB conflicts are resolved against PB reasons by
//     coefficient-scaled addition with saturation and gcd rounding, and
//     the resolvent is learned as a PB constraint (tiered in reduce_db()
//     beside the learnt clauses) or as a clause when it degenerates,
//   * optional learned-clause minimization (self-subsumption),
//   * VSIDS variable activity with phase saving,
//   * Luby, geometric, or Glucose-style adaptive (LBD-EMA) restarts, the
//     adaptive scheme optionally guarded by Glucose's trail-size restart
//     blocking (suppress a restart while the trail is far above its
//     long-run average — the worker is plausibly near a model),
//   * LBD-tiered learned-clause retention with activity tie-breaking,
//     reducible either on DB size (default) or on a CaDiCaL-style
//     conflict-interval schedule (ReduceScheme::ConflictInterval).
//
// The configuration knobs expose exactly the axes along which the paper's
// three academic solvers differ; see pb/solver_profiles.h.
//
// The solver implements the SolverEngine interface (sat/solver_engine.h)
// and is the unit of parallelism of the clone-based portfolio
// (sat/portfolio.h): the arena/pool storage makes a deep copy a handful
// of memcpys, reconfigure() diversifies a clone in place, and the
// ClauseSharing hooks let racing workers exchange core-tier (glue <=
// share_max_lbd) learnt clauses — exported at learn time, imported at
// restart boundaries where a plain level-0 clause addition is sound.
//
// Constraint storage (the propagation hot path):
//   * Clauses live in a single contiguous ClauseArena (sat/clause_arena.h)
//     as [header | activity | lits...] records addressed by 32-bit
//     ClauseRefs; LBD and the used flag ride in spare header bits so the
//     record stays at the minimal 2 + size words. Watchers carry
//     {ClauseRef, blocker literal}; a watcher visit whose blocker is
//     already true never touches the arena at all.
//   * Watch lists live in flat watcher pools (sat/watcher_pool.h):
//     per-literal {offset, size, capacity} headers into a single
//     contiguous Watcher slab with amortized-doubling growth. The pools
//     are compacted back to garbage-free CSR order during reduce_db() GC
//     (and before a solve when they have grown sparse), so propagation
//     scans ride one allocation instead of 2N heap vectors.
//   * Binary clauses watch through a dedicated pool scanned before the
//     long-clause rows: each entry is the implied literal plus the clause
//     ref, so the scan needs no tag test, no arena access, and no
//     keep-compaction write-back — on the paper's coloring encodings
//     (overwhelmingly binary) most propagation never leaves this loop.
//   * reduce_db() performs MiniSat-style garbage collection: live clauses
//     are compacted into a fresh arena in layout order and every stored
//     ref (watch lists, trail reasons) is remapped through the forwarding
//     pointers. There are no tombstones — propagation never skips dead
//     records, and watcher lists physically shrink at every reduction.
//   * PB constraint terms are flattened into one shared pool
//     (pb_terms_); each PbData row holds an offset/length into it plus the
//     cached slack and the largest coefficient. Propagation short-circuits
//     any constraint whose cached slack is at least its max coefficient:
//     such a constraint can neither be conflicting nor force a literal, so
//     its term list is never scanned.
//   * PB occurrence lists use the same flat pool layout (pb_occs_); add_pb
//     between solves appends through the pool's growth path and a rebuild
//     hook re-compacts the rows to CSR order at the next solve() entry.
//
// Learned-clause management (Glucose lineage):
//   * Every learnt clause gets an LBD (literal block distance — the number
//     of distinct decision levels among its literals) measured during the
//     backjump-level scan of analyze() (no extra pass) and stored in the
//     arena header. When a learnt clause reappears in conflict analysis
//     its LBD is recomputed — at most once per reduction cycle, throttled
//     by the used flag — and kept if smaller, so glue estimates only
//     improve.
//   * reduce_db() splits the learned DB into three tiers by current LBD:
//       core  (lbd <= tier_core_lbd, default 2): kept unconditionally —
//             glue clauses connect decision levels and are never deleted;
//       mid   (lbd <= tier_mid_lbd, default 6): kept while "used" — i.e.
//             touched by conflict analysis since the previous reduction —
//             otherwise demoted to the local pool for this round;
//       local (everything else): sorted by activity, the less active half
//             is deleted, exactly as plain MiniSat would.
//     Clauses move between tiers only through LBD improvement (promotion)
//     or the used-flag timeout (demotion); stats() reports per-tier counts
//     from the most recent reduction. Because the tiers protect exactly
//     the clauses worth keeping, the default reduction cadence is far more
//     aggressive than MiniSat's (first reduction at max(800, m/8) learnts)
//     — a small local pool is what keeps the watch lists short and the
//     propagation loop in cache.
//   * Restarts: Luby and geometric schedules as before, plus
//     RestartScheme::Adaptive — restart when the fast EMA of recent
//     learnt-clause LBDs exceeds restart_margin times the slow EMA,
//     signalling that search has wandered into a region producing worse
//     (higher-glue) clauses than its long-run average. stats() reports how
//     many restarts the EMA condition triggered.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cnf/formula.h"
#include "cnf/literals.h"
#include "sat/clause_arena.h"
#include "sat/heap.h"
#include "sat/solver_engine.h"
#include "sat/watcher_pool.h"
#include "util/rng.h"
#include "util/timer.h"

namespace symcolor {

enum class RestartScheme { Luby, Geometric, Adaptive };

/// How conflicts whose conflicting constraint is pseudo-Boolean are
/// analyzed:
///   * Weaken — the classic PBS scheme: the PB conflict and every PB
///     reason are weakened to clauses on the fly and first-UIP clause
///     learning proceeds as usual. Cheap, but the learned clause can be
///     exponentially weaker than the PB resolvent (pigeonhole-style
///     counting arguments are lost).
///   * CuttingPlanes — Galena's native PB learning: the conflicting
///     constraint is resolved against PB (and clausal) reasons by
///     coefficient-scaled addition with saturation; reasons are weakened
///     only as far as needed to keep the resolvent conflicting, the
///     resolvent is divided by the gcd of its coefficients each step, and
///     the result is learned as a PB constraint — or as a clause when the
///     resolvent degenerates to one. All resolution arithmetic is
///     overflow-checked; a conflict whose resolvent would overflow int64
///     falls back to the Weaken path (counted in stats().pb_fallbacks),
///     so the mode is never less sound than weakening.
enum class PbAnalysis { Weaken, CuttingPlanes };

/// When reduce_db() fires: on learned-DB size crossing a growing limit
/// (MiniSat lineage, the default) or on a conflict-count schedule that
/// grows linearly per reduction (CaDiCaL/Glucose lineage) — the latter
/// decouples reduction cadence from how fast the DB happens to grow,
/// which behaves better on very long solves and is a portfolio
/// diversification axis.
enum class ReduceScheme { DbSize, ConflictInterval };

/// Inprocessing at restart boundaries (sat/inprocess.h):
///   * Off  — the formula never changes after preprocessing.
///   * Viv  — clause vivification only: re-propagate clauses to drop
///     falsified literals and delete satisfied/subsumed rows. Always
///     sound, touches no variable identities. The default.
///   * Full — vivification plus equivalent-literal substitution: Tarjan
///     SCC over the binary implication graph collapses x <-> y cycles
///     into one representative per class; eliminated variables are
///     reconstructed into the model via the reconstruction stack.
enum class InprocessMode { Off, Viv, Full };

/// Deterministic fault injection for the portfolio's exception-barrier
/// tests (production configs leave this disarmed). The portfolio arms the
/// spec only on the worker it targets; a direct CdclSolver::solve honours
/// an armed spec regardless of the worker field.
struct FaultInjection {
  /// Portfolio worker index the fault targets; negative = every worker.
  int worker = 0;
  /// Throw std::runtime_error after this many conflicts in one solve()
  /// call (<= 0 = off).
  std::int64_t throw_after_conflicts = 0;
  /// Throw std::runtime_error at the first import boundary with a sharing
  /// sink attached (simulates a poisoned foreign constraint; never fires
  /// in deterministic portfolio mode, where sharing is detached).
  bool poison_import = false;

  [[nodiscard]] bool armed() const noexcept {
    return throw_after_conflicts > 0 || poison_import;
  }
};

struct SolverConfig {
  double var_decay = 0.95;
  double clause_decay = 0.999;
  RestartScheme restart_scheme = RestartScheme::Luby;
  /// Conflicts in the first restart interval.
  std::int64_t restart_base = 100;
  /// Growth factor for geometric restarts.
  double restart_growth = 1.5;
  bool phase_saving = true;
  /// Initial branching phase when no phase is saved (false = branch to
  /// the negative literal first, the right default for coloring
  /// indicators where most variables are 0 in a solution).
  bool default_phase = false;
  bool minimize_learned = true;
  /// Deep (recursive) minimization: walk the whole implication graph under
  /// each candidate literal instead of only its direct reason. Removes
  /// far more literals on structured instances — shorter learnt clauses
  /// make every later watch scan, analysis, and LBD pass cheaper. Off by
  /// default: on the paper's coloring encodings learnt clauses span many
  /// decision levels, so the deep walk rarely absorbs enough to pay for
  /// itself (measured on the queen benchmarks). Only consulted when
  /// minimize_learned is set.
  bool minimize_recursive = false;
  /// Fraction of decisions taken uniformly at random (diversification).
  double random_branch_freq = 0.0;
  std::uint64_t random_seed = 0x5EED;
  /// Hard conflict budget; <= 0 means unlimited.
  std::int64_t conflict_budget = 0;
  /// Initial learned-clause limit before the first reduce_db(); <= 0 means
  /// the automatic max(800, num_clauses / 8) — deliberately aggressive,
  /// see the tier discussion in the header comment. Tests use a tiny
  /// value to force frequent reductions/collections.
  double max_learnts_init = 0.0;

  // ---- LBD tiers (reduce_db retention) ----
  /// Learnt clauses with LBD <= tier_core_lbd are never deleted.
  int tier_core_lbd = 2;
  /// Learnt clauses with LBD <= tier_mid_lbd survive a reduction while
  /// they have been used in conflict analysis since the previous one.
  int tier_mid_lbd = 6;

  // ---- adaptive (Glucose-style) restarts ----
  /// Smoothing factor of the fast LBD EMA (recent search quality).
  double restart_ema_fast = 1.0 / 32.0;
  /// Smoothing factor of the slow LBD EMA (long-run search quality).
  double restart_ema_slow = 1.0 / 4096.0;
  /// Restart when fast_ema > restart_margin * slow_ema.
  double restart_margin = 1.25;
  /// Minimum conflicts between adaptive restarts (lets the fast EMA
  /// re-stabilize after the post-restart reset).
  std::int64_t adaptive_min_conflicts = 50;

  // ---- restart blocking (Glucose trail-size heuristic) ----
  /// Suppress an adaptive restart when the current trail is much larger
  /// than its long-run average at conflicts: a deep trail means the worker
  /// is plausibly close to completing a model, and restarting would throw
  /// that progress away. Only consulted under RestartScheme::Adaptive.
  bool restart_blocking = false;
  /// Block when trail size > block_margin * trail EMA (Glucose uses 1.4).
  double block_margin = 1.4;
  /// Smoothing factor of the trail-size EMA (Glucose averages ~5000
  /// trailing conflicts).
  double block_ema = 1.0 / 5000.0;

  // ---- reduce_db scheduling ----
  ReduceScheme reduce_scheme = ReduceScheme::DbSize;
  /// ConflictInterval: first reduction after this many conflicts...
  std::int64_t reduce_interval_base = 2000;
  /// ...and each later one after base + inc * completed_reductions more
  /// (linear back-off, CaDiCaL/Glucose style).
  std::int64_t reduce_interval_inc = 300;

  // ---- incremental hot path (chrono backtracking + trail reuse) ----
  /// Chronological backtracking (CaDiCaL/MapleLCM lineage): when the 1UIP
  /// backjump would discard more than this many decision levels, undo only
  /// the conflicting level instead and keep the rest of the trail — the
  /// asserting literal is enqueued one level down and the skipped levels'
  /// propagations are never re-derived. Applies to the clausal analysis
  /// path only (a PB resolvent assertive at its backjump level need not
  /// propagate higher up, and unit learnts must reach level 0). The trail
  /// stays level-monotone because assignments record their enqueue-time
  /// decision level, so analyze()/analyze_final()/LBD scans run unchanged.
  /// <= 0 disables (always jump to the assertion level).
  std::int64_t chrono_threshold = 100;
  /// Keep the assumption-implied trail prefix alive across solve() calls:
  /// the next solve() under assumptions sharing a prefix with the previous
  /// call's backtracks only to the first differing assumption instead of
  /// level 0. Quiescence becomes lazy — clone()/inprocess()/add_clause()/
  /// add_pb()/reconfigure() discard the retained prefix on entry. This is
  /// what makes optimizer probe ladders and sibling cube solves nearly
  /// free to re-enter.
  bool reuse_trail = true;

  // ---- inprocessing (restart-boundary simplification) ----
  /// What the restart-boundary inprocessor does (see InprocessMode).
  InprocessMode inprocess = InprocessMode::Viv;
  /// Conflicts before the first inprocessing round...
  std::int64_t inprocess_interval_base = 4000;
  /// ...and each later round after base + inc * completed_rounds more
  /// conflicts (linear back-off, like the reduce schedule).
  std::int64_t inprocess_interval_inc = 4000;
  /// Clauses vivified per round (churn cap — a round touches a rotating
  /// window of the DB, not all of it).
  std::int64_t inprocess_viv_cap = 500;
  /// Propagations one round may spend before it stops early (folded into
  /// the SolveBudget child slice the round runs under).
  std::int64_t inprocess_prop_budget = 200000;

  // ---- PB conflict analysis ----
  /// Analysis mode for PB conflicts (see PbAnalysis). Weaken is the
  /// default; the Galena profile and half the portfolio personalities
  /// run CuttingPlanes.
  PbAnalysis pb_analysis = PbAnalysis::Weaken;
  /// Cap on cutting-planes resolution steps per conflict before bailing
  /// to the Weaken path (defensive bound; real analyses stay far below).
  int pb_max_resolutions = 4096;

  // ---- portfolio clause sharing ----
  /// Learnt clauses with LBD <= share_max_lbd are exported to the
  /// attached ClauseSharing sink (core-tier currency: glue <= 2 by
  /// default, matching tier_core_lbd; learnt units export as glue 1).
  /// The same cap is re-checked on the importer side: a foreign clause
  /// whose learn-time glue exceeds the importer's own threshold is
  /// dropped and counted in stats().rejected_imports.
  int share_max_lbd = 2;
  /// Size cap enforced on both sides of the exchange: clauses longer than
  /// this are neither exported nor imported (glue caps alone admit
  /// arbitrarily long clauses on wide-glue instances).
  int share_max_size = 64;

  // ---- parallel portfolio (read by make_solver_engine/PortfolioSolver,
  // ---- ignored by CdclSolver itself) ----
  /// Number of racing workers; <= 1 selects the plain sequential engine
  /// with zero threading overhead.
  int portfolio_threads = 1;
  /// Reproducible mode: clause sharing and cooperative cancellation off,
  /// every worker runs to completion, the lowest-indexed definitive
  /// answer wins. Costs the race's early-exit benefit; meant for tests.
  bool portfolio_deterministic = false;
  /// Bound on the shared export buffer (clauses; further exports drop).
  std::size_t portfolio_buffer = 1 << 14;

  // ---- cube-and-conquer (read by make_solver_engine/CubeAndConquerSolver,
  // ---- ignored by CdclSolver itself) ----
  /// > 0 selects the cube-and-conquer engine: lookahead probing splits the
  /// search space into assumption cubes of (up to) this depth, dealt to
  /// portfolio_threads workers from a shared queue. 0 = off. Splitting
  /// beats the racing portfolio when the instance is hard enough that one
  /// worker cannot finish a whole-space search inside the budget; racing
  /// wins on instances where diversification alone finds a short proof.
  int cube_depth = 0;
  /// Candidate variables probed (both phases) per cube split, drawn from
  /// the top of the activity heap.
  int cube_candidates = 8;
  /// Conflicts the master spends on a warmup solve (seeding activities and
  /// learned clauses that cube generation branches on) before any cubes
  /// are generated; easy instances never reach the cube phase. <= 0 skips
  /// the warmup.
  std::int64_t cube_warmup_conflicts = 2000;
  /// Conflicts a worker spends on one cube before the cube is deemed
  /// stuck, split further via the worker's own activity heap, and re-dealt
  /// to the queue (the work-stealing tail). <= 0 disables splitting.
  std::int64_t cube_conflict_slice = 20000;
  /// A stuck cube stops re-splitting once its depth reaches cube_depth +
  /// cube_max_extra_depth and runs to completion instead (bounds the
  /// split cascade on adversarial instances).
  int cube_max_extra_depth = 8;
  /// Estimated-hardness cutoff: a branch whose probe already forces this
  /// fraction of the free variables by unit propagation is emitted as a
  /// leaf cube instead of being split further (the subproblem is easy).
  double cube_easy_frac = 0.3;

  /// Deterministic fault injection (tests only; see FaultInjection).
  FaultInjection fault_injection;
};

/// Learnt-clause census by retention tier (see SolverConfig thresholds).
struct TierCounts {
  std::int64_t core = 0;
  std::int64_t mid = 0;
  std::int64_t local = 0;
};

/// One solver instance owns a private copy of the formula's constraints.
/// Usage: construct, optionally add more constraints, then solve().
///
/// Implements SolverEngine; the virtual boundary sits at the granularity
/// of whole solve()/add_*() calls, so the propagation/analysis hot path
/// (all non-virtual private members) is unaffected by the indirection.
class CdclSolver final : public SolverEngine {
 public:
  explicit CdclSolver(const Formula& formula, SolverConfig config = {});

  /// Deep copy — the portfolio's worker-spawn path. The arena, pools and
  /// per-variable state are contiguous vectors, so this is a handful of
  /// memcpys; learned clauses, activities, saved phases and the level-0
  /// trail all carry over. Portfolio hooks (sharing sink, interrupt flag)
  /// deliberately do NOT: a clone starts unattached (PortfolioHooks
  /// resets itself on copy, which is what lets this stay = default — no
  /// hand-maintained member list to drift when state is added).
  CdclSolver(const CdclSolver& other) = default;
  CdclSolver& operator=(const CdclSolver&) = delete;

  /// Add a clause after construction (used by the optimization loop to
  /// strengthen objective bounds between calls). Discards any retained
  /// assumption trail first (lazy root backtrack), so the addition always
  /// happens at level 0. Returns false if the addition makes the instance
  /// trivially unsat.
  bool add_clause(Clause clause) override;
  /// Add a PB constraint after construction (same lazy-backtrack entry).
  bool add_pb(PbConstraint constraint) override;

  /// Solve under optional assumptions. Returns Unknown when a resource
  /// bound ends the solve early — the budget's wall clock, conflict or
  /// propagation cap, its interrupt() flag, or the portfolio stop flag —
  /// with last_trip() recording which. Conflict caps combine with
  /// config.conflict_budget (tighter wins); asynchronous conditions are
  /// polled on a coarse cadence (every 256 search steps), so interrupt
  /// latency is bounded by that many conflicts. Can be called repeatedly;
  /// learned clauses persist across calls. Quiescence is lazy under
  /// config.reuse_trail: every exit path retains at most the
  /// assumption-implied trail prefix (levels 1..k mirror the call's first
  /// k assumptions, each a propagation fixpoint), and the next solve()
  /// keeps the longest prefix matching its own assumptions instead of
  /// re-propagating it. clone()/inprocess()/add_clause()/add_pb()/
  /// reconfigure() discard the retained prefix on entry, so observable
  /// root-state behavior is unchanged from the eager backtrack-to-0
  /// contract.
  ///
  /// Entry poll / stale interrupts: solve() polls the budget before doing
  /// ANY work, and it never clears the budget's interrupt flag — the flag
  /// is sticky (see SolveBudget::interrupt()). An interrupt set after a
  /// previous solve returned therefore preempts this solve at entry with a
  /// zero-work Unknown/Interrupt. That is the intended kill-switch
  /// semantics for budgets shared across solves; an owner reusing one
  /// budget for independent solves must clear_interrupt() between them.
  SolveResult solve(const SolveBudget& budget = {},
                    std::span<const Lit> assumptions = {}) override;

  /// Which bound ended the last solve() early (None after Sat/Unsat).
  [[nodiscard]] BudgetTrip last_trip() const noexcept override {
    return last_trip_;
  }

  /// Complete model from the last Sat answer, indexed by variable.
  [[nodiscard]] const std::vector<LBool>& model() const noexcept override {
    return model_;
  }

  /// Failed-assumption core of the last Unsat answer (see SolverEngine);
  /// computed by analyze_final() before the exit backtrack unwinds the
  /// implication graph it walks. Empty when unsatisfiability does not
  /// depend on the assumptions.
  [[nodiscard]] std::span<const Lit> last_core() const noexcept override {
    return core_;
  }

  [[nodiscard]] const SolverStats& stats() const noexcept override {
    return stats_;
  }
  [[nodiscard]] int num_vars() const noexcept override {
    return static_cast<int>(assigns_.size());
  }

  [[nodiscard]] std::unique_ptr<SolverEngine> clone() const override {
    auto copy = std::make_unique<CdclSolver>(*this);
    // Lazy-quiescence normalization: a retained assumption trail on `this`
    // is consequences of formula + previous assumptions; the clone must
    // start at level 0 holding consequences of the formula alone.
    copy->lazy_root_backtrack();
    return copy;
  }

  // ---- portfolio hooks ----
  /// Attach (or detach with nullptr) a shared clause pool. Glue learnt
  /// clauses (LBD <= config.share_max_lbd) are exported at learn time;
  /// foreign clauses are imported at every restart boundary. The import
  /// cursor resets on attach, so re-attaching to a fresh pool is safe.
  void set_sharing(ClauseSharing* sharing, int worker_id) {
    hooks_.sharing = sharing;
    hooks_.worker_id = worker_id;
    hooks_.import_cursor = 0;
    hooks_.pb_import_cursor = 0;
  }
  /// Cooperative cancellation: solve() polls the flag on the same coarse
  /// cadence as the deadline and returns Unknown once it is set.
  void set_interrupt(const std::atomic<bool>* stop) { hooks_.stop = stop; }
  /// Swap the configuration of a live solver (the portfolio diversifies
  /// clones this way). Discards any retained assumption trail first (lazy
  /// root backtrack — this is the normalization step of the clone-then-
  /// reconfigure worker-spawn paths). Learned clauses, activities and
  /// saved phases are kept; the RNG is reseeded from the new config and
  /// the restart/reduce schedule state is re-armed. Phase diversification via default_phase
  /// therefore only bites with phase_saving off (saved polarities win
  /// otherwise).
  void reconfigure(const SolverConfig& config) override;

  // ---- inprocessing (sat/inprocess.h runs the passes) ----
  /// Run one inprocessing round now (per config_.inprocess; no-op when
  /// Off), regardless of the conflict cadence. Must be called at a
  /// quiescent point. Returns literals dropped + clauses removed + vars
  /// replaced. The solve loop calls the same machinery on its own
  /// conflict schedule at restart boundaries.
  std::int64_t inprocess(const SolveBudget& budget = {}) override;
  /// Resolve `l` through the equivalent-literal substitution map to its
  /// current representative (identity until a Full round merged its
  /// class). Callers passing literals across the solver boundary after a
  /// substitution — assumptions, imports, incremental additions — go
  /// through here.
  [[nodiscard]] Lit map_lit(Lit l) const noexcept {
    for (;;) {
      const Lit r = subst_[static_cast<std::size_t>(l.var())];
      if (r.var() == l.var()) return l;
      l = l.negated() ? ~r : r;
    }
  }
  /// Variables eliminated by equivalent-literal substitution so far.
  [[nodiscard]] std::int64_t replaced_vars() const noexcept {
    return static_cast<std::int64_t>(reconstruction_.size());
  }

  // ---- cube-generation probes (driven by sat/cubes.h) ----
  /// Outcome of one propagation-count lookahead probe.
  struct ProbeResult {
    /// Some assumption falsified under unit propagation alone: the formula
    /// plus the probed prefix is unsatisfiable (a sound refutation — no
    /// search was involved, only propagation).
    bool refuted = false;
    /// Trail literals beyond the level-0 roots when every assumption was
    /// enqueued and propagated (assumptions included): the propagation-
    /// count hardness estimate — more forced means an easier subproblem.
    int forced = 0;
    /// Unassigned variables after root propagation, before any assumption
    /// (the denominator of the forced-fraction easiness cutoff).
    int free_vars = 0;
  };
  /// Take `assumptions` as decisions one by one under unit propagation
  /// only — no conflict analysis, no learning, no activity bumps — and
  /// report whether the prefix refutes and how much it forces. Leaves the
  /// solver quiescent (level 0) either way, so probes interleave freely
  /// with solve() calls.
  [[nodiscard]] ProbeResult probe_assumptions(std::span<const Lit> assumptions);
  /// The (up to) `k` unassigned variables with the highest VSIDS activity,
  /// ties broken by watcher occurrence count (most-constrained first):
  /// the branch candidates of the lookahead cube generator.
  [[nodiscard]] std::vector<Var> top_branch_candidates(int k) const;
  /// The phase pick_branch() would try first for `v` under the current
  /// phase policy. Cube generation orders each split's saved-phase child
  /// first so the model-finding branch keeps the solver's preference.
  [[nodiscard]] bool saved_phase(Var v) const noexcept {
    return config_.phase_saving ? polarity_[static_cast<std::size_t>(v)] != 0
                                : config_.default_phase;
  }

  // ---- storage introspection (tests / benchmarks) ----
  /// Total watcher entries across all literals (binary + long pools).
  /// After a collection this is exactly 2 * live_clauses(): no tombstone
  /// watchers survive.
  [[nodiscard]] std::size_t total_watchers() const noexcept {
    return watches_.live_entries() + bin_watches_.live_entries();
  }
  /// Slab cells owned by the watcher pools, including relocation garbage.
  /// Equals total_watchers() right after a compaction.
  [[nodiscard]] std::size_t watcher_pool_slots() const noexcept {
    return watches_.slab_slots() + bin_watches_.slab_slots();
  }
  /// Same occupancy pair for the PB occurrence pool.
  [[nodiscard]] std::size_t total_pb_occs() const noexcept {
    return pb_occs_.live_entries();
  }
  [[nodiscard]] std::size_t pb_occ_pool_slots() const noexcept {
    return pb_occs_.slab_slots();
  }
  /// Clauses currently attached (problem + learned, excluding units).
  [[nodiscard]] std::int64_t live_clauses() const noexcept {
    return arena_.live_clauses();
  }
  /// 32-bit words owned by the clause arena.
  [[nodiscard]] std::size_t arena_words() const noexcept {
    return arena_.words();
  }
  /// Census of the live learnt DB by retention tier (arena scan; see the
  /// tier thresholds in SolverConfig). Unlike stats().tier_*, which
  /// snapshots the last reduce_db(), this reflects the current instant.
  [[nodiscard]] TierCounts learned_tier_counts() const;

 private:
  /// The inprocessor (sat/inprocess.cpp) is the solver's simplification
  /// arm: it rewrites the clause arena, watcher pools, PB rows and
  /// substitution state in place, so it works on the private storage
  /// directly rather than through a widened public surface.
  friend class Inprocessor;

  // ---- constraint storage ----
  /// Long-clause watcher. Binary clauses never appear here: they live in
  /// the dedicated bin_watches_ pool, where the blocker IS the other
  /// literal and propagation resolves the clause (satisfied / unit /
  /// conflicting) without ever touching the arena, without a tag test,
  /// and without the keep-compaction write-back of the long-row scan.
  struct Watcher {
    ClauseRef cref = kInvalidClauseRef;
    Lit blocker;
  };
  /// One PB row: a view into the shared term pool plus cached slack.
  /// Learned rows (cutting-planes resolvents) additionally carry the
  /// clause-DB management metadata — activity, an LBD equivalent (distinct
  /// decision levels among the falsified terms at learn time, improved on
  /// touch like clause glue), and the used flag — so reduce_db() can tier
  /// them exactly like learnt clauses.
  struct PbData {
    std::uint32_t terms_begin = 0;  // offset into pb_terms_
    std::uint32_t terms_len = 0;
    std::int64_t bound = 0;
    std::int64_t slack = 0;      // sum of non-false coefficients minus bound
    std::int64_t max_coeff = 0;  // terms are sorted by descending coeff
    float activity = 0.0f;       // learned rows only
    std::uint8_t lbd = 0;        // 0 on problem rows
    std::uint8_t flags = 0;      // kPbLearnt | kPbUsed | kPbDeleted
  };
  static constexpr std::uint8_t kPbLearnt = 1u << 0;
  static constexpr std::uint8_t kPbUsed = 1u << 1;
  static constexpr std::uint8_t kPbDeleted = 1u << 2;
  struct PbOcc {
    std::uint32_t pb_index = 0;
    std::int64_t coeff = 0;
  };
  [[nodiscard]] std::span<const PbTerm> pb_terms(const PbData& pb) const {
    return {pb_terms_.data() + pb.terms_begin, pb.terms_len};
  }

  // ---- reasons ----
  enum class ReasonKind : std::uint8_t { None, ClauseRef, PbRef };
  struct Reason {
    ReasonKind kind = ReasonKind::None;
    std::uint32_t index = kInvalidClauseRef;  // ClauseRef or pbs_ index
  };
  struct Conflict {
    ReasonKind kind = ReasonKind::None;
    std::uint32_t index = kInvalidClauseRef;
    [[nodiscard]] bool valid() const noexcept {
      return kind != ReasonKind::None;
    }
  };

  // ---- core operations ----
  // lit_values_ mirrors assigns_ per literal code (maintained by
  // enqueue/backtrack) so the hot value(Lit) is one byte load with no
  // sign arithmetic.
  [[nodiscard]] LBool value(Lit l) const noexcept {
    return lit_values_[static_cast<std::size_t>(l.code())];
  }
  [[nodiscard]] LBool value(Var v) const noexcept {
    return assigns_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int level(Var v) const noexcept {
    return vardata_[static_cast<std::size_t>(v)].level;
  }
  [[nodiscard]] int decision_level() const noexcept {
    return static_cast<int>(trail_lim_.size());
  }

  void enqueue(Lit l, Reason reason);
  Conflict propagate();
  Conflict propagate_pb_for(Lit falsified);

  /// Visit every literal of `implied`'s reason except `implied` itself,
  /// without materializing a vector (this runs millions of times per
  /// solve — analyze and minimize are reason-iteration bound). `visit`
  /// returns false to abort; the call then returns false. For PB reasons
  /// the clausal weakening only admits literals falsified strictly before
  /// `implied` — anything later would let analyze() chase implications
  /// forward and deadlock — or all false literals for a conflict
  /// (implied == undef), mirroring the classic PBS scheme.
  template <typename Visit>
  bool for_each_reason_lit(Reason reason, Lit implied, Visit&& visit) const {
    if (reason.kind == ReasonKind::ClauseRef) {
      const std::uint32_t* codes = arena_.lit_codes(reason.index);
      const int size = arena_.size(reason.index);
      for (int i = 0; i < size; ++i) {
        const Lit l = Lit::from_code(static_cast<int>(codes[i]));
        if (l != implied && !visit(l)) return false;
      }
      return true;
    }
    const PbData& pb = pbs_[reason.index];
    const int implied_pos =
        implied.valid()
            ? vardata_[static_cast<std::size_t>(implied.var())].trail_pos
            : static_cast<int>(trail_.size());
    for (const PbTerm& t : pb_terms(pb)) {
      if (t.lit == implied) continue;
      if (value(t.lit) != LBool::False) continue;
      if (vardata_[static_cast<std::size_t>(t.lit.var())].trail_pos >=
          implied_pos) {
        continue;
      }
      if (!visit(t.lit)) return false;
    }
    return true;
  }
  /// First-UIP learning. Also reports the learnt clause's LBD, folded into
  /// the backjump-level scan so the glue costs no extra pass.
  void analyze(Conflict conflict, std::vector<Lit>* learnt, int* backjump,
               int* lbd);
  /// Final-conflict analysis (MiniSat's analyzeFinal over assumption
  /// pseudo-decisions): called when pending assumption `failed` is already
  /// false under the assumption prefix taken so far. Walks reasons from
  /// ~failed back through the trail; every reason-less (pseudo-decision)
  /// literal reached is an assumption the conflict depends on. Fills
  /// core_ with `failed` plus those assumptions — a subset of the
  /// caller's assumptions that is jointly unsatisfiable with the formula.
  /// Must run before the exit backtrack(0).
  void analyze_final(Lit failed);

  // ---- cutting-planes PB conflict analysis ----
  /// What analyze_pb produced. Learned carries either a PB resolvent
  /// (terms + degree) or, when the resolvent degenerates (all saturated
  /// coefficients equal the degree after gcd division), a clause —
  /// including units. Fallback asks the caller to run the clausal
  /// weakening path on the original conflict; Unsat means the resolvent
  /// conflicts at decision level 0.
  enum class PbOutcome : std::uint8_t { Learned, Fallback, Unsat };
  struct PbLearned {
    bool is_clause = false;
    std::vector<Lit> clause;     // valid when is_clause
    std::vector<PbTerm> terms;   // valid when !is_clause (desc coeff order)
    std::int64_t degree = 0;
    int backjump = 0;
    int glue = 1;
  };
  /// Resolve the conflicting PB constraint against the reasons on the
  /// trail by coefficient-scaled addition with saturation and gcd
  /// rounding, weakening reasons just enough to keep the resolvent
  /// conflicting, until the resolvent is assertive below the current
  /// decision level. Overflow-checked throughout; returns Fallback rather
  /// than risking an unsound resolvent.
  PbOutcome analyze_pb(Conflict conflict, PbLearned* out);
  /// Load a conflict/reason constraint into the resolvent accumulator
  /// (cp_* members), applying level-0 strengthening. Returns false on
  /// overflow.
  bool cp_load(Conflict conflict);
  /// Slack of the resolvent under the full current assignment.
  [[nodiscard]] std::int64_t cp_slack_full() const;
  /// True when the resolvent propagates or conflicts at some level below
  /// the current one (the PB generalization of the 1UIP stop condition).
  [[nodiscard]] bool cp_assertive() const;
  /// Weaken every non-false term out of the resolvent and saturate (used
  /// when the walk reaches a decision; keeps the resolvent conflicting).
  bool cp_weaken_nonfalse();
  /// Saturate resolvent coefficients at the degree and divide the whole
  /// resolvent by the gcd of its coefficients (degree rounds up).
  bool cp_saturate_and_divide();
  /// Reduce `reason` (of trail literal l at trail position pos_l) into
  /// cp_reason_/cp_reason_degree_: keep l plus literals falsified strictly
  /// before pos_l, weaken the rest as needed until the planned resolvent
  /// is guaranteed conflicting. On success cp_reason_[0] is l's own term.
  /// Returns false on degenerate reasons (caller falls back).
  bool cp_reduce_reason(Reason reason, Lit l, int pos_l);
  /// The backjump level of an assertive resolvent: the lowest level at
  /// which it still propagates or conflicts. Non-const: uses the
  /// cp_bj_* member scratch.
  [[nodiscard]] int cp_backjump_level();
  /// Attach a learned PB constraint at the current (post-backjump) level;
  /// returns its index. Terms must be sorted by descending coefficient.
  std::uint32_t attach_learned_pb(std::span<const PbTerm> terms,
                                  std::int64_t degree, int glue);
  /// Activity bump + used-flag maintenance for a learned PB touched by
  /// conflict analysis (the PB analog of bump_clause + touch_learnt).
  void bump_pb(std::uint32_t pb_index);
  /// Drop cold learned PB rows by tier/activity (rows serving as trail
  /// reasons are retained), then compact pbs_, pb_terms_ and pb_occs_ and
  /// remap trail PbRef reasons — the PB analog of the clause arena GC.
  void reduce_learned_pbs();
  /// Glucose-style restart blocking, evaluated at conflict depth (must be
  /// called before backtracking): when a restart is pending on the
  /// LBD-EMA condition but this conflict's trail runs much deeper than
  /// conflicts typically do, defuse the pending restart by pulling the
  /// fast EMA back to the long-run mean.
  void maybe_block_restart(std::int64_t conflicts_this_restart);
  void minimize_learnt(std::vector<Lit>* learnt);
  /// Recursive redundancy test (MiniSat ccmin=2): true iff every path
  /// from `p`'s reason back to decisions ends in clause literals or
  /// level 0. `abstract_levels` is the bitmask of levels present in the
  /// learnt clause — any reason touching a level outside it cannot be
  /// absorbed, which prunes most failing walks in O(1).
  bool lit_redundant(Lit p, std::uint32_t abstract_levels);
  [[nodiscard]] std::uint32_t abstract_level(Var v) const noexcept {
    return 1u << (static_cast<std::uint32_t>(level(v)) & 31u);
  }
  void backtrack(int target_level);
  /// Discard any retained assumption trail: unwind to level 0 and forget
  /// the previous solve's assumption vector. Every mutation entry point
  /// (add_clause/add_pb/reconfigure/inprocess) and clone normalization
  /// funnels through here — the "lazy" half of the quiescence contract.
  void lazy_root_backtrack();
  /// Exit-path unwind of solve(): with config_.reuse_trail, keep the
  /// assumption-level prefix of the trail alive (levels 1..k, k =
  /// min(decision_level, #assumptions)) and truncate prev_asms_ to match;
  /// otherwise backtrack to level 0.
  void exit_backtrack();
  /// Restart-boundary housekeeping in one fixed order: foreign-constraint
  /// import drain, the conflict-cadence inprocessing hook (with the
  /// assumption re-remap a Full round requires), then the reduce_db
  /// cadence check. No-op above level 0 — a retained-trail solve entry
  /// skips it and catches up at the first real restart, which unwinds to
  /// level 0 first. Returns false when level-0 unsatisfiability was
  /// derived.
  bool on_restart(const SolveBudget& budget,
                  std::span<const Lit> assumptions,
                  std::span<const Lit>* asms);
  /// Fire reduce_db() when the configured scheme's trigger holds.
  void maybe_reduce();
  Lit pick_branch();
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }

  ClauseRef attach_clause(std::span<const Lit> lits, bool learnt);
  void attach_pb(const PbConstraint& constraint);
  /// Shared storage path of attach_pb/attach_learned_pb: append the row
  /// and its terms/occurrences, computing slack under the current
  /// assignment. Terms must be sorted by descending coefficient.
  std::uint32_t attach_pb_row(std::span<const PbTerm> terms,
                              std::int64_t bound);
  void bump_var(Var v);
  void bump_clause(ClauseRef cref);
  void decay_activities();
  /// Retention tier of a learnt clause under the configured thresholds.
  /// Binary clauses are core regardless of glue: they are two words of
  /// storage propagated without arena access, never worth deleting.
  enum class Tier : std::uint8_t { Core, Mid, Local };
  [[nodiscard]] Tier clause_tier(ClauseRef cref) const {
    if (arena_.size(cref) <= 2 || arena_.lbd(cref) <= config_.tier_core_lbd) {
      return Tier::Core;
    }
    return arena_.lbd(cref) <= config_.tier_mid_lbd ? Tier::Mid : Tier::Local;
  }
  void reduce_db();
  void garbage_collect();
  [[nodiscard]] bool clause_locked(ClauseRef cref) const;

  /// Number of distinct nonzero decision levels among the clause's
  /// literals (the glue measure). Uses a stamped scratch array,
  /// O(|clause|). All literals must be assigned (levels of unassigned
  /// variables are stale), which holds for conflict/reason clauses.
  [[nodiscard]] int compute_clause_lbd(ClauseRef cref);
  /// Mark a learnt clause used by conflict analysis and improve its
  /// stored LBD if the recomputed value is smaller (tier promotion).
  void touch_learnt(ClauseRef cref);
  /// Fold one learnt-clause LBD into the fast/slow restart EMAs.
  void update_restart_emas(int lbd);
  /// Publish a freshly learnt clause to the sharing sink when its glue
  /// qualifies (called for learnt units too, as glue 1).
  void maybe_export(std::span<const Lit> learnt, int lbd);
  /// Publish a freshly learned PB row (cutting-planes resolvent) under
  /// the same glue/size admission caps as clause exports.
  void maybe_export_pb(std::span<const PbTerm> terms, std::int64_t degree,
                       int glue);
  /// Absorb every foreign clause and PB row published since the import
  /// cursors (must be at decision level 0 — restart boundaries and solve
  /// entry). The importer re-checks its own size/LBD admission caps
  /// (share_max_lbd / share_max_size; rejections counted in
  /// stats().rejected_imports), and a foreign constraint that is empty —
  /// or falsified — under the level-0 assignment derives unsatisfiability
  /// explicitly. Returns false when an import derives level-0
  /// unsatisfiability.
  bool drain_imports();

  // ---- state ----
  SolverConfig config_;
  SolverStats stats_;
  Rng rng_;

  ClauseArena arena_;
  FlatOccPool<Watcher> watches_;                // long clauses, by lit code
  FlatOccPool<Watcher> bin_watches_;            // binary clauses, by lit code
  std::vector<PbData> pbs_;
  std::vector<PbTerm> pb_terms_;                // shared flat term pool
  FlatOccPool<PbOcc> pb_occs_;                  // rows by literal code
  /// Set by attach_pb(); solve() re-compacts the occurrence pool to CSR
  /// order before searching (the incremental add_pb rebuild hook).
  bool pb_occs_dirty_ = false;

  std::vector<LBool> assigns_;      // by variable (model extraction)
  std::vector<LBool> lit_values_;   // by literal code (hot-path lookups)
  struct VarData {
    Reason reason;
    int level = 0;
    int trail_pos = -1;
  };
  std::vector<VarData> vardata_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  int qhead_ = 0;

  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  double pb_inc_ = 1.0;  // learned-PB activity increment (same decay)
  ActivityHeap order_;  // owns the VSIDS score array (order_.scores())
  std::vector<char> polarity_;  // saved phase, 1 = last value true

  std::vector<char> seen_;      // scratch for analyze()
  std::vector<Var> analyze_toclear_;            // marks to reset post-analyze
  std::vector<Lit> redundant_stack_;            // DFS stack, lit_redundant
  std::vector<std::uint64_t> lbd_level_stamp_;  // by level, for LBD scans
  std::uint64_t lbd_stamp_ = 0;

  // Cutting-planes resolvent accumulator (analyze_pb scratch, hoisted to
  // members). The resolvent is a map var -> (coefficient, literal
  // orientation) held as dense arrays plus the active-var list. A var
  // cancelled to coefficient 0 stays in cp_vars_ (with cp_in_ still set)
  // so a later reason can reintroduce it without duplicate list entries;
  // every iteration skips zero-coefficient vars.
  std::vector<std::int64_t> cp_coef_;  // by var; 0 = absent/cancelled
  std::vector<Lit> cp_lit_;            // by var; the term's literal
  std::vector<char> cp_in_;            // by var; member of cp_vars_
  std::vector<Var> cp_vars_;           // active vars, unordered
  std::int64_t cp_degree_ = 0;
  std::vector<PbTerm> cp_reason_;      // reduced-reason scratch
  std::vector<PbTerm> cp_cands_;       // weakening-candidate scratch
  std::int64_t cp_reason_degree_ = 0;
  // cp_backjump_level scratch: assigned terms bucketed by level plus the
  // suffix maxima of their coefficients (hoisted — one learned PB
  // conflict calls this once, and the hot path must not heap-allocate).
  struct BjEnt {
    int lvl;
    std::int64_t coeff;
    bool falsified;
  };
  std::vector<BjEnt> cp_bj_ents_;
  std::vector<std::int64_t> cp_bj_suffix_;

  // Adaptive-restart state: exponential moving averages of learnt LBD.
  double lbd_ema_fast_ = 0.0;
  double lbd_ema_slow_ = 0.0;
  bool lbd_ema_seeded_ = false;

  // Restart-blocking state: EMA of trail size sampled at conflicts.
  double trail_ema_ = 0.0;
  bool trail_ema_seeded_ = false;

  // ConflictInterval reduce schedule: next trigger and completed rounds.
  std::int64_t next_reduce_conflicts_ = 0;
  std::int64_t reduce_rounds_ = 0;

  /// Portfolio attachment (sharing sink, worker identity, interrupt
  /// flag). Self-resetting on copy: a cloned solver must start detached
  /// — these point into the spawning portfolio's solve() frame — and
  /// encoding that here keeps the solver's copy constructor defaultable.
  struct PortfolioHooks {
    ClauseSharing* sharing = nullptr;
    int worker_id = 0;
    std::size_t import_cursor = 0;
    std::size_t pb_import_cursor = 0;
    const std::atomic<bool>* stop = nullptr;
    PortfolioHooks() = default;
    PortfolioHooks(const PortfolioHooks&) noexcept {}  // copy = detach
    PortfolioHooks& operator=(const PortfolioHooks&) = delete;
  };
  PortfolioHooks hooks_;
  std::vector<SharedClause> import_buf_;  // drain_imports scratch
  std::vector<SharedPb> pb_import_buf_;   // drain_imports scratch (PB rows)

  // ---- equivalent-literal substitution (inprocess Full) ----
  /// Per-variable representative literal; identity (positive own literal)
  /// until a Full inprocessing round merges the variable's equivalence
  /// class. Chains are variable-decreasing (the representative is the
  /// smallest variable of its SCC), so map_lit() terminates.
  std::vector<Lit> subst_;
  /// 1 = variable substituted away: never branched on, absent from every
  /// live constraint. (ActivityHeap has no remove op; pick_branch skips.)
  std::vector<char> eliminated_;
  /// Model-reconstruction stack: (var, representative literal at merge
  /// time), in elimination order. extend_model() replays it backwards to
  /// give eliminated variables their forced values in model_.
  struct SubstRecord {
    Var var;
    Lit repr;
  };
  std::vector<SubstRecord> reconstruction_;
  /// Conflict count that triggers the next inprocessing round, plus the
  /// completed-rounds counter driving the linear back-off.
  std::int64_t next_inprocess_conflicts_ = 0;
  std::int64_t inprocess_rounds_done_ = 0;
  /// Rotating vivification start position (ordinal among candidate
  /// clauses — survives GC, unlike a ClauseRef).
  std::uint64_t viv_cursor_ = 0;
  /// Caller-facing assumptions of the in-flight solve(), remapped through
  /// subst_ for internal use (member so mid-solve Full rounds can re-remap
  /// in place).
  std::vector<Lit> mapped_assumptions_;
  /// Trail reuse: the mapped assumption vector of the most recent solve().
  /// Invariant: for k < min(decision_level(), prev_asms_.size()), level
  /// k+1 of the trail was opened for assumption prev_asms_[k] (as a
  /// pseudo-decision, or as a dummy level when the assumption was already
  /// implied). backtrack() only pops levels, so the invariant survives any
  /// partial unwind; lazy_root_backtrack() clears both sides at once.
  std::vector<Lit> prev_asms_;
  /// Fill in model_ values for substituted-away variables by replaying
  /// reconstruction_ backwards. Called on every Sat exit.
  void extend_model();

  std::vector<LBool> model_;
  std::vector<Lit> core_;  // failed-assumption core of the last Unsat
  /// Record a budgeted exit (trip kind + stats counter) and unwind via
  /// exit_backtrack(); every Unknown return of solve() funnels through
  /// this.
  SolveResult budget_exit(BudgetTrip trip);
  BudgetTrip last_trip_ = BudgetTrip::None;
  bool ok_ = true;  // false once level-0 conflict derived
  std::int64_t learnt_count_ = 0;
  double max_learnts_ = 0.0;
};

}  // namespace symcolor
