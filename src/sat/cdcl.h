#pragma once
// CDCL solver for mixed CNF + pseudo-Boolean formulas.
//
// This is the engine underneath all "specialized 0-1 ILP solver"
// personalities in the paper (PBS / PBS II / Galena / Pueblo): a
// Davis-Logemann-Loveland backtrack search with
//   * two-watched-literal propagation for clauses,
//   * counter-based propagation (slack maintenance) for PB constraints,
//   * first-UIP conflict-driven clause learning — PB reasons are weakened
//     to clausal reasons on demand, the classic PBS scheme,
//   * optional learned-clause minimization (self-subsumption),
//   * VSIDS variable activity with phase saving,
//   * Luby or geometric restarts and activity-driven clause deletion.
//
// The configuration knobs expose exactly the axes along which the paper's
// three academic solvers differ; see pb/solver_profiles.h.
//
// Constraint storage (the propagation hot path):
//   * Clauses live in a single contiguous ClauseArena (sat/clause_arena.h)
//     as [header | activity | lits...] records addressed by 32-bit
//     ClauseRefs. Watchers carry {ClauseRef, blocker literal}; a watcher
//     visit whose blocker is already true never touches the arena at all.
//   * reduce_db() performs MiniSat-style garbage collection: live clauses
//     are compacted into a fresh arena in layout order and every stored
//     ref (watch lists, trail reasons) is remapped through the forwarding
//     pointers. There are no tombstones — propagation never skips dead
//     records, and watcher lists physically shrink at every reduction.
//   * PB constraint terms are flattened into one shared pool
//     (pb_terms_); each PbData row holds an offset/length into it plus the
//     cached slack and the largest coefficient. Propagation short-circuits
//     any constraint whose cached slack is at least its max coefficient:
//     such a constraint can neither be conflicting nor force a literal, so
//     its term list is never scanned.

#include <cstdint>
#include <span>
#include <vector>

#include "cnf/formula.h"
#include "cnf/literals.h"
#include "sat/clause_arena.h"
#include "sat/heap.h"
#include "util/rng.h"
#include "util/timer.h"

namespace symcolor {

enum class SolveResult { Sat, Unsat, Unknown };

enum class RestartScheme { Luby, Geometric };

struct SolverConfig {
  double var_decay = 0.95;
  double clause_decay = 0.999;
  RestartScheme restart_scheme = RestartScheme::Luby;
  /// Conflicts in the first restart interval.
  std::int64_t restart_base = 100;
  /// Growth factor for geometric restarts.
  double restart_growth = 1.5;
  bool phase_saving = true;
  /// Initial branching phase when no phase is saved (false = branch to
  /// the negative literal first, the right default for coloring
  /// indicators where most variables are 0 in a solution).
  bool default_phase = false;
  bool minimize_learned = true;
  /// Fraction of decisions taken uniformly at random (diversification).
  double random_branch_freq = 0.0;
  std::uint64_t random_seed = 0x5EED;
  /// Hard conflict budget; <= 0 means unlimited.
  std::int64_t conflict_budget = 0;
  /// Initial learned-clause limit before the first reduce_db(); <= 0 means
  /// the automatic max(2000, num_clauses / 3). Tests use a tiny value to
  /// force frequent reductions/collections.
  double max_learnts_init = 0.0;
};

struct SolverStats {
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t conflicts = 0;
  std::int64_t restarts = 0;
  std::int64_t learned_clauses = 0;
  std::int64_t learned_literals = 0;
  std::int64_t minimized_literals = 0;
  std::int64_t deleted_clauses = 0;
  /// Arena garbage collections performed by reduce_db().
  std::int64_t arena_collections = 0;
  /// PB constraints skipped because slack >= max coefficient.
  std::int64_t pb_short_circuits = 0;
};

/// One solver instance owns a private copy of the formula's constraints.
/// Usage: construct, optionally add more constraints, then solve().
class CdclSolver {
 public:
  explicit CdclSolver(const Formula& formula, SolverConfig config = {});

  CdclSolver(const CdclSolver&) = delete;
  CdclSolver& operator=(const CdclSolver&) = delete;

  /// Add a clause after construction (level-0 only; used by the
  /// optimization loop to strengthen objective bounds between calls).
  /// Returns false if the addition makes the instance trivially unsat.
  bool add_clause(Clause clause);
  /// Add a PB constraint after construction (level-0 only).
  bool add_pb(PbConstraint constraint);

  /// Solve under optional assumptions. Returns Unknown on deadline or
  /// conflict-budget exhaustion. Can be called repeatedly; learned
  /// clauses persist across calls.
  SolveResult solve(const Deadline& deadline = {},
                    std::span<const Lit> assumptions = {});

  /// Complete model from the last Sat answer, indexed by variable.
  [[nodiscard]] const std::vector<LBool>& model() const noexcept {
    return model_;
  }

  [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }
  [[nodiscard]] int num_vars() const noexcept {
    return static_cast<int>(assigns_.size());
  }

  // ---- storage introspection (tests / benchmarks) ----
  /// Total watcher entries across all literals. After a collection this is
  /// exactly 2 * live_clauses(): no tombstone watchers survive.
  [[nodiscard]] std::size_t total_watchers() const;
  /// Clauses currently attached (problem + learned, excluding units).
  [[nodiscard]] std::int64_t live_clauses() const noexcept {
    return arena_.live_clauses();
  }
  /// 32-bit words owned by the clause arena.
  [[nodiscard]] std::size_t arena_words() const noexcept {
    return arena_.words();
  }

 private:
  // ---- constraint storage ----
  /// Watchers tag binary clauses in the ref's top bit: for those the
  /// blocker IS the other literal, so propagation resolves the clause
  /// (satisfied / unit / conflicting) without ever touching the arena.
  static constexpr ClauseRef kBinaryTag = 0x80000000u;
  struct Watcher {
    ClauseRef cref = kInvalidClauseRef;  // kBinaryTag | ref for binaries
    Lit blocker;
  };
  /// One PB row: a view into the shared term pool plus cached slack.
  struct PbData {
    std::uint32_t terms_begin = 0;  // offset into pb_terms_
    std::uint32_t terms_len = 0;
    std::int64_t bound = 0;
    std::int64_t slack = 0;      // sum of non-false coefficients minus bound
    std::int64_t max_coeff = 0;  // terms are sorted by descending coeff
  };
  struct PbOcc {
    std::uint32_t pb_index = 0;
    std::int64_t coeff = 0;
  };
  [[nodiscard]] std::span<const PbTerm> pb_terms(const PbData& pb) const {
    return {pb_terms_.data() + pb.terms_begin, pb.terms_len};
  }

  // ---- reasons ----
  enum class ReasonKind : std::uint8_t { None, ClauseRef, PbRef };
  struct Reason {
    ReasonKind kind = ReasonKind::None;
    std::uint32_t index = kInvalidClauseRef;  // ClauseRef or pbs_ index
  };
  struct Conflict {
    ReasonKind kind = ReasonKind::None;
    std::uint32_t index = kInvalidClauseRef;
    [[nodiscard]] bool valid() const noexcept {
      return kind != ReasonKind::None;
    }
  };

  // ---- core operations ----
  // lit_values_ mirrors assigns_ per literal code (maintained by
  // enqueue/backtrack) so the hot value(Lit) is one byte load with no
  // sign arithmetic.
  [[nodiscard]] LBool value(Lit l) const noexcept {
    return lit_values_[static_cast<std::size_t>(l.code())];
  }
  [[nodiscard]] LBool value(Var v) const noexcept {
    return assigns_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int level(Var v) const noexcept {
    return vardata_[static_cast<std::size_t>(v)].level;
  }
  [[nodiscard]] int decision_level() const noexcept {
    return static_cast<int>(trail_lim_.size());
  }

  void enqueue(Lit l, Reason reason);
  Conflict propagate();
  Conflict propagate_pb_for(Lit falsified);
  void analyze(Conflict conflict, std::vector<Lit>* learnt, int* backjump);
  void minimize_learnt(std::vector<Lit>* learnt);
  void collect_reason(Reason reason, Lit implied, std::vector<Lit>* out) const;
  void backtrack(int target_level);
  Lit pick_branch();
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }

  ClauseRef attach_clause(std::span<const Lit> lits, bool learnt);
  void attach_pb(const PbConstraint& constraint);
  void bump_var(Var v);
  void bump_clause(ClauseRef cref);
  void decay_activities();
  void reduce_db();
  void garbage_collect();
  [[nodiscard]] bool clause_locked(ClauseRef cref) const;

  // ---- state ----
  SolverConfig config_;
  SolverStats stats_;
  Rng rng_;

  ClauseArena arena_;
  std::vector<std::vector<Watcher>> watches_;   // by literal code
  std::vector<PbData> pbs_;
  std::vector<PbTerm> pb_terms_;                // shared flat term pool
  std::vector<std::vector<PbOcc>> pb_occs_;     // by literal code

  std::vector<LBool> assigns_;      // by variable (model extraction)
  std::vector<LBool> lit_values_;   // by literal code (hot-path lookups)
  struct VarData {
    Reason reason;
    int level = 0;
    int trail_pos = -1;
  };
  std::vector<VarData> vardata_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  int qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  ActivityHeap order_{activity_};
  std::vector<char> polarity_;  // saved phase, 1 = last value true

  std::vector<char> seen_;      // scratch for analyze()
  std::vector<Lit> analyze_stack_;

  std::vector<LBool> model_;
  bool ok_ = true;  // false once level-0 conflict derived
  std::int64_t learnt_count_ = 0;
  double max_learnts_ = 0.0;
};

}  // namespace symcolor
