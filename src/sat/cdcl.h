#pragma once
// CDCL solver for mixed CNF + pseudo-Boolean formulas.
//
// This is the engine underneath all "specialized 0-1 ILP solver"
// personalities in the paper (PBS / PBS II / Galena / Pueblo): a
// Davis-Logemann-Loveland backtrack search with
//   * two-watched-literal propagation for clauses,
//   * counter-based propagation (slack maintenance) for PB constraints,
//   * first-UIP conflict-driven clause learning — PB reasons are weakened
//     to clausal reasons on demand, the classic PBS scheme,
//   * optional learned-clause minimization (self-subsumption),
//   * VSIDS variable activity with phase saving,
//   * Luby or geometric restarts and activity-driven clause deletion.
//
// The configuration knobs expose exactly the axes along which the paper's
// three academic solvers differ; see pb/solver_profiles.h.

#include <cstdint>
#include <span>
#include <vector>

#include "cnf/formula.h"
#include "cnf/literals.h"
#include "sat/heap.h"
#include "util/rng.h"
#include "util/timer.h"

namespace symcolor {

enum class SolveResult { Sat, Unsat, Unknown };

enum class RestartScheme { Luby, Geometric };

struct SolverConfig {
  double var_decay = 0.95;
  double clause_decay = 0.999;
  RestartScheme restart_scheme = RestartScheme::Luby;
  /// Conflicts in the first restart interval.
  std::int64_t restart_base = 100;
  /// Growth factor for geometric restarts.
  double restart_growth = 1.5;
  bool phase_saving = true;
  /// Initial branching phase when no phase is saved (false = branch to
  /// the negative literal first, the right default for coloring
  /// indicators where most variables are 0 in a solution).
  bool default_phase = false;
  bool minimize_learned = true;
  /// Fraction of decisions taken uniformly at random (diversification).
  double random_branch_freq = 0.0;
  std::uint64_t random_seed = 0x5EED;
  /// Hard conflict budget; <= 0 means unlimited.
  std::int64_t conflict_budget = 0;
};

struct SolverStats {
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t conflicts = 0;
  std::int64_t restarts = 0;
  std::int64_t learned_clauses = 0;
  std::int64_t learned_literals = 0;
  std::int64_t minimized_literals = 0;
  std::int64_t deleted_clauses = 0;
};

/// One solver instance owns a private copy of the formula's constraints.
/// Usage: construct, optionally add more constraints, then solve().
class CdclSolver {
 public:
  explicit CdclSolver(const Formula& formula, SolverConfig config = {});

  CdclSolver(const CdclSolver&) = delete;
  CdclSolver& operator=(const CdclSolver&) = delete;

  /// Add a clause after construction (level-0 only; used by the
  /// optimization loop to strengthen objective bounds between calls).
  /// Returns false if the addition makes the instance trivially unsat.
  bool add_clause(Clause clause);
  /// Add a PB constraint after construction (level-0 only).
  bool add_pb(PbConstraint constraint);

  /// Solve under optional assumptions. Returns Unknown on deadline or
  /// conflict-budget exhaustion. Can be called repeatedly; learned
  /// clauses persist across calls.
  SolveResult solve(const Deadline& deadline = {},
                    std::span<const Lit> assumptions = {});

  /// Complete model from the last Sat answer, indexed by variable.
  [[nodiscard]] const std::vector<LBool>& model() const noexcept {
    return model_;
  }

  [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }
  [[nodiscard]] int num_vars() const noexcept {
    return static_cast<int>(assigns_.size());
  }

 private:
  // ---- constraint storage ----
  struct SolverClause {
    float activity = 0.0f;
    bool learnt = false;
    bool deleted = false;
    std::vector<Lit> lits;
  };
  struct Watcher {
    int cref = -1;
    Lit blocker;
  };
  struct PbData {
    std::vector<PbTerm> terms;
    std::int64_t bound = 0;
    std::int64_t slack = 0;  // sum of non-false coefficients minus bound
  };
  struct PbOcc {
    int pb_index = -1;
    std::int64_t coeff = 0;
  };

  // ---- reasons ----
  enum class ReasonKind : std::uint8_t { None, ClauseRef, PbRef };
  struct Reason {
    ReasonKind kind = ReasonKind::None;
    int index = -1;
  };
  struct Conflict {
    ReasonKind kind = ReasonKind::None;
    int index = -1;
    [[nodiscard]] bool valid() const noexcept {
      return kind != ReasonKind::None;
    }
  };

  // ---- core operations ----
  [[nodiscard]] LBool value(Lit l) const noexcept {
    return lit_value(assigns_[static_cast<std::size_t>(l.var())], l.negated());
  }
  [[nodiscard]] LBool value(Var v) const noexcept {
    return assigns_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int level(Var v) const noexcept {
    return vardata_[static_cast<std::size_t>(v)].level;
  }
  [[nodiscard]] int decision_level() const noexcept {
    return static_cast<int>(trail_lim_.size());
  }

  void enqueue(Lit l, Reason reason);
  Conflict propagate();
  Conflict propagate_pb_for(Lit falsified);
  void analyze(Conflict conflict, std::vector<Lit>* learnt, int* backjump);
  void minimize_learnt(std::vector<Lit>* learnt);
  void collect_reason(Reason reason, Lit implied, std::vector<Lit>* out) const;
  void backtrack(int target_level);
  Lit pick_branch();
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }

  int attach_clause(SolverClause clause);
  void attach_pb(PbConstraint constraint);
  void bump_var(Var v);
  void bump_clause(SolverClause& c);
  void decay_activities();
  void reduce_db();
  [[nodiscard]] bool clause_locked(int cref) const;

  // ---- state ----
  SolverConfig config_;
  SolverStats stats_;
  Rng rng_;

  std::vector<SolverClause> clauses_;
  std::vector<std::vector<Watcher>> watches_;   // by literal code
  std::vector<PbData> pbs_;
  std::vector<std::vector<PbOcc>> pb_occs_;     // by literal code

  std::vector<LBool> assigns_;
  struct VarData {
    Reason reason;
    int level = 0;
    int trail_pos = -1;
  };
  std::vector<VarData> vardata_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  int qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  ActivityHeap order_{activity_};
  std::vector<char> polarity_;  // saved phase, 1 = last value true

  std::vector<char> seen_;      // scratch for analyze()
  std::vector<Lit> analyze_stack_;

  std::vector<LBool> model_;
  bool ok_ = true;  // false once level-0 conflict derived
  std::int64_t learnt_count_ = 0;
  double max_learnts_ = 0.0;
};

}  // namespace symcolor
