#pragma once
// Cube-and-conquer over the assumption substrate.
//
// Where the portfolio (sat/portfolio.h) races N full copies of the whole
// search, CubeAndConquerSolver *splits the search space*: a lookahead
// generator (sat/cubes.h) partitions it into assumption cubes, a shared
// work queue deals cubes to a pool of cloned workers, and the partition
// semantics give exact answers — any Sat cube yields a model of the
// original query, and refuting EVERY cube refutes it. The per-solve flow:
//
//   1. warmup — the master runs a short budgeted solve. Easy instances
//      never reach the cube phase; hard ones come out with seeded
//      activities and learned clauses for the generator to branch on.
//   2. generation — propagation-count lookahead on the master emits the
//      cube frontier (see cubes.h).
//   3. conquer — worker 0 IS the master (whatever it learns persists into
//      the next query), workers 1..N-1 are diversified clones; all pull
//      from one CubeQueue and share glue clauses/PB rows through the
//      ClauseExchange. Sharing across cubes is sound: learnt constraints
//      are consequences of the formula alone — conflict analysis never
//      resolves on assumption pseudo-decisions.
//
// Work stealing from the straggler tail: a cube that exhausts its
// conflict slice is split further ON THE STUCK WORKER (whose activity
// heap reflects exactly that cube's hard core) and its children are
// re-dealt to the queue, so a straggler cube becomes everybody's work
// instead of one worker's tail latency.
//
// Core-driven sibling pruning: a refuted cube's failed-assumption core
// names the cube literals that actually mattered. Every queued sibling
// whose literal set contains that core fragment is unsatisfiable by the
// same argument and is pruned unsolved (counted in last_pruned_siblings).
// Pruning is sound for satisfiable siblings by construction — a pruned
// cube is a superset of a proven-unsat prefix, so it has no models.
//
// Termination and budget semantics match the engine contract: first Sat
// wins and flips the stop flag; all-cubes-refuted returns Unsat with a
// core assembled from the per-cube cores' caller-assumption parts (the
// full assumption set when any refutation lacked core attribution, e.g.
// generation-time propagation refutations — always a valid core); a
// budget trip returns Unknown with well-formed stats and last_trip().
// Counted caps (conflicts/propagations) bound each worker's solve, not
// the sum — same convention as the portfolio; wall clock and interrupt
// are global. Deterministic mode runs the whole cube schedule
// sequentially on the master in deal order with sharing off, so repeated
// runs reproduce the same answer, model, and stats.
//
// Fault isolation mirrors the portfolio: each worker runs under an
// exception barrier; a dead worker's in-flight cube is re-dealt so the
// partition stays covered, and only an all-workers death rethrows.

#include <cstddef>
#include <memory>
#include <vector>

#include "sat/cdcl.h"
#include "sat/cubes.h"
#include "sat/portfolio.h"
#include "sat/solver_engine.h"

namespace symcolor {

/// SolverEngine that conquers a lookahead cube partition with a pool of
/// cloned workers. See the header comment for the architecture; obtain
/// one through make_solver_engine with SolverConfig::cube_depth > 0.
class CubeAndConquerSolver final : public SolverEngine {
 public:
  CubeAndConquerSolver(const Formula& formula, SolverConfig config);

  bool add_clause(Clause clause) override;
  bool add_pb(PbConstraint constraint) override;
  SolveResult solve(const SolveBudget& budget = {},
                    std::span<const Lit> assumptions = {}) override;
  [[nodiscard]] BudgetTrip last_trip() const noexcept override {
    return last_trip_;
  }
  [[nodiscard]] const std::vector<LBool>& model() const noexcept override {
    return model_;
  }
  /// Failed-assumption core of the last Unsat answer: the union of the
  /// caller-assumption parts of every refuted cube's core (or a single
  /// refutation's part when one cube already refutes without its cube
  /// literals), falling back to the full assumption set when any
  /// refutation lacked core attribution. Empty iff unsatisfiability does
  /// not depend on the caller's assumptions.
  [[nodiscard]] std::span<const Lit> last_core() const noexcept override {
    return core_;
  }
  /// Stats of the answering worker (the Sat winner / the whole-space
  /// refuter's view); aggregated_stats() has the all-workers sum.
  [[nodiscard]] const SolverStats& stats() const noexcept override {
    return stats_;
  }
  /// Field-wise sum of every worker's counters (master warmup and probe
  /// propagation included), cumulative across solve() calls.
  [[nodiscard]] const SolverStats& aggregated_stats()
      const noexcept override {
    return agg_stats_;
  }
  [[nodiscard]] int num_vars() const noexcept override {
    return master_->num_vars();
  }
  [[nodiscard]] std::unique_ptr<SolverEngine> clone() const override {
    return std::unique_ptr<SolverEngine>(new CubeAndConquerSolver(*this));
  }
  void reconfigure(const SolverConfig& config) override {
    config_ = config;
    master_->reconfigure(config);
  }
  /// Inprocess the master; cube generation and every conquer-phase clone
  /// then work on the shrunk formula (cube assumption literals are
  /// remapped inside the workers via the cloned substitution state).
  std::int64_t inprocess(const SolveBudget& budget = {}) override {
    return master_->inprocess(budget);
  }

  // ---- schedule introspection (tests / benchmarks / --stats) ----
  /// Cubes the generator emitted for the last solve (0 when the warmup
  /// answered or the solve fell back to a plain master run).
  [[nodiscard]] std::size_t last_cubes() const noexcept {
    return last_cubes_;
  }
  /// Cubes refuted by workers (full solves, not generation probes).
  [[nodiscard]] std::size_t last_refuted_cubes() const noexcept {
    return last_refuted_;
  }
  /// Queued siblings pruned unsolved by refuted cubes' cores.
  [[nodiscard]] std::size_t last_pruned_siblings() const noexcept {
    return last_pruned_;
  }
  /// Stuck cubes split further and re-dealt (the work-stealing tail).
  [[nodiscard]] std::size_t last_splits() const noexcept {
    return last_splits_;
  }
  /// Workers that died behind the exception barrier in the last solve().
  [[nodiscard]] int last_fault_count() const noexcept {
    return last_faults_;
  }
  /// Worker index whose answer the last solve() surfaced (-1 = none).
  [[nodiscard]] int last_winner() const noexcept { return last_winner_; }

 private:
  CubeAndConquerSolver(const CubeAndConquerSolver& other);

  /// Plain master solve under the caller's budget — the fallback when the
  /// instance never reaches (or cannot use) the cube phase.
  SolveResult solve_on_master(const SolveBudget& budget,
                              std::span<const Lit> assumptions);
  /// Adopt the master's last answer into the engine-level result fields.
  SolveResult adopt_master_result(SolveResult r);

  SolverConfig config_;
  /// Owned behind a pointer so a dead master can be swapped for a rebuilt
  /// one (copied from a surviving clone), as in the portfolio.
  std::unique_ptr<CdclSolver> master_;
  std::vector<LBool> model_;
  std::vector<Lit> core_;
  SolverStats stats_;
  SolverStats agg_stats_;
  BudgetTrip last_trip_ = BudgetTrip::None;
  std::size_t last_cubes_ = 0;
  std::size_t last_refuted_ = 0;
  std::size_t last_pruned_ = 0;
  std::size_t last_splits_ = 0;
  int last_faults_ = 0;
  int last_winner_ = -1;
};

}  // namespace symcolor
