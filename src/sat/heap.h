#pragma once
// Indexed max-heap over variables keyed by activity score.
//
// The VSIDS decision order needs three operations the standard library
// does not combine: pop-max, increase-key for an arbitrary variable, and
// membership test. This is the classic MiniSat order heap.

#include <vector>

#include "cnf/literals.h"

namespace symcolor {

class ActivityHeap {
 public:
  /// The heap owns the score array (one double per variable): comparisons
  /// read it directly, the solver mutates it through scores() and then
  /// calls update() to restore heap order. Owning the scores keeps the
  /// class a plain value type — the solver clone path copies heap and
  /// scores together with no rebinding step.
  ActivityHeap() = default;

  /// Reset to `n` variables, all with score `value`.
  void assign_scores(std::size_t n, double value) {
    activity_.assign(n, value);
  }
  [[nodiscard]] std::vector<double>& scores() noexcept { return activity_; }
  [[nodiscard]] const std::vector<double>& scores() const noexcept {
    return activity_;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] bool contains(Var v) const noexcept {
    return v >= 0 && v < static_cast<Var>(index_.size()) && index_[static_cast<std::size_t>(v)] >= 0;
  }

  /// Insert `v` if absent.
  void insert(Var v);

  /// Restore heap order around `v` after its activity changed.
  void update(Var v);

  /// Remove and return the variable with maximal activity.
  Var pop_max();

  /// Drop everything and rebuild from `vars`.
  void rebuild(const std::vector<Var>& vars);

 private:
  [[nodiscard]] bool less(Var a, Var b) const noexcept {
    return activity_[static_cast<std::size_t>(a)] <
           activity_[static_cast<std::size_t>(b)];
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void place(std::size_t i, Var v) {
    heap_[i] = v;
    index_[static_cast<std::size_t>(v)] = static_cast<int>(i);
  }

  std::vector<double> activity_;  // score per variable, owned
  std::vector<Var> heap_;
  std::vector<int> index_;  // var -> heap position, -1 when absent
};

}  // namespace symcolor
