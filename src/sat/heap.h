#pragma once
// Indexed max-heap over variables keyed by activity score.
//
// The VSIDS decision order needs three operations the standard library
// does not combine: pop-max, increase-key for an arbitrary variable, and
// membership test. This is the classic MiniSat order heap.

#include <vector>

#include "cnf/literals.h"

namespace symcolor {

class ActivityHeap {
 public:
  /// `activity` must outlive the heap; scores are read through it on every
  /// comparison so bumps are picked up via update().
  explicit ActivityHeap(const std::vector<double>& activity)
      : activity_(activity) {}

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] bool contains(Var v) const noexcept {
    return v >= 0 && v < static_cast<Var>(index_.size()) && index_[static_cast<std::size_t>(v)] >= 0;
  }

  /// Insert `v` if absent.
  void insert(Var v);

  /// Restore heap order around `v` after its activity changed.
  void update(Var v);

  /// Remove and return the variable with maximal activity.
  Var pop_max();

  /// Drop everything and rebuild from `vars`.
  void rebuild(const std::vector<Var>& vars);

 private:
  [[nodiscard]] bool less(Var a, Var b) const noexcept {
    return activity_[static_cast<std::size_t>(a)] <
           activity_[static_cast<std::size_t>(b)];
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void place(std::size_t i, Var v) {
    heap_[i] = v;
    index_[static_cast<std::size_t>(v)] = static_cast<int>(i);
  }

  const std::vector<double>& activity_;
  std::vector<Var> heap_;
  std::vector<int> index_;  // var -> heap position, -1 when absent
};

}  // namespace symcolor
