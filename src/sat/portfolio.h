#pragma once
// Clone-based parallel portfolio over the CDCL engine.
//
// A PortfolioSolver owns ONE master CdclSolver that carries all
// incremental state (constraints added between solves, learned clauses,
// activities, saved phases). Each solve() with portfolio_threads = N > 1
// spawns N racing workers on std::thread:
//
//   * worker 0 IS the master (so whatever it learns persists into the
//     next query — the incremental-SAT behaviour callers rely on);
//   * workers 1..N-1 are fresh clones of the master — the contiguous
//     arena/pool storage makes a clone a handful of memcpys — each
//     diversified along the classic portfolio axes: restart scheme
//     (Luby / geometric / adaptive with trail blocking), polarity policy
//     (saved phases vs. fixed positive branching), reduce cadence
//     (DB-size vs. conflict-interval schedule), random-branching rate,
//     and an RNG seed mixed from SolverConfig::random_seed and the
//     worker index (identical clones must not explore identical trees).
//
// Workers exchange core-tier learnt clauses (glue <= share_max_lbd,
// learnt units included) AND learned PB rows (cutting-planes resolvents
// from workers running PbAnalysis::CuttingPlanes, under the same glue and
// size admission caps) through a bounded, mutex-guarded ClauseExchange:
// exports happen at learn time, imports are drained at restart
// boundaries, where adding a foreign constraint is an ordinary level-0
// addition — the sharing architecture proven out in
// CryptoMiniSat/ManySAT. The first worker to reach a definitive answer
// wins: it flips the shared stop flag, the losers bail out at their next
// deadline poll, and the winner's model/stats are surfaced.
//
// Determinism: portfolio_deterministic disables sharing and early
// termination, runs every worker to completion, and crowns the
// lowest-indexed definitive answer, so repeated runs reproduce the same
// result and model (tests rely on this). Either way the ANSWER is exact:
// sharing only moves logical consequences, so SAT/UNSAT never depends on
// the thread count — only the wall-clock does.
//
// Fault isolation: every worker runs under an exception barrier. A worker
// that throws mid-solve (a real bug, resource exhaustion, or the
// SolverConfig::fault_injection test hook) is marked dead and excluded —
// its exception is captured per-worker, the race is NOT cancelled, and
// the survivors finish and answer. The exchange tolerates dead producers
// by construction (cursors only ever scan what was actually published).
// If the dead worker is the master (worker 0), the master is rebuilt from
// a surviving clone before solve() returns — sound because every clone
// holds only consequences of the same shared formula — so incremental
// callers keep a healthy engine. Injected fault specs are one-shot: after
// any worker dies the spec is disarmed for later solves. Only when EVERY
// worker dies does solve() rethrow (the lowest-indexed worker's
// exception); last_fault_count() reports the per-solve death toll.
//
// With portfolio_threads <= 1, solve() runs the master inline: no
// threads, no exchange, no atomics — bit-for-bit the sequential engine.
// There are no survivors to absorb a fault on that path, so a throwing
// 1-thread solve propagates to the caller unchanged.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sat/cdcl.h"
#include "sat/solver_engine.h"

namespace symcolor {

/// Stir a worker index into the base RNG seed (SplitMix64 finalizer).
/// Worker 0 keeps the base seed — it is the master itself; every other
/// worker gets a decorrelated stream even when base seeds are small
/// consecutive integers.
[[nodiscard]] std::uint64_t mix_worker_seed(std::uint64_t base_seed,
                                            int worker);

/// Worker `index`'s diversified configuration (index 0 returns `base`
/// unchanged). Cycles through four personalities that vary the restart
/// scheme, phase policy, reduce cadence and random-branching rate, and
/// always reseeds the RNG via mix_worker_seed.
[[nodiscard]] SolverConfig diversify_config(const SolverConfig& base,
                                            int index);

/// Bounded, sharded constraint pool: each worker publishes into its OWN
/// shard (one short lock nobody else writes under), so two exporters
/// never contend with each other — only an importer scanning a shard
/// contends with that shard's single producer. A global atomic sequence
/// counter per lane stamps every accepted entry; importers snapshot the
/// counter as a horizon and drain `[cursor, horizon)` from every foreign
/// shard, which is race-free because an entry's sequence number is
/// claimed inside its shard's critical section — once an importer holds a
/// shard's lock, every entry of that shard below the snapshotted horizon
/// is fully published. Per-worker cursors therefore keep their old
/// meaning (entries drained so far) across the sharding. Clauses and
/// learned PB rows travel in separate lanes, each bounded by `capacity`;
/// exports past it are counted and dropped (bounding both memory and
/// import work).
class ClauseExchange final : public ClauseSharing {
 public:
  /// `num_workers` sizes the shard array; worker ids outside
  /// [0, num_workers) share the last shard (correct, merely slower). The
  /// default covers direct test construction with small worker ids.
  explicit ClauseExchange(std::size_t capacity, int num_workers = 8)
      : shards_(num_workers > 0 ? static_cast<std::size_t>(num_workers) : 1),
        capacity_(capacity) {}

  bool export_clause(int worker, std::span<const Lit> lits,
                     int lbd) override;
  void import_clauses(int worker, std::size_t* cursor,
                      std::vector<SharedClause>* out) override;
  bool export_pb(int worker, std::span<const PbTerm> terms,
                 std::int64_t degree, int lbd) override;
  void import_pbs(int worker, std::size_t* cursor,
                  std::vector<SharedPb>* out) override;

  [[nodiscard]] std::size_t exported() const;
  [[nodiscard]] std::size_t exported_pbs() const;
  [[nodiscard]] std::size_t dropped() const;

 private:
  struct Entry {
    int worker;
    std::size_t seq;
    SharedClause clause;
  };
  struct PbEntry {
    int worker;
    std::size_t seq;
    SharedPb pb;
  };
  /// One producer's lane pair. Entries are appended in increasing seq
  /// order (claims happen under this mutex), so imports binary-search
  /// their cursor.
  struct Shard {
    mutable std::mutex mutex;
    std::vector<Entry> entries;
    std::vector<PbEntry> pb_entries;
  };

  [[nodiscard]] Shard& shard_for(int worker) {
    const auto i = worker >= 0 ? static_cast<std::size_t>(worker) : 0;
    return shards_[std::min(i, shards_.size() - 1)];
  }

  std::vector<Shard> shards_;
  std::size_t capacity_;
  /// Sequence numbers claimed per lane (accepted = min(claimed, capacity);
  /// claims at or past capacity are drops).
  std::atomic<std::size_t> next_seq_{0};
  std::atomic<std::size_t> next_pb_seq_{0};
  std::atomic<std::size_t> dropped_{0};
};

/// SolverEngine implementation that races diversified clones of one
/// master CdclSolver per solve() call. See the header comment for the
/// architecture; see make_solver_engine for the usual way to obtain one.
class PortfolioSolver final : public SolverEngine {
 public:
  PortfolioSolver(const Formula& formula, SolverConfig config);

  bool add_clause(Clause clause) override;
  bool add_pb(PbConstraint constraint) override;
  /// Race the workers under one shared budget. Each worker polls the
  /// budget's asynchronous conditions itself (so interrupt() preempts the
  /// whole portfolio, deterministic mode included) and counts its own
  /// conflict/propagation caps.
  SolveResult solve(const SolveBudget& budget = {},
                    std::span<const Lit> assumptions = {}) override;
  [[nodiscard]] const std::vector<LBool>& model() const noexcept override {
    return model_;
  }
  /// Failed-assumption core of the last Unsat answer — the WINNING
  /// worker's core (each worker runs its own final-conflict analysis, so
  /// diversified workers can return different, equally valid cores; the
  /// race surfaces whichever finished first, deterministic mode the
  /// lowest-indexed one).
  [[nodiscard]] std::span<const Lit> last_core() const noexcept override {
    return core_;
  }
  /// Stats of the most recent winning worker (the losers' partial work
  /// is reported through aggregated_stats(), not folded in here).
  [[nodiscard]] const SolverStats& stats() const noexcept override {
    return stats_;
  }
  /// Field-wise sum of EVERY worker's counters — winners, losers, and
  /// workers that died behind the exception barrier alike — cumulative
  /// across solve() calls. This is the honest cost of a race: on a
  /// 4-worker portfolio most conflicts belong to the losers, which
  /// stats() (the winner's view) never shows.
  [[nodiscard]] const SolverStats& aggregated_stats()
      const noexcept override {
    return agg_stats_;
  }
  [[nodiscard]] int num_vars() const noexcept override {
    return master_->num_vars();
  }
  [[nodiscard]] std::unique_ptr<SolverEngine> clone() const override {
    return std::unique_ptr<SolverEngine>(new PortfolioSolver(*this));
  }
  /// Swap the base configuration: the master is reconfigured in place and
  /// the new base drives the next solve()'s worker diversification. The
  /// thread count in `config` only affects how many clones the next race
  /// spawns — existing learned state is kept either way.
  void reconfigure(const SolverConfig& config) override {
    config_ = config;
    master_->reconfigure(config);
  }
  /// Which bound ended the last solve() early: None after a definitive
  /// answer, otherwise the winning-side trip (all-Unknown races report
  /// the first surviving worker's trip — under one shared budget every
  /// survivor trips on the same condition, modulo poll-cadence races).
  [[nodiscard]] BudgetTrip last_trip() const noexcept override {
    return last_trip_;
  }
  /// Inprocess the master; the next solve()'s clones inherit the shrunk
  /// formula and the substitution/reconstruction state.
  std::int64_t inprocess(const SolveBudget& budget = {}) override {
    return master_->inprocess(budget);
  }

  // ---- race introspection (tests / benchmarks) ----
  /// Index of the worker whose answer the last solve() surfaced; -1 when
  /// no solve has completed or every worker returned Unknown.
  [[nodiscard]] int last_winner() const noexcept { return last_winner_; }
  /// Clause-exchange traffic of the last parallel solve().
  [[nodiscard]] std::size_t last_exchange_exported() const noexcept {
    return last_exported_;
  }
  [[nodiscard]] std::size_t last_exchange_exported_pbs() const noexcept {
    return last_exported_pbs_;
  }
  [[nodiscard]] std::size_t last_exchange_dropped() const noexcept {
    return last_dropped_;
  }
  /// Workers that died behind the exception barrier in the last solve()
  /// (0 on every healthy run).
  [[nodiscard]] int last_fault_count() const noexcept { return last_faults_; }

 private:
  PortfolioSolver(const PortfolioSolver& other);

  SolverConfig config_;
  /// Owned behind a pointer so a dead master can be swapped for a rebuilt
  /// one (copied from a surviving clone) without disturbing callers.
  std::unique_ptr<CdclSolver> master_;
  std::vector<LBool> model_;
  std::vector<Lit> core_;
  SolverStats stats_;
  SolverStats agg_stats_;
  int last_winner_ = -1;
  int last_faults_ = 0;
  BudgetTrip last_trip_ = BudgetTrip::None;
  std::size_t last_exported_ = 0;
  std::size_t last_exported_pbs_ = 0;
  std::size_t last_dropped_ = 0;
};

/// Backend factory the whole pipeline funnels through: a
/// CubeAndConquerSolver (sat/cube_solver.h) when config.cube_depth > 0, a
/// plain CdclSolver when config.portfolio_threads <= 1 (zero parallel
/// overhead on the 1-thread path), a PortfolioSolver otherwise.
[[nodiscard]] std::unique_ptr<SolverEngine> make_solver_engine(
    const Formula& formula, const SolverConfig& config);

}  // namespace symcolor
