#include "sat/cdcl.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "sat/inprocess.h"
#include "sat/luby.h"

namespace symcolor {

namespace {

// Overflow-checked int64 arithmetic for cutting-planes resolution: any
// overflow aborts the native analysis (the caller falls back to clause
// weakening), so a resolvent can never silently wrap.
inline bool add_ov(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return __builtin_add_overflow(a, b, out);
}
inline bool mul_ov(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return __builtin_mul_overflow(a, b, out);
}

}  // namespace

CdclSolver::CdclSolver(const Formula& formula, SolverConfig config)
    : config_(config), rng_(config.random_seed) {
  const auto n = static_cast<std::size_t>(formula.num_vars());
  assigns_.assign(n, LBool::Undef);
  lit_values_.assign(2 * n, LBool::Undef);
  vardata_.assign(n, {});
  order_.assign_scores(n, 0.0);
  polarity_.assign(n, config_.default_phase ? 1 : 0);
  subst_.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    subst_.push_back(Lit::positive(static_cast<Var>(v)));
  }
  eliminated_.assign(n, 0);
  seen_.assign(n, 0);
  cp_coef_.assign(n, 0);
  cp_lit_.assign(n, kUndefLit);
  cp_in_.assign(n, 0);
  lbd_level_stamp_.assign(n + 1, 0);  // one slot per possible decision level
  watches_.init(2 * n);
  bin_watches_.init(2 * n);
  pb_occs_.init(2 * n);

  // The trail holds at most one entry per variable: reserving up front
  // removes the capacity branch from enqueue() for the whole search.
  trail_.reserve(n);
  trail_lim_.reserve(n);

  std::vector<Var> vars(n);
  for (std::size_t v = 0; v < n; ++v) vars[v] = static_cast<Var>(v);
  order_.rebuild(vars);

  ok_ = !formula.trivially_unsat();
  for (const Clause& clause : formula.clauses()) {
    if (!ok_) break;
    add_clause(clause);
  }
  for (const PbConstraint& c : formula.pb_constraints()) {
    if (!ok_) break;
    add_pb(c);
  }
  // Aggressive first reduction (Glucose lineage): with LBD tiers
  // protecting core/mid clauses, a small local pool propagates much
  // faster than MiniSat's max(2000, m/3) would allow, and the 1.2 growth
  // per reduction still lets the DB scale with genuinely hard searches.
  max_learnts_ =
      config_.max_learnts_init > 0.0
          ? config_.max_learnts_init
          : std::max(800.0, static_cast<double>(arena_.live_clauses()) / 8.0);
  next_reduce_conflicts_ = config_.reduce_interval_base;
  next_inprocess_conflicts_ = config_.inprocess_interval_base;
}

void CdclSolver::reconfigure(const SolverConfig& config) {
  // Lazy-quiescence entry: a retained assumption trail is consequences of
  // formula + previous assumptions; a solver about to change personality
  // (and the clone-then-reconfigure worker-spawn paths that funnel through
  // here) must start from root state.
  lazy_root_backtrack();
  config_ = config;
  rng_ = Rng(config.random_seed);
  // std::vector copies do not preserve capacity, so a freshly cloned
  // solver lost the constructor's trail reservation; restore it here (the
  // portfolio reconfigures every clone before it searches).
  trail_.reserve(assigns_.size());
  trail_lim_.reserve(assigns_.size());
  if (config.max_learnts_init > 0.0) max_learnts_ = config.max_learnts_init;
  // Re-arm schedule state so the new restart/reduce policies start from a
  // clean baseline instead of inheriting the previous policy's averages.
  next_reduce_conflicts_ = stats_.conflicts + config.reduce_interval_base;
  reduce_rounds_ = 0;
  next_inprocess_conflicts_ = stats_.conflicts + config.inprocess_interval_base;
  inprocess_rounds_done_ = 0;
  lbd_ema_fast_ = lbd_ema_slow_ = 0.0;
  lbd_ema_seeded_ = false;
  trail_ema_ = 0.0;
  trail_ema_seeded_ = false;
}

bool CdclSolver::add_clause(Clause clause) {
  // Lazy-quiescence entry: mutating the formula invalidates any retained
  // assumption trail, so discard it before simplifying against what must
  // be the level-0 assignment.
  lazy_root_backtrack();
  if (!ok_) return false;
  // Clauses arriving after a Full inprocessing round may name variables a
  // substitution eliminated; rewrite them into the representative alphabet
  // first (the sort/unique/adjacent-var pass below then absorbs duplicate
  // and tautological pairs a merge creates).
  if (!reconstruction_.empty()) {
    for (Lit& l : clause) l = map_lit(l);
  }
  // Simplify against the level-0 assignment.
  Clause simplified;
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  for (std::size_t i = 0; i < clause.size(); ++i) {
    const Lit l = clause[i];
    if (i + 1 < clause.size() && clause[i + 1].var() == l.var()) return true;
    if (value(l) == LBool::True) return true;  // already satisfied
    if (value(l) == LBool::Undef) simplified.push_back(l);
  }
  if (simplified.empty()) {
    ok_ = false;
    return false;
  }
  if (simplified.size() == 1) {
    enqueue(simplified[0], {ReasonKind::None, kInvalidClauseRef});
    if (propagate().valid()) ok_ = false;
    return ok_;
  }
  attach_clause(simplified, /*learnt=*/false);
  return true;
}

bool CdclSolver::add_pb(PbConstraint constraint) {
  // Same lazy-quiescence entry as add_clause: the slack/forced-literal
  // admission logic below reads the level-0 assignment.
  lazy_root_backtrack();
  if (!ok_) return false;
  // Same late-arrival boundary as add_clause: rewrite the row into the
  // representative alphabet. Re-normalizing merges terms that now share a
  // variable (same or opposite polarity) exactly as construction would.
  if (!reconstruction_.empty()) {
    bool mapped = false;
    for (const PbTerm& t : constraint.terms()) {
      if (map_lit(t.lit) != t.lit) {
        mapped = true;
        break;
      }
    }
    if (mapped) {
      std::vector<PbTerm> terms(constraint.terms().begin(),
                                constraint.terms().end());
      for (PbTerm& t : terms) t.lit = map_lit(t.lit);
      constraint = PbConstraint::at_least(std::move(terms), constraint.bound());
    }
  }
  if (constraint.is_tautology()) return true;
  if (constraint.is_contradiction()) {
    ok_ = false;
    return false;
  }
  if (constraint.is_clause()) {
    Clause clause;
    for (const PbTerm& t : constraint.terms()) clause.push_back(t.lit);
    return add_clause(std::move(clause));
  }
  attach_pb(constraint);
  // The new constraint may already be conflicting or unit under the
  // level-0 assignment; propagate() alone would not notice (no new trail
  // entries), so check it directly.
  const auto pb_index = static_cast<std::uint32_t>(pbs_.size()) - 1;
  if (pbs_[pb_index].slack < 0) {
    ok_ = false;
    return false;
  }
  for (const PbTerm& t : pb_terms(pbs_[pb_index])) {
    if (t.coeff <= pbs_[pb_index].slack) break;
    if (value(t.lit) == LBool::Undef) {
      enqueue(t.lit, {ReasonKind::PbRef, pb_index});
    }
  }
  if (propagate().valid()) ok_ = false;
  return ok_;
}

ClauseRef CdclSolver::attach_clause(std::span<const Lit> lits, bool learnt) {
  assert(lits.size() >= 2);
  const ClauseRef cref = arena_.alloc(lits, learnt);
  FlatOccPool<Watcher>& pool = lits.size() == 2 ? bin_watches_ : watches_;
  pool.push(static_cast<std::size_t>(lits[0].code()), {cref, lits[1]});
  pool.push(static_cast<std::size_t>(lits[1].code()), {cref, lits[0]});
  return cref;
}

std::uint32_t CdclSolver::attach_pb_row(std::span<const PbTerm> terms,
                                        std::int64_t bound) {
  PbData data;
  data.terms_begin = static_cast<std::uint32_t>(pb_terms_.size());
  data.terms_len = static_cast<std::uint32_t>(terms.size());
  data.bound = bound;
  // Terms arrive sorted by descending coefficient (PbConstraint invariant;
  // analyze_pb's emit path upholds it for learned rows).
  data.max_coeff = terms.empty() ? 0 : terms[0].coeff;
  const auto index = static_cast<std::uint32_t>(pbs_.size());
  std::int64_t slack = -bound;
  for (const PbTerm& t : terms) {
    pb_terms_.push_back(t);
    pb_occs_.push(static_cast<std::size_t>(t.lit.code()), {index, t.coeff});
    // Literals already false contribute nothing to slack.
    if (value(t.lit) != LBool::False) slack += t.coeff;
  }
  pb_occs_dirty_ = true;
  data.slack = slack;
  pbs_.push_back(data);
  return index;
}

void CdclSolver::attach_pb(const PbConstraint& constraint) {
  attach_pb_row(constraint.terms(), constraint.bound());
}

void CdclSolver::enqueue(Lit l, Reason reason) {
  assert(value(l) == LBool::Undef);
  const auto v = static_cast<std::size_t>(l.var());
  const Lit falsified = ~l;
  assigns_[v] = lbool_of(!l.negated());
  lit_values_[static_cast<std::size_t>(l.code())] = LBool::True;
  lit_values_[static_cast<std::size_t>(falsified.code())] = LBool::False;
  vardata_[v].reason = reason;
  vardata_[v].level = decision_level();
  vardata_[v].trail_pos = static_cast<int>(trail_.size());
  trail_.push_back(l);
  if (pbs_.empty()) return;
  // PB slack bookkeeping: literal ~l just became false.
  for (const PbOcc& occ :
       pb_occs_.row(static_cast<std::size_t>(falsified.code()))) {
    pbs_[occ.pb_index].slack -= occ.coeff;
  }
}

CdclSolver::Conflict CdclSolver::propagate_pb_for(Lit falsified) {
  // Slack was already decremented in enqueue(); here we detect conflicts
  // and propagate forced literals for every constraint containing the
  // falsified literal.
  for (const PbOcc& occ :
       pb_occs_.row(static_cast<std::size_t>(falsified.code()))) {
    PbData& pb = pbs_[occ.pb_index];
    if (pb.slack < 0) return {ReasonKind::PbRef, occ.pb_index};
    if (pb.slack >= pb.max_coeff) {
      // No coefficient exceeds the slack: the constraint can neither
      // conflict nor force anything, so skip the term scan entirely.
      ++stats_.pb_short_circuits;
      continue;
    }
    for (const PbTerm& t : pb_terms(pb)) {
      if (t.coeff <= pb.slack) break;  // terms sorted by descending coeff
      if (value(t.lit) == LBool::Undef) {
        enqueue(t.lit, {ReasonKind::PbRef, occ.pb_index});
      }
    }
  }
  return {};
}

CdclSolver::Conflict CdclSolver::propagate() {
  while (qhead_ < static_cast<int>(trail_.size())) {
    const Lit p = trail_[static_cast<std::size_t>(qhead_++)];
    ++stats_.propagations;
    const Lit falsified = ~p;
    const auto fcode = static_cast<std::uint32_t>(falsified.code());
    // Overlap the NEXT trail literal's watcher slabs with this literal's
    // scan: the row headers are hot, but the slab lines they point at are
    // scattered across the pool and their load latency otherwise lands on
    // the critical path of the next iteration. (A push into another row
    // during the long scan below can reallocate the slab, invalidating
    // the hint — prefetch is advisory, so that is merely a wasted line.)
    if (qhead_ < static_cast<int>(trail_.size())) {
      const auto nrow = static_cast<std::size_t>(
          (~trail_[static_cast<std::size_t>(qhead_)]).code());
      __builtin_prefetch(bin_watches_.data(nrow));
      __builtin_prefetch(watches_.data(nrow));
    }

    // --- binary implications first ---
    // The binary row is read-only during the scan (binary watches never
    // move) and needs no tag test or keep-compaction: each entry is the
    // other literal plus the clause ref for the implication reason.
    const auto frow = static_cast<std::size_t>(falsified.code());
    {
      const Watcher* const bw_data = bin_watches_.data(frow);
      const std::uint32_t bw_size = bin_watches_.size(frow);
      for (std::uint32_t i = 0; i < bw_size; ++i) {
        const Watcher w = bw_data[i];
        const LBool bv = value(w.blocker);
        if (bv == LBool::True) continue;
        if (bv == LBool::False) {
          qhead_ = static_cast<int>(trail_.size());
          return {ReasonKind::ClauseRef, w.cref};
        }
        enqueue(w.blocker, {ReasonKind::ClauseRef, w.cref});
      }
    }

    // --- long-clause propagation via two watched literals ---
    // This literal's row never grows during the scan (new watches go to
    // other literals' rows — the moved-to literal is non-false, the
    // falsified one is false), so its offset/size are stable. The slab
    // base pointer is NOT: a push into another row can reallocate the
    // pool, so `ws_data` is re-read after every watch move (the only
    // path that pushes).
    Watcher* ws_data = watches_.data(frow);
    const std::uint32_t ws_size = watches_.size(frow);
    std::uint32_t keep = 0;
    for (std::uint32_t read = 0; read < ws_size; ++read) {
      const Watcher w = ws_data[read];
      if (value(w.blocker) == LBool::True) {
        ws_data[keep++] = w;
        continue;
      }
      std::uint32_t* lits = arena_.lit_codes(w.cref);
      const int size = arena_.size(w.cref);
      // Ensure the falsified literal sits at position 1.
      if (lits[0] == fcode) std::swap(lits[0], lits[1]);
      assert(lits[1] == fcode);
      const Lit first = Lit::from_code(static_cast<int>(lits[0]));
      if (value(first) == LBool::True) {
        ws_data[keep++] = {w.cref, first};
        continue;
      }
      bool moved = false;
      for (int k = 2; k < size; ++k) {
        const Lit lk = Lit::from_code(static_cast<int>(lits[k]));
        if (value(lk) != LBool::False) {
          std::swap(lits[1], lits[k]);
          watches_.push(static_cast<std::size_t>(lits[1]), {w.cref, first});
          ws_data = watches_.data(frow);  // push may have moved the slab
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      ws_data[keep++] = w;
      if (value(first) == LBool::False) {
        // Conflict: restore the remaining watchers and report.
        for (std::uint32_t rest = read + 1; rest < ws_size; ++rest) {
          ws_data[keep++] = ws_data[rest];
        }
        watches_.truncate(frow, keep);
        qhead_ = static_cast<int>(trail_.size());
        return {ReasonKind::ClauseRef, w.cref};
      }
      enqueue(first, {ReasonKind::ClauseRef, w.cref});
    }
    watches_.truncate(frow, keep);

    // --- PB propagation ---
    if (!pbs_.empty()) {
      const Conflict conflict = propagate_pb_for(falsified);
      if (conflict.valid()) {
        qhead_ = static_cast<int>(trail_.size());
        return conflict;
      }
    }
  }
  return {};
}

void CdclSolver::analyze(Conflict conflict, std::vector<Lit>* learnt,
                         int* backjump, int* lbd) {
  learnt->clear();
  learnt->push_back(kUndefLit);  // slot for the asserting (1UIP) literal

  // Marks stay set for the whole analysis (a current-level variable can
  // appear in several reasons and must only be counted once); they are
  // cleared in one sweep at the end. The seen_ marks also make it safe to
  // revisit the implied literal a clause reason may yield: its variable
  // is always already marked.
  std::vector<Var>& to_clear = analyze_toclear_;
  to_clear.clear();
  int counter = 0;
  const auto absorb = [&](Lit q) {
    const auto v = static_cast<std::size_t>(q.var());
    if (!seen_[v] && level(q.var()) > 0) {
      seen_[v] = 1;
      to_clear.push_back(q.var());
      bump_var(q.var());
      if (level(q.var()) >= decision_level()) {
        ++counter;
      } else {
        learnt->push_back(q);
      }
    }
    return true;
  };

  if (conflict.kind == ReasonKind::ClauseRef) {
    bump_clause(conflict.index);
    touch_learnt(conflict.index);
  }
  for_each_reason_lit({conflict.kind, conflict.index}, kUndefLit, absorb);

  Lit p = kUndefLit;
  int index = static_cast<int>(trail_.size()) - 1;
  for (;;) {
    // Walk back to the next marked trail literal.
    while (!seen_[static_cast<std::size_t>(
        trail_[static_cast<std::size_t>(index)].var())]) {
      --index;
    }
    p = trail_[static_cast<std::size_t>(index)];
    --index;
    --counter;
    if (counter == 0) break;
    const Reason r = vardata_[static_cast<std::size_t>(p.var())].reason;
    assert(r.kind != ReasonKind::None);
    if (r.kind == ReasonKind::ClauseRef) {
      bump_clause(r.index);
      touch_learnt(r.index);
    }
    for_each_reason_lit(r, p, absorb);
  }
  (*learnt)[0] = ~p;

  stats_.learned_literals += static_cast<std::int64_t>(learnt->size());
  if (config_.minimize_learned) minimize_learnt(learnt);

  // One scan computes both the backjump level (second-highest level in
  // the clause) and the LBD: every non-asserting literal's level is
  // loaded here anyway, so counting distinct levels is free. The
  // asserting literal sits alone at the conflict level, which no other
  // literal shares, hence the count starts at 1.
  if (learnt->size() == 1) {
    *backjump = 0;
    *lbd = 1;
  } else {
    ++lbd_stamp_;
    int glue = 1;
    std::size_t max_i = 1;
    int max_level = level((*learnt)[1].var());
    for (std::size_t i = 1; i < learnt->size(); ++i) {
      const int lvl = level((*learnt)[i].var());
      if (lvl > max_level) {
        max_level = lvl;
        max_i = i;
      }
      auto& stamp = lbd_level_stamp_[static_cast<std::size_t>(lvl)];
      if (stamp != lbd_stamp_) {
        stamp = lbd_stamp_;
        ++glue;
      }
    }
    std::swap((*learnt)[1], (*learnt)[max_i]);
    *backjump = max_level;
    *lbd = glue;
  }

  for (const Var v : to_clear) seen_[static_cast<std::size_t>(v)] = 0;
}

// ---- cutting-planes PB conflict analysis ----
//
// The resolvent invariant maintained throughout: the accumulator is a
// valid consequence of the constraint database (modulo level-0 units) and
// is CONFLICTING under the full current assignment (slack < 0). Each step
// resolves it against the reason of the latest trail literal it contains,
// with the reason weakened just enough that the coefficient-scaled sum is
// guaranteed conflicting again (slack is subadditive under the scaled
// addition). The walk stops as soon as the resolvent is assertive below
// the current decision level — the PB generalization of 1UIP.

bool CdclSolver::cp_load(Conflict conflict) {
  for (const Var v : cp_vars_) {
    cp_coef_[static_cast<std::size_t>(v)] = 0;
    cp_in_[static_cast<std::size_t>(v)] = 0;
  }
  cp_vars_.clear();
  cp_degree_ = 0;
  const auto add = [&](std::int64_t a, Lit l) -> bool {
    const auto v = static_cast<std::size_t>(l.var());
    // Level-0 strengthening: a globally false literal drops outright (it
    // is unit-implied away, degree unchanged), a globally true one drops
    // with its weight paid off the degree. Exactly mirrors how add_clause
    // simplifies against the level-0 assignment.
    if (value(l.var()) != LBool::Undef && level(l.var()) == 0) {
      if (value(l) == LBool::False) return true;
      return !add_ov(cp_degree_, -a, &cp_degree_);
    }
    assert(!cp_in_[v]);
    cp_in_[v] = 1;
    cp_vars_.push_back(l.var());
    cp_coef_[v] = a;
    cp_lit_[v] = l;
    return true;
  };
  if (conflict.kind == ReasonKind::ClauseRef) {
    const std::uint32_t* codes = arena_.lit_codes(conflict.index);
    const int size = arena_.size(conflict.index);
    cp_degree_ = 1;
    for (int i = 0; i < size; ++i) {
      if (!add(1, Lit::from_code(static_cast<int>(codes[i])))) return false;
    }
  } else {
    const PbData& pb = pbs_[conflict.index];
    cp_degree_ = pb.bound;
    for (const PbTerm& t : pb_terms(pb)) {
      if (!add(t.coeff, t.lit)) return false;
    }
  }
  return true;
}

std::int64_t CdclSolver::cp_slack_full() const {
  __int128 s = -static_cast<__int128>(cp_degree_);
  for (const Var v : cp_vars_) {
    const std::int64_t a = cp_coef_[static_cast<std::size_t>(v)];
    if (a != 0 && value(cp_lit_[static_cast<std::size_t>(v)]) != LBool::False) {
      s += a;
    }
  }
  // Saturating clamp: callers only branch on the sign and compare against
  // single coefficients, and saturation errs toward extra weakening —
  // never toward an unsound resolvent.
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  if (s > kMax) return kMax;
  if (s < kMin) return kMin;
  return static_cast<std::int64_t>(s);
}

bool CdclSolver::cp_assertive() const {
  // Assertive below the current level L: with every level-L (and dummy
  // assumption level) assignment undone, the resolvent either still
  // conflicts or forces some literal not assigned below L. Terms false
  // below L stay false; everything else — unassigned, true anywhere,
  // false at L — counts as non-false, and the not-assigned-below-L subset
  // are the propagation candidates.
  const int L = decision_level();
  __int128 slack = -static_cast<__int128>(cp_degree_);
  std::int64_t maxcand = 0;
  for (const Var v : cp_vars_) {
    const auto vi = static_cast<std::size_t>(v);
    const std::int64_t a = cp_coef_[vi];
    if (a == 0) continue;
    const bool assigned_below = value(v) != LBool::Undef && level(v) < L;
    if (assigned_below && value(cp_lit_[vi]) == LBool::False) continue;
    slack += a;
    if (!assigned_below) maxcand = std::max(maxcand, a);
  }
  return slack < 0 || static_cast<__int128>(maxcand) > slack;
}

bool CdclSolver::cp_saturate_and_divide() {
  if (cp_degree_ <= 0) return false;
  std::int64_t g = 0;
  for (const Var v : cp_vars_) {
    std::int64_t& a = cp_coef_[static_cast<std::size_t>(v)];
    if (a == 0) continue;
    if (a > cp_degree_) a = cp_degree_;  // saturation
    g = std::gcd(g, a);
  }
  if (g <= 1) return true;  // g == 0: empty resolvent — caller decides
  for (const Var v : cp_vars_) {
    std::int64_t& a = cp_coef_[static_cast<std::size_t>(v)];
    if (a != 0) a /= g;
  }
  // Chvátal-Gomory rounding: the bound divides rounding UP, which is the
  // sound direction (the integer LHS cannot land strictly between).
  cp_degree_ = cp_degree_ / g + (cp_degree_ % g != 0 ? 1 : 0);
  return true;
}

bool CdclSolver::cp_weaken_nonfalse() {
  for (const Var v : cp_vars_) {
    const auto vi = static_cast<std::size_t>(v);
    const std::int64_t a = cp_coef_[vi];
    if (a == 0 || value(cp_lit_[vi]) == LBool::False) continue;
    // Weakening a non-false term (drop it, pay its weight off the degree)
    // leaves the slack unchanged, so the resolvent stays conflicting.
    cp_coef_[vi] = 0;
    cp_degree_ -= a;
  }
  if (cp_degree_ <= 0) return false;
  return cp_saturate_and_divide();
}

bool CdclSolver::cp_reduce_reason(Reason reason, Lit l, int pos_l) {
  cp_reason_.clear();
  cp_cands_.clear();
  cp_reason_degree_ = 0;
  std::int64_t coef_l = 0;
  const auto load_term = [&](std::int64_t a, Lit t) -> bool {
    if (t == l) {
      coef_l = a;
      return true;
    }
    const Var v = t.var();
    if (value(v) != LBool::Undef && level(v) == 0) {
      if (value(t) == LBool::False) return true;  // strengthen away
      return !add_ov(cp_reason_degree_, -a, &cp_reason_degree_);
    }
    if (value(t) == LBool::False) {
      if (vardata_[static_cast<std::size_t>(v)].trail_pos < pos_l) {
        cp_reason_.push_back({a, t});  // falsified before l: keep
        return true;
      }
      // Falsified AFTER l was propagated: weaken unconditionally, or the
      // resolvent would gain a literal past the analysis walk's cursor
      // and the walk could miss it. (Weakening a false term raises the
      // reason's slack; the loop below re-establishes the guarantee.)
      return !add_ov(cp_reason_degree_, -a, &cp_reason_degree_);
    }
    cp_cands_.push_back({a, t});  // non-false: optional weakening fodder
    return true;
  };
  bool ok = true;
  if (reason.kind == ReasonKind::ClauseRef) {
    cp_reason_degree_ = 1;
    const std::uint32_t* codes = arena_.lit_codes(reason.index);
    const int size = arena_.size(reason.index);
    for (int i = 0; ok && i < size; ++i) {
      ok = load_term(1, Lit::from_code(static_cast<int>(codes[i])));
    }
  } else {
    assert(reason.kind == ReasonKind::PbRef);
    const PbData& pb = pbs_[reason.index];
    cp_reason_degree_ = pb.bound;
    for (const PbTerm& t : pb_terms(pb)) {
      if (!(ok = load_term(t.coeff, t.lit))) break;
    }
  }
  if (!ok || coef_l <= 0 || cp_reason_degree_ <= 0) return false;

  // Weaken candidates (weakest coefficients first — they cost the least
  // strength) until the planned resolvent is guaranteed conflicting:
  // slack is subadditive under the scaled addition, so it suffices that
  //   c1 * slack(resolvent) + c2 * slack(reason) < 0
  // with c1 = coef_l/g, c2 = p/g the cancellation multipliers. Because a
  // fully weakened reason (l plus only falsified-before-l literals,
  // saturated) has slack <= 0, the loop always terminates in a state that
  // satisfies the condition.
  std::sort(cp_cands_.begin(), cp_cands_.end(),
            [](const PbTerm& a, const PbTerm& b) { return a.coeff < b.coeff; });
  const __int128 slack_c = cp_slack_full();  // < 0: analyze_pb's invariant
  const std::int64_t p =
      cp_coef_[static_cast<std::size_t>(l.var())];  // resolvent's ~l weight
  std::size_t weakened = 0;
  for (;;) {
    // Saturate the reason at its current degree.
    if (coef_l > cp_reason_degree_) coef_l = cp_reason_degree_;
    for (PbTerm& t : cp_reason_) t.coeff = std::min(t.coeff, cp_reason_degree_);
    __int128 slack_r =
        static_cast<__int128>(coef_l) - static_cast<__int128>(cp_reason_degree_);
    for (std::size_t i = weakened; i < cp_cands_.size(); ++i) {
      cp_cands_[i].coeff = std::min(cp_cands_[i].coeff, cp_reason_degree_);
      slack_r += cp_cands_[i].coeff;  // non-false terms all count
    }
    const std::int64_t g = std::gcd(p, coef_l);
    const __int128 c1 = coef_l / g;
    const __int128 c2 = p / g;
    if (c1 * slack_c + c2 * slack_r < 0) break;
    if (weakened == cp_cands_.size()) return false;  // unreachable; defensive
    cp_reason_degree_ -= cp_cands_[weakened].coeff;
    ++weakened;
    if (cp_reason_degree_ <= 0) return false;  // degenerated to tautology
  }
  // Emit: l's own term first (analyze_pb reads the coefficient there),
  // then the kept falsified terms and the surviving candidates.
  cp_reason_.insert(cp_reason_.begin(), {coef_l, l});
  cp_reason_.insert(cp_reason_.end(), cp_cands_.begin() + weakened,
                    cp_cands_.end());
  return true;
}

int CdclSolver::cp_backjump_level() {
  // The lowest level b < L at which the resolvent still conflicts or
  // propagates. slack_b counts every term not falsified at levels <= b
  // (unassigned terms and terms assigned above b revert to non-false
  // after backtracking); propagation candidates at b are exactly the
  // terms not assigned at or below b.
  const int L = decision_level();
  std::vector<BjEnt>& ents = cp_bj_ents_;
  ents.clear();
  __int128 total = 0;
  std::int64_t unassigned_max = 0;
  for (const Var v : cp_vars_) {
    const auto vi = static_cast<std::size_t>(v);
    const std::int64_t a = cp_coef_[vi];
    if (a == 0) continue;
    total += a;
    if (value(v) == LBool::Undef) {
      unassigned_max = std::max(unassigned_max, a);
      continue;
    }
    ents.push_back({level(v), a, value(cp_lit_[vi]) == LBool::False});
  }
  std::sort(ents.begin(), ents.end(),
            [](const BjEnt& a, const BjEnt& b) { return a.lvl < b.lvl; });
  std::vector<std::int64_t>& suffix_max = cp_bj_suffix_;
  suffix_max.assign(ents.size() + 1, 0);
  for (std::size_t i = ents.size(); i-- > 0;) {
    suffix_max[i] = std::max(suffix_max[i + 1], ents[i].coeff);
  }
  __int128 false_below = 0;
  std::size_t i = 0;
  for (int b = 0; b < L; ++b) {
    while (i < ents.size() && ents[i].lvl <= b) {
      if (ents[i].falsified) false_below += ents[i].coeff;
      ++i;
    }
    const __int128 slack_b =
        total - false_below - static_cast<__int128>(cp_degree_);
    const std::int64_t cand = std::max(unassigned_max, suffix_max[i]);
    if (slack_b < 0 || static_cast<__int128>(cand) > slack_b) return b;
  }
  // cp_assertive() held, so b = L-1 must have fired; keep a sane answer.
  return L - 1;
}

CdclSolver::PbOutcome CdclSolver::analyze_pb(Conflict conflict,
                                             PbLearned* out) {
  if (!cp_load(conflict)) return PbOutcome::Fallback;
  if (cp_degree_ <= 0 || !cp_saturate_and_divide()) return PbOutcome::Fallback;
  if (conflict.kind == ReasonKind::PbRef) bump_pb(conflict.index);
  if (cp_slack_full() >= 0) return PbOutcome::Fallback;  // defensive

  int i = static_cast<int>(trail_.size()) - 1;
  int steps = 0;
  while (!cp_assertive()) {
    // Latest trail literal the resolvent depends on (its negation carries
    // a nonzero coefficient).
    while (i >= 0) {
      const auto vi =
          static_cast<std::size_t>(trail_[static_cast<std::size_t>(i)].var());
      if (cp_coef_[vi] != 0 &&
          cp_lit_[vi] == ~trail_[static_cast<std::size_t>(i)]) {
        break;
      }
      --i;
    }
    if (i < 0) return PbOutcome::Fallback;  // defensive: nothing to resolve
    const Lit l = trail_[static_cast<std::size_t>(i)];
    const auto lv = static_cast<std::size_t>(l.var());
    const Reason r = vardata_[lv].reason;
    if (r.kind == ReasonKind::None) {
      // A decision (or assumption pseudo-decision) has no reason to
      // resolve with. Weakening every non-false term out of the resolvent
      // preserves the conflict; if even that does not make it assertive,
      // hand the conflict to the clausal path.
      if (!cp_weaken_nonfalse()) return PbOutcome::Fallback;
      if (cp_assertive()) break;
      return PbOutcome::Fallback;
    }
    if (++steps > config_.pb_max_resolutions) return PbOutcome::Fallback;
    bump_var(l.var());
    if (r.kind == ReasonKind::ClauseRef) {
      bump_clause(r.index);
      touch_learnt(r.index);
    } else {
      bump_pb(r.index);
    }
    if (!cp_reduce_reason(r, l, i)) return PbOutcome::Fallback;

    // Resolve: cp := c1*cp + c2*reason', cancelling var(l). All stored
    // arithmetic is overflow-checked int64; gcd division and saturation
    // right after keep the coefficients from compounding.
    const std::int64_t p = cp_coef_[lv];
    const std::int64_t q = cp_reason_[0].coeff;  // l's own coefficient
    const std::int64_t g = std::gcd(p, q);
    const std::int64_t c1 = q / g;
    const std::int64_t c2 = p / g;
    if (c1 > 1) {
      for (const Var v : cp_vars_) {
        std::int64_t& a = cp_coef_[static_cast<std::size_t>(v)];
        if (a != 0 && mul_ov(a, c1, &a)) return PbOutcome::Fallback;
      }
      if (mul_ov(cp_degree_, c1, &cp_degree_)) return PbOutcome::Fallback;
    }
    std::int64_t scaled_degree = 0;
    if (mul_ov(cp_reason_degree_, c2, &scaled_degree) ||
        add_ov(cp_degree_, scaled_degree, &cp_degree_)) {
      return PbOutcome::Fallback;
    }
    for (const PbTerm& t : cp_reason_) {
      std::int64_t a2 = 0;
      if (mul_ov(t.coeff, c2, &a2)) return PbOutcome::Fallback;
      const auto vi = static_cast<std::size_t>(t.lit.var());
      if (cp_coef_[vi] == 0) {
        if (!cp_in_[vi]) {
          cp_in_[vi] = 1;
          cp_vars_.push_back(t.lit.var());
        }
        cp_coef_[vi] = a2;
        cp_lit_[vi] = t.lit;
      } else if (cp_lit_[vi] == t.lit) {
        if (add_ov(cp_coef_[vi], a2, &cp_coef_[vi])) return PbOutcome::Fallback;
      } else {
        // Opposite literals: a*x + b*~x = min(a,b) + |a-b|*(majority side),
        // so the degree pays min(a,b) and the difference stays.
        const std::int64_t m = std::min(cp_coef_[vi], a2);
        cp_degree_ -= m;
        if (cp_coef_[vi] == a2) {
          cp_coef_[vi] = 0;
        } else if (cp_coef_[vi] > a2) {
          cp_coef_[vi] -= a2;
        } else {
          cp_coef_[vi] = a2 - cp_coef_[vi];
          cp_lit_[vi] = t.lit;
        }
      }
    }
    assert(cp_coef_[lv] == 0);  // exact cancellation of the pivot
    if (cp_degree_ <= 0 || !cp_saturate_and_divide()) {
      return PbOutcome::Fallback;
    }
    assert(cp_slack_full() < 0);
    ++stats_.pb_resolutions;
    --i;
  }

  // Emit the assertive resolvent.
  bool empty = true;
  for (const Var v : cp_vars_) {
    if (cp_coef_[static_cast<std::size_t>(v)] != 0) {
      empty = false;
      break;
    }
  }
  if (empty) return PbOutcome::Unsat;  // 0 >= degree > 0: level-0 conflict

  // Glue equivalent: distinct decision levels among the falsified terms.
  ++lbd_stamp_;
  int glue = 0;
  for (const Var v : cp_vars_) {
    const auto vi = static_cast<std::size_t>(v);
    if (cp_coef_[vi] == 0 || value(cp_lit_[vi]) != LBool::False) continue;
    const int lvl = level(v);
    if (lvl <= 0) continue;
    auto& stamp = lbd_level_stamp_[static_cast<std::size_t>(lvl)];
    if (stamp != lbd_stamp_) {
      stamp = lbd_stamp_;
      ++glue;
    }
  }
  out->glue = std::max(glue, 1);
  out->backjump = cp_backjump_level();
  if (cp_degree_ == 1) {
    // Saturation left every coefficient at 1: the resolvent IS a clause.
    out->is_clause = true;
    out->clause.clear();
    for (const Var v : cp_vars_) {
      const auto vi = static_cast<std::size_t>(v);
      if (cp_coef_[vi] != 0) out->clause.push_back(cp_lit_[vi]);
    }
  } else {
    out->is_clause = false;
    out->terms.clear();
    for (const Var v : cp_vars_) {
      const auto vi = static_cast<std::size_t>(v);
      if (cp_coef_[vi] != 0) out->terms.push_back({cp_coef_[vi], cp_lit_[vi]});
    }
    std::sort(out->terms.begin(), out->terms.end(),
              [](const PbTerm& a, const PbTerm& b) {
                if (a.coeff != b.coeff) return a.coeff > b.coeff;
                return a.lit.code() < b.lit.code();
              });
    out->degree = cp_degree_;
  }
  return PbOutcome::Learned;
}

std::uint32_t CdclSolver::attach_learned_pb(std::span<const PbTerm> terms,
                                            std::int64_t degree, int glue) {
  assert(!terms.empty());
  const std::uint32_t index = attach_pb_row(terms, degree);
  PbData& pb = pbs_[index];
  pb.activity = static_cast<float>(pb_inc_);
  pb.lbd = static_cast<std::uint8_t>(std::min(glue, 255));
  pb.flags = kPbLearnt | kPbUsed;
  ++learnt_count_;
  ++stats_.learned_pbs;
  return index;
}

void CdclSolver::reduce_learned_pbs() {
  if (stats_.learned_pbs == stats_.deleted_pbs) return;  // no learnt rows
  // Rows serving as trail reasons are locked (their slack history is part
  // of the implication graph the next analyses will walk).
  std::vector<char> locked(pbs_.size(), 0);
  for (const Lit l : trail_) {
    const Reason& r = vardata_[static_cast<std::size_t>(l.var())].reason;
    if (r.kind == ReasonKind::PbRef) locked[r.index] = 1;
  }
  // Same tier policy as the clause DB: core glue is immortal, mid glue
  // survives while used since the previous reduction, the rest is sorted
  // by activity and the colder half dropped.
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t idx = 0; idx < pbs_.size(); ++idx) {
    PbData& pb = pbs_[idx];
    if (!(pb.flags & kPbLearnt)) continue;
    if (pb.lbd <= config_.tier_core_lbd) continue;
    if (pb.lbd <= config_.tier_mid_lbd) {
      if ((pb.flags & kPbUsed) || locked[idx]) {
        pb.flags &= ~kPbUsed;
        continue;
      }
      ++stats_.tier_demotions;
    } else if (locked[idx]) {
      pb.flags &= ~kPbUsed;
      continue;
    }
    pb.flags &= ~kPbUsed;
    candidates.push_back(idx);
  }
  const std::size_t drop = candidates.size() / 2;
  if (drop == 0) return;
  std::sort(candidates.begin(), candidates.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return pbs_[a].activity < pbs_[b].activity;
            });
  for (std::size_t k = 0; k < drop; ++k) {
    pbs_[candidates[k]].flags |= kPbDeleted;
    ++stats_.deleted_pbs;
    --learnt_count_;
  }
  // Compact rows, the shared term pool and the occurrence lists, then
  // remap trail reasons — the PB analog of garbage_collect(). Cached
  // slacks move with their rows; incremental maintenance carries on.
  constexpr std::uint32_t kDead = 0xFFFFFFFFu;
  std::vector<std::uint32_t> old2new(pbs_.size(), kDead);
  std::vector<PbData> fresh;
  fresh.reserve(pbs_.size() - drop);
  std::vector<PbTerm> fresh_terms;
  fresh_terms.reserve(pb_terms_.size());
  for (std::uint32_t idx = 0; idx < pbs_.size(); ++idx) {
    const PbData& pb = pbs_[idx];
    if (pb.flags & kPbDeleted) continue;
    old2new[idx] = static_cast<std::uint32_t>(fresh.size());
    PbData moved = pb;
    moved.terms_begin = static_cast<std::uint32_t>(fresh_terms.size());
    const PbTerm* src = pb_terms_.data() + pb.terms_begin;
    fresh_terms.insert(fresh_terms.end(), src, src + pb.terms_len);
    fresh.push_back(moved);
  }
  pbs_ = std::move(fresh);
  pb_terms_ = std::move(fresh_terms);
  pb_occs_.rebuild([&](std::size_t, PbOcc& occ) {
    if (old2new[occ.pb_index] == kDead) return false;
    occ.pb_index = old2new[occ.pb_index];
    return true;
  });
  for (const Lit l : trail_) {
    Reason& r = vardata_[static_cast<std::size_t>(l.var())].reason;
    if (r.kind == ReasonKind::PbRef) r.index = old2new[r.index];
  }
}

void CdclSolver::analyze_final(Lit failed) {
  // `failed` is a pending assumption whose complement the assumption
  // prefix taken so far already implies. Walk the implication graph from
  // ~failed back to pseudo-decisions: every reason-less trail literal
  // reached is one of the earlier assumptions this conflict rests on
  // (assumption-taking happens before any branch decision, so at this
  // point every open decision level is an assumption level).
  core_.clear();
  core_.push_back(failed);
  if (decision_level() == 0) return;  // implied by root units alone
  seen_[static_cast<std::size_t>(failed.var())] = 1;
  const int start = trail_lim_[0];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= start; --i) {
    const Lit p = trail_[static_cast<std::size_t>(i)];
    const auto v = static_cast<std::size_t>(p.var());
    if (!seen_[v]) continue;
    const Reason r = vardata_[v].reason;
    if (r.kind == ReasonKind::None) {
      // Pseudo-decision: `p` is itself one of the caller's assumptions.
      core_.push_back(p);
    } else {
      // Reason literals are falsified strictly before p, so each mark set
      // here sits at a lower trail position and is consumed (and cleared)
      // later in this same backward sweep; level-0 literals carry no
      // assumption dependency and are skipped.
      for_each_reason_lit(r, p, [&](Lit q) {
        if (level(q.var()) > 0) seen_[static_cast<std::size_t>(q.var())] = 1;
        return true;
      });
    }
    seen_[v] = 0;
  }
  seen_[static_cast<std::size_t>(failed.var())] = 0;
}

bool CdclSolver::lit_redundant(Lit p, std::uint32_t abstract_levels) {
  redundant_stack_.clear();
  redundant_stack_.push_back(p);
  // Marks added during this walk are undone on failure but kept on
  // success: a variable proven reachable-from-redundant stays absorbing
  // for the remaining candidates (memoization across the clause).
  const std::size_t undo_from = analyze_toclear_.size();
  while (!redundant_stack_.empty()) {
    const Lit x = redundant_stack_.back();
    redundant_stack_.pop_back();
    const Reason r = vardata_[static_cast<std::size_t>(x.var())].reason;
    const bool ok = for_each_reason_lit(r, ~x, [&](Lit q) {
      const auto v = static_cast<std::size_t>(q.var());
      if (seen_[v] || level(q.var()) == 0) return true;  // already absorbed
      if (vardata_[v].reason.kind == ReasonKind::None ||
          (abstract_level(q.var()) & abstract_levels) == 0) {
        return false;  // decision, or a level the clause cannot absorb
      }
      seen_[v] = 1;
      analyze_toclear_.push_back(q.var());
      redundant_stack_.push_back(q);
      return true;
    });
    if (!ok) {
      for (std::size_t j = undo_from; j < analyze_toclear_.size(); ++j) {
        seen_[static_cast<std::size_t>(analyze_toclear_[j])] = 0;
      }
      analyze_toclear_.resize(undo_from);
      return false;
    }
  }
  return true;
}

void CdclSolver::minimize_learnt(std::vector<Lit>* learnt) {
  // Re-mark so redundancy checks can consult membership.
  for (const Lit l : *learnt) seen_[static_cast<std::size_t>(l.var())] = 1;
  std::uint32_t abstract_levels = 0;
  if (config_.minimize_recursive) {
    for (std::size_t i = 1; i < learnt->size(); ++i) {
      abstract_levels |= abstract_level((*learnt)[i].var());
    }
  }
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt->size(); ++i) {
    const Lit l = (*learnt)[i];
    const Reason r = vardata_[static_cast<std::size_t>(l.var())].reason;
    bool redundant = r.kind != ReasonKind::None;
    if (redundant) {
      if (config_.minimize_recursive) {
        redundant = lit_redundant(l, abstract_levels);
      } else {
        // Redundant iff every reason literal is already in the clause or
        // at level 0; the visitor aborts at the first counterexample.
        redundant = for_each_reason_lit(r, ~l, [&](Lit q) {
          return seen_[static_cast<std::size_t>(q.var())] != 0 ||
                 level(q.var()) == 0;
        });
      }
    }
    if (redundant) {
      ++stats_.minimized_literals;
    } else {
      (*learnt)[keep++] = l;
    }
  }
  // Clear the re-marks before resizing (cover dropped literals too).
  for (const Lit l : *learnt) seen_[static_cast<std::size_t>(l.var())] = 0;
  learnt->resize(keep);
}

void CdclSolver::backtrack(int target_level) {
  if (decision_level() <= target_level) return;
  const int bound = trail_lim_[static_cast<std::size_t>(target_level)];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    const Lit p = trail_[static_cast<std::size_t>(i)];
    const auto v = static_cast<std::size_t>(p.var());
    if (!pbs_.empty()) {
      // Restore PB slack for the literal that stops being false.
      const Lit falsified = ~p;
      for (const PbOcc& occ :
           pb_occs_.row(static_cast<std::size_t>(falsified.code()))) {
        pbs_[occ.pb_index].slack += occ.coeff;
      }
    }
    if (config_.phase_saving) polarity_[v] = p.negated() ? 0 : 1;
    assigns_[v] = LBool::Undef;
    lit_values_[static_cast<std::size_t>(p.code())] = LBool::Undef;
    lit_values_[static_cast<std::size_t>((~p).code())] = LBool::Undef;
    vardata_[v].reason = {ReasonKind::None, kInvalidClauseRef};
    order_.insert(p.var());
  }
  trail_.resize(static_cast<std::size_t>(bound));
  trail_lim_.resize(static_cast<std::size_t>(target_level));
  qhead_ = bound;
}

void CdclSolver::lazy_root_backtrack() {
  backtrack(0);
  prev_asms_.clear();
}

void CdclSolver::exit_backtrack() {
  // Retain the assumption-level prefix across the solve() return: levels
  // 1..retain mirror the call's first `retain` assumptions (prev_asms_ was
  // set to the call's mapped assumption vector at entry), and each is a
  // propagation fixpoint — qhead_ never jumps forward, so nothing pending
  // below the truncation point is skipped. With reuse off this degrades to
  // the classic eager backtrack(0).
  int retain = 0;
  if (config_.reuse_trail) {
    retain = std::min(decision_level(), static_cast<int>(prev_asms_.size()));
  }
  backtrack(retain);
  prev_asms_.resize(static_cast<std::size_t>(retain));
}

Lit CdclSolver::pick_branch() {
  if (config_.random_branch_freq > 0.0 &&
      rng_.uniform() < config_.random_branch_freq) {
    // Uniform random unassigned variable (diversification).
    const int n = num_vars();
    for (int tries = 0; tries < 16; ++tries) {
      const Var v =
          static_cast<Var>(rng_.below(static_cast<std::uint64_t>(n)));
      if (value(v) == LBool::Undef &&
          eliminated_[static_cast<std::size_t>(v)] == 0) {
        return Lit(v, polarity_[static_cast<std::size_t>(v)] == 0);
      }
    }
  }
  // Substituted-away variables stay in the heap (it has no remove
  // operation) and are skipped here: they occur in no live constraint, so
  // branching on them would spend decisions deciding nothing.
  while (!order_.empty()) {
    const Var v = order_.pop_max();
    if (value(v) == LBool::Undef &&
        eliminated_[static_cast<std::size_t>(v)] == 0) {
      const bool phase_true = config_.phase_saving
                                  ? polarity_[static_cast<std::size_t>(v)] != 0
                                  : config_.default_phase;
      return Lit(v, !phase_true);
    }
  }
  return kUndefLit;
}

void CdclSolver::bump_var(Var v) {
  std::vector<double>& activity = order_.scores();
  activity[static_cast<std::size_t>(v)] += var_inc_;
  if (activity[static_cast<std::size_t>(v)] > 1e100) {
    for (double& a : activity) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_.update(v);
}

void CdclSolver::bump_clause(ClauseRef cref) {
  if (!arena_.learnt(cref)) return;
  const float bumped =
      arena_.activity(cref) + static_cast<float>(clause_inc_);
  arena_.set_activity(cref, bumped);
  if (bumped > 1e20f) {
    for (ClauseRef cr = 0; cr != arena_.end_ref(); cr = arena_.next(cr)) {
      if (arena_.learnt(cr)) {
        arena_.set_activity(cr, arena_.activity(cr) * 1e-20f);
      }
    }
    clause_inc_ *= 1e-20;
  }
}

void CdclSolver::decay_activities() {
  var_inc_ /= config_.var_decay;
  clause_inc_ /= config_.clause_decay;
  pb_inc_ /= config_.clause_decay;
}

void CdclSolver::bump_pb(std::uint32_t pb_index) {
  PbData& pb = pbs_[pb_index];
  if (!(pb.flags & kPbLearnt)) return;
  pb.flags |= kPbUsed;
  pb.activity += static_cast<float>(pb_inc_);
  if (pb.activity > 1e20f) {
    for (PbData& other : pbs_) {
      if (other.flags & kPbLearnt) other.activity *= 1e-20f;
    }
    pb_inc_ *= 1e-20;
  }
}

int CdclSolver::compute_clause_lbd(ClauseRef cref) {
  ++lbd_stamp_;
  int lbd = 0;
  const std::uint32_t* codes = arena_.lit_codes(cref);
  const int size = arena_.size(cref);
  for (int i = 0; i < size; ++i) {
    const int lvl = level(Lit::from_code(static_cast<int>(codes[i])).var());
    if (lvl <= 0) continue;
    auto& stamp = lbd_level_stamp_[static_cast<std::size_t>(lvl)];
    if (stamp != lbd_stamp_) {
      stamp = lbd_stamp_;
      ++lbd;
    }
  }
  return lbd;
}

void CdclSolver::touch_learnt(ClauseRef cref) {
  if (!arena_.learnt(cref)) return;
  // The used flag doubles as a recompute throttle: LBD is re-measured at
  // most once per clause per reduce cycle (first touch), which keeps the
  // O(|clause|) scan off the steady-state analysis path.
  if (arena_.used(cref)) return;
  arena_.set_used(cref);
  const int stored = arena_.lbd(cref);
  // Core clauses cannot improve in tier; skip the recomputation. All
  // literals of a conflict/reason clause are assigned here, so levels are
  // fresh (touch_learnt is only called from analyze()).
  if (stored <= config_.tier_core_lbd) return;
  const int fresh = compute_clause_lbd(cref);
  if (fresh < stored) {
    arena_.set_lbd(cref, fresh);
    ++stats_.tier_promotions;
  }
}

void CdclSolver::update_restart_emas(int lbd) {
  const auto x = static_cast<double>(lbd);
  if (!lbd_ema_seeded_) {
    // Seed both averages with the first observation instead of pulling
    // them up from zero (which would block restarts for thousands of
    // conflicts while the slow EMA warms).
    lbd_ema_fast_ = x;
    lbd_ema_slow_ = x;
    lbd_ema_seeded_ = true;
    return;
  }
  lbd_ema_fast_ += config_.restart_ema_fast * (x - lbd_ema_fast_);
  lbd_ema_slow_ += config_.restart_ema_slow * (x - lbd_ema_slow_);
}

void CdclSolver::maybe_block_restart(std::int64_t conflicts_this_restart) {
  // Glucose-style restart blocking, evaluated AT the conflict (the trail
  // is still at conflict depth here — both sides of the comparison see
  // conflict-time sizes): when a restart is pending on the LBD-EMA
  // condition but this conflict's trail runs much deeper than conflicts
  // typically do, the search is plausibly filling in a model — defuse the
  // pending restart by pulling the fast EMA back to the long-run mean
  // instead of restarting.
  if (config_.restart_scheme != RestartScheme::Adaptive ||
      !config_.restart_blocking || !trail_ema_seeded_ || !lbd_ema_seeded_ ||
      conflicts_this_restart < config_.adaptive_min_conflicts) {
    return;
  }
  if (lbd_ema_fast_ > config_.restart_margin * lbd_ema_slow_ &&
      static_cast<double>(trail_.size()) > config_.block_margin * trail_ema_) {
    ++stats_.blocked_restarts;
    lbd_ema_fast_ = lbd_ema_slow_;
  }
}

void CdclSolver::maybe_export(std::span<const Lit> learnt, int lbd) {
  if (hooks_.sharing == nullptr || lbd > config_.share_max_lbd ||
      learnt.size() > static_cast<std::size_t>(config_.share_max_size)) {
    return;
  }
  // Only count clauses the (bounded) exchange actually accepted.
  if (hooks_.sharing->export_clause(hooks_.worker_id, learnt, lbd)) {
    ++stats_.exported_clauses;
  }
}

void CdclSolver::maybe_export_pb(std::span<const PbTerm> terms,
                                 std::int64_t degree, int glue) {
  // Same admission caps as clause exports: glue-tier currency, bounded
  // width. Weakening-mode workers never reach this (they learn clauses
  // only), so the PB lane carries traffic exactly when a cutting-planes
  // worker is in the race.
  if (hooks_.sharing == nullptr || glue > config_.share_max_lbd ||
      terms.size() > static_cast<std::size_t>(config_.share_max_size)) {
    return;
  }
  if (hooks_.sharing->export_pb(hooks_.worker_id, terms, degree, glue)) {
    ++stats_.exported_pbs;
  }
}

bool CdclSolver::drain_imports() {
  assert(decision_level() == 0);
  if (config_.fault_injection.poison_import) {
    // Deterministic stand-in for a foreign constraint that kills the
    // importer (e.g. overflow during normalization); fires at the first
    // import boundary, which is the solve() entry drain.
    throw std::runtime_error("fault injection: poisoned import");
  }
  import_buf_.clear();
  hooks_.sharing->import_clauses(hooks_.worker_id, &hooks_.import_cursor,
                                 &import_buf_);
  for (SharedClause& sc : import_buf_) {
    // Importer-side admission control: the exporter filtered on ITS caps,
    // which (after reconfigure-based diversification) need not match ours.
    // Re-check glue and size against this solver's thresholds and count
    // what gets turned away.
    if (sc.lbd > config_.share_max_lbd ||
        sc.lits.size() > static_cast<std::size_t>(config_.share_max_size)) {
      ++stats_.rejected_imports;
      continue;
    }
    ++stats_.imported_clauses;
    // Learnt clauses are consequences of the shared formula (conflict
    // analysis never resolves on assumption pseudo-decisions), so a
    // foreign clause is added exactly like a problem clause: simplified
    // against the level-0 assignment, unit-propagated if forcing — and a
    // clause that is empty or all-false under the level-0 assignment
    // derives level-0 unsatisfiability (add_clause clears ok_), which the
    // `false` return surfaces to solve() instead of silently attaching a
    // falsified record. Glue imports would be core-tier anyway, so
    // attaching them as permanent clauses loses nothing to reduce_db().
    if (!add_clause(std::move(sc.lits))) return false;
  }
  // Learned PB rows travel the same way. add_pb re-normalizes the row and
  // runs the full level-0 admission logic: clause/unit degeneration,
  // contradiction and conflicting-under-level-0 detection (ok_ cleared,
  // surfaced through the false return), initial propagation.
  pb_import_buf_.clear();
  hooks_.sharing->import_pbs(hooks_.worker_id, &hooks_.pb_import_cursor,
                             &pb_import_buf_);
  for (SharedPb& sp : pb_import_buf_) {
    if (sp.lbd > config_.share_max_lbd ||
        sp.terms.size() > static_cast<std::size_t>(config_.share_max_size)) {
      ++stats_.rejected_imports;
      continue;
    }
    PbConstraint imported;
    try {
      // Remap into the representative alphabet BEFORE normalization so the
      // re-normalization below (and not an uncaught throw inside add_pb's
      // own remap) is the only overflow surface; terms whose variables
      // merged since the exporter published collapse here.
      if (!reconstruction_.empty()) {
        for (PbTerm& t : sp.terms) t.lit = map_lit(t.lit);
      }
      imported = PbConstraint::at_least(std::move(sp.terms), sp.degree);
    } catch (const std::overflow_error&) {
      // The exporter's arithmetic was overflow-checked, but re-normalizing
      // against this importer still sums coefficients; refuse rather than
      // attach anything inexact.
      ++stats_.rejected_imports;
      continue;
    }
    ++stats_.imported_pbs;
    if (!add_pb(std::move(imported))) return false;
  }
  return true;
}

bool CdclSolver::clause_locked(ClauseRef cref) const {
  const Lit first = arena_.lit(cref, 0);
  const VarData& vd = vardata_[static_cast<std::size_t>(first.var())];
  return value(first) == LBool::True &&
         vd.reason.kind == ReasonKind::ClauseRef && vd.reason.index == cref;
}

void CdclSolver::reduce_db() {
  // LBD-tiered retention (Glucose lineage):
  //   core  — glue clauses (lbd <= tier_core_lbd) and binaries: immortal;
  //   mid   — lbd <= tier_mid_lbd, kept while used since the previous
  //           reduction, demoted to the local pool otherwise;
  //   local — everything else, sorted by activity, less active half dropped
  //           (locked clauses are retained regardless).
  std::vector<ClauseRef> candidates;
  std::int64_t core = 0;
  std::int64_t mid = 0;
  std::int64_t local_locked = 0;
  for (ClauseRef cr = 0; cr != arena_.end_ref(); cr = arena_.next(cr)) {
    if (!arena_.learnt(cr)) continue;
    const Tier tier = clause_tier(cr);
    if (tier == Tier::Core) {
      ++core;
      continue;
    }
    if (tier == Tier::Mid) {
      if (arena_.used(cr) || clause_locked(cr)) {
        arena_.clear_used(cr);  // must earn its keep again by next cycle
        ++mid;
        continue;
      }
      ++stats_.tier_demotions;
    } else if (clause_locked(cr)) {
      // Locked local clauses survive but still reset their touch throttle,
      // or their LBD would never be recomputed again.
      arena_.clear_used(cr);
      ++local_locked;
      continue;
    }
    arena_.clear_used(cr);
    candidates.push_back(cr);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](ClauseRef a, ClauseRef b) {
              return arena_.activity(a) < arena_.activity(b);
            });
  const std::size_t drop = candidates.size() / 2;
  stats_.tier_core = core;
  stats_.tier_mid = mid;
  stats_.tier_local = local_locked +
                      static_cast<std::int64_t>(candidates.size() - drop);
  if (drop > 0) {  // nothing to compact otherwise; skip the arena copy
    for (std::size_t i = 0; i < drop; ++i) {
      arena_.set_deleted(candidates[i]);
      --learnt_count_;
      ++stats_.deleted_clauses;
    }
    garbage_collect();
  }
  // Learned PB constraints go through the same tier policy against their
  // own storage (rows + term pool + occurrence lists).
  reduce_learned_pbs();
}

void CdclSolver::garbage_collect() {
  // Compact live clauses into a fresh arena, then remap every stored
  // ClauseRef (watch lists and trail reasons) through the forwarding
  // pointers the relocation left behind. Deleted clauses are simply not
  // copied, so no tombstones survive into the next propagation.
  //
  // Tier-partitioned layout: survivors are relocated in three passes —
  // problem clauses + core-tier learnts first, then mid, then local — so
  // each retention tier lands in one contiguous arena segment. The hot
  // tier (problem + glue clauses, which every conflict-heavy propagation
  // touches) packs into the lowest addresses and stays cache-resident
  // while the churny local tier is swept in and out behind it. Multi-pass
  // sweeping needs no arena support beyond what single-pass used:
  // relocate() is idempotent per record (relocated bit + forwarding ref)
  // and leaves the old header's size/learnt/LBD bits intact, so later
  // passes still classify records and step next() over ones already moved.
  ClauseArena to;
  to.reserve(arena_.words());
  const auto sweep = [&](auto&& want) {
    for (ClauseRef cr = 0; cr != arena_.end_ref(); cr = arena_.next(cr)) {
      if (arena_.deleted(cr) || arena_.relocated(cr)) continue;
      if (want(cr)) arena_.relocate(cr, &to);
    }
  };
  sweep([&](ClauseRef cr) {
    return !arena_.learnt(cr) || clause_tier(cr) == Tier::Core;
  });
  sweep([&](ClauseRef cr) { return clause_tier(cr) == Tier::Mid; });
  sweep([](ClauseRef) { return true; });  // local tier — the remainder
  // Remap surviving watchers through the forwarding refs while rebuilding
  // each pool: one pass both drops dead entries and restores the
  // garbage-free CSR layout (rows in literal order, zero slack).
  const auto remap = [&](std::size_t, Watcher& w) {
    if (arena_.deleted(w.cref)) return false;
    w.cref = arena_.forward(w.cref);
    return true;
  };
  watches_.rebuild(remap);
  bin_watches_.rebuild(remap);
  for (const Lit l : trail_) {
    Reason& reason = vardata_[static_cast<std::size_t>(l.var())].reason;
    if (reason.kind == ReasonKind::ClauseRef) {
      reason.index = arena_.forward(reason.index);
    }
  }
  arena_ = std::move(to);
  ++stats_.arena_collections;
}

TierCounts CdclSolver::learned_tier_counts() const {
  TierCounts tc;
  for (ClauseRef cr = 0; cr != arena_.end_ref(); cr = arena_.next(cr)) {
    if (!arena_.learnt(cr) || arena_.deleted(cr)) continue;
    switch (clause_tier(cr)) {
      case Tier::Core: ++tc.core; break;
      case Tier::Mid: ++tc.mid; break;
      case Tier::Local: ++tc.local; break;
    }
  }
  return tc;
}

void CdclSolver::maybe_reduce() {
  const bool reduce_now =
      config_.reduce_scheme == ReduceScheme::ConflictInterval
          ? stats_.conflicts >= next_reduce_conflicts_
          : static_cast<double>(learnt_count_) >= max_learnts_;
  if (!reduce_now) return;
  reduce_db();
  if (config_.reduce_scheme == ReduceScheme::ConflictInterval) {
    // Linear back-off (CaDiCaL lineage): each completed round earns the
    // DB a longer leash before the next one.
    ++reduce_rounds_;
    next_reduce_conflicts_ = stats_.conflicts + config_.reduce_interval_base +
                             config_.reduce_interval_inc * reduce_rounds_;
  } else {
    max_learnts_ *= 1.2;
  }
}

bool CdclSolver::on_restart(const SolveBudget& budget,
                            std::span<const Lit> assumptions,
                            std::span<const Lit>* asms) {
  // Everything below is root-level work. A retained-trail solve entry
  // arrives here above level 0: skip the whole round — the first real
  // restart unwinds to level 0 and catches up on the same schedules.
  if (decision_level() != 0) return true;
  // Absorb clauses other portfolio workers published. At level 0 imports
  // take the ordinary root-clause path; deriving level-0 unsat from a
  // foreign clause ends the search outright.
  if (hooks_.sharing != nullptr && !drain_imports()) {
    ok_ = false;
    return false;
  }
  // Restart-boundary inprocessing (sat/inprocess.h): on the conflict
  // schedule, run a budgeted simplification round — level 0 is the one
  // point where deleting and rewriting constraints is sound. The round
  // runs under a child slice of the caller's budget, so its propagation
  // work both honors the caller's deadline and (being counted in
  // stats_.propagations) burns down the caller's prop cap.
  if (config_.inprocess != InprocessMode::Off &&
      stats_.conflicts >= next_inprocess_conflicts_) {
    const SolveBudget slice =
        budget.child(0.0, 0, config_.inprocess_prop_budget);
    Inprocessor(*this).run(slice);
    ++inprocess_rounds_done_;
    next_inprocess_conflicts_ =
        stats_.conflicts + config_.inprocess_interval_base +
        config_.inprocess_interval_inc * inprocess_rounds_done_;
    if (!ok_) return false;
    if (!reconstruction_.empty()) {
      mapped_assumptions_.assign(assumptions.begin(), assumptions.end());
      for (Lit& a : mapped_assumptions_) a = map_lit(a);
      *asms = mapped_assumptions_;
    }
  }
  // Refresh the trail-reuse bookkeeping for this solve's exit retention:
  // a substitution round above remaps the assumption alphabet, and a
  // mid-solve import's add_clause path clears prev_asms_ through the lazy
  // backtrack — both are repaired here, at level 0, where retention state
  // is vacuous and reassignment is always sound.
  if (config_.reuse_trail) prev_asms_.assign(asms->begin(), asms->end());
  // NO reduce here: the reduce cadence lives in the inner search loop
  // (maybe_reduce()); an extra boundary check would fire rounds slightly
  // earlier and shift the search trajectory for no benefit.
  return true;
}

SolveResult CdclSolver::budget_exit(BudgetTrip trip) {
  last_trip_ = trip;
  switch (trip) {
    case BudgetTrip::Deadline: ++stats_.deadline_exits; break;
    case BudgetTrip::Conflicts: ++stats_.conflict_budget_exits; break;
    case BudgetTrip::Propagations: ++stats_.prop_budget_exits; break;
    case BudgetTrip::Interrupt: ++stats_.interrupt_exits; break;
    case BudgetTrip::None: break;
  }
  exit_backtrack();
  return SolveResult::Unknown;
}

SolveResult CdclSolver::solve(const SolveBudget& budget,
                              std::span<const Lit> assumptions) {
  // The core is an artifact of one Unsat-under-assumptions answer; every
  // other outcome leaves it empty (Unsat with an empty core means the
  // formula is unsatisfiable regardless of assumptions).
  core_.clear();
  last_trip_ = BudgetTrip::None;
  if (!ok_) return SolveResult::Unsat;
  // Entry poll: a budget that is already interrupted or expired preempts
  // the solve before any work — the in-loop cadence alone would let an
  // instance that finishes in under one poll interval slip through.
  if (const BudgetTrip entry_trip = budget.poll();
      entry_trip != BudgetTrip::None) {
    return budget_exit(entry_trip);
  }
  // Rebuild hooks for the flat pools: incremental add_clause/add_pb since
  // the last solve appended through the growth path; re-compact to CSR
  // order so the search starts from a garbage-free layout. (Pool layout
  // only — slacks and assignments are untouched, so a retained trail can
  // stand through a compaction; in practice a dirty pool implies add_pb
  // ran, whose lazy backtrack already cleared any retained trail.)
  if (pb_occs_dirty_) {
    pb_occs_.compact();
    pb_occs_dirty_ = false;
  }
  if (watches_.sparse()) watches_.compact();
  if (bin_watches_.sparse()) bin_watches_.compact();
  for (const Lit a : assumptions) {
    if (!a.valid() || a.var() >= num_vars()) return SolveResult::Unsat;
  }
  // Internal view of the caller's assumptions: once a Full inprocessing
  // round has merged variables, assumption literals must be taken in the
  // representative alphabet. Refreshed from the ORIGINALS (idempotent)
  // after any mid-solve round extends the substitution.
  std::span<const Lit> asms = assumptions;
  if (!reconstruction_.empty()) {
    mapped_assumptions_.assign(assumptions.begin(), assumptions.end());
    for (Lit& a : mapped_assumptions_) a = map_lit(a);
    asms = mapped_assumptions_;
  }
  // Assumption-trail reuse: the previous solve retained its assumption-
  // level prefix (levels 1..k mirror prev_asms_[0..k-1], each a
  // propagation fixpoint); keep the longest prefix matching this call's
  // assumptions and unwind only above it. Any formula mutation since the
  // last solve went through lazy_root_backtrack(), which cleared
  // prev_asms_ — so a nonzero keep certifies the retained levels are a
  // fixpoint of the CURRENT formula under the shared assumption prefix.
  int keep = 0;
  if (config_.reuse_trail) {
    const int limit =
        std::min(decision_level(),
                 std::min(static_cast<int>(prev_asms_.size()),
                          static_cast<int>(asms.size())));
    while (keep < limit &&
           prev_asms_[static_cast<std::size_t>(keep)] ==
               asms[static_cast<std::size_t>(keep)]) {
      ++keep;
    }
  }
  backtrack(keep);
  if (keep > 0) {
    // Everything above the root block survived the re-entry: these are
    // propagations the eager contract would have discarded and re-derived.
    stats_.reused_trail_literals +=
        static_cast<std::int64_t>(trail_.size()) -
        static_cast<std::int64_t>(trail_lim_[0]);
  }
  prev_asms_.assign(asms.begin(), asms.end());
  // Root propagation absorbs constraints added since the last solve. A
  // retained prefix (keep > 0) is already at fixpoint with nothing added,
  // so the root pass only runs from level 0 — and a conflict there is
  // final. Above level 0 any queue the previous solve left pending (a
  // budgeted exit can retain an enqueued-but-unpropagated literal) is
  // drained by the search loop's first propagate(), where a conflict goes
  // through ordinary analysis instead of being misread as level-0 unsat.
  if (decision_level() == 0 && propagate().valid()) {
    ok_ = false;
    return SolveResult::Unsat;
  }
  // Already-satisfied assumptions open dummy decision levels that assign
  // no variable, so the deepest level can exceed num_vars() by up to
  // |assumptions|; the LBD stamp array must cover that range.
  const std::size_t max_levels =
      static_cast<std::size_t>(num_vars()) + assumptions.size() + 1;
  if (lbd_level_stamp_.size() < max_levels) {
    lbd_level_stamp_.resize(max_levels, 0);
  }

  const bool adaptive = config_.restart_scheme == RestartScheme::Adaptive;
  std::int64_t restart_number = 0;
  std::vector<Lit> learnt;
  PbLearned pl;  // analyze_pb output, hoisted like `learnt` (vector reuse)
  // Counted budgets are hoisted to plain integer compares: the config-level
  // conflict budget and the per-call one combine to whichever is tighter.
  std::int64_t conflict_budget = config_.conflict_budget;
  if (budget.conflict_budget() > 0 &&
      (conflict_budget <= 0 || budget.conflict_budget() < conflict_budget)) {
    conflict_budget = budget.conflict_budget();
  }
  const std::int64_t prop_budget = budget.prop_budget();
  const std::int64_t start_conflicts = stats_.conflicts;
  const std::int64_t start_props = stats_.propagations;
  const std::int64_t fault_after =
      config_.fault_injection.throw_after_conflicts;

  for (;;) {
    // Restart boundary (also the solve entry): import drain, inprocess
    // hook and reduce cadence live behind one helper so the lazy-backtrack
    // entry — which arrives here ABOVE level 0 on a retained trail and
    // must skip all root-level work until the first real restart — cannot
    // order them inconsistently.
    if (!on_restart(budget, assumptions, &asms)) return SolveResult::Unsat;
    // Scheduled restart interval; the adaptive scheme restarts on the
    // LBD-EMA condition instead and ignores the schedule.
    const std::int64_t interval =
        adaptive ? 0
        : config_.restart_scheme == RestartScheme::Luby
            ? luby(restart_number + 1) * config_.restart_base
            : static_cast<std::int64_t>(
                  static_cast<double>(config_.restart_base) *
                  std::pow(config_.restart_growth,
                           static_cast<double>(restart_number)));
    ++restart_number;
    ++stats_.restarts;

    std::int64_t conflicts_this_restart = 0;
    std::int64_t ticks = 0;
    for (;;) {
      // Asynchronous conditions (wall clock, interrupt flag, portfolio
      // stop) ride a coarse cadence — one clock read / atomic load per 256
      // search steps bounds the preemption latency without costing the
      // propagation loop anything measurable.
      if (++ticks % 256 == 0) {
        const BudgetTrip async = budget.poll();
        if (async != BudgetTrip::None) return budget_exit(async);
        if (hooks_.stop != nullptr &&
            hooks_.stop->load(std::memory_order_relaxed)) {
          return budget_exit(BudgetTrip::Interrupt);
        }
      }
      // Counted budgets are two integer compares — checked every step, so
      // they never overshoot by more than one propagate() fixpoint.
      if (conflict_budget > 0 &&
          stats_.conflicts - start_conflicts >= conflict_budget) {
        return budget_exit(BudgetTrip::Conflicts);
      }
      if (prop_budget > 0 &&
          stats_.propagations - start_props >= prop_budget) {
        return budget_exit(BudgetTrip::Propagations);
      }
      Conflict conflict = propagate();
      if (conflict.valid()) {
        // Native PB learning can leave the learned constraint conflicting
        // again at the backjump level; each round of this loop handles one
        // conflict, and a re-conflict re-enters at a strictly lower
        // decision level (so the loop is bounded by the level).
        for (bool reconflict = true; reconflict;) {
          reconflict = false;
          ++stats_.conflicts;
          ++conflicts_this_restart;
          if (fault_after > 0 &&
              stats_.conflicts - start_conflicts >= fault_after) {
            // Deterministic crash point for the portfolio's exception
            // barrier; deliberately mid-search with the trail standing.
            throw std::runtime_error(
                "fault injection: configured conflict count reached");
          }
          if (decision_level() == 0) {
            ok_ = false;
            return SolveResult::Unsat;
          }
          // Sample the conflict-time trail size into the blocking EMA
          // before analysis backtracks it away.
          if (config_.restart_blocking) {
            const auto trail_size = static_cast<double>(trail_.size());
            if (!trail_ema_seeded_) {
              trail_ema_ = trail_size;
              trail_ema_seeded_ = true;
            } else {
              trail_ema_ += config_.block_ema * (trail_size - trail_ema_);
            }
          }
          bool handled = false;
          if (config_.pb_analysis == PbAnalysis::CuttingPlanes &&
              conflict.kind == ReasonKind::PbRef) {
            // Galena-style native PB conflict analysis. Fallback keeps
            // `conflict` untouched, so the clausal path below still sees
            // the original conflicting constraint.
            switch (analyze_pb(conflict, &pl)) {
              case PbOutcome::Unsat:
                ok_ = false;
                return SolveResult::Unsat;
              case PbOutcome::Fallback:
                ++stats_.pb_fallbacks;
                break;
              case PbOutcome::Learned: {
                handled = true;
                stats_.lbd_sum += pl.glue;
                update_restart_emas(pl.glue);
                maybe_block_restart(conflicts_this_restart);
                if (pl.is_clause) maybe_export(pl.clause, pl.glue);
                // Chronological backtracking deliberately does NOT apply
                // to PB-learned outcomes: a PB resolvent assertive at its
                // backjump level need not propagate (or conflict) at any
                // higher level, so stopping at L-1 could stall the search
                // or re-learn the same resolvent; and the degenerate
                // clause path's unit enqueue below assumes every other
                // literal is false at exactly pl.backjump.
                backtrack(pl.backjump);
                if (pl.is_clause && pl.clause.size() == 1) {
                  // Asserting unit: the backjump level is 0 by
                  // construction (a unit propagates at every level).
                  enqueue(pl.clause[0], {ReasonKind::None, kInvalidClauseRef});
                } else if (pl.is_clause) {
                  // Watcher discipline: slot 0 gets the asserting (still
                  // unassigned) literal, slot 1 the highest-level
                  // falsified one — the same shape analyze() emits.
                  std::size_t undef_idx = pl.clause.size();
                  for (std::size_t k = 0; k < pl.clause.size(); ++k) {
                    if (value(pl.clause[k]) == LBool::Undef) {
                      undef_idx = k;
                      break;
                    }
                  }
                  if (undef_idx == pl.clause.size()) {
                    // Every literal is false at the backjump level (the
                    // resolvent conflicts rather than propagates there).
                    // A watched-clause attach would break the watcher
                    // invariant mid-conflict, so store it as a degree-1
                    // PB row — occurrence lists and cached slack are
                    // consistent in any assignment state — and loop on
                    // the fresh conflict.
                    pl.terms.clear();
                    for (const Lit cl : pl.clause) pl.terms.push_back({1, cl});
                    const std::uint32_t idx =
                        attach_learned_pb(pl.terms, 1, pl.glue);
                    conflict = {ReasonKind::PbRef, idx};
                    reconflict = true;
                  } else {
                    std::swap(pl.clause[0], pl.clause[undef_idx]);
                    std::size_t max_idx = 1;
                    for (std::size_t k = 1; k < pl.clause.size(); ++k) {
                      if (level(pl.clause[k].var()) >
                          level(pl.clause[max_idx].var())) {
                        max_idx = k;
                      }
                    }
                    std::swap(pl.clause[1], pl.clause[max_idx]);
                    const ClauseRef cref =
                        attach_clause(pl.clause, /*learnt=*/true);
                    arena_.set_lbd(cref, pl.glue);
                    bump_clause(cref);
                    ++learnt_count_;
                    ++stats_.learned_clauses;
                    enqueue(pl.clause[0], {ReasonKind::ClauseRef, cref});
                  }
                } else {
                  const std::uint32_t idx =
                      attach_learned_pb(pl.terms, pl.degree, pl.glue);
                  maybe_export_pb(pl.terms, pl.degree, pl.glue);
                  const std::int64_t slack = pbs_[idx].slack;
                  if (slack < 0) {
                    conflict = {ReasonKind::PbRef, idx};
                    reconflict = true;
                  } else {
                    for (const PbTerm& t : pb_terms(pbs_[idx])) {
                      if (t.coeff <= slack) break;  // sorted by desc coeff
                      if (value(t.lit) == LBool::Undef) {
                        enqueue(t.lit, {ReasonKind::PbRef, idx});
                      }
                    }
                  }
                }
                break;
              }
            }
          }
          if (!handled) {
            int backjump = 0;
            int lbd = 1;
            analyze(conflict, &learnt, &backjump, &lbd);
            stats_.lbd_sum += lbd;
            update_restart_emas(lbd);
            maybe_block_restart(conflicts_this_restart);
            maybe_export(learnt, lbd);
            // Chronological backtracking (CaDiCaL/MapleLCM): when the
            // 1UIP backjump would discard a long stretch of levels, undo
            // only the conflicting level and assert the learnt clause one
            // level down — the skipped levels' propagations stay standing.
            // Sound here because (a) assignments record their enqueue-time
            // decision level, so the trail stays level-monotone and
            // analyze()/analyze_final()/for_each_reason_lit see the same
            // invariants as eager backjumping; (b) every non-asserting
            // learnt literal sits at level <= backjump <= L-1, so the
            // watcher attach below is shape-identical; (c) assumption
            // levels keep their positional mapping — chrono only removes
            // the top level. Unit learnts are excluded: their reason-less
            // enqueue is only legal at level 0, where analyze_final and
            // the analysis walk both know to stop.
            int target = backjump;
            if (config_.chrono_threshold > 0 && learnt.size() > 1 &&
                decision_level() - backjump > config_.chrono_threshold) {
              target = decision_level() - 1;
              ++stats_.chrono_backtracks;
              stats_.saved_propagations +=
                  trail_lim_[static_cast<std::size_t>(target)] -
                  trail_lim_[static_cast<std::size_t>(backjump)];
            }
            backtrack(target);
            if (learnt.size() == 1) {
              enqueue(learnt[0], {ReasonKind::None, kInvalidClauseRef});
            } else {
              const ClauseRef cref = attach_clause(learnt, /*learnt=*/true);
              arena_.set_lbd(cref, lbd);
              bump_clause(cref);
              enqueue(learnt[0], {ReasonKind::ClauseRef, cref});
              ++learnt_count_;
              ++stats_.learned_clauses;
            }
          }
          decay_activities();
        }
        continue;
      }

      // No conflict: restart, reduce, or decide.
      bool restart_now;
      if (adaptive) {
        // (Restart blocking already ran at conflict time: a blocked
        // restart reset the fast EMA there, so the condition below is
        // false for it by construction.)
        restart_now = conflicts_this_restart >= config_.adaptive_min_conflicts &&
                      lbd_ema_seeded_ &&
                      lbd_ema_fast_ > config_.restart_margin * lbd_ema_slow_;
        if (restart_now) {
          ++stats_.adaptive_restarts;
          // Re-arm: pull the fast average back to the long-run mean so the
          // next interval measures fresh post-restart quality.
          lbd_ema_fast_ = lbd_ema_slow_;
        }
      } else {
        restart_now = conflicts_this_restart >= interval;
      }
      if (restart_now) {
        backtrack(0);
        break;  // restart
      }
      maybe_reduce();

      // Take pending assumptions as pseudo-decisions first.
      Lit next = kUndefLit;
      while (decision_level() < static_cast<int>(asms.size())) {
        const Lit a = asms[static_cast<std::size_t>(decision_level())];
        if (value(a) == LBool::True) {
          new_decision_level();  // already satisfied: dummy level
        } else if (value(a) == LBool::False) {
          // Unsat under assumptions: the prefix taken so far already
          // implies ~a. Extract the failed-assumption core while the
          // implication graph is still standing, then unwind.
          analyze_final(a);
          if (!reconstruction_.empty()) {
            // The walk produced internal (substituted) literals; the core
            // contract promises a subset of the CALLER's assumptions.
            // Keep exactly the originals whose image lies in the internal
            // core — a superset of a minimal core, still jointly unsat.
            std::vector<Lit> internal(core_.begin(), core_.end());
            std::sort(internal.begin(), internal.end());
            core_.clear();
            for (const Lit orig : assumptions) {
              if (std::binary_search(internal.begin(), internal.end(),
                                     map_lit(orig))) {
                core_.push_back(orig);
              }
            }
          }
          // Lazy exit: levels 1..decision_level() are all assumption
          // levels here (the failing assumption was never taken), so the
          // whole standing prefix is retainable for the next call.
          exit_backtrack();
          return SolveResult::Unsat;
        } else {
          next = a;
          break;
        }
      }
      if (!next.valid()) {
        next = pick_branch();
        if (!next.valid()) {
          // Complete assignment: SAT. Substituted-away variables are not
          // assigned by search; extend_model() derives their values from
          // their representatives.
          model_.assign(assigns_.begin(), assigns_.end());
          if (!reconstruction_.empty()) extend_model();
          // Lazy exit: unwind the branch levels, keep the assumption
          // prefix (model_ was captured above, so the unwind is safe).
          exit_backtrack();
          return SolveResult::Sat;
        }
        ++stats_.decisions;
      }
      new_decision_level();
      enqueue(next, {ReasonKind::None, kInvalidClauseRef});
    }
  }
}

CdclSolver::ProbeResult CdclSolver::probe_assumptions(
    std::span<const Lit> assumptions) {
  ProbeResult result;
  if (!ok_) {
    result.refuted = true;
    return result;
  }
  // Probing branches from a clean root, so discard any trail prefix a
  // previous solve() retained (and its reuse bookkeeping with it).
  lazy_root_backtrack();
  if (propagate().valid()) {
    ok_ = false;  // level-0 conflict: unsat outright
    result.refuted = true;
    return result;
  }
  const int root = static_cast<int>(trail_.size());
  // Free variables the search could actually branch on: substituted-away
  // variables are neither assigned nor branchable, so they leave the
  // denominator of the forced-fraction easiness estimate.
  result.free_vars =
      num_vars() - root - static_cast<int>(reconstruction_.size());
  for (const Lit raw : assumptions) {
    if (!raw.valid() || raw.var() >= num_vars()) {
      result.refuted = true;
      break;
    }
    const Lit a = map_lit(raw);
    if (value(a) == LBool::False) {
      result.refuted = true;
      break;
    }
    if (value(a) == LBool::True) continue;
    new_decision_level();
    enqueue(a, {ReasonKind::None, kInvalidClauseRef});
    if (propagate().valid()) {
      result.refuted = true;
      break;
    }
  }
  if (!result.refuted) {
    result.forced = static_cast<int>(trail_.size()) - root;
  }
  backtrack(0);
  return result;
}

std::vector<Var> CdclSolver::top_branch_candidates(int k) const {
  std::vector<Var> pool;
  if (k <= 0) return pool;
  pool.reserve(static_cast<std::size_t>(num_vars()));
  for (Var v = 0; v < num_vars(); ++v) {
    if (value(v) == LBool::Undef &&
        eliminated_[static_cast<std::size_t>(v)] == 0) {
      pool.push_back(v);
    }
  }
  const std::vector<double>& activity = order_.scores();
  const auto occurrences = [this](Var v) {
    const auto pos = static_cast<std::size_t>(Lit::positive(v).code());
    const auto neg = static_cast<std::size_t>(Lit::negative(v).code());
    return static_cast<std::size_t>(watches_.size(pos)) +
           static_cast<std::size_t>(watches_.size(neg)) +
           static_cast<std::size_t>(bin_watches_.size(pos)) +
           static_cast<std::size_t>(bin_watches_.size(neg));
  };
  const auto better = [&](Var a, Var b) {
    const double aa = activity[static_cast<std::size_t>(a)];
    const double ab = activity[static_cast<std::size_t>(b)];
    if (aa != ab) return aa > ab;
    const std::size_t oa = occurrences(a);
    const std::size_t ob = occurrences(b);
    if (oa != ob) return oa > ob;
    return a < b;
  };
  const auto take = std::min(pool.size(), static_cast<std::size_t>(k));
  std::partial_sort(pool.begin(),
                    pool.begin() + static_cast<std::ptrdiff_t>(take),
                    pool.end(), better);
  pool.resize(take);
  return pool;
}

}  // namespace symcolor
