#include "sat/cdcl.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sat/luby.h"

namespace symcolor {

CdclSolver::CdclSolver(const Formula& formula, SolverConfig config)
    : config_(config), rng_(config.random_seed) {
  const auto n = static_cast<std::size_t>(formula.num_vars());
  assigns_.assign(n, LBool::Undef);
  lit_values_.assign(2 * n, LBool::Undef);
  vardata_.assign(n, {});
  activity_.assign(n, 0.0);
  polarity_.assign(n, config_.default_phase ? 1 : 0);
  seen_.assign(n, 0);
  watches_.assign(2 * n, {});
  pb_occs_.assign(2 * n, {});

  std::vector<Var> vars(n);
  for (std::size_t v = 0; v < n; ++v) vars[v] = static_cast<Var>(v);
  order_.rebuild(vars);

  ok_ = !formula.trivially_unsat();
  for (const Clause& clause : formula.clauses()) {
    if (!ok_) break;
    add_clause(clause);
  }
  for (const PbConstraint& c : formula.pb_constraints()) {
    if (!ok_) break;
    add_pb(c);
  }
  max_learnts_ =
      config_.max_learnts_init > 0.0
          ? config_.max_learnts_init
          : std::max(2000.0, static_cast<double>(arena_.live_clauses()) / 3.0);
}

bool CdclSolver::add_clause(Clause clause) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  // Simplify against the level-0 assignment.
  Clause simplified;
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  for (std::size_t i = 0; i < clause.size(); ++i) {
    const Lit l = clause[i];
    if (i + 1 < clause.size() && clause[i + 1].var() == l.var()) return true;
    if (value(l) == LBool::True) return true;  // already satisfied
    if (value(l) == LBool::Undef) simplified.push_back(l);
  }
  if (simplified.empty()) {
    ok_ = false;
    return false;
  }
  if (simplified.size() == 1) {
    enqueue(simplified[0], {ReasonKind::None, kInvalidClauseRef});
    if (propagate().valid()) ok_ = false;
    return ok_;
  }
  attach_clause(simplified, /*learnt=*/false);
  return true;
}

bool CdclSolver::add_pb(PbConstraint constraint) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  if (constraint.is_tautology()) return true;
  if (constraint.is_contradiction()) {
    ok_ = false;
    return false;
  }
  if (constraint.is_clause()) {
    Clause clause;
    for (const PbTerm& t : constraint.terms()) clause.push_back(t.lit);
    return add_clause(std::move(clause));
  }
  attach_pb(constraint);
  // The new constraint may already be conflicting or unit under the
  // level-0 assignment; propagate() alone would not notice (no new trail
  // entries), so check it directly.
  const auto pb_index = static_cast<std::uint32_t>(pbs_.size()) - 1;
  if (pbs_[pb_index].slack < 0) {
    ok_ = false;
    return false;
  }
  for (const PbTerm& t : pb_terms(pbs_[pb_index])) {
    if (t.coeff <= pbs_[pb_index].slack) break;
    if (value(t.lit) == LBool::Undef) {
      enqueue(t.lit, {ReasonKind::PbRef, pb_index});
    }
  }
  if (propagate().valid()) ok_ = false;
  return ok_;
}

ClauseRef CdclSolver::attach_clause(std::span<const Lit> lits, bool learnt) {
  assert(lits.size() >= 2);
  const ClauseRef cref = arena_.alloc(lits, learnt);
  const ClauseRef tagged = lits.size() == 2 ? (cref | kBinaryTag) : cref;
  watches_[static_cast<std::size_t>(lits[0].code())].push_back(
      {tagged, lits[1]});
  watches_[static_cast<std::size_t>(lits[1].code())].push_back(
      {tagged, lits[0]});
  return cref;
}

void CdclSolver::attach_pb(const PbConstraint& constraint) {
  PbData data;
  data.terms_begin = static_cast<std::uint32_t>(pb_terms_.size());
  data.terms_len = static_cast<std::uint32_t>(constraint.terms().size());
  data.bound = constraint.bound();
  const auto index = static_cast<std::uint32_t>(pbs_.size());
  std::int64_t slack = -data.bound;
  for (const PbTerm& t : constraint.terms()) {
    pb_terms_.push_back(t);
    pb_occs_[static_cast<std::size_t>(t.lit.code())].push_back(
        {index, t.coeff});
    // Literals already false at level 0 contribute nothing to slack.
    if (value(t.lit) != LBool::False) slack += t.coeff;
  }
  data.slack = slack;
  // Terms arrive sorted by descending coefficient (PbConstraint invariant).
  data.max_coeff = data.terms_len > 0 ? constraint.terms()[0].coeff : 0;
  pbs_.push_back(data);
}

void CdclSolver::enqueue(Lit l, Reason reason) {
  assert(value(l) == LBool::Undef);
  const auto v = static_cast<std::size_t>(l.var());
  assigns_[v] = lbool_of(!l.negated());
  lit_values_[static_cast<std::size_t>(l.code())] = LBool::True;
  lit_values_[static_cast<std::size_t>((~l).code())] = LBool::False;
  vardata_[v].reason = reason;
  vardata_[v].level = decision_level();
  vardata_[v].trail_pos = static_cast<int>(trail_.size());
  trail_.push_back(l);
  if (pbs_.empty()) return;
  // PB slack bookkeeping: literal ~l just became false.
  const Lit falsified = ~l;
  for (const PbOcc& occ : pb_occs_[static_cast<std::size_t>(falsified.code())]) {
    pbs_[occ.pb_index].slack -= occ.coeff;
  }
}

CdclSolver::Conflict CdclSolver::propagate_pb_for(Lit falsified) {
  // Slack was already decremented in enqueue(); here we detect conflicts
  // and propagate forced literals for every constraint containing the
  // falsified literal.
  for (const PbOcc& occ : pb_occs_[static_cast<std::size_t>(falsified.code())]) {
    PbData& pb = pbs_[occ.pb_index];
    if (pb.slack < 0) return {ReasonKind::PbRef, occ.pb_index};
    if (pb.slack >= pb.max_coeff) {
      // No coefficient exceeds the slack: the constraint can neither
      // conflict nor force anything, so skip the term scan entirely.
      ++stats_.pb_short_circuits;
      continue;
    }
    for (const PbTerm& t : pb_terms(pb)) {
      if (t.coeff <= pb.slack) break;  // terms sorted by descending coeff
      if (value(t.lit) == LBool::Undef) {
        enqueue(t.lit, {ReasonKind::PbRef, occ.pb_index});
      }
    }
  }
  return {};
}

CdclSolver::Conflict CdclSolver::propagate() {
  while (qhead_ < static_cast<int>(trail_.size())) {
    const Lit p = trail_[static_cast<std::size_t>(qhead_++)];
    ++stats_.propagations;
    const Lit falsified = ~p;
    const auto fcode = static_cast<std::uint32_t>(falsified.code());

    // --- clause propagation via two watched literals ---
    // ws never grows during the scan (new watches go to other literals'
    // lists — the moved-to literal is non-false, the falsified one is
    // false), so data/size can be hoisted past the push_back aliasing
    // barrier the compiler cannot see through.
    auto& ws = watches_[static_cast<std::size_t>(falsified.code())];
    Watcher* const ws_data = ws.data();
    const std::size_t ws_size = ws.size();
    std::size_t keep = 0;
    for (std::size_t read = 0; read < ws_size; ++read) {
      const Watcher w = ws_data[read];
      if (value(w.blocker) == LBool::True) {
        ws_data[keep++] = w;
        continue;
      }
      if ((w.cref & kBinaryTag) != 0) {
        // Binary clause: the blocker is the other literal, so it is unit
        // or conflicting right now — no arena access needed.
        const ClauseRef cref = w.cref & ~kBinaryTag;
        ws_data[keep++] = w;
        if (value(w.blocker) == LBool::False) {
          for (std::size_t rest = read + 1; rest < ws_size; ++rest) {
            ws_data[keep++] = ws_data[rest];
          }
          ws.resize(keep);
          qhead_ = static_cast<int>(trail_.size());
          return {ReasonKind::ClauseRef, cref};
        }
        enqueue(w.blocker, {ReasonKind::ClauseRef, cref});
        continue;
      }
      std::uint32_t* lits = arena_.lit_codes(w.cref);
      const int size = arena_.size(w.cref);
      // Ensure the falsified literal sits at position 1.
      if (lits[0] == fcode) std::swap(lits[0], lits[1]);
      assert(lits[1] == fcode);
      const Lit first = Lit::from_code(static_cast<int>(lits[0]));
      if (value(first) == LBool::True) {
        ws_data[keep++] = {w.cref, first};
        continue;
      }
      bool moved = false;
      for (int k = 2; k < size; ++k) {
        const Lit lk = Lit::from_code(static_cast<int>(lits[k]));
        if (value(lk) != LBool::False) {
          std::swap(lits[1], lits[k]);
          watches_[static_cast<std::size_t>(lits[1])].push_back(
              {w.cref, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      ws_data[keep++] = w;
      if (value(first) == LBool::False) {
        // Conflict: restore the remaining watchers and report.
        for (std::size_t rest = read + 1; rest < ws_size; ++rest) {
          ws_data[keep++] = ws_data[rest];
        }
        ws.resize(keep);
        qhead_ = static_cast<int>(trail_.size());
        return {ReasonKind::ClauseRef, w.cref};
      }
      enqueue(first, {ReasonKind::ClauseRef, w.cref});
    }
    ws.resize(keep);

    // --- PB propagation ---
    if (!pbs_.empty()) {
      const Conflict conflict = propagate_pb_for(falsified);
      if (conflict.valid()) {
        qhead_ = static_cast<int>(trail_.size());
        return conflict;
      }
    }
  }
  return {};
}

void CdclSolver::collect_reason(Reason reason, Lit implied,
                                std::vector<Lit>* out) const {
  out->clear();
  if (reason.kind == ReasonKind::ClauseRef) {
    const std::uint32_t* codes = arena_.lit_codes(reason.index);
    const int size = arena_.size(reason.index);
    for (int i = 0; i < size; ++i) {
      const Lit l = Lit::from_code(static_cast<int>(codes[i]));
      if (l != implied) out->push_back(l);
    }
    return;
  }
  assert(reason.kind == ReasonKind::PbRef);
  const PbData& pb = pbs_[reason.index];
  // Clausal weakening of the PB implication: the false literals of the
  // constraint entail `implied` (or a conflict when implied is undef).
  // For a reason (not a conflict) only literals falsified strictly before
  // the implied literal may participate, or analyze() would deadlock.
  const int implied_pos =
      implied.valid()
          ? vardata_[static_cast<std::size_t>(implied.var())].trail_pos
          : static_cast<int>(trail_.size());
  for (const PbTerm& t : pb_terms(pb)) {
    if (t.lit == implied) continue;
    if (value(t.lit) != LBool::False) continue;
    if (vardata_[static_cast<std::size_t>(t.lit.var())].trail_pos >=
        implied_pos) {
      continue;
    }
    out->push_back(t.lit);
  }
}

void CdclSolver::analyze(Conflict conflict, std::vector<Lit>* learnt,
                         int* backjump) {
  learnt->clear();
  learnt->push_back(kUndefLit);  // slot for the asserting (1UIP) literal

  std::vector<Lit>& reason_lits = analyze_stack_;
  reason_lits.clear();
  if (conflict.kind == ReasonKind::ClauseRef) {
    bump_clause(conflict.index);
    const std::uint32_t* codes = arena_.lit_codes(conflict.index);
    const int size = arena_.size(conflict.index);
    reason_lits.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) {
      reason_lits.push_back(Lit::from_code(static_cast<int>(codes[i])));
    }
  } else {
    collect_reason({conflict.kind, conflict.index}, kUndefLit, &reason_lits);
  }

  // Marks stay set for the whole analysis (a current-level variable can
  // appear in several reasons and must only be counted once); they are
  // cleared in one sweep at the end.
  std::vector<Var> to_clear;
  int counter = 0;
  Lit p = kUndefLit;
  int index = static_cast<int>(trail_.size()) - 1;
  for (;;) {
    for (const Lit q : reason_lits) {
      const auto v = static_cast<std::size_t>(q.var());
      if (seen_[v] || level(q.var()) == 0) continue;
      seen_[v] = 1;
      to_clear.push_back(q.var());
      bump_var(q.var());
      if (level(q.var()) >= decision_level()) {
        ++counter;
      } else {
        learnt->push_back(q);
      }
    }
    // Walk back to the next marked trail literal.
    while (!seen_[static_cast<std::size_t>(
        trail_[static_cast<std::size_t>(index)].var())]) {
      --index;
    }
    p = trail_[static_cast<std::size_t>(index)];
    --index;
    --counter;
    if (counter == 0) break;
    const Reason r = vardata_[static_cast<std::size_t>(p.var())].reason;
    assert(r.kind != ReasonKind::None);
    if (r.kind == ReasonKind::ClauseRef) {
      bump_clause(r.index);
    }
    collect_reason(r, p, &reason_lits);
  }
  (*learnt)[0] = ~p;

  stats_.learned_literals += static_cast<std::int64_t>(learnt->size());
  if (config_.minimize_learned) minimize_learnt(learnt);

  // Compute the backjump level: second-highest level in the clause.
  if (learnt->size() == 1) {
    *backjump = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt->size(); ++i) {
      if (level((*learnt)[i].var()) > level((*learnt)[max_i].var())) max_i = i;
    }
    std::swap((*learnt)[1], (*learnt)[max_i]);
    *backjump = level((*learnt)[1].var());
  }

  for (const Var v : to_clear) seen_[static_cast<std::size_t>(v)] = 0;
}

void CdclSolver::minimize_learnt(std::vector<Lit>* learnt) {
  // Re-mark so redundancy checks can consult membership.
  for (const Lit l : *learnt) seen_[static_cast<std::size_t>(l.var())] = 1;
  std::size_t keep = 1;
  std::vector<Lit> reason_lits;
  for (std::size_t i = 1; i < learnt->size(); ++i) {
    const Lit l = (*learnt)[i];
    const Reason r = vardata_[static_cast<std::size_t>(l.var())].reason;
    bool redundant = r.kind != ReasonKind::None;
    if (redundant) {
      collect_reason(r, ~l, &reason_lits);
      for (const Lit q : reason_lits) {
        if (!seen_[static_cast<std::size_t>(q.var())] && level(q.var()) > 0) {
          redundant = false;
          break;
        }
      }
    }
    if (redundant) {
      ++stats_.minimized_literals;
    } else {
      (*learnt)[keep++] = l;
    }
  }
  // Clear the re-marks before resizing (cover dropped literals too).
  for (const Lit l : *learnt) seen_[static_cast<std::size_t>(l.var())] = 0;
  learnt->resize(keep);
}

void CdclSolver::backtrack(int target_level) {
  if (decision_level() <= target_level) return;
  const int bound = trail_lim_[static_cast<std::size_t>(target_level)];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    const Lit p = trail_[static_cast<std::size_t>(i)];
    const auto v = static_cast<std::size_t>(p.var());
    if (!pbs_.empty()) {
      // Restore PB slack for the literal that stops being false.
      const Lit falsified = ~p;
      for (const PbOcc& occ :
           pb_occs_[static_cast<std::size_t>(falsified.code())]) {
        pbs_[occ.pb_index].slack += occ.coeff;
      }
    }
    if (config_.phase_saving) polarity_[v] = p.negated() ? 0 : 1;
    assigns_[v] = LBool::Undef;
    lit_values_[static_cast<std::size_t>(p.code())] = LBool::Undef;
    lit_values_[static_cast<std::size_t>((~p).code())] = LBool::Undef;
    vardata_[v].reason = {ReasonKind::None, kInvalidClauseRef};
    order_.insert(p.var());
  }
  trail_.resize(static_cast<std::size_t>(bound));
  trail_lim_.resize(static_cast<std::size_t>(target_level));
  qhead_ = bound;
}

Lit CdclSolver::pick_branch() {
  if (config_.random_branch_freq > 0.0 &&
      rng_.uniform() < config_.random_branch_freq) {
    // Uniform random unassigned variable (diversification).
    const int n = num_vars();
    for (int tries = 0; tries < 16; ++tries) {
      const Var v =
          static_cast<Var>(rng_.below(static_cast<std::uint64_t>(n)));
      if (value(v) == LBool::Undef) {
        return Lit(v, polarity_[static_cast<std::size_t>(v)] == 0);
      }
    }
  }
  while (!order_.empty()) {
    const Var v = order_.pop_max();
    if (value(v) == LBool::Undef) {
      const bool phase_true = config_.phase_saving
                                  ? polarity_[static_cast<std::size_t>(v)] != 0
                                  : config_.default_phase;
      return Lit(v, !phase_true);
    }
  }
  return kUndefLit;
}

void CdclSolver::bump_var(Var v) {
  activity_[static_cast<std::size_t>(v)] += var_inc_;
  if (activity_[static_cast<std::size_t>(v)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_.update(v);
}

void CdclSolver::bump_clause(ClauseRef cref) {
  if (!arena_.learnt(cref)) return;
  const float bumped =
      arena_.activity(cref) + static_cast<float>(clause_inc_);
  arena_.set_activity(cref, bumped);
  if (bumped > 1e20f) {
    for (ClauseRef cr = 0; cr != arena_.end_ref(); cr = arena_.next(cr)) {
      if (arena_.learnt(cr)) {
        arena_.set_activity(cr, arena_.activity(cr) * 1e-20f);
      }
    }
    clause_inc_ *= 1e-20;
  }
}

void CdclSolver::decay_activities() {
  var_inc_ /= config_.var_decay;
  clause_inc_ /= config_.clause_decay;
}

bool CdclSolver::clause_locked(ClauseRef cref) const {
  const Lit first = arena_.lit(cref, 0);
  const VarData& vd = vardata_[static_cast<std::size_t>(first.var())];
  return value(first) == LBool::True &&
         vd.reason.kind == ReasonKind::ClauseRef && vd.reason.index == cref;
}

void CdclSolver::reduce_db() {
  // Collect deletable learnt clauses, drop the less active half.
  std::vector<ClauseRef> candidates;
  for (ClauseRef cr = 0; cr != arena_.end_ref(); cr = arena_.next(cr)) {
    if (arena_.learnt(cr) && arena_.size(cr) > 2 && !clause_locked(cr)) {
      candidates.push_back(cr);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](ClauseRef a, ClauseRef b) {
              return arena_.activity(a) < arena_.activity(b);
            });
  const std::size_t drop = candidates.size() / 2;
  if (drop == 0) return;  // nothing to compact; skip the arena copy
  for (std::size_t i = 0; i < drop; ++i) {
    arena_.set_deleted(candidates[i]);
    --learnt_count_;
    ++stats_.deleted_clauses;
  }
  garbage_collect();
}

void CdclSolver::garbage_collect() {
  // Compact live clauses into a fresh arena in layout order, then remap
  // every stored ClauseRef (watch lists and trail reasons) through the
  // forwarding pointers the relocation left behind. Deleted clauses are
  // simply not copied, so no tombstones survive into the next propagation.
  ClauseArena to;
  to.reserve(arena_.words());
  for (ClauseRef cr = 0; cr != arena_.end_ref(); cr = arena_.next(cr)) {
    if (!arena_.deleted(cr)) arena_.relocate(cr, &to);
  }
  for (auto& ws : watches_) {
    std::size_t keep = 0;
    for (const Watcher& w : ws) {
      const ClauseRef raw = w.cref & ~kBinaryTag;
      if (!arena_.deleted(raw)) {
        ws[keep++] = {arena_.forward(raw) | (w.cref & kBinaryTag), w.blocker};
      }
    }
    ws.resize(keep);
  }
  for (const Lit l : trail_) {
    Reason& reason = vardata_[static_cast<std::size_t>(l.var())].reason;
    if (reason.kind == ReasonKind::ClauseRef) {
      reason.index = arena_.forward(reason.index);
    }
  }
  arena_ = std::move(to);
  ++stats_.arena_collections;
}

std::size_t CdclSolver::total_watchers() const {
  std::size_t total = 0;
  for (const auto& ws : watches_) total += ws.size();
  return total;
}

SolveResult CdclSolver::solve(const Deadline& deadline,
                              std::span<const Lit> assumptions) {
  if (!ok_) return SolveResult::Unsat;
  backtrack(0);
  if (propagate().valid()) {
    ok_ = false;
    return SolveResult::Unsat;
  }
  for (const Lit a : assumptions) {
    if (!a.valid() || a.var() >= num_vars()) return SolveResult::Unsat;
  }

  std::int64_t restart_number = 0;
  std::vector<Lit> learnt;
  const std::int64_t conflict_budget = config_.conflict_budget;
  const std::int64_t start_conflicts = stats_.conflicts;

  for (;;) {
    const std::int64_t interval =
        config_.restart_scheme == RestartScheme::Luby
            ? luby(restart_number + 1) * config_.restart_base
            : static_cast<std::int64_t>(
                  static_cast<double>(config_.restart_base) *
                  std::pow(config_.restart_growth,
                           static_cast<double>(restart_number)));
    ++restart_number;
    ++stats_.restarts;

    std::int64_t conflicts_this_restart = 0;
    std::int64_t ticks = 0;
    for (;;) {
      if (++ticks % 256 == 0 && deadline.expired()) {
        backtrack(0);
        return SolveResult::Unknown;
      }
      if (conflict_budget > 0 &&
          stats_.conflicts - start_conflicts >= conflict_budget) {
        backtrack(0);
        return SolveResult::Unknown;
      }
      const Conflict conflict = propagate();
      if (conflict.valid()) {
        ++stats_.conflicts;
        ++conflicts_this_restart;
        if (decision_level() == 0) {
          ok_ = false;
          return SolveResult::Unsat;
        }
        int backjump = 0;
        analyze(conflict, &learnt, &backjump);
        backtrack(backjump);
        if (learnt.size() == 1) {
          enqueue(learnt[0], {ReasonKind::None, kInvalidClauseRef});
        } else {
          const ClauseRef cref = attach_clause(learnt, /*learnt=*/true);
          bump_clause(cref);
          enqueue(learnt[0], {ReasonKind::ClauseRef, cref});
          ++learnt_count_;
          ++stats_.learned_clauses;
        }
        decay_activities();
        continue;
      }

      // No conflict: restart, reduce, or decide.
      if (conflicts_this_restart >= interval) {
        backtrack(0);
        break;  // restart
      }
      if (static_cast<double>(learnt_count_) >= max_learnts_) {
        reduce_db();
        max_learnts_ *= 1.2;
      }

      // Take pending assumptions as pseudo-decisions first.
      Lit next = kUndefLit;
      while (decision_level() < static_cast<int>(assumptions.size())) {
        const Lit a = assumptions[static_cast<std::size_t>(decision_level())];
        if (value(a) == LBool::True) {
          new_decision_level();  // already satisfied: dummy level
        } else if (value(a) == LBool::False) {
          backtrack(0);
          return SolveResult::Unsat;  // unsat under assumptions
        } else {
          next = a;
          break;
        }
      }
      if (!next.valid()) {
        next = pick_branch();
        if (!next.valid()) {
          // Complete assignment: SAT.
          model_.assign(assigns_.begin(), assigns_.end());
          backtrack(0);
          return SolveResult::Sat;
        }
        ++stats_.decisions;
      }
      new_decision_level();
      enqueue(next, {ReasonKind::None, kInvalidClauseRef});
    }
  }
}

}  // namespace symcolor
