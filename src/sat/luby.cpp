#include "sat/luby.h"

namespace symcolor {

std::int64_t luby(std::int64_t i) {
  // MiniSat's formulation, 0-based index x = i - 1. Returns 2^seq where
  // seq is the recursion depth at which x sits in the sequence.
  std::int64_t x = i - 1;
  std::int64_t size = 1;
  std::int64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return 1LL << seq;
}

}  // namespace symcolor
