#pragma once
// Cube generation and the cube work queue of the cube-and-conquer engine
// (sat/cube_solver.h).
//
// A *cube* is a conjunction of literals that carves out one branch of the
// search space; the engine solves each cube as extra assumptions stacked
// on top of the caller's own, so refuting every cube in a partition
// refutes the formula and any single Sat cube yields a model. Cubes ride
// the assumption substrate unchanged: workers call the ordinary
// solve(budget, assumptions) and a refuted cube reports the subset of its
// literals that mattered through last_core() — which is what powers
// core-driven sibling pruning in the scheduler.
//
// Generation is propagation-count lookahead (the classic cube-and-conquer
// recipe, March/Treengeling style, scaled down): branch candidates come
// from the top of the solver's own VSIDS activity heap (seeded by a short
// warmup solve), each candidate is probed in both phases under unit
// propagation, and the branch variable chosen maximizes the *minimum*
// forced count over the two phases — split where BOTH children simplify.
// A probe that refutes one phase is a failed literal: the other phase is
// forced, and the cube strengthens for free without splitting. Cutoffs:
// fixed depth plus an estimated-hardness heuristic (a branch that already
// forces a configured fraction of the free variables is emitted as a leaf
// — it is easy enough to finish in one worker slice).
//
// CubeSource/CubeSink is the scheduler's queue seam: CubeQueue is the
// in-process implementation (mutex + condvar work deque with outstanding-
// work tracking and predicate pruning), and a later PR can put the same
// interface in front of a cross-process work queue — cubes are plain
// literal vectors, trivially serializable — without the workers changing
// shape. That is the sharding story.

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "cnf/literals.h"
#include "sat/cdcl.h"

namespace symcolor {

/// One branch of the search-space partition.
struct Cube {
  /// The branch literals, assumed in order after the caller's assumptions.
  std::vector<Lit> lits;
  /// Split generations behind this cube (resplits of stuck cubes count);
  /// the scheduler stops re-splitting past a configured depth.
  int depth = 0;
};

/// Producer side of the cube queue.
class CubeSink {
 public:
  virtual ~CubeSink() = default;
  virtual void push(Cube cube) = 0;
};

/// Consumer side of the cube queue. A popped cube is *in flight* until the
/// worker calls finish() for it exactly once; splitting a cube means
/// push()ing its children before finish()ing the parent, so the
/// outstanding count never touches zero while work remains.
class CubeSource {
 public:
  virtual ~CubeSource() = default;
  /// Block until a cube is available (true), every outstanding cube has
  /// finished (false — the partition is exhausted), or stop() was called
  /// (false). Spurious wakeups are handled internally.
  [[nodiscard]] virtual bool pop(Cube* out) = 0;
  /// The most recently popped cube reached a terminal state (refuted,
  /// split-and-redealt, or abandoned). Must be called exactly once per
  /// successful pop(); a worker re-dealing a cube pushes first.
  virtual void finish() = 0;
  /// Cancel: wake every blocked pop() and make all future pops fail.
  virtual void stop() = 0;
};

/// In-process cube queue: FIFO deque under one mutex, with outstanding-
/// work tracking for exhaustion detection and predicate pruning for
/// core-driven sibling refutation. FIFO order is what makes deterministic
/// mode reproducible — cubes are solved in deal order.
class CubeQueue final : public CubeSource, public CubeSink {
 public:
  void push(Cube cube) override {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(cube));
      ++outstanding_;
    }
    cv_.notify_one();
  }

  [[nodiscard]] bool pop(Cube* out) override {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] {
      return stopped_ || !queue_.empty() || outstanding_ == 0;
    });
    if (stopped_ || queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  void finish() override {
    bool drained = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      drained = --outstanding_ == 0;
    }
    if (drained) cv_.notify_all();
  }

  void stop() override {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

  /// Remove every *queued* cube matching `pred` (in-flight cubes are
  /// untouchable — their workers own them). Returns how many were removed;
  /// each removed cube counts as finished. This is the sibling-pruning
  /// hook: when a cube refutes with core C, every queued sibling whose
  /// literal set contains C is unsatisfiable by the same core and need
  /// never be solved.
  std::size_t prune(const std::function<bool(const Cube&)>& pred) {
    bool drained = false;
    std::size_t removed = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto keep_end =
          std::remove_if(queue_.begin(), queue_.end(), pred);
      removed = static_cast<std::size_t>(queue_.end() - keep_end);
      queue_.erase(keep_end, queue_.end());
      outstanding_ -= removed;
      drained = removed > 0 && outstanding_ == 0;
    }
    if (drained) cv_.notify_all();
    return removed;
  }

  [[nodiscard]] std::size_t outstanding() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return outstanding_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Cube> queue_;
  /// Queued + in-flight cubes; zero means the partition is exhausted.
  std::size_t outstanding_ = 0;
  bool stopped_ = false;
};

/// Lookahead knobs (mirrors the cube_* fields of SolverConfig).
struct CubeGenOptions {
  int depth = 4;
  int candidates = 8;
  double easy_frac = 0.3;
  /// Safety bound on the emitted frontier; expansion stops once reached.
  std::size_t max_cubes = 4096;
};

struct CubeGenStats {
  /// probe_assumptions() calls issued.
  std::int64_t probes = 0;
  /// Branches closed at generation time because the probe refuted them
  /// under unit propagation (sound refutations, but without a core: when
  /// the caller passed its own assumptions, an all-cubes-Unsat answer must
  /// fall back to the full assumption set as its core).
  std::int64_t refuted_branches = 0;
  /// Failed-literal strengthenings (one phase refuted, the other forced).
  std::int64_t failed_literals = 0;
  /// The root prefix itself refuted under propagation.
  bool root_refuted = false;
};

/// Outcome of splitting one cube.
struct SplitResult {
  /// Zero, one (failed literal / unsplittable-as-is) or two children, the
  /// probe solver's saved-phase branch first. Empty with refuted unset
  /// means no unassigned branch candidate exists.
  std::vector<Cube> children;
  /// Forced-literal count of each child's probe, aligned with children.
  std::vector<int> forced;
  /// The cube itself refutes under unit propagation (children is empty).
  bool refuted = false;
};

/// Split `cube` (solved under `base` caller assumptions) on the best
/// lookahead candidate drawn from `probe`'s activity heap. `probe` is used
/// for propagation probes only and is left quiescent; any CdclSolver that
/// has seen the formula works — the generator uses the warmed-up master,
/// the scheduler re-splits stuck cubes on the worker that got stuck (whose
/// activities reflect that cube's own search).
[[nodiscard]] SplitResult split_cube(CdclSolver& probe,
                                     std::span<const Lit> base,
                                     const Cube& cube,
                                     const CubeGenOptions& options,
                                     CubeGenStats* stats);

/// Breadth-first lookahead expansion to options.depth: the cube frontier
/// for the scheduler to deal. Returns an empty vector when the root prefix
/// refutes (stats->root_refuted) or every branch refuted under propagation
/// — the caller must fall back to a plain solve to produce a proper
/// certificate/core. Deterministic given the probe solver's state.
[[nodiscard]] std::vector<Cube> generate_cubes(CdclSolver& probe,
                                               std::span<const Lit> base,
                                               const CubeGenOptions& options,
                                               CubeGenStats* stats);

}  // namespace symcolor
