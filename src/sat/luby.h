#pragma once
// The Luby restart sequence 1,1,2,1,1,2,4,... used by the CDCL engine.

#include <cstdint>

namespace symcolor {

/// i-th element (1-based) of the Luby sequence.
std::int64_t luby(std::int64_t i);

}  // namespace symcolor
