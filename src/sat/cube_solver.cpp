#include "sat/cube_solver.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace symcolor {

CubeAndConquerSolver::CubeAndConquerSolver(const Formula& formula,
                                           SolverConfig config)
    : config_(config),
      master_(std::make_unique<CdclSolver>(formula, config)) {}

CubeAndConquerSolver::CubeAndConquerSolver(const CubeAndConquerSolver& other)
    : config_(other.config_),
      master_(std::make_unique<CdclSolver>(*other.master_)),
      model_(other.model_),
      core_(other.core_),
      stats_(other.stats_),
      agg_stats_(other.agg_stats_),
      last_trip_(other.last_trip_),
      last_cubes_(other.last_cubes_),
      last_refuted_(other.last_refuted_),
      last_pruned_(other.last_pruned_),
      last_splits_(other.last_splits_),
      last_faults_(other.last_faults_),
      last_winner_(other.last_winner_) {}

bool CubeAndConquerSolver::add_clause(Clause clause) {
  return master_->add_clause(std::move(clause));
}

bool CubeAndConquerSolver::add_pb(PbConstraint constraint) {
  return master_->add_pb(std::move(constraint));
}

SolveResult CubeAndConquerSolver::adopt_master_result(SolveResult r) {
  stats_ = master_->stats();
  last_trip_ = master_->last_trip();
  if (r == SolveResult::Sat) model_ = master_->model();
  core_.assign(master_->last_core().begin(), master_->last_core().end());
  last_winner_ = r == SolveResult::Unknown ? -1 : 0;
  return r;
}

SolveResult CubeAndConquerSolver::solve_on_master(
    const SolveBudget& budget, std::span<const Lit> assumptions) {
  return adopt_master_result(master_->solve(budget, assumptions));
}

SolveResult CubeAndConquerSolver::solve(const SolveBudget& budget,
                                        std::span<const Lit> assumptions) {
  last_cubes_ = last_refuted_ = last_pruned_ = last_splits_ = 0;
  last_faults_ = 0;
  last_winner_ = -1;
  const SolverStats before = master_->stats();
  // Everything the master does this solve (warmup, generation probes, its
  // own cubes) lands in the aggregated view through this delta.
  const auto fold_master = [&] {
    accumulate_stats(&agg_stats_, stats_delta(master_->stats(), before));
  };

  // Fault targeting mirrors the portfolio: a spec aimed at a worker > 0
  // stays armed in config_ (the target clone receives it at spawn) but is
  // stripped off the master so the warmup does not fire it. A spec aimed
  // at worker 0 (or all workers) fires during the master's warmup, where
  // no survivor exists yet — it propagates to the caller, matching the
  // portfolio's no-survivors semantics.
  if (config_.fault_injection.armed() && config_.fault_injection.worker > 0) {
    SolverConfig clean = config_;
    clean.fault_injection = {};
    master_->reconfigure(clean);
  }

  if (const BudgetTrip trip = budget.poll(); trip != BudgetTrip::None) {
    stats_ = master_->stats();
    last_trip_ = trip;
    return SolveResult::Unknown;
  }

  // ---- phase 1: warmup ----
  // A short budgeted master solve answers easy instances outright and
  // seeds the activities/learned clauses the lookahead branches on.
  if (config_.cube_warmup_conflicts > 0) {
    const SolveBudget warm =
        budget.child(0.0, config_.cube_warmup_conflicts, 0);
    const SolveResult r = master_->solve(warm, assumptions);
    if (r != SolveResult::Unknown) {
      fold_master();
      return adopt_master_result(r);
    }
    const BudgetTrip trip = master_->last_trip();
    const BudgetTrip parent = budget.poll();
    if (parent != BudgetTrip::None || trip != BudgetTrip::Conflicts) {
      // The caller's own budget (deadline, interrupt, propagation cap)
      // ended the warmup — only an exhausted warmup conflict slice
      // continues into the cube phase.
      fold_master();
      stats_ = master_->stats();
      last_trip_ = parent != BudgetTrip::None ? parent : trip;
      return SolveResult::Unknown;
    }
  }

  // ---- phase 2: lookahead cube generation on the master ----
  CubeGenOptions gopts;
  gopts.depth = std::max(1, config_.cube_depth);
  gopts.candidates = std::max(1, config_.cube_candidates);
  gopts.easy_frac = config_.cube_easy_frac;
  CubeGenStats gstats;
  std::vector<Cube> cubes =
      generate_cubes(*master_, assumptions, gopts, &gstats);
  if (cubes.empty()) {
    // Root refuted, or every branch closed by propagation: re-derive
    // through a plain solve so the answer carries a properly analyzed
    // core (cheap — propagation alone already refutes).
    const SolveResult r = solve_on_master(budget, assumptions);
    fold_master();
    return r;
  }
  last_cubes_ = cubes.size();

  // ---- phase 3: conquer ----
  const bool deterministic = config_.portfolio_deterministic;
  const int n = deterministic ? 1 : std::max(1, config_.portfolio_threads);
  const int max_depth =
      gopts.depth + std::max(0, config_.cube_max_extra_depth);

  CubeQueue queue;
  for (Cube& c : cubes) queue.push(std::move(c));

  // Worker 0 is the master (its learning persists into the next query);
  // 1..n-1 are diversified clones of the warmed-up master.
  std::vector<std::unique_ptr<CdclSolver>> clones;
  std::vector<CdclSolver*> workers;
  workers.push_back(master_.get());
  const SolverStats clone_base = master_->stats();
  clones.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 1; i < n; ++i) {
    clones.push_back(std::make_unique<CdclSolver>(*master_));
    SolverConfig wc = diversify_config(config_, i);
    if (wc.fault_injection.armed() && wc.fault_injection.worker >= 0 &&
        wc.fault_injection.worker != i) {
      wc.fault_injection = {};
    }
    clones.back()->reconfigure(wc);
    workers.push_back(clones.back().get());
  }

  ClauseExchange exchange(config_.portfolio_buffer, n);
  std::atomic<bool> stop{false};
  std::atomic<int> sat_winner{-1};
  std::atomic<int> unsat_winner{-1};
  std::atomic<bool> tripped{false};
  // Refutations without core attribution (generation probes, resplit
  // probes) poison the per-cube core union: fall back to the full
  // assumption set, which is always a valid core of an Unsat answer.
  std::atomic<bool> core_unattributed{gstats.refuted_branches > 0};
  std::atomic<std::size_t> refuted{0};
  std::atomic<std::size_t> pruned{0};
  std::atomic<std::size_t> splits{0};
  std::mutex shared_mutex;  // guards union_core / whole_core / global_trip
  std::vector<Lit> union_core;  // union of refuted cubes' caller parts
  std::vector<Lit> whole_core;  // core of a cube-free refutation
  BudgetTrip global_trip = BudgetTrip::None;
  std::vector<std::exception_ptr> faults(static_cast<std::size_t>(n));

  const auto run = [&](int i) {
    CdclSolver* solver = workers[static_cast<std::size_t>(i)];
    Cube cube;
    bool in_flight = false;
    try {
      if (!deterministic && n > 1) {
        solver->set_sharing(&exchange, i);
        solver->set_interrupt(&stop);
      }
      std::vector<Lit> combined;
      while (queue.pop(&cube)) {
        in_flight = true;
        combined.assign(assumptions.begin(), assumptions.end());
        combined.insert(combined.end(), cube.lits.begin(), cube.lits.end());
        // Shallow cubes run on a conflict slice so stragglers surface for
        // splitting; past the split horizon a cube runs to completion.
        const bool sliced =
            config_.cube_conflict_slice > 0 && cube.depth < max_depth;
        const SolveBudget slice = budget.child(
            0.0, sliced ? config_.cube_conflict_slice : 0, 0);
        const SolveResult r = solver->solve(slice, combined);

        if (r == SolveResult::Sat) {
          // A model of F + assumptions + cube is a model of the query.
          int expected = -1;
          if (sat_winner.compare_exchange_strong(expected, i)) {
            stop.store(true);
          }
          queue.finish();
          in_flight = false;
          queue.stop();
          return;
        }

        if (r == SolveResult::Unsat) {
          refuted.fetch_add(1, std::memory_order_relaxed);
          // Split the analyzed core between the cube's own literals and
          // the caller's assumptions.
          std::vector<Lit> cube_part;
          std::vector<Lit> assume_part;
          for (const Lit l : solver->last_core()) {
            const bool in_cube = std::find(cube.lits.begin(),
                                           cube.lits.end(),
                                           l) != cube.lits.end();
            (in_cube ? cube_part : assume_part).push_back(l);
          }
          if (cube_part.empty()) {
            // The refutation never leaned on the cube: F under the
            // caller's assumptions alone is unsat — the global answer,
            // with this core.
            {
              const std::lock_guard<std::mutex> lock(shared_mutex);
              int none = -1;
              if (unsat_winner.compare_exchange_strong(none, i)) {
                whole_core = std::move(assume_part);
              }
            }
            stop.store(true);
            queue.finish();
            in_flight = false;
            queue.stop();
            return;
          }
          {
            const std::lock_guard<std::mutex> lock(shared_mutex);
            union_core.insert(union_core.end(), assume_part.begin(),
                              assume_part.end());
          }
          // Core-driven sibling pruning: a queued cube containing every
          // core cube-literal is a superset of a proven-unsat prefix.
          const std::size_t cut = queue.prune([&cube_part](const Cube& sib) {
            for (const Lit l : cube_part) {
              if (std::find(sib.lits.begin(), sib.lits.end(), l) ==
                  sib.lits.end()) {
                return false;
              }
            }
            return true;
          });
          pruned.fetch_add(cut, std::memory_order_relaxed);
          queue.finish();
          in_flight = false;
          continue;
        }

        // Unknown: a slice-bounded conflict trip means a stuck cube (the
        // work-stealing signal); anything else is a global condition.
        const BudgetTrip trip = solver->last_trip();
        const bool global = stop.load() || !sliced ||
                            trip != BudgetTrip::Conflicts ||
                            budget.poll() != BudgetTrip::None;
        if (!global) {
          // Split on THIS worker's activity heap — it reflects exactly
          // the cube's hard core — and re-deal the children.
          CubeGenStats sstats;
          SplitResult split =
              split_cube(*solver, assumptions, cube, gopts, &sstats);
          if (sstats.refuted_branches > 0 && !assumptions.empty()) {
            core_unattributed.store(true);
          }
          if (split.refuted) {
            refuted.fetch_add(1, std::memory_order_relaxed);
            queue.finish();
            in_flight = false;
            continue;
          }
          splits.fetch_add(1, std::memory_order_relaxed);
          if (split.children.empty()) {
            // No free candidate to split on: push past the split horizon
            // so the cube runs to completion on its next deal.
            Cube deep = std::move(cube);
            deep.depth = max_depth;
            queue.push(std::move(deep));
          } else {
            for (Cube& child : split.children) {
              queue.push(std::move(child));
            }
          }
          queue.finish();
          in_flight = false;
          continue;
        }
        // Global budget condition: record the trip and wind the race
        // down, re-dealing the cube so the bookkeeping stays exact.
        {
          const std::lock_guard<std::mutex> lock(shared_mutex);
          if (global_trip == BudgetTrip::None) {
            const BudgetTrip parent = budget.poll();
            global_trip = parent != BudgetTrip::None ? parent : trip;
          }
        }
        tripped.store(true);
        stop.store(true);
        queue.push(std::move(cube));
        queue.finish();
        in_flight = false;
        queue.stop();
        return;
      }
    } catch (...) {
      // Exception barrier: record the death and re-deal the in-flight
      // cube — the partition must stay covered for Unsat to be sound.
      faults[static_cast<std::size_t>(i)] = std::current_exception();
      if (in_flight) {
        queue.push(std::move(cube));
        queue.finish();
      }
    }
  };

  if (n == 1) {
    run(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    try {
      for (int i = 0; i < n; ++i) threads.emplace_back(run, i);
    } catch (...) {
      stop.store(true);
      queue.stop();
      for (std::thread& t : threads) t.join();
      master_->set_sharing(nullptr, 0);
      master_->set_interrupt(nullptr);
      throw;
    }
    for (std::thread& t : threads) t.join();
  }
  master_->set_sharing(nullptr, 0);
  master_->set_interrupt(nullptr);

  // Aggregate every worker's contribution (dead workers' counters are
  // settled once their threads joined; their partial search was real
  // work). Clones copied the master AFTER warmup + generation, so the
  // clone_base snapshot keeps that work single-counted.
  fold_master();
  for (const auto& clone : clones) {
    accumulate_stats(&agg_stats_, stats_delta(clone->stats(), clone_base));
  }

  int fault_count = 0;
  for (const std::exception_ptr& f : faults) fault_count += f != nullptr;
  last_faults_ = fault_count;
  if (fault_count == n) {
    // No survivors: nothing can vouch for an answer.
    std::rethrow_exception(faults[0]);
  }
  if (fault_count > 0) {
    // Injected faults are one-shot, as in the portfolio.
    config_.fault_injection = {};
  }
  if (faults[0]) {
    // Master died mid-cube: rebuild it from a surviving clone (sound —
    // a quiescent clone holds only consequences of the shared formula;
    // any trail prefix the survivor retained across its last cube solve
    // is discarded by reconfigure()'s lazy root backtrack).
    for (int i = 1; i < n; ++i) {
      if (faults[static_cast<std::size_t>(i)]) continue;
      master_ = std::make_unique<CdclSolver>(
          *workers[static_cast<std::size_t>(i)]);
      master_->reconfigure(config_);
      break;
    }
  }

  last_refuted_ = refuted.load();
  last_pruned_ = pruned.load();
  last_splits_ = splits.load();
  // Stamp the schedule counters into both stats views once the winner's
  // stats are chosen below — worker stats never carry cube counters, so
  // the overwrite is the only source.
  const auto stamp_cube_stats = [this] {
    stats_.cubes_dealt = static_cast<std::int64_t>(last_cubes_);
    stats_.cubes_refuted = static_cast<std::int64_t>(last_refuted_);
    stats_.cube_siblings_pruned = static_cast<std::int64_t>(last_pruned_);
    stats_.cube_splits = static_cast<std::int64_t>(last_splits_);
    agg_stats_.cubes_dealt += stats_.cubes_dealt;
    agg_stats_.cubes_refuted += stats_.cubes_refuted;
    agg_stats_.cube_siblings_pruned += stats_.cube_siblings_pruned;
    agg_stats_.cube_splits += stats_.cube_splits;
  };

  const int sat_i = sat_winner.load();
  const int unsat_i = unsat_winner.load();
  if (sat_i >= 0 && unsat_i >= 0) {
    // A model and a whole-space refutation cannot both exist: one of the
    // workers is unsound — fail loudly, as the portfolio does.
    throw std::logic_error("cube workers disagree on SAT/UNSAT");
  }
  if (sat_i >= 0) {
    CdclSolver* win = workers[static_cast<std::size_t>(sat_i)];
    stats_ = win->stats();
    stamp_cube_stats();
    model_ = win->model();
    core_.clear();
    last_trip_ = BudgetTrip::None;
    last_winner_ = sat_i;
    return SolveResult::Sat;
  }
  if (unsat_i >= 0) {
    core_ = std::move(whole_core);
    // The refuter completed its path, so it never faulted and its
    // worker pointer is valid even after a master repair.
    stats_ = workers[static_cast<std::size_t>(unsat_i)]->stats();
    stamp_cube_stats();
    last_trip_ = BudgetTrip::None;
    last_winner_ = unsat_i;
    return SolveResult::Unsat;
  }
  if (!tripped.load() && queue.outstanding() == 0) {
    // Every cube in the partition refuted: the query is Unsat. The core
    // is the union of the per-cube caller parts unless some refutation
    // lacked attribution, where the full assumption set (always a valid
    // core of an Unsat answer) stands in.
    if (assumptions.empty()) {
      core_.clear();
    } else if (core_unattributed.load()) {
      core_.assign(assumptions.begin(), assumptions.end());
    } else {
      std::sort(union_core.begin(), union_core.end(),
                [](Lit a, Lit b) { return a.code() < b.code(); });
      union_core.erase(std::unique(union_core.begin(), union_core.end()),
                       union_core.end());
      core_ = std::move(union_core);
    }
    stats_ = master_->stats();
    stamp_cube_stats();
    last_trip_ = BudgetTrip::None;
    last_winner_ = 0;
    return SolveResult::Unsat;
  }
  // Budget trip (or a wound-down race after faults): Unknown with the
  // recorded global condition.
  stats_ = master_->stats();
  stamp_cube_stats();
  if (global_trip != BudgetTrip::None) {
    last_trip_ = global_trip;
  } else {
    const BudgetTrip parent = budget.poll();
    last_trip_ = parent != BudgetTrip::None ? parent : BudgetTrip::Interrupt;
  }
  last_winner_ = -1;
  return SolveResult::Unknown;
}

}  // namespace symcolor
