#pragma once
// Flat per-literal occurrence pool — the storage behind watch lists and
// PB occurrence lists in the CDCL engine.
//
// A `FlatOccPool<Entry>` replaces `vector<vector<Entry>>` with one
// contiguous slab of entries plus a per-row {offset, size, capacity}
// header. Rows are indexed by literal code. The propagation hot loop
// then walks a single allocation instead of chasing a heap pointer per
// literal, and consecutive rows share cache lines after compaction.
//
// Growth: `push` appends in place while the row has spare capacity;
// a full row is relocated to the end of the slab with doubled capacity
// (amortized O(1) per push). Relocation leaves the old block as garbage,
// so the slab accumulates slack over time.
//
// Compaction: `compact()` (or `rebuild()` with a filter) rewrites the
// slab with rows in index order and capacity == size, which both frees
// the garbage and restores the CSR layout. The CDCL solver compacts
// during `reduce_db()` garbage collection — the same moment clause refs
// are remapped — and before a solve when the slack ratio is high.
//
// Pointer stability: a `push` to row A may reallocate the slab and
// thereby invalidate raw entry pointers into every other row. Hot loops
// that push while scanning (watch moves during propagation) must re-read
// `data(row)` after each push; the scanned row itself never grows during
// a propagation scan (new watches always go to a different literal), so
// its offset and size stay valid throughout.

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace symcolor {

template <typename Entry>
class FlatOccPool {
 public:
  /// Reset to `rows` empty rows and an empty slab.
  void init(std::size_t rows) {
    rows_.assign(rows, {});
    slab_.clear();
    live_ = 0;
  }

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::uint32_t size(std::size_t row) const noexcept {
    return rows_[row].size;
  }
  [[nodiscard]] Entry* data(std::size_t row) noexcept {
    return slab_.data() + rows_[row].offset;
  }
  [[nodiscard]] const Entry* data(std::size_t row) const noexcept {
    return slab_.data() + rows_[row].offset;
  }
  [[nodiscard]] std::span<const Entry> row(std::size_t row) const noexcept {
    return {data(row), rows_[row].size};
  }
  [[nodiscard]] std::span<Entry> row(std::size_t row) noexcept {
    return {data(row), rows_[row].size};
  }

  /// Append to a row; may relocate the row (and reallocate the slab),
  /// invalidating entry pointers into all rows.
  void push(std::size_t row, Entry e) {
    Row& r = rows_[row];
    if (r.size == r.capacity) grow(r);
    slab_[r.offset + r.size++] = e;
    ++live_;
  }

  /// Drop entries past `new_size` (propagation's swap-with-keep tail).
  void truncate(std::size_t row, std::uint32_t new_size) {
    Row& r = rows_[row];
    assert(new_size <= r.size);
    live_ -= r.size - new_size;
    r.size = new_size;
  }

  /// Rewrite the slab with rows in index order, keeping only entries for
  /// which `keep(row_index, entry)` returns true. `keep` may mutate the
  /// entry (ref remapping during GC). Every outstanding entry pointer is
  /// invalidated. Non-empty rows keep ~50% growth headroom: an exact
  /// repack would force the very next push on every row through the
  /// relocation path, which measurably taxes clause learning right after
  /// a reduction.
  template <typename Keep>
  void rebuild(Keep&& keep) {
    std::vector<Entry> fresh;
    fresh.reserve(slab_.size());
    live_ = 0;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      Row& r = rows_[i];
      const auto begin = static_cast<std::uint32_t>(fresh.size());
      for (std::uint32_t k = 0; k < r.size; ++k) {
        Entry e = slab_[r.offset + k];
        if (keep(i, e)) fresh.push_back(e);
      }
      r.offset = begin;
      r.size = static_cast<std::uint32_t>(fresh.size()) - begin;
      r.capacity = r.size == 0 ? 0 : r.size + r.size / 2 + 2;
      fresh.resize(begin + r.capacity);
      live_ += r.size;
    }
    slab_ = std::move(fresh);
  }

  /// Garbage-free CSR layout: rows in index order, zero slack.
  void compact() {
    rebuild([](std::size_t, Entry&) { return true; });
  }

  // ---- occupancy introspection (tests / compaction policy) ----
  /// Entries currently reachable through row headers.
  [[nodiscard]] std::size_t live_entries() const noexcept { return live_; }
  /// Slab cells owned, including relocation garbage and row slack.
  [[nodiscard]] std::size_t slab_slots() const noexcept {
    return slab_.size();
  }
  /// True when more than half the slab is garbage or slack beyond the
  /// structural headroom rebuild() leaves — the solver's cue to compact
  /// outside the regular GC cadence.
  [[nodiscard]] bool sparse() const noexcept {
    return slab_.size() > 2 * live_ + 2 * rows_.size() + 64;
  }

 private:
  struct Row {
    std::uint32_t offset = 0;
    std::uint32_t size = 0;
    std::uint32_t capacity = 0;
  };

  void grow(Row& r) {
    const std::uint32_t new_cap = r.capacity == 0 ? 4 : 2 * r.capacity;
    const auto new_offset = static_cast<std::uint32_t>(slab_.size());
    slab_.resize(slab_.size() + new_cap);
    // The old block (r.capacity cells at r.offset) becomes garbage until
    // the next rebuild()/compact().
    for (std::uint32_t k = 0; k < r.size; ++k) {
      slab_[new_offset + k] = slab_[r.offset + k];
    }
    r.offset = new_offset;
    r.capacity = new_cap;
  }

  std::vector<Entry> slab_;
  std::vector<Row> rows_;
  std::size_t live_ = 0;
};

}  // namespace symcolor
