#include "sat/inprocess.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace symcolor {

// ---- shared root-reduction core ----

RootClauseStatus reduce_clause_at_root(std::span<const Lit> lits,
                                       std::span<const LBool> values,
                                       Clause* reduced) {
  bool touched = false;
  for (const Lit l : lits) {
    if (lit_value(values[static_cast<std::size_t>(l.var())], l.negated()) !=
        LBool::Undef) {
      touched = true;
      break;
    }
  }
  if (!touched) return RootClauseStatus::Unchanged;
  reduced->clear();
  for (const Lit l : lits) {
    const LBool v =
        lit_value(values[static_cast<std::size_t>(l.var())], l.negated());
    if (v == LBool::True) return RootClauseStatus::Satisfied;
    if (v == LBool::Undef) reduced->push_back(l);
  }
  if (reduced->empty()) return RootClauseStatus::Empty;
  if (reduced->size() == 1) return RootClauseStatus::Unit;
  return RootClauseStatus::Shortened;
}

RootPbReduction reduce_pb_at_root(std::span<const PbTerm> terms,
                                  std::int64_t bound,
                                  std::span<const LBool> values) {
  RootPbReduction out;
  std::vector<PbTerm> open;
  open.reserve(terms.size());
  for (const PbTerm& t : terms) {
    const LBool v = lit_value(values[static_cast<std::size_t>(t.lit.var())],
                              t.lit.negated());
    if (v == LBool::True) {
      if (__builtin_sub_overflow(bound, t.coeff, &bound)) {
        throw std::overflow_error("pb root fold: bound underflow");
      }
    } else if (v == LBool::Undef) {
      open.push_back(t);
    }
    // False terms contribute nothing: drop.
  }
  PbConstraint folded = PbConstraint::at_least(std::move(open), bound);
  if (folded.is_tautology()) {
    out.status = RootPbStatus::Satisfied;
    return out;
  }
  if (folded.is_contradiction()) {
    out.status = RootPbStatus::Contradiction;
    return out;
  }
  if (folded.is_clause()) {
    out.status = RootPbStatus::Clause;
    out.constraint = std::move(folded);
    return out;
  }
  out.status = RootPbStatus::Open;
  // Every remaining literal is unassigned, so the row's slack is simply
  // coeff_sum - bound; any coefficient above it forces its literal.
  const std::int64_t slack = folded.coeff_sum() - folded.bound();
  for (const PbTerm& t : folded.terms()) {
    if (t.coeff <= slack) break;  // terms sorted by descending coefficient
    out.forced.push_back(t.lit);
  }
  out.constraint = std::move(folded);
  return out;
}

// ---- CdclSolver entry points (declared in sat/cdcl.h) ----

std::int64_t CdclSolver::inprocess(const SolveBudget& budget) {
  if (config_.inprocess == InprocessMode::Off || !ok_) return 0;
  // The inprocessor requires root level and may substitute variables out
  // of the alphabet, which would invalidate a retained assumption trail —
  // the lazy backtrack discards the prefix and its reuse bookkeeping.
  lazy_root_backtrack();
  Inprocessor ip(*this);
  return ip.run(budget);
}

void CdclSolver::extend_model() {
  // Reverse replay: a representative merged away by a later round is
  // resolved before any variable that was merged onto it, so every read
  // of model_[repr.var()] sees a settled value.
  for (auto it = reconstruction_.rbegin(); it != reconstruction_.rend();
       ++it) {
    model_[static_cast<std::size_t>(it->var)] = lit_value(
        model_[static_cast<std::size_t>(it->repr.var())], it->repr.negated());
  }
}

// ---- Inprocessor ----

std::int64_t Inprocessor::run(const SolveBudget& budget) {
  assert(s_.decision_level() == 0);
  if (!s_.ok_) return 0;
  if (budget.poll() != BudgetTrip::None) return 0;
  // Reach the root propagation fixpoint before touching any storage.
  if (s_.propagate().valid()) {
    s_.ok_ = false;
    return 0;
  }
  clear_root_reasons();
  std::int64_t changes = vivify(budget);
  if (s_.ok_ && s_.config_.inprocess == InprocessMode::Full) {
    changes += substitute();
  }
  if (deleted_ && s_.ok_) {
    // Root units enqueued during the round carry fresh clause/PB reasons;
    // strip them again so the collection below never forwards a ref into
    // a record this round deleted.
    clear_root_reasons();
    s_.garbage_collect();
  }
  ++s_.stats_.inprocess_rounds;
  return changes;
}

void Inprocessor::clear_root_reasons() {
  for (const Lit l : s_.trail_) {
    s_.vardata_[static_cast<std::size_t>(l.var())].reason = {
        CdclSolver::ReasonKind::None, kInvalidClauseRef};
  }
}

void Inprocessor::detach(ClauseRef cref) {
  const std::uint32_t* codes = s_.arena_.lit_codes(cref);
  FlatOccPool<CdclSolver::Watcher>& pool =
      s_.arena_.size(cref) == 2 ? s_.bin_watches_ : s_.watches_;
  for (int w = 0; w < 2; ++w) {
    const auto row = static_cast<std::size_t>(codes[w]);
    CdclSolver::Watcher* data = pool.data(row);
    const std::uint32_t n = pool.size(row);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (data[i].cref == cref) {
        data[i] = data[n - 1];
        pool.truncate(row, n - 1);
        break;
      }
    }
  }
}

void Inprocessor::attach(ClauseRef cref) {
  const std::uint32_t* codes = s_.arena_.lit_codes(cref);
  const Lit l0 = Lit::from_code(static_cast<int>(codes[0]));
  const Lit l1 = Lit::from_code(static_cast<int>(codes[1]));
  FlatOccPool<CdclSolver::Watcher>& pool =
      s_.arena_.size(cref) == 2 ? s_.bin_watches_ : s_.watches_;
  pool.push(static_cast<std::size_t>(l0.code()), {cref, l1});
  pool.push(static_cast<std::size_t>(l1.code()), {cref, l0});
}

void Inprocessor::enqueue_root(Lit l) {
  if (!s_.ok_) return;
  const LBool v = s_.value(l);
  if (v == LBool::True) return;
  if (v == LBool::False) {
    s_.ok_ = false;
    return;
  }
  s_.enqueue(l, {CdclSolver::ReasonKind::None, kInvalidClauseRef});
}

// ---- pass 1: vivification ----

std::int64_t Inprocessor::vivify(const SolveBudget& budget) {
  // Candidate census: problem clauses plus learnts the tier policy would
  // keep anyway (core/mid by current LBD). Vivifying local-tier learnts
  // is wasted propagation — reduce_db is about to delete half of them.
  std::vector<ClauseRef> cands;
  for (ClauseRef cr = 0; cr != s_.arena_.end_ref(); cr = s_.arena_.next(cr)) {
    if (s_.arena_.deleted(cr)) continue;
    if (s_.arena_.learnt(cr) &&
        s_.arena_.lbd(cr) > s_.config_.tier_mid_lbd) {
      continue;
    }
    cands.push_back(cr);
  }
  if (cands.empty()) return 0;

  const std::int64_t start_props = s_.stats_.propagations;
  const std::int64_t prop_cap = s_.config_.inprocess_prop_budget;
  const std::int64_t budget_props = budget.prop_budget();

  // Rotate through the candidate list across rounds: the cursor is an
  // ordinal (stable under GC renumbering), so successive rounds cover
  // successive windows of the DB instead of re-polishing the same prefix.
  const auto count = static_cast<std::uint64_t>(cands.size());
  const std::uint64_t start = s_.viv_cursor_ % count;
  const std::uint64_t cap =
      s_.config_.inprocess_viv_cap > 0
          ? std::min<std::uint64_t>(
                count, static_cast<std::uint64_t>(s_.config_.inprocess_viv_cap))
          : count;
  std::int64_t changes = 0;
  std::uint64_t done = 0;
  for (; done < cap; ++done) {
    if (!s_.ok_) break;
    if ((done & 15u) == 0 && budget.poll() != BudgetTrip::None) break;
    const std::int64_t spent = s_.stats_.propagations - start_props;
    if (prop_cap > 0 && spent >= prop_cap) break;
    if (budget_props > 0 && spent >= budget_props) break;
    changes += vivify_one(cands[(start + done) % count]);
  }
  s_.viv_cursor_ = (start + done) % count;
  return changes;
}

std::int64_t Inprocessor::vivify_one(ClauseRef cref) {
  assert(s_.decision_level() == 0);
  if (s_.arena_.deleted(cref)) return 0;
  const int orig_size = s_.arena_.size(cref);
  const bool learnt = s_.arena_.learnt(cref);
  const int old_lbd = s_.arena_.lbd(cref);
  const float old_act = s_.arena_.activity(cref);

  // The clause must not see itself while its literals are re-propagated.
  detach(cref);

  scratch_.clear();
  {
    const std::uint32_t* codes = s_.arena_.lit_codes(cref);
    for (int i = 0; i < orig_size; ++i) {
      scratch_.push_back(Lit::from_code(static_cast<int>(codes[i])));
    }
  }

  // Assume the negation of each literal in turn. Three exits per literal:
  //   true   — the prefix (or the root) implies it: the clause up to and
  //            including this literal subsumes the original; stop.
  //   false  — the prefix (or the root) refutes it: dead literal, drop.
  //   undef  — take ~l as a decision and propagate; a conflict means the
  //            prefix plus l is already implied by the formula: stop.
  std::vector<Lit> kept;
  kept.reserve(static_cast<std::size_t>(orig_size));
  bool satisfied_at_root = false;
  for (const Lit l : scratch_) {
    const LBool v = s_.value(l);
    if (v == LBool::True) {
      if (s_.level(l.var()) == 0) {
        satisfied_at_root = true;
      } else {
        kept.push_back(l);
      }
      break;
    }
    if (v == LBool::False) continue;
    s_.new_decision_level();
    s_.enqueue(~l, {CdclSolver::ReasonKind::None, kInvalidClauseRef});
    const bool conflicted = s_.propagate().valid();
    kept.push_back(l);
    if (conflicted) break;
  }
  s_.backtrack(0);

  if (satisfied_at_root) {
    s_.arena_.set_deleted(cref);
    if (learnt) --s_.learnt_count_;
    deleted_ = true;
    ++s_.stats_.viv_removed_clauses;
    return 1;
  }
  const auto new_size = static_cast<int>(kept.size());
  if (new_size == orig_size) {
    attach(cref);
    return 0;
  }

  s_.arena_.set_deleted(cref);
  if (learnt) --s_.learnt_count_;
  deleted_ = true;
  if (new_size == 0) {
    // Every literal false at the root: the formula is unsatisfiable.
    s_.ok_ = false;
    ++s_.stats_.viv_removed_clauses;
    return 1;
  }
  ++s_.stats_.vivified_clauses;
  s_.stats_.vivified_literals += orig_size - new_size;
  if (new_size == 1) {
    enqueue_root(kept[0]);
    if (s_.ok_ && s_.propagate().valid()) s_.ok_ = false;
    return orig_size - new_size;
  }
  const ClauseRef fresh = s_.attach_clause(kept, learnt);
  if (learnt) {
    ++s_.learnt_count_;
    s_.arena_.set_lbd(fresh, std::min(old_lbd, new_size));
    s_.arena_.set_activity(fresh, old_act);
  }
  return orig_size - new_size;
}

// ---- pass 2: equivalent-literal substitution ----

std::int64_t Inprocessor::substitute() {
  std::vector<std::pair<Var, Lit>> merges;
  if (!find_equivalences(&merges)) {
    s_.ok_ = false;
    return 0;
  }
  if (merges.empty()) return 0;
  return apply_substitution(merges);
}

bool Inprocessor::find_equivalences(std::vector<std::pair<Var, Lit>>* merges) {
  const auto nodes = static_cast<std::size_t>(2 * s_.num_vars());

  // Binary implication graph over literal codes: a live two-literal
  // clause (a | b) with both variables open at the root contributes
  // ~a -> b and ~b -> a. Clauses touching assigned variables are the
  // vivifier's business, not an equivalence source.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (ClauseRef cr = 0; cr != s_.arena_.end_ref(); cr = s_.arena_.next(cr)) {
    if (s_.arena_.deleted(cr) || s_.arena_.size(cr) != 2) continue;
    const Lit a = s_.arena_.lit(cr, 0);
    const Lit b = s_.arena_.lit(cr, 1);
    if (s_.value(a) != LBool::Undef || s_.value(b) != LBool::Undef) continue;
    edges.emplace_back(static_cast<std::uint32_t>((~a).code()),
                       static_cast<std::uint32_t>(b.code()));
    edges.emplace_back(static_cast<std::uint32_t>((~b).code()),
                       static_cast<std::uint32_t>(a.code()));
  }
  if (edges.empty()) return true;

  // CSR adjacency.
  std::vector<std::uint32_t> head(nodes + 1, 0);
  for (const auto& [f, t] : edges) ++head[f + 1];
  for (std::size_t i = 1; i <= nodes; ++i) head[i] += head[i - 1];
  std::vector<std::uint32_t> adj(edges.size());
  {
    std::vector<std::uint32_t> fill(head.begin(), head.end() - 1);
    for (const auto& [f, t] : edges) adj[fill[f]++] = t;
  }

  // Iterative Tarjan (the implication graph of a hard instance overflows
  // a recursion stack long before it overflows memory).
  constexpr std::uint32_t kUnvisited = 0xFFFFFFFFu;
  std::vector<std::uint32_t> idx(nodes, kUnvisited);
  std::vector<std::uint32_t> low(nodes, 0);
  std::vector<std::uint32_t> comp(nodes, kUnvisited);
  std::vector<char> on_stack(nodes, 0);
  std::vector<std::uint32_t> scc_stack;
  struct Frame {
    std::uint32_t node;
    std::uint32_t edge;
  };
  std::vector<Frame> frames;
  std::uint32_t next_index = 0;
  std::uint32_t next_comp = 0;

  for (std::size_t root = 0; root < nodes; ++root) {
    if (idx[root] != kUnvisited) continue;
    idx[root] = low[root] = next_index++;
    on_stack[root] = 1;
    scc_stack.push_back(static_cast<std::uint32_t>(root));
    frames.push_back({static_cast<std::uint32_t>(root), head[root]});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::uint32_t u = f.node;
      if (f.edge < head[u + 1]) {
        const std::uint32_t v = adj[f.edge++];
        if (idx[v] == kUnvisited) {
          idx[v] = low[v] = next_index++;
          on_stack[v] = 1;
          scc_stack.push_back(v);
          frames.push_back({v, head[v]});
        } else if (on_stack[v]) {
          low[u] = std::min(low[u], idx[v]);
        }
        continue;
      }
      if (low[u] == idx[u]) {
        for (;;) {
          const std::uint32_t w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = 0;
          comp[w] = next_comp;
          if (w == u) break;
        }
        ++next_comp;
      }
      const std::uint32_t lu = low[u];
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().node] = std::min(low[frames.back().node], lu);
      }
    }
  }

  // A literal in the same component as its complement forces l == ~l:
  // the formula is unsatisfiable.
  for (std::size_t v = 0; v < nodes; v += 2) {
    if (comp[v] != kUnvisited && comp[v] == comp[v + 1]) return false;
  }

  // Bucket literal codes by component and merge every class of size >= 2
  // onto its smallest variable. A class and its mirror (the complements)
  // describe the same equivalence; processing only the class whose
  // representative literal is positive commits each variable once.
  std::vector<std::uint32_t> class_size(next_comp, 0);
  for (std::size_t v = 0; v < nodes; ++v) {
    if (comp[v] != kUnvisited) ++class_size[comp[v]];
  }
  std::vector<std::uint32_t> class_off(next_comp + 1, 0);
  for (std::uint32_t c = 0; c < next_comp; ++c) {
    class_off[c + 1] = class_off[c] + class_size[c];
  }
  std::vector<std::uint32_t> by_class(class_off.back());
  {
    std::vector<std::uint32_t> fill(class_off.begin(), class_off.end() - 1);
    for (std::size_t v = 0; v < nodes; ++v) {
      if (comp[v] != kUnvisited) by_class[fill[comp[v]]++] = static_cast<std::uint32_t>(v);
    }
  }
  for (std::uint32_t c = 0; c < next_comp; ++c) {
    const std::uint32_t begin = class_off[c];
    const std::uint32_t end = class_off[c + 1];
    if (end - begin < 2) continue;
    Lit rep = Lit::from_code(static_cast<int>(by_class[begin]));
    for (std::uint32_t i = begin + 1; i < end; ++i) {
      const Lit m = Lit::from_code(static_cast<int>(by_class[i]));
      if (m.var() < rep.var()) rep = m;
    }
    if (rep.negated()) continue;  // the mirror class commits this merge
    for (std::uint32_t i = begin; i < end; ++i) {
      const Lit m = Lit::from_code(static_cast<int>(by_class[i]));
      if (m.var() == rep.var()) continue;
      merges->emplace_back(m.var(), m.negated() ? ~rep : rep);
    }
  }
  return true;
}

std::int64_t Inprocessor::apply_substitution(
    const std::vector<std::pair<Var, Lit>>& merges) {
  // (1) Install the substitution entries; map_lit resolves from here on.
  for (const auto& [v, rep] : merges) {
    s_.subst_[static_cast<std::size_t>(v)] = rep;
  }

  // (2) Dry-run the PB rewrite before committing anything: folding a
  // mapped row can overflow int64 (PbConstraint's normalization is
  // checked), and an aborted half-rewrite would leave the solver torn.
  struct MappedRow {
    RootPbReduction red;
    float activity;
    std::uint8_t lbd;
    std::uint8_t flags;
  };
  std::vector<MappedRow> rows;
  rows.reserve(s_.pbs_.size());
  {
    std::vector<PbTerm> tmp;
    for (const CdclSolver::PbData& pb : s_.pbs_) {
      if (pb.flags & CdclSolver::kPbDeleted) continue;
      tmp.clear();
      for (const PbTerm& t : s_.pb_terms(pb)) {
        tmp.push_back({t.coeff, s_.map_lit(t.lit)});
      }
      try {
        rows.push_back({reduce_pb_at_root(tmp, pb.bound, s_.assigns_),
                        pb.activity, pb.lbd, pb.flags});
      } catch (const std::overflow_error&) {
        // Roll the whole merge back — skipping one substitution round is
        // strictly better than attaching an inexact row.
        for (const auto& [v, rep] : merges) {
          s_.subst_[static_cast<std::size_t>(v)] = Lit::positive(v);
        }
        return 0;
      }
    }
  }

  // (3) Commit the merges: reconstruction stack, elimination marks, and
  // heuristic-state migration (the representative inherits the stronger
  // activity and, with it, that variable's saved phase).
  std::vector<double>& scores = s_.order_.scores();
  for (const auto& [v, rep] : merges) {
    const auto vi = static_cast<std::size_t>(v);
    const auto ri = static_cast<std::size_t>(rep.var());
    s_.eliminated_[vi] = 1;
    s_.reconstruction_.push_back({v, rep});
    ++s_.stats_.replaced_vars;
    if (scores[vi] > scores[ri]) {
      scores[ri] = scores[vi];
      const bool v_true = s_.polarity_[vi] != 0;
      s_.polarity_[ri] = (v_true != rep.negated()) ? 1 : 0;
      if (s_.order_.contains(rep.var())) s_.order_.update(rep.var());
    }
  }
  std::int64_t changes = static_cast<std::int64_t>(merges.size());

  // (4) Rewrite every live clause through the map. Same-width rewrites
  // overwrite literal codes in place; shrinks allocate a fresh record.
  // No per-clause watcher surgery here — step (5) rebuilds the pools
  // from scratch, which is cheaper than N detach/attach round trips.
  std::vector<Lit> pending_units;
  const ClauseRef end = s_.arena_.end_ref();
  for (ClauseRef cr = 0; cr != end; cr = s_.arena_.next(cr)) {
    if (s_.arena_.deleted(cr)) continue;
    const int size = s_.arena_.size(cr);
    std::uint32_t* codes = s_.arena_.lit_codes(cr);
    bool mapped = false;
    for (int i = 0; i < size; ++i) {
      const Lit l = Lit::from_code(static_cast<int>(codes[i]));
      if (s_.map_lit(l) != l) {
        mapped = true;
        break;
      }
    }
    if (!mapped) continue;
    scratch_.clear();
    bool satisfied = false;
    for (int i = 0; i < size && !satisfied; ++i) {
      const Lit ml = s_.map_lit(Lit::from_code(static_cast<int>(codes[i])));
      const LBool v = s_.value(ml);
      if (v == LBool::True) {
        satisfied = true;
      } else if (v == LBool::Undef) {
        scratch_.push_back(ml);
      }
    }
    bool tautology = false;
    if (!satisfied) {
      std::sort(scratch_.begin(), scratch_.end());
      scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                     scratch_.end());
      for (std::size_t i = 0; i + 1 < scratch_.size(); ++i) {
        if (scratch_[i].var() == scratch_[i + 1].var()) {
          tautology = true;
          break;
        }
      }
    }
    const bool learnt = s_.arena_.learnt(cr);
    if (satisfied || tautology) {
      s_.arena_.set_deleted(cr);
      if (learnt) --s_.learnt_count_;
      deleted_ = true;
      ++s_.stats_.viv_removed_clauses;
      ++changes;
      continue;
    }
    if (scratch_.empty()) {
      s_.ok_ = false;
      return changes;
    }
    if (scratch_.size() == 1) {
      pending_units.push_back(scratch_[0]);
      s_.arena_.set_deleted(cr);
      if (learnt) --s_.learnt_count_;
      deleted_ = true;
      ++changes;
      continue;
    }
    if (static_cast<int>(scratch_.size()) == size) {
      for (int i = 0; i < size; ++i) {
        codes[i] = static_cast<std::uint32_t>(
            scratch_[static_cast<std::size_t>(i)].code());
      }
      ++changes;
      continue;
    }
    const int old_lbd = s_.arena_.lbd(cr);
    const float old_act = s_.arena_.activity(cr);
    const ClauseRef fresh = s_.arena_.alloc(scratch_, learnt);
    if (learnt) {
      s_.arena_.set_lbd(
          fresh, std::min(old_lbd, static_cast<int>(scratch_.size())));
      s_.arena_.set_activity(fresh, old_act);
    }
    s_.arena_.set_deleted(cr);
    deleted_ = true;
    s_.stats_.vivified_literals +=
        size - static_cast<std::int64_t>(scratch_.size());
    ++changes;
  }

  // (5) Rebuild both watcher pools from scratch. Sound because the
  // watched literals are ALWAYS clause positions 0/1 (attach puts them
  // there, propagation swaps in place) and every literal of every live
  // clause is root-unassigned after step (4).
  const auto nodes = static_cast<std::size_t>(2 * s_.num_vars());
  s_.watches_.init(nodes);
  s_.bin_watches_.init(nodes);
  for (ClauseRef cr = 0; cr != s_.arena_.end_ref(); cr = s_.arena_.next(cr)) {
    if (s_.arena_.deleted(cr)) continue;
    attach(cr);
  }

  // (6) Rebuild PB storage from the dry-run rows: rows that degenerated
  // to clauses move to clause storage, open rows re-attach with their
  // management metadata (tier/activity) carried over.
  s_.pbs_.clear();
  s_.pb_terms_.clear();
  s_.pb_occs_.init(nodes);
  for (MappedRow& row : rows) {
    switch (row.red.status) {
      case RootPbStatus::Satisfied:
        ++changes;
        break;
      case RootPbStatus::Contradiction:
        s_.ok_ = false;
        return changes;
      case RootPbStatus::Clause: {
        scratch_.clear();
        for (const PbTerm& t : row.red.constraint.terms()) {
          scratch_.push_back(t.lit);
        }
        if (scratch_.size() == 1) {
          pending_units.push_back(scratch_[0]);
        } else {
          const bool learnt = (row.flags & CdclSolver::kPbLearnt) != 0;
          const ClauseRef fresh = s_.attach_clause(scratch_, learnt);
          if (learnt) {
            s_.arena_.set_lbd(fresh, std::max<int>(1, row.lbd));
            s_.arena_.set_activity(fresh, row.activity);
            ++s_.learnt_count_;
          }
        }
        ++changes;
        break;
      }
      case RootPbStatus::Open: {
        const std::uint32_t idx = s_.attach_pb_row(
            row.red.constraint.terms(), row.red.constraint.bound());
        CdclSolver::PbData& pb = s_.pbs_[idx];
        pb.activity = row.activity;
        pb.lbd = row.lbd;
        pb.flags = row.flags;
        for (const Lit f : row.red.forced) pending_units.push_back(f);
        break;
      }
    }
  }

  // (7) Settle the units the rewrite surfaced and re-propagate.
  for (const Lit u : pending_units) {
    enqueue_root(u);
    if (!s_.ok_) return changes;
  }
  if (s_.propagate().valid()) s_.ok_ = false;
  return changes;
}

}  // namespace symcolor
