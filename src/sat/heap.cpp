#include "sat/heap.h"

#include <cassert>

namespace symcolor {

void ActivityHeap::insert(Var v) {
  if (v >= static_cast<Var>(index_.size())) {
    index_.resize(static_cast<std::size_t>(v) + 1, -1);
  }
  if (contains(v)) return;
  heap_.push_back(v);
  index_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
}

void ActivityHeap::update(Var v) {
  if (!contains(v)) return;
  const auto i = static_cast<std::size_t>(index_[static_cast<std::size_t>(v)]);
  sift_up(i);
  sift_down(index_[static_cast<std::size_t>(v)] >= 0
                ? static_cast<std::size_t>(index_[static_cast<std::size_t>(v)])
                : i);
}

Var ActivityHeap::pop_max() {
  assert(!heap_.empty());
  const Var top = heap_.front();
  index_[static_cast<std::size_t>(top)] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    place(0, last);
    sift_down(0);
  }
  return top;
}

void ActivityHeap::rebuild(const std::vector<Var>& vars) {
  heap_.clear();
  for (int& i : index_) i = -1;
  for (Var v : vars) insert(v);
}

void ActivityHeap::sift_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!less(heap_[parent], v)) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, v);
}

void ActivityHeap::sift_down(std::size_t i) {
  const Var v = heap_[i];
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= heap_.size()) break;
    const std::size_t right = left + 1;
    const std::size_t child =
        (right < heap_.size() && less(heap_[left], heap_[right])) ? right : left;
    if (!less(v, heap_[child])) break;
    place(i, heap_[child]);
    i = child;
  }
  place(i, v);
}

}  // namespace symcolor
