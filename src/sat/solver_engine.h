#pragma once
// SolverEngine — the abstract backend interface of the solve pipeline.
//
// Every consumer of SAT/PB solving in this codebase (the 0-1 ILP
// optimization loops in pb/optimizer, the incremental SAT-loop colorer in
// coloring/cnf_coloring, the CLI) drives a solver exclusively through this
// interface: add constraints, solve under assumptions, read the model,
// the failed-assumption core and stats, clone. Assumptions are the
// universal retraction mechanism of the pipeline — every optimization
// loop expresses "objective <= W" as a single assumption on a selector
// ladder and keeps ONE engine (and its learned state) across all probes;
// last_core() is what lets core-guided search lift lower bounds from
// Unsat answers. The two implementations are
//   * CdclSolver (sat/cdcl.h) — the sequential CDCL(+PB) engine, and
//   * PortfolioSolver (sat/portfolio.h) — N diversified CdclSolver workers
//     spawned by cloning one master, racing on threads with core-clause
//     exchange.
// make_solver_engine (sat/portfolio.h) picks between them from
// SolverConfig::portfolio_threads, so a thread-count knob anywhere in the
// pipeline swaps the whole backend without the caller changing shape.
//
// Design constraint: the interface is deliberately coarse — one virtual
// call per solve/add, never per propagation or per conflict. The CDCL hot
// path (propagate/analyze/backtrack) stays in non-virtual private members
// of the concrete solver, so interposing this interface costs nothing
// measurable on propagation throughput.
//
// ClauseSharing is the companion interface a portfolio passes to its
// workers: export_clause() publishes a freshly learnt core-tier clause,
// import_clauses() drains every clause published by other workers since
// the caller's cursor. Workers call it only at learn time (exports are
// throttled to glue clauses, LBD <= SolverConfig::share_max_lbd) and at
// restart boundaries (imports happen at decision level 0, where a plain
// level-0 clause addition is sound), so a mutex-guarded implementation is
// uncontended in practice.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cnf/formula.h"
#include "cnf/literals.h"
#include "util/budget.h"
#include "util/timer.h"

namespace symcolor {

struct SolverConfig;

enum class SolveResult { Sat, Unsat, Unknown };

struct SolverStats {
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t conflicts = 0;
  std::int64_t restarts = 0;
  std::int64_t learned_clauses = 0;
  std::int64_t learned_literals = 0;
  std::int64_t minimized_literals = 0;
  std::int64_t deleted_clauses = 0;
  /// Arena garbage collections performed by reduce_db().
  std::int64_t arena_collections = 0;
  /// PB constraints skipped because slack >= max coefficient.
  std::int64_t pb_short_circuits = 0;

  // ---- LBD / tier activity ----
  /// Sum of LBD values at learn time (lbd_sum / learned_clauses = mean glue).
  std::int64_t lbd_sum = 0;
  /// LBD improvements observed when re-touching learnt clauses in analysis.
  std::int64_t tier_promotions = 0;
  /// Mid-tier clauses demoted to the local pool for going unused between
  /// consecutive reductions.
  std::int64_t tier_demotions = 0;
  /// Per-tier learnt-clause counts recorded by the most recent reduce_db().
  std::int64_t tier_core = 0;
  std::int64_t tier_mid = 0;
  std::int64_t tier_local = 0;

  // ---- restart-mode activity ----
  /// Restarts triggered by the adaptive LBD-EMA condition (a subset of
  /// `restarts`; the remainder followed the Luby/geometric schedule).
  std::int64_t adaptive_restarts = 0;
  /// Adaptive restarts suppressed by the Glucose-style trail-size blocking
  /// heuristic (the worker looked close to a model).
  std::int64_t blocked_restarts = 0;

  // ---- portfolio clause exchange ----
  /// Learnt clauses this solver published to its ClauseSharing sink.
  std::int64_t exported_clauses = 0;
  /// Clauses this solver absorbed from other portfolio workers.
  std::int64_t imported_clauses = 0;
  /// Foreign clauses/PB rows dropped at import time for failing the
  /// importer's own size/LBD caps (share_max_lbd / share_max_size
  /// re-checked on arrival — diversified workers need not trust the
  /// exporter's thresholds).
  std::int64_t rejected_imports = 0;
  /// Learned PB rows (cutting-planes resolvents) this solver published to
  /// its ClauseSharing sink.
  std::int64_t exported_pbs = 0;
  /// Learned PB rows this solver absorbed from other portfolio workers.
  std::int64_t imported_pbs = 0;

  // ---- PB conflict analysis (cutting planes) ----
  /// PB constraints learned by cutting-planes conflict analysis.
  std::int64_t learned_pbs = 0;
  /// Learned PB constraints deleted by reduce_db().
  std::int64_t deleted_pbs = 0;
  /// Cutting-planes resolution steps performed across all analyses.
  std::int64_t pb_resolutions = 0;
  /// PB conflicts where cutting-planes analysis bailed to the clausal
  /// weakening path (coefficient overflow, degenerate resolvent).
  std::int64_t pb_fallbacks = 0;

  // ---- cube-and-conquer scheduling ----
  /// Cubes the lookahead generator dealt to the conquer workers (children
  /// re-dealt by work-stealing splits are counted under cube_splits).
  std::int64_t cubes_dealt = 0;
  /// Cubes refuted — solved Unsat by a worker or killed by a lookahead
  /// probe during a split.
  std::int64_t cubes_refuted = 0;
  /// Queued sibling cubes pruned because a refuted cube's UNSAT core used
  /// only a subset of the cube's literals (core-driven subsumption).
  std::int64_t cube_siblings_pruned = 0;
  /// Stuck cubes split and re-dealt after tripping their conflict slice.
  std::int64_t cube_splits = 0;

  // ---- inprocessing (restart-boundary simplification) ----
  /// Inprocessing rounds completed (vivification, plus SCC substitution
  /// when SolverConfig::inprocess == Full).
  std::int64_t inprocess_rounds = 0;
  /// Clauses shortened by vivification (falsified literals dropped or a
  /// propagation-implied suffix cut off).
  std::int64_t vivified_clauses = 0;
  /// Literals removed from vivified clauses.
  std::int64_t vivified_literals = 0;
  /// Clauses deleted outright by vivification (root-satisfied or
  /// propagation-subsumed rows).
  std::int64_t viv_removed_clauses = 0;
  /// Variables eliminated by equivalent-literal substitution (binary
  /// implication-graph SCC collapse).
  std::int64_t replaced_vars = 0;

  // ---- resource-control exits (which budget ended a solve early) ----
  /// Unknown exits because the wall-clock deadline ran out.
  std::int64_t deadline_exits = 0;
  /// Unknown exits because the conflict budget ran out.
  std::int64_t conflict_budget_exits = 0;
  /// Unknown exits because the propagation budget ran out.
  std::int64_t prop_budget_exits = 0;
  /// Unknown exits because interrupt() fired (async preemption or the
  /// portfolio's cooperative stop flag).
  std::int64_t interrupt_exits = 0;

  // ---- incremental hot path (chronological backtracking + trail reuse) ----
  /// Conflicts resolved by undoing only the conflicting level instead of
  /// jumping all the way back to the 1UIP assertion level.
  std::int64_t chrono_backtracks = 0;
  /// Trail literals kept alive across solve() calls because the new
  /// assumption vector shared a prefix with the previous call's.
  std::int64_t reused_trail_literals = 0;
  /// Trail literals between the 1UIP assertion level and the conflicting
  /// level that a chronological backtrack did not undo — assignments the
  /// solver would otherwise have discarded and re-derived.
  std::int64_t saved_propagations = 0;
};

namespace detail {

/// Apply `f(into_field, from_field)` to every counter pair of two
/// SolverStats. The single enumeration point for field-wise arithmetic —
/// add a counter to SolverStats and the compiler forces it through here.
template <typename F>
void for_each_stat(SolverStats& into, const SolverStats& from, F&& f) {
  f(into.decisions, from.decisions);
  f(into.propagations, from.propagations);
  f(into.conflicts, from.conflicts);
  f(into.restarts, from.restarts);
  f(into.learned_clauses, from.learned_clauses);
  f(into.learned_literals, from.learned_literals);
  f(into.minimized_literals, from.minimized_literals);
  f(into.deleted_clauses, from.deleted_clauses);
  f(into.arena_collections, from.arena_collections);
  f(into.pb_short_circuits, from.pb_short_circuits);
  f(into.lbd_sum, from.lbd_sum);
  f(into.tier_promotions, from.tier_promotions);
  f(into.tier_demotions, from.tier_demotions);
  f(into.tier_core, from.tier_core);
  f(into.tier_mid, from.tier_mid);
  f(into.tier_local, from.tier_local);
  f(into.adaptive_restarts, from.adaptive_restarts);
  f(into.blocked_restarts, from.blocked_restarts);
  f(into.exported_clauses, from.exported_clauses);
  f(into.imported_clauses, from.imported_clauses);
  f(into.rejected_imports, from.rejected_imports);
  f(into.exported_pbs, from.exported_pbs);
  f(into.imported_pbs, from.imported_pbs);
  f(into.learned_pbs, from.learned_pbs);
  f(into.deleted_pbs, from.deleted_pbs);
  f(into.pb_resolutions, from.pb_resolutions);
  f(into.pb_fallbacks, from.pb_fallbacks);
  f(into.cubes_dealt, from.cubes_dealt);
  f(into.cubes_refuted, from.cubes_refuted);
  f(into.cube_siblings_pruned, from.cube_siblings_pruned);
  f(into.cube_splits, from.cube_splits);
  f(into.inprocess_rounds, from.inprocess_rounds);
  f(into.vivified_clauses, from.vivified_clauses);
  f(into.vivified_literals, from.vivified_literals);
  f(into.viv_removed_clauses, from.viv_removed_clauses);
  f(into.replaced_vars, from.replaced_vars);
  f(into.deadline_exits, from.deadline_exits);
  f(into.conflict_budget_exits, from.conflict_budget_exits);
  f(into.prop_budget_exits, from.prop_budget_exits);
  f(into.interrupt_exits, from.interrupt_exits);
  f(into.chrono_backtracks, from.chrono_backtracks);
  f(into.reused_trail_literals, from.reused_trail_literals);
  f(into.saved_propagations, from.saved_propagations);
}

}  // namespace detail

/// Fold `delta` field-wise into `*into`. The parallel engines use this to
/// sum every worker's counters into one aggregated view.
inline void accumulate_stats(SolverStats* into, const SolverStats& delta) {
  detail::for_each_stat(
      *into, delta, [](std::int64_t& a, const std::int64_t b) { a += b; });
}

/// Field-wise `after - before`. Worker clones inherit the master's
/// cumulative counters at clone time; the delta is the work the clone did
/// on its own since.
[[nodiscard]] inline SolverStats stats_delta(SolverStats after,
                                             const SolverStats& before) {
  detail::for_each_stat(
      after, before, [](std::int64_t& a, const std::int64_t b) { a -= b; });
  return after;
}

/// A clause in transit between portfolio workers, tagged with the glue the
/// exporter measured at learn time so the importer can apply its own
/// size/LBD admission caps before attaching.
struct SharedClause {
  Clause lits;
  int lbd = 0;
};

/// A learned PB row in transit between portfolio workers: a cutting-planes
/// resolvent (sum terms >= degree, terms in descending-coefficient order)
/// tagged with its learn-time glue equivalent. Like learnt clauses, these
/// rows are consequences of the shared formula — conflict analysis never
/// resolves on assumption pseudo-decisions — so an importer may attach one
/// as an ordinary level-0 PB addition.
struct SharedPb {
  std::vector<PbTerm> terms;
  std::int64_t degree = 0;
  int lbd = 0;
};

/// Shared clause pool between portfolio workers. Implementations must be
/// safe to call from multiple worker threads concurrently.
class ClauseSharing {
 public:
  virtual ~ClauseSharing() = default;
  /// Publish a learnt clause (already minimized; lbd is its glue at learn
  /// time). `worker` identifies the exporter so it can skip its own
  /// clauses on import. Bounded implementations may drop the clause;
  /// returns whether it was actually accepted into the pool.
  virtual bool export_clause(int worker, std::span<const Lit> lits,
                             int lbd) = 0;
  /// Append every clause published since `*cursor` by a worker other than
  /// `worker` to `out` (with its learn-time glue), and advance the cursor
  /// past them.
  virtual void import_clauses(int worker, std::size_t* cursor,
                              std::vector<SharedClause>* out) = 0;

  /// Publish a learned PB row (a cutting-planes resolvent; terms in
  /// descending-coefficient order, glue measured at learn time). The
  /// default refuses every row, so clause-only sharing implementations
  /// keep working unchanged.
  virtual bool export_pb(int /*worker*/, std::span<const PbTerm> /*terms*/,
                         std::int64_t /*degree*/, int /*lbd*/) {
    return false;
  }
  /// Append every PB row published since `*cursor` by a worker other than
  /// `worker` to `out`, and advance the cursor past them. Default: no-op
  /// (nothing was accepted by the default export_pb).
  virtual void import_pbs(int /*worker*/, std::size_t* /*cursor*/,
                          std::vector<SharedPb>* /*out*/) {}
};

/// Abstract solve backend: incremental constraint addition, assumption
/// solving, model/stats access, and cloning. See the header comment for
/// the layering contract.
class SolverEngine {
 public:
  virtual ~SolverEngine() = default;

  /// Add a clause between solves. A retained assumption trail from the
  /// previous solve() is lazily discarded first (see solve()), so the
  /// addition always happens at level 0. Returns false if the addition
  /// makes the instance trivially unsat.
  virtual bool add_clause(Clause clause) = 0;
  /// Add a PB constraint between solves (same lazy-backtrack entry as
  /// add_clause()).
  virtual bool add_pb(PbConstraint constraint) = 0;

  /// Solve under optional assumptions. Returns Unknown when the budget
  /// ends the solve early — wall clock, conflict or propagation cap, or
  /// an asynchronous interrupt(); last_trip() reports which. Can be called
  /// repeatedly; learned state persists across calls. Quiescence is lazy:
  /// an engine may keep the assumption-implied trail prefix alive across
  /// the return so the next solve() with a shared assumption prefix skips
  /// re-propagating it, but every observable entry point that needs root
  /// state — clone(), inprocess(), add_clause()/add_pb(), reconfigure() —
  /// discards the retained prefix first, so callers see the same behavior
  /// as an eager backtrack-to-0. Retained state is always a consequence of
  /// formula + previous assumptions, never of a budget or answer.
  /// (A bare Deadline still converts implicitly to a SolveBudget.)
  virtual SolveResult solve(const SolveBudget& budget = {},
                            std::span<const Lit> assumptions = {}) = 0;

  /// Which resource bound ended the last solve() early; None after a
  /// definitive Sat/Unsat answer (and before the first solve).
  [[nodiscard]] virtual BudgetTrip last_trip() const noexcept = 0;

  /// Complete model from the last Sat answer, indexed by variable.
  [[nodiscard]] virtual const std::vector<LBool>& model() const noexcept = 0;

  /// Failed-assumption core from the last Unsat answer: a subset of the
  /// assumptions passed to that solve() whose conjunction is already
  /// unsatisfiable with the formula (final-conflict analysis over the
  /// assumption pseudo-decisions, MiniSat's analyzeFinal). Empty when the
  /// formula is unsatisfiable on its own — an empty core is the
  /// Unsat-without-assumptions certificate — and after Sat/Unknown.
  [[nodiscard]] virtual std::span<const Lit> last_core() const noexcept = 0;

  [[nodiscard]] virtual const SolverStats& stats() const noexcept = 0;

  /// Aggregated view across every worker the engine ran: the field-wise sum
  /// of the master's and all clones' counters, cumulative across solve()
  /// calls. For a sequential engine this IS stats(); the parallel engines
  /// (portfolio, cube-and-conquer) override it so the losers' search — most
  /// of the work in a race — stays measurable instead of being dropped with
  /// the losing workers.
  [[nodiscard]] virtual const SolverStats& aggregated_stats() const noexcept {
    return stats();
  }

  [[nodiscard]] virtual int num_vars() const noexcept = 0;

  /// Run one inprocessing round right now (vivification + equivalent-
  /// literal substitution, per the engine's SolverConfig::inprocess mode)
  /// at a quiescent point, regardless of the conflict cadence. Returns the
  /// number of changes made (literals dropped + clauses removed + variables
  /// replaced); 0 for engines without an inprocessor. The parallel engines
  /// forward to their master so a pre-clone round benefits every worker.
  virtual std::int64_t inprocess(const SolveBudget& /*budget*/ = {}) {
    return 0;
  }

  /// Deep copy of the full solver state — constraints, learned clauses,
  /// activities, saved phases, root trail. Must only be called at a
  /// quiescent point (between solve() calls). The copy performs the lazy
  /// root backtrack, so a retained assumption trail on `this` never leaks
  /// into the clone: the clone starts at level 0 holding only consequences
  /// of the formula. The clone is independent: solving one never touches
  /// the other.
  [[nodiscard]] virtual std::unique_ptr<SolverEngine> clone() const = 0;

  /// Swap the configuration of a live engine at a quiescent point, keeping
  /// learned state (clauses, activities, saved phases). Discards any
  /// retained assumption trail first (lazy backtrack). This is what makes
  /// warm-start caching work: a service clones a preprocessed master and
  /// then reconfigures the clone with the request's own knobs (budget
  /// personality, fault injection, thread count is fixed at construction)
  /// without rebuilding or disturbing the cached engine.
  virtual void reconfigure(const SolverConfig& config) = 0;
};

}  // namespace symcolor
