#pragma once
// Shared driver for the Table 3 / Table 4 / Table 5 experiments: the full
// cross product of SBP constructions x {without, with} instance-dependent
// SBPs x solver personalities over an instance list.

#include <cstdio>
#include <string>
#include <vector>

#include "support.h"
#include "util/text.h"

namespace symcolor::bench {

struct CrossResult {
  int solved = 0;
  double total_seconds = 0.0;
};

/// Run every instance under one configuration; timeouts contribute their
/// budget to the total, like the paper's summed runtimes.
inline CrossResult run_config(const std::vector<Instance>& suite,
                              const SbpOptions& sbps, bool instance_dependent,
                              SolverKind solver, const Budgets& budgets) {
  CrossResult result;
  for (const Instance& inst : suite) {
    const RunOutcome outcome =
        run_instance(inst.graph, sbps, instance_dependent, solver, budgets);
    if (outcome.solved) ++result.solved;
    result.total_seconds += outcome.seconds;
  }
  return result;
}

/// Print the summed-runtime table (paper Tables 3 and 4).
inline void run_summary_table(const std::vector<Instance>& suite,
                              const Budgets& budgets) {
  std::printf("(per-solve budget %.1fs; K = %d; %zu instances; "
              "Tm = summed seconds, #S = instances solved)\n\n",
              budgets.solve_seconds, budgets.max_colors, suite.size());

  TablePrinter table({10, 12, 6, 12, 6});
  for (const SolverKind solver : kTableSolvers) {
    std::printf("== solver: %s ==\n", solver_name(solver).c_str());
    table.row({"SBP", "Orig Tm", "#S", "w/i-d Tm", "#S"});
    table.rule();
    for (const SbpOptions& sbps : paper_sbp_rows()) {
      const CrossResult orig =
          run_config(suite, sbps, /*instance_dependent=*/false, solver, budgets);
      const CrossResult with_sbps =
          run_config(suite, sbps, /*instance_dependent=*/true, solver, budgets);
      table.row({sbps.any() ? sbps.label() : "no SBPs",
                 format_seconds(orig.total_seconds),
                 std::to_string(orig.solved),
                 format_seconds(with_sbps.total_seconds),
                 std::to_string(with_sbps.solved)});
    }
    table.rule();
    std::printf("\n");
  }
}

}  // namespace symcolor::bench
