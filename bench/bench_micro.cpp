// Microbenchmarks (google-benchmark) for the hot substrates: encoding,
// CDCL propagation/solving, partition refinement, automorphism search,
// clique and heuristic coloring. These track the per-component costs
// behind the table benchmarks.

#include <benchmark/benchmark.h>

#include "automorphism/refinement.h"
#include "automorphism/search.h"
#include "coloring/dsatur_bnb.h"
#include "coloring/encoder.h"
#include "coloring/heuristics.h"
#include "graph/clique.h"
#include "graph/generators.h"
#include "pb/optimizer.h"
#include "pb/solver_profiles.h"
#include "sat/cdcl.h"
#include "symmetry/formula_graph.h"
#include "symmetry/shatter.h"

namespace symcolor {
namespace {

void BM_EncodeColoring(benchmark::State& state) {
  const Graph g = make_random_gnm(125, 736, 0xD51);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_coloring(g, k));
  }
}
BENCHMARK(BM_EncodeColoring)->Arg(10)->Arg(20)->Arg(30);

void BM_EncodeWithLi(benchmark::State& state) {
  const Graph g = make_random_gnm(125, 736, 0xD51);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        encode_coloring(g, 20, SbpOptions::li_only()));
  }
}
BENCHMARK(BM_EncodeWithLi);

void BM_CdclQueenDecision(benchmark::State& state) {
  const Graph g = make_queen_graph(5, 5);
  const ColoringEncoding enc = encode_k_coloring(g, 5, SbpOptions::nu_sc());
  for (auto _ : state) {
    CdclSolver solver(enc.formula, profile_config(SolverKind::PbsII));
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_CdclQueenDecision);

void BM_MinimizeMyciel(benchmark::State& state) {
  const Graph g = make_myciel_dimacs(static_cast<int>(state.range(0)));
  const ColoringEncoding enc = encode_coloring(g, 8, SbpOptions::nu_sc());
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimize_linear(
        enc.formula, profile_config(SolverKind::PbsII), Deadline(30.0)));
  }
}
BENCHMARK(BM_MinimizeMyciel)->Arg(3)->Arg(4);

void BM_PartitionRefinement(benchmark::State& state) {
  const Graph g = make_random_gnm(static_cast<int>(state.range(0)),
                                  static_cast<int>(state.range(0)) * 8, 7);
  for (auto _ : state) {
    OrderedPartition p(g.num_vertices(), {});
    std::vector<int> worklist{0};
    benchmark::DoNotOptimize(p.refine(g, worklist));
  }
}
BENCHMARK(BM_PartitionRefinement)->Arg(128)->Arg(512)->Arg(2048);

void BM_AutomorphismQueen(benchmark::State& state) {
  const Graph g = make_queen_graph(6, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_automorphisms(g));
  }
}
BENCHMARK(BM_AutomorphismQueen);

void BM_FormulaGraphBuild(benchmark::State& state) {
  const Graph g = make_random_gnm(125, 736, 0xD51);
  const ColoringEncoding enc = encode_coloring(g, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_formula_graph(enc.formula));
  }
}
BENCHMARK(BM_FormulaGraphBuild);

void BM_ShatterMyciel(benchmark::State& state) {
  const Graph g = make_myciel_dimacs(4);
  for (auto _ : state) {
    ColoringEncoding enc = encode_coloring(g, 10);
    benchmark::DoNotOptimize(shatter(enc.formula, Deadline(10.0)));
  }
}
BENCHMARK(BM_ShatterMyciel);

void BM_GreedyClique(benchmark::State& state) {
  const Graph g = make_random_gnm(200, 4000, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_clique(g));
  }
}
BENCHMARK(BM_GreedyClique);

void BM_DsaturHeuristic(benchmark::State& state) {
  const Graph g = make_random_gnm(200, 4000, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsatur_coloring(g));
  }
}
BENCHMARK(BM_DsaturHeuristic);

void BM_DsaturBnbQueen55(benchmark::State& state) {
  const Graph g = make_queen_graph(5, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsatur_branch_and_bound(g));
  }
}
BENCHMARK(BM_DsaturBnbQueen55);

}  // namespace
}  // namespace symcolor
