// Microbenchmarks (google-benchmark) for the hot substrates: encoding,
// CDCL propagation/solving, partition refinement, automorphism search,
// clique and heuristic coloring. These track the per-component costs
// behind the table benchmarks.
//
// In addition to the usual console output, every run writes a
// machine-readable BENCH_micro.json (override the path with
// SYMCOLOR_BENCH_JSON) so successive PRs can diff propagation throughput:
//   [{"name": ..., "n": ..., "reps": ..., "ns_per_op": ...,
//     "propagations_per_sec": ...}, ...]
// `propagations_per_sec` is nonzero only for the solver benchmarks that
// report it as a counter; `n` is the trailing benchmark argument (0 when
// the benchmark takes none).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "automorphism/refinement.h"
#include "automorphism/search.h"
#include "coloring/dsatur_bnb.h"
#include "coloring/encoder.h"
#include "coloring/heuristics.h"
#include "graph/clique.h"
#include "graph/generators.h"
#include "pb/optimizer.h"
#include "pb/solver_profiles.h"
#include "sat/cdcl.h"
#include "sat/portfolio.h"
#include "sat/watcher_pool.h"
#include "symmetry/formula_graph.h"
#include "symmetry/shatter.h"

namespace symcolor {
namespace {

void BM_EncodeColoring(benchmark::State& state) {
  const Graph g = make_random_gnm(125, 736, 0xD51);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_coloring(g, k));
  }
}
BENCHMARK(BM_EncodeColoring)->Arg(10)->Arg(20)->Arg(30);

void BM_EncodeWithLi(benchmark::State& state) {
  const Graph g = make_random_gnm(125, 736, 0xD51);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        encode_coloring(g, 20, SbpOptions::li_only()));
  }
}
BENCHMARK(BM_EncodeWithLi);

void BM_CdclQueenDecision(benchmark::State& state) {
  const Graph g = make_queen_graph(5, 5);
  const ColoringEncoding enc = encode_k_coloring(g, 5, SbpOptions::nu_sc());
  for (auto _ : state) {
    CdclSolver solver(enc.formula, profile_config(SolverKind::PbsII));
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_CdclQueenDecision);

// The headline hot-path number: raw unit propagations per second through
// the watched-literal/PB engine on a symmetry-broken coloring instance.
// A fixed conflict budget makes every iteration search the same prefix of
// the tree, so the measurement is a pure propagation workload.
void BM_CdclPropagationThroughput(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  const Graph g = make_queen_graph(q, q);
  const ColoringEncoding enc = encode_k_coloring(g, q + 1, SbpOptions::nu_sc());
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.conflict_budget = 2000;
  std::int64_t propagations = 0;
  for (auto _ : state) {
    CdclSolver solver(enc.formula, config);
    benchmark::DoNotOptimize(solver.solve());
    propagations += solver.stats().propagations;
  }
  state.counters["propagations_per_sec"] = benchmark::Counter(
      static_cast<double>(propagations), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CdclPropagationThroughput)->Arg(6)->Arg(7)->Arg(8);

// The same fixed-prefix workload driven through a fully armed SolveBudget
// (wall clock + conflict cap + propagation cap + live interrupt flag that
// never fires): measures the overhead the resource-control plumbing adds
// to the hot loop. Gated against BM_CdclPropagationThroughput's rate in CI
// — the budget checks are a cadence-based poll plus two integer compares
// per iteration, so the two rates must stay within run-to-run noise.
void BM_CdclBudgetedSolve(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  const Graph g = make_queen_graph(q, q);
  const ColoringEncoding enc = encode_k_coloring(g, q + 1, SbpOptions::nu_sc());
  const SolverConfig config = profile_config(SolverKind::PbsII);
  // Every dimension armed but none reachable: 2000 conflicts bound the
  // prefix (as in the unbudgeted twin), the rest is pure checking cost.
  const SolveBudget budget(/*seconds=*/3600.0, /*conflicts=*/2000,
                           /*propagations=*/std::int64_t{1} << 60);
  std::int64_t propagations = 0;
  for (auto _ : state) {
    CdclSolver solver(enc.formula, config);
    benchmark::DoNotOptimize(solver.solve(budget));
    propagations += solver.stats().propagations;
  }
  state.counters["propagations_per_sec"] = benchmark::Counter(
      static_cast<double>(propagations), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CdclBudgetedSolve)->Arg(6)->Arg(7);

// Same workload through the PB-heavy path: at-most-one rows encoded as
// pseudo-Boolean constraints exercise the cached-slack propagator.
void BM_CdclPbPropagationThroughput(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  const Graph g = make_queen_graph(q, q);
  Formula f;
  const int n = g.num_vertices();
  const int k = q + 1;
  // x_{v,c} says vertex v takes color c; per-vertex exactly-one rows are
  // PB constraints, adjacency handled clausally.
  for (int v = 0; v < n; ++v) {
    std::vector<Lit> row;
    for (int c = 0; c < k; ++c) {
      row.push_back(Lit::positive(f.new_var()));
    }
    f.add_exactly(row, 1);
  }
  for (const Edge& e : g.edges()) {
    for (int c = 0; c < k; ++c) {
      f.add_clause({Lit::negative(e.u * k + c), Lit::negative(e.v * k + c)});
    }
  }
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.conflict_budget = 2000;
  std::int64_t propagations = 0;
  for (auto _ : state) {
    CdclSolver solver(f, config);
    benchmark::DoNotOptimize(solver.solve());
    propagations += solver.stats().propagations;
  }
  state.counters["propagations_per_sec"] = benchmark::Counter(
      static_cast<double>(propagations), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CdclPbPropagationThroughput)->Arg(6)->Arg(7);

// PB conflict-analysis throughput: pigeonhole PHP(9,8) with the per-hole
// at-most-one rows kept as genuine PB constraints, so conflicts hammer the
// PB analysis path, under both modes — Arg(0) = the classic clause-
// weakening scheme (budgeted to a fixed 1500-conflict prefix of its ~19k-
// conflict refutation), Arg(1) = native cutting planes (which refutes the
// instance outright in a few dozen conflicts per iteration). conflicts/s
// is the per-mode analysis throughput; the iteration count difference is
// the strength separation itself.
void BM_CdclPbConflictAnalysis(benchmark::State& state) {
  const int holes = 8;
  const int pigeons = holes + 1;
  Formula f;
  std::vector<std::vector<Var>> in(static_cast<std::size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)].push_back(f.new_var());
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) {
      c.push_back(Lit::positive(
          in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    f.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    std::vector<Lit> col;
    for (int p = 0; p < pigeons; ++p) {
      col.push_back(Lit::positive(
          in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    f.add_at_most(col, 1);
  }
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.pb_analysis =
      state.range(0) == 0 ? PbAnalysis::Weaken : PbAnalysis::CuttingPlanes;
  config.conflict_budget = 1500;
  std::int64_t conflicts = 0;
  std::int64_t resolutions = 0;
  for (auto _ : state) {
    CdclSolver solver(f, config);
    benchmark::DoNotOptimize(solver.solve());
    conflicts += solver.stats().conflicts;
    resolutions += solver.stats().pb_resolutions;
  }
  state.counters["conflicts_per_sec"] = benchmark::Counter(
      static_cast<double>(conflicts), benchmark::Counter::kIsRate);
  state.counters["pb_resolutions_per_iter"] =
      static_cast<double>(resolutions) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
}
BENCHMARK(BM_CdclPbConflictAnalysis)->Arg(0)->Arg(1);

// Same queen decision workload under adaptive (LBD-EMA) restarts: tracks
// the scheduling overhead and search-quality effect of the Glucose-style
// scheme against the Luby default of BM_CdclQueenDecision.
void BM_CdclAdaptiveRestartDecision(benchmark::State& state) {
  const Graph g = make_queen_graph(5, 5);
  const ColoringEncoding enc = encode_k_coloring(g, 5, SbpOptions::nu_sc());
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.restart_scheme = RestartScheme::Adaptive;
  for (auto _ : state) {
    CdclSolver solver(enc.formula, config);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_CdclAdaptiveRestartDecision);

// Propagation throughput under constant clause-database churn: a tiny
// learnt limit drives reduce_db() (LBD-tiered retention + arena GC +
// watcher-pool compaction) every few conflicts, so this measures how much
// the tiered reduction machinery taxes the hot path.
void BM_CdclReduceDbChurn(benchmark::State& state) {
  const Graph g = make_queen_graph(7, 7);
  const ColoringEncoding enc = encode_k_coloring(g, 8, SbpOptions::nu_sc());
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.conflict_budget = 1000;
  config.max_learnts_init = 64;
  std::int64_t propagations = 0;
  std::int64_t collections = 0;
  for (auto _ : state) {
    CdclSolver solver(enc.formula, config);
    benchmark::DoNotOptimize(solver.solve());
    propagations += solver.stats().propagations;
    collections += solver.stats().arena_collections;
  }
  state.counters["propagations_per_sec"] = benchmark::Counter(
      static_cast<double>(propagations), benchmark::Counter::kIsRate);
  state.counters["collections_per_iter"] =
      static_cast<double>(collections) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
}
BENCHMARK(BM_CdclReduceDbChurn);

// Propagation throughput under constant inprocessing churn: the interval
// is cranked down so a full vivification + substitution round runs every
// ~200 conflicts of the fixed 2000-conflict prefix, measuring what the
// restart-boundary inprocessor (detach/re-propagate/reattach cycles plus
// the occasional watch rebuild) taxes the hot path when driven far above
// its production cadence.
void BM_CdclVivificationChurn(benchmark::State& state) {
  const Graph g = make_queen_graph(7, 7);
  const ColoringEncoding enc = encode_k_coloring(g, 8, SbpOptions::nu_sc());
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.conflict_budget = 2000;
  config.inprocess = InprocessMode::Full;
  config.inprocess_interval_base = 200;
  config.inprocess_interval_inc = 0;
  std::int64_t propagations = 0;
  std::int64_t rounds = 0;
  std::int64_t vivified = 0;
  for (auto _ : state) {
    CdclSolver solver(enc.formula, config);
    benchmark::DoNotOptimize(solver.solve());
    propagations += solver.stats().propagations;
    rounds += solver.stats().inprocess_rounds;
    vivified += solver.stats().vivified_clauses +
                solver.stats().viv_removed_clauses;
  }
  state.counters["propagations_per_sec"] = benchmark::Counter(
      static_cast<double>(propagations), benchmark::Counter::kIsRate);
  state.counters["inprocess_rounds_per_iter"] =
      static_cast<double>(rounds) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
  state.counters["vivified_per_iter"] =
      static_cast<double>(vivified) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
}
BENCHMARK(BM_CdclVivificationChurn);

// Inprocessing-on twin of BM_CdclPropagationThroughput: the same fixed
// 2000-conflict prefix with Full-mode rounds forced every ~200 conflicts.
// Gated against the plain row in CI — the shrunk clause database must pay
// for the rounds, keeping the two rates within the regression band.
void BM_CdclInprocessPropagationThroughput(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  const Graph g = make_queen_graph(q, q);
  const ColoringEncoding enc = encode_k_coloring(g, q + 1, SbpOptions::nu_sc());
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.conflict_budget = 2000;
  config.inprocess = InprocessMode::Full;
  config.inprocess_interval_base = 200;
  config.inprocess_interval_inc = 0;
  std::int64_t propagations = 0;
  for (auto _ : state) {
    CdclSolver solver(enc.formula, config);
    benchmark::DoNotOptimize(solver.solve());
    propagations += solver.stats().propagations;
  }
  state.counters["propagations_per_sec"] = benchmark::Counter(
      static_cast<double>(propagations), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CdclInprocessPropagationThroughput)->Arg(6)->Arg(7);

// Raw flat-pool cost: interleaved pushes across many rows (the watch-list
// write pattern during clause attachment) followed by a compaction, per
// iteration. Tracks the amortized-doubling growth path in isolation.
void BM_WatcherPoolChurn(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  struct Entry {
    std::uint32_t a;
    std::uint32_t b;
  };
  for (auto _ : state) {
    FlatOccPool<Entry> pool;
    pool.init(rows);
    for (std::uint32_t i = 0; i < 16 * rows; ++i) {
      pool.push(i % rows, {i, i ^ 0x5EEDu});
    }
    pool.compact();
    benchmark::DoNotOptimize(pool.live_entries());
  }
}
BENCHMARK(BM_WatcherPoolChurn)->Arg(256)->Arg(4096);

// Wall-clock of the clone-based portfolio (threads = range arg) against
// the identical pipeline single-threaded. queen9 at K = chi + 1 with
// NU-only SBPs is deliberately heavy-tailed: the base PBS II personality
// wanders for tens of seconds before finding a model while the
// adaptive-with-blocking worker finishes in a few, so the race shows the
// portfolio's robustness value even on a single core (the winner's solo
// time times the timeslicing factor still beats the unlucky base by an
// order of magnitude; on real multicore the gap widens). Real time, not
// CPU time: worker threads run outside the benchmark thread.
void BM_CdclPortfolioSpeedup(benchmark::State& state) {
  const Graph g = make_queen_graph(9, 9);
  const ColoringEncoding enc =
      encode_k_coloring(g, 10, SbpOptions::nu_only());
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.portfolio_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto engine = make_solver_engine(enc.formula, config);
    // The guard deadline only trips if a regression makes the race
    // pathological; a timeout would clamp the reported ratio from below.
    benchmark::DoNotOptimize(engine->solve(Deadline(180.0)));
  }
}
BENCHMARK(BM_CdclPortfolioSpeedup)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Headline cube-and-conquer race on the SAME heavy-tailed instance as
// BM_CdclPortfolioSpeedup (queen9, K = chi + 1, NU-only): lookahead cubes
// partition the space so NO worker has to survive the base personality's
// unlucky full-space wander — each slice either finishes or is split and
// re-dealt. The number to beat is the 4-worker portfolio row above.
// Real time: the cube workers run outside the benchmark thread.
void BM_CdclCubeAndConquer(benchmark::State& state) {
  const Graph g = make_queen_graph(9, 9);
  const ColoringEncoding enc =
      encode_k_coloring(g, 10, SbpOptions::nu_only());
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.portfolio_threads = static_cast<int>(state.range(0));
  config.cube_depth = 4;
  for (auto _ : state) {
    const auto engine = make_solver_engine(enc.formula, config);
    benchmark::DoNotOptimize(engine->solve(Deadline(180.0)));
  }
}
BENCHMARK(BM_CdclCubeAndConquer)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// CI-smoke twin of the cube engine: deterministic single-worker cube
// solve of queen5 with a warmup small enough that every phase (lookahead
// generation, cube dealing, slice-trip splitting) runs each iteration.
// Deterministic mode keeps the timing race-free so the bench-compare
// gate measures cube-machinery overhead, not thread-scheduling noise.
void BM_CdclCubeSolveSmoke(benchmark::State& state) {
  const Graph g = make_queen_graph(5, 5);
  const ColoringEncoding enc = encode_k_coloring(g, 4, SbpOptions::none());
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.cube_depth = 3;
  config.cube_warmup_conflicts = 4;
  config.cube_conflict_slice = 16;
  config.portfolio_deterministic = true;
  std::int64_t conflicts = 0;
  for (auto _ : state) {
    const auto engine = make_solver_engine(enc.formula, config);
    benchmark::DoNotOptimize(engine->solve());
    conflicts += engine->aggregated_stats().conflicts;
  }
  state.counters["conflicts_per_sec"] = benchmark::Counter(
      static_cast<double>(conflicts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CdclCubeSolveSmoke);

// Sharded ClauseExchange churn from a single thread: export a clause and
// drain the import horizon every round, across 4 shards. This is the
// uncontended cost every portfolio/cube worker pays at each exchange
// interval, so the bench-compare gate on it proves the shard split did
// not tax the 1-thread path it was supposed to leave alone.
void BM_ClauseExchangeChurn(benchmark::State& state) {
  const std::vector<Lit> clause = {Lit::positive(0), Lit::negative(1),
                                   Lit::positive(2)};
  std::int64_t exchanged = 0;
  for (auto _ : state) {
    ClauseExchange exchange(4096, 4);
    std::size_t cursors[4] = {0, 0, 0, 0};
    std::vector<SharedClause> in;
    for (int round = 0; round < 1024; ++round) {
      const int worker = round & 3;
      exchange.export_clause(worker, clause, 2);
      in.clear();
      exchange.import_clauses(worker ^ 1, &cursors[worker ^ 1], &in);
      exchanged += static_cast<std::int64_t>(in.size()) + 1;
    }
    benchmark::DoNotOptimize(exchange.exported());
  }
  state.counters["exchange_ops_per_sec"] = benchmark::Counter(
      static_cast<double>(exchanged), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClauseExchangeChurn);

// One persistent engine, repeated assumption solves: the incremental-SAT
// workload every optimizer loop now runs. Each iteration asks "<= k
// colors?" for every k from K-1 down to chi via a single retractable
// ~y(k) assumption against ONE solver — learned clauses accumulate across
// the queries instead of being rebuilt away.
void BM_CdclAssumptionSolve(benchmark::State& state) {
  const Graph g = make_queen_graph(5, 5);
  const ColoringEncoding enc = encode_k_coloring(g, 7, SbpOptions::nu_sc());
  SolverConfig config = profile_config(SolverKind::PbsII);
  std::int64_t conflicts = 0;
  std::int64_t solves = 0;
  for (auto _ : state) {
    CdclSolver solver(enc.formula, config);
    for (int k = 6; k >= 4; --k) {  // chi(queen5) = 5: SAT, SAT, UNSAT
      const std::vector<Lit> assume{Lit::negative(enc.y(k))};
      benchmark::DoNotOptimize(solver.solve(Deadline{}, assume));
      ++solves;
    }
    conflicts += solver.stats().conflicts;
  }
  state.counters["conflicts_per_sec"] = benchmark::Counter(
      static_cast<double>(conflicts), benchmark::Counter::kIsRate);
  state.counters["assumption_solves_per_sec"] = benchmark::Counter(
      static_cast<double>(solves), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CdclAssumptionSolve);

// Optimizer-style probe ladder on one persistent engine where every call
// EXTENDS the previous assumption vector: {~y(6)}, then {~y(6),~y(5)},
// then {~y(6),~y(5),~y(4)}, repeated. Consecutive calls share a maximal
// assumption prefix, so trail reuse keeps the shared levels (and their
// propagations) alive across the return instead of rebuilding them —
// exactly the linear-strengthening ladder the optimizer and SAT loop
// drive. The bench-compare gate on this bench guards the reuse path.
void BM_CdclAssumptionPrefixReuse(benchmark::State& state) {
  const Graph g = make_queen_graph(5, 5);
  const ColoringEncoding enc = encode_k_coloring(g, 7, SbpOptions::nu_sc());
  const SolverConfig config = profile_config(SolverKind::PbsII);
  std::int64_t solves = 0;
  std::int64_t reused = 0;
  for (auto _ : state) {
    CdclSolver solver(enc.formula, config);
    std::vector<Lit> assume;
    for (int round = 0; round < 8; ++round) {
      assume.clear();
      for (int k = 6; k >= 4; --k) {  // chi(queen5) = 5: SAT, SAT, UNSAT
        assume.push_back(Lit::negative(enc.y(k)));
        benchmark::DoNotOptimize(solver.solve(Deadline{}, assume));
        ++solves;
      }
    }
    reused += solver.stats().reused_trail_literals;
  }
  state.counters["assumption_solves_per_sec"] = benchmark::Counter(
      static_cast<double>(solves), benchmark::Counter::kIsRate);
  state.counters["reused_trail_lits_per_iter"] =
      static_cast<double>(reused) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
}
BENCHMARK(BM_CdclAssumptionPrefixReuse);

// Chronological backtracking on a conflict-heavy decision query:
// Arg 0 = off (always full 1UIP backjump), Arg 1 = on at threshold 1 —
// the aggressive setting, so every multi-level backjump takes the chrono
// path (the production default of 100 would never fire at queen6 depths).
// The saved_propagations counter shows how much trail the policy kept
// alive; run-to-run bench-compare gates both variants so neither the
// policy nor its bookkeeping regresses the conflict loop.
void BM_CdclChronoBacktrack(benchmark::State& state) {
  const Graph g = make_queen_graph(6, 6);
  const ColoringEncoding enc = encode_k_coloring(g, 7, SbpOptions::nu_sc());
  SolverConfig config = profile_config(SolverKind::PbsII);
  config.chrono_threshold = state.range(0) == 0 ? 0 : 1;
  std::int64_t conflicts = 0;
  std::int64_t saved = 0;
  for (auto _ : state) {
    CdclSolver solver(enc.formula, config);
    benchmark::DoNotOptimize(solver.solve(Deadline{}));
    conflicts += solver.stats().conflicts;
    saved += solver.stats().saved_propagations;
  }
  state.counters["conflicts_per_sec"] = benchmark::Counter(
      static_cast<double>(conflicts), benchmark::Counter::kIsRate);
  state.counters["saved_props_per_iter"] =
      static_cast<double>(saved) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
}
BENCHMARK(BM_CdclChronoBacktrack)->Arg(0)->Arg(1);

// The three objective search strategies on the same optimizer instance:
// Arg 0 = linear strengthening, 1 = binary search, 2 = core-guided.
// Every strategy drives one persistent engine through selector-ladder
// assumptions; probes_per_iter and conflicts expose their different
// probe/hardness trade-offs.
void BM_OptimizerSearchStrategies(benchmark::State& state) {
  const Graph g = make_queen_graph(6, 6);
  const ColoringEncoding enc = encode_coloring(g, 8, SbpOptions::nu_sc());
  const SolverConfig config = profile_config(SolverKind::PbsII);
  const auto strategy = static_cast<SearchStrategy>(state.range(0));
  std::int64_t conflicts = 0;
  std::int64_t probes = 0;
  for (auto _ : state) {
    const OptResult r = minimize(enc.formula, config, Deadline(60.0), strategy);
    benchmark::DoNotOptimize(r.best_value);
    conflicts += r.stats.conflicts;
    probes += r.probes;
  }
  state.counters["conflicts_per_sec"] = benchmark::Counter(
      static_cast<double>(conflicts), benchmark::Counter::kIsRate);
  state.counters["probes_per_iter"] =
      static_cast<double>(probes) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
}
BENCHMARK(BM_OptimizerSearchStrategies)->Arg(0)->Arg(1)->Arg(2);

void BM_MinimizeMyciel(benchmark::State& state) {
  const Graph g = make_myciel_dimacs(static_cast<int>(state.range(0)));
  const ColoringEncoding enc = encode_coloring(g, 8, SbpOptions::nu_sc());
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimize_linear(
        enc.formula, profile_config(SolverKind::PbsII), Deadline(30.0)));
  }
}
BENCHMARK(BM_MinimizeMyciel)->Arg(3)->Arg(4);

void BM_PartitionRefinement(benchmark::State& state) {
  const Graph g = make_random_gnm(static_cast<int>(state.range(0)),
                                  static_cast<int>(state.range(0)) * 8, 7);
  for (auto _ : state) {
    OrderedPartition p(g.num_vertices(), {});
    std::vector<int> worklist{0};
    benchmark::DoNotOptimize(p.refine(g, worklist));
  }
}
BENCHMARK(BM_PartitionRefinement)->Arg(128)->Arg(512)->Arg(2048);

void BM_AutomorphismQueen(benchmark::State& state) {
  const Graph g = make_queen_graph(6, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_automorphisms(g));
  }
}
BENCHMARK(BM_AutomorphismQueen);

void BM_FormulaGraphBuild(benchmark::State& state) {
  const Graph g = make_random_gnm(125, 736, 0xD51);
  const ColoringEncoding enc = encode_coloring(g, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_formula_graph(enc.formula));
  }
}
BENCHMARK(BM_FormulaGraphBuild);

void BM_ShatterMyciel(benchmark::State& state) {
  const Graph g = make_myciel_dimacs(4);
  for (auto _ : state) {
    ColoringEncoding enc = encode_coloring(g, 10);
    benchmark::DoNotOptimize(shatter(enc.formula, Deadline(10.0)));
  }
}
BENCHMARK(BM_ShatterMyciel);

void BM_GreedyClique(benchmark::State& state) {
  const Graph g = make_random_gnm(200, 4000, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_clique(g));
  }
}
BENCHMARK(BM_GreedyClique);

void BM_DsaturHeuristic(benchmark::State& state) {
  const Graph g = make_random_gnm(200, 4000, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsatur_coloring(g));
  }
}
BENCHMARK(BM_DsaturHeuristic);

void BM_DsaturBnbQueen55(benchmark::State& state) {
  const Graph g = make_queen_graph(5, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsatur_branch_and_bound(g));
  }
}
BENCHMARK(BM_DsaturBnbQueen55);

// ---- machine-readable output ----

/// Console reporter that also mirrors every finished run into a flat JSON
/// array so perf trajectories can be diffed across PRs without parsing
/// console output.
class JsonFileReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonFileReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      // The trailing "/<number>" of a benchmark name is its range arg.
      const auto slash = row.name.rfind('/');
      if (slash != std::string::npos) {
        const std::string tail = row.name.substr(slash + 1);
        if (!tail.empty() &&
            tail.find_first_not_of("0123456789") == std::string::npos) {
          row.n = std::stoll(tail);
        }
      }
      row.reps = run.iterations;
      row.ns_per_op = run.GetAdjustedRealTime();
      const auto it = run.counters.find("propagations_per_sec");
      if (it != run.counters.end()) row.props_per_sec = it->second;
      rows_.push_back(std::move(row));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::ofstream out(path_);
    out << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      out << "  {\"name\": \"" << r.name << "\", \"n\": " << r.n
          << ", \"reps\": " << r.reps << ", \"ns_per_op\": " << r.ns_per_op
          << ", \"propagations_per_sec\": " << r.props_per_sec << "}"
          << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "]\n";
  }

 private:
  struct Row {
    std::string name;
    long long n = 0;
    long long reps = 0;
    double ns_per_op = 0.0;
    double props_per_sec = 0.0;
  };
  std::string path_;
  std::vector<Row> rows_;
};

}  // namespace
}  // namespace symcolor

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* path = std::getenv("SYMCOLOR_BENCH_JSON");
  symcolor::JsonFileReporter reporter(path != nullptr ? path
                                                      : "BENCH_micro.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
