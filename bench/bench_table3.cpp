// Table 3 reproduction: summed runtimes and instances solved for each
// solver personality x SBP construction x {orig, with instance-dependent
// SBPs}, at the paper's color limit K = 20.
//
// Expected shape (paper Table 3): the specialized CDCL solvers solve few
// instances with no SBPs, many with instance-dependent SBPs; NU and
// NU+SC are the best instance-independent rows; CA and LI hurt; SC with
// instance-dependent SBPs is the best combination overall; the generic
// ILP solver is the one hurt by adding SBPs.

#include <cstdio>

#include "support.h"
#include "table_runner.h"

using namespace symcolor;
using namespace symcolor::bench;

int main() {
  Budgets budgets = load_budgets();
  std::printf("Table 3: solver x SBP cross product, K = %d\n",
              budgets.max_colors);
  run_summary_table(dimacs_suite(), budgets);
  std::printf(
      "Paper shape (Table 3, 1000 s timeouts): PBS II no-SBP 3/20 -> 16/20\n"
      "with inst-dep SBPs; NU alone 13/20; SC + inst-dep 20/20 in 65 s\n"
      "total; CA and LI rows solve fewest; CPLEX solves 14/20 with no SBPs\n"
      "but drops to 7/20 when inst-dep SBPs are added.\n");
  return 0;
}
