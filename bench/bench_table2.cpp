// Table 2 reproduction: formula sizes and symmetry statistics per
// instance-independent SBP construction, totaled over the 20-instance
// suite at the paper's K (default 20).
//
// Columns mirror the paper: #V (variables), #CL (CNF clauses), #PB
// (0-1 ILP constraints: one per vertex equality plus CA inequalities),
// #S (sum of symmetry-group orders — accumulated in log10), #G (symmetry
// generators), and Saucy-stand-in detection time.

#include <cstdio>

#include "coloring/encoder.h"
#include "graph/generators.h"
#include "support.h"
#include "symmetry/shatter.h"
#include "util/text.h"

using namespace symcolor;
using namespace symcolor::bench;

int main() {
  const Budgets budgets = load_budgets();
  std::printf("Table 2: formula sizes and symmetry statistics, K = %d\n",
              budgets.max_colors);
  std::printf("(totals over 20 instances; detection budget %.1fs/instance)\n\n",
              budgets.detect_seconds);

  TablePrinter table({10, 10, 11, 9, 12, 7, 10, 9});
  table.row({"SBP", "#Vars", "#Clauses", "#PB", "#Sym", "#Gen", "DetTime",
             "complete"});
  table.rule();

  const auto suite = dimacs_suite();
  for (const SbpOptions& sbps : paper_sbp_rows()) {
    long long vars = 0, clauses = 0, pb = 0, generators = 0;
    std::vector<double> log_orders;
    double detect_time = 0.0;
    bool all_complete = true;
    for (const Instance& inst : suite) {
      const ColoringEncoding enc =
          encode_coloring(inst.graph, budgets.max_colors, sbps);
      vars += enc.formula.num_vars();
      clauses += enc.formula.num_clauses();
      pb += enc.ilp_equalities + enc.sbp_pb_constraints;
      const Deadline deadline(budgets.detect_seconds);
      const SymmetryInfo info = detect_symmetries(enc.formula, deadline);
      generators += static_cast<long long>(info.generators.size());
      log_orders.push_back(info.log10_order);
      detect_time += info.detect_seconds;
      all_complete = all_complete && info.complete;
    }
    table.row({sbps.any() ? sbps.label() : "no SBPs", std::to_string(vars),
               std::to_string(clauses), std::to_string(pb),
               format_pow10(log10_sum(log_orders)), std::to_string(generators),
               format_seconds(detect_time), all_complete ? "yes" : "partial"});
  }
  table.rule();
  std::printf(
      "\nPaper shape (Table 2, K=20): no-SBPs 437K vars / 777K clauses /\n"
      "3193 PB / 1.1e+168 symmetries / 994 generators / 185 s; NU and CA\n"
      "drop symmetries to 5e+149 and detection to ~49 s; LI kills every\n"
      "symmetry (0 generators); SC barely changes the counts.\n");
  return 0;
}
