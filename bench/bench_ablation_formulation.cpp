// Ablation: assignment formulation vs the Mehrotra-Trick independent-set
// (set-cover) formulation (paper Section 2.1).
//
// The paper credits Mehrotra & Trick's formulation with "inherently
// breaking problem symmetries" at the price of exponentially many
// variables. This bench measures both claims on instances small enough
// to enumerate maximal independent sets: the symmetry-group order of
// each encoded formula, its size, and the solve time.

#include <cstdio>

#include "coloring/set_cover_formulation.h"
#include "graph/generators.h"
#include "pb/optimizer.h"
#include "pb/solver_profiles.h"
#include "support.h"
#include "symmetry/shatter.h"
#include "util/text.h"

using namespace symcolor;
using namespace symcolor::bench;

int main() {
  const Budgets budgets = load_budgets();
  std::printf("Ablation: assignment vs independent-set (Mehrotra-Trick) "
              "formulation\n");
  std::printf("(K = 8 for the assignment side; set cap 100000; budget "
              "%.1fs/solve)\n\n",
              budgets.solve_seconds);

  std::vector<Instance> instances;
  instances.push_back({"myciel3", make_myciel_dimacs(3), 4});
  instances.push_back({"myciel4", make_myciel_dimacs(4), 5});
  instances.push_back({"queen4_4", make_queen_graph(4, 4), 5});
  instances.push_back({"queen5_5", make_queen_graph(5, 5), 5});
  instances.push_back({"rand12", make_random_gnm(12, 30, 77), -1});

  TablePrinter table({12, 13, 9, 11, 12, 10, 7});
  table.row({"Instance", "formulation", "vars", "constrs", "#Sym", "time",
             "chi"});
  table.rule();
  for (const Instance& inst : instances) {
    {
      ColoringEncoding enc = encode_coloring(inst.graph, 8);
      const SymmetryInfo sym =
          detect_symmetries(enc.formula, Deadline(budgets.detect_seconds));
      const OptResult r =
          minimize_linear(enc.formula, profile_config(SolverKind::PbsII),
                          Deadline(budgets.solve_seconds));
      table.row({inst.name, "assignment",
                 std::to_string(enc.formula.num_vars()),
                 std::to_string(enc.formula.num_clauses() +
                                enc.formula.num_pb()),
                 format_pow10(sym.log10_order), time_cell(r.seconds, r.solved()),
                 r.status == OptStatus::Optimal ? std::to_string(r.best_value)
                                                : std::string("-")});
    }
    {
      const auto enc = encode_set_cover_coloring(inst.graph);
      if (!enc) {
        table.row({inst.name, "indep-set", "-", "-", "-", "cap hit", "-"});
        continue;
      }
      const SymmetryInfo sym =
          detect_symmetries(enc->formula, Deadline(budgets.detect_seconds));
      const OptResult r =
          minimize_linear(enc->formula, profile_config(SolverKind::PbsII),
                          Deadline(budgets.solve_seconds));
      table.row({inst.name, "indep-set",
                 std::to_string(enc->formula.num_vars()),
                 std::to_string(enc->formula.num_clauses()),
                 format_pow10(sym.log10_order), time_cell(r.seconds, r.solved()),
                 r.status == OptStatus::Optimal ? std::to_string(r.best_value)
                                                : std::string("-")});
    }
    table.rule();
  }
  std::printf(
      "\nExpected: the assignment formulation carries the K! color\n"
      "symmetry (#Sym astronomically large) while the independent-set\n"
      "formulation's group reduces to the graph's own automorphisms —\n"
      "the paper's reason why SBPs do not apply to Mehrotra-Trick. Its\n"
      "variable count, however, is the number of maximal independent\n"
      "sets, which explodes with graph size.\n");
  return 0;
}
