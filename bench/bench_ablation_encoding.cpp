// Ablation: native-PB optimization vs the pure-CNF SAT loop (paper
// Section 2.3's trade-off), across at-most-one encodings.
//
// The paper argues 0-1 ILP solvers "do not require this extra step
// [repeated SAT calls] and moreover tend to provide better performance";
// this bench quantifies both halves: encoding sizes per AMO choice and
// end-to-end optimization times.

#include <cstdio>

#include "coloring/cnf_coloring.h"
#include "graph/generators.h"
#include "pb/solver_profiles.h"
#include "support.h"
#include "util/text.h"

using namespace symcolor;
using namespace symcolor::bench;

int main() {
  const Budgets budgets = load_budgets();
  std::printf("Ablation: native PB optimization vs pure-CNF SAT loop\n");
  std::printf("(per-run budget %.1fs; SBPs: NU+SC + instance-dependent for "
              "the PB flow,\n NU+SC for the CNF loop)\n\n",
              budgets.solve_seconds);

  std::vector<Instance> instances;
  instances.push_back({"myciel3", make_myciel_dimacs(3), 4});
  instances.push_back({"myciel4", make_myciel_dimacs(4), 5});
  instances.push_back({"queen5_5", make_queen_graph(5, 5), 5});
  instances.push_back({"queen6_6", make_queen_graph(6, 6), 7});
  instances.push_back({"jean", make_book_graph(80, 508, 10, 0x1EA4), 10});

  TablePrinter table({12, 14, 10, 9, 8, 10});
  table.row({"Instance", "pipeline", "time", "chi", "calls", "clauses"});
  table.rule();
  for (const Instance& inst : instances) {
    {
      const RunOutcome r = run_instance(inst.graph, SbpOptions::nu_sc(),
                                        /*instance_dependent=*/true,
                                        SolverKind::PbsII, budgets);
      table.row({inst.name, "PB-native", time_cell(r.seconds, r.solved),
                 r.num_colors > 0 ? std::to_string(r.num_colors) : "-", "1",
                 std::to_string(r.detail.formula_clauses)});
    }
    for (const AmoEncoding amo :
         {AmoEncoding::Pairwise, AmoEncoding::Sequential,
          AmoEncoding::Commander}) {
      SatLoopOptions options;
      options.amo = amo;
      options.sbps = SbpOptions::nu_sc();
      options.solver = profile_config(SolverKind::PbsII);
      options.time_budget_seconds = budgets.solve_seconds;
      const SatLoopResult r = solve_coloring_sat_loop(inst.graph, options);
      const ColoringEncoding probe = encode_k_coloring_cnf(
          inst.graph, budgets.max_colors, amo, options.sbps);
      table.row({inst.name,
                 std::string("SAT-") + amo_encoding_name(amo),
                 time_cell(r.seconds, r.status == OptStatus::Optimal),
                 r.num_colors > 0 ? std::to_string(r.num_colors) : "-",
                 std::to_string(r.sat_calls),
                 std::to_string(probe.formula.num_clauses())});
    }
    table.rule();
  }
  std::printf(
      "\nExpected: identical chromatic numbers everywhere; the PB-native\n"
      "flow avoids the K-update loop and the per-vertex AMO expansion\n"
      "(one counter constraint vs hundreds of clauses), matching the\n"
      "paper's argument for the 0-1 ILP route. The SAT loop profits from\n"
      "starting at the DSATUR bound, so easy instances stay close.\n");
  return 0;
}
