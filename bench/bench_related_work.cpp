// Section 4.3 reproduction: comparison with problem-specific exact
// colorers on the shared data points (myciel3/4/5, DSJC125.1, queens).
// The DSATUR branch and bound stands in for the Coudert/Benhamou
// dedicated algorithms; the reduction flow runs with its best
// configuration from Table 3 (SC + instance-dependent SBPs, Pueblo for
// myciel like the paper, PBS II otherwise).

#include <cstdio>

#include "coloring/dsatur_bnb.h"
#include "graph/generators.h"
#include "support.h"
#include "util/text.h"

using namespace symcolor;
using namespace symcolor::bench;

int main() {
  const Budgets budgets = load_budgets();
  std::printf("Section 4.3: reduction flow vs problem-specific baseline\n");
  std::printf("(budget %.1fs per run)\n\n", budgets.solve_seconds);

  std::vector<Instance> instances;
  instances.push_back({"myciel3", make_myciel_dimacs(3), 4});
  instances.push_back({"myciel4", make_myciel_dimacs(4), 5});
  instances.push_back({"myciel5", make_myciel_dimacs(5), 6});
  instances.push_back({"DSJC125.1", make_random_gnm(125, 736, 0xD51), -1});
  for (const Instance& q : queens_suite()) instances.push_back(q);

  TablePrinter table({14, 7, 14, 9, 14, 9});
  table.row({"Instance", "chi", "reduction", "(chi)", "dsatur-bnb", "(chi)"});
  table.rule();
  for (const Instance& inst : instances) {
    const RunOutcome flow =
        run_instance(inst.graph, SbpOptions::sc_only(),
                     /*instance_dependent=*/true, SolverKind::PbsII, budgets);
    const Deadline deadline(budgets.solve_seconds);
    const DsaturBnbResult bnb =
        dsatur_branch_and_bound(inst.graph, deadline);
    table.row({inst.name,
               inst.chromatic_number > 0 ? std::to_string(inst.chromatic_number)
                                         : "?",
               time_cell(flow.seconds, flow.solved),
               flow.num_colors > 0 ? std::to_string(flow.num_colors) : "-",
               time_cell(bnb.seconds, bnb.proved_optimal),
               std::to_string(bnb.num_colors)});
  }
  table.rule();
  std::printf(
      "\nPaper shape (Section 4.3): the generic reduction flow is\n"
      "competitive on the shared data points (myciel3-5: 0.01/0.06/1.80 s\n"
      "vs Coudert's 0.01/0.02/4.17 s) while dedicated solvers keep an edge\n"
      "on larger instances; the same relation should hold here.\n");
  return 0;
}
