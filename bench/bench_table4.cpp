// Table 4 reproduction: the Table 3 cross product re-run with color
// limit K = 30 (larger and harder instances; the paper uses it to
// confirm that the K = 20 trends are not an artifact of the limit).

#include <cstdio>

#include "support.h"
#include "table_runner.h"

using namespace symcolor;
using namespace symcolor::bench;

int main() {
  Budgets budgets = load_budgets();
  budgets.max_colors = 30;  // Table 4 fixes K = 30 (SYMCOLOR_K ignored)
  std::printf("Table 4: solver x SBP cross product, K = %d\n",
              budgets.max_colors);
  run_summary_table(dimacs_suite(), budgets);
  std::printf(
      "Paper shape (Table 4): same trends as Table 3 with fewer instances\n"
      "solved overall — the K = 30 encodings are larger, and proving\n"
      "optimality near 30 colors is harder than refuting 20.\n");
  return 0;
}
