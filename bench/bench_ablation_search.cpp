// Ablation: objective search strategy (DESIGN.md decision #5) — the
// paper's Section 4.1 procedure sketch contrasts linear strengthening
// with binary search over the color bound. Linear search keeps one
// incremental solver (learned clauses survive); binary search rebuilds
// per probe.

#include <cstdio>

#include "graph/generators.h"
#include "support.h"

using namespace symcolor;
using namespace symcolor::bench;

int main() {
  const Budgets budgets = load_budgets();
  std::printf("Ablation: linear vs binary objective search (PBS II, NU+SC)\n\n");

  std::vector<Instance> instances;
  instances.push_back({"myciel4", make_myciel_dimacs(4), 5});
  instances.push_back({"myciel5", make_myciel_dimacs(5), 6});
  instances.push_back({"queen5_5", make_queen_graph(5, 5), 5});
  instances.push_back({"queen6_6", make_queen_graph(6, 6), 7});
  instances.push_back({"huck", make_book_graph(74, 602, 11, 0x4C8), 11});

  TablePrinter table({12, 12, 9, 12, 9});
  table.row({"Instance", "linear", "(chi)", "binary", "(chi)"});
  table.rule();
  for (const Instance& inst : instances) {
    ColoringOptions base;
    base.max_colors = budgets.max_colors;
    base.sbps = SbpOptions::nu_sc();
    base.instance_dependent_sbps = true;
    base.time_budget_seconds = budgets.solve_seconds;

    ColoringOptions linear = base;
    ColoringOptions binary = base;
    binary.binary_search = true;

    const ColoringOutcome a = solve_coloring(inst.graph, linear);
    const ColoringOutcome b = solve_coloring(inst.graph, binary);
    table.row({inst.name, time_cell(a.total_seconds, a.solved()),
               a.num_colors > 0 ? std::to_string(a.num_colors) : "-",
               time_cell(b.total_seconds, b.solved()),
               b.num_colors > 0 ? std::to_string(b.num_colors) : "-"});
  }
  table.rule();
  std::printf(
      "\nExpected: both find the same chromatic numbers; linear search\n"
      "usually wins because the strengthening solver keeps its learned\n"
      "clauses across bounds, while binary search pays a rebuild per\n"
      "probe (but needs fewer probes when the initial bound is loose).\n");
  return 0;
}
