// Ablation: objective search strategy (DESIGN.md decision #5) — the
// paper's Section 4.1 procedure sketch contrasts linear strengthening
// with binary search over the color bound; core-guided search (UNSAT-core
// lower-bound lifting) is the modern third option. All three now run on
// ONE persistent engine driven by selector-ladder assumptions, so learned
// clauses survive every probe in every strategy.

#include <cstdio>

#include "graph/generators.h"
#include "support.h"

using namespace symcolor;
using namespace symcolor::bench;

int main() {
  const Budgets budgets = load_budgets();
  std::printf(
      "Ablation: linear vs binary vs core-guided objective search "
      "(PBS II, NU+SC)\n\n");

  std::vector<Instance> instances;
  instances.push_back({"myciel4", make_myciel_dimacs(4), 5});
  instances.push_back({"myciel5", make_myciel_dimacs(5), 6});
  instances.push_back({"queen5_5", make_queen_graph(5, 5), 5});
  instances.push_back({"queen6_6", make_queen_graph(6, 6), 7});
  instances.push_back({"huck", make_book_graph(74, 602, 11, 0x4C8), 11});

  TablePrinter table({12, 12, 9, 12, 9, 12, 9});
  table.row({"Instance", "linear", "(chi)", "binary", "(chi)", "core",
             "(chi)"});
  table.rule();
  for (const Instance& inst : instances) {
    ColoringOptions base;
    base.max_colors = budgets.max_colors;
    base.sbps = SbpOptions::nu_sc();
    base.instance_dependent_sbps = true;
    base.time_budget_seconds = budgets.solve_seconds;

    ColoringOptions linear = base;
    ColoringOptions binary = base;
    binary.search = SearchStrategy::Binary;
    ColoringOptions core = base;
    core.search = SearchStrategy::CoreGuided;

    const ColoringOutcome a = solve_coloring(inst.graph, linear);
    const ColoringOutcome b = solve_coloring(inst.graph, binary);
    const ColoringOutcome c = solve_coloring(inst.graph, core);
    table.row({inst.name, time_cell(a.total_seconds, a.solved()),
               a.num_colors > 0 ? std::to_string(a.num_colors) : "-",
               time_cell(b.total_seconds, b.solved()),
               b.num_colors > 0 ? std::to_string(b.num_colors) : "-",
               time_cell(c.total_seconds, c.solved()),
               c.num_colors > 0 ? std::to_string(c.num_colors) : "-"});
  }
  table.rule();
  std::printf(
      "\nExpected: identical chromatic numbers everywhere — all three\n"
      "strategies drive one persistent engine through selector-ladder\n"
      "assumptions, so learned clauses survive every probe. They differ\n"
      "in probe count and in which side of the bound the probes land on:\n"
      "binary needs the fewest probes from a loose initial bound, linear\n"
      "probes are each easy (SAT until the last), core-guided converges\n"
      "from below on instances whose optimum sits far under the bound.\n");
  return 0;
}
