#include "support.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/text.h"

namespace symcolor::bench {

namespace {
double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}
int env_int(const char* name, int fallback) {
  return static_cast<int>(env_double(name, fallback));
}
}  // namespace

Budgets load_budgets() {
  Budgets budgets;
  const char* full = std::getenv("SYMCOLOR_FULL");
  if (full != nullptr && full[0] == '1') {
    budgets.solve_seconds = 1000.0;
    budgets.detect_seconds = 60.0;
  }
  budgets.solve_seconds = env_double("SYMCOLOR_TIMEOUT", budgets.solve_seconds);
  budgets.detect_seconds =
      env_double("SYMCOLOR_DETECT_TIMEOUT", budgets.detect_seconds);
  budgets.max_colors = env_int("SYMCOLOR_K", budgets.max_colors);
  return budgets;
}

RunOutcome run_instance(const Graph& graph, const SbpOptions& sbps,
                        bool instance_dependent, SolverKind solver,
                        const Budgets& budgets) {
  ColoringOptions options;
  options.max_colors = budgets.max_colors;
  options.sbps = sbps;
  options.instance_dependent_sbps = instance_dependent;
  options.solver = solver;
  options.time_budget_seconds = budgets.solve_seconds;

  RunOutcome outcome;
  outcome.detail = solve_coloring(graph, options);
  outcome.solved = outcome.detail.solved();
  outcome.seconds = outcome.detail.total_seconds;
  outcome.num_colors =
      outcome.detail.status == OptStatus::Optimal ? outcome.detail.num_colors
                                                  : -1;
  return outcome;
}

void TablePrinter::row(const std::vector<std::string>& cells) const {
  for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    std::printf("%-*s", widths_[i], cells[i].c_str());
  }
  std::printf("\n");
}

void TablePrinter::rule() const {
  int total = 0;
  for (const int w : widths_) total += w;
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

std::string time_cell(double seconds, bool solved) {
  return format_seconds(seconds, !solved);
}

double log10_sum(const std::vector<double>& log10_values) {
  if (log10_values.empty()) return 0.0;
  double max_log = log10_values.front();
  for (const double v : log10_values) max_log = std::max(max_log, v);
  double sum = 0.0;
  for (const double v : log10_values) sum += std::pow(10.0, v - max_log);
  return max_log + std::log10(sum);
}

}  // namespace symcolor::bench
