// Table 5 (Appendix) reproduction: per-instance detail for the queens
// family — queen5_5, queen6_6, queen7_7, queen8_12 — across all five
// solvers (including the original PBS), all SBP constructions, with and
// without instance-dependent SBPs.

#include <cstdio>

#include "support.h"

using namespace symcolor;
using namespace symcolor::bench;

int main() {
  const Budgets budgets = load_budgets();
  std::printf("Table 5: detailed queens results, K = %d\n",
              budgets.max_colors);
  std::printf("(per-solve budget %.1fs; T/O = timeout)\n\n",
              budgets.solve_seconds);

  const SolverKind solvers[] = {SolverKind::PbsOriginal, SolverKind::PbsII,
                                SolverKind::GenericIlp, SolverKind::Galena,
                                SolverKind::Pueblo};

  for (const Instance& inst : queens_suite()) {
    std::printf("== %s (#V=%d #E=%d chi=%d) ==\n", inst.name.c_str(),
                inst.graph.num_vertices(), inst.graph.num_edges(),
                inst.chromatic_number);
    TablePrinter table({10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10});
    table.row({"SBP", "PBS", "+i.d.", "PBSII", "+i.d.", "GenILP", "+i.d.",
               "Galena", "+i.d.", "Pueblo", "+i.d."});
    table.rule();
    for (const SbpOptions& sbps : paper_sbp_rows()) {
      std::vector<std::string> cells{sbps.any() ? sbps.label() : "no SBPs"};
      for (const SolverKind solver : solvers) {
        for (const bool inst_dep : {false, true}) {
          const RunOutcome r =
              run_instance(inst.graph, sbps, inst_dep, solver, budgets);
          cells.push_back(time_cell(r.seconds, r.solved));
        }
      }
      table.row(cells);
    }
    table.rule();
    std::printf("\n");
  }
  std::printf(
      "Paper shape (Table 5): queen5_5 solved in fractions of a second by\n"
      "most configurations; queen6_6/7_7 need SBPs; queen8_12 is solved\n"
      "only by SC + instance-dependent SBPs (and NU+SC variants); the LI\n"
      "rows time out on everything beyond queen5_5.\n");
  return 0;
}
