// Table 1 reproduction: the 20-instance DIMACS-style benchmark suite —
// name, |V|, |E| and the chromatic number (measured with the exact
// DSATUR branch and bound; "> K" rows are confirmed by an infeasible
// K-coloring query like the paper's K = 20 formulation).

#include <cstdio>
#include <string>

#include "coloring/dsatur_bnb.h"
#include "coloring/exact_colorer.h"
#include "graph/generators.h"
#include "support.h"

using namespace symcolor;
using namespace symcolor::bench;

int main() {
  const Budgets budgets = load_budgets();
  std::printf("Table 1: DIMACS-style graph coloring benchmarks\n");
  std::printf("(chromatic number measured; 'pinned' = generator-guaranteed; "
              "budget %.1fs/instance)\n\n",
              budgets.solve_seconds);

  TablePrinter table({14, 7, 8, 11, 10});
  table.row({"Instance", "#V", "#E", "chi", "source"});
  table.rule();

  for (const Instance& inst : dimacs_suite()) {
    std::string chi;
    std::string source;
    if (inst.chromatic_number > budgets.max_colors) {
      chi = "> " + std::to_string(budgets.max_colors);
      source = "pinned";
    } else if (inst.chromatic_number > 0) {
      chi = std::to_string(inst.chromatic_number);
      source = "pinned";
    } else {
      const Deadline deadline(budgets.solve_seconds);
      const DsaturBnbResult r = dsatur_branch_and_bound(inst.graph, deadline);
      if (r.proved_optimal) {
        chi = std::to_string(r.num_colors);
        source = "measured";
      } else {
        chi = "<= " + std::to_string(r.num_colors);
        source = "timeout";
      }
    }
    table.row({inst.name, std::to_string(inst.graph.num_vertices()),
               std::to_string(inst.graph.num_edges()), chi, source});
  }
  table.rule();
  std::printf(
      "\nPaper values for reference (Table 1): anna 11, david 11,\n"
      "DSJC125.1 5, DSJC125.9 >20, games120 9, huck 11, jean 10,\n"
      "miles250 8, mulsol >20, myciel3/4/5 = 4/5/6, queen5/6/7 = 5/7/7,\n"
      "queen8_12 12, zeroin >20. Edge counts halve the paper's doubled\n"
      "directed-record counts; see EXPERIMENTS.md.\n");
  return 0;
}
