#pragma once
// Shared infrastructure for the table-reproduction benchmarks.
//
// Budgets: the paper ran on Sun-Blade-1000 workstations with 1000-second
// timeouts; the default budgets here are scaled down so the entire bench
// directory completes on a laptop in minutes. Environment knobs:
//   SYMCOLOR_TIMEOUT        per-solve budget in seconds   (default 0.5)
//   SYMCOLOR_DETECT_TIMEOUT symmetry-detection budget     (default 1.5)
//   SYMCOLOR_K              color limit for Table 2/3     (default 20)
//   SYMCOLOR_FULL=1         lift budgets to paper scale (1000 s / 60 s)
// Trends (who wins, by what factor, where timeouts appear) are the
// reproduction target, not absolute runtimes; see EXPERIMENTS.md.

#include <cstdint>
#include <string>
#include <vector>

#include "coloring/exact_colorer.h"
#include "graph/generators.h"

namespace symcolor::bench {

/// Budgets from the environment (see above).
struct Budgets {
  double solve_seconds = 0.5;
  double detect_seconds = 1.5;
  int max_colors = 20;
};
Budgets load_budgets();

/// One row of a Table 3/4/5-style experiment: run a full pipeline and
/// capture result, runtime and timeout status.
struct RunOutcome {
  bool solved = false;      ///< proved Optimal or Infeasible within budget
  double seconds = 0.0;
  int num_colors = -1;      ///< -1 when not solved or infeasible
  ColoringOutcome detail;
};

RunOutcome run_instance(const Graph& graph, const SbpOptions& sbps,
                        bool instance_dependent, SolverKind solver,
                        const Budgets& budgets);

/// Simple fixed-width table printer for paper-style output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<int> widths) : widths_(std::move(widths)) {}
  void row(const std::vector<std::string>& cells) const;
  void rule() const;

 private:
  std::vector<int> widths_;
};

/// "12.3" or "T/O"; also "x/y solved" helpers used by the summary rows.
std::string time_cell(double seconds, bool solved);

/// log-sum of group orders given per-instance log10 values (the paper's
/// "#S" column sums astronomically large counts; we accumulate in log
/// space, exact for the dominant term).
double log10_sum(const std::vector<double>& log10_values);

}  // namespace symcolor::bench
