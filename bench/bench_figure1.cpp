// Figure 1 reproduction: the paper's worked example of the SBP
// constructions on a 4-vertex graph (V1,V2,V3 a triangle, V4 attached to
// V3). For each construction we enumerate every proper color assignment
// with K = 4 and report which survive — the machine-checked version of
// the figure's hand-drawn permitted/forbidden colorings.

#include <cstdio>
#include <vector>

#include "coloring/encoder.h"
#include "pb/optimizer.h"
#include "support.h"

using namespace symcolor;
using namespace symcolor::bench;

namespace {

Graph figure1_graph() {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.finalize();
  return g;
}

bool permitted(const Graph& g, int k, const SbpOptions& sbps,
               const std::vector<int>& colors) {
  ColoringEncoding enc = encode_k_coloring(g, k, sbps);
  for (int i = 0; i < g.num_vertices(); ++i) {
    enc.formula.add_unit(
        Lit::positive(enc.x(i, colors[static_cast<std::size_t>(i)])));
  }
  return solve_decision(enc.formula, {}, {}).status == OptStatus::Optimal;
}

}  // namespace

int main() {
  const Graph g = figure1_graph();
  const int k = 4;
  std::printf("Figure 1: instance-independent SBPs on the worked example\n");
  std::printf("(V1V2V3 triangle + pendant V4; colors 1..4 shown 1-based "
              "like the paper)\n\n");

  const auto rows = paper_sbp_rows();
  TablePrinter table({16, 9, 9, 9, 9, 9, 9, 9});
  {
    std::vector<std::string> header{"assignment"};
    for (const SbpOptions& r : rows) {
      header.push_back(r.any() ? r.label() : "none");
    }
    table.row(header);
  }
  table.rule();

  std::vector<int> totals(rows.size(), 0);
  std::vector<int> colors(4, 0);
  for (;;) {
    if (g.is_proper_coloring(colors)) {
      std::vector<std::string> cells;
      char buf[64];
      std::snprintf(buf, sizeof buf, "(%d,%d,%d,%d)", colors[0] + 1,
                    colors[1] + 1, colors[2] + 1, colors[3] + 1);
      cells.emplace_back(buf);
      for (std::size_t r = 0; r < rows.size(); ++r) {
        const bool ok = permitted(g, k, rows[r], colors);
        cells.emplace_back(ok ? "yes" : "-");
        if (ok) ++totals[r];
      }
      table.row(cells);
    }
    int i = 0;
    while (i < 4 && ++colors[static_cast<std::size_t>(i)] == k) {
      colors[static_cast<std::size_t>(i)] = 0;
      ++i;
    }
    if (i == 4) break;
  }
  table.rule();
  {
    std::vector<std::string> cells{"permitted"};
    for (const int t : totals) cells.push_back(std::to_string(t));
    table.row(cells);
  }
  std::printf(
      "\nPaper checkpoints: (1,3,4,*) banned by NU but (1,2,3,*) kept\n"
      "[Fig 1(c)]; CA pins the size-2 class on color 1 [Fig 1(d)]; LI\n"
      "keeps exactly one assignment per partition [Fig 1(e)]; SC pins V3\n"
      "to color 1 and V1 to color 2.\n");
  return 0;
}
