// Ablation: lex-leader SBP construction size (DESIGN.md decision #3).
// Compares the linear tautology-free chain (Aloul et al. 2003) against
// the auxiliary-free quadratic weakening (Crawford-style) and truncated
// chains, on encoded coloring instances: SBP size, residual work, and
// solve time.

#include <cstdio>

#include "coloring/encoder.h"
#include "graph/generators.h"
#include "pb/optimizer.h"
#include "pb/solver_profiles.h"
#include "support.h"
#include "symmetry/lexleader.h"
#include "symmetry/shatter.h"
#include "util/text.h"

using namespace symcolor;
using namespace symcolor::bench;

namespace {

enum class SbpVariant { Linear, Quadratic, Truncated10 };

const char* variant_name(SbpVariant v) {
  switch (v) {
    case SbpVariant::Linear: return "linear";
    case SbpVariant::Quadratic: return "quadratic";
    case SbpVariant::Truncated10: return "trunc-10";
  }
  return "?";
}

}  // namespace

int main() {
  const Budgets budgets = load_budgets();
  std::printf("Ablation: lex-leader SBP construction (linear vs quadratic "
              "vs truncated)\n\n");

  std::vector<Instance> instances;
  instances.push_back({"myciel4", make_myciel_dimacs(4), 5});
  instances.push_back({"myciel5", make_myciel_dimacs(5), 6});
  instances.push_back({"queen5_5", make_queen_graph(5, 5), 5});
  instances.push_back({"queen6_6", make_queen_graph(6, 6), 7});

  TablePrinter table({12, 11, 10, 10, 12, 9});
  table.row({"Instance", "variant", "clauses", "aux vars", "solve", "(chi)"});
  table.rule();
  for (const Instance& inst : instances) {
    for (const SbpVariant variant :
         {SbpVariant::Linear, SbpVariant::Quadratic, SbpVariant::Truncated10}) {
      ColoringEncoding enc =
          encode_coloring(inst.graph, budgets.max_colors, {});
      const SymmetryInfo info =
          detect_symmetries(enc.formula, Deadline(budgets.detect_seconds));
      LexLeaderStats stats;
      switch (variant) {
        case SbpVariant::Linear:
          stats = add_lex_leader_sbps(enc.formula, info.generators);
          break;
        case SbpVariant::Quadratic:
          stats = add_lex_leader_sbps_quadratic(enc.formula, info.generators);
          break;
        case SbpVariant::Truncated10:
          stats = add_lex_leader_sbps(enc.formula, info.generators, 10);
          break;
      }
      const OptResult r =
          minimize_linear(enc.formula, profile_config(SolverKind::PbsII),
                          Deadline(budgets.solve_seconds));
      table.row({inst.name, variant_name(variant),
                 std::to_string(stats.clauses_added),
                 std::to_string(stats.vars_added),
                 time_cell(r.seconds, r.solved()),
                 r.status == OptStatus::Optimal
                     ? std::to_string(r.best_value)
                     : std::string("-")});
    }
  }
  table.rule();
  std::printf(
      "\nExpected: the linear chain adds ~3 clauses + 1 var per support\n"
      "element and solves fastest; the quadratic variant explodes in\n"
      "literals on long supports; truncation trades completeness for\n"
      "size with mild slowdown.\n");
  return 0;
}
