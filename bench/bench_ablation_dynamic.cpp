// Ablation: dynamic vs static symmetry breaking.
//
// The paper's techniques are *static* — predicates added before search —
// and Section 2.2 reviews the dynamic alternatives (SBDD, GE trees,
// Benhamou's NECSP value symmetries). This bench puts the simplest
// dynamic scheme (one-fresh-color-per-node in a backtracking NECSP
// colorer) against the paper's static pipeline, plus the same CSP search
// with the rule disabled to show what value symmetry costs when nobody
// breaks it.

#include <cstdio>

#include "coloring/csp_colorer.h"
#include "graph/generators.h"
#include "support.h"
#include "util/text.h"

using namespace symcolor;
using namespace symcolor::bench;

int main() {
  const Budgets budgets = load_budgets();
  std::printf("Ablation: dynamic value-symmetry breaking (NECSP search) vs\n"
              "static SBPs (reduction flow)  [budget %.1fs/run]\n\n",
              budgets.solve_seconds);

  std::vector<Instance> instances;
  instances.push_back({"myciel3", make_myciel_dimacs(3), 4});
  instances.push_back({"myciel4", make_myciel_dimacs(4), 5});
  instances.push_back({"queen5_5", make_queen_graph(5, 5), 5});
  instances.push_back({"queen6_6", make_queen_graph(6, 6), 7});
  instances.push_back({"huck", make_book_graph(74, 602, 11, 0x4C8), 11});

  TablePrinter table({12, 22, 12, 8, 14});
  table.row({"Instance", "method", "time", "chi", "nodes"});
  table.rule();
  for (const Instance& inst : instances) {
    {
      const Deadline deadline(budgets.solve_seconds);
      const CspColorerResult r =
          csp_min_coloring(inst.graph, /*break_value_symmetry=*/true, deadline);
      table.row({inst.name, "CSP dynamic", time_cell(r.seconds, r.completed),
                 std::to_string(Graph::count_colors(r.coloring)),
                 std::to_string(r.nodes)});
    }
    {
      const Deadline deadline(budgets.solve_seconds);
      const CspColorerResult r = csp_min_coloring(
          inst.graph, /*break_value_symmetry=*/false, deadline);
      table.row({inst.name, "CSP no-sym-breaking",
                 time_cell(r.seconds, r.completed),
                 std::to_string(Graph::count_colors(r.coloring)),
                 std::to_string(r.nodes)});
    }
    {
      const RunOutcome r = run_instance(inst.graph, SbpOptions::sc_only(),
                                        /*instance_dependent=*/true,
                                        SolverKind::PbsII, budgets);
      table.row({inst.name, "static SBP reduction",
                 time_cell(r.seconds, r.solved),
                 r.num_colors > 0 ? std::to_string(r.num_colors) : "-",
                 std::to_string(r.detail.solver_stats.decisions)});
    }
    table.rule();
  }
  std::printf(
      "\nExpected: disabling the dynamic fresh-color rule explodes the CSP\n"
      "node count by roughly the K! value symmetry; with it, the dedicated\n"
      "search is competitive on easy instances (the paper's Section 4.3\n"
      "observation about Benhamou's solver) while the reduction flow keeps\n"
      "up despite being generic — its selling point.\n");
  return 0;
}
