// SolveBudget / BudgetLedger semantics and the budgeted-solve contract:
// unlimited defaults, child clamping against the parent chain, async
// interrupt (same-thread and cross-thread, with bounded latency), per-kind
// budget trips in the CDCL loop, and graceful degradation through the
// optimizer and the SAT-loop / exact colorers.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "coloring/cnf_coloring.h"
#include "coloring/encoder.h"
#include "coloring/exact_colorer.h"
#include "graph/generators.h"
#include "pb/optimizer.h"
#include "pb/solver_profiles.h"
#include "sat/cdcl.h"
#include "sat/portfolio.h"
#include "util/budget.h"

namespace symcolor {
namespace {

Formula pigeonhole_formula(int pigeons, int holes) {
  Formula f;
  std::vector<std::vector<Var>> in(static_cast<std::size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)].push_back(f.new_var());
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) {
      c.push_back(Lit::positive(
          in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    f.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        f.add_clause({Lit::negative(in[static_cast<std::size_t>(p1)]
                                      [static_cast<std::size_t>(h)]),
                      Lit::negative(in[static_cast<std::size_t>(p2)]
                                      [static_cast<std::size_t>(h)])});
      }
    }
  }
  return f;
}

// ---- SolveBudget semantics ----

TEST(SolveBudget, DefaultIsUnlimited) {
  const SolveBudget b;
  EXPECT_TRUE(b.unlimited());
  EXPECT_FALSE(b.deadline_expired());
  EXPECT_FALSE(b.interrupted());
  EXPECT_EQ(b.conflict_budget(), 0);
  EXPECT_EQ(b.prop_budget(), 0);
  EXPECT_EQ(b.poll(), BudgetTrip::None);
}

TEST(SolveBudget, ZeroAndNegativeLimitsMeanUnlimited) {
  const SolveBudget zero(0.0, 0, 0);
  EXPECT_TRUE(zero.unlimited());
  const SolveBudget negative(-3.0, -10, -10);
  EXPECT_TRUE(negative.unlimited());
  EXPECT_FALSE(negative.deadline_expired());
  EXPECT_EQ(negative.conflict_budget(), 0);
  EXPECT_EQ(negative.prop_budget(), 0);
}

TEST(SolveBudget, ArmedLimitsAreVisible) {
  const SolveBudget b(3600.0, 100, 2000);
  EXPECT_FALSE(b.unlimited());
  EXPECT_EQ(b.conflict_budget(), 100);
  EXPECT_EQ(b.prop_budget(), 2000);
  EXPECT_GT(b.remaining_seconds(), 0.0);
}

TEST(SolveBudget, RemainingSecondsClampsAtZeroAfterExpiry) {
  const SolveBudget b(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(b.deadline_expired());
  EXPECT_EQ(b.remaining_seconds(), 0.0);
  EXPECT_EQ(b.poll(), BudgetTrip::Deadline);
}

TEST(SolveBudget, InterruptSetsClearsAndDominatesDeadline) {
  const SolveBudget b(1e-9);  // already expired
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  b.interrupt();
  EXPECT_TRUE(b.interrupted());
  // poll() reports the interrupt even though the deadline also fired.
  EXPECT_EQ(b.poll(), BudgetTrip::Interrupt);
  b.clear_interrupt();
  EXPECT_FALSE(b.interrupted());
  EXPECT_EQ(b.poll(), BudgetTrip::Deadline);
}

TEST(SolveBudget, DeadlineConversionCarriesElapsedTime) {
  const Deadline expired(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const SolveBudget b = expired;  // implicit migration shim
  EXPECT_TRUE(b.deadline_expired());
  const SolveBudget open = Deadline{};
  EXPECT_TRUE(open.unlimited());
}

// ---- child clamping against the parent chain ----

TEST(SolveBudgetChild, CountedCapsNeverExceedParent) {
  const SolveBudget parent(0.0, 100, 1000);
  // Asking for more than the parent has is clamped down.
  const SolveBudget greedy = parent.child(0.0, 500, 5000);
  EXPECT_EQ(greedy.conflict_budget(), 100);
  EXPECT_EQ(greedy.prop_budget(), 1000);
  // Asking for less keeps the tighter value.
  const SolveBudget modest = parent.child(0.0, 10, 50);
  EXPECT_EQ(modest.conflict_budget(), 10);
  EXPECT_EQ(modest.prop_budget(), 50);
  // Asking for nothing inherits the parent's caps (a child can never be
  // less constrained than its parent).
  const SolveBudget inherit = parent.child();
  EXPECT_EQ(inherit.conflict_budget(), 100);
  EXPECT_EQ(inherit.prop_budget(), 1000);
}

TEST(SolveBudgetChild, UnlimitedParentPassesChildLimitsThrough) {
  const SolveBudget parent;
  const SolveBudget child = parent.child(0.0, 42, 7);
  EXPECT_EQ(child.conflict_budget(), 42);
  EXPECT_EQ(child.prop_budget(), 7);
  EXPECT_FALSE(child.unlimited());
  EXPECT_TRUE(parent.child().unlimited());
}

TEST(SolveBudgetChild, WallClockClampedToParentRemaining) {
  const SolveBudget parent(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  // The parent is spent: any child deadline is already expired too.
  const SolveBudget child = parent.child(3600.0);
  EXPECT_TRUE(child.deadline_expired());
  EXPECT_EQ(child.poll(), BudgetTrip::Deadline);
}

TEST(SolveBudgetChild, ParentInterruptPreemptsDescendants) {
  const SolveBudget parent;
  const SolveBudget child = parent.child(3600.0);
  const SolveBudget grandchild = child.child(60.0);
  EXPECT_EQ(grandchild.poll(), BudgetTrip::None);
  parent.interrupt();
  EXPECT_TRUE(child.interrupted());
  EXPECT_TRUE(grandchild.interrupted());
  EXPECT_EQ(grandchild.poll(), BudgetTrip::Interrupt);
  // Clearing the CHILD does not silence the parent-level interrupt.
  child.clear_interrupt();
  EXPECT_TRUE(child.interrupted());
  parent.clear_interrupt();
  EXPECT_FALSE(grandchild.interrupted());
}

// ---- BudgetLedger ----

TEST(BudgetLedger, TripsWhenChargesReachTheCap) {
  const SolveBudget parent(0.0, 100, 0);
  BudgetLedger ledger(parent);
  EXPECT_EQ(ledger.trip(), BudgetTrip::None);
  ledger.charge(60, 0);
  EXPECT_EQ(ledger.trip(), BudgetTrip::None);
  // The probe slice carries exactly the remainder.
  EXPECT_EQ(ledger.probe().conflict_budget(), 40);
  ledger.charge(40, 0);
  EXPECT_EQ(ledger.trip(), BudgetTrip::Conflicts);
  EXPECT_TRUE(ledger.exhausted());
  EXPECT_EQ(ledger.spent_conflicts(), 100);
}

TEST(BudgetLedger, PropagationCapAndUnlimitedParent) {
  const SolveBudget props(0.0, 0, 500);
  BudgetLedger ledger(props);
  ledger.charge(1000000, 499);  // conflicts unlimited: never trips on them
  EXPECT_EQ(ledger.trip(), BudgetTrip::None);
  ledger.charge(0, 1);
  EXPECT_EQ(ledger.trip(), BudgetTrip::Propagations);

  const SolveBudget open;
  BudgetLedger free_ledger(open);
  free_ledger.charge(1 << 30, 1 << 30);
  EXPECT_EQ(free_ledger.trip(), BudgetTrip::None);
  EXPECT_TRUE(free_ledger.probe().unlimited());
}

TEST(BudgetLedger, AsyncConditionsOutrankCountedOnes) {
  const SolveBudget parent(0.0, 10, 0);
  BudgetLedger ledger(parent);
  ledger.charge(10, 0);
  EXPECT_EQ(ledger.trip(), BudgetTrip::Conflicts);
  parent.interrupt();
  EXPECT_EQ(ledger.trip(), BudgetTrip::Interrupt);
  parent.clear_interrupt();
}

// ---- exhausted-ledger probes (the probe-slice edge case) ----

TEST(BudgetLedgerProbe, ExhaustedConflictLedgerHandsOutPreTrippedProbe) {
  const SolveBudget parent(0.0, 50, 0);
  BudgetLedger ledger(parent);
  ledger.charge(50, 0);
  ASSERT_TRUE(ledger.exhausted());
  const SolveBudget probe = ledger.probe();
  EXPECT_EQ(probe.pre_tripped(), BudgetTrip::Conflicts);
  EXPECT_EQ(probe.poll(), BudgetTrip::Conflicts);
  EXPECT_FALSE(probe.unlimited());
  // Fails-before regression: the old remainder floor of 1 conflict let a
  // CONFLICT-FREE solve run to a full answer on an exhausted ledger (the
  // cap only counts conflicts, and an easy instance has none). A
  // pre-tripped probe is refused at the solver's entry poll instead:
  // Unknown, correct trip kind, zero work.
  CdclSolver solver(pigeonhole_formula(5, 6));  // satisfiable, conflict-free
  EXPECT_EQ(solver.solve(probe), SolveResult::Unknown);
  EXPECT_EQ(solver.last_trip(), BudgetTrip::Conflicts);
  EXPECT_EQ(solver.stats().conflicts, 0);
  EXPECT_EQ(solver.stats().decisions, 0);
}

TEST(BudgetLedgerProbe, OverspentPropagationLedgerAlsoPreTrips) {
  const SolveBudget parent(0.0, 0, 400);
  BudgetLedger ledger(parent);
  ledger.charge(0, 1000);  // overshoot past the cap mid-loop
  const SolveBudget probe = ledger.probe();
  EXPECT_EQ(probe.pre_tripped(), BudgetTrip::Propagations);
  CdclSolver solver(pigeonhole_formula(5, 6));
  EXPECT_EQ(solver.solve(probe), SolveResult::Unknown);
  EXPECT_EQ(solver.last_trip(), BudgetTrip::Propagations);
  EXPECT_EQ(solver.stats().decisions, 0);
}

TEST(BudgetLedgerProbe, PreTripSurvivesMoveAndOutranksAsyncConditions) {
  const SolveBudget parent(0.0, 10, 0);
  SolveBudget exhausted = parent.child_exhausted(BudgetTrip::Conflicts);
  const SolveBudget moved = std::move(exhausted);
  EXPECT_EQ(moved.pre_tripped(), BudgetTrip::Conflicts);
  EXPECT_EQ(moved.poll(), BudgetTrip::Conflicts);
  EXPECT_FALSE(moved.unlimited());
  parent.interrupt();
  // The recorded trip keeps reporting the dimension that actually ran
  // out, not whatever fired later up the chain.
  EXPECT_EQ(moved.poll(), BudgetTrip::Conflicts);
  parent.clear_interrupt();
}

// ---- CDCL budget trips ----

TEST(CdclBudget, ConflictBudgetTripsAndIsRecorded) {
  CdclSolver solver(pigeonhole_formula(8, 7));
  const SolveBudget budget(0.0, 100);
  EXPECT_EQ(solver.solve(budget), SolveResult::Unknown);
  EXPECT_EQ(solver.last_trip(), BudgetTrip::Conflicts);
  EXPECT_EQ(solver.stats().conflict_budget_exits, 1);
  // The cap is enforced on every iteration: no overshoot beyond the
  // conflicts of the final step.
  EXPECT_GE(solver.stats().conflicts, 100);
  EXPECT_LE(solver.stats().conflicts, 110);
}

TEST(CdclBudget, PropagationBudgetTrips) {
  CdclSolver solver(pigeonhole_formula(8, 7));
  const SolveBudget budget(0.0, 0, 500);
  EXPECT_EQ(solver.solve(budget), SolveResult::Unknown);
  EXPECT_EQ(solver.last_trip(), BudgetTrip::Propagations);
  EXPECT_EQ(solver.stats().prop_budget_exits, 1);
}

TEST(CdclBudget, DeadlineTripsViaBudget) {
  CdclSolver solver(pigeonhole_formula(9, 8));
  const SolveBudget budget(1e-6);
  EXPECT_EQ(solver.solve(budget), SolveResult::Unknown);
  EXPECT_EQ(solver.last_trip(), BudgetTrip::Deadline);
  EXPECT_EQ(solver.stats().deadline_exits, 1);
}

TEST(CdclBudget, TighterOfConfigAndBudgetConflictCapsWins) {
  SolverConfig config;
  config.conflict_budget = 50;
  CdclSolver a(pigeonhole_formula(8, 7), config);
  EXPECT_EQ(a.solve(SolveBudget(0.0, 10000)), SolveResult::Unknown);
  EXPECT_LE(a.stats().conflicts, 60);

  CdclSolver b(pigeonhole_formula(8, 7), config);
  EXPECT_EQ(b.solve(SolveBudget(0.0, 20)), SolveResult::Unknown);
  EXPECT_LE(b.stats().conflicts, 30);
}

TEST(CdclBudget, SuccessfulSolveReportsNoTrip) {
  CdclSolver solver(pigeonhole_formula(6, 5));
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_EQ(solver.last_trip(), BudgetTrip::None);
  EXPECT_EQ(solver.stats().deadline_exits, 0);
  EXPECT_EQ(solver.stats().interrupt_exits, 0);
}

// ---- interrupt latency (the preemption contract) ----

TEST(CdclInterrupt, PresetInterruptStopsWithinBoundedConflicts) {
  // The interrupt is polled every 256 search steps, so a solve entered
  // with the flag already raised must give up almost immediately — far
  // inside this instance's full search.
  CdclSolver solver(pigeonhole_formula(10, 9));
  const SolveBudget budget;
  budget.interrupt();
  EXPECT_EQ(solver.solve(budget), SolveResult::Unknown);
  EXPECT_EQ(solver.last_trip(), BudgetTrip::Interrupt);
  EXPECT_EQ(solver.stats().interrupt_exits, 1);
  EXPECT_LE(solver.stats().conflicts, 1024) << "interrupt latency unbounded";
}

TEST(CdclInterrupt, StickyInterruptPreemptsNextSolveByDesign) {
  // The stale-interrupt contract on reused engines (see
  // SolveBudget::interrupt() and CdclSolver::solve()): solve() never
  // clears the flag, so an interrupt raised AFTER solve N returns
  // preempts solve N+1 at its entry poll — run-wide kill-switch
  // semantics — and clear_interrupt() is the owner's documented re-arm.
  CdclSolver solver(pigeonhole_formula(5, 6));
  const SolveBudget budget;
  EXPECT_EQ(solver.solve(budget), SolveResult::Sat);
  budget.interrupt();
  const std::int64_t before = solver.stats().conflicts;
  EXPECT_EQ(solver.solve(budget), SolveResult::Unknown);
  EXPECT_EQ(solver.last_trip(), BudgetTrip::Interrupt);
  EXPECT_EQ(solver.stats().conflicts, before) << "preempted solve did work";
  budget.clear_interrupt();
  EXPECT_EQ(solver.solve(budget), SolveResult::Sat);
  EXPECT_EQ(solver.last_trip(), BudgetTrip::None);
}

TEST(CdclInterrupt, PortfolioStopFlagDoesNotLeakAcrossSolves) {
  // The portfolio's internal stop flag is frame-local to each solve();
  // a second solve on the same engine starts clean and reaches a
  // definitive answer again (no stale cooperative-stop state).
  SolverConfig config;
  config.portfolio_threads = 2;
  PortfolioSolver solver(pigeonhole_formula(5, 6), config);
  EXPECT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.last_trip(), BudgetTrip::None);
}

TEST(CdclInterrupt, CrossThreadInterruptStopsTheSolve) {
  // php(10,9) is far beyond what the backstop deadline allows to finish:
  // if the asynchronous interrupt did not preempt the solve promptly, the
  // trip would be Deadline (after 60 s) and the assertions would fail.
  CdclSolver solver(pigeonhole_formula(10, 9));
  const SolveBudget budget(60.0);
  std::thread interrupter([&budget] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    budget.interrupt();
  });
  const SolveResult r = solver.solve(budget);
  interrupter.join();
  EXPECT_EQ(r, SolveResult::Unknown);
  EXPECT_EQ(solver.last_trip(), BudgetTrip::Interrupt);

  // clear_interrupt() re-arms the same budget for a fresh solve.
  budget.clear_interrupt();
  CdclSolver quick(pigeonhole_formula(6, 5));
  EXPECT_EQ(quick.solve(budget), SolveResult::Unsat);
  EXPECT_EQ(quick.last_trip(), BudgetTrip::None);
}

// ---- optimizer degradation ----

TEST(OptimizerBudget, DecisionUnderExhaustedBudgetIsUnknownNeverFeasible) {
  const SolverConfig config = profile_config(SolverKind::PbsII);
  const SolveBudget budget(0.0, 5);
  const OptResult r =
      solve_decision(pigeonhole_formula(9, 8), config, budget);
  EXPECT_EQ(r.status, OptStatus::Unknown);
  EXPECT_TRUE(r.model.empty());
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_EQ(r.tripped, BudgetTrip::Conflicts);
}

TEST(OptimizerBudget, MinimizeWithNoIncumbentReportsUnknown) {
  // A conflict budget too small for even the first probe: the run must
  // report Unknown with an empty model — never Feasible with garbage.
  Formula f = pigeonhole_formula(9, 8);
  Objective obj;
  for (Var v = 0; v < 8; ++v) obj.terms.push_back({1, Lit::positive(v)});
  f.set_objective(obj);
  const SolverConfig config = profile_config(SolverKind::PbsII);
  const OptResult r =
      minimize(f, config, SolveBudget(0.0, 10), SearchStrategy::Linear);
  EXPECT_EQ(r.status, OptStatus::Unknown);
  EXPECT_TRUE(r.model.empty());
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_NE(r.tripped, BudgetTrip::None);
}

TEST(OptimizerBudget, DegradationKeepsIncumbentAndProvenBound) {
  // Sweep conflict budgets from starved to ample on a queen5 coloring
  // minimization (optimum 5), encoded WITHOUT SBPs so the optimality
  // proof costs ~1000 conflicts and a genuine Feasible window exists
  // between "no incumbent yet" and "proved optimal". Every budgeted
  // exit must satisfy the degradation contract.
  const Graph g = make_queen_graph(5, 5);
  const ColoringEncoding enc = encode_coloring(g, 7, SbpOptions::none());
  const SolverConfig config = profile_config(SolverKind::PbsII);

  bool saw_feasible = false;
  OptResult final_result;
  for (std::int64_t cap = 50; cap <= 100000; cap = cap * 2) {
    const OptResult r = minimize(enc.formula, config, SolveBudget(0.0, cap),
                                 SearchStrategy::Linear);
    if (r.status == OptStatus::Unknown) {
      EXPECT_TRUE(r.model.empty());
      EXPECT_TRUE(r.budget_exhausted);
      continue;
    }
    if (r.status == OptStatus::Feasible) {
      saw_feasible = true;
      EXPECT_FALSE(r.model.empty());
      EXPECT_TRUE(r.budget_exhausted);
      EXPECT_NE(r.tripped, BudgetTrip::None);
      // The incumbent is an upper bound, the proven bound a lower one.
      EXPECT_GE(r.best_value, 5);
      EXPECT_LE(r.lower_bound, r.best_value);
      continue;
    }
    ASSERT_EQ(r.status, OptStatus::Optimal);
    final_result = r;
    break;
  }
  EXPECT_TRUE(saw_feasible) << "no budget hit the Feasible window";
  ASSERT_EQ(final_result.status, OptStatus::Optimal);
  EXPECT_EQ(final_result.best_value, 5);
  EXPECT_EQ(final_result.lower_bound, 5);
  EXPECT_EQ(final_result.tripped, BudgetTrip::None);
  EXPECT_FALSE(final_result.budget_exhausted);
}

TEST(OptimizerBudget, AllStrategiesDegradeGracefully) {
  // Tiny whole-run conflict budget under each strategy: the status must
  // be internally consistent (Feasible => model; Unknown => no model) and
  // the trip recorded.
  const Graph g = make_queen_graph(5, 5);
  const ColoringEncoding enc = encode_coloring(g, 7, SbpOptions::none());
  const SolverConfig config = profile_config(SolverKind::PbsII);
  for (const SearchStrategy strategy :
       {SearchStrategy::Linear, SearchStrategy::Binary,
        SearchStrategy::CoreGuided}) {
    const OptResult r = minimize(enc.formula, config, SolveBudget(0.0, 200),
                                 strategy);
    if (r.status == OptStatus::Optimal) continue;  // got lucky: fine
    EXPECT_TRUE(r.budget_exhausted) << search_strategy_name(strategy);
    EXPECT_NE(r.tripped, BudgetTrip::None) << search_strategy_name(strategy);
    if (r.status == OptStatus::Feasible) {
      EXPECT_FALSE(r.model.empty()) << search_strategy_name(strategy);
      EXPECT_LE(r.lower_bound, r.best_value) << search_strategy_name(strategy);
    } else {
      EXPECT_EQ(r.status, OptStatus::Unknown);
      EXPECT_TRUE(r.model.empty()) << search_strategy_name(strategy);
    }
  }
}

// ---- colorer degradation ----

TEST(ColoringBudget, SatLoopDegradesToBestColoringAndProvenBound) {
  // myciel4: chi = 5, clique number 2 — the k=4 UNSAT proof cannot fit in
  // a 5-conflict budget, so the loop must stop with the DSATUR coloring
  // and the clique lower bound.
  const Graph g = make_myciel_dimacs(4);
  SatLoopOptions options;
  options.conflict_budget = 5;
  const SatLoopResult r = solve_coloring_sat_loop(g, options);
  EXPECT_EQ(r.status, OptStatus::Feasible);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_EQ(r.tripped, BudgetTrip::Conflicts);
  EXPECT_TRUE(g.is_proper_coloring(r.coloring));
  EXPECT_GE(r.num_colors, 5);
  EXPECT_GE(r.lower_bound, 2);
  EXPECT_LE(r.lower_bound, r.num_colors);
}

TEST(ColoringBudget, SatLoopOptimalRunProvesItsBound) {
  const Graph g = make_myciel_dimacs(3);
  const SatLoopResult r = solve_coloring_sat_loop(g, {});
  ASSERT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.num_colors, 4);
  EXPECT_EQ(r.lower_bound, 4);
  EXPECT_EQ(r.tripped, BudgetTrip::None);
  EXPECT_FALSE(r.budget_exhausted);
}

TEST(ColoringBudget, SatLoopHonorsExternalInterruptedBudget) {
  // An already-interrupted external budget preempts every query: the loop
  // still degrades to the heuristic coloring instead of failing.
  const Graph g = make_myciel_dimacs(4);
  SolveBudget external;
  external.interrupt();
  SatLoopOptions options;
  options.budget = &external;
  const SatLoopResult r = solve_coloring_sat_loop(g, options);
  EXPECT_EQ(r.status, OptStatus::Feasible);
  EXPECT_EQ(r.tripped, BudgetTrip::Interrupt);
  EXPECT_TRUE(g.is_proper_coloring(r.coloring));
  EXPECT_GE(r.lower_bound, 1);
}

TEST(ColoringBudget, ExactColorerReportsTripAndBound) {
  const Graph g = make_queen_graph(5, 5);
  ColoringOptions options;
  options.max_colors = 7;
  options.conflict_budget = 10;
  const ColoringOutcome r = solve_coloring(g, options);
  EXPECT_FALSE(r.solved());
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_EQ(r.tripped, BudgetTrip::Conflicts);
  if (r.status == OptStatus::Feasible) {
    EXPECT_TRUE(g.is_proper_coloring(r.coloring));
    EXPECT_LE(r.lower_bound, r.num_colors);
  } else {
    EXPECT_EQ(r.status, OptStatus::Unknown);
    EXPECT_TRUE(r.coloring.empty());
  }
}

TEST(ColoringBudget, ExactColorerDecisionUnderInterruptIsUnknown) {
  const Graph g = make_queen_graph(5, 5);
  SolveBudget external;
  external.interrupt();
  ColoringOptions options;
  options.max_colors = 5;
  options.budget = &external;
  const ColoringOutcome r = solve_k_coloring(g, options);
  EXPECT_EQ(r.status, OptStatus::Unknown);
  EXPECT_TRUE(r.coloring.empty());
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_EQ(r.tripped, BudgetTrip::Interrupt);
}

}  // namespace
}  // namespace symcolor
