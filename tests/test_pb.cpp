// Tests for the optimization layer (linear/binary minimization) and the
// generic branch-and-bound ILP solver (CPLEX stand-in).

#include <gtest/gtest.h>

#include "pb/generic_ilp.h"
#include "pb/optimizer.h"
#include "pb/solver_profiles.h"
#include "util/rng.h"

namespace symcolor {
namespace {

/// MIN sum x subject to "at least `lower` of the n variables true".
Formula min_true_vars(int n, int lower) {
  Formula f;
  const Var first = f.new_vars(n);
  std::vector<Lit> lits;
  Objective obj;
  for (int i = 0; i < n; ++i) {
    lits.push_back(Lit::positive(first + i));
    obj.terms.push_back({1, Lit::positive(first + i)});
  }
  f.add_at_least(lits, lower);
  f.set_objective(obj);
  return f;
}

/// Brute-force optimum of a formula with small var count.
std::int64_t brute_force_min(const Formula& f) {
  const int n = f.num_vars();
  std::int64_t best = -1;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<LBool> vals(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      vals[static_cast<std::size_t>(i)] =
          (mask >> i) & 1 ? LBool::True : LBool::False;
    }
    if (!f.satisfied_by(vals)) continue;
    const std::int64_t value = f.objective()->value(vals);
    if (best < 0 || value < best) best = value;
  }
  return best;
}

TEST(MinimizeLinear, SimpleCardinalityObjective) {
  const Formula f = min_true_vars(6, 3);
  const OptResult r = minimize_linear(f, {}, {});
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.best_value, 3);
  EXPECT_TRUE(f.satisfied_by(r.model));
}

TEST(MinimizeLinear, InfeasibleReported) {
  Formula f = min_true_vars(3, 2);
  // Forbid every variable: infeasible.
  for (int i = 0; i < 3; ++i) f.add_unit(Lit::negative(i));
  const OptResult r = minimize_linear(f, {}, {});
  EXPECT_EQ(r.status, OptStatus::Infeasible);
}

TEST(MinimizeLinear, NoObjectiveDegeneratesToDecision) {
  Formula f;
  const Var a = f.new_var();
  f.add_unit(Lit::positive(a));
  const OptResult r = minimize_linear(f, {}, {});
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_FALSE(r.model.empty());
}

TEST(MinimizeLinear, ZeroOptimumWhenUnconstrained) {
  Formula f;
  Objective obj;
  const Var first = f.new_vars(4);
  for (int i = 0; i < 4; ++i) obj.terms.push_back({1, Lit::positive(first + i)});
  f.set_objective(obj);
  const OptResult r = minimize_linear(f, {}, {});
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.best_value, 0);
}

TEST(MinimizeLinear, WeightedObjective) {
  // minimize 5a + b + c subject to a | b, a | c: optimum b=c=1 => 2.
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  const Var c = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  f.add_clause({Lit::positive(a), Lit::positive(c)});
  Objective obj;
  obj.terms = {{5, Lit::positive(a)}, {1, Lit::positive(b)}, {1, Lit::positive(c)}};
  f.set_objective(obj);
  const OptResult r = minimize_linear(f, {}, {});
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.best_value, 2);
}

TEST(MinimizeBinary, MatchesLinear) {
  const Formula f = min_true_vars(7, 4);
  const OptResult lin = minimize_linear(f, {}, {});
  const OptResult bin = minimize_binary(f, {}, {});
  EXPECT_EQ(bin.status, OptStatus::Optimal);
  EXPECT_EQ(bin.best_value, lin.best_value);
}

TEST(MinimizeBinary, InfeasibleReported) {
  Formula f = min_true_vars(3, 2);
  for (int i = 0; i < 3; ++i) f.add_unit(Lit::negative(i));
  const OptResult r = minimize_binary(f, {}, {});
  EXPECT_EQ(r.status, OptStatus::Infeasible);
}

TEST(GenericIlp, SimpleOptimum) {
  const Formula f = min_true_vars(6, 3);
  const OptResult r = solve_generic_ilp(f, {});
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.best_value, 3);
  EXPECT_TRUE(f.satisfied_by(r.model));
}

TEST(GenericIlp, Infeasible) {
  Formula f;
  const Var a = f.new_var();
  f.add_unit(Lit::positive(a));
  f.add_unit(Lit::negative(a));
  const OptResult r = solve_generic_ilp(f, {});
  EXPECT_EQ(r.status, OptStatus::Infeasible);
}

TEST(GenericIlp, DecisionModeWithoutObjective) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  f.add_clause({Lit::negative(a), Lit::negative(b)});
  const OptResult r = solve_generic_ilp(f, {});
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_TRUE(f.satisfied_by(r.model));
}

TEST(GenericIlp, RejectsNonCardinalityPb) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_pb(PbConstraint::at_least(
      {{2, Lit::positive(a)}, {1, Lit::positive(b)}}, 2));
  EXPECT_THROW((void)solve_generic_ilp(f, {}), std::invalid_argument);
}

TEST(GenericIlp, NoLearningStats) {
  const Formula f = min_true_vars(5, 2);
  const OptResult r = solve_generic_ilp(f, {});
  EXPECT_EQ(r.stats.learned_clauses, 0);
  EXPECT_EQ(r.stats.restarts, 0);
}

TEST(SolverProfiles, AllCdclKindsHaveConfigs) {
  for (const SolverKind kind :
       {SolverKind::PbsOriginal, SolverKind::PbsII, SolverKind::Galena,
        SolverKind::Pueblo}) {
    EXPECT_NO_THROW((void)profile_config(kind));
  }
  EXPECT_THROW((void)profile_config(SolverKind::GenericIlp),
               std::invalid_argument);
}

TEST(SolverProfiles, NamesAreDistinct) {
  EXPECT_EQ(solver_name(SolverKind::PbsII), "PBS II");
  EXPECT_NE(solver_name(SolverKind::Galena), solver_name(SolverKind::Pueblo));
}

TEST(SolverProfiles, ConfigsDiffer) {
  const SolverConfig pbs2 = profile_config(SolverKind::PbsII);
  const SolverConfig galena = profile_config(SolverKind::Galena);
  const SolverConfig pueblo = profile_config(SolverKind::Pueblo);
  EXPECT_NE(pbs2.restart_scheme == galena.restart_scheme &&
                pbs2.var_decay == galena.var_decay,
            true);
  EXPECT_NE(pueblo.restart_base, pbs2.restart_base);
}

// Randomized optimization cross-checks, all four CDCL personalities.
struct OptSweepParams {
  std::uint64_t seed;
  SolverKind kind;
};

class OptimizerSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(OptimizerSweep, MatchesBruteForce) {
  const auto [seed, kind_index] = GetParam();
  const SolverKind kinds[] = {SolverKind::PbsOriginal, SolverKind::PbsII,
                              SolverKind::Galena, SolverKind::Pueblo};
  const SolverKind kind = kinds[kind_index];

  Rng rng(seed);
  const int vars = 7;
  Formula f;
  f.new_vars(vars);
  for (int c = 0; c < 6; ++c) {
    Clause clause;
    for (int i = 0; i < 3; ++i) {
      clause.push_back(Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
    }
    f.add_clause(std::move(clause));
  }
  std::vector<Lit> lits;
  for (int i = 0; i < vars; ++i) lits.push_back(Lit::positive(i));
  f.add_at_least(lits, 1 + static_cast<std::int64_t>(rng.below(3)));
  Objective obj;
  for (int i = 0; i < vars; ++i) obj.terms.push_back({1, Lit::positive(i)});
  f.set_objective(obj);

  const std::int64_t expected = brute_force_min(f);
  const OptResult r = minimize_linear(f, profile_config(kind), {});
  if (expected < 0) {
    EXPECT_EQ(r.status, OptStatus::Infeasible);
  } else {
    EXPECT_EQ(r.status, OptStatus::Optimal);
    EXPECT_EQ(r.best_value, expected);
  }

  // The generic B&B must agree as well.
  const OptResult g = solve_generic_ilp(f, {});
  if (expected < 0) {
    EXPECT_EQ(g.status, OptStatus::Infeasible);
  } else {
    EXPECT_EQ(g.status, OptStatus::Optimal);
    EXPECT_EQ(g.best_value, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizerSweep,
    ::testing::Combine(::testing::Range<std::uint64_t>(200, 208),
                       ::testing::Range(0, 4)));

}  // namespace
}  // namespace symcolor
