// Tests for the optimization layer (linear/binary/core-guided
// minimization on one persistent engine), the objective selector ladder,
// and the generic branch-and-bound ILP solver (CPLEX stand-in).

#include <gtest/gtest.h>

#include "cnf/objective_ladder.h"
#include "pb/generic_ilp.h"
#include "pb/optimizer.h"
#include "pb/solver_profiles.h"
#include "sat/cdcl.h"
#include "util/rng.h"

namespace symcolor {
namespace {

/// MIN sum x subject to "at least `lower` of the n variables true".
Formula min_true_vars(int n, int lower) {
  Formula f;
  const Var first = f.new_vars(n);
  std::vector<Lit> lits;
  Objective obj;
  for (int i = 0; i < n; ++i) {
    lits.push_back(Lit::positive(first + i));
    obj.terms.push_back({1, Lit::positive(first + i)});
  }
  f.add_at_least(lits, lower);
  f.set_objective(obj);
  return f;
}

/// Brute-force optimum of a formula with small var count.
std::int64_t brute_force_min(const Formula& f) {
  const int n = f.num_vars();
  std::int64_t best = -1;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<LBool> vals(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      vals[static_cast<std::size_t>(i)] =
          (mask >> i) & 1 ? LBool::True : LBool::False;
    }
    if (!f.satisfied_by(vals)) continue;
    const std::int64_t value = f.objective()->value(vals);
    if (best < 0 || value < best) best = value;
  }
  return best;
}

TEST(MinimizeLinear, SimpleCardinalityObjective) {
  const Formula f = min_true_vars(6, 3);
  const OptResult r = minimize_linear(f, {}, {});
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.best_value, 3);
  EXPECT_TRUE(f.satisfied_by(r.model));
}

TEST(MinimizeLinear, InfeasibleReported) {
  Formula f = min_true_vars(3, 2);
  // Forbid every variable: infeasible.
  for (int i = 0; i < 3; ++i) f.add_unit(Lit::negative(i));
  const OptResult r = minimize_linear(f, {}, {});
  EXPECT_EQ(r.status, OptStatus::Infeasible);
}

TEST(MinimizeLinear, NoObjectiveDegeneratesToDecision) {
  Formula f;
  const Var a = f.new_var();
  f.add_unit(Lit::positive(a));
  const OptResult r = minimize_linear(f, {}, {});
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_FALSE(r.model.empty());
}

TEST(MinimizeLinear, ZeroOptimumWhenUnconstrained) {
  Formula f;
  Objective obj;
  const Var first = f.new_vars(4);
  for (int i = 0; i < 4; ++i) obj.terms.push_back({1, Lit::positive(first + i)});
  f.set_objective(obj);
  const OptResult r = minimize_linear(f, {}, {});
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.best_value, 0);
}

TEST(MinimizeLinear, WeightedObjective) {
  // minimize 5a + b + c subject to a | b, a | c: optimum b=c=1 => 2.
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  const Var c = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  f.add_clause({Lit::positive(a), Lit::positive(c)});
  Objective obj;
  obj.terms = {{5, Lit::positive(a)}, {1, Lit::positive(b)}, {1, Lit::positive(c)}};
  f.set_objective(obj);
  const OptResult r = minimize_linear(f, {}, {});
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.best_value, 2);
}

TEST(MinimizeBinary, MatchesLinear) {
  const Formula f = min_true_vars(7, 4);
  const OptResult lin = minimize_linear(f, {}, {});
  const OptResult bin = minimize_binary(f, {}, {});
  EXPECT_EQ(bin.status, OptStatus::Optimal);
  EXPECT_EQ(bin.best_value, lin.best_value);
}

TEST(MinimizeBinary, InfeasibleReported) {
  Formula f = min_true_vars(3, 2);
  for (int i = 0; i < 3; ++i) f.add_unit(Lit::negative(i));
  const OptResult r = minimize_binary(f, {}, {});
  EXPECT_EQ(r.status, OptStatus::Infeasible);
}

TEST(MinimizeCore, MatchesLinearOnCardinalityObjective) {
  const Formula f = min_true_vars(7, 4);
  const OptResult lin = minimize_linear(f, {}, {});
  const OptResult core = minimize(f, {}, {}, SearchStrategy::CoreGuided);
  EXPECT_EQ(core.status, OptStatus::Optimal);
  EXPECT_EQ(core.best_value, lin.best_value);
  EXPECT_TRUE(f.satisfied_by(core.model));
}

TEST(MinimizeCore, WeightedObjective) {
  // minimize 5a + b + c subject to a | b, a | c: optimum b=c=1 => 2. The
  // disjoint-core prelude mines cores over the soft term assumptions and
  // lifts the lower bound by their minimum weights before bisecting.
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  const Var c = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  f.add_clause({Lit::positive(a), Lit::positive(c)});
  Objective obj;
  obj.terms = {{5, Lit::positive(a)}, {1, Lit::positive(b)}, {1, Lit::positive(c)}};
  f.set_objective(obj);
  const OptResult r = minimize(f, {}, {}, SearchStrategy::CoreGuided);
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.best_value, 2);
}

TEST(MinimizeCore, InfeasibleReportedThroughEmptyCore) {
  Formula f = min_true_vars(3, 2);
  for (int i = 0; i < 3; ++i) f.add_unit(Lit::negative(i));
  const OptResult r = minimize(f, {}, {}, SearchStrategy::CoreGuided);
  EXPECT_EQ(r.status, OptStatus::Infeasible);
}

TEST(Minimize, AllStrategiesCountProbesOnOneEngine) {
  // Cumulative engine stats are the zero-rebuild witness: conflicts and
  // learned clauses keep accumulating across probes instead of resetting
  // with a fresh solver per probe.
  const Formula f = min_true_vars(8, 5);
  for (const SearchStrategy strategy :
       {SearchStrategy::Linear, SearchStrategy::Binary,
        SearchStrategy::CoreGuided}) {
    const OptResult r = minimize(f, {}, {}, strategy);
    ASSERT_EQ(r.status, OptStatus::Optimal) << search_strategy_name(strategy);
    EXPECT_EQ(r.best_value, 5);
    EXPECT_GE(r.probes, 2) << search_strategy_name(strategy);
  }
}

// ---- objective selector ladder ----

/// Count assignments of the first `original_vars` variables that extend
/// to a model of `f` under `assume`.
int ladder_projected_models(const Formula& f, int original_vars,
                            std::span<const Lit> assume) {
  int count = 0;
  for (std::uint64_t mask = 0; mask < (1ULL << original_vars); ++mask) {
    Formula probe = f;
    for (int i = 0; i < original_vars; ++i) {
      probe.add_unit(Lit(static_cast<Var>(i), ((mask >> i) & 1) == 0));
    }
    CdclSolver solver(probe);
    if (solver.solve(Deadline{}, assume) == SolveResult::Sat) ++count;
  }
  return count;
}

TEST(ObjectiveLadder, AtMostMatchesSemanticsOnWeightedObjective) {
  // Objective 3a + 2b + c: achievable values {0,1,2,3,4,5,6}. For every
  // bound W the single ladder assumption must admit exactly the
  // assignments with value <= W.
  Formula f;
  Objective obj;
  obj.terms = {{3, Lit::positive(f.new_var())},
               {2, Lit::positive(f.new_var())},
               {1, Lit::positive(f.new_var())}};
  f.set_objective(obj);
  ObjectiveLadder ladder(&f, obj);
  ASSERT_TRUE(ladder.ok());
  EXPECT_EQ(ladder.min_value(), 0);
  EXPECT_EQ(ladder.max_value(), 6);
  for (std::int64_t w = -1; w <= 6; ++w) {
    int expected = 0;
    for (int mask = 0; mask < 8; ++mask) {
      const std::int64_t value = 3 * (mask & 1) + 2 * ((mask >> 1) & 1) +
                                 ((mask >> 2) & 1);
      if (value <= w) ++expected;
    }
    const ObjectiveLadder::Bound bound = ladder.at_most(w);
    if (bound.kind == ObjectiveLadder::Bound::Kind::Infeasible) {
      EXPECT_EQ(expected, 0) << "W=" << w;
      continue;
    }
    std::vector<Lit> assume;
    if (bound.kind == ObjectiveLadder::Bound::Kind::Assume) {
      assume.push_back(bound.lit);
    }
    EXPECT_EQ(ladder_projected_models(f, 3, assume), expected) << "W=" << w;
  }
}

TEST(ObjectiveLadder, NormalizesNegativeAndDuplicateTerms) {
  // 2a - 3b + b = 2a - 2b = 2a + 2(~b) - 2: values {-2, 0, 2}.
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  Objective obj;
  obj.terms = {{2, Lit::positive(a)},
               {-3, Lit::positive(b)},
               {1, Lit::positive(b)}};
  f.set_objective(obj);
  ObjectiveLadder ladder(&f, obj);
  ASSERT_TRUE(ladder.ok());
  EXPECT_EQ(ladder.min_value(), -2);
  EXPECT_EQ(ladder.max_value(), 2);
  EXPECT_EQ(ladder.at_most(-3).kind,
            ObjectiveLadder::Bound::Kind::Infeasible);
  EXPECT_EQ(ladder.at_most(2).kind, ObjectiveLadder::Bound::Kind::Free);
  EXPECT_EQ(ladder.at_most(-2).kind, ObjectiveLadder::Bound::Kind::Assume);
  // Bound -2 admits only a=0, b=1; bound 1 admits value <= 0 (3 of 4).
  std::vector<Lit> tight{ladder.at_most(-2).lit};
  EXPECT_EQ(ladder_projected_models(f, 2, tight), 1);
  std::vector<Lit> mid{ladder.at_most(1).lit};
  EXPECT_EQ(ladder_projected_models(f, 2, mid), 3);
}

TEST(ObjectiveLadder, RefusesPastValueCapWithoutTouchingFormula) {
  Formula f;
  Objective obj;
  // Powers of two: every subset sum is distinct, 2^10 values > cap 64.
  for (int i = 0; i < 10; ++i) {
    obj.terms.push_back({std::int64_t{1} << i, Lit::positive(f.new_var())});
  }
  f.set_objective(obj);
  const int vars_before = f.num_vars();
  const int clauses_before = f.num_clauses();
  ObjectiveLadder ladder(&f, obj, /*max_values=*/64);
  EXPECT_FALSE(ladder.ok());
  EXPECT_EQ(f.num_vars(), vars_before);
  EXPECT_EQ(f.num_clauses(), clauses_before);
  // Soft terms stay available for core-guided mining regardless.
  EXPECT_EQ(ladder.soft_terms().size(), 10u);
}

TEST(Minimize, LadderFallbackStillReachesTheOptimum) {
  // Distinct power-of-two weights blow past a small cap inside minimize's
  // default, but the default cap is 2^16 values — force the fallback by
  // constructing a wider spread: 20 powers of two exceeds 2^16 distinct
  // sums as soon as 17 terms can be active. minimize() must still land
  // on the optimum through permanent-row strengthening.
  Formula f;
  Objective obj;
  std::vector<Lit> lits;
  for (int i = 0; i < 20; ++i) {
    const Var v = f.new_var();
    lits.push_back(Lit::positive(v));
    obj.terms.push_back({std::int64_t{1} << i, Lit::positive(v)});
  }
  f.add_at_least(lits, 1);  // at least one term on; optimum = weight 1
  f.set_objective(obj);
  for (const SearchStrategy strategy :
       {SearchStrategy::Linear, SearchStrategy::Binary,
        SearchStrategy::CoreGuided}) {
    const OptResult r = minimize(f, {}, {}, strategy);
    ASSERT_EQ(r.status, OptStatus::Optimal) << search_strategy_name(strategy);
    EXPECT_EQ(r.best_value, 1) << search_strategy_name(strategy);
  }
}

TEST(GenericIlp, SimpleOptimum) {
  const Formula f = min_true_vars(6, 3);
  const OptResult r = solve_generic_ilp(f, {});
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.best_value, 3);
  EXPECT_TRUE(f.satisfied_by(r.model));
}

TEST(GenericIlp, Infeasible) {
  Formula f;
  const Var a = f.new_var();
  f.add_unit(Lit::positive(a));
  f.add_unit(Lit::negative(a));
  const OptResult r = solve_generic_ilp(f, {});
  EXPECT_EQ(r.status, OptStatus::Infeasible);
}

TEST(GenericIlp, DecisionModeWithoutObjective) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  f.add_clause({Lit::negative(a), Lit::negative(b)});
  const OptResult r = solve_generic_ilp(f, {});
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_TRUE(f.satisfied_by(r.model));
}

TEST(GenericIlp, RejectsNonCardinalityPb) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_pb(PbConstraint::at_least(
      {{2, Lit::positive(a)}, {1, Lit::positive(b)}}, 2));
  EXPECT_THROW((void)solve_generic_ilp(f, {}), std::invalid_argument);
}

TEST(GenericIlp, NoLearningStats) {
  const Formula f = min_true_vars(5, 2);
  const OptResult r = solve_generic_ilp(f, {});
  EXPECT_EQ(r.stats.learned_clauses, 0);
  EXPECT_EQ(r.stats.restarts, 0);
}

TEST(SolverProfiles, AllCdclKindsHaveConfigs) {
  for (const SolverKind kind :
       {SolverKind::PbsOriginal, SolverKind::PbsII, SolverKind::Galena,
        SolverKind::Pueblo}) {
    EXPECT_NO_THROW((void)profile_config(kind));
  }
  EXPECT_THROW((void)profile_config(SolverKind::GenericIlp),
               std::invalid_argument);
}

TEST(SolverProfiles, NamesAreDistinct) {
  EXPECT_EQ(solver_name(SolverKind::PbsII), "PBS II");
  EXPECT_NE(solver_name(SolverKind::Galena), solver_name(SolverKind::Pueblo));
}

TEST(SolverProfiles, ConfigsDiffer) {
  const SolverConfig pbs2 = profile_config(SolverKind::PbsII);
  const SolverConfig galena = profile_config(SolverKind::Galena);
  const SolverConfig pueblo = profile_config(SolverKind::Pueblo);
  EXPECT_NE(pbs2.restart_scheme == galena.restart_scheme &&
                pbs2.var_decay == galena.var_decay,
            true);
  EXPECT_NE(pueblo.restart_base, pbs2.restart_base);
}

// Randomized optimization cross-checks, all four CDCL personalities.
struct OptSweepParams {
  std::uint64_t seed;
  SolverKind kind;
};

class OptimizerSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(OptimizerSweep, MatchesBruteForce) {
  const auto [seed, kind_index] = GetParam();
  const SolverKind kinds[] = {SolverKind::PbsOriginal, SolverKind::PbsII,
                              SolverKind::Galena, SolverKind::Pueblo};
  const SolverKind kind = kinds[kind_index];

  Rng rng(seed);
  const int vars = 7;
  Formula f;
  f.new_vars(vars);
  for (int c = 0; c < 6; ++c) {
    Clause clause;
    for (int i = 0; i < 3; ++i) {
      clause.push_back(Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
    }
    f.add_clause(std::move(clause));
  }
  std::vector<Lit> lits;
  for (int i = 0; i < vars; ++i) lits.push_back(Lit::positive(i));
  f.add_at_least(lits, 1 + static_cast<std::int64_t>(rng.below(3)));
  Objective obj;
  for (int i = 0; i < vars; ++i) obj.terms.push_back({1, Lit::positive(i)});
  f.set_objective(obj);

  const std::int64_t expected = brute_force_min(f);
  for (const SearchStrategy strategy :
       {SearchStrategy::Linear, SearchStrategy::Binary,
        SearchStrategy::CoreGuided}) {
    const OptResult r = minimize(f, profile_config(kind), {}, strategy);
    if (expected < 0) {
      EXPECT_EQ(r.status, OptStatus::Infeasible)
          << search_strategy_name(strategy);
    } else {
      EXPECT_EQ(r.status, OptStatus::Optimal)
          << search_strategy_name(strategy);
      EXPECT_EQ(r.best_value, expected) << search_strategy_name(strategy);
    }
  }

  // The generic B&B must agree as well.
  const OptResult g = solve_generic_ilp(f, {});
  if (expected < 0) {
    EXPECT_EQ(g.status, OptStatus::Infeasible);
  } else {
    EXPECT_EQ(g.status, OptStatus::Optimal);
    EXPECT_EQ(g.best_value, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizerSweep,
    ::testing::Combine(::testing::Range<std::uint64_t>(200, 208),
                       ::testing::Range(0, 4)));

}  // namespace
}  // namespace symcolor
