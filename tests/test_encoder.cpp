// Tests for the coloring -> 0-1 ILP encoding (paper Section 2.5).

#include <gtest/gtest.h>

#include "coloring/encoder.h"
#include "pb/optimizer.h"

namespace symcolor {
namespace {

Graph triangle() {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.finalize();
  return g;
}

TEST(Encoder, VariableCountMatchesPaper) {
  // nK + K variables (paper Section 2.5).
  const Graph g = triangle();
  const ColoringEncoding enc = encode_coloring(g, 4);
  EXPECT_EQ(enc.formula.num_vars(), 3 * 4 + 4);
}

TEST(Encoder, ClauseCountMatchesPaper) {
  // K(m + n + 1) CNF clauses plus n PB equalities. Our PB equalities are
  // stored as one clause-shaped at-least (inside pb list) and one at-most,
  // so the clause list holds exactly the K(m+n+1) connectivity/usage
  // clauses.
  const Graph g = triangle();
  const int k = 4;
  const ColoringEncoding enc = encode_coloring(g, k);
  EXPECT_EQ(enc.formula.num_clauses(), k * (3 + 3 + 1));
  EXPECT_EQ(enc.ilp_equalities, 3);
  EXPECT_EQ(enc.formula.num_pb(), 2 * 3);  // at-least + at-most per vertex
}

TEST(Encoder, VariableLayout) {
  const Graph g = triangle();
  const ColoringEncoding enc = encode_coloring(g, 4);
  EXPECT_EQ(enc.x(0, 0), 0);
  EXPECT_EQ(enc.x(0, 3), 3);
  EXPECT_EQ(enc.x(1, 0), 4);
  EXPECT_EQ(enc.x(2, 3), 11);
  EXPECT_EQ(enc.y(0), 12);
  EXPECT_EQ(enc.y(3), 15);
  EXPECT_EQ(enc.formula.var_name(enc.x(1, 2)), "x_1_2");
  EXPECT_EQ(enc.formula.var_name(enc.y(1)), "y_1");
}

TEST(Encoder, ObjectiveSumsUsageVars) {
  const Graph g = triangle();
  const ColoringEncoding enc = encode_coloring(g, 4);
  ASSERT_TRUE(enc.formula.objective().has_value());
  EXPECT_EQ(enc.formula.objective()->terms.size(), 4u);
}

TEST(Encoder, DecisionVariantHasNoObjective) {
  const Graph g = triangle();
  const ColoringEncoding enc = encode_k_coloring(g, 4);
  EXPECT_FALSE(enc.formula.objective().has_value());
}

TEST(Encoder, TriangleNeedsThreeColors) {
  const ColoringEncoding enc = encode_coloring(triangle(), 4);
  const OptResult r = minimize_linear(enc.formula, {}, {});
  ASSERT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.best_value, 3);
  const auto colors = enc.decode(r.model);
  EXPECT_TRUE(triangle().is_proper_coloring(colors));
  EXPECT_EQ(Graph::count_colors(colors), 3);
}

TEST(Encoder, TwoColoringDecisionOnTriangleUnsat) {
  const ColoringEncoding enc = encode_k_coloring(triangle(), 2);
  const OptResult r = solve_decision(enc.formula, {}, {});
  EXPECT_EQ(r.status, OptStatus::Infeasible);
}

TEST(Encoder, ThreeColoringDecisionOnTriangleSat) {
  const ColoringEncoding enc = encode_k_coloring(triangle(), 3);
  const OptResult r = solve_decision(enc.formula, {}, {});
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_TRUE(triangle().is_proper_coloring(enc.decode(r.model)));
}

TEST(Encoder, EdgelessGraphOneColor) {
  Graph g(4);
  g.finalize();
  const ColoringEncoding enc = encode_coloring(g, 3);
  const OptResult r = minimize_linear(enc.formula, {}, {});
  ASSERT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.best_value, 1);
}

TEST(Encoder, BipartiteGraphTwoColors) {
  Graph g(6);
  for (int i = 0; i < 3; ++i) {
    for (int j = 3; j < 6; ++j) g.add_edge(i, j);
  }
  g.finalize();
  const ColoringEncoding enc = encode_coloring(g, 5);
  const OptResult r = minimize_linear(enc.formula, {}, {});
  ASSERT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.best_value, 2);
}

TEST(Encoder, InsufficientColorsInfeasible) {
  // K5 with only 4 colors available.
  Graph g(5);
  for (int u = 0; u < 5; ++u) {
    for (int v = u + 1; v < 5; ++v) g.add_edge(u, v);
  }
  g.finalize();
  const ColoringEncoding enc = encode_coloring(g, 4);
  const OptResult r = minimize_linear(enc.formula, {}, {});
  EXPECT_EQ(r.status, OptStatus::Infeasible);
}

TEST(Encoder, RejectsBadArguments) {
  EXPECT_THROW((void)encode_coloring(triangle(), 0), std::invalid_argument);
  Graph unfinalized(2);
  unfinalized.add_edge(0, 1);
  EXPECT_THROW((void)encode_coloring(unfinalized, 2), std::invalid_argument);
}

TEST(Encoder, DecodeRejectsIncompleteModel) {
  const ColoringEncoding enc = encode_coloring(triangle(), 3);
  std::vector<LBool> all_false(
      static_cast<std::size_t>(enc.formula.num_vars()), LBool::False);
  EXPECT_THROW((void)enc.decode(all_false), std::runtime_error);
}

TEST(Encoder, SbpStatsZeroWithoutSbps) {
  const ColoringEncoding enc = encode_coloring(triangle(), 3);
  EXPECT_EQ(enc.sbp_clauses, 0);
  EXPECT_EQ(enc.sbp_pb_constraints, 0);
  EXPECT_EQ(enc.sbp_vars, 0);
}

TEST(SbpOptions, Labels) {
  EXPECT_EQ(SbpOptions::none().label(), "none");
  EXPECT_EQ(SbpOptions::nu_only().label(), "NU");
  EXPECT_EQ(SbpOptions::nu_sc().label(), "NU+SC");
  EXPECT_EQ((SbpOptions{.nu = true, .ca = true, .li = true, .sc = true}).label(),
            "NU+CA+LI+SC");
}

TEST(SbpOptions, PaperRowsInOrder) {
  const auto rows = paper_sbp_rows();
  ASSERT_EQ(rows.size(), 7u);
  EXPECT_EQ(rows[0].label(), "none");
  EXPECT_EQ(rows[1].label(), "NU");
  EXPECT_EQ(rows[2].label(), "CA");
  EXPECT_EQ(rows[3].label(), "LI");
  EXPECT_EQ(rows[4].label(), "SC");
  EXPECT_EQ(rows[5].label(), "NU+SC");
  EXPECT_EQ(rows[6].label(), "LIq");
}

}  // namespace
}  // namespace symcolor
