// Property-based tests: randomized invariants across module boundaries.
//
//  * chromatic number from the reduction pipeline == DSATUR B&B, under
//    every SBP construction (relabeling-invariance included);
//  * automorphism generators returned by the search are always true
//    automorphisms, and the group order is invariant under relabeling;
//  * lex-leader SBPs never change satisfiability or optimal value;
//  * the CDCL engine agrees with the no-learning B&B on mixed formulas.

#include <gtest/gtest.h>

#include <cmath>

#include "automorphism/search.h"
#include "coloring/dsatur_bnb.h"
#include "coloring/exact_colorer.h"
#include "graph/generators.h"
#include "pb/generic_ilp.h"
#include "pb/optimizer.h"
#include "symmetry/shatter.h"
#include "util/rng.h"

namespace symcolor {
namespace {

class RandomGraphChi : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphChi, ReductionMatchesBnbUnderAllSbpRows) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const int n = 8 + static_cast<int>(rng.below(6));
  const int max_m = n * (n - 1) / 2;
  const int m = static_cast<int>(rng.below(static_cast<std::uint64_t>(max_m)));
  const Graph g = make_random_gnm(n, m, seed * 977 + 3);
  const int chi = dsatur_branch_and_bound(g).num_colors;

  for (const SbpOptions& sbps : paper_sbp_rows()) {
    ColoringOptions options;
    options.max_colors = std::min(n, chi + 2);
    options.sbps = sbps;
    const ColoringOutcome r = solve_coloring(g, options);
    ASSERT_EQ(r.status, OptStatus::Optimal)
        << "seed=" << seed << " sbp=" << sbps.label();
    EXPECT_EQ(r.num_colors, chi) << "seed=" << seed << " sbp=" << sbps.label();
    EXPECT_TRUE(g.is_proper_coloring(r.coloring));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomGraphChi,
                         ::testing::Range<std::uint64_t>(1, 13));

class StrategyAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrategyAgreement, AllSearchStrategiesMatchBnbAtOneAndTwoThreads) {
  // Linear, binary and core-guided objective search (all on one
  // persistent assumption-driven engine) must agree with DSATUR B&B on
  // randomized graphs, sequentially and under the 2-worker portfolio.
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 131 + 7);
  const int n = 7 + static_cast<int>(rng.below(4));
  const int m = static_cast<int>(
      rng.below(static_cast<std::uint64_t>(n * (n - 1) / 2)));
  const Graph g = make_random_gnm(n, m, seed * 613 + 11);
  const int chi = dsatur_branch_and_bound(g).num_colors;

  for (const int threads : {1, 2}) {
    for (const SearchStrategy strategy :
         {SearchStrategy::Linear, SearchStrategy::Binary,
          SearchStrategy::CoreGuided}) {
      ColoringOptions options;
      options.max_colors = std::min(n, chi + 1);
      options.search = strategy;
      options.threads = threads;
      const ColoringOutcome r = solve_coloring(g, options);
      ASSERT_EQ(r.status, OptStatus::Optimal)
          << "seed=" << seed << " strategy=" << search_strategy_name(strategy)
          << " threads=" << threads;
      EXPECT_EQ(r.num_colors, chi)
          << "seed=" << seed << " strategy=" << search_strategy_name(strategy)
          << " threads=" << threads;
      EXPECT_TRUE(g.is_proper_coloring(r.coloring));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StrategyAgreement,
                         ::testing::Range<std::uint64_t>(100, 106));

class RelabelInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelabelInvariance, ChromaticNumberInvariant) {
  const std::uint64_t seed = GetParam();
  const Graph g = make_random_gnm(11, 25, seed);
  Rng rng(seed + 1);
  const auto perm = rng.permutation(11);
  const Graph h = g.relabeled(perm);
  EXPECT_EQ(dsatur_branch_and_bound(g).num_colors,
            dsatur_branch_and_bound(h).num_colors);
}

TEST_P(RelabelInvariance, AutomorphismGroupOrderInvariant) {
  const std::uint64_t seed = GetParam();
  const Graph g = make_random_gnm(10, 18, seed);
  Rng rng(seed + 7);
  const auto perm = rng.permutation(10);
  const Graph h = g.relabeled(perm);
  const auto rg = find_automorphisms(g);
  const auto rh = find_automorphisms(h);
  ASSERT_TRUE(rg.complete);
  ASSERT_TRUE(rh.complete);
  EXPECT_NEAR(rg.log10_order, rh.log10_order, 1e-9) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RelabelInvariance,
                         ::testing::Range<std::uint64_t>(20, 30));

class AutomorphismValidity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AutomorphismValidity, GeneratorsAlwaysValid) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const int n = 6 + static_cast<int>(rng.below(8));
  const int m = static_cast<int>(rng.below(static_cast<std::uint64_t>(
      n * (n - 1) / 2)));
  const Graph g = make_random_gnm(n, m, seed * 31);
  const auto r = find_automorphisms(g);
  for (const Perm& p : r.generators) {
    EXPECT_TRUE(is_automorphism(g, p)) << "seed=" << seed;
    EXPECT_FALSE(is_identity(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AutomorphismValidity,
                         ::testing::Range<std::uint64_t>(40, 56));

class ShatterInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShatterInvariance, OptimalColoringValuePreserved) {
  const std::uint64_t seed = GetParam();
  const Graph g = make_random_gnm(9, 16, seed);
  ColoringOptions plain;
  plain.max_colors = 6;
  ColoringOptions broken = plain;
  broken.instance_dependent_sbps = true;
  const ColoringOutcome a = solve_coloring(g, plain);
  const ColoringOutcome b = solve_coloring(g, broken);
  ASSERT_EQ(a.status, OptStatus::Optimal);
  ASSERT_EQ(b.status, OptStatus::Optimal);
  EXPECT_EQ(a.num_colors, b.num_colors) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShatterInvariance,
                         ::testing::Range<std::uint64_t>(60, 70));

class EngineAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineAgreement, CdclAndGenericBnbAgree) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const int vars = 9;
  Formula f;
  f.new_vars(vars);
  for (int c = 0; c < 10; ++c) {
    Clause clause;
    for (int i = 0; i < 3; ++i) {
      clause.push_back(Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
    }
    f.add_clause(std::move(clause));
  }
  std::vector<Lit> lits;
  for (int i = 0; i < vars; ++i) lits.push_back(Lit::positive(i));
  f.add_at_most(lits, 2 + static_cast<std::int64_t>(rng.below(3)));
  Objective obj;
  for (int i = 0; i < vars; ++i) obj.terms.push_back({1, Lit::positive(i)});
  f.set_objective(obj);

  const OptResult cdcl = minimize_linear(f, {}, {});
  const OptResult bnb = solve_generic_ilp(f, {});
  EXPECT_EQ(cdcl.status, bnb.status) << "seed=" << seed;
  if (cdcl.status == OptStatus::Optimal) {
    EXPECT_EQ(cdcl.best_value, bnb.best_value) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineAgreement,
                         ::testing::Range<std::uint64_t>(80, 96));

TEST(Property, ColoringOfEverySuiteInstanceIsProperUnderBudget) {
  // Run the full pipeline briefly on every suite instance; whenever a
  // coloring comes back it must be proper, whatever the status.
  ColoringOptions options;
  options.max_colors = 20;
  options.sbps = SbpOptions::nu_sc();
  options.time_budget_seconds = 0.5;
  for (const Instance& inst : dimacs_suite()) {
    const ColoringOutcome r = solve_coloring(inst.graph, options);
    if (!r.coloring.empty()) {
      EXPECT_TRUE(inst.graph.is_proper_coloring(r.coloring)) << inst.name;
      if (inst.chromatic_number > 0) {
        EXPECT_GE(r.num_colors, std::min(inst.chromatic_number, 20))
            << inst.name;
      }
    }
  }
}

}  // namespace
}  // namespace symcolor
