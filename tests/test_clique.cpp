// Tests for greedy and exact clique computation.

#include <gtest/gtest.h>

#include "graph/clique.h"
#include "graph/generators.h"

namespace symcolor {
namespace {

Graph complete(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  g.finalize();
  return g;
}

TEST(GreedyClique, EmptyGraph) {
  Graph g(0);
  EXPECT_TRUE(greedy_clique(g).empty());
}

TEST(GreedyClique, SingleVertex) {
  Graph g(1);
  g.finalize();
  EXPECT_EQ(greedy_clique(g).size(), 1u);
}

TEST(GreedyClique, FindsCompleteGraph) {
  const Graph g = complete(6);
  EXPECT_EQ(greedy_clique(g).size(), 6u);
}

TEST(GreedyClique, ResultIsAlwaysClique) {
  const Graph g = make_random_gnm(40, 300, 11);
  const auto clique = greedy_clique(g);
  EXPECT_TRUE(is_clique(g, clique));
  EXPECT_GE(clique.size(), 2u);
}

TEST(GreedyClique, EdgelessGraphGivesSingleton) {
  Graph g(5);
  g.finalize();
  EXPECT_EQ(greedy_clique(g).size(), 1u);
}

TEST(MaxClique, CompleteGraphExact) {
  bool proved = false;
  const auto clique = max_clique(complete(7), Deadline{}, &proved);
  EXPECT_EQ(clique.size(), 7u);
  EXPECT_TRUE(proved);
}

TEST(MaxClique, CycleOfFive) {
  Graph g(5);
  for (int i = 0; i < 5; ++i) g.add_edge(i, (i + 1) % 5);
  g.finalize();
  EXPECT_EQ(max_clique(g).size(), 2u);
}

TEST(MaxClique, PlantedCliqueFound) {
  // A 9-clique planted in a sparse background must be found exactly.
  const Graph g = make_book_graph(50, 250, 9, 77);
  bool proved = false;
  const auto clique = max_clique(g, Deadline{}, &proved);
  EXPECT_TRUE(proved);
  EXPECT_EQ(clique.size(), 9u);
  EXPECT_TRUE(is_clique(g, clique));
}

TEST(MaxClique, QueenGraphKnownValue) {
  // queen5_5 contains a 5-clique (a row) and no 6-clique.
  const auto clique = max_clique(make_queen_graph(5, 5));
  EXPECT_EQ(clique.size(), 5u);
}

TEST(MaxClique, MycielskiIsTriangleFree) {
  const auto clique = max_clique(make_mycielski(5));
  EXPECT_EQ(clique.size(), 2u);
}

TEST(MaxClique, AtLeastGreedy) {
  const Graph g = make_random_gnm(35, 250, 5);
  EXPECT_GE(max_clique(g).size(), greedy_clique(g).size());
}

TEST(IsClique, Basics) {
  const Graph g = complete(4);
  EXPECT_TRUE(is_clique(g, {0, 1, 2, 3}));
  EXPECT_TRUE(is_clique(g, {2}));
  EXPECT_TRUE(is_clique(g, {}));
  Graph path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  path.finalize();
  EXPECT_FALSE(is_clique(path, {0, 1, 2}));
}

}  // namespace
}  // namespace symcolor
