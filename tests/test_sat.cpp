// CDCL engine tests: small handcrafted instances, pigeonhole UNSAT
// certificates, PB propagation, assumptions, and randomized cross-checks
// against a brute-force enumerator.

#include <gtest/gtest.h>

#include "cnf/formula.h"
#include "sat/cdcl.h"
#include "sat/clause_arena.h"
#include "sat/luby.h"
#include "util/rng.h"

namespace symcolor {
namespace {

/// Brute-force satisfiability for formulas with <= 20 variables.
bool brute_force_sat(const Formula& f) {
  const int n = f.num_vars();
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<LBool> vals(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      vals[static_cast<std::size_t>(i)] =
          (mask >> i) & 1 ? LBool::True : LBool::False;
    }
    if (f.satisfied_by(vals)) return true;
  }
  return false;
}

Formula pigeonhole(int pigeons, int holes) {
  // PHP(p, h): each pigeon in some hole; no two pigeons share a hole.
  Formula f;
  std::vector<std::vector<Var>> in(static_cast<std::size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)].push_back(f.new_var());
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) {
      c.push_back(Lit::positive(in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    f.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        f.add_clause(
            {Lit::negative(in[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
             Lit::negative(in[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)])});
      }
    }
  }
  return f;
}

TEST(Cdcl, EmptyFormulaSat) {
  Formula f;
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveResult::Sat);
}

TEST(Cdcl, SingleUnitClause) {
  Formula f;
  const Var v = f.new_var();
  f.add_unit(Lit::positive(v));
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.model()[0], LBool::True);
}

TEST(Cdcl, ContradictoryUnitsUnsat) {
  Formula f;
  const Var v = f.new_var();
  f.add_unit(Lit::positive(v));
  f.add_unit(Lit::negative(v));
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(Cdcl, ImplicationChainPropagates) {
  Formula f;
  const Var first = f.new_vars(10);
  for (int i = 0; i + 1 < 10; ++i) {
    f.add_implication(Lit::positive(first + i), Lit::positive(first + i + 1));
  }
  f.add_unit(Lit::positive(first));
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(solver.model()[static_cast<std::size_t>(i)], LBool::True);
}

TEST(Cdcl, SmallUnsatCore) {
  // (a|b) (a|~b) (~a|b) (~a|~b) is unsatisfiable.
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  f.add_clause({Lit::positive(a), Lit::negative(b)});
  f.add_clause({Lit::negative(a), Lit::positive(b)});
  f.add_clause({Lit::negative(a), Lit::negative(b)});
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(Cdcl, PigeonholeSatWhenHolesSuffice) {
  CdclSolver solver(pigeonhole(4, 4));
  EXPECT_EQ(solver.solve(), SolveResult::Sat);
}

TEST(Cdcl, PigeonholeUnsat) {
  CdclSolver solver(pigeonhole(6, 5));
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_GT(solver.stats().conflicts, 0);
}

TEST(Cdcl, ModelSatisfiesFormula) {
  const Formula f = pigeonhole(5, 5);
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_TRUE(f.satisfied_by(solver.model()));
}

TEST(Cdcl, PbAtMostOnePropagation) {
  Formula f;
  const Var first = f.new_vars(4);
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(Lit::positive(first + i));
  f.add_at_most(lits, 1);
  f.add_unit(Lit::positive(first));
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(solver.model()[static_cast<std::size_t>(first + i)], LBool::False);
  }
}

TEST(Cdcl, PbExactlyOneAllCombinations) {
  Formula f;
  const Var first = f.new_vars(3);
  std::vector<Lit> lits;
  for (int i = 0; i < 3; ++i) lits.push_back(Lit::positive(first + i));
  f.add_exactly(lits, 1);
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  int true_count = 0;
  for (int i = 0; i < 3; ++i) {
    if (solver.model()[static_cast<std::size_t>(i)] == LBool::True) ++true_count;
  }
  EXPECT_EQ(true_count, 1);
}

TEST(Cdcl, PbInfeasibleBound) {
  Formula f;
  const Var first = f.new_vars(3);
  std::vector<Lit> lits;
  for (int i = 0; i < 3; ++i) lits.push_back(Lit::positive(first + i));
  f.add_at_least(lits, 4);  // contradiction
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(Cdcl, PbWithWeightsPropagates) {
  // 3a + 2b + c >= 5 forces a (max without a is 3 < 5).
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  const Var c = f.new_var();
  f.add_pb(PbConstraint::at_least(
      {{3, Lit::positive(a)}, {2, Lit::positive(b)}, {1, Lit::positive(c)}}, 5));
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.model()[static_cast<std::size_t>(a)], LBool::True);
  EXPECT_EQ(solver.model()[static_cast<std::size_t>(b)], LBool::True);
}

TEST(Cdcl, PbCardinalityConflictLearned) {
  // x1+..+x5 >= 3 together with at-most-one over the same vars: UNSAT.
  Formula f;
  const Var first = f.new_vars(5);
  std::vector<Lit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(Lit::positive(first + i));
  f.add_at_least(lits, 3);
  f.add_at_most(lits, 1);
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(Cdcl, AssumptionsSatisfiable) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  CdclSolver solver(f);
  const std::vector<Lit> assume{Lit::negative(a)};
  ASSERT_EQ(solver.solve({}, assume), SolveResult::Sat);
  EXPECT_EQ(solver.model()[static_cast<std::size_t>(a)], LBool::False);
  EXPECT_EQ(solver.model()[static_cast<std::size_t>(b)], LBool::True);
}

TEST(Cdcl, AssumptionsContradictFormula) {
  Formula f;
  const Var a = f.new_var();
  f.add_unit(Lit::positive(a));
  CdclSolver solver(f);
  const std::vector<Lit> assume{Lit::negative(a)};
  EXPECT_EQ(solver.solve({}, assume), SolveResult::Unsat);
  // Without the assumption the instance stays satisfiable.
  EXPECT_EQ(solver.solve(), SolveResult::Sat);
}

TEST(Cdcl, IncrementalClauseAddition) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  solver.add_clause({Lit::negative(a)});
  solver.add_clause({Lit::negative(b)});
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(Cdcl, IncrementalPbAddition) {
  Formula f;
  const Var first = f.new_vars(4);
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(Lit::positive(first + i));
  f.add_at_least(lits, 2);
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  std::vector<PbTerm> terms;
  for (const Lit l : lits) terms.push_back({1, l});
  solver.add_pb(PbConstraint::at_most(terms, 1));
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(Cdcl, ConflictBudgetReturnsUnknown) {
  SolverConfig config;
  config.conflict_budget = 1;
  CdclSolver solver(pigeonhole(7, 6), config);
  EXPECT_EQ(solver.solve(), SolveResult::Unknown);
}

TEST(Cdcl, DeadlineReturnsUnknown) {
  CdclSolver solver(pigeonhole(9, 8));
  const Deadline deadline(0.001);
  const SolveResult r = solver.solve(deadline);
  // Either it finished very fast or it reports Unknown — never wrong.
  EXPECT_NE(r, SolveResult::Sat);
}

TEST(Cdcl, StatsAccumulate) {
  CdclSolver solver(pigeonhole(6, 5));
  (void)solver.solve();
  EXPECT_GT(solver.stats().decisions, 0);
  EXPECT_GT(solver.stats().propagations, 0);
  EXPECT_GT(solver.stats().learned_clauses, 0);
}

// ---- clause arena storage ----

TEST(ClauseArena, AllocRoundTrip) {
  ClauseArena arena;
  const std::vector<Lit> a{Lit::positive(0), Lit::negative(1),
                           Lit::positive(2)};
  const std::vector<Lit> b{Lit::negative(3), Lit::positive(4)};
  const ClauseRef ra = arena.alloc(a, /*learnt=*/false);
  const ClauseRef rb = arena.alloc(b, /*learnt=*/true);
  ASSERT_EQ(arena.live_clauses(), 2);

  EXPECT_EQ(arena.size(ra), 3);
  EXPECT_FALSE(arena.learnt(ra));
  EXPECT_EQ(arena.size(rb), 2);
  EXPECT_TRUE(arena.learnt(rb));
  for (int i = 0; i < 3; ++i) EXPECT_EQ(arena.lit(ra, i), a[static_cast<std::size_t>(i)]);
  for (int i = 0; i < 2; ++i) EXPECT_EQ(arena.lit(rb, i), b[static_cast<std::size_t>(i)]);

  EXPECT_EQ(arena.activity(rb), 0.0f);
  arena.set_activity(rb, 3.5f);
  EXPECT_EQ(arena.activity(rb), 3.5f);
  // Activities are per-record: ra is untouched.
  EXPECT_EQ(arena.activity(ra), 0.0f);

  // Layout-order iteration visits exactly the two records.
  std::vector<ClauseRef> seen;
  for (ClauseRef cr = 0; cr != arena.end_ref(); cr = arena.next(cr)) {
    seen.push_back(cr);
  }
  EXPECT_EQ(seen, (std::vector<ClauseRef>{ra, rb}));
}

TEST(ClauseArena, RelocationCompactsAndForwards) {
  ClauseArena arena;
  std::vector<ClauseRef> refs;
  for (int i = 0; i < 8; ++i) {
    std::vector<Lit> lits{Lit::positive(2 * i), Lit::negative(2 * i + 1),
                          Lit::positive(2 * i + 1)};
    refs.push_back(arena.alloc(lits, i % 2 == 1));
    arena.set_activity(refs.back(), static_cast<float>(i));
  }
  // Delete every other clause, compact the survivors.
  for (int i = 0; i < 8; i += 2) arena.set_deleted(refs[static_cast<std::size_t>(i)]);
  EXPECT_EQ(arena.live_clauses(), 4);

  ClauseArena to;
  for (ClauseRef cr = 0; cr != arena.end_ref(); cr = arena.next(cr)) {
    if (!arena.deleted(cr)) arena.relocate(cr, &to);
  }
  EXPECT_EQ(to.live_clauses(), 4);
  // The new arena holds only live records: half the payload words.
  EXPECT_EQ(to.words(), arena.words() / 2);
  for (int i = 1; i < 8; i += 2) {
    const ClauseRef old = refs[static_cast<std::size_t>(i)];
    ASSERT_TRUE(arena.relocated(old));
    const ClauseRef fwd = arena.forward(old);
    EXPECT_EQ(to.size(fwd), 3);
    EXPECT_EQ(to.learnt(fwd), i % 2 == 1);
    EXPECT_EQ(to.activity(fwd), static_cast<float>(i));
    EXPECT_EQ(to.lit(fwd, 0), Lit::positive(2 * i));
  }
  // Deleted records were never relocated.
  for (int i = 0; i < 8; i += 2) {
    EXPECT_FALSE(arena.relocated(refs[static_cast<std::size_t>(i)]));
  }
}

TEST(Cdcl, ReduceDbShrinksWatcherLists) {
  // Regression for the tombstone leak: deleted clauses used to stay in
  // the clause vector and watch lists forever. With arena GC, every
  // reduction compacts storage, so after solving the watcher count must
  // equal exactly two per live clause — no dead refs linger.
  SolverConfig config;
  config.max_learnts_init = 8;  // force frequent reductions
  CdclSolver solver(pigeonhole(6, 5), config);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_GT(solver.stats().deleted_clauses, 0);
  EXPECT_GT(solver.stats().arena_collections, 0);
  EXPECT_EQ(solver.total_watchers(),
            2 * static_cast<std::size_t>(solver.live_clauses()));
}

TEST(Cdcl, ArenaGcPreservesAnswersUnderLoad) {
  // GC-under-load: a tiny learnt limit makes reduce_db()/collection fire
  // constantly while random instances are solved; answers must still
  // agree with brute force.
  SolverConfig config;
  config.max_learnts_init = 4;
  Rng rng(0xA11A);
  for (int round = 0; round < 20; ++round) {
    const int vars = 6 + static_cast<int>(rng.below(6));
    Formula f;
    f.new_vars(vars);
    const int clauses = 3 * vars + static_cast<int>(rng.below(12));
    for (int c = 0; c < clauses; ++c) {
      Clause clause;
      const int len = 1 + static_cast<int>(rng.below(4));
      for (int i = 0; i < len; ++i) {
        clause.push_back(
            Lit(static_cast<Var>(rng.below(static_cast<std::uint64_t>(vars))),
                rng.chance(0.5)));
      }
      f.add_clause(std::move(clause));
    }
    CdclSolver solver(f, config);
    const SolveResult r = solver.solve();
    ASSERT_NE(r, SolveResult::Unknown);
    EXPECT_EQ(r == SolveResult::Sat, brute_force_sat(f)) << "round " << round;
    if (r == SolveResult::Sat) {
      EXPECT_TRUE(f.satisfied_by(solver.model()));
    }
    // Storage stays consistent after every solve.
    EXPECT_EQ(solver.total_watchers(),
              2 * static_cast<std::size_t>(solver.live_clauses()));
  }
}

TEST(Cdcl, PbShortCircuitCountsAndStaysCorrect) {
  // A loose PB constraint (slack never near zero) must be short-circuited
  // rather than rescanned, without changing the answer.
  Formula f;
  const Var first = f.new_vars(10);
  std::vector<Lit> lits;
  for (int i = 0; i < 10; ++i) lits.push_back(Lit::positive(first + i));
  f.add_at_least(lits, 1);  // clause-strength, but keep a PB row too
  std::vector<PbTerm> terms;
  for (const Lit l : lits) terms.push_back({1, l});
  f.add_pb(PbConstraint::at_least(terms, 2));  // loose cardinality
  for (int i = 0; i + 1 < 10; ++i) {
    f.add_clause({Lit::negative(first + i), Lit::positive(first + i + 1)});
  }
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_TRUE(f.satisfied_by(solver.model()));
}

TEST(Luby, FirstElements) {
  const std::vector<std::int64_t> expected{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1,
                                           1, 2, 4, 8};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(luby(static_cast<std::int64_t>(i) + 1), expected[i]) << i;
  }
}

// ---- randomized cross-checks against brute force ----

struct RandomCnfParams {
  int vars;
  int clauses;
  std::uint64_t seed;
};

class RandomCnfTest : public ::testing::TestWithParam<RandomCnfParams> {};

TEST_P(RandomCnfTest, AgreesWithBruteForce) {
  const auto [vars, clauses, seed] = GetParam();
  Rng rng(seed);
  Formula f;
  f.new_vars(vars);
  for (int c = 0; c < clauses; ++c) {
    Clause clause;
    const int len = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < len; ++i) {
      clause.push_back(Lit(static_cast<Var>(rng.below(static_cast<std::uint64_t>(vars))),
                           rng.chance(0.5)));
    }
    f.add_clause(std::move(clause));
  }
  CdclSolver solver(f);
  const SolveResult r = solver.solve();
  ASSERT_NE(r, SolveResult::Unknown);
  EXPECT_EQ(r == SolveResult::Sat, brute_force_sat(f));
  if (r == SolveResult::Sat) {
    EXPECT_TRUE(f.satisfied_by(solver.model()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomCnfTest,
    ::testing::Values(RandomCnfParams{6, 14, 1}, RandomCnfParams{6, 20, 2},
                      RandomCnfParams{8, 24, 3}, RandomCnfParams{8, 34, 4},
                      RandomCnfParams{10, 30, 5}, RandomCnfParams{10, 44, 6},
                      RandomCnfParams{12, 40, 7}, RandomCnfParams{12, 54, 8},
                      RandomCnfParams{14, 58, 9}, RandomCnfParams{14, 62, 10},
                      RandomCnfParams{9, 38, 11}, RandomCnfParams{11, 46, 12}));

class RandomPbTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPbTest, MixedCnfPbAgreesWithBruteForce) {
  Rng rng(GetParam());
  const int vars = 8;
  Formula f;
  f.new_vars(vars);
  // A few clauses.
  for (int c = 0; c < 8; ++c) {
    Clause clause;
    for (int i = 0; i < 3; ++i) {
      clause.push_back(Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
    }
    f.add_clause(std::move(clause));
  }
  // A few weighted PB constraints.
  for (int c = 0; c < 4; ++c) {
    std::vector<PbTerm> terms;
    for (int i = 0; i < 4; ++i) {
      terms.push_back({static_cast<std::int64_t>(1 + rng.below(3)),
                       Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5))});
    }
    f.add_pb(PbConstraint::at_least(std::move(terms),
                                    static_cast<std::int64_t>(1 + rng.below(5))));
  }
  CdclSolver solver(f);
  const SolveResult r = solver.solve();
  ASSERT_NE(r, SolveResult::Unknown);
  EXPECT_EQ(r == SolveResult::Sat, brute_force_sat(f));
  if (r == SolveResult::Sat) {
    EXPECT_TRUE(f.satisfied_by(solver.model()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomPbTest,
                         ::testing::Range<std::uint64_t>(100, 120));

class SolverConfigTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverConfigTest, AllConfigurationsAgreeOnPigeonhole) {
  SolverConfig config;
  switch (GetParam()) {
    case 0: config.restart_scheme = RestartScheme::Luby; break;
    case 1: config.restart_scheme = RestartScheme::Geometric; break;
    case 2: config.minimize_learned = false; break;
    case 3: config.phase_saving = false; break;
    case 4: config.random_branch_freq = 0.05; break;
    case 5: config.default_phase = true; break;
  }
  {
    CdclSolver solver(pigeonhole(5, 5), config);
    EXPECT_EQ(solver.solve(), SolveResult::Sat);
  }
  {
    CdclSolver solver(pigeonhole(6, 5), config);
    EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SolverConfigTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace symcolor
