// CDCL engine tests: small handcrafted instances, pigeonhole UNSAT
// certificates, PB propagation, assumptions, and randomized cross-checks
// against a brute-force enumerator.

#include <gtest/gtest.h>

#include "cnf/formula.h"
#include "sat/cdcl.h"
#include "sat/clause_arena.h"
#include "sat/luby.h"
#include "sat/watcher_pool.h"
#include "util/rng.h"

namespace symcolor {
namespace {

/// Brute-force satisfiability for formulas with <= 20 variables.
bool brute_force_sat(const Formula& f) {
  const int n = f.num_vars();
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<LBool> vals(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      vals[static_cast<std::size_t>(i)] =
          (mask >> i) & 1 ? LBool::True : LBool::False;
    }
    if (f.satisfied_by(vals)) return true;
  }
  return false;
}

Formula pigeonhole(int pigeons, int holes) {
  // PHP(p, h): each pigeon in some hole; no two pigeons share a hole.
  Formula f;
  std::vector<std::vector<Var>> in(static_cast<std::size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)].push_back(f.new_var());
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) {
      c.push_back(Lit::positive(in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    f.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        f.add_clause(
            {Lit::negative(in[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
             Lit::negative(in[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)])});
      }
    }
  }
  return f;
}

TEST(Cdcl, EmptyFormulaSat) {
  Formula f;
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveResult::Sat);
}

TEST(Cdcl, SingleUnitClause) {
  Formula f;
  const Var v = f.new_var();
  f.add_unit(Lit::positive(v));
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.model()[0], LBool::True);
}

TEST(Cdcl, ContradictoryUnitsUnsat) {
  Formula f;
  const Var v = f.new_var();
  f.add_unit(Lit::positive(v));
  f.add_unit(Lit::negative(v));
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(Cdcl, ImplicationChainPropagates) {
  Formula f;
  const Var first = f.new_vars(10);
  for (int i = 0; i + 1 < 10; ++i) {
    f.add_implication(Lit::positive(first + i), Lit::positive(first + i + 1));
  }
  f.add_unit(Lit::positive(first));
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(solver.model()[static_cast<std::size_t>(i)], LBool::True);
}

TEST(Cdcl, SmallUnsatCore) {
  // (a|b) (a|~b) (~a|b) (~a|~b) is unsatisfiable.
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  f.add_clause({Lit::positive(a), Lit::negative(b)});
  f.add_clause({Lit::negative(a), Lit::positive(b)});
  f.add_clause({Lit::negative(a), Lit::negative(b)});
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(Cdcl, PigeonholeSatWhenHolesSuffice) {
  CdclSolver solver(pigeonhole(4, 4));
  EXPECT_EQ(solver.solve(), SolveResult::Sat);
}

TEST(Cdcl, PigeonholeUnsat) {
  CdclSolver solver(pigeonhole(6, 5));
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_GT(solver.stats().conflicts, 0);
}

TEST(Cdcl, ModelSatisfiesFormula) {
  const Formula f = pigeonhole(5, 5);
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_TRUE(f.satisfied_by(solver.model()));
}

TEST(Cdcl, PbAtMostOnePropagation) {
  Formula f;
  const Var first = f.new_vars(4);
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(Lit::positive(first + i));
  f.add_at_most(lits, 1);
  f.add_unit(Lit::positive(first));
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(solver.model()[static_cast<std::size_t>(first + i)], LBool::False);
  }
}

TEST(Cdcl, PbExactlyOneAllCombinations) {
  Formula f;
  const Var first = f.new_vars(3);
  std::vector<Lit> lits;
  for (int i = 0; i < 3; ++i) lits.push_back(Lit::positive(first + i));
  f.add_exactly(lits, 1);
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  int true_count = 0;
  for (int i = 0; i < 3; ++i) {
    if (solver.model()[static_cast<std::size_t>(i)] == LBool::True) ++true_count;
  }
  EXPECT_EQ(true_count, 1);
}

TEST(Cdcl, PbInfeasibleBound) {
  Formula f;
  const Var first = f.new_vars(3);
  std::vector<Lit> lits;
  for (int i = 0; i < 3; ++i) lits.push_back(Lit::positive(first + i));
  f.add_at_least(lits, 4);  // contradiction
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(Cdcl, PbWithWeightsPropagates) {
  // 3a + 2b + c >= 5 forces a (max without a is 3 < 5).
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  const Var c = f.new_var();
  f.add_pb(PbConstraint::at_least(
      {{3, Lit::positive(a)}, {2, Lit::positive(b)}, {1, Lit::positive(c)}}, 5));
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.model()[static_cast<std::size_t>(a)], LBool::True);
  EXPECT_EQ(solver.model()[static_cast<std::size_t>(b)], LBool::True);
}

TEST(Cdcl, PbCardinalityConflictLearned) {
  // x1+..+x5 >= 3 together with at-most-one over the same vars: UNSAT.
  Formula f;
  const Var first = f.new_vars(5);
  std::vector<Lit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(Lit::positive(first + i));
  f.add_at_least(lits, 3);
  f.add_at_most(lits, 1);
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(Cdcl, AssumptionsSatisfiable) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  CdclSolver solver(f);
  const std::vector<Lit> assume{Lit::negative(a)};
  ASSERT_EQ(solver.solve({}, assume), SolveResult::Sat);
  EXPECT_EQ(solver.model()[static_cast<std::size_t>(a)], LBool::False);
  EXPECT_EQ(solver.model()[static_cast<std::size_t>(b)], LBool::True);
}

TEST(Cdcl, AssumptionsContradictFormula) {
  Formula f;
  const Var a = f.new_var();
  f.add_unit(Lit::positive(a));
  CdclSolver solver(f);
  const std::vector<Lit> assume{Lit::negative(a)};
  EXPECT_EQ(solver.solve({}, assume), SolveResult::Unsat);
  // Without the assumption the instance stays satisfiable.
  EXPECT_EQ(solver.solve(), SolveResult::Sat);
}

TEST(Cdcl, IncrementalClauseAddition) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  solver.add_clause({Lit::negative(a)});
  solver.add_clause({Lit::negative(b)});
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(Cdcl, IncrementalPbAddition) {
  Formula f;
  const Var first = f.new_vars(4);
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(Lit::positive(first + i));
  f.add_at_least(lits, 2);
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  std::vector<PbTerm> terms;
  for (const Lit l : lits) terms.push_back({1, l});
  solver.add_pb(PbConstraint::at_most(terms, 1));
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(Cdcl, ConflictBudgetReturnsUnknown) {
  SolverConfig config;
  config.conflict_budget = 1;
  CdclSolver solver(pigeonhole(7, 6), config);
  EXPECT_EQ(solver.solve(), SolveResult::Unknown);
}

TEST(Cdcl, DeadlineReturnsUnknown) {
  CdclSolver solver(pigeonhole(9, 8));
  const Deadline deadline(0.001);
  const SolveResult r = solver.solve(deadline);
  // Either it finished very fast or it reports Unknown — never wrong.
  EXPECT_NE(r, SolveResult::Sat);
}

TEST(Cdcl, StatsAccumulate) {
  CdclSolver solver(pigeonhole(6, 5));
  (void)solver.solve();
  EXPECT_GT(solver.stats().decisions, 0);
  EXPECT_GT(solver.stats().propagations, 0);
  EXPECT_GT(solver.stats().learned_clauses, 0);
}

// ---- clause arena storage ----

TEST(ClauseArena, AllocRoundTrip) {
  ClauseArena arena;
  const std::vector<Lit> a{Lit::positive(0), Lit::negative(1),
                           Lit::positive(2)};
  const std::vector<Lit> b{Lit::negative(3), Lit::positive(4)};
  const ClauseRef ra = arena.alloc(a, /*learnt=*/false);
  const ClauseRef rb = arena.alloc(b, /*learnt=*/true);
  ASSERT_EQ(arena.live_clauses(), 2);

  EXPECT_EQ(arena.size(ra), 3);
  EXPECT_FALSE(arena.learnt(ra));
  EXPECT_EQ(arena.size(rb), 2);
  EXPECT_TRUE(arena.learnt(rb));
  for (int i = 0; i < 3; ++i) EXPECT_EQ(arena.lit(ra, i), a[static_cast<std::size_t>(i)]);
  for (int i = 0; i < 2; ++i) EXPECT_EQ(arena.lit(rb, i), b[static_cast<std::size_t>(i)]);

  EXPECT_EQ(arena.activity(rb), 0.0f);
  arena.set_activity(rb, 3.5f);
  EXPECT_EQ(arena.activity(rb), 3.5f);
  // Activities are per-record: ra is untouched.
  EXPECT_EQ(arena.activity(ra), 0.0f);

  // Layout-order iteration visits exactly the two records.
  std::vector<ClauseRef> seen;
  for (ClauseRef cr = 0; cr != arena.end_ref(); cr = arena.next(cr)) {
    seen.push_back(cr);
  }
  EXPECT_EQ(seen, (std::vector<ClauseRef>{ra, rb}));
}

TEST(ClauseArena, RelocationCompactsAndForwards) {
  ClauseArena arena;
  std::vector<ClauseRef> refs;
  for (int i = 0; i < 8; ++i) {
    std::vector<Lit> lits{Lit::positive(2 * i), Lit::negative(2 * i + 1),
                          Lit::positive(2 * i + 1)};
    refs.push_back(arena.alloc(lits, i % 2 == 1));
    arena.set_activity(refs.back(), static_cast<float>(i));
  }
  // Delete every other clause, compact the survivors.
  for (int i = 0; i < 8; i += 2) arena.set_deleted(refs[static_cast<std::size_t>(i)]);
  EXPECT_EQ(arena.live_clauses(), 4);

  ClauseArena to;
  for (ClauseRef cr = 0; cr != arena.end_ref(); cr = arena.next(cr)) {
    if (!arena.deleted(cr)) arena.relocate(cr, &to);
  }
  EXPECT_EQ(to.live_clauses(), 4);
  // The new arena holds only live records: half the payload words.
  EXPECT_EQ(to.words(), arena.words() / 2);
  for (int i = 1; i < 8; i += 2) {
    const ClauseRef old = refs[static_cast<std::size_t>(i)];
    ASSERT_TRUE(arena.relocated(old));
    const ClauseRef fwd = arena.forward(old);
    EXPECT_EQ(to.size(fwd), 3);
    EXPECT_EQ(to.learnt(fwd), i % 2 == 1);
    EXPECT_EQ(to.activity(fwd), static_cast<float>(i));
    EXPECT_EQ(to.lit(fwd, 0), Lit::positive(2 * i));
  }
  // Deleted records were never relocated.
  for (int i = 0; i < 8; i += 2) {
    EXPECT_FALSE(arena.relocated(refs[static_cast<std::size_t>(i)]));
  }
}

TEST(Cdcl, ReduceDbShrinksWatcherLists) {
  // Regression for the tombstone leak: deleted clauses used to stay in
  // the clause vector and watch lists forever. With arena GC, every
  // reduction compacts storage, so after solving the watcher count must
  // equal exactly two per live clause — no dead refs linger.
  SolverConfig config;
  config.max_learnts_init = 8;  // force frequent reductions
  CdclSolver solver(pigeonhole(6, 5), config);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_GT(solver.stats().deleted_clauses, 0);
  EXPECT_GT(solver.stats().arena_collections, 0);
  EXPECT_EQ(solver.total_watchers(),
            2 * static_cast<std::size_t>(solver.live_clauses()));
}

TEST(Cdcl, ArenaGcPreservesAnswersUnderLoad) {
  // GC-under-load: a tiny learnt limit makes reduce_db()/collection fire
  // constantly while random instances are solved; answers must still
  // agree with brute force.
  SolverConfig config;
  config.max_learnts_init = 4;
  Rng rng(0xA11A);
  for (int round = 0; round < 20; ++round) {
    const int vars = 6 + static_cast<int>(rng.below(6));
    Formula f;
    f.new_vars(vars);
    const int clauses = 3 * vars + static_cast<int>(rng.below(12));
    for (int c = 0; c < clauses; ++c) {
      Clause clause;
      const int len = 1 + static_cast<int>(rng.below(4));
      for (int i = 0; i < len; ++i) {
        clause.push_back(
            Lit(static_cast<Var>(rng.below(static_cast<std::uint64_t>(vars))),
                rng.chance(0.5)));
      }
      f.add_clause(std::move(clause));
    }
    CdclSolver solver(f, config);
    const SolveResult r = solver.solve();
    ASSERT_NE(r, SolveResult::Unknown);
    EXPECT_EQ(r == SolveResult::Sat, brute_force_sat(f)) << "round " << round;
    if (r == SolveResult::Sat) {
      EXPECT_TRUE(f.satisfied_by(solver.model()));
    }
    // Storage stays consistent after every solve.
    EXPECT_EQ(solver.total_watchers(),
              2 * static_cast<std::size_t>(solver.live_clauses()));
  }
}

TEST(Cdcl, PbShortCircuitCountsAndStaysCorrect) {
  // A loose PB constraint (slack never near zero) must be short-circuited
  // rather than rescanned, without changing the answer.
  Formula f;
  const Var first = f.new_vars(10);
  std::vector<Lit> lits;
  for (int i = 0; i < 10; ++i) lits.push_back(Lit::positive(first + i));
  f.add_at_least(lits, 1);  // clause-strength, but keep a PB row too
  std::vector<PbTerm> terms;
  for (const Lit l : lits) terms.push_back({1, l});
  f.add_pb(PbConstraint::at_least(terms, 2));  // loose cardinality
  for (int i = 0; i + 1 < 10; ++i) {
    f.add_clause({Lit::negative(first + i), Lit::positive(first + i + 1)});
  }
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_TRUE(f.satisfied_by(solver.model()));
}

TEST(Luby, FirstElements) {
  const std::vector<std::int64_t> expected{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1,
                                           1, 2, 4, 8};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(luby(static_cast<std::int64_t>(i) + 1), expected[i]) << i;
  }
}

// ---- randomized cross-checks against brute force ----

struct RandomCnfParams {
  int vars;
  int clauses;
  std::uint64_t seed;
};

class RandomCnfTest : public ::testing::TestWithParam<RandomCnfParams> {};

TEST_P(RandomCnfTest, AgreesWithBruteForce) {
  const auto [vars, clauses, seed] = GetParam();
  Rng rng(seed);
  Formula f;
  f.new_vars(vars);
  for (int c = 0; c < clauses; ++c) {
    Clause clause;
    const int len = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < len; ++i) {
      clause.push_back(Lit(static_cast<Var>(rng.below(static_cast<std::uint64_t>(vars))),
                           rng.chance(0.5)));
    }
    f.add_clause(std::move(clause));
  }
  CdclSolver solver(f);
  const SolveResult r = solver.solve();
  ASSERT_NE(r, SolveResult::Unknown);
  EXPECT_EQ(r == SolveResult::Sat, brute_force_sat(f));
  if (r == SolveResult::Sat) {
    EXPECT_TRUE(f.satisfied_by(solver.model()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomCnfTest,
    ::testing::Values(RandomCnfParams{6, 14, 1}, RandomCnfParams{6, 20, 2},
                      RandomCnfParams{8, 24, 3}, RandomCnfParams{8, 34, 4},
                      RandomCnfParams{10, 30, 5}, RandomCnfParams{10, 44, 6},
                      RandomCnfParams{12, 40, 7}, RandomCnfParams{12, 54, 8},
                      RandomCnfParams{14, 58, 9}, RandomCnfParams{14, 62, 10},
                      RandomCnfParams{9, 38, 11}, RandomCnfParams{11, 46, 12}));

class RandomPbTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPbTest, MixedCnfPbAgreesWithBruteForce) {
  Rng rng(GetParam());
  const int vars = 8;
  Formula f;
  f.new_vars(vars);
  // A few clauses.
  for (int c = 0; c < 8; ++c) {
    Clause clause;
    for (int i = 0; i < 3; ++i) {
      clause.push_back(Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
    }
    f.add_clause(std::move(clause));
  }
  // A few weighted PB constraints.
  for (int c = 0; c < 4; ++c) {
    std::vector<PbTerm> terms;
    for (int i = 0; i < 4; ++i) {
      terms.push_back({static_cast<std::int64_t>(1 + rng.below(3)),
                       Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5))});
    }
    f.add_pb(PbConstraint::at_least(std::move(terms),
                                    static_cast<std::int64_t>(1 + rng.below(5))));
  }
  CdclSolver solver(f);
  const SolveResult r = solver.solve();
  ASSERT_NE(r, SolveResult::Unknown);
  EXPECT_EQ(r == SolveResult::Sat, brute_force_sat(f));
  if (r == SolveResult::Sat) {
    EXPECT_TRUE(f.satisfied_by(solver.model()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomPbTest,
                         ::testing::Range<std::uint64_t>(100, 120));

class SolverConfigTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverConfigTest, AllConfigurationsAgreeOnPigeonhole) {
  SolverConfig config;
  switch (GetParam()) {
    case 0: config.restart_scheme = RestartScheme::Luby; break;
    case 1: config.restart_scheme = RestartScheme::Geometric; break;
    case 2: config.minimize_learned = false; break;
    case 3: config.phase_saving = false; break;
    case 4: config.random_branch_freq = 0.05; break;
    case 5: config.default_phase = true; break;
    case 6: config.restart_scheme = RestartScheme::Adaptive; break;
    case 7: config.minimize_recursive = true; break;
  }
  {
    CdclSolver solver(pigeonhole(5, 5), config);
    EXPECT_EQ(solver.solve(), SolveResult::Sat);
  }
  {
    CdclSolver solver(pigeonhole(6, 5), config);
    EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SolverConfigTest, ::testing::Range(0, 8));

// ---- flat occurrence pool (watch lists / PB occurrence storage) ----

TEST(WatcherPool, PushGrowIterate) {
  FlatOccPool<int> pool;
  pool.init(4);
  EXPECT_EQ(pool.num_rows(), 4u);
  EXPECT_EQ(pool.live_entries(), 0u);
  for (int i = 0; i < 10; ++i) pool.push(1, i);
  for (int i = 0; i < 3; ++i) pool.push(3, 100 + i);
  EXPECT_EQ(pool.size(1), 10u);
  EXPECT_EQ(pool.size(3), 3u);
  EXPECT_EQ(pool.size(0), 0u);
  EXPECT_EQ(pool.live_entries(), 13u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(pool.data(1)[i], i);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(pool.row(3)[static_cast<std::size_t>(i)], 100 + i);
  // Doubling growth leaves relocation garbage behind in the slab.
  EXPECT_GT(pool.slab_slots(), pool.live_entries());
}

TEST(WatcherPool, TruncateDropsTail) {
  FlatOccPool<int> pool;
  pool.init(2);
  for (int i = 0; i < 8; ++i) pool.push(0, i);
  pool.truncate(0, 5);
  EXPECT_EQ(pool.size(0), 5u);
  EXPECT_EQ(pool.live_entries(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(pool.data(0)[i], i);
  // Pushing after a truncate reuses the freed tail slots.
  pool.push(0, 99);
  EXPECT_EQ(pool.size(0), 6u);
  EXPECT_EQ(pool.data(0)[5], 99);
}

TEST(WatcherPool, CompactRestoresCsrOrderAndDropsGarbage) {
  FlatOccPool<int> pool;
  pool.init(3);
  // Interleave pushes so rows end up scattered through the slab.
  for (int i = 0; i < 20; ++i) pool.push(static_cast<std::size_t>(i % 3), i);
  const std::size_t live_before = pool.live_entries();
  EXPECT_GT(pool.slab_slots(), live_before);
  pool.compact();
  EXPECT_EQ(pool.live_entries(), live_before);
  // After compaction rows sit in index order: each row's entries are
  // contiguous and the structural headroom is bounded (~1.5x + 2).
  EXPECT_LE(pool.slab_slots(), live_before + live_before / 2 + 2 * 3 + 3);
  for (std::size_t r = 0; r < 3; ++r) {
    int expect = static_cast<int>(r);
    for (const int v : pool.row(r)) {
      EXPECT_EQ(v, expect);
      expect += 3;
    }
  }
}

TEST(WatcherPool, RebuildFiltersAndMutates) {
  FlatOccPool<int> pool;
  pool.init(2);
  for (int i = 0; i < 12; ++i) pool.push(static_cast<std::size_t>(i % 2), i);
  // Keep even entries only, mapping each to its half (a mini ref-remap).
  pool.rebuild([](std::size_t, int& v) {
    if (v % 2 != 0) return false;
    v /= 2;
    return true;
  });
  EXPECT_EQ(pool.live_entries(), 6u);
  EXPECT_EQ(pool.size(0), 6u);  // row 0 held 0,2,4,6,8,10 -> 0,1,2,3,4,5
  EXPECT_EQ(pool.size(1), 0u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(pool.data(0)[i], i);
}

TEST(WatcherPool, SparseDetectsGarbageButNotHeadroom) {
  FlatOccPool<int> pool;
  pool.init(8);
  EXPECT_FALSE(pool.sparse());  // empty pool is not sparse
  for (int i = 0; i < 512; ++i) pool.push(0, i);  // doubling garbage piles up
  for (int round = 0; round < 6; ++round) {
    // Repeated grow cycles on a second row inflate the slab further.
    for (int i = 0; i < 64; ++i) pool.push(1, i);
    pool.truncate(1, 0);
  }
  // After compaction the pool is never immediately sparse again.
  pool.compact();
  EXPECT_FALSE(pool.sparse());
}

// ---- LBD metadata in the clause arena ----

TEST(ClauseArena, LbdAndUsedSurviveRelocation) {
  ClauseArena arena;
  const std::vector<Lit> a{Lit::positive(0), Lit::negative(1),
                           Lit::positive(2)};
  const std::vector<Lit> b{Lit::positive(3), Lit::negative(4),
                           Lit::positive(5)};
  const ClauseRef ra = arena.alloc(a, /*learnt=*/true);
  const ClauseRef rb = arena.alloc(b, /*learnt=*/true);
  EXPECT_EQ(arena.lbd(ra), 0);
  EXPECT_FALSE(arena.used(ra));
  arena.set_lbd(ra, 7);
  arena.set_used(ra);
  arena.set_activity(ra, 2.5f);
  EXPECT_EQ(arena.lbd(ra), 7);
  EXPECT_TRUE(arena.used(ra));
  EXPECT_EQ(arena.size(ra), 3);  // metadata must not corrupt the size bits
  arena.clear_used(ra);
  EXPECT_FALSE(arena.used(ra));
  arena.set_used(ra);

  // LBD saturates at its 4-bit cap instead of overflowing into
  // neighboring header bits. Saturation is lossless for retention: every
  // tier threshold sits far below the cap.
  arena.set_lbd(rb, 1 << 20);
  EXPECT_EQ(arena.lbd(rb), 15);
  EXPECT_EQ(arena.size(rb), 3);
  EXPECT_TRUE(arena.learnt(rb));

  // Relocation carries the metadata across a collection.
  ClauseArena to;
  const ClauseRef fa = arena.relocate(ra, &to);
  EXPECT_EQ(to.lbd(fa), 7);
  EXPECT_TRUE(to.used(fa));
  EXPECT_EQ(to.activity(fa), 2.5f);
}

// ---- LBD tiers in reduce_db ----

TEST(CdclLbd, EveryLearntClauseGetsGlue) {
  SolverConfig config;
  CdclSolver solver(pigeonhole(6, 5), config);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  const SolverStats& stats = solver.stats();
  ASSERT_GT(stats.learned_clauses, 0);
  // Every learnt clause has glue >= 1, and glue never exceeds the clause's
  // literal count, so the sum is bracketed by the other two counters.
  EXPECT_GE(stats.lbd_sum, stats.conflicts);
  EXPECT_LE(stats.lbd_sum, stats.learned_literals + stats.conflicts);
}

TEST(CdclLbd, TierCensusCoversAllLearnts) {
  SolverConfig config;
  config.conflict_budget = 300;  // stop mid-search with learnts attached
  const Formula f = pigeonhole(7, 6);
  CdclSolver solver(f, config);
  const std::int64_t problem_clauses = solver.live_clauses();
  (void)solver.solve();
  const TierCounts tiers = solver.learned_tier_counts();
  EXPECT_EQ(tiers.core + tiers.mid + tiers.local,
            solver.live_clauses() - problem_clauses);
}

TEST(CdclLbd, WideCoreTierBlocksDeletion) {
  // With the core threshold above any possible glue, every learnt clause
  // is immortal: reduce_db must not delete a single one even under a tiny
  // learnt limit that forces constant reductions.
  SolverConfig config;
  config.max_learnts_init = 8;
  config.tier_core_lbd = 1 << 20;
  CdclSolver solver(pigeonhole(6, 5), config);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_EQ(solver.stats().deleted_clauses, 0);
  EXPECT_GT(solver.stats().tier_core, 0);
}

TEST(CdclLbd, NarrowTiersRestoreActivityDeletion) {
  // With both thresholds at zero every non-binary learnt clause lands in
  // the local tier, recovering plain activity-driven deletion.
  SolverConfig config;
  config.max_learnts_init = 8;
  config.tier_core_lbd = 0;
  config.tier_mid_lbd = 0;
  CdclSolver solver(pigeonhole(6, 5), config);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_GT(solver.stats().deleted_clauses, 0);
  EXPECT_EQ(solver.total_watchers(),
            2 * static_cast<std::size_t>(solver.live_clauses()));
}

TEST(CdclLbd, MidTierDemotionAcrossRepeatedReductions) {
  // Unused mid-tier clauses must be demoted to the local pool over
  // repeated reduce_db() calls rather than surviving forever: a wide mid
  // tier plus a tiny learnt limit forces that path.
  SolverConfig config;
  config.max_learnts_init = 8;
  config.tier_core_lbd = 0;       // nothing is immortal
  config.tier_mid_lbd = 1 << 20;  // every clause starts mid
  CdclSolver solver(pigeonhole(7, 6), config);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_GT(solver.stats().arena_collections, 1);
  EXPECT_GT(solver.stats().tier_demotions, 0);
  EXPECT_GT(solver.stats().deleted_clauses, 0);
}

TEST(CdclLbd, TouchPromotionImprovesGlue) {
  // Re-touching a learnt clause in conflict analysis recomputes its LBD
  // and keeps the smaller value; on pigeonhole instances (dense reuse of
  // learnt clauses) promotions reliably occur.
  SolverConfig config;
  CdclSolver solver(pigeonhole(7, 6), config);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_GT(solver.stats().tier_promotions, 0);
}

// ---- adaptive (LBD-EMA) restarts ----

TEST(CdclRestarts, AdaptiveAgreesWithLubyOnAnswers) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    Rng rng(seed);
    Formula f;
    f.new_vars(10);
    for (int c = 0; c < 42; ++c) {
      Clause clause;
      const int len = 1 + static_cast<int>(rng.below(3));
      for (int i = 0; i < len; ++i) {
        clause.push_back(
            Lit(static_cast<Var>(rng.below(10)), rng.chance(0.5)));
      }
      f.add_clause(std::move(clause));
    }
    SolverConfig adaptive;
    adaptive.restart_scheme = RestartScheme::Adaptive;
    CdclSolver a(f, adaptive);
    CdclSolver b(f, SolverConfig{});
    const SolveResult ra = a.solve();
    const SolveResult rb = b.solve();
    ASSERT_NE(ra, SolveResult::Unknown);
    EXPECT_EQ(ra, rb) << "seed " << seed;
    if (ra == SolveResult::Sat) EXPECT_TRUE(f.satisfied_by(a.model()));
  }
}

TEST(CdclRestarts, AdaptiveTriggersOnHighGlueBursts) {
  // A hair-trigger margin makes the fast EMA cross the slow one almost
  // immediately on a conflict-heavy UNSAT instance.
  SolverConfig config;
  config.restart_scheme = RestartScheme::Adaptive;
  config.adaptive_min_conflicts = 8;
  config.restart_margin = 1.0;
  CdclSolver solver(pigeonhole(7, 6), config);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_GT(solver.stats().adaptive_restarts, 0);
  EXPECT_GE(solver.stats().restarts, solver.stats().adaptive_restarts);
}

TEST(CdclRestarts, ScheduledSchemesNeverCountAdaptive) {
  CdclSolver solver(pigeonhole(6, 5), SolverConfig{});
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_EQ(solver.stats().adaptive_restarts, 0);
}

// ---- incremental adds through the flat pools ----

TEST(Cdcl, IncrementalAddPbRebuildsOccurrencePool) {
  // add_pb between solves appends through the pool growth path; the next
  // solve() re-compacts. Answers must track the growing constraint set.
  Formula f;
  const Var first = f.new_vars(6);
  std::vector<PbTerm> ones;
  for (int i = 0; i < 6; ++i) ones.push_back({1, Lit::positive(first + i)});
  f.add_pb(PbConstraint::at_least(ones, 2));
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  const std::size_t occs_before = solver.total_pb_occs();
  // Tighten: at least 5 of 6, then force two variables false -> UNSAT.
  ASSERT_TRUE(solver.add_pb(PbConstraint::at_least(ones, 5)));
  EXPECT_GT(solver.total_pb_occs(), occs_before);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  bool ok = solver.add_clause({Lit::negative(first)});
  ok = ok && solver.add_clause({Lit::negative(first + 1)});
  if (ok) {
    EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  }
  // The occurrence pool stays garbage-bounded after the rebuild hook.
  EXPECT_GE(solver.pb_occ_pool_slots(), solver.total_pb_occs());
}

TEST(Cdcl, IncrementalAddClauseGrowsWatcherPools) {
  Formula f;
  f.new_vars(8);
  f.add_clause({Lit::positive(0), Lit::positive(1)});
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  const std::size_t watchers_before = solver.total_watchers();
  ASSERT_TRUE(solver.add_clause(
      {Lit::negative(0), Lit::positive(2), Lit::positive(3)}));
  ASSERT_TRUE(solver.add_clause({Lit::negative(1), Lit::negative(2)}));
  EXPECT_EQ(solver.total_watchers(), watchers_before + 4);
  EXPECT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.total_watchers(),
            2 * static_cast<std::size_t>(solver.live_clauses()));
}

}  // namespace
}  // namespace symcolor
