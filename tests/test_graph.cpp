// Unit tests for the graph structure and DIMACS .col I/O.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/dimacs_col.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace symcolor {
namespace {

Graph triangle() {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.finalize();
  return g;
}

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.finalized());
  EXPECT_EQ(g.max_degree(), 0);
  EXPECT_EQ(g.density(), 0.0);
}

TEST(Graph, AddAndQueryEdges) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, DuplicateEdgesCollapse) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(Graph, SelfLoopsIgnored) {
  Graph g(2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Graph, OutOfRangeEdgeThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
}

TEST(Graph, NeighborsSorted) {
  Graph g(4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(2, 1);
  g.finalize();
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0);
  EXPECT_EQ(nb[1], 1);
  EXPECT_EQ(nb[2], 3);
}

TEST(Graph, DegreeAndMaxDegree) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.finalize();
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(3), 1);
  EXPECT_EQ(g.max_degree(), 3);
}

TEST(Graph, DensityOfCompleteGraph) {
  const Graph g = triangle();
  EXPECT_DOUBLE_EQ(g.density(), 1.0);
}

TEST(Graph, FinalizeIdempotent) {
  Graph g = triangle();
  g.finalize();
  g.finalize();
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(Graph, RelabeledPreservesStructure) {
  const Graph g = triangle();
  const std::vector<int> perm{2, 0, 1};
  const Graph h = g.relabeled(perm);
  EXPECT_EQ(h.num_edges(), 3);
  EXPECT_TRUE(h.has_edge(2, 0));
}

TEST(Graph, RelabeledRejectsBadPermSize) {
  const Graph g = triangle();
  EXPECT_THROW((void)g.relabeled(std::vector<int>{0, 1}),
               std::invalid_argument);
}

TEST(Graph, ComplementOfTriangleIsEmpty) {
  const Graph g = triangle();
  EXPECT_EQ(g.complement().num_edges(), 0);
}

TEST(Graph, ComplementOfPath) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  const Graph c = g.complement();
  EXPECT_EQ(c.num_edges(), 1);
  EXPECT_TRUE(c.has_edge(0, 2));
}

TEST(Graph, ComplementInvolution) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(1, 4);
  g.finalize();
  const Graph cc = g.complement().complement();
  EXPECT_EQ(cc.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) EXPECT_TRUE(cc.has_edge(e.u, e.v));
}

TEST(Graph, ProperColoringAccepted) {
  const Graph g = triangle();
  EXPECT_TRUE(g.is_proper_coloring(std::vector<int>{0, 1, 2}));
}

TEST(Graph, ImproperColoringRejected) {
  const Graph g = triangle();
  EXPECT_FALSE(g.is_proper_coloring(std::vector<int>{0, 0, 1}));
}

TEST(Graph, WrongSizeColoringRejected) {
  const Graph g = triangle();
  EXPECT_FALSE(g.is_proper_coloring(std::vector<int>{0, 1}));
}

TEST(Graph, CountColors) {
  EXPECT_EQ(Graph::count_colors(std::vector<int>{0, 2, 0, 5}), 3);
  EXPECT_EQ(Graph::count_colors(std::vector<int>{}), 0);
}

TEST(Graph, ResetClearsEverything) {
  Graph g = triangle();
  g.reset(2);
  EXPECT_EQ(g.num_vertices(), 2);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(DimacsCol, ParsesWellFormedInput) {
  const Graph g = read_dimacs_col_string(
      "c a comment\n"
      "p edge 3 3\n"
      "e 1 2\n"
      "e 2 3\n"
      "e 1 3\n");
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(DimacsCol, ToleratesDuplicateAndReversedEdges) {
  const Graph g = read_dimacs_col_string(
      "p edge 2 3\n"
      "e 1 2\n"
      "e 2 1\n"
      "e 1 2\n");
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(DimacsCol, BlankLinesAndCommentsIgnored) {
  const Graph g = read_dimacs_col_string(
      "\nc x\n\np edge 2 1\n\ne 1 2\n\n");
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(DimacsCol, RejectsMissingHeader) {
  EXPECT_THROW(read_dimacs_col_string("e 1 2\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_col_string(""), std::runtime_error);
}

TEST(DimacsCol, RejectsDuplicateHeader) {
  EXPECT_THROW(read_dimacs_col_string("p edge 2 0\np edge 2 0\n"),
               std::runtime_error);
}

TEST(DimacsCol, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(read_dimacs_col_string("p edge 2 1\ne 1 3\n"),
               std::runtime_error);
  EXPECT_THROW(read_dimacs_col_string("p edge 2 1\ne 0 1\n"),
               std::runtime_error);
}

TEST(DimacsCol, RejectsMalformedDirective) {
  EXPECT_THROW(read_dimacs_col_string("p edge 2 1\nq 1 2\n"),
               std::runtime_error);
  EXPECT_THROW(read_dimacs_col_string("p edge 2 1\ne 1\n"),
               std::runtime_error);
  EXPECT_THROW(read_dimacs_col_string("p edge two 1\n"), std::runtime_error);
}

TEST(DimacsCol, RoundTrip) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  g.finalize();
  const Graph h = read_dimacs_col_string(write_dimacs_col_string(g, "rt"));
  EXPECT_EQ(h.num_vertices(), 4);
  EXPECT_EQ(h.num_edges(), 3);
  for (const Edge& e : g.edges()) EXPECT_TRUE(h.has_edge(e.u, e.v));
}

TEST(DimacsCol, WriterEmitsHeaderAndComment) {
  Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  const std::string text = write_dimacs_col_string(g, "hello");
  EXPECT_NE(text.find("c hello"), std::string::npos);
  EXPECT_NE(text.find("p edge 2 1"), std::string::npos);
  EXPECT_NE(text.find("e 1 2"), std::string::npos);
}

// ---- CSR layout vs reference adjacency ----

/// A trivially-correct adjacency structure built straight from an edge
/// list, used to cross-check the CSR accessors.
struct ReferenceAdjacency {
  explicit ReferenceAdjacency(int n) : adj(static_cast<std::size_t>(n)) {}
  void add(int u, int v) {
    if (u == v) return;
    adj[static_cast<std::size_t>(u)].insert(v);
    adj[static_cast<std::size_t>(v)].insert(u);
  }
  std::vector<std::set<int>> adj;
};

class CsrEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrEquivalenceTest, MatchesReferenceOnRandomGraph) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.below(40));
  const int max_edges = n * (n - 1) / 2;
  const int m = static_cast<int>(rng.below(
      static_cast<std::uint64_t>(2 * max_edges) + 1));  // includes duplicates
  Graph g(n);
  ReferenceAdjacency ref(n);
  for (int i = 0; i < m; ++i) {
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    g.add_edge(u, v);
    ref.add(u, v);
  }
  g.finalize();

  int max_degree = 0;
  for (int v = 0; v < n; ++v) {
    const std::set<int>& expected = ref.adj[static_cast<std::size_t>(v)];
    EXPECT_EQ(g.degree(v), static_cast<int>(expected.size())) << "v=" << v;
    max_degree = std::max(max_degree, static_cast<int>(expected.size()));
    // neighbors() must be exactly the reference set, sorted ascending.
    const std::span<const int> got = g.neighbors(v);
    ASSERT_EQ(got.size(), expected.size()) << "v=" << v;
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end())) << "v=" << v;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()))
        << "v=" << v;
    for (int u = 0; u < n; ++u) {
      EXPECT_EQ(g.has_edge(v, u), expected.count(u) == 1)
          << "v=" << v << " u=" << u;
    }
  }
  EXPECT_EQ(g.max_degree(), max_degree);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CsrEquivalenceTest,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(Graph, CsrRebuildAfterMutation) {
  // add_edge() after finalize() must invalidate and then rebuild the CSR
  // arrays consistently.
  Graph g(5);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_EQ(g.degree(0), 1);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  EXPECT_FALSE(g.finalized());
  g.finalize();
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(3, 4));
  const std::span<const int> adj0 = g.neighbors(0);
  EXPECT_EQ(std::vector<int>(adj0.begin(), adj0.end()),
            (std::vector<int>{1, 2}));
}

TEST(Graph, NeighborsOutOfRangeThrows) {
  const Graph g = triangle();
  EXPECT_THROW(g.neighbors(-1), std::out_of_range);
  EXPECT_THROW(g.neighbors(3), std::out_of_range);
  EXPECT_THROW(g.degree(3), std::out_of_range);
  EXPECT_THROW(g.has_edge(0, 7), std::out_of_range);
}

}  // namespace
}  // namespace symcolor
