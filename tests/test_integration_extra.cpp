// Additional integration coverage: weighted-coefficient formula graphs,
// clause-database reduction under heavy conflict load, cross-module
// pipelines (simplify + shatter + solve), and stress variants.

#include <gtest/gtest.h>

#include <cmath>

#include "automorphism/group.h"
#include "cnf/simplify.h"
#include "cnf/writers.h"
#include "coloring/exact_colorer.h"
#include "graph/generators.h"
#include "pb/optimizer.h"
#include "sat/cdcl.h"
#include "symmetry/formula_graph.h"
#include "symmetry/shatter.h"

namespace symcolor {
namespace {

Formula pigeonhole(int pigeons, int holes) {
  Formula f;
  std::vector<std::vector<Var>> in(static_cast<std::size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)].push_back(f.new_var());
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) {
      c.push_back(Lit::positive(in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    f.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        f.add_clause(
            {Lit::negative(in[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
             Lit::negative(in[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)])});
      }
    }
  }
  return f;
}

TEST(FormulaGraphWeighted, CoefficientVerticesCreated) {
  Formula f;
  f.new_vars(4);
  f.add_pb(PbConstraint::at_least({{3, Lit::positive(0)},
                                   {3, Lit::positive(1)},
                                   {1, Lit::positive(2)},
                                   {1, Lit::positive(3)}},
                                  4));
  const FormulaGraph fg = build_formula_graph(f);
  // 8 literal vertices + 1 constraint vertex + 2 coefficient-group
  // vertices (coeff 3 and coeff 1).
  EXPECT_EQ(fg.graph.num_vertices(), 11);
}

TEST(FormulaGraphWeighted, EqualCoeffVarsSymmetric) {
  // Variables with equal coefficients may swap; across groups they may
  // not. Group = <swap(0,1)> x <swap(2,3)>: order 4.
  Formula f;
  f.new_vars(4);
  f.add_pb(PbConstraint::at_least({{3, Lit::positive(0)},
                                   {3, Lit::positive(1)},
                                   {1, Lit::positive(2)},
                                   {1, Lit::positive(3)}},
                                  4));
  const SymmetryInfo info = detect_symmetries(f);
  EXPECT_NEAR(info.log10_order, std::log10(4.0), 1e-6);
  for (const Perm& p : info.generators) {
    EXPECT_TRUE(is_formula_symmetry(f, p));
  }
}

TEST(FormulaGraphWeighted, WeightedObjectiveSplitsGroups) {
  Formula f;
  f.new_vars(3);
  Objective obj;
  obj.terms = {{2, Lit::positive(0)}, {2, Lit::positive(1)},
               {5, Lit::positive(2)}};
  f.set_objective(obj);
  const SymmetryInfo info = detect_symmetries(f);
  for (const Perm& p : info.generators) {
    // var2 (weight 5) can never map onto var0/var1 (weight 2).
    EXPECT_EQ(p[static_cast<std::size_t>(Lit::positive(2).code())],
              Lit::positive(2).code());
  }
}

TEST(CdclStress, ClauseDatabaseReductionTriggered) {
  // PHP(8,7) produces thousands of learned clauses, forcing at least one
  // reduce_db sweep; the result must still be UNSAT.
  CdclSolver solver(pigeonhole(8, 7));
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  EXPECT_GT(solver.stats().learned_clauses, 1000);
}

TEST(CdclStress, RepeatedSolveCallsStayConsistent) {
  Formula f = pigeonhole(5, 5);
  CdclSolver solver(f);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(solver.solve(), SolveResult::Sat);
    EXPECT_TRUE(f.satisfied_by(solver.model()));
  }
}

TEST(CdclStress, AssumptionsAfterLearnedClauses) {
  // Learn from a hard phase, then query with assumptions.
  Formula f = pigeonhole(5, 5);
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  // Force pigeon 0 out of every hole: unsatisfiable under assumptions.
  std::vector<Lit> assume;
  for (int h = 0; h < 5; ++h) assume.push_back(Lit::negative(h));
  EXPECT_EQ(solver.solve({}, assume), SolveResult::Unsat);
  // And satisfiable again without them.
  EXPECT_EQ(solver.solve(), SolveResult::Sat);
}

TEST(PipelineCombos, SimplifyPlusShatterPlusSolve) {
  const Graph g = make_myciel_dimacs(4);
  ColoringOptions options;
  options.max_colors = 7;
  options.sbps = SbpOptions::sc_only();
  options.instance_dependent_sbps = true;
  options.presimplify = true;
  const ColoringOutcome r = solve_coloring(g, options);
  ASSERT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.num_colors, 5);
}

TEST(PipelineCombos, SimplifyPreservesEverySbpRow) {
  const Graph g = make_queen_graph(4, 4);
  for (const SbpOptions& sbps : paper_sbp_rows()) {
    ColoringOptions options;
    options.max_colors = 6;
    options.sbps = sbps;
    options.presimplify = true;
    const ColoringOutcome r = solve_coloring(g, options);
    ASSERT_EQ(r.status, OptStatus::Optimal) << sbps.label();
    EXPECT_EQ(r.num_colors, 5) << sbps.label();
  }
}

TEST(PipelineCombos, OpbExportRoundTripSolvesSame) {
  const Graph g = make_myciel_dimacs(3);
  const ColoringEncoding enc = encode_coloring(g, 6, SbpOptions::nu_only());
  const Formula reread = read_opb_string(write_opb_string(enc.formula));
  const OptResult a = minimize_linear(enc.formula, {}, {});
  const OptResult b = minimize_linear(reread, {}, {});
  ASSERT_EQ(a.status, OptStatus::Optimal);
  ASSERT_EQ(b.status, OptStatus::Optimal);
  EXPECT_EQ(a.best_value, b.best_value);
}

TEST(PipelineCombos, ShatterGeneratorsFormAGroupConsistentWithOrder) {
  // Schreier-Sims on the literal permutations must reproduce at least
  // the order the graph search reported (equal when detection completed).
  Formula f;
  f.new_vars(5);
  std::vector<Lit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(Lit::positive(i));
  f.add_exactly(lits, 2);
  const SymmetryInfo info = detect_symmetries(f);
  ASSERT_TRUE(info.complete);
  PermGroup group(2 * f.num_vars());
  for (const Perm& p : info.generators) group.add_generator(p);
  EXPECT_NEAR(group.log10_order(), info.log10_order, 1e-6);
}

TEST(PipelineCombos, DeepQueenInstanceEndToEnd) {
  // queen7_7 through the complete flow: encode + NU+SC + shatter +
  // simplify + solve, checked against the known chromatic number 7.
  ColoringOptions options;
  options.max_colors = 9;
  options.sbps = SbpOptions::nu_sc();
  options.instance_dependent_sbps = true;
  options.presimplify = true;
  options.time_budget_seconds = 30.0;
  const ColoringOutcome r = solve_coloring(make_queen_graph(7, 7), options);
  ASSERT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.num_colors, 7);
}

TEST(GeneratorEdgeCases, MycielskiRejectsBadIndex) {
  EXPECT_THROW((void)make_mycielski(1), std::invalid_argument);
}

TEST(GeneratorEdgeCases, PartiteBuilderRejectsTinyTargets) {
  EXPECT_THROW((void)make_book_graph(20, 5, 8, 1), std::invalid_argument);
  EXPECT_THROW((void)make_register_graph(20, 3, 8, 1), std::invalid_argument);
}

TEST(GeneratorEdgeCases, GeometricSmall) {
  const Graph g = make_geometric_graph(4, 3, 9);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_GE(g.num_edges(), 1);
}

}  // namespace
}  // namespace symcolor
