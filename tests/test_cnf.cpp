// Tests for literals, PB constraint normalization, Formula, and the
// DIMACS-CNF / OPB writers.

#include <gtest/gtest.h>

#include "cnf/formula.h"
#include "cnf/literals.h"
#include "cnf/pb_constraint.h"
#include "cnf/writers.h"

namespace symcolor {
namespace {

TEST(Lit, CodePacking) {
  const Lit p = Lit::positive(3);
  const Lit n = Lit::negative(3);
  EXPECT_EQ(p.var(), 3);
  EXPECT_FALSE(p.negated());
  EXPECT_EQ(n.var(), 3);
  EXPECT_TRUE(n.negated());
  EXPECT_EQ(p.code(), 6);
  EXPECT_EQ(n.code(), 7);
}

TEST(Lit, Complement) {
  const Lit p = Lit::positive(5);
  EXPECT_EQ(~p, Lit::negative(5));
  EXPECT_EQ(~~p, p);
}

TEST(Lit, UndefInvalid) {
  EXPECT_FALSE(kUndefLit.valid());
  EXPECT_TRUE(Lit::positive(0).valid());
}

TEST(Lit, FromCodeRoundTrip) {
  for (int code = 0; code < 10; ++code) {
    EXPECT_EQ(Lit::from_code(code).code(), code);
  }
}

TEST(Lit, ValueSemantics) {
  EXPECT_EQ(lit_value(LBool::True, false), LBool::True);
  EXPECT_EQ(lit_value(LBool::True, true), LBool::False);
  EXPECT_EQ(lit_value(LBool::False, true), LBool::True);
  EXPECT_EQ(lit_value(LBool::Undef, false), LBool::Undef);
  EXPECT_EQ(lit_value(LBool::Undef, true), LBool::Undef);
}

TEST(PbConstraint, AtLeastKeepsPositiveTerms) {
  const auto c = PbConstraint::at_least(
      {{2, Lit::positive(0)}, {3, Lit::positive(1)}}, 2);
  EXPECT_EQ(c.bound(), 2);
  EXPECT_EQ(c.terms().size(), 2u);
  EXPECT_EQ(c.coeff_sum(), 4);  // saturation caps 3 at the bound 2
}

TEST(PbConstraint, SaturationCapsCoefficients) {
  const auto c = PbConstraint::at_least({{100, Lit::positive(0)}}, 1);
  EXPECT_EQ(c.terms()[0].coeff, 1);
  EXPECT_TRUE(c.is_clause());
}

TEST(PbConstraint, NegativeCoefficientRewritten) {
  // -2*x0 >= -1  <=>  2*~x0 >= 1  (bound shifted by 2, saturated to 1).
  const auto c = PbConstraint::at_least({{-2, Lit::positive(0)}}, -1);
  ASSERT_EQ(c.terms().size(), 1u);
  EXPECT_EQ(c.terms()[0].lit, Lit::negative(0));
  EXPECT_EQ(c.bound(), 1);
}

TEST(PbConstraint, AtMostFlipsToAtLeast) {
  // x0 + x1 <= 1  <=>  ~x0 + ~x1 >= 1.
  const auto c = PbConstraint::at_most(
      {{1, Lit::positive(0)}, {1, Lit::positive(1)}}, 1);
  EXPECT_EQ(c.bound(), 1);
  for (const PbTerm& t : c.terms()) EXPECT_TRUE(t.lit.negated());
}

TEST(PbConstraint, DuplicateLiteralsMerge) {
  const auto c = PbConstraint::at_least(
      {{1, Lit::positive(0)}, {2, Lit::positive(0)}}, 3);
  ASSERT_EQ(c.terms().size(), 1u);
  EXPECT_EQ(c.terms()[0].coeff, 3);
}

TEST(PbConstraint, OpposingLiteralsCancel) {
  // 2*x0 + 1*~x0 >= 1  <=>  x0 + 1 >= 1  <=>  x0 >= 0: tautology.
  const auto c = PbConstraint::at_least(
      {{2, Lit::positive(0)}, {1, Lit::negative(0)}}, 1);
  EXPECT_TRUE(c.is_tautology());
}

TEST(PbConstraint, ContradictionDetected) {
  const auto c = PbConstraint::at_least({{1, Lit::positive(0)}}, 2);
  EXPECT_TRUE(c.is_contradiction());
}

TEST(PbConstraint, CardinalityAndClauseFlags) {
  const auto card = PbConstraint::at_least(
      {{1, Lit::positive(0)}, {1, Lit::positive(1)}, {1, Lit::positive(2)}}, 2);
  EXPECT_TRUE(card.is_cardinality());
  EXPECT_FALSE(card.is_clause());
  const auto clause = PbConstraint::at_least(
      {{1, Lit::positive(0)}, {1, Lit::positive(1)}}, 1);
  EXPECT_TRUE(clause.is_clause());
}

TEST(PbConstraint, TermsSortedDescendingCoeff) {
  const auto c = PbConstraint::at_least(
      {{1, Lit::positive(0)}, {3, Lit::positive(1)}, {2, Lit::positive(2)}}, 4);
  EXPECT_GE(c.terms()[0].coeff, c.terms()[1].coeff);
  EXPECT_GE(c.terms()[1].coeff, c.terms()[2].coeff);
}

TEST(PbConstraint, SatisfiedByEvaluation) {
  const auto c = PbConstraint::at_least(
      {{1, Lit::positive(0)}, {1, Lit::positive(1)}}, 1);
  std::vector<LBool> vals{LBool::True, LBool::False};
  EXPECT_TRUE(c.satisfied_by(vals));
  vals[0] = LBool::False;
  EXPECT_FALSE(c.satisfied_by(vals));
}

TEST(PbConstraint, EqualityAfterCanonicalization) {
  const auto a = PbConstraint::at_least(
      {{1, Lit::positive(0)}, {1, Lit::positive(1)}}, 1);
  const auto b = PbConstraint::at_least(
      {{1, Lit::positive(1)}, {1, Lit::positive(0)}}, 1);
  EXPECT_EQ(a, b);
}

TEST(Formula, NewVarsSequential) {
  Formula f;
  EXPECT_EQ(f.new_var("a"), 0);
  EXPECT_EQ(f.new_var("b"), 1);
  EXPECT_EQ(f.new_vars(3), 2);
  EXPECT_EQ(f.num_vars(), 5);
  EXPECT_EQ(f.var_name(1), "b");
}

TEST(Formula, TautologicalClauseDropped) {
  Formula f;
  const Var v = f.new_var();
  f.add_clause({Lit::positive(v), Lit::negative(v)});
  EXPECT_EQ(f.num_clauses(), 0);
}

TEST(Formula, DuplicateLiteralsMergedInClause) {
  Formula f;
  const Var v = f.new_var();
  const Var w = f.new_var();
  f.add_clause({Lit::positive(v), Lit::positive(v), Lit::positive(w)});
  ASSERT_EQ(f.num_clauses(), 1);
  EXPECT_EQ(f.clauses()[0].size(), 2u);
}

TEST(Formula, EmptyClauseMakesTriviallyUnsat) {
  Formula f;
  f.add_clause({});
  EXPECT_TRUE(f.trivially_unsat());
}

TEST(Formula, OutOfRangeLiteralThrows) {
  Formula f;
  f.new_var();
  EXPECT_THROW(f.add_clause({Lit::positive(5)}), std::out_of_range);
}

TEST(Formula, TautologicalPbDropped) {
  Formula f;
  const Var v = f.new_var();
  f.add_pb(PbConstraint::at_least({{1, Lit::positive(v)}}, 0));
  EXPECT_EQ(f.num_pb(), 0);
}

TEST(Formula, ExactlyAddsTwoConstraints) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_exactly({Lit::positive(a), Lit::positive(b)}, 1);
  EXPECT_EQ(f.num_pb(), 2);
}

TEST(Formula, SatisfiedByChecksEverything) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  f.add_at_most({Lit::positive(a), Lit::positive(b)}, 1);
  std::vector<LBool> one_true{LBool::True, LBool::False};
  EXPECT_TRUE(f.satisfied_by(one_true));
  std::vector<LBool> both_true{LBool::True, LBool::True};
  EXPECT_FALSE(f.satisfied_by(both_true));
  std::vector<LBool> none{LBool::False, LBool::False};
  EXPECT_FALSE(f.satisfied_by(none));
}

TEST(Objective, ValueCountsTrueTerms) {
  Objective obj;
  obj.terms = {{2, Lit::positive(0)}, {3, Lit::negative(1)}};
  std::vector<LBool> vals{LBool::True, LBool::False};
  EXPECT_EQ(obj.value(vals), 5);
  vals[1] = LBool::True;
  EXPECT_EQ(obj.value(vals), 2);
}

TEST(Writers, DimacsCnfFormat) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_clause({Lit::positive(a), Lit::negative(b)});
  const std::string text = write_dimacs_cnf_string(f);
  EXPECT_NE(text.find("p cnf 2 1"), std::string::npos);
  EXPECT_NE(text.find("1 -2 0"), std::string::npos);
}

TEST(Writers, DimacsCnfAcceptsClausalPb) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_at_least({Lit::positive(a), Lit::positive(b)}, 1);
  EXPECT_NO_THROW((void)write_dimacs_cnf_string(f));
}

TEST(Writers, DimacsCnfRejectsRealPb) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  const Var c = f.new_var();
  f.add_at_least({Lit::positive(a), Lit::positive(b), Lit::positive(c)}, 2);
  EXPECT_THROW((void)write_dimacs_cnf_string(f), std::invalid_argument);
}

TEST(Writers, OpbRoundTripConstraints) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  const Var c = f.new_var();
  f.add_at_least({Lit::positive(a), Lit::negative(b), Lit::positive(c)}, 2);
  f.add_at_most({Lit::positive(a), Lit::positive(c)}, 1);
  Objective obj;
  obj.terms = {{1, Lit::positive(a)}, {1, Lit::positive(b)}};
  f.set_objective(obj);

  const Formula g = read_opb_string(write_opb_string(f));
  EXPECT_EQ(g.num_vars(), 3);
  ASSERT_TRUE(g.objective().has_value());
  EXPECT_EQ(g.objective()->terms.size(), 2u);
  // Same satisfying assignments on a few probes.
  for (int mask = 0; mask < 8; ++mask) {
    std::vector<LBool> vals(3);
    for (int i = 0; i < 3; ++i) {
      vals[static_cast<std::size_t>(i)] =
          (mask >> i) & 1 ? LBool::True : LBool::False;
    }
    EXPECT_EQ(f.satisfied_by(vals), g.satisfied_by(vals)) << "mask " << mask;
  }
}

TEST(Writers, OpbParsesEquality) {
  const Formula f = read_opb_string("+1 x1 +1 x2 = 1 ;\n");
  EXPECT_EQ(f.num_pb(), 2);
}

TEST(Writers, OpbRejectsGarbage) {
  EXPECT_THROW((void)read_opb_string("+1 q1 >= 1 ;\n"), std::runtime_error);
  EXPECT_THROW((void)read_opb_string("+1 x1 ;\n"), std::runtime_error);
}

}  // namespace
}  // namespace symcolor
