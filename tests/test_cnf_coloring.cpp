// Tests for PB->CNF conversion, the pure-CNF coloring encodings, the
// SAT-loop optimizer, and the Mehrotra-Trick set-cover formulation.

#include <gtest/gtest.h>

#include "cnf/pb_to_cnf.h"
#include "coloring/cnf_coloring.h"
#include "coloring/dsatur_bnb.h"
#include "coloring/set_cover_formulation.h"
#include "graph/clique.h"
#include "graph/generators.h"
#include "pb/optimizer.h"
#include "sat/cdcl.h"
#include "symmetry/shatter.h"
#include "util/rng.h"

namespace symcolor {
namespace {

int dsaturbnb_chi(const Graph& g) {
  return dsatur_branch_and_bound(g).num_colors;
}

/// Count models projected onto the first `original_vars` variables.
int count_projected_models(const Formula& f, int original_vars) {
  int count = 0;
  for (std::uint64_t mask = 0; mask < (1ULL << original_vars); ++mask) {
    Formula probe = f;
    for (int i = 0; i < original_vars; ++i) {
      probe.add_unit(Lit(i, ((mask >> i) & 1) == 0));
    }
    CdclSolver solver(probe);
    if (solver.solve() == SolveResult::Sat) ++count;
  }
  return count;
}

TEST(PbToCnf, CardinalityAtMostCounts) {
  // at-most-2 of 4: C(4,0)+C(4,1)+C(4,2) = 11 assignments.
  Formula f;
  f.new_vars(4);
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(Lit::positive(i));
  const PbToCnfStats stats = encode_cardinality_at_most(f, lits, 2);
  EXPECT_GT(stats.aux_vars, 0);
  EXPECT_EQ(f.num_pb(), 0);
  EXPECT_EQ(count_projected_models(f, 4), 11);
}

TEST(PbToCnf, CardinalityAtLeastCounts) {
  // at-least-3 of 5: C(5,3)+C(5,4)+C(5,5) = 16.
  Formula f;
  f.new_vars(5);
  std::vector<Lit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(Lit::positive(i));
  encode_cardinality_at_least(f, lits, 3);
  EXPECT_EQ(count_projected_models(f, 5), 16);
}

TEST(PbToCnf, CardinalityEdgeCases) {
  Formula f;
  f.new_vars(3);
  std::vector<Lit> lits{Lit::positive(0), Lit::positive(1), Lit::positive(2)};
  // bound 0: no-op for at_least; all-negative units for at_most.
  encode_cardinality_at_least(f, lits, 0);
  EXPECT_EQ(f.num_clauses(), 0);
  encode_cardinality_at_most(f, lits, 0);
  EXPECT_EQ(f.num_clauses(), 3);
  // bound >= n at_most: no-op.
  Formula g;
  g.new_vars(3);
  encode_cardinality_at_most(g, lits, 3);
  EXPECT_EQ(g.num_clauses(), 0);
}

TEST(PbToCnf, InfeasibleBoundGivesUnsat) {
  Formula f;
  f.new_vars(2);
  std::vector<Lit> lits{Lit::positive(0), Lit::positive(1)};
  encode_cardinality_at_least(f, lits, 3);
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(PbToCnf, WeightedBddMatchesSemantics) {
  // 3a + 2b + c >= 4: satisfied by {a,b}, {a,c}, {a,b,c}, {b,c}? 2+1=3 no.
  // Models: a&b (5), a&c (4), a&b&c (6) -> 3 assignments.
  Formula f;
  f.new_vars(3);
  const auto pb = PbConstraint::at_least(
      {{3, Lit::positive(0)}, {2, Lit::positive(1)}, {1, Lit::positive(2)}}, 4);
  const PbToCnfStats stats = encode_pb_as_cnf(f, pb);
  EXPECT_GT(stats.aux_vars, 0);
  EXPECT_EQ(count_projected_models(f, 3), 3);
}

TEST(PbToCnf, WeightedBddRandomAgainstBruteForce) {
  Rng rng(321);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 5;
    std::vector<PbTerm> terms;
    for (int i = 0; i < n; ++i) {
      terms.push_back({static_cast<std::int64_t>(1 + rng.below(4)),
                       Lit(static_cast<Var>(i), rng.chance(0.5))});
    }
    const auto bound = static_cast<std::int64_t>(1 + rng.below(8));
    const auto pb = PbConstraint::at_least(terms, bound);
    if (pb.is_tautology()) continue;

    Formula f;
    f.new_vars(n);
    encode_pb_as_cnf(f, pb);

    int expected = 0;
    for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
      std::vector<LBool> vals(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        vals[static_cast<std::size_t>(i)] =
            (mask >> i) & 1 ? LBool::True : LBool::False;
      }
      if (pb.satisfied_by(vals)) ++expected;
    }
    EXPECT_EQ(count_projected_models(f, n), expected) << "trial " << trial;
  }
}

TEST(PbToCnf, ToPureCnfPreservesOptimum) {
  Formula f;
  std::vector<Lit> lits;
  Objective obj;
  for (int i = 0; i < 6; ++i) {
    const Var v = f.new_var();
    lits.push_back(Lit::positive(v));
    obj.terms.push_back({1, Lit::positive(v)});
  }
  f.add_at_least(lits, 3);
  f.set_objective(obj);

  PbToCnfStats stats;
  const Formula cnf = to_pure_cnf(f, &stats);
  EXPECT_EQ(cnf.num_pb(), 0);
  EXPECT_GT(stats.clauses, 0);
  const OptResult a = minimize_linear(f, {}, {});
  const OptResult b = minimize_linear(cnf, {}, {});
  ASSERT_EQ(b.status, OptStatus::Optimal);
  EXPECT_EQ(a.best_value, b.best_value);
}

// ---- pure-CNF coloring encodings ----

class AmoSweep : public ::testing::TestWithParam<int> {};

TEST_P(AmoSweep, DecisionMatchesPbEncoding) {
  const AmoEncoding amo = static_cast<AmoEncoding>(GetParam());
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = make_random_gnm(10, 22, seed);
    const int chi = dsatur_branch_and_bound(g).num_colors;
    for (const int k : {chi - 1, chi, chi + 1}) {
      if (k < 1) continue;
      ColoringEncoding enc = encode_k_coloring_cnf(g, k, amo);
      EXPECT_EQ(enc.formula.num_pb(), 0);
      CdclSolver solver(enc.formula);
      const SolveResult r = solver.solve();
      ASSERT_NE(r, SolveResult::Unknown);
      EXPECT_EQ(r == SolveResult::Sat, k >= chi)
          << amo_encoding_name(amo) << " seed=" << seed << " k=" << k;
      if (r == SolveResult::Sat) {
        EXPECT_TRUE(g.is_proper_coloring(enc.decode(solver.model())));
      }
    }
  }
}

TEST_P(AmoSweep, SbpRowsStayCorrect) {
  const AmoEncoding amo = static_cast<AmoEncoding>(GetParam());
  const Graph g = make_random_gnm(9, 16, 5);
  const int chi = dsatur_branch_and_bound(g).num_colors;
  for (const SbpOptions& sbps : paper_sbp_rows()) {
    ColoringEncoding enc = encode_k_coloring_cnf(g, chi, amo, sbps);
    EXPECT_EQ(enc.formula.num_pb(), 0) << sbps.label();
    CdclSolver solver(enc.formula);
    EXPECT_EQ(solver.solve(), SolveResult::Sat)
        << amo_encoding_name(amo) << " " << sbps.label();
  }
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, AmoSweep, ::testing::Range(0, 3));

TEST(SatLoop, FindsChromaticNumbers) {
  SatLoopOptions options;
  EXPECT_EQ(solve_coloring_sat_loop(make_myciel_dimacs(3), options).num_colors,
            4);
  EXPECT_EQ(solve_coloring_sat_loop(make_queen_graph(5, 5), options).num_colors,
            5);
}

TEST(SatLoop, AllSearchStrategiesAgree) {
  // Linear, binary and core-guided searches over K must reach the same
  // chromatic number, in both the per-K-rebuild and the incremental
  // (one persistent engine, y(k)-assumption) pipelines.
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const Graph g = make_random_gnm(12, 30, seed);
    const int expected = dsatur_branch_and_bound(g).num_colors;
    for (const bool incremental : {false, true}) {
      for (const SearchStrategy strategy :
           {SearchStrategy::Linear, SearchStrategy::Binary,
            SearchStrategy::CoreGuided}) {
        SatLoopOptions options;
        options.incremental = incremental;
        options.search = strategy;
        const SatLoopResult r = solve_coloring_sat_loop(g, options);
        ASSERT_EQ(r.status, OptStatus::Optimal)
            << "seed=" << seed << " incremental=" << incremental
            << " strategy=" << search_strategy_name(strategy);
        EXPECT_EQ(r.num_colors, expected)
            << "seed=" << seed << " incremental=" << incremental
            << " strategy=" << search_strategy_name(strategy);
        EXPECT_TRUE(g.is_proper_coloring(r.coloring));
      }
    }
  }
}

TEST(SatLoop, EmptyGraph) {
  const SatLoopResult r = solve_coloring_sat_loop(Graph(0), {});
  EXPECT_EQ(r.status, OptStatus::Optimal);
  EXPECT_EQ(r.num_colors, 0);
}

TEST(SatLoop, CountsSatCalls) {
  SatLoopOptions options;
  const SatLoopResult r =
      solve_coloring_sat_loop(make_myciel_dimacs(3), options);
  EXPECT_GE(r.sat_calls, 1);
}

// ---- maximal independent sets / Mehrotra-Trick ----

TEST(MaximalCliques, TriangleHasOne) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.finalize();
  const auto cliques = maximal_cliques(g);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (std::vector<int>{0, 1, 2}));
}

TEST(MaximalCliques, PathHasTwoEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  EXPECT_EQ(maximal_cliques(g).size(), 2u);
}

TEST(MaximalCliques, CountMatchesMoonMoserSmall) {
  // C5 has exactly 5 maximal cliques (its edges).
  Graph g(5);
  for (int i = 0; i < 5; ++i) g.add_edge(i, (i + 1) % 5);
  g.finalize();
  EXPECT_EQ(maximal_cliques(g).size(), 5u);
}

TEST(MaximalCliques, TruncationFlag) {
  const Graph g = make_random_gnm(20, 60, 9);
  bool truncated = false;
  const auto some = maximal_cliques(g, 3, &truncated);
  EXPECT_LE(some.size(), 3u);
  EXPECT_TRUE(truncated);
}

TEST(MaximalIndependentSets, AreIndependentAndMaximal) {
  const Graph g = make_random_gnm(12, 30, 13);
  for (const auto& set : maximal_independent_sets(g)) {
    for (std::size_t a = 0; a < set.size(); ++a) {
      for (std::size_t b = a + 1; b < set.size(); ++b) {
        EXPECT_FALSE(g.has_edge(set[a], set[b]));
      }
    }
    // Maximality: every outside vertex has a neighbour inside.
    for (int v = 0; v < g.num_vertices(); ++v) {
      if (std::find(set.begin(), set.end(), v) != set.end()) continue;
      bool blocked = false;
      for (const int u : set) {
        if (g.has_edge(u, v)) {
          blocked = true;
          break;
        }
      }
      EXPECT_TRUE(blocked);
    }
  }
}

TEST(SetCover, OptimumEqualsChromaticNumber) {
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    const Graph g = make_random_gnm(10, 20, seed);
    const auto enc = encode_set_cover_coloring(g);
    ASSERT_TRUE(enc.has_value());
    const OptResult r = minimize_linear(enc->formula, {}, {});
    ASSERT_EQ(r.status, OptStatus::Optimal);
    EXPECT_EQ(r.best_value, dsaturbnb_chi(g)) << "seed=" << seed;
    const auto coloring = enc->decode(r.model, g.num_vertices());
    EXPECT_TRUE(g.is_proper_coloring(coloring));
  }
}

TEST(SetCover, CapReturnsNullopt) {
  const Graph g = make_random_gnm(20, 40, 17);
  EXPECT_FALSE(encode_set_cover_coloring(g, 2).has_value());
}

TEST(SetCover, FormulationIsNearlySymmetryFree) {
  // The paper: the independent-set formulation "inherently breaks
  // problem symmetries". The encoded formula's group must be tiny
  // compared to the assignment encoding's K! color factor.
  const Graph g = make_queen_graph(4, 4);
  const auto enc = encode_set_cover_coloring(g);
  ASSERT_TRUE(enc.has_value());
  const SymmetryInfo info = detect_symmetries(enc->formula);
  // Only the graph's own automorphisms survive (board symmetries), no
  // color-permutation blowup.
  EXPECT_LE(info.log10_order, 2.0);
}

}  // namespace
}  // namespace symcolor
