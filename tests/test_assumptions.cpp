// Assumption-native solving: failed-assumption cores (analyze_final),
// core soundness and non-triviality on pigeonhole instances, clone
// validity after Unsat-under-assumptions at 1 and 4 portfolio threads,
// and search-strategy equivalence on the queen/myciel optimizer suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cnf/formula.h"
#include "coloring/encoder.h"
#include "graph/generators.h"
#include "pb/optimizer.h"
#include "pb/solver_profiles.h"
#include "sat/portfolio.h"

namespace symcolor {
namespace {

/// Pigeonhole with per-pigeon enable selectors: pigeon p must sit in a
/// hole only when s_p is assumed; the holes enforce at-most-one. With
/// more than `holes` selectors assumed, the instance is Unsat; without
/// assumptions it is trivially Sat (disable everyone).
struct SelectorPhp {
  Formula formula;
  std::vector<Lit> selectors;
};

SelectorPhp selector_php(int pigeons, int holes) {
  SelectorPhp php;
  Formula& f = php.formula;
  std::vector<std::vector<Var>> in(static_cast<std::size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)].push_back(f.new_var());
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    const Lit s = Lit::positive(f.new_var());
    php.selectors.push_back(s);
    Clause c{~s};
    for (int h = 0; h < holes; ++h) {
      c.push_back(Lit::positive(
          in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    f.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        f.add_clause({Lit::negative(in[static_cast<std::size_t>(p1)]
                                      [static_cast<std::size_t>(h)]),
                      Lit::negative(in[static_cast<std::size_t>(p2)]
                                      [static_cast<std::size_t>(h)])});
      }
    }
  }
  return php;
}

bool contains(std::span<const Lit> haystack, Lit needle) {
  return std::find(haystack.begin(), haystack.end(), needle) !=
         haystack.end();
}

// ---- failed-assumption cores ----

TEST(AssumptionCore, SoundAndNonTrivialOnPigeonhole) {
  const int holes = 6;
  const int pigeons = holes + 3;
  for (const int threads : {1, 4}) {
    SelectorPhp php = selector_php(pigeons, holes);
    SolverConfig config = profile_config(SolverKind::PbsII);
    config.portfolio_threads = threads;
    const std::unique_ptr<SolverEngine> engine =
        make_solver_engine(php.formula, config);
    ASSERT_EQ(engine->solve(Deadline{}, php.selectors), SolveResult::Unsat)
        << threads << " threads";
    const std::span<const Lit> core = engine->last_core();
    // Soundness: every core literal is one of the assumptions, and no
    // literal repeats.
    for (const Lit l : core) {
      EXPECT_TRUE(contains(php.selectors, l)) << threads << " threads";
    }
    for (std::size_t i = 0; i < core.size(); ++i) {
      for (std::size_t j = i + 1; j < core.size(); ++j) {
        EXPECT_NE(core[i], core[j]);
      }
    }
    // Non-triviality: any holes-or-fewer enabled pigeons fit, so a sound
    // core must name at least holes + 1 selectors (and at most all).
    EXPECT_GE(core.size(), static_cast<std::size_t>(holes + 1))
        << threads << " threads";
    EXPECT_LE(core.size(), php.selectors.size());

    // Soundness, semantically: the core alone is already Unsat...
    const std::vector<Lit> core_only(core.begin(), core.end());
    EXPECT_EQ(engine->solve(Deadline{}, core_only), SolveResult::Unsat);
    // ...so its negation clause is a consequence: adding it and
    // re-solving under the full assumption set stays Unsat...
    Clause negation;
    for (const Lit l : core_only) negation.push_back(~l);
    ASSERT_TRUE(engine->add_clause(negation));
    EXPECT_EQ(engine->solve(Deadline{}, php.selectors), SolveResult::Unsat);
    // ...while the formula itself stays satisfiable (and the core of a
    // Sat answer is empty).
    EXPECT_EQ(engine->solve(), SolveResult::Sat);
    EXPECT_TRUE(engine->last_core().empty());
  }
}

TEST(AssumptionCore, EmptyWhenFormulaItselfUnsat) {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_unit(Lit::positive(a));
  f.add_unit(Lit::negative(a));
  CdclSolver solver(f);
  const std::vector<Lit> assume{Lit::positive(b)};
  EXPECT_EQ(solver.solve(Deadline{}, assume), SolveResult::Unsat);
  EXPECT_TRUE(solver.last_core().empty());
}

TEST(AssumptionCore, RootImpliedComplementYieldsUnitCore) {
  Formula f;
  const Var a = f.new_var();
  f.new_var();  // keep a branching var around
  f.add_unit(Lit::positive(a));
  CdclSolver solver(f);
  const std::vector<Lit> assume{Lit::negative(a)};
  ASSERT_EQ(solver.solve(Deadline{}, assume), SolveResult::Unsat);
  ASSERT_EQ(solver.last_core().size(), 1u);
  EXPECT_EQ(solver.last_core()[0], Lit::negative(a));
  // Without the assumption the instance is satisfiable again.
  EXPECT_EQ(solver.solve(), SolveResult::Sat);
}

TEST(AssumptionCore, ContradictoryAssumptionsFormTheCore) {
  Formula f;
  const Var a = f.new_var();
  f.new_var();
  CdclSolver solver(f);
  const std::vector<Lit> assume{Lit::positive(a), Lit::negative(a)};
  ASSERT_EQ(solver.solve(Deadline{}, assume), SolveResult::Unsat);
  const std::span<const Lit> core = solver.last_core();
  ASSERT_EQ(core.size(), 2u);
  EXPECT_TRUE(contains(core, Lit::positive(a)));
  EXPECT_TRUE(contains(core, Lit::negative(a)));
}

TEST(AssumptionCore, WalksPbReasonsAndDropsIrrelevantAssumptions) {
  // 2a + b + c >= 2: assuming ~b forces a (its coefficient exceeds the
  // remaining slack); the later ~a assumption then fails. The core must
  // be exactly {~a, ~b} — assumption ~c contributed nothing.
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  const Var c = f.new_var();
  f.add_pb(PbConstraint::at_least({{2, Lit::positive(a)},
                                   {1, Lit::positive(b)},
                                   {1, Lit::positive(c)}},
                                  2));
  CdclSolver solver(f);
  const std::vector<Lit> assume{Lit::negative(b), Lit::negative(c),
                                Lit::negative(a)};
  ASSERT_EQ(solver.solve(Deadline{}, assume), SolveResult::Unsat);
  const std::span<const Lit> core = solver.last_core();
  ASSERT_EQ(core.size(), 2u);
  EXPECT_TRUE(contains(core, Lit::negative(a)));
  EXPECT_TRUE(contains(core, Lit::negative(b)));
  EXPECT_FALSE(contains(core, Lit::negative(c)));
}

// ---- clone validity after assumption-Unsat ----

TEST(AssumptionClone, CloneAfterAssumptionUnsatStaysValid) {
  // solve() must leave no residual assumption state: a clone taken right
  // after Unsat-under-assumptions answers like a fresh solver, at 1 and
  // 4 portfolio threads.
  const Graph g = make_queen_graph(5, 5);
  const Formula formula =
      encode_k_coloring(g, 5, SbpOptions::nu_sc()).formula;
  for (const int threads : {1, 4}) {
    SolverConfig config = profile_config(SolverKind::PbsII);
    config.portfolio_threads = threads;
    const std::unique_ptr<SolverEngine> engine =
        make_solver_engine(formula, config);
    // Force an arbitrary vertex away from every color: Unsat under
    // assumptions, but the formula itself stays 5-colorable.
    std::vector<Lit> assume;
    for (int j = 0; j < 5; ++j) assume.push_back(Lit::negative(j));
    ASSERT_EQ(engine->solve(Deadline{}, assume), SolveResult::Unsat)
        << threads << " threads";
    EXPECT_FALSE(engine->last_core().empty());

    const std::unique_ptr<SolverEngine> clone = engine->clone();
    EXPECT_EQ(clone->solve(), SolveResult::Sat) << threads << " threads";
    EXPECT_TRUE(formula.satisfied_by(clone->model()));
    // The clone re-answers the assumption query too.
    EXPECT_EQ(clone->solve(Deadline{}, assume), SolveResult::Unsat);
    // And the original engine is untouched by its clone's searches.
    EXPECT_EQ(engine->solve(), SolveResult::Sat) << threads << " threads";
  }
}

// ---- strategy equivalence on the optimizer suite ----

TEST(SearchStrategyEquivalence, QueenMycielOptimizerSuite) {
  struct Case {
    const char* name;
    Graph graph;
    int k;
    std::int64_t chi;
  };
  std::vector<Case> cases;
  cases.push_back({"queen5", make_queen_graph(5, 5), 7, 5});
  cases.push_back({"myciel3", make_myciel_dimacs(3), 8, 4});
  cases.push_back({"myciel4", make_myciel_dimacs(4), 8, 5});
  for (const Case& c : cases) {
    const ColoringEncoding enc =
        encode_coloring(c.graph, c.k, SbpOptions::nu_sc());
    for (const int threads : {1, 2}) {
      SolverConfig config = profile_config(SolverKind::PbsII);
      config.portfolio_threads = threads;
      for (const SearchStrategy strategy :
           {SearchStrategy::Linear, SearchStrategy::Binary,
            SearchStrategy::CoreGuided}) {
        const OptResult r =
            minimize(enc.formula, config, Deadline{}, strategy);
        ASSERT_EQ(r.status, OptStatus::Optimal)
            << c.name << " " << search_strategy_name(strategy) << " "
            << threads << " threads";
        EXPECT_EQ(r.best_value, c.chi)
            << c.name << " " << search_strategy_name(strategy) << " "
            << threads << " threads";
        EXPECT_TRUE(enc.formula.satisfied_by(r.model));
        EXPECT_GE(r.probes, 2) << "an optimum needs at least SAT + UNSAT";
      }
    }
  }
}

TEST(SearchStrategyEquivalence, InfeasibleAndUnconstrainedEdges) {
  for (const SearchStrategy strategy :
       {SearchStrategy::Linear, SearchStrategy::Binary,
        SearchStrategy::CoreGuided}) {
    // Infeasible constraints are reported as such with an empty model.
    Formula inf;
    const Var a = inf.new_var();
    inf.add_unit(Lit::positive(a));
    inf.add_unit(Lit::negative(a));
    Objective obj;
    obj.terms.push_back({1, Lit::positive(a)});
    inf.set_objective(obj);
    const OptResult r = minimize(inf, {}, Deadline{}, strategy);
    EXPECT_EQ(r.status, OptStatus::Infeasible)
        << search_strategy_name(strategy);

    // A free objective bottoms out at zero.
    Formula free;
    Objective fobj;
    for (int i = 0; i < 4; ++i) {
      fobj.terms.push_back({1, Lit::positive(free.new_var())});
    }
    free.set_objective(fobj);
    const OptResult z = minimize(free, {}, Deadline{}, strategy);
    EXPECT_EQ(z.status, OptStatus::Optimal) << search_strategy_name(strategy);
    EXPECT_EQ(z.best_value, 0) << search_strategy_name(strategy);
  }
}

TEST(SearchStrategyEquivalence, ModelCoversOriginalVariablesOnly) {
  // The selector ladder's auxiliaries are internal: the surfaced model is
  // indexed by the caller's formula, exactly.
  Formula f;
  std::vector<Lit> lits;
  Objective obj;
  for (int i = 0; i < 5; ++i) {
    const Var v = f.new_var();
    lits.push_back(Lit::positive(v));
    obj.terms.push_back({1, Lit::positive(v)});
  }
  f.add_at_least(lits, 2);
  f.set_objective(obj);
  for (const SearchStrategy strategy :
       {SearchStrategy::Linear, SearchStrategy::Binary,
        SearchStrategy::CoreGuided}) {
    const OptResult r = minimize(f, {}, Deadline{}, strategy);
    ASSERT_EQ(r.status, OptStatus::Optimal);
    EXPECT_EQ(r.best_value, 2);
    EXPECT_EQ(r.model.size(), static_cast<std::size_t>(f.num_vars()));
    EXPECT_TRUE(f.satisfied_by(r.model));
  }
}

}  // namespace
}  // namespace symcolor
