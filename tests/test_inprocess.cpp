// Inprocessing tests: root-level reduction helpers, equivalent-literal
// substitution (SCC collapse, model reconstruction, core translation),
// on-vs-off answer agreement across the engine stack (plain / portfolio /
// cube-and-conquer at 1, 2 and 4 threads), mid-solve clone equivalence,
// budget-slice trips leaving a consistent database, engine-cache
// admission warm starts, and the drain_imports remap regression (clause
// and PB lanes) for imports naming substituted-away variables.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cnf/formula.h"
#include "cnf/pb_constraint.h"
#include "coloring/encoder.h"
#include "graph/generators.h"
#include "pb/solver_profiles.h"
#include "sat/cdcl.h"
#include "sat/inprocess.h"
#include "sat/portfolio.h"
#include "service/engine_cache.h"

namespace symcolor {
namespace {

Formula queen5_plain(int k) {
  return encode_k_coloring(make_queen_graph(5, 5), k, SbpOptions::none())
      .formula;
}

Formula myciel3_plain(int k) {
  return encode_k_coloring(make_myciel_dimacs(3), k, SbpOptions::none())
      .formula;
}

Formula random_plain(int k, std::uint64_t seed) {
  return encode_k_coloring(make_random_gnm(12, 30, seed), k,
                           SbpOptions::none())
      .formula;
}

/// Config with the inprocess cadence cranked down so the test instances
/// (tens of conflicts) cross a restart-boundary round several times.
SolverConfig ip_config(InprocessMode mode, int threads = 1,
                       int cube_depth = 0) {
  SolverConfig c = profile_config(SolverKind::PbsII);
  c.portfolio_threads = threads;
  c.cube_depth = cube_depth;
  c.inprocess = mode;
  c.inprocess_interval_base = 10;
  c.inprocess_interval_inc = 0;
  // The inprocess hook sits at restart boundaries; shrink the first
  // restart interval so the tiny test instances actually reach one.
  c.restart_base = 8;
  return c;
}

/// Three equivalence classes chained onto var 0 plus a satisfiable side
/// constraint: x0 <-> x1 <-> x2, plus (x0 v x3). Full inprocessing must
/// collapse vars 1 and 2 onto 0.
Formula chained_equivalences() {
  Formula f;
  const Var x0 = f.new_var();
  const Var x1 = f.new_var();
  const Var x2 = f.new_var();
  const Var x3 = f.new_var();
  f.add_clause({Lit::negative(x0), Lit::positive(x1)});
  f.add_clause({Lit::negative(x1), Lit::positive(x0)});
  f.add_clause({Lit::negative(x1), Lit::positive(x2)});
  f.add_clause({Lit::negative(x2), Lit::positive(x1)});
  f.add_clause({Lit::positive(x0), Lit::positive(x3)});
  return f;
}

// ---- root-level reduction helpers (shared with cnf/simplify) ----

TEST(ReduceClauseAtRoot, UnassignedClauseIsUnchanged) {
  std::vector<LBool> values(3, LBool::Undef);
  const Clause c = {Lit::positive(0), Lit::negative(1), Lit::positive(2)};
  Clause reduced;
  EXPECT_EQ(reduce_clause_at_root(c, values, &reduced),
            RootClauseStatus::Unchanged);
}

TEST(ReduceClauseAtRoot, SatisfiedShortenedUnitEmpty) {
  std::vector<LBool> values(4, LBool::Undef);
  values[0] = LBool::True;
  values[1] = LBool::False;
  Clause reduced;
  EXPECT_EQ(reduce_clause_at_root(
                Clause{Lit::positive(0), Lit::positive(2)}, values, &reduced),
            RootClauseStatus::Satisfied);
  EXPECT_EQ(reduce_clause_at_root(
                Clause{Lit::positive(1), Lit::positive(2), Lit::positive(3)},
                values, &reduced),
            RootClauseStatus::Shortened);
  EXPECT_EQ(reduced, (Clause{Lit::positive(2), Lit::positive(3)}));
  EXPECT_EQ(reduce_clause_at_root(
                Clause{Lit::positive(1), Lit::positive(2)}, values, &reduced),
            RootClauseStatus::Unit);
  EXPECT_EQ(reduced, (Clause{Lit::positive(2)}));
  EXPECT_EQ(reduce_clause_at_root(Clause{Lit::positive(1), Lit::negative(0)},
                                  values, &reduced),
            RootClauseStatus::Empty);
}

TEST(ReducePbAtRoot, FoldsAssignmentsAndForcesHighCoeffs) {
  // 3a + 2b + 1c >= 4 with a=True: residual 2b + 1c >= 1 (a clause).
  std::vector<LBool> values(3, LBool::Undef);
  values[0] = LBool::True;
  const std::vector<PbTerm> terms = {{3, Lit::positive(0)},
                                     {2, Lit::positive(1)},
                                     {1, Lit::positive(2)}};
  const RootPbReduction r = reduce_pb_at_root(terms, 4, values);
  EXPECT_EQ(r.status, RootPbStatus::Clause);
  // Same row with nothing assigned: bound 4 of coeff-sum 6 forces a
  // (coeff 3 > 6 - 4) but not b.
  std::vector<LBool> open(3, LBool::Undef);
  const RootPbReduction o = reduce_pb_at_root(terms, 4, open);
  EXPECT_EQ(o.status, RootPbStatus::Open);
  ASSERT_EQ(o.forced.size(), 1u);
  EXPECT_EQ(o.forced[0], Lit::positive(0));
}

TEST(ReducePbAtRoot, SatisfiedAndContradiction) {
  std::vector<LBool> values(2, LBool::Undef);
  values[0] = LBool::True;
  const std::vector<PbTerm> terms = {{2, Lit::positive(0)},
                                     {1, Lit::positive(1)}};
  EXPECT_EQ(reduce_pb_at_root(terms, 2, values).status,
            RootPbStatus::Satisfied);
  values[0] = LBool::False;
  values[1] = LBool::False;
  EXPECT_EQ(reduce_pb_at_root(terms, 2, values).status,
            RootPbStatus::Contradiction);
}

// ---- equivalent-literal substitution ----

TEST(Inprocess, SubstitutionCollapsesSccAndModelExtends) {
  const Formula f = chained_equivalences();
  CdclSolver solver(f, ip_config(InprocessMode::Full));
  solver.inprocess();
  EXPECT_GE(solver.replaced_vars(), 2);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  // The model must cover the ORIGINAL formula, eliminated vars included.
  EXPECT_TRUE(f.satisfied_by(solver.model()));
  EXPECT_EQ(solver.model()[0], solver.model()[1]);
  EXPECT_EQ(solver.model()[1], solver.model()[2]);
}

TEST(Inprocess, CoreNamesCallerLiteralsAfterSubstitution) {
  // x0 <-> x1, plus (~x0 v ~x2): assuming [x1, x2] is contradictory, and
  // the reported core must name the CALLER's assumption literals even
  // though x1 was substituted away internally.
  Formula f;
  const Var x0 = f.new_var();
  const Var x1 = f.new_var();
  const Var x2 = f.new_var();
  f.add_clause({Lit::negative(x0), Lit::positive(x1)});
  f.add_clause({Lit::negative(x1), Lit::positive(x0)});
  f.add_clause({Lit::negative(x0), Lit::negative(x2)});
  CdclSolver solver(f, ip_config(InprocessMode::Full));
  solver.inprocess();
  ASSERT_GE(solver.replaced_vars(), 1);
  const std::vector<Lit> assumptions = {Lit::positive(x1), Lit::positive(x2)};
  ASSERT_EQ(solver.solve({}, assumptions), SolveResult::Unsat);
  ASSERT_FALSE(solver.last_core().empty());
  for (const Lit l : solver.last_core()) {
    EXPECT_TRUE(l == Lit::positive(x1) || l == Lit::positive(x2))
        << "core literal outside the caller's assumption alphabet";
  }
  // The engine stays usable and consistent afterwards.
  EXPECT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_TRUE(f.satisfied_by(solver.model()));
}

TEST(Inprocess, MidSolveCloneCarriesSubstitutionState) {
  const Formula f = queen5_plain(5);
  CdclSolver solver(f, ip_config(InprocessMode::Full));
  // Push the solver past a few inprocess rounds, then stop mid-search.
  const SolveBudget budget(0.0, 25, 0);
  (void)solver.solve(budget);
  solver.inprocess();
  std::unique_ptr<SolverEngine> clone = solver.clone();
  ASSERT_EQ(clone->solve(), SolveResult::Sat);
  EXPECT_TRUE(f.satisfied_by(clone->model()));
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_TRUE(f.satisfied_by(solver.model()));
}

TEST(Inprocess, BudgetSliceTripLeavesConsistentDatabase) {
  const Formula f = queen5_plain(4);
  CdclSolver solver(f, ip_config(InprocessMode::Full));
  // A propagation slice far too small to finish a round: the round must
  // degrade gracefully, leaving a database that still answers correctly.
  const SolveBudget slice(0.0, 0, 8);
  solver.inprocess(slice);
  EXPECT_EQ(solver.solve(), SolveResult::Unsat);
  CdclSolver sat_solver(queen5_plain(5), ip_config(InprocessMode::Full));
  const SolveBudget sat_slice(0.0, 0, 8);
  sat_solver.inprocess(sat_slice);
  ASSERT_EQ(sat_solver.solve(), SolveResult::Sat);
  EXPECT_TRUE(queen5_plain(5).satisfied_by(sat_solver.model()));
}

// ---- on-vs-off agreement across the engine stack ----

struct AgreementCase {
  const char* name;
  Formula formula;
  SolveResult expected;
};

std::vector<AgreementCase> agreement_suite() {
  std::vector<AgreementCase> suite;
  suite.push_back({"queen5_k4", queen5_plain(4), SolveResult::Unsat});
  suite.push_back({"queen5_k5", queen5_plain(5), SolveResult::Sat});
  suite.push_back({"myciel3_k3", myciel3_plain(3), SolveResult::Unsat});
  suite.push_back({"myciel3_k4", myciel3_plain(4), SolveResult::Sat});
  suite.push_back({"random_k3", random_plain(3, 7), SolveResult::Unknown});
  return suite;
}

void check_agreement(int threads, int cube_depth) {
  for (AgreementCase& tc : agreement_suite()) {
    auto off = make_solver_engine(
        tc.formula, ip_config(InprocessMode::Off, threads, cube_depth));
    auto on = make_solver_engine(
        tc.formula, ip_config(InprocessMode::Full, threads, cube_depth));
    const SolveResult r_off = off->solve();
    const SolveResult r_on = on->solve();
    EXPECT_EQ(r_off, r_on) << tc.name << " threads=" << threads
                           << " cube_depth=" << cube_depth;
    if (tc.expected != SolveResult::Unknown) {
      EXPECT_EQ(r_on, tc.expected) << tc.name;
    }
    if (r_on == SolveResult::Sat) {
      EXPECT_TRUE(tc.formula.satisfied_by(on->model()))
          << tc.name << ": inprocessed model fails the original formula";
    }
  }
}

TEST(InprocessAgreement, PlainOneThread) { check_agreement(1, 0); }
TEST(InprocessAgreement, PortfolioTwoThreads) { check_agreement(2, 0); }
TEST(InprocessAgreement, PortfolioFourThreads) { check_agreement(4, 0); }
TEST(InprocessAgreement, CubeDepthTwoTwoThreads) { check_agreement(2, 2); }
TEST(InprocessAgreement, CubeDepthTwoFourThreads) { check_agreement(4, 2); }

TEST(InprocessAgreement, RoundsActuallyFireOnQueen) {
  auto engine = make_solver_engine(queen5_plain(4),
                                   ip_config(InprocessMode::Full, 1, 0));
  ASSERT_EQ(engine->solve(), SolveResult::Unsat);
  const SolverStats& stats = engine->aggregated_stats();
  EXPECT_GT(stats.inprocess_rounds, 0);
  // The rounds must do real work on the queen instance, not just spin.
  EXPECT_GT(stats.vivified_clauses + stats.viv_removed_clauses +
                stats.replaced_vars,
            0);
}

// ---- engine-cache admission warm start ----

TEST(Inprocess, EngineCacheAdmissionRoundWarmsClones) {
  EngineCache cache(4);
  const Formula f = chained_equivalences();
  const SolverConfig config = ip_config(InprocessMode::Full);
  std::unique_ptr<SolverEngine> first = cache.acquire("k", f, config);
  // The admission round ran on the resident master BEFORE the first
  // clone, so the clone already carries the substitution state.
  EXPECT_GE(first->stats().replaced_vars, 2);
  ASSERT_EQ(first->solve(), SolveResult::Sat);
  EXPECT_TRUE(f.satisfied_by(first->model()));
  std::unique_ptr<SolverEngine> second = cache.acquire("k", f, config);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_GE(second->stats().replaced_vars, 2);
  ASSERT_EQ(second->solve(), SolveResult::Sat);
  EXPECT_TRUE(f.satisfied_by(second->model()));
}

// ---- drain_imports remap regression (satellite bugfix) ----

TEST(Inprocess, ImportedClauseNamingSubstitutedVarIsRemapped) {
  // x0 <-> x1 with x1 substituted away; a foreign worker then shares the
  // unit (~x1). Without the import-side remap the unit would land on the
  // eliminated variable and the assumption [x0] would wrongly succeed.
  Formula f;
  const Var x0 = f.new_var();
  const Var x1 = f.new_var();
  const Var x2 = f.new_var();
  f.add_clause({Lit::negative(x0), Lit::positive(x1)});
  f.add_clause({Lit::negative(x1), Lit::positive(x0)});
  f.add_clause({Lit::positive(x0), Lit::positive(x2)});
  CdclSolver solver(f, ip_config(InprocessMode::Full));
  solver.inprocess();
  ASSERT_GE(solver.replaced_vars(), 1);

  ClauseExchange exchange(64);
  const std::vector<Lit> shared = {Lit::negative(x1)};
  ASSERT_TRUE(exchange.export_clause(/*worker=*/1, shared, /*lbd=*/1));
  solver.set_sharing(&exchange, /*worker_id=*/0);
  const std::vector<Lit> assumptions = {Lit::positive(x0)};
  EXPECT_EQ(solver.solve({}, assumptions), SolveResult::Unsat);
  // And without the conflicting assumption the instance stays Sat with a
  // model honouring both the import and the equivalence.
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_TRUE(f.satisfied_by(solver.model()));
  EXPECT_EQ(solver.model()[x0], LBool::False);
  EXPECT_EQ(solver.model()[x1], LBool::False);
}

TEST(Inprocess, ImportedPbNamingSubstitutedVarIsRemapped) {
  // Same setup through the PB lane: the shared row (~x1) + (~x2) >= 2
  // forces both literals; after the x1 -> x0 remap that contradicts the
  // assumption [x0].
  Formula f;
  const Var x0 = f.new_var();
  const Var x1 = f.new_var();
  const Var x2 = f.new_var();
  const Var x3 = f.new_var();
  f.add_clause({Lit::negative(x0), Lit::positive(x1)});
  f.add_clause({Lit::negative(x1), Lit::positive(x0)});
  f.add_clause({Lit::positive(x3), Lit::positive(x0)});
  CdclSolver solver(f, ip_config(InprocessMode::Full));
  solver.inprocess();
  ASSERT_GE(solver.replaced_vars(), 1);

  ClauseExchange exchange(64);
  const std::vector<PbTerm> row = {{1, Lit::negative(x1)},
                                   {1, Lit::negative(x2)}};
  ASSERT_TRUE(exchange.export_pb(/*worker=*/1, row, /*degree=*/2, /*lbd=*/1));
  solver.set_sharing(&exchange, /*worker_id=*/0);
  const std::vector<Lit> assumptions = {Lit::positive(x0)};
  EXPECT_EQ(solver.solve({}, assumptions), SolveResult::Unsat);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_TRUE(f.satisfied_by(solver.model()));
  EXPECT_EQ(solver.model()[x1], LBool::False);
  EXPECT_EQ(solver.model()[x2], LBool::False);
}

TEST(Inprocess, ImportMergeTautologyIsRejected) {
  // x0 <-> x1 negatively: (~x0 v ~x1), (x0 v x1) makes x1 == ~x0, so the
  // imported clause (x0 v x1) maps to the tautology (x0 v ~x0) and must
  // be dropped, not corrupt the database.
  Formula f;
  const Var x0 = f.new_var();
  const Var x1 = f.new_var();
  const Var x2 = f.new_var();
  f.add_clause({Lit::negative(x0), Lit::negative(x1)});
  f.add_clause({Lit::positive(x0), Lit::positive(x1)});
  f.add_clause({Lit::positive(x2), Lit::positive(x0)});
  CdclSolver solver(f, ip_config(InprocessMode::Full));
  solver.inprocess();
  ASSERT_GE(solver.replaced_vars(), 1);

  ClauseExchange exchange(64);
  const std::vector<Lit> shared = {Lit::positive(x0), Lit::positive(x1)};
  ASSERT_TRUE(exchange.export_clause(/*worker=*/1, shared, /*lbd=*/1));
  solver.set_sharing(&exchange, /*worker_id=*/0);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_TRUE(f.satisfied_by(solver.model()));
  EXPECT_NE(solver.model()[x0], solver.model()[x1]);
}

}  // namespace
}  // namespace symcolor
