// Tests for the formula graph, symmetry detection on formulas (the
// Shatter flow) and lex-leader SBP semantics.

#include <gtest/gtest.h>

#include <cmath>

#include "pb/optimizer.h"
#include "symmetry/formula_graph.h"
#include "symmetry/lexleader.h"
#include "symmetry/shatter.h"

namespace symcolor {
namespace {

/// Count satisfying assignments by brute force (<= 20 vars).
int count_models(const Formula& f) {
  const int n = f.num_vars();
  int count = 0;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<LBool> vals(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      vals[static_cast<std::size_t>(i)] =
          (mask >> i) & 1 ? LBool::True : LBool::False;
    }
    if (f.satisfied_by(vals)) ++count;
  }
  return count;
}

/// Two symmetric variables: (a | b) with nothing else.
Formula symmetric_pair() {
  Formula f;
  const Var a = f.new_var();
  const Var b = f.new_var();
  f.add_clause({Lit::positive(a), Lit::positive(b)});
  return f;
}

TEST(FormulaGraph, LiteralVerticesAndConsistencyEdges) {
  Formula f;
  f.new_vars(3);
  const FormulaGraph fg = build_formula_graph(f);
  EXPECT_EQ(fg.num_literal_vertices, 6);
  EXPECT_EQ(fg.graph.num_vertices(), 6);
  for (Var v = 0; v < 3; ++v) {
    EXPECT_TRUE(fg.graph.has_edge(Lit::positive(v).code(),
                                  Lit::negative(v).code()));
  }
}

TEST(FormulaGraph, BinaryClauseIsEdge) {
  Formula f = symmetric_pair();
  const FormulaGraph fg = build_formula_graph(f);
  EXPECT_EQ(fg.graph.num_vertices(), 4);  // no clause vertex
  EXPECT_TRUE(fg.graph.has_edge(Lit::positive(0).code(),
                                Lit::positive(1).code()));
}

TEST(FormulaGraph, TernaryClauseGetsVertex) {
  Formula f;
  f.new_vars(3);
  f.add_clause({Lit::positive(0), Lit::positive(1), Lit::positive(2)});
  const FormulaGraph fg = build_formula_graph(f);
  EXPECT_EQ(fg.graph.num_vertices(), 7);
  const int clause_vertex = 6;
  EXPECT_EQ(fg.graph.degree(clause_vertex), 3);
}

TEST(FormulaGraph, UnitClauseGetsMarker) {
  Formula f;
  f.new_vars(2);
  f.add_unit(Lit::positive(0));
  const FormulaGraph fg = build_formula_graph(f);
  // 4 literal vertices + 1 marker.
  EXPECT_EQ(fg.graph.num_vertices(), 5);
  // The marker pins x0: var 0 cannot swap with var 1 and cannot phase
  // shift; the only remaining symmetry is the phase shift of the free
  // var 1, so the group has order exactly 2.
  const SymmetryInfo info = detect_symmetries(f);
  EXPECT_NEAR(info.log10_order, std::log10(2.0), 1e-9);
  for (const Perm& p : info.generators) {
    EXPECT_EQ(p[0], 0);  // x0 fixed
    EXPECT_EQ(p[1], 1);  // ~x0 fixed
  }
}

TEST(FormulaGraph, PbConstraintColoredByBound) {
  Formula f;
  f.new_vars(4);
  f.add_at_least({Lit::positive(0), Lit::positive(1), Lit::positive(2)}, 2);
  f.add_at_least({Lit::positive(1), Lit::positive(2), Lit::positive(3)}, 1);
  const FormulaGraph fg = build_formula_graph(f);
  // bound-2 PB vertex and bound-1 clause-vertex must have different colors
  // (the bound-1 cardinality is a clause and gets the clause color).
  const int pb_vertex = 8;
  const int clause_vertex = 9;
  EXPECT_NE(fg.vertex_colors[static_cast<std::size_t>(pb_vertex)],
            fg.vertex_colors[static_cast<std::size_t>(clause_vertex)]);
}

TEST(LiteralPermutation, ExtractsConsistentMapping) {
  Formula f = symmetric_pair();
  const FormulaGraph fg = build_formula_graph(f);
  // Swap var0 and var1 wholesale on the graph (literal codes 0<->2, 1<->3).
  Perm graph_perm{2, 3, 0, 1};
  const Perm lit_perm = literal_permutation(fg, graph_perm);
  ASSERT_EQ(lit_perm.size(), 4u);
  EXPECT_EQ(lit_perm[0], 2);
  EXPECT_EQ(lit_perm[1], 3);
}

TEST(LiteralPermutation, RejectsInconsistentNegation) {
  Formula f = symmetric_pair();
  const FormulaGraph fg = build_formula_graph(f);
  // Map x0 -> x1 but ~x0 -> ~x0: breaks Boolean consistency.
  Perm graph_perm{2, 1, 0, 3};
  // This perm maps code1 (~x0) to itself: phase mismatch with code0 -> x1.
  EXPECT_TRUE(literal_permutation(fg, graph_perm).empty());
}

TEST(IsFormulaSymmetry, AcceptsRealSymmetry) {
  Formula f = symmetric_pair();
  const Perm swap{2, 3, 0, 1};
  EXPECT_TRUE(is_formula_symmetry(f, swap));
}

TEST(IsFormulaSymmetry, RejectsNonSymmetry) {
  Formula f;
  f.new_vars(2);
  f.add_unit(Lit::positive(0));
  f.add_clause({Lit::positive(0), Lit::positive(1)});
  const Perm swap{2, 3, 0, 1};
  EXPECT_FALSE(is_formula_symmetry(f, swap));
}

TEST(IsFormulaSymmetry, PhaseShiftOnFreeVariable) {
  // x0 unconstrained: mapping x0 <-> ~x0 is a symmetry.
  Formula f;
  f.new_vars(1);
  const Perm phase{1, 0};
  EXPECT_TRUE(is_formula_symmetry(f, phase));
}

TEST(IsFormulaSymmetry, ChecksObjective) {
  Formula f;
  f.new_vars(2);
  Objective obj;
  obj.terms = {{1, Lit::positive(0)}, {2, Lit::positive(1)}};
  f.set_objective(obj);
  const Perm swap{2, 3, 0, 1};
  EXPECT_FALSE(is_formula_symmetry(f, swap));  // coefficients differ
}

TEST(DetectSymmetries, FindsVariableSwap) {
  Formula f = symmetric_pair();
  const SymmetryInfo info = detect_symmetries(f);
  // Group: swap(var0,var1) at least; phase shifts are excluded by the
  // clause but each var also has no free phase here. Order >= 2.
  EXPECT_GE(info.log10_order, std::log10(2.0) - 1e-9);
  EXPECT_FALSE(info.generators.empty());
  EXPECT_EQ(info.spurious_rejected, 0);
}

TEST(DetectSymmetries, FreeVariablePhaseShift) {
  Formula f;
  f.new_vars(1);
  const SymmetryInfo info = detect_symmetries(f);
  EXPECT_NEAR(info.log10_order, std::log10(2.0), 1e-6);
}

TEST(DetectSymmetries, RigidFormulaHasNone) {
  Formula f;
  f.new_vars(2);
  f.add_unit(Lit::positive(0));
  f.add_clause({Lit::negative(0), Lit::positive(1)});
  f.add_unit(Lit::positive(1));
  const SymmetryInfo info = detect_symmetries(f);
  // x0 and x1 are both forced true but appear in structurally different
  // constraints; at most trivial symmetry should remain between them...
  // they are actually symmetric only if their constraint sets match,
  // which they do not (x1 has an incoming implication).
  EXPECT_TRUE(std::all_of(info.generators.begin(), info.generators.end(),
                          [&](const Perm& p) {
                            return is_formula_symmetry(f, p);
                          }));
}

TEST(DetectSymmetries, GeneratorsAreFormulaSymmetries) {
  // Exactly-one over 4 vars: the full S_4 on variables, order 24.
  Formula f;
  f.new_vars(4);
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(Lit::positive(i));
  f.add_exactly(lits, 1);
  const SymmetryInfo info = detect_symmetries(f);
  EXPECT_NEAR(info.log10_order, std::log10(24.0), 1e-6);
  for (const Perm& p : info.generators) {
    EXPECT_TRUE(is_formula_symmetry(f, p));
  }
}

TEST(LexLeader, SingleSwapKeepsOneRepresentativePerOrbit) {
  // (a | b): 3 models. Under swap symmetry, orbits are {01,10} and {11}.
  // Lex-leader SBPs keep exactly one representative of the first orbit.
  Formula f = symmetric_pair();
  const SymmetryInfo info = detect_symmetries(f);
  ASSERT_FALSE(info.generators.empty());
  const int before = count_models(f);
  EXPECT_EQ(before, 3);
  const int vars_before = f.num_vars();
  const LexLeaderStats stats = add_lex_leader_sbps(f, info.generators);
  EXPECT_GT(stats.clauses_added, 0);
  // Models over the ORIGINAL variables: project by checking satisfiable
  // extensions. With one aux chain var per support element the count over
  // all vars can exceed the projection; instead verify that (a=1,b=0) or
  // (a=0,b=1) — exactly one of the symmetric pair — survives.
  int surviving_asymmetric = 0;
  const int n = f.num_vars();
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<LBool> vals(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      vals[static_cast<std::size_t>(i)] =
          (mask >> i) & 1 ? LBool::True : LBool::False;
    }
    if (!f.satisfied_by(vals)) continue;
    const bool a = vals[0] == LBool::True;
    const bool b = vals[1] == LBool::True;
    if (a != b) {
      surviving_asymmetric |= a ? 1 : 2;
    }
  }
  EXPECT_TRUE(surviving_asymmetric == 1 || surviving_asymmetric == 2)
      << "both or neither asymmetric assignment survived";
  (void)vars_before;
}

TEST(LexLeader, PreservesSatisfiability) {
  Formula f;
  f.new_vars(4);
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(Lit::positive(i));
  f.add_exactly(lits, 2);
  const SymmetryInfo info = detect_symmetries(f);
  add_lex_leader_sbps(f, info.generators);
  EXPECT_GT(count_models(f), 0);
}

TEST(LexLeader, TruncationLimitsClauses) {
  Formula f1;
  f1.new_vars(8);
  Formula f2;
  f2.new_vars(8);
  // One long generator: rotate all 8 variables.
  Perm rotate(16);
  for (int v = 0; v < 8; ++v) {
    const int w = (v + 1) % 8;
    rotate[static_cast<std::size_t>(Lit::positive(v).code())] =
        Lit::positive(w).code();
    rotate[static_cast<std::size_t>(Lit::negative(v).code())] =
        Lit::negative(w).code();
  }
  const std::vector<Perm> gens{rotate};
  const LexLeaderStats full = add_lex_leader_sbps(f1, gens);
  const LexLeaderStats cut = add_lex_leader_sbps(f2, gens, 3);
  EXPECT_GT(full.clauses_added, cut.clauses_added);
  EXPECT_EQ(cut.vars_added, 2);  // chain vars for 3 support elements
}

TEST(LexLeader, QuadraticVariantSoundOnSwap) {
  Formula f = symmetric_pair();
  const SymmetryInfo info = detect_symmetries(f);
  const int before = count_models(f);
  add_lex_leader_sbps_quadratic(f, info.generators);
  const int after = count_models(f);
  EXPECT_GT(after, 0);
  EXPECT_LE(after, before);
}

TEST(Shatter, PreservesOptimalValue) {
  // MIN true vars subject to at-least-2-of-5: optimum 2, with and without
  // symmetry breaking.
  Formula f;
  std::vector<Lit> lits;
  Objective obj;
  for (int i = 0; i < 5; ++i) {
    const Var v = f.new_var();
    lits.push_back(Lit::positive(v));
    obj.terms.push_back({1, Lit::positive(v)});
  }
  f.add_at_least(lits, 2);
  f.set_objective(obj);

  Formula broken = f;
  const ShatterStats stats = shatter(broken);
  EXPECT_GT(stats.sbp.clauses_added, 0);
  const OptResult plain = minimize_linear(f, {}, {});
  const OptResult with_sbp = minimize_linear(broken, {}, {});
  ASSERT_EQ(plain.status, OptStatus::Optimal);
  ASSERT_EQ(with_sbp.status, OptStatus::Optimal);
  EXPECT_EQ(plain.best_value, 2);
  EXPECT_EQ(with_sbp.best_value, 2);
}

TEST(Shatter, PreservesUnsatisfiability) {
  Formula f;
  f.new_vars(4);
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(Lit::positive(i));
  f.add_at_least(lits, 3);
  f.add_at_most(lits, 1);
  Formula broken = f;
  shatter(broken);
  const OptResult r = minimize_linear(broken, {}, {});
  EXPECT_EQ(r.status, OptStatus::Infeasible);
}

TEST(Shatter, NoSpuriousGeneratorsOnTypicalFormulas) {
  Formula f;
  f.new_vars(6);
  std::vector<Lit> lits;
  for (int i = 0; i < 6; ++i) lits.push_back(Lit::positive(i));
  f.add_exactly(lits, 2);
  Formula copy = f;
  const ShatterStats stats = shatter(copy);
  EXPECT_EQ(stats.symmetry.spurious_rejected, 0);
  EXPECT_GT(stats.symmetry.log10_order, 0.0);
}

}  // namespace
}  // namespace symcolor
