// Tests for vertex orderings, structural utilities, the NECSP CSP
// colorer, and the incremental SAT loop.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "coloring/cnf_coloring.h"
#include "coloring/csp_colorer.h"
#include "coloring/dsatur_bnb.h"
#include "coloring/heuristics.h"
#include "graph/generators.h"
#include "graph/orderings.h"

namespace symcolor {
namespace {

Graph path_graph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.finalize();
  return g;
}

Graph complete_graph(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  g.finalize();
  return g;
}

bool is_permutation_of_vertices(const std::vector<int>& order, int n) {
  std::set<int> values(order.begin(), order.end());
  return static_cast<int>(order.size()) == n &&
         static_cast<int>(values.size()) == n && *values.begin() == 0 &&
         *values.rbegin() == n - 1;
}

TEST(Orderings, NaturalOrder) {
  const Graph g = path_graph(4);
  EXPECT_EQ(natural_order(g), (std::vector<int>{0, 1, 2, 3}));
}

TEST(Orderings, DegreeOrderDescending) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.finalize();
  const auto order = degree_order(g);
  EXPECT_EQ(order[0], 1);  // degree 3
  EXPECT_TRUE(is_permutation_of_vertices(order, 4));
}

TEST(Orderings, DegeneracyOfKnownGraphs) {
  EXPECT_EQ(degeneracy(path_graph(6)), 1);     // trees are 1-degenerate
  EXPECT_EQ(degeneracy(complete_graph(5)), 4);  // K5 is 4-degenerate
  Graph cycle(6);
  for (int i = 0; i < 6; ++i) cycle.add_edge(i, (i + 1) % 6);
  cycle.finalize();
  EXPECT_EQ(degeneracy(cycle), 2);
  Graph empty(4);
  empty.finalize();
  EXPECT_EQ(degeneracy(empty), 0);
}

TEST(Orderings, DegeneracyOrderBoundsGreedyColors) {
  // Greedy along a degeneracy order uses <= degeneracy + 1 colors.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = make_random_gnm(30, 90, seed);
    int d = 0;
    const auto order = degeneracy_order(g, &d);
    ASSERT_TRUE(is_permutation_of_vertices(order, 30));
    const auto colors = greedy_coloring(g, order);
    EXPECT_TRUE(g.is_proper_coloring(colors));
    EXPECT_LE(Graph::count_colors(colors), d + 1) << "seed=" << seed;
  }
}

TEST(Orderings, DegeneracyOrderBackDegreeInvariant) {
  // Every vertex has at most `degeneracy` neighbours earlier in the order.
  const Graph g = make_random_gnm(25, 80, 3);
  int d = 0;
  const auto order = degeneracy_order(g, &d);
  std::vector<int> position(25);
  for (int i = 0; i < 25; ++i) position[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  for (int v = 0; v < 25; ++v) {
    int earlier = 0;
    for (const int u : g.neighbors(v)) {
      if (position[static_cast<std::size_t>(u)] <
          position[static_cast<std::size_t>(v)]) {
        ++earlier;
      }
    }
    // Smallest-last: when v is colored, at most `d` neighbours are
    // already colored (they were removed after v in the degeneracy
    // sweep).
    EXPECT_LE(earlier, d);
  }
}

TEST(Orderings, BfsOrderVisitsComponentFirst) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  // 3, 4 isolated.
  g.finalize();
  const auto order = bfs_order(g, 0);
  ASSERT_TRUE(is_permutation_of_vertices(order, 5));
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(Orderings, ConnectedComponents) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  std::vector<int> component;
  EXPECT_EQ(connected_components(g, &component), 4);
  EXPECT_EQ(component[0], component[1]);
  EXPECT_EQ(component[2], component[3]);
  EXPECT_NE(component[0], component[2]);
  EXPECT_NE(component[4], component[5]);
}

TEST(Orderings, BipartitenessDetection) {
  std::vector<int> sides;
  EXPECT_TRUE(is_bipartite(path_graph(5), &sides));
  EXPECT_NE(sides[0], sides[1]);
  Graph odd(5);
  for (int i = 0; i < 5; ++i) odd.add_edge(i, (i + 1) % 5);
  odd.finalize();
  EXPECT_FALSE(is_bipartite(odd));
  Graph empty(3);
  empty.finalize();
  EXPECT_TRUE(is_bipartite(empty));
}

// ---- CSP colorer ----

TEST(CspColorer, DecisionMatchesChromaticNumber) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = make_random_gnm(12, 30, seed);
    const int chi = dsatur_branch_and_bound(g).num_colors;
    for (const bool dynamic : {true, false}) {
      CspColorerOptions options;
      options.break_value_symmetry = dynamic;
      options.max_colors = chi;
      EXPECT_TRUE(csp_k_coloring(g, options).satisfiable)
          << "seed=" << seed << " dynamic=" << dynamic;
      if (chi > 1) {
        options.max_colors = chi - 1;
        EXPECT_FALSE(csp_k_coloring(g, options).satisfiable)
            << "seed=" << seed << " dynamic=" << dynamic;
      }
    }
  }
}

TEST(CspColorer, WitnessIsProper) {
  const Graph g = make_queen_graph(5, 5);
  CspColorerOptions options;
  options.max_colors = 5;
  const CspColorerResult r = csp_k_coloring(g, options);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_TRUE(g.is_proper_coloring(r.coloring));
}

TEST(CspColorer, DynamicRuleShrinksSearch) {
  const Graph g = make_myciel_dimacs(4);
  CspColorerOptions with;
  with.max_colors = 4;  // chi - 1: full refutation needed
  with.break_value_symmetry = true;
  CspColorerOptions without = with;
  without.break_value_symmetry = false;
  const auto a = csp_k_coloring(g, with);
  const auto b = csp_k_coloring(g, without);
  EXPECT_FALSE(a.satisfiable);
  EXPECT_FALSE(b.satisfiable);
  EXPECT_LT(a.nodes, b.nodes);
}

TEST(CspColorer, MinimizationMatchesBnb) {
  for (std::uint64_t seed = 40; seed < 46; ++seed) {
    const Graph g = make_random_gnm(14, 40, seed);
    const CspColorerResult r = csp_min_coloring(g);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(Graph::count_colors(r.coloring),
              dsatur_branch_and_bound(g).num_colors)
        << "seed=" << seed;
  }
}

TEST(CspColorer, CustomOrderRespected) {
  const Graph g = path_graph(4);
  CspColorerOptions options;
  options.max_colors = 2;
  options.order = {3, 2, 1, 0};
  const CspColorerResult r = csp_k_coloring(g, options);
  EXPECT_TRUE(r.satisfiable);
}

TEST(CspColorer, RejectsZeroColors) {
  CspColorerOptions options;
  options.max_colors = 0;
  EXPECT_THROW((void)csp_k_coloring(path_graph(2), options),
               std::invalid_argument);
}

TEST(CspColorer, DeadlineStopsSearch) {
  const Graph g = make_random_gnm(60, 1000, 2);
  const Deadline deadline(0.001);
  const CspColorerResult r =
      csp_min_coloring(g, /*break_value_symmetry=*/false, deadline);
  EXPECT_TRUE(g.is_proper_coloring(r.coloring));  // heuristic incumbent
}

// ---- incremental SAT loop ----

TEST(IncrementalSatLoop, MatchesRebuildLoop) {
  SatLoopOptions rebuild;
  SatLoopOptions incremental;
  incremental.incremental = true;
  for (std::uint64_t seed = 50; seed < 56; ++seed) {
    const Graph g = make_random_gnm(12, 30, seed);
    const SatLoopResult a = solve_coloring_sat_loop(g, rebuild);
    const SatLoopResult b = solve_coloring_sat_loop(g, incremental);
    ASSERT_EQ(a.status, OptStatus::Optimal);
    ASSERT_EQ(b.status, OptStatus::Optimal);
    EXPECT_EQ(a.num_colors, b.num_colors) << "seed=" << seed;
    EXPECT_TRUE(g.is_proper_coloring(b.coloring));
  }
}

TEST(IncrementalSatLoop, KnownChromaticNumbers) {
  SatLoopOptions options;
  options.incremental = true;
  EXPECT_EQ(solve_coloring_sat_loop(make_myciel_dimacs(3), options).num_colors,
            4);
  EXPECT_EQ(
      solve_coloring_sat_loop(make_queen_graph(5, 5), options).num_colors, 5);
}

}  // namespace
}  // namespace symcolor
